// Quickstart: build a small heterogeneous cluster, submit a mixed batch of
// SLO and best-effort jobs, run TetriSched against the discrete-event
// simulator, and print what happened to every job.
package main

import (
	"fmt"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

func main() {
	// A 16-node cluster: 2 racks, rack r0 GPU-labeled.
	c := cluster.NewBuilder().
		AddRack("r0", 8, map[string]string{"gpu": "true"}).
		AddRack("r1", 8, nil).
		Build()

	// A small hand-written workload: two deadline (SLO) jobs with placement
	// preferences and two best-effort jobs.
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 4,
			BaseRuntime: 60, Slowdown: 2, Deadline: 200},
		{ID: 1, Class: workload.SLO, Type: workload.MPI, Submit: 5, K: 6,
			BaseRuntime: 80, Slowdown: 1.5, Deadline: 400},
		{ID: 2, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 10, K: 2,
			BaseRuntime: 30, Slowdown: 1},
		{ID: 3, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 12, K: 8,
			BaseRuntime: 45, Slowdown: 1},
	}

	// The Rayon-style reservation plan admits SLO jobs; TetriSched schedules.
	plan := rayon.NewPlan(c.N(), 4)
	sched := core.New(c, core.Config{
		CyclePeriod: 4,  // scheduling cycle and plan-ahead quantum (seconds)
		PlanAhead:   96, // deferred-placement window (seconds)
	})

	res, err := sim.Run(sim.Config{
		Cluster: c, Jobs: jobs, Scheduler: sched, Plan: plan, CyclePeriod: 4,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("per-job outcomes:")
	for i := range res.Stats {
		st := &res.Stats[i]
		j := st.Job
		verdict := "completed"
		if j.Class == workload.SLO {
			if st.MetSLO() {
				verdict = "met SLO"
			} else {
				verdict = "MISSED SLO"
			}
		}
		fmt.Printf("  job %d (%s/%s, k=%d): start=%ds finish=%ds runtime=%ds  %s\n",
			j.ID, j.Class, j.Type, j.K, st.Start, st.Finish, st.Finish-st.Start, verdict)
	}
	fmt.Println()
	fmt.Println(metrics.Summarize(sched.Name(), res, c.N()))
}
