// Combinatorial (gang + rack-locality) constraints, paper §2.2 and Fig 1:
// an MPI job wants all of its tasks on one rack — any rack — and runs slower
// when spread. This is a constraint over *sets* of machines, which STRL
// expresses as a MAX over per-rack nCk options. The example also shows the
// anti-affinity MIN pattern used by the Availability job of Fig 1.
package main

import (
	"fmt"

	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/core"
	"tetrisched/internal/milp"
	"tetrisched/internal/sim"
	"tetrisched/internal/strl"
	"tetrisched/internal/workload"
)

func main() {
	// 4 racks × 4 nodes.
	b := cluster.NewBuilder()
	for r := 0; r < 4; r++ {
		b.AddRack(fmt.Sprintf("r%d", r), 4, nil)
	}
	c := b.Build()

	// --- Scheduler view: MPI jobs gravitate to rack-local slots. ----------
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.MPI, Submit: 0, K: 4,
			BaseRuntime: 60, Slowdown: 2, Deadline: 300},
		{ID: 1, Class: workload.SLO, Type: workload.MPI, Submit: 0, K: 4,
			BaseRuntime: 60, Slowdown: 2, Deadline: 300},
		{ID: 2, Class: workload.SLO, Type: workload.MPI, Submit: 0, K: 4,
			BaseRuntime: 60, Slowdown: 2, Deadline: 300},
	}
	sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 60, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		panic(err)
	}
	fmt.Println("three 4-task MPI gangs on four 4-node racks:")
	for i := range res.Stats {
		st := &res.Stats[i]
		local := "rack-local (fast)"
		if st.Finish-st.Start > 60 {
			local = "spread across racks (slow)"
		}
		fmt.Printf("  gang %d: start=%ds runtime=%ds — %s\n", i, st.Start, st.Finish-st.Start, local)
	}

	// --- Language view: anti-affinity with MIN (the Availability job). ----
	fmt.Println("\nAvailability service: one replica on each of two racks (MIN):")
	expr, err := strl.Parse(
		"min(nCk({rack:r0}, k=1, start=0, dur=3, v=5), nCk({rack:r1}, k=1, start=0, dur=3, v=5))",
		strl.ClusterResolver{C: c})
	if err != nil {
		panic(err)
	}
	comp, err := compiler.Compile([]strl.Expr{expr}, compiler.Options{Universe: c.N(), Horizon: 3})
	if err != nil {
		panic(err)
	}
	sol, err := milp.Solve(comp.Model, milp.Options{})
	if err != nil {
		panic(err)
	}
	for _, g := range comp.Decode(sol) {
		fmt.Printf("  replica placed: %s\n", g.Leaf)
	}
	fmt.Printf("  objective=%g (value flows only when *both* racks host a replica)\n", sol.Objective)
}
