// Space-time elasticity (paper §4.1): a malleable analytics job accepts any
// gang width between MinK and K, trading nodes for runtime. The STRL
// Generator expresses the widths as MAX alternatives — wide-and-short vs
// narrow-and-long 2D shapes — and the MILP picks whichever fits the current
// cluster state best.
package main

import (
	"fmt"
	"os"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/sim"
	"tetrisched/internal/viz"
	"tetrisched/internal/workload"
)

func run(pinned int) {
	c := cluster.NewBuilder().AddRack("r0", 8, nil).Build()
	var jobs []*workload.Job
	if pinned > 0 {
		jobs = append(jobs, &workload.Job{
			ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0,
			K: pinned, BaseRuntime: 300, Slowdown: 1, Deadline: 1000,
		})
	}
	elastic := &workload.Job{
		ID: len(jobs), Class: workload.BestEffort, Type: workload.Elastic, Submit: 4,
		K: 8, MinK: 2, BaseRuntime: 40, Slowdown: 1,
	}
	jobs = append(jobs, elastic)

	sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 60, BEDecay: 300})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		panic(err)
	}
	st := res.Stats[elastic.ID]
	fmt.Printf("%d node(s) pinned by another job → elastic job ran %d wide for %ds\n",
		pinned, len(st.Nodes), st.Finish-st.Start)
	viz.Render(os.Stdout, c, res, viz.Options{MaxCols: 60})
	fmt.Println()
}

func main() {
	fmt.Println("An elastic job (base 40s on 8 nodes, minimum width 2) arrives at t=4.")
	fmt.Println("Its work is constant: fewer nodes → proportionally longer runtime.")
	fmt.Println()
	run(0) // idle cluster: full width
	run(6) // 6 of 8 nodes busy: shrink to 2
}
