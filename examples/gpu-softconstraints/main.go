// Soft placement constraints with plan-ahead (paper §2.3.2, Fig 3): a GPU
// job arrives while the GPU nodes are busy. When the GPUs free up soon,
// TetriSched *waits* for the preferred nodes; when they stay busy too long,
// it *falls back* to slower nodes instead. Both decisions come out of the
// same MILP — no special-case code, just the value of each (placement,
// start-time) option.
package main

import (
	"fmt"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// run simulates a GPU-occupying foreground job of the given duration plus a
// GPU-preferring job (40s on GPUs, 120s elsewhere) arriving at t=4.
func run(busyFor int64) {
	c := cluster.NewBuilder().
		AddRack("g", 8, map[string]string{"gpu": "true"}).
		AddRack("p", 8, nil).
		Build()

	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 8,
			BaseRuntime: busyFor, Slowdown: 2, Deadline: busyFor + 100},
		{ID: 1, Class: workload.SLO, Type: workload.GPU, Submit: 4, K: 8,
			BaseRuntime: 40, Slowdown: 3, Deadline: 400},
	}
	sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 160, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		panic(err)
	}
	st := res.Stats[1]
	choice := "WAITED for the GPU nodes"
	if st.Finish-st.Start > 40 {
		choice = "FELL BACK to plain nodes"
	}
	fmt.Printf("GPUs busy for %3ds → job %s: start=%3ds, ran %3ds, finished t=%3ds\n",
		busyFor, choice, st.Start, st.Finish-st.Start, st.Finish)
}

func main() {
	fmt.Println("A GPU job (40s on GPUs, 120s elsewhere) arrives at t=4 while")
	fmt.Println("another job holds all 8 GPU nodes.")
	fmt.Println()
	// GPUs free at t=60: waiting finishes ≈100, falling back ≈124 → wait.
	run(60)
	// GPUs free at t=120: waiting finishes ≈160, falling back ≈124 → fall back.
	run(120)
}
