// The toy cluster of paper Fig 1: 2 racks × 2 servers, rack 1 GPU-enabled,
// and three jobs with fundamentally different placement preferences —
// Availability (anti-affinity), MPI (rack-local gang), and GPU (server
// type). The program compiles all three STRL requests into one MILP and
// prints the chosen space-time schedule, demonstrating that the solver
// "plays Tetris" with all three shapes at once: the Availability job holds
// one server per rack, and the MPI and GPU jobs defer until it finishes so
// that each can run on its fast placement.
package main

import (
	"fmt"
	"sort"

	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

const horizon = 8

// options builds a MAX over (placement, start) choices: the preferred sets
// with fastDur, plus an anywhere fallback with slowDur, values decaying
// slightly with completion time.
func options(preferred []*strl.NCk, all *strl.NCk) strl.Expr {
	var kids []strl.Expr
	add := func(tmpl *strl.NCk, dur int64, base float64) {
		for s := int64(0); s+dur <= horizon; s++ {
			kids = append(kids, &strl.NCk{
				Set: tmpl.Set, K: tmpl.K, Start: s, Dur: dur,
				Value: base - 0.05*float64(s+dur),
			})
		}
	}
	for _, p := range preferred {
		add(p, p.Dur, p.Value)
	}
	add(all, all.Dur, all.Value)
	return &strl.Max{Kids: kids}
}

func main() {
	// M1, M2 on rack1 (GPU); M3, M4 on rack2.
	c := cluster.NewBuilder().
		AddRack("rack1", 2, map[string]string{"gpu": "true"}).
		AddRack("rack2", 2, nil).
		Build()
	rack1, rack2, gpus, all := c.Rack("rack1"), c.Rack("rack2"), c.WithAttr("gpu", "true"), c.All()

	// Availability: one server per rack for 3 time units (MIN = anti-affinity).
	availability := &strl.Min{Kids: []strl.Expr{
		&strl.NCk{Set: rack1, K: 1, Start: 0, Dur: 3, Value: 6},
		&strl.NCk{Set: rack2, K: 1, Start: 0, Dur: 3, Value: 6},
	}}
	// MPI: both servers on one rack → 2 units; spread anywhere → 3 units.
	mpi := options(
		[]*strl.NCk{
			{Set: rack1, K: 2, Dur: 2, Value: 4},
			{Set: rack2, K: 2, Dur: 2, Value: 4},
		},
		&strl.NCk{Set: all, K: 2, Dur: 3, Value: 3},
	)
	// GPU: both servers GPU-enabled → 2 units; anywhere → 3 units.
	gpu := options(
		[]*strl.NCk{{Set: gpus, K: 2, Dur: 2, Value: 4}},
		&strl.NCk{Set: all, K: 2, Dur: 3, Value: 3},
	)

	jobs := []strl.Expr{availability, mpi, gpu}
	names := []string{"Availability", "MPI", "GPU"}
	comp, err := compiler.Compile(jobs, compiler.Options{Universe: c.N(), Horizon: horizon})
	if err != nil {
		panic(err)
	}
	sol, err := milp.Solve(comp.Model, milp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("MILP: %d vars, %d constraints; objective = %.2f\n\n",
		comp.Model.NumVars(), comp.Model.NumConstraints(), sol.Objective)

	grants := comp.Decode(sol)
	sort.Slice(grants, func(a, b int) bool { return grants[a].Job < grants[b].Job })
	fmt.Println("chosen space-time schedule (cf. the candidate schedules of Fig 1):")
	for _, g := range grants {
		var where []string
		for grp, cnt := range g.Counts {
			comp.Part.Groups[grp].ForEach(func(n int) bool {
				if cnt > 0 {
					where = append(where, c.Node(cluster.NodeID(n)).Name)
					cnt--
				}
				return cnt > 0
			})
		}
		sort.Strings(where)
		fmt.Printf("  %-13s t=[%d,%d)  from %v\n", names[g.Job], g.Start, g.Start+g.Dur, where)
	}
}
