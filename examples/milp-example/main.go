// The MILP example of paper §5.1 / Fig 4, built directly against the STRL
// compiler: three jobs on three machines where only global scheduling with
// plan-ahead can meet every deadline. The program prints the generated MILP
// and the resulting schedule, then shows what goes wrong without plan-ahead.
package main

import (
	"fmt"

	"tetrisched/internal/bitset"
	"tetrisched/internal/compiler"
	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

func main() {
	const n = 3 // machines M1..M3
	all := bitset.New(n)
	all.Fill()

	// Time is discretized in 10s slices (0,10,20,30), as in the paper.
	// Job 1: short urgent — 2 machines × 10s, deadline 10s.
	job1 := &strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1}
	// Job 2: long small — 1 machine × 20s, deadline 40s (3 start options).
	job2 := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1},
		&strl.NCk{Set: all, K: 1, Start: 1, Dur: 2, Value: 1},
		&strl.NCk{Set: all, K: 1, Start: 2, Dur: 2, Value: 1},
	}}
	// Job 3: short large — 3 machines × 10s, deadline 20s (2 start options).
	job3 := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1},
		&strl.NCk{Set: all, K: 3, Start: 1, Dur: 1, Value: 1},
	}}

	comp, err := compiler.Compile([]strl.Expr{job1, job2, job3},
		compiler.Options{Universe: n, Horizon: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("generated MILP:")
	fmt.Println(comp.Model)

	sol, err := milp.Solve(comp.Model, milp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("objective = %g (all three jobs scheduled)\n\n", sol.Objective)
	fmt.Println("schedule (slice = 10s):")
	for _, g := range comp.Decode(sol) {
		fmt.Printf("  job %d starts at t=%ds on %d machine(s) for %ds\n",
			g.Job+1, g.Start*10, g.Total, g.Dur*10)
	}

	// Without plan-ahead every job may only start at t=0: at most two fit.
	j1 := &strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1}
	j2 := &strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1}
	j3 := &strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1}
	np, err := compiler.Compile([]strl.Expr{j1, j2, j3}, compiler.Options{Universe: n, Horizon: 1})
	if err != nil {
		panic(err)
	}
	nsol, err := milp.Solve(np.Model, milp.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nwithout plan-ahead: objective = %g (one job must miss its deadline)\n", nsol.Objective)
}
