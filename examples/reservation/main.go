// Reservations and mis-estimation (paper §2.1, §7.1): the same SLO+BE
// workload runs under the Rayon/CapacityScheduler baseline and under
// Rayon/TetriSched, with runtimes under-estimated by 50%. The baseline
// follows the static reservation plan — when a reservation expires before
// its under-estimated job finishes, the job is transferred to the
// best-effort queue and preempted. TetriSched re-plans every cycle and
// absorbs the mis-estimates.
package main

import (
	"fmt"

	"tetrisched/internal/capsched"
	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

func main() {
	c := cluster.RC80(false)
	mix := workload.GSMIX(80)
	mix.EstErr = -0.5    // runtimes believed to be half their true value
	mix.TargetUtil = 1.2 // near saturation

	fmt.Println("GS_MIX on 80 nodes, runtime estimates 50% below reality:")
	fmt.Println()
	for _, which := range []string{"cs", "tetrisched"} {
		jobs, err := workload.Generate(mix, c, 42)
		if err != nil {
			panic(err)
		}
		plan := rayon.NewPlan(c.N(), 4)
		var sched sim.Scheduler
		if which == "cs" {
			sched = capsched.New(c, plan)
		} else {
			sched = core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 96})
		}
		res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, Plan: plan, CyclePeriod: 4})
		if err != nil {
			panic(err)
		}
		sum := metrics.Summarize(sched.Name(), res, c.N())
		preempted := 0
		for i := range res.Stats {
			preempted += res.Stats[i].Preemptions
		}
		fmt.Println(sum)
		fmt.Printf("  (accepted=%d no-reservation=%d BE=%d, preemptions=%d)\n\n",
			sum.NumAccepted, sum.NumNoRes, sum.NumBE, preempted)
	}
	fmt.Println("TetriSched needs no preemption: it re-evaluates the whole plan")
	fmt.Println("each 4s cycle, bumping overrun estimates forward (§7.1).")
}
