// Package tetrisched's root benchmark suite regenerates every table and
// figure of the paper at a reduced scale — the same code paths as
// cmd/experiments, sized so `go test -bench=.` terminates quickly. The
// full-scale numbers in EXPERIMENTS.md come from `cmd/experiments -all`.
package tetrisched

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/core"
	"tetrisched/internal/experiments"
	"tetrisched/internal/httpapi"
	"tetrisched/internal/loadgen"
	"tetrisched/internal/metrics"
	"tetrisched/internal/milp"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/strl"
	"tetrisched/internal/workload"
)

func benchFig(b *testing.B, fn func(io.Writer, experiments.Scale) error) {
	b.Helper()
	sc := experiments.Bench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Workloads generates every Table 1 workload mix.
func BenchmarkTable1Workloads(b *testing.B) {
	c256 := cluster.RC256(false)
	c80 := cluster.RC80(true)
	for i := 0; i < b.N; i++ {
		for _, m := range []workload.Mix{workload.GRSLO(200), workload.GRMIX(200)} {
			if _, err := workload.Generate(m, c256, 1); err != nil {
				b.Fatal(err)
			}
		}
		for _, m := range []workload.Mix{workload.GSMIX(200), workload.GSHET(200)} {
			if _, err := workload.Generate(m, c80, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4MILPExample compiles and solves the §5.1 example.
func BenchmarkFig4MILPExample(b *testing.B) {
	n := 3
	all := bitset.New(n)
	all.Fill()
	jobs := []strl.Expr{
		&strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1},
			&strl.NCk{Set: all, K: 1, Start: 1, Dur: 2, Value: 1},
			&strl.NCk{Set: all, K: 1, Start: 2, Dur: 2, Value: 1},
		}},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1},
			&strl.NCk{Set: all, K: 3, Start: 1, Dur: 1, Value: 1},
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := compiler.Compile(jobs, compiler.Options{Universe: n, Horizon: 4})
		if err != nil {
			b.Fatal(err)
		}
		sol, err := milp.Solve(comp.Model, milp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Objective < 3-1e-9 {
			b.Fatalf("objective = %v, want 3", sol.Objective)
		}
	}
}

// Per-figure benchmarks: the exact experiment code at Bench scale.
func BenchmarkFig6GRMixEstimateError(b *testing.B) { benchFig(b, experiments.Fig6) }
func BenchmarkFig7GRSLOEstimateError(b *testing.B) { benchFig(b, experiments.Fig7) }
func BenchmarkFig8GSMixEstimateError(b *testing.B) { benchFig(b, experiments.Fig8) }
func BenchmarkFig9SoftConstraints(b *testing.B)    { benchFig(b, experiments.Fig9) }
func BenchmarkFig10GlobalScheduling(b *testing.B)  { benchFig(b, experiments.Fig10) }
func BenchmarkFig11PlanAhead(b *testing.B)         { benchFig(b, experiments.Fig11) }
func BenchmarkFig12Scalability(b *testing.B)       { benchFig(b, experiments.Fig12) }

// Extension benchmarks: TR-scale cluster sweep, preemption ablation, and
// elastic-job ablation.
func BenchmarkExtScaleSweep(b *testing.B)         { benchFig(b, experiments.ExtScale) }
func BenchmarkExtPreemptionAblation(b *testing.B) { benchFig(b, experiments.ExtPreempt) }
func BenchmarkExtElasticAblation(b *testing.B)    { benchFig(b, experiments.ExtElastic) }

// BenchmarkSchedulerCycle measures one TetriSched cycle on a loaded RC80
// heterogeneous cluster — the paper's core scalability quantity (Fig 12).
func BenchmarkSchedulerCycle(b *testing.B) {
	c := cluster.RC80(true)
	jobs, err := workload.Generate(workload.GSHET(40), c, 7)
	if err != nil {
		b.Fatal(err)
	}
	plan := rayon.NewPlan(c.N(), 4)
	sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 96})
	for _, j := range jobs {
		if j.Class == workload.SLO {
			r := plan.Admit(j.ID, 0, j.Deadline+1000, j.K, j.EstRuntime(true))
			j.Reserved = r != nil
		}
		sched.Submit(0, j)
	}
	free := c.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Cycle(int64(i)*4, free.Clone())
	}
}

// BenchmarkSchedulerCycleMultiComponent measures one cycle over a workload
// that decomposes: data-local SLO jobs pinned to disjoint replica sets on an
// RC256 cluster, with deadlines tight enough to cull the whole-cluster
// fallback. Each iteration rebuilds the scheduler so every measured cycle
// performs the full decomposed global solve.
func BenchmarkSchedulerCycleMultiComponent(b *testing.B) {
	c := cluster.RC256(false)
	mkJobs := func() []*workload.Job {
		jobs := make([]*workload.Job, 0, 16)
		for g := 0; g < 8; g++ {
			lo := g * 32
			data := []int{lo, lo + 1, lo + 2, lo + 3}
			for j := 0; j < 2; j++ {
				jobs = append(jobs, &workload.Job{
					ID: g*2 + j, Class: workload.SLO, Reserved: true, Type: workload.DataLocal,
					Submit: 0, K: 2, BaseRuntime: 40, Slowdown: 2, Deadline: 50, DataNodes: data,
				})
			}
		}
		return jobs
	}
	var sched *core.Scheduler
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sched = core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 40})
		for _, j := range mkJobs() {
			sched.Submit(0, j)
		}
		free := c.All()
		b.StartTimer()
		sched.Cycle(0, free)
	}
	b.StopTimer()
	if sched.Stats.Decomposed == 0 || sched.Stats.Components < 2 {
		b.Fatalf("cycle did not decompose (solves=%d components=%d); benchmark is not measuring the decomposed path",
			sched.Stats.Decomposed, sched.Stats.Components)
	}
}

// benchSchedulerCycleChurn measures one steady-state TetriSched cycle on an
// RC256 cluster as a function of churn — the incremental layer's headline
// quantity (cycle cost proportional to change, not cluster size). Eight
// overrunning whole-cluster blockers pin every believed release slice at 1,
// and eight data-local SLO residents per block (binding block supply rows
// keep each block one component) defer in place with identical solve
// inputs cycle after cycle. churnPct percent of the 64 residents arrive
// fresh each cycle (fractional accumulator) as short-deadline jobs on a
// rotating block, dirtying that block's component for the 2–3 cycles they
// live. The scheduler is rebuilt each epoch, inside the resident deadlines'
// identity band, so leaf values never shift mid-measurement.
func benchSchedulerCycleChurn(b *testing.B, churnPct int, disableIncremental bool) {
	c := cluster.RC256(false)
	const (
		blocks     = 8
		perBlock   = 9
		warmCycles = 16
		epochLen   = 60 // measured cycles per scheduler epoch
	)
	// Mixed widths over an 8-node block with 3-slice durations make each
	// component a genuine packing MILP (oversubscribed ~108 node-slices of
	// demand against 72 of supply) rather than a one-job-fits horizon pick.
	// This exact mix sits in a measured sweet spot: ~50ms per cold cycle —
	// expensive enough that solving dominates compilation, yet 40x below the
	// 2s solver time limit (time-limited solves return Feasible, which the
	// reuse cache rightly refuses to store).
	widths := [perBlock]int{2, 3, 5, 7, 2, 3, 5, 7, 2}
	blockData := func(g int) []int {
		data := make([]int, 8)
		for i := range data {
			data[i] = g*32 + i
		}
		return data
	}
	free := bitset.New(c.N()) // ground truth: never free while blockers run
	var sched *core.Scheduler
	var now int64
	cyclesLeft := 0
	nextID := 1000
	acc, rot := 0, 0
	newEpoch := func() {
		sched = core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 40, MaxBatch: 192,
			DisableIncremental: disableIncremental})
		for g := 0; g < blocks; g++ {
			sched.Submit(0, &workload.Job{ID: 900 + g, Class: workload.BestEffort,
				Type: workload.Unconstrained, Submit: 0, K: 32, BaseRuntime: 4, Slowdown: 1})
		}
		sched.Cycle(0, c.All()) // blockers launch, then overrun forever
		id := 0
		for g := 0; g < blocks; g++ {
			for j := 0; j < perBlock; j++ {
				// Slowdown 40 culls the 480s whole-cluster fallback against the
				// 390s deadline; the deadline stays non-binding for the local
				// options through the whole epoch (16+60 cycles end at t=304,
				// inside the identity band that closes at t=342).
				sched.Submit(4, &workload.Job{ID: id, Class: workload.SLO, Reserved: true,
					Type: workload.DataLocal, Submit: 4, K: widths[j], BaseRuntime: 12, Slowdown: 40,
					Deadline: 390, DataNodes: blockData(g)})
				id++
			}
		}
		now = 4
		for i := 0; i < warmCycles; i++ {
			sched.Cycle(now, free)
			now += 4
		}
		cyclesLeft = epochLen
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cyclesLeft == 0 {
			b.StopTimer()
			newEpoch()
			b.StartTimer()
		}
		acc += churnPct * blocks * perBlock
		for acc >= 100 {
			acc -= 100
			// One live start choice (slice 1; slice 0 is capacity-culled, the
			// whole-cluster fallback value-culled) and a 1-slice duration: the
			// arrival dirties its block's component and forces a fresh solve
			// on entry and again on exit without reshaping the packing MILP.
			sched.Submit(now, &workload.Job{ID: nextID, Class: workload.SLO, Reserved: true,
				Type: workload.DataLocal, Submit: now, K: 2, BaseRuntime: 4, Slowdown: 40,
				Deadline: now + 10, DataNodes: blockData(rot % blocks)})
			nextID++
			rot++
		}
		sched.Cycle(now, free)
		now += 4
		cyclesLeft--
	}
	b.StopTimer()
	if !disableIncremental && sched.Stats.ReuseHits == 0 {
		b.Fatal("steady-state churn benchmark recorded no reuse hits; it is not measuring replay")
	}
	if disableIncremental && sched.Stats.ReuseHits+sched.Stats.ReuseMisses != 0 {
		b.Fatal("cold churn benchmark touched the reuse machinery")
	}
}

// Churn sweep: percentage of the 64 residents replaced per cycle. Churn0 is
// the pure steady state (every component replays); ChurnCold runs the
// low-churn workload with DisableIncremental — the cold baseline the ≤30%
// steady-state acceptance ratio in BENCH_milp.json is measured against.
func BenchmarkSchedulerCycleChurn0(b *testing.B)    { benchSchedulerCycleChurn(b, 0, false) }
func BenchmarkSchedulerCycleChurn1(b *testing.B)    { benchSchedulerCycleChurn(b, 1, false) }
func BenchmarkSchedulerCycleChurn10(b *testing.B)   { benchSchedulerCycleChurn(b, 10, false) }
func BenchmarkSchedulerCycleChurn50(b *testing.B)   { benchSchedulerCycleChurn(b, 50, false) }
func BenchmarkSchedulerCycleChurnCold(b *testing.B) { benchSchedulerCycleChurn(b, 1, true) }

// benchCycleFrontEndChurn measures the cycle *front end* — STRL generation
// plus compilation, the phases upstream of the solve — on the same RC256
// steady-state scenario as benchSchedulerCycleChurn, as a function of churn.
// ns/op still covers the whole cycle; the headline quantity is the
// "frontend-ns" custom metric, the per-cycle GenerateNS+CompileNS delta. The
// incremental solve cache stays on in every variant so the front end is the
// only thing the disableCache axis varies; the ≤25% steady-vs-cold
// acceptance ratio in BENCH_milp.json compares FrontEndChurn0 against
// FrontEndChurnCold on this metric.
func benchCycleFrontEndChurn(b *testing.B, churnPct int, disableCache bool) {
	c := cluster.RC256(false)
	const (
		blocks     = 8
		perBlock   = 9
		warmCycles = 16
		epochLen   = 60
	)
	widths := [perBlock]int{2, 3, 5, 7, 2, 3, 5, 7, 2}
	blockData := func(g int) []int {
		data := make([]int, 8)
		for i := range data {
			data[i] = g*32 + i
		}
		return data
	}
	free := bitset.New(c.N())
	var sched *core.Scheduler
	var now int64
	cyclesLeft := 0
	nextID := 1000
	acc, rot := 0, 0
	var feNS int64
	skips, compiled := 0, 0
	flushStats := func() {
		if sched != nil {
			skips += sched.Stats.CompileSkips
			compiled += sched.Stats.CompileJobs
		}
	}
	newEpoch := func() {
		flushStats()
		sched = core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 40, MaxBatch: 192,
			DisableCompileCache: disableCache})
		for g := 0; g < blocks; g++ {
			sched.Submit(0, &workload.Job{ID: 900 + g, Class: workload.BestEffort,
				Type: workload.Unconstrained, Submit: 0, K: 32, BaseRuntime: 4, Slowdown: 1})
		}
		sched.Cycle(0, c.All())
		id := 0
		for g := 0; g < blocks; g++ {
			for j := 0; j < perBlock; j++ {
				sched.Submit(4, &workload.Job{ID: id, Class: workload.SLO, Reserved: true,
					Type: workload.DataLocal, Submit: 4, K: widths[j], BaseRuntime: 12, Slowdown: 40,
					Deadline: 390, DataNodes: blockData(g)})
				id++
			}
		}
		now = 4
		for i := 0; i < warmCycles; i++ {
			sched.Cycle(now, free)
			now += 4
		}
		cyclesLeft = epochLen
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cyclesLeft == 0 {
			b.StopTimer()
			newEpoch()
			b.StartTimer()
		}
		acc += churnPct * blocks * perBlock
		for acc >= 100 {
			acc -= 100
			sched.Submit(now, &workload.Job{ID: nextID, Class: workload.SLO, Reserved: true,
				Type: workload.DataLocal, Submit: now, K: 2, BaseRuntime: 4, Slowdown: 40,
				Deadline: now + 10, DataNodes: blockData(rot % blocks)})
			nextID++
			rot++
		}
		pre := sched.Stats.GenerateNS + sched.Stats.CompileNS
		sched.Cycle(now, free)
		feNS += sched.Stats.GenerateNS + sched.Stats.CompileNS - pre
		now += 4
		cyclesLeft--
	}
	b.StopTimer()
	flushStats()
	if disableCache && (skips != 0 || sched.Stats.ExprHits != 0) {
		b.Fatal("cold front-end benchmark touched the compile cache")
	}
	if !disableCache && skips == 0 {
		b.Fatal("steady-state front-end benchmark skipped no compiles; it is not measuring the cache")
	}
	b.ReportMetric(float64(feNS)/float64(b.N), "frontend-ns")
	if skips+compiled > 0 {
		b.ReportMetric(float64(skips)/float64(skips+compiled), "compile-skip-rate")
	}
}

// Front-end churn sweep, mirroring the solve-side sweep above. ChurnCold runs
// the zero-churn workload with DisableCompileCache — the cold front-end
// baseline the steady-state ratio is measured against.
func BenchmarkCycleFrontEndChurn0(b *testing.B)    { benchCycleFrontEndChurn(b, 0, false) }
func BenchmarkCycleFrontEndChurn1(b *testing.B)    { benchCycleFrontEndChurn(b, 1, false) }
func BenchmarkCycleFrontEndChurn10(b *testing.B)   { benchCycleFrontEndChurn(b, 10, false) }
func BenchmarkCycleFrontEndChurn50(b *testing.B)   { benchCycleFrontEndChurn(b, 50, false) }
func BenchmarkCycleFrontEndChurnCold(b *testing.B) { benchCycleFrontEndChurn(b, 0, true) }

// benchShardedCycle runs the full RC10K sharding scenario (internal/
// experiments.ExtShard's code path, bench scale) once per iteration: a
// 10240-node cluster under a GS HET workload whose unconstrained jobs couple
// the monolithic solve into one global MILP per cycle. Alongside ns/op it
// reports the two acceptance quantities tracked in BENCH_milp.json: mean
// scheduling-cycle latency (multi-shard must beat monolithic — concurrent
// per-shard planners shrink the coupled search) and SLO attainment (optimistic
// commit must hold within 2% of the monolithic policy).
func benchShardedCycle(b *testing.B, shards int) {
	c := experiments.RC10K()
	sc := experiments.Bench()
	mix := workload.GSHET(sc.Jobs * 8)
	var cycleMS, slo float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, sh, err := experiments.RunSharded(c, mix, 1000, sc, shards)
		if err != nil {
			b.Fatal(err)
		}
		if shards > 0 && sh.Cycles == 0 {
			b.Fatal("sharded run never exercised the shard control plane")
		}
		cycleMS = metrics.NewDurationCDF(sum.CycleLatencies).Mean()
		slo = sum.SLOAll
	}
	b.ReportMetric(cycleMS, "cycle-ms")
	b.ReportMetric(slo, "slo-pct")
}

func BenchmarkShardedCycleMonolithic(b *testing.B) { benchShardedCycle(b, 0) }
func BenchmarkShardedCycle1Shards(b *testing.B)    { benchShardedCycle(b, 1) }
func BenchmarkShardedCycle4Shards(b *testing.B)    { benchShardedCycle(b, 4) }
func BenchmarkShardedCycle16Shards(b *testing.B)   { benchShardedCycle(b, 16) }

// benchShardedCycleBasis is the LU-vs-dense pair on the 4-shard scenario:
// identical policy (the engines represent the same basis exactly; the shard
// parity property pins it), so the delta is purely basis-kernel cost at the
// 10k-node scale the LU factorization exists for.
func benchShardedCycleBasis(b *testing.B, dense bool) {
	c := experiments.RC10K()
	sc := experiments.Bench()
	mix := workload.GSHET(sc.Jobs * 8)
	var cycleMS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, _, err := experiments.RunShardedBasis(c, mix, 1000, sc, 4, dense)
		if err != nil {
			b.Fatal(err)
		}
		cycleMS = metrics.NewDurationCDF(sum.CycleLatencies).Mean()
	}
	b.ReportMetric(cycleMS, "cycle-ms")
}

func BenchmarkShardedCycleLU(b *testing.B)         { benchShardedCycleBasis(b, false) }
func BenchmarkShardedCycleLUOffDense(b *testing.B) { benchShardedCycleBasis(b, true) }

// benchLoadgen drives the HTTP front door (POST /v1/submit → bounded ingress
// queue → weighted-fair drain) with b.N jobs through internal/loadgen and
// reports the admission path's domain numbers alongside ns/op: sustained
// jobs/sec, p50/p99 submit latency, and the backpressure (429) rate. The
// scheduler behind the daemon is a no-op so the tracked number is front-door
// cost, not solver noise.
func benchLoadgen(b *testing.B, maxQueue int, cycleEvery time.Duration) {
	api := httpapi.NewServer(nopSched{}, 8).
		SetAdmission(httpapi.AdmissionConfig{MaxQueue: maxQueue})
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()

	b.ResetTimer()
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:    ts.URL,
		Workers:    8,
		Batch:      64,
		MaxJobs:    int64(b.N),
		Duration:   time.Hour, // MaxJobs terminates the run
		CycleEvery: cycleEvery,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Err4xx+res.Err5xx+res.ErrNet > 0 {
		b.Fatalf("front door errored under load: %+v", res)
	}
	b.ReportMetric(res.OfferedRate(), "jobs/sec")
	b.ReportMetric(float64(res.P50.Nanoseconds()), "p50-ns")
	b.ReportMetric(float64(res.P99.Nanoseconds()), "p99-ns")
	b.ReportMetric(res.RejectRate(), "reject-rate")
}

// nopSched lets the loadgen benchmarks isolate admission cost.
type nopSched struct{}

func (nopSched) Name() string                                 { return "nop" }
func (nopSched) Submit(int64, *workload.Job)                  {}
func (nopSched) JobFinished(int64, *workload.Job)             {}
func (nopSched) Cycle(int64, *bitset.Set) (r sim.CycleResult) { return }

// BenchmarkLoadgenAdmission is the tracked front-door throughput number: a
// large queue with a cycle driver draining it, so nearly every job is
// admitted and ns/op is the accept-path cost per job.
func BenchmarkLoadgenAdmission(b *testing.B) { benchLoadgen(b, 1<<20, 2*time.Millisecond) }

// BenchmarkLoadgenBackpressure saturates a small queue with no drain: after
// the first batches fill it, every request exercises the 429 reject path,
// which must stay cheap (rejecting is the overload defense).
func BenchmarkLoadgenBackpressure(b *testing.B) { benchLoadgen(b, 256, 0) }

// BenchmarkEndToEndGSHET runs a small full simulation (workload → admission
// → scheduling → metrics) per iteration.
func BenchmarkEndToEndGSHET(b *testing.B) {
	c := cluster.RC80(true)
	for i := 0; i < b.N; i++ {
		jobs, err := workload.Generate(workload.GSHET(20), c, 3)
		if err != nil {
			b.Fatal(err)
		}
		plan := rayon.NewPlan(c.N(), 4)
		sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 48})
		if _, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, Plan: plan, CyclePeriod: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
