// Package tetrisched's root benchmark suite regenerates every table and
// figure of the paper at a reduced scale — the same code paths as
// cmd/experiments, sized so `go test -bench=.` terminates quickly. The
// full-scale numbers in EXPERIMENTS.md come from `cmd/experiments -all`.
package tetrisched

import (
	"io"
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/core"
	"tetrisched/internal/experiments"
	"tetrisched/internal/milp"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/strl"
	"tetrisched/internal/workload"
)

func benchFig(b *testing.B, fn func(io.Writer, experiments.Scale) error) {
	b.Helper()
	sc := experiments.Bench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Workloads generates every Table 1 workload mix.
func BenchmarkTable1Workloads(b *testing.B) {
	c256 := cluster.RC256(false)
	c80 := cluster.RC80(true)
	for i := 0; i < b.N; i++ {
		for _, m := range []workload.Mix{workload.GRSLO(200), workload.GRMIX(200)} {
			if _, err := workload.Generate(m, c256, 1); err != nil {
				b.Fatal(err)
			}
		}
		for _, m := range []workload.Mix{workload.GSMIX(200), workload.GSHET(200)} {
			if _, err := workload.Generate(m, c80, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig4MILPExample compiles and solves the §5.1 example.
func BenchmarkFig4MILPExample(b *testing.B) {
	n := 3
	all := bitset.New(n)
	all.Fill()
	jobs := []strl.Expr{
		&strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1},
			&strl.NCk{Set: all, K: 1, Start: 1, Dur: 2, Value: 1},
			&strl.NCk{Set: all, K: 1, Start: 2, Dur: 2, Value: 1},
		}},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1},
			&strl.NCk{Set: all, K: 3, Start: 1, Dur: 1, Value: 1},
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, err := compiler.Compile(jobs, compiler.Options{Universe: n, Horizon: 4})
		if err != nil {
			b.Fatal(err)
		}
		sol, err := milp.Solve(comp.Model, milp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Objective < 3-1e-9 {
			b.Fatalf("objective = %v, want 3", sol.Objective)
		}
	}
}

// Per-figure benchmarks: the exact experiment code at Bench scale.
func BenchmarkFig6GRMixEstimateError(b *testing.B) { benchFig(b, experiments.Fig6) }
func BenchmarkFig7GRSLOEstimateError(b *testing.B) { benchFig(b, experiments.Fig7) }
func BenchmarkFig8GSMixEstimateError(b *testing.B) { benchFig(b, experiments.Fig8) }
func BenchmarkFig9SoftConstraints(b *testing.B)    { benchFig(b, experiments.Fig9) }
func BenchmarkFig10GlobalScheduling(b *testing.B)  { benchFig(b, experiments.Fig10) }
func BenchmarkFig11PlanAhead(b *testing.B)         { benchFig(b, experiments.Fig11) }
func BenchmarkFig12Scalability(b *testing.B)       { benchFig(b, experiments.Fig12) }

// Extension benchmarks: TR-scale cluster sweep, preemption ablation, and
// elastic-job ablation.
func BenchmarkExtScaleSweep(b *testing.B)         { benchFig(b, experiments.ExtScale) }
func BenchmarkExtPreemptionAblation(b *testing.B) { benchFig(b, experiments.ExtPreempt) }
func BenchmarkExtElasticAblation(b *testing.B)    { benchFig(b, experiments.ExtElastic) }

// BenchmarkSchedulerCycle measures one TetriSched cycle on a loaded RC80
// heterogeneous cluster — the paper's core scalability quantity (Fig 12).
func BenchmarkSchedulerCycle(b *testing.B) {
	c := cluster.RC80(true)
	jobs, err := workload.Generate(workload.GSHET(40), c, 7)
	if err != nil {
		b.Fatal(err)
	}
	plan := rayon.NewPlan(c.N(), 4)
	sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 96})
	for _, j := range jobs {
		if j.Class == workload.SLO {
			r := plan.Admit(j.ID, 0, j.Deadline+1000, j.K, j.EstRuntime(true))
			j.Reserved = r != nil
		}
		sched.Submit(0, j)
	}
	free := c.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Cycle(int64(i)*4, free.Clone())
	}
}

// BenchmarkSchedulerCycleMultiComponent measures one cycle over a workload
// that decomposes: data-local SLO jobs pinned to disjoint replica sets on an
// RC256 cluster, with deadlines tight enough to cull the whole-cluster
// fallback. Each iteration rebuilds the scheduler so every measured cycle
// performs the full decomposed global solve.
func BenchmarkSchedulerCycleMultiComponent(b *testing.B) {
	c := cluster.RC256(false)
	mkJobs := func() []*workload.Job {
		jobs := make([]*workload.Job, 0, 16)
		for g := 0; g < 8; g++ {
			lo := g * 32
			data := []int{lo, lo + 1, lo + 2, lo + 3}
			for j := 0; j < 2; j++ {
				jobs = append(jobs, &workload.Job{
					ID: g*2 + j, Class: workload.SLO, Reserved: true, Type: workload.DataLocal,
					Submit: 0, K: 2, BaseRuntime: 40, Slowdown: 2, Deadline: 50, DataNodes: data,
				})
			}
		}
		return jobs
	}
	var sched *core.Scheduler
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sched = core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 40})
		for _, j := range mkJobs() {
			sched.Submit(0, j)
		}
		free := c.All()
		b.StartTimer()
		sched.Cycle(0, free)
	}
	b.StopTimer()
	if sched.Stats.Decomposed == 0 || sched.Stats.Components < 2 {
		b.Fatalf("cycle did not decompose (solves=%d components=%d); benchmark is not measuring the decomposed path",
			sched.Stats.Decomposed, sched.Stats.Components)
	}
}

// BenchmarkEndToEndGSHET runs a small full simulation (workload → admission
// → scheduling → metrics) per iteration.
func BenchmarkEndToEndGSHET(b *testing.B) {
	c := cluster.RC80(true)
	for i := 0; i < b.N; i++ {
		jobs, err := workload.Generate(workload.GSHET(20), c, 3)
		if err != nil {
			b.Fatal(err)
		}
		plan := rayon.NewPlan(c.N(), 4)
		sched := core.New(c, core.Config{CyclePeriod: 4, PlanAhead: 48})
		if _, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, Plan: plan, CyclePeriod: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
