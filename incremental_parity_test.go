package tetrisched

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// parityInstance is one randomized multi-cycle scenario for the incremental
// parity property. Jobs are rebuilt per run from the same sub-seed because the
// simulation driver mutates them (Reserved is stamped at submit time).
type parityInstance struct {
	c        *cluster.Cluster
	mkJobs   func() []*workload.Job
	failures []sim.NodeFailure
	cfg      core.Config
	// steady marks the crafted blocked-cluster instances that are guaranteed
	// to produce reuse hits (an overrunning blocker pins release slices while
	// data-local jobs defer in place).
	steady bool
}

// randomParityInstance draws a cluster, workload, and configuration: mixed job
// classes and placement types, occasional estimate error (negative values
// create natural overruns), occasional node failures, preemption, and small
// MaxBatch (exercising truncation). Every 4th instance is the crafted
// steady-state scenario instead, so the on-run reliably exercises replay.
func randomParityInstance(idx int, seed int64) parityInstance {
	if idx%4 == 0 {
		return steadyParityInstance(seed)
	}
	r := rand.New(rand.NewSource(seed))
	gk, gv := cluster.GPUAttr()
	b := cluster.NewBuilder()
	nodes := 0
	for i, racks := 0, 2+r.Intn(3); i < racks; i++ {
		n := 4 + r.Intn(5)
		var attrs map[string]string
		if r.Intn(3) == 0 {
			attrs = map[string]string{gk: gv}
		}
		b.AddRack(fmt.Sprintf("r%d", i), n, attrs)
		nodes += n
	}
	c := b.Build()

	nJobs := 8 + r.Intn(13)
	jobSeed := r.Int63()
	mkJobs := func() []*workload.Job {
		jr := rand.New(rand.NewSource(jobSeed))
		jobs := make([]*workload.Job, nJobs)
		for id := range jobs {
			j := &workload.Job{
				ID: id, Class: workload.BestEffort, Type: workload.Unconstrained,
				K: 1 + jr.Intn(4), BaseRuntime: int64(4 * (1 + jr.Intn(10))),
				Slowdown: float64(1 + jr.Intn(3)), Submit: int64(4 * jr.Intn(15)),
			}
			switch jr.Intn(5) {
			case 1:
				j.Type = workload.GPU
			case 2:
				j.Type = workload.MPI
			case 3:
				j.Type = workload.Elastic
				j.MinK = 1
			case 4:
				j.Type = workload.DataLocal
				lo := jr.Intn(nodes - j.K)
				for n := lo; n < lo+j.K+1 && n < nodes; n++ {
					j.DataNodes = append(j.DataNodes, n)
				}
			}
			if jr.Intn(10) < 6 {
				j.Class = workload.SLO
				j.Deadline = j.Submit + int64(float64(j.BaseRuntime)*j.Slowdown) + int64(4*(2+jr.Intn(20)))
				j.Reserved = jr.Intn(2) == 0
			}
			if jr.Intn(4) == 0 {
				j.EstErr = []float64{-0.5, -0.25, 0.5}[jr.Intn(3)]
			}
			jobs[id] = j
		}
		return jobs
	}

	inst := parityInstance{
		c:      c,
		mkJobs: mkJobs,
		cfg: core.Config{
			CyclePeriod:      4,
			PlanAhead:        int64(16 + 8*r.Intn(3)),
			EnablePreemption: idx%3 == 0,
		},
	}
	if r.Intn(4) == 0 {
		inst.cfg.MaxBatch = 4
	}
	if idx%5 == 2 {
		at := int64(8 + 4*r.Intn(10))
		inst.failures = []sim.NodeFailure{{Node: r.Intn(nodes), At: at, RecoverAt: at + int64(4*(1+r.Intn(5)))}}
	}
	return inst
}

// steadyParityInstance crafts guaranteed replay: a whole-cluster best-effort
// blocker whose 90% runtime under-estimate makes it overrun (pinning every
// believed release slice at one), while two data-local SLO jobs with far
// deadlines and value-culled remote fallbacks defer in place until the
// blocker's true completion frees the cluster.
func steadyParityInstance(seed int64) parityInstance {
	c := cluster.NewBuilder().AddRack("r0", 8, nil).Build()
	mkJobs := func() []*workload.Job {
		jobs := []*workload.Job{{
			ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained,
			K: 8, BaseRuntime: 60, Slowdown: 1, Submit: 0, EstErr: -0.9,
		}}
		for i, lo := range []int{0, 4} {
			jobs = append(jobs, &workload.Job{
				ID: i + 1, Class: workload.SLO, Reserved: true, Type: workload.DataLocal, Submit: 8,
				K: 2, BaseRuntime: 40, Slowdown: 10, Deadline: 400, DataNodes: []int{lo, lo + 1, lo + 2, lo + 3},
			})
		}
		return jobs
	}
	return parityInstance{
		c: c, mkJobs: mkJobs, steady: true,
		cfg: core.Config{CyclePeriod: 4, PlanAhead: 16},
	}
}

// TestIncrementalParityProperty is the policy-invariance property of the
// incremental scheduling layer: across seeded multi-cycle simulations —
// arrivals, completions, drops, overruns, node failures, preemptions — a run
// with cross-cycle reuse enabled must produce byte-identical per-job outcomes
// to the same run with DisableIncremental. The stats assertions keep both
// sides honest: disabled runs must never touch the reuse machinery, and the
// enabled runs must actually replay (every crafted steady instance, and in
// aggregate).
func TestIncrementalParityProperty(t *testing.T) {
	const instances = 220
	totalHits := 0
	for i := 0; i < instances; i++ {
		seed := int64(9000 + i)
		inst := randomParityInstance(i, seed)
		run := func(disable bool) (*sim.Result, *core.Scheduler) {
			cfg := inst.cfg
			cfg.DisableIncremental = disable
			sched := core.New(inst.c, cfg)
			res, err := sim.Run(sim.Config{
				Cluster: inst.c, Jobs: inst.mkJobs(), Scheduler: sched, Failures: inst.failures,
			})
			if err != nil {
				t.Fatalf("seed %d (disable=%v): %v", seed, disable, err)
			}
			return res, sched
		}
		on, onSched := run(false)
		off, offSched := run(true)

		if !reflect.DeepEqual(on.Stats, off.Stats) {
			for j := range on.Stats {
				if !reflect.DeepEqual(on.Stats[j], off.Stats[j]) {
					t.Errorf("seed %d: job %d diverged:\n  incremental: %+v\n  disabled:    %+v",
						seed, j, on.Stats[j], off.Stats[j])
				}
			}
		}
		if on.Makespan != off.Makespan || on.BusyNodeSeconds != off.BusyNodeSeconds || on.Stalled != off.Stalled {
			t.Errorf("seed %d: run shape diverged: makespan %d vs %d, busy %d vs %d, stalled %v vs %v",
				seed, on.Makespan, off.Makespan, on.BusyNodeSeconds, off.BusyNodeSeconds, on.Stalled, off.Stalled)
		}
		if offSched.Stats.ReuseHits != 0 || offSched.Stats.ReuseMisses != 0 {
			t.Errorf("seed %d: DisableIncremental run touched the reuse machinery (hits=%d misses=%d)",
				seed, offSched.Stats.ReuseHits, offSched.Stats.ReuseMisses)
		}
		if inst.steady && onSched.Stats.ReuseHits == 0 {
			t.Errorf("seed %d: crafted steady-state instance produced no reuse hits", seed)
		}
		totalHits += onSched.Stats.ReuseHits
	}
	if totalHits == 0 {
		t.Error("no reuse hits across any instance; the parity property never exercised replay")
	}
	t.Logf("aggregate reuse hits across %d instances: %d", instances, totalHits)
}
