// Command experiments regenerates the tables and figures of the TetriSched
// paper's evaluation (§6–7) using this repository's implementation.
//
// Usage:
//
//	experiments -all                 # every table and figure (slow)
//	experiments -fig 6               # just Fig 6
//	experiments -table 1             # just Table 1
//	experiments -fig 9 -jobs 120 -seeds 2
//	experiments -quick -all          # reduced scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tetrisched/internal/experiments"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every table and figure")
		fig     = flag.Int("fig", 0, "figure number to regenerate (6..12)")
		table   = flag.Int("table", 0, "table number to regenerate (1..2)")
		quick   = flag.Bool("quick", false, "reduced scale (fewer jobs/seeds)")
		jobs    = flag.Int("jobs", 0, "override jobs per run")
		seeds   = flag.Int("seeds", 0, "override seeds per point")
		solver  = flag.Duration("solver-limit", 0, "override per-solve time limit")
		workers = flag.Int("solver-workers", 0, "branch-and-bound workers per MILP solve (0 = serial)")
		ext     = flag.String("ext", "", "extension experiments: scale | preempt | elastic | shard")
		tsv     = flag.String("tsv", "", "also write each sub-figure as TSV into this directory")
	)
	flag.Parse()

	sc := experiments.Full()
	if *quick {
		sc = experiments.Quick()
	}
	if *jobs > 0 {
		sc.Jobs = *jobs
	}
	if *seeds > 0 {
		sc.Seeds = *seeds
	}
	if *solver > 0 {
		sc.SolverTimeLimit = *solver
	}
	if *workers > 0 {
		sc.SolverWorkers = *workers
	}
	if *tsv != "" {
		if err := os.MkdirAll(*tsv, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		experiments.SetTSVDir(*tsv)
	}

	start := time.Now()
	var err error
	switch {
	case *all:
		err = experiments.All(os.Stdout, sc)
	case *table == 1:
		err = experiments.Table1(os.Stdout)
	case *table == 2:
		err = experiments.Table2(os.Stdout)
	case *fig == 6:
		err = experiments.Fig6(os.Stdout, sc)
	case *fig == 7:
		err = experiments.Fig7(os.Stdout, sc)
	case *fig == 8:
		err = experiments.Fig8(os.Stdout, sc)
	case *fig == 9:
		err = experiments.Fig9(os.Stdout, sc)
	case *fig == 10:
		err = experiments.Fig10(os.Stdout, sc)
	case *fig == 11:
		err = experiments.Fig11(os.Stdout, sc)
	case *fig == 12:
		err = experiments.Fig12(os.Stdout, sc)
	case *ext == "scale":
		err = experiments.ExtScale(os.Stdout, sc)
	case *ext == "preempt":
		err = experiments.ExtPreempt(os.Stdout, sc)
	case *ext == "elastic":
		err = experiments.ExtElastic(os.Stdout, sc)
	case *ext == "shard":
		err = experiments.ExtShard(os.Stdout, sc)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "\n(total wall time %v)\n", time.Since(start).Round(time.Second))
}
