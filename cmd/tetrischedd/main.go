// Command tetrischedd runs the TetriSched scheduler as a standalone daemon
// behind an HTTP/JSON interface — the role the TetriSched daemon plays
// behind Apache Thrift in the paper's YARN integration (§3.3). A resource
// manager (or the bundled simulation client) submits jobs, triggers
// scheduling cycles with the current free-node set, and signals completions;
// the daemon answers with allocation decisions.
//
//	tetrischedd -listen :7140 -nodes 80 -racks 8 -gpu-racks 2 -plan-ahead 96
//
// Endpoints:
//
//	POST /v1/jobs         submit a job        {id, class, type, k, ...}
//	POST /v1/cycle        run one cycle       {now, free:[ids]} → decisions
//	POST /v1/completions  signal completion   {job_id, now}
//	GET  /v1/status       daemon state
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/httpapi"
)

func main() {
	var (
		listen    = flag.String("listen", ":7140", "listen address")
		nodes     = flag.Int("nodes", 80, "cluster size")
		racks     = flag.Int("racks", 8, "rack count (nodes split evenly)")
		gpuRacks  = flag.Int("gpu-racks", 2, "leading racks labeled gpu=true")
		planAhead = flag.Int64("plan-ahead", 96, "plan-ahead window in seconds")
		cycle     = flag.Int64("cycle", 4, "cycle period in seconds")
		quantum   = flag.Int64("plan-quantum", 0, "planning time-slice in seconds (0 = cycle period)")
		greedy    = flag.Bool("greedy", false, "TetriSched-NG (greedy per-job)")
		noHet     = flag.Bool("no-het", false, "TetriSched-NH (no soft constraints)")
		preempt   = flag.Bool("preempt", false, "enable best-effort preemption")
		limit     = flag.Duration("solver-limit", 300*time.Millisecond, "per-solve MILP time limit")
		workers   = flag.Int("solver-workers", 0, "branch-and-bound workers per MILP solve (0 = one per CPU)")
		gap       = flag.Float64("gap", 0.1, "relative MIP gap")
	)
	flag.Parse()

	b := cluster.NewBuilder()
	perRack := (*nodes + *racks - 1) / *racks
	id := 0
	for r := 0; r < *racks && id < *nodes; r++ {
		var attrs map[string]string
		if r < *gpuRacks {
			k, v := cluster.GPUAttr()
			attrs = map[string]string{k: v}
		}
		for i := 0; i < perRack && id < *nodes; i++ {
			b.AddNode(fmt.Sprintf("r%d/n%d", r, i), fmt.Sprintf("r%d", r), attrs)
			id++
		}
	}
	c := b.Build()

	sched := core.New(c, core.Config{
		CyclePeriod:      *cycle,
		PlanQuantum:      *quantum,
		PlanAhead:        *planAhead,
		Greedy:           *greedy,
		NoHet:            *noHet,
		EnablePreemption: *preempt,
		SolverTimeLimit:  *limit,
		SolverWorkers:    workerCount(*workers),
		Gap:              *gap,
	})
	srv := httpapi.NewServer(sched, c.N())
	log.Printf("tetrischedd: %s on %d nodes (%d racks, %d gpu), listening on %s",
		sched.Name(), c.N(), *racks, *gpuRacks, *listen)
	log.Fatal(http.ListenAndServe(*listen, srv.Handler()))
}

// workerCount resolves the -solver-workers flag: 0 means one worker per CPU.
func workerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
