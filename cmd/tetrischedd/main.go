// Command tetrischedd runs the TetriSched scheduler as a standalone daemon
// behind an HTTP/JSON interface — the role the TetriSched daemon plays
// behind Apache Thrift in the paper's YARN integration (§3.3). A resource
// manager (or the bundled simulation client) submits jobs, triggers
// scheduling cycles with the current free-node set, and signals completions;
// the daemon answers with allocation decisions.
//
//	tetrischedd -listen :7140 -nodes 80 -racks 8 -gpu-racks 2 -plan-ahead 96
//
// Endpoints:
//
//	POST /v1/submit       submit a batch (JSON array) or stream (NDJSON)
//	POST /v1/jobs         submit a job        {id, class, type, k, ...}
//	POST /v1/cycle        run one cycle       {now, free:[ids]} → decisions
//	POST /v1/completions  signal completion   {job_id, now}
//	GET  /v1/status       daemon state incl. cumulative solver telemetry
//	GET  /v1/trace        Chrome trace-event snapshot of the trace ring
//	GET  /metrics         Prometheus text metrics
//
// The /v1/submit front door admits into a bounded ingress queue (-max-queue)
// drained into the scheduler by a weighted-fair dequeue at each cycle
// (-admit-burst jobs per cycle). Per-tenant weights and quotas come from the
// -tenants JSON file, rereadable at runtime with SIGHUP (accrued fair-share
// and rate-limit state survives the reload); submissions the queue cannot
// take are refused with
// 429 + Retry-After rather than buffered. -admission-log appends one NDJSON
// record per admission decision for offline audit.
//
// With -debug-addr set, net/http/pprof is served on that address (and only
// there — the main listener never exposes it). The daemon shuts down
// gracefully on SIGINT/SIGTERM: in-flight cycle requests complete before
// the process exits. See docs/OBSERVABILITY.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/httpapi"
	"tetrisched/internal/trace"
)

func main() {
	var (
		listen    = flag.String("listen", ":7140", "listen address")
		nodes     = flag.Int("nodes", 80, "cluster size")
		racks     = flag.Int("racks", 8, "rack count (nodes split evenly)")
		gpuRacks  = flag.Int("gpu-racks", 2, "leading racks labeled gpu=true")
		planAhead = flag.Int64("plan-ahead", 96, "plan-ahead window in seconds")
		cycle     = flag.Int64("cycle", 4, "cycle period in seconds")
		quantum   = flag.Int64("plan-quantum", 0, "planning time-slice in seconds (0 = cycle period)")
		greedy    = flag.Bool("greedy", false, "TetriSched-NG (greedy per-job)")
		noHet     = flag.Bool("no-het", false, "TetriSched-NH (no soft constraints)")
		preempt   = flag.Bool("preempt", false, "enable best-effort preemption")
		limit     = flag.Duration("solver-limit", 300*time.Millisecond, "per-solve MILP time limit")
		workers   = flag.Int("solver-workers", 0, "branch-and-bound workers per MILP solve (0 = one per CPU)")
		gap       = flag.Float64("gap", 0.1, "relative MIP gap")
		noPresolv = flag.Bool("no-presolve", false, "disable MILP presolve/model reduction (bisection switch)")
		noIncr    = flag.Bool("no-incremental", false, "disable cross-cycle component reuse (bisection switch)")
		noFECache = flag.Bool("no-compile-cache", false, "disable the expression/compile front-end caches (bisection switch)")
		shards    = flag.Int("shards", 0, "sharded control plane: concurrent per-shard planners with optimistic commit (0 = monolithic)")
		traceRing = flag.Int("trace-ring", 16384, "trace ring size in events served by /v1/trace (0 disables tracing)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = pprof disabled)")
		drain     = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
		maxQueue  = flag.Int("max-queue", 65536, "bounded ingress queue for POST /v1/submit; overflow answers 429 + Retry-After")
		burst     = flag.Int("admit-burst", 1024, "max jobs the weighted-fair dequeue admits to the scheduler per cycle")
		tenants   = flag.String("tenants", "", "JSON file of per-tenant admission config: [{\"name\",\"weight\",\"quota\",\"rate\",\"burst\"},...] (quota 0 = lockout, <0 = unlimited; rate in jobs/sec, <=0 = unlimited)")
		admitLog  = flag.String("admission-log", "", "append NDJSON admission-decision records to this file (empty = disabled)")
	)
	flag.Parse()

	b := cluster.NewBuilder()
	perRack := (*nodes + *racks - 1) / *racks
	id := 0
	for r := 0; r < *racks && id < *nodes; r++ {
		var attrs map[string]string
		if r < *gpuRacks {
			k, v := cluster.GPUAttr()
			attrs = map[string]string{k: v}
		}
		for i := 0; i < perRack && id < *nodes; i++ {
			b.AddNode(fmt.Sprintf("r%d/n%d", r, i), fmt.Sprintf("r%d", r), attrs)
			id++
		}
	}
	c := b.Build()

	var tr *trace.Tracer
	if *traceRing > 0 {
		tr = trace.New(*traceRing)
	}
	sched := core.New(c, core.Config{
		CyclePeriod:         *cycle,
		PlanQuantum:         *quantum,
		PlanAhead:           *planAhead,
		Greedy:              *greedy,
		NoHet:               *noHet,
		EnablePreemption:    *preempt,
		SolverTimeLimit:     *limit,
		SolverWorkers:       workerCount(*workers),
		Gap:                 *gap,
		DisablePresolve:     *noPresolv,
		DisableIncremental:  *noIncr,
		DisableCompileCache: *noFECache,
		Shards:              *shards,
		Tracer:              tr,
	})
	admCfg := httpapi.AdmissionConfig{MaxQueue: *maxQueue, Burst: *burst}
	if *tenants != "" {
		buf, err := os.ReadFile(*tenants)
		if err != nil {
			log.Fatalf("tetrischedd: -tenants: %v", err)
		}
		if err := json.Unmarshal(buf, &admCfg.Tenants); err != nil {
			log.Fatalf("tetrischedd: -tenants %s: %v", *tenants, err)
		}
		log.Printf("tetrischedd: %d tenants configured from %s", len(admCfg.Tenants), *tenants)
	}
	api := httpapi.NewServer(sched, c.N()).SetTracer(tr).SetAdmission(admCfg)
	if *tenants != "" {
		// SIGHUP rereads -tenants and applies it live: limits move, but
		// queued jobs, fair-share state, and token balances survive.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				buf, err := os.ReadFile(*tenants)
				if err != nil {
					log.Printf("tetrischedd: -tenants reload: %v", err)
					continue
				}
				var tcs []httpapi.TenantConfig
				if err := json.Unmarshal(buf, &tcs); err != nil {
					log.Printf("tetrischedd: -tenants reload %s: %v", *tenants, err)
					continue
				}
				api.ReconfigureTenants(tcs)
				log.Printf("tetrischedd: reloaded %d tenants from %s", len(tcs), *tenants)
			}
		}()
	}
	if *admitLog != "" {
		f, err := os.OpenFile(*admitLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("tetrischedd: -admission-log: %v", err)
		}
		defer f.Close()
		api.SetAdmissionLog(f)
		defer api.FlushAdmissionLog()
	}
	srv := &http.Server{Addr: *listen, Handler: api.Handler()}

	if *debugAddr != "" {
		go func() {
			log.Printf("tetrischedd: pprof on %s/debug/pprof/", *debugAddr)
			// DefaultServeMux carries the pprof handlers; the main listener
			// uses its own mux and never exposes them.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("tetrischedd: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("tetrischedd: %s on %d nodes (%d racks, %d gpu), listening on %s",
		sched.Name(), c.N(), *racks, *gpuRacks, *listen)

	select {
	case err := <-errc:
		log.Fatalf("tetrischedd: %v", err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		log.Printf("tetrischedd: signal received, draining in-flight requests (max %v)", *drain)
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("tetrischedd: shutdown: %v", err)
		}
		st := sched.Stats
		log.Printf("tetrischedd: bye (solves=%d bb-nodes=%d warm-hit=%.0f%%)",
			st.Solves, st.Nodes, 100*st.WarmHitRate())
	}
}

// workerCount resolves the -solver-workers flag: 0 means one worker per CPU.
func workerCount(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
