// Command tetrisim runs a single cluster-scheduling simulation and prints
// the paper's success metrics.
//
// Usage:
//
//	tetrisim -cluster rc80 -workload gshet -sched tetrisched -jobs 120
//	tetrisim -sched ng -plan-ahead 144 -err -20
//	tetrisim -sched cs -workload grmix -cluster rc256 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"tetrisched/internal/capsched"
	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/trace"
	"tetrisched/internal/viz"
	"tetrisched/internal/workload"
)

func main() {
	var (
		clusterName = flag.String("cluster", "rc80", "cluster: rc80 | rc256 (het variants: rc80het, rc256het)")
		mixName     = flag.String("workload", "gsmix", "workload: grslo | grmix | gsmix | gshet")
		schedName   = flag.String("sched", "tetrisched", "scheduler: tetrisched | nh | ng | np | cs")
		jobs        = flag.Int("jobs", 150, "number of jobs")
		seed        = flag.Int64("seed", 1, "workload seed")
		estErr      = flag.Float64("err", 0, "runtime estimate error in percent (e.g. -50, 100)")
		planAhead   = flag.Int64("plan-ahead", 96, "plan-ahead window in seconds")
		planQuantum = flag.Int64("plan-quantum", 0, "planning time-slice in seconds (0 = cycle period)")
		cycle       = flag.Int64("cycle", 4, "scheduling cycle period in seconds")
		util        = flag.Float64("util", 1.0, "offered load as a fraction of capacity")
		slackMin    = flag.Float64("slack-min", 0, "deadline slack lower bound (×runtime; 0 = mix default)")
		slackMax    = flag.Float64("slack-max", 0, "deadline slack upper bound (×runtime; 0 = mix default)")
		limit       = flag.Duration("solver-limit", 300*time.Millisecond, "MILP time limit per solve")
		workers     = flag.Int("solver-workers", 1, "branch-and-bound workers per MILP solve (0 = one per CPU)")
		noPresolve  = flag.Bool("no-presolve", false, "disable MILP presolve/model reduction (bisection switch)")
		noIncr      = flag.Bool("no-incremental", false, "disable cross-cycle component reuse (bisection switch)")
		noCompCache = flag.Bool("no-compile-cache", false, "disable the expression/compile front-end caches (bisection switch)")
		shards      = flag.Int("shards", 0, "sharded control plane: concurrent per-shard planners with optimistic commit (0 = monolithic)")
		verbose     = flag.Bool("v", false, "print per-job outcomes")
		gantt       = flag.Bool("gantt", false, "render the space-time schedule grid")
		saveTrace   = flag.String("save-trace", "", "write the generated workload to a JSON trace file")
		loadTrace   = flag.String("load-trace", "", "replay a JSON trace file instead of generating")
		execTrace   = flag.String("trace", "", "stream an execution trace to this file: .jsonl = JSON Lines, anything else = Chrome trace-event JSON (Perfetto)")
	)
	flag.Parse()

	var tracer *trace.Tracer
	var traceFile *os.File
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			fatal("trace: %v", err)
		}
		traceFile = f
		var sink trace.Sink
		if strings.HasSuffix(*execTrace, ".jsonl") {
			sink = trace.NewJSONLSink(f)
		} else {
			sink = trace.NewChromeSink(f)
		}
		tracer = trace.New(1024).SetSink(sink)
	}

	var c *cluster.Cluster
	switch strings.ToLower(*clusterName) {
	case "rc80":
		c = cluster.RC80(strings.Contains(strings.ToLower(*mixName), "het"))
	case "rc80het":
		c = cluster.RC80(true)
	case "rc256":
		c = cluster.RC256(strings.Contains(strings.ToLower(*mixName), "het"))
	case "rc256het":
		c = cluster.RC256(true)
	default:
		fatal("unknown cluster %q", *clusterName)
	}

	var mix workload.Mix
	switch strings.ToLower(*mixName) {
	case "grslo":
		mix = workload.GRSLO(*jobs)
	case "grmix":
		mix = workload.GRMIX(*jobs)
	case "gsmix":
		mix = workload.GSMIX(*jobs)
	case "gshet":
		mix = workload.GSHET(*jobs)
	default:
		fatal("unknown workload %q", *mixName)
	}
	mix.EstErr = *estErr / 100
	mix.TargetUtil = *util
	if *slackMin > 0 {
		mix.DeadlineSlackMin = *slackMin
	}
	if *slackMax > 0 {
		mix.DeadlineSlackMax = *slackMax
	}

	var jobsList []*workload.Job
	if *loadTrace != "" {
		var err error
		jobsList, err = workload.LoadTrace(*loadTrace)
		if err != nil {
			fatal("load trace: %v", err)
		}
	} else {
		var err error
		jobsList, err = workload.Generate(mix, c, *seed)
		if err != nil {
			fatal("generate: %v", err)
		}
	}
	if *saveTrace != "" {
		if err := workload.SaveTrace(*saveTrace, jobsList); err != nil {
			fatal("save trace: %v", err)
		}
	}

	plan := rayon.NewPlan(c.N(), *cycle)
	var sched sim.Scheduler
	base := core.Config{CyclePeriod: *cycle, PlanAhead: *planAhead, PlanQuantum: *planQuantum,
		SolverTimeLimit: *limit, SolverWorkers: solverWorkers(*workers), Tracer: tracer,
		DisablePresolve: *noPresolve, DisableIncremental: *noIncr, DisableCompileCache: *noCompCache, Shards: *shards}
	switch strings.ToLower(*schedName) {
	case "tetrisched", "full":
		sched = core.New(c, base)
	case "nh":
		base.NoHet = true
		sched = core.New(c, base)
	case "ng":
		base.Greedy = true
		sched = core.New(c, base)
	case "np":
		base.PlanAhead = 0
		sched = core.New(c, base)
	case "cs", "rayoncs":
		sched = capsched.New(c, plan)
	default:
		fatal("unknown scheduler %q", *schedName)
	}

	start := time.Now()
	res, err := sim.Run(sim.Config{
		Cluster: c, Jobs: jobsList, Scheduler: sched, Plan: plan, CyclePeriod: *cycle,
		Tracer: tracer,
	})
	if err != nil {
		fatal("simulation: %v", err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			fatal("trace: %v", err)
		}
		if err := traceFile.Close(); err != nil {
			fatal("trace: %v", err)
		}
		fmt.Printf("execution trace written to %s\n", *execTrace)
	}
	sum := metrics.Summarize(sched.Name(), res, c.N())
	fmt.Printf("cluster=%s workload=%s jobs=%d err=%+.0f%% plan-ahead=%ds\n",
		*clusterName, mix.Name, len(jobsList), *estErr, *planAhead)
	fmt.Println(sum)
	fmt.Printf("categories: accepted-SLO=%d SLO-no-res=%d BE=%d; sim-makespan=%ds wall=%v\n",
		sum.NumAccepted, sum.NumNoRes, sum.NumBE, res.Makespan, time.Since(start).Round(time.Millisecond))
	if len(sum.SolverLatencies) > 0 {
		cdf := metrics.NewDurationCDF(sum.SolverLatencies)
		fmt.Printf("solver latency: mean=%.1fms p50=%.1fms p99=%.1fms\n",
			cdf.Mean(), cdf.Percentile(50), cdf.Percentile(99))
	}
	if *gantt {
		fmt.Println()
		viz.Render(os.Stdout, c, res, viz.Options{MaxRows: 48})
	}
	if *verbose {
		if cs, ok := sched.(*core.Scheduler); ok {
			st := cs.Stats
			fmt.Printf("solver: solves=%d nodes=%d max-nodes=%d workers=%d lp-iters=%d phase1=%d warm-lp=%d cold-lp=%d decomposed=%d components=%d\n",
				st.Solves, st.Nodes, st.MaxNodes, st.Workers, st.LPIters, st.Phase1, st.WarmLPs, st.ColdLPs, st.Decomposed, st.Components)
			fmt.Printf("presolve: vars-fixed=%d rows-dropped=%d cliques-merged=%d rounds=%d time=%v\n",
				st.PresolveFixed, st.PresolveRows, st.PresolveCliques, st.PresolveRounds, st.PresolveTime.Round(time.Microsecond))
			fmt.Printf("basis: factorizations=%d eta-updates=%d dense-fallbacks=%d\n",
				st.Factorizations, st.EtaUpdates, st.DenseFallbacks)
			fmt.Printf("cuts: rounds=%d cover=%d clique=%d  branching: pseudocost=%d fractional=%d\n",
				st.CutRounds, st.CoverCuts, st.CliqueCuts, st.PseudocostBranches, st.FractionalBranches)
			fmt.Printf("reuse: hits=%d misses=%d hit-rate=%.1f%%\n",
				st.ReuseHits, st.ReuseMisses, 100*st.ReuseHitRate())
			fmt.Printf("frontend: expr-hits=%d expr-misses=%d compile-skips=%d compile-jobs=%d skip-rate=%.1f%% generate=%v compile=%v\n",
				st.ExprHits, st.ExprMisses, st.CompileSkips, st.CompileJobs, 100*st.CompileSkipRate(),
				(time.Duration(st.GenerateNS) * time.Nanosecond).Round(time.Microsecond),
				(time.Duration(st.CompileNS) * time.Nanosecond).Round(time.Microsecond))
			if sh := cs.ShardStatsSnapshot(); sh.Shards > 0 {
				fmt.Printf("shard: shards=%d partitioner=%s cycles=%d spanning=%d conflicts=%d requeued=%d arb-launched=%d arb-deferred=%d\n",
					sh.Shards, sh.Partitioner, sh.Cycles, sh.Spanning, sh.Conflicts, sh.Requeued, sh.ArbLaunched, sh.ArbDeferred)
			}
		}
		fmt.Println("\n  id class type  k   submit    start   finish deadline  outcome")
		for i := range res.Stats {
			st := &res.Stats[i]
			outcome := "completed"
			switch {
			case st.Dropped:
				outcome = "dropped"
			case st.Job.Class == workload.SLO && st.MetSLO():
				outcome = "met-SLO"
			case st.Job.Class == workload.SLO:
				outcome = "missed-SLO"
			}
			fmt.Printf("%4d %5s %4s %2d %8d %8d %8d %8d  %s\n",
				st.Job.ID, st.Job.Class, st.Job.Type, st.Job.K,
				st.Job.Submit, st.Start, st.Finish, st.Job.Deadline, outcome)
		}
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tetrisim: "+format+"\n", args...)
	os.Exit(1)
}

// solverWorkers resolves the -solver-workers flag: 0 means one worker per CPU.
func solverWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}
