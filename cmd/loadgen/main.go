// Command loadgen drives a tetrischedd front door with sustained batched
// job submissions and reports throughput, admission-latency percentiles
// (p50/p90/p99), and the backpressure (429) rate.
//
//	loadgen -url http://127.0.0.1:7140 -duration 5s -workers 16 -batch 64
//
// With -spawn, loadgen starts an in-process daemon on a loopback port and
// load-tests that, so a single command exercises the whole admission path
// with no external setup (this is what `make loadgen-smoke` runs):
//
//	loadgen -spawn -duration 2s -cycle-every 50ms -min-qps 1000 -max-5xx 0
//
// -rate switches from closed-loop (each worker keeps one request in flight)
// to open-loop (batches dispatched on a fixed jobs/sec schedule; overload
// surfaces as "missed" dispatches instead of client-side queueing).
//
// -min-qps and -max-5xx are exit-status gates for CI: the run fails (exit 1)
// if the accepted jobs/sec falls below -min-qps or more than -max-5xx
// requests answered 5xx. -bench additionally prints the result as a
// `go test -bench`-style line so it can be piped into cmd/benchjson.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/httpapi"
	"tetrisched/internal/loadgen"
)

func main() {
	var (
		url        = flag.String("url", "http://127.0.0.1:7140", "daemon base URL")
		spawn      = flag.Bool("spawn", false, "start an in-process daemon on a loopback port and target it")
		duration   = flag.Duration("duration", 5*time.Second, "run length")
		workers    = flag.Int("workers", 16, "concurrent in-flight requests")
		rate       = flag.Float64("rate", 0, "open-loop target in jobs/sec (0 = closed loop)")
		batch      = flag.Int("batch", 64, "jobs per submit request")
		tenants    = flag.String("tenants", "default", "comma-separated tenant names cycled across requests")
		maxJobs    = flag.Int64("max-jobs", 0, "stop after this many jobs (0 = run for -duration)")
		cycleEvery = flag.Duration("cycle-every", 0, "drive POST /v1/cycle at this period so the queue drains (0 = never)")
		maxQueue   = flag.Int("spawn-queue", 1<<16, "ingress queue bound for the -spawn daemon")
		minQPS     = flag.Float64("min-qps", 0, "fail (exit 1) if accepted jobs/sec is below this")
		max5xx     = flag.Int64("max-5xx", -1, "fail (exit 1) if more than this many requests answered 5xx (-1 = no gate)")
		bench      = flag.Bool("bench", false, "also print a go-bench-format line for cmd/benchjson")
	)
	flag.Parse()

	target := *url
	if *spawn {
		addr, shutdown, err := spawnDaemon(*maxQueue)
		if err != nil {
			log.Fatalf("loadgen: spawn: %v", err)
		}
		defer shutdown()
		target = "http://" + addr
		log.Printf("loadgen: spawned in-process daemon on %s", target)
	}

	cfg := loadgen.Config{
		BaseURL:    target,
		Workers:    *workers,
		Rate:       *rate,
		Batch:      *batch,
		Tenants:    strings.Split(*tenants, ","),
		MaxJobs:    *maxJobs,
		Duration:   *duration,
		CycleEvery: *cycleEvery,
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Println(res)
	if *bench {
		// One go-bench-format line so the run lands in BENCH_milp.json via
		// `loadgen ... -bench | go run ./cmd/benchjson`.
		nsPerJob := float64(res.Elapsed.Nanoseconds()) / float64(max64(res.Jobs, 1))
		fmt.Printf("BenchmarkLoadgenCLI \t%d\t%.1f ns/op\t%.0f jobs/sec\t%d p50-ns\t%d p99-ns\t%.4f reject-rate\n",
			res.Jobs, nsPerJob, res.OfferedRate(), res.P50.Nanoseconds(), res.P99.Nanoseconds(), res.RejectRate())
	}

	failed := false
	if *minQPS > 0 && res.AcceptedRate() < *minQPS {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: accepted %.0f jobs/sec < -min-qps %.0f\n", res.AcceptedRate(), *minQPS)
		failed = true
	}
	if *max5xx >= 0 && res.Err5xx > *max5xx {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: %d requests answered 5xx > -max-5xx %d\n", res.Err5xx, *max5xx)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// spawnDaemon starts a small in-process tetrischedd on a loopback port and
// returns its address and a shutdown func.
func spawnDaemon(maxQueue int) (string, func(), error) {
	b := cluster.NewBuilder()
	for r := 0; r < 4; r++ {
		for i := 0; i < 8; i++ {
			b.AddNode(fmt.Sprintf("r%d/n%d", r, i), fmt.Sprintf("r%d", r), nil)
		}
	}
	c := b.Build()
	sched := core.New(c, core.Config{
		CyclePeriod:     4,
		PlanAhead:       96,
		SolverTimeLimit: 50 * time.Millisecond,
		Gap:             0.1,
	})
	api := httpapi.NewServer(sched, c.N()).
		SetAdmission(httpapi.AdmissionConfig{MaxQueue: maxQueue})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: api.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
