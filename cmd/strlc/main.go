// Command strlc compiles a textual STRL expression against a described
// cluster, prints the generated MILP, solves it, and shows the resulting
// space-time allocation. It is the quickest way to explore the language of
// §4 interactively.
//
// Usage:
//
//	echo 'max(nCk({gpu}, k=2, start=0, dur=2, v=4),
//	          nCk({*},   k=2, start=0, dur=3, v=3))' | strlc -nodes 4 -gpus 2
//
//	strlc -nodes 3 -horizon 4 -e 'sum(
//	    nCk({*}, k=2, start=0, dur=1, v=1),
//	    max(nCk({*}, k=1, start=0, dur=2, v=1), nCk({*}, k=1, start=2, dur=2, v=1)))'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "cluster size")
		gpus     = flag.Int("gpus", 0, "number of GPU-labeled nodes (lowest IDs)")
		racks    = flag.Int("racks", 1, "number of racks (nodes split evenly)")
		horizon  = flag.Int64("horizon", 0, "plan-ahead window in slices (default: expression horizon)")
		expr     = flag.String("e", "", "expression (default: read stdin)")
		busyStr  = flag.String("busy", "", "comma-separated node:releaseSlice pairs, e.g. 0:2,1:2")
		showMILP = flag.Bool("milp", true, "print the generated MILP")
	)
	flag.Parse()

	src := *expr
	if src == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal("reading stdin: %v", err)
		}
		src = string(data)
	}

	b := cluster.NewBuilder()
	perRack := (*nodes + *racks - 1) / *racks
	id := 0
	for r := 0; r < *racks && id < *nodes; r++ {
		for i := 0; i < perRack && id < *nodes; i++ {
			attrs := map[string]string{}
			if id < *gpus {
				attrs["gpu"] = "true"
			}
			b.AddNode(fmt.Sprintf("r%d/n%d", r, i), fmt.Sprintf("r%d", r), attrs)
			id++
		}
	}
	c := b.Build()

	e, err := strl.Parse(src, strl.ClusterResolver{C: c})
	if err != nil {
		fatal("%v", err)
	}
	fmt.Println("parsed STRL:")
	fmt.Println(" ", e)

	h := *horizon
	if h <= 0 {
		h = strl.Horizon(e)
	}
	var release []int64
	if *busyStr != "" {
		release = make([]int64, c.N())
		for _, pair := range strings.Split(*busyStr, ",") {
			var n int
			var rel int64
			if _, err := fmt.Sscanf(strings.TrimSpace(pair), "%d:%d", &n, &rel); err != nil {
				fatal("bad -busy entry %q", pair)
			}
			if n < 0 || n >= c.N() {
				fatal("-busy node %d out of range", n)
			}
			release[n] = rel
		}
	}

	comp, err := compiler.Compile([]strl.Expr{e}, compiler.Options{
		Universe: c.N(), Horizon: h, ReleaseAt: release,
	})
	if err != nil {
		fatal("compile: %v", err)
	}
	fmt.Printf("\npartition groups (%d):\n", len(comp.Part.Groups))
	for i, g := range comp.Part.Groups {
		fmt.Printf("  g%d = %s\n", i, nodeNames(c, g))
	}
	if *showMILP {
		fmt.Printf("\nMILP (%d vars, %d constraints):\n%s\n", comp.Model.NumVars(), comp.Model.NumConstraints(), comp.Model)
	}

	sol, err := milp.Solve(comp.Model, milp.Options{})
	if err != nil {
		fatal("solve: %v", err)
	}
	fmt.Printf("solution: status=%v objective=%g (%d branch-and-bound nodes)\n", sol.Status, sol.Objective, sol.Nodes)
	if sol.Values == nil {
		return
	}
	grants := comp.Decode(sol)
	if len(grants) == 0 {
		fmt.Println("no leaves granted")
		return
	}
	fmt.Println("grants:")
	for _, g := range grants {
		fmt.Printf("  start=%d dur=%d total=%d  leaf=%s\n", g.Start, g.Dur, g.Total, g.Leaf)
		for grp, cnt := range g.Counts {
			fmt.Printf("      %d node(s) from group g%d %s\n", cnt, grp, nodeNames(c, comp.Part.Groups[grp]))
		}
	}
}

func nodeNames(c *cluster.Cluster, s *bitset.Set) string {
	var names []string
	s.ForEach(func(i int) bool {
		names = append(names, c.Node(cluster.NodeID(i)).Name)
		return len(names) < 12
	})
	if s.Count() > 12 {
		names = append(names, fmt.Sprintf("… %d total", s.Count()))
	}
	return "{" + strings.Join(names, ", ") + "}"
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "strlc: "+format+"\n", args...)
	os.Exit(1)
}
