package main

import (
	"io"
	"math"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
cpu: Fake CPU @ 2.00GHz
BenchmarkBatchedSolve24Serial-4   	    1000	    180000 ns/op	   50000 B/op	     400 allocs/op
BenchmarkBatchedSolve24Serial-4   	    1000	    200000 ns/op	   50000 B/op	     400 allocs/op
BenchmarkBatchedSolve48Serial-4   	     500	    600000 ns/op	  120000 B/op	     900 allocs/op
PASS
`

func TestBuildReport(t *testing.T) {
	rep, err := buildReport(strings.NewReader(benchOutput), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Fake CPU @ 2.00GHz" {
		t.Errorf("environment lines misparsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b24 := rep.Benchmarks[0]
	if b24.Name != "BenchmarkBatchedSolve24Serial" || b24.Runs != 2 {
		t.Errorf("first summary = %+v", b24)
	}
	if b24.NsPerOpMin != 180000 || b24.NsPerOpMean != 190000 || b24.NsPerOpMax != 200000 {
		t.Errorf("ns/op min/mean/max = %v/%v/%v, want 180000/190000/200000",
			b24.NsPerOpMin, b24.NsPerOpMean, b24.NsPerOpMax)
	}
	if b24.BytesPerOp != 50000 || b24.AllocsPerOp != 400 {
		t.Errorf("memory stats = %v B/op %v allocs/op", b24.BytesPerOp, b24.AllocsPerOp)
	}
}

// TestOneSidedBenchmarksNeverFail pins the gate semantics: a comparison
// where the two reports share no benchmark at all must warn-and-skip every
// entry and exit clean, whichever side is missing.
func TestOneSidedBenchmarksNeverFail(t *testing.T) {
	base := &report{Benchmarks: []summary{{Name: "BenchmarkOnlyInBaseline", NsPerOpMean: 100}}}
	cur := &report{Benchmarks: []summary{{Name: "BenchmarkOnlyInCurrent", NsPerOpMean: 9999999}}}
	var out strings.Builder
	if compareReports(base, cur, 0.0, 0.0, &out) {
		t.Errorf("disjoint benchmark sets must not fail the gate:\n%s", out.String())
	}
	if got := strings.Count(out.String(), "skipped"); got != 2 {
		t.Errorf("want 2 skip warnings, got %d:\n%s", got, out.String())
	}
}

// TestCustomMetricsCaptured: b.ReportMetric units beyond the standard three
// land in the summary's Metrics map (averaged over repetitions).
func TestCustomMetricsCaptured(t *testing.T) {
	const out = `goos: linux
BenchmarkLoadgenAdmission-4	100000	10000 ns/op	50000 jobs/sec	2000000 p99-ns	0.10 reject-rate	100 B/op	2 allocs/op
BenchmarkLoadgenAdmission-4	100000	12000 ns/op	70000 jobs/sec	4000000 p99-ns	0.30 reject-rate	100 B/op	2 allocs/op
PASS
`
	rep, err := buildReport(strings.NewReader(out), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.NsPerOpMean != 11000 || b.BytesPerOp != 100 || b.AllocsPerOp != 2 {
		t.Errorf("standard stats misparsed: %+v", b)
	}
	want := map[string]float64{"jobs/sec": 60000, "p99-ns": 3000000, "reject-rate": 0.20}
	for unit, v := range want {
		if got := b.Metrics[unit]; math.Abs(got-v) > 1e-9*v {
			t.Errorf("Metrics[%q] = %v, want %v", unit, got, v)
		}
	}
}

func TestBuildReportEmpty(t *testing.T) {
	if _, err := buildReport(strings.NewReader("PASS\n"), io.Discard); err == nil {
		t.Error("no benchmark lines must be an error")
	}
}

// TestCompareTwoTierGate pins the noise-tolerant gate semantics: deltas are
// judged on min ns/op; a single noisy flier between the geomean threshold
// and the per-benchmark limit warns without failing; the gate fails on
// either an isolated blowup past -max-single or suite-wide geomean drift.
func TestCompareTwoTierGate(t *testing.T) {
	mk := func(deltas ...float64) *report {
		rep := &report{}
		for i, d := range deltas {
			rep.Benchmarks = append(rep.Benchmarks, summary{
				Name:        "Benchmark" + string(rune('A'+i)),
				NsPerOpMin:  1000 * (1 + d),
				NsPerOpMean: 1100 * (1 + d),
			})
		}
		return rep
	}
	base := mk(0, 0, 0, 0, 0)

	// One +25% flier among stable benchmarks: per-benchmark noise, the
	// suite geomean stays under threshold — warn, not a failure.
	var out strings.Builder
	if compareReports(base, mk(0, 0.25, 0, 0, 0), 0.10, 0.50, &out) {
		t.Errorf("a lone +25%% flier under the per-benchmark limit must not fail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "warn") || strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("the flier must be labeled warn, nothing REGRESSED:\n%s", out.String())
	}

	// One +80% blowup: past the per-benchmark limit, fails even though the
	// 5-benchmark geomean (+12.5%) alone might drown in suite noise.
	out.Reset()
	if !compareReports(base, mk(0, 0.80, 0, 0, 0), 0.20, 0.50, &out) {
		t.Errorf("an isolated +80%% blowup must fail the gate:\n%s", out.String())
	}

	// Every benchmark +15%: systemic drift, the geomean catches it even
	// though no single benchmark is past the per-benchmark limit.
	out.Reset()
	if !compareReports(base, mk(0.15, 0.15, 0.15, 0.15, 0.15), 0.10, 0.50, &out) {
		t.Errorf("suite-wide +15%% drift must fail via the geomean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "suite geomean") {
		t.Errorf("output must report the suite geomean:\n%s", out.String())
	}

	// Min is the judged statistic: mean +30% with min +2% is repetition
	// noise, not a regression.
	out.Reset()
	base1 := &report{Benchmarks: []summary{{Name: "BenchmarkA", NsPerOpMin: 1000, NsPerOpMean: 1100}}}
	noisy := &report{Benchmarks: []summary{{Name: "BenchmarkA", NsPerOpMin: 1020, NsPerOpMean: 1430}}}
	if compareReports(base1, noisy, 0.10, 0.50, &out) {
		t.Errorf("min +2%% with mean +30%% is repetition noise, must pass:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "+2.0% (mean   +30.0%)  ok") {
		t.Errorf("noisy-mean benchmark must be judged on its min delta:\n%s", out.String())
	}
}

func TestCompareReports(t *testing.T) {
	base := &report{Date: "2026-01-01T00:00:00Z", Benchmarks: []summary{
		{Name: "BenchmarkA", NsPerOpMean: 1000},
		{Name: "BenchmarkB", NsPerOpMean: 1000},
		{Name: "BenchmarkGone", NsPerOpMean: 500},
	}}
	cur := &report{Benchmarks: []summary{
		{Name: "BenchmarkA", NsPerOpMean: 1050}, // +5%: under threshold
		{Name: "BenchmarkB", NsPerOpMean: 1300}, // +30%: pushes the 2-benchmark geomean to +16.8%
		{Name: "BenchmarkNew", NsPerOpMean: 42}, // no baseline
	}}

	// Reports without min tracking fall back to mean deltas throughout.
	var out strings.Builder
	if !compareReports(base, cur, 0.10, 0.50, &out) {
		t.Error("a +16.8% suite geomean at a 10% threshold must fail the comparison")
	}
	text := out.String()
	for _, want := range []string{"BenchmarkA", "REGRESSED", "warning: no baseline, skipped", "warning: in baseline but not run, skipped"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparison output missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "REGRESSED") != 1 || !strings.Contains(text, "suite geomean") {
		t.Errorf("want exactly one REGRESSED line, on the suite geomean:\n%s", text)
	}

	out.Reset()
	if compareReports(base, cur, 0.50, 0.50, &out) {
		t.Error("a +16.8% geomean at a 50% threshold must pass")
	}

	// An improvement is never a regression, whatever the threshold.
	out.Reset()
	fast := &report{Benchmarks: []summary{{Name: "BenchmarkA", NsPerOpMean: 700}}}
	if compareReports(base, fast, 0.0, 0.0, &out) {
		t.Error("a -30% improvement must pass even at threshold 0")
	}
}

// TestCompareCarriesCustomMetrics: custom metrics present on both sides of a
// comparison are printed as info lines (so compile-skip-rate and friends
// survive into the gate output) but never affect the verdict — the metric
// can collapse to zero while ns/op improves and the gate must stay green.
func TestCompareCarriesCustomMetrics(t *testing.T) {
	base := &report{Benchmarks: []summary{{
		Name: "BenchmarkCycleFrontEndChurn0", NsPerOpMean: 200, NsPerOpMin: 200,
		Metrics: map[string]float64{"compile-skip-rate": 0.97, "frontend-ns": 1300},
	}}}
	cur := &report{Benchmarks: []summary{{
		Name: "BenchmarkCycleFrontEndChurn0", NsPerOpMean: 100, NsPerOpMin: 100,
		Metrics: map[string]float64{"compile-skip-rate": 0, "frontend-ns": 1200},
	}}}
	var out strings.Builder
	if compareReports(base, cur, 0.10, 0.50, &out) {
		t.Errorf("custom-metric changes must never fail the gate:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{"compile-skip-rate", "frontend-ns", "(info)"} {
		if !strings.Contains(got, want) {
			t.Errorf("comparison output missing %q:\n%s", want, got)
		}
	}
	if strings.Index(got, "compile-skip-rate") > strings.Index(got, "frontend-ns") {
		t.Errorf("metric info lines must print in sorted order:\n%s", got)
	}
}
