package main

import (
	"io"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
cpu: Fake CPU @ 2.00GHz
BenchmarkBatchedSolve24Serial-4   	    1000	    180000 ns/op	   50000 B/op	     400 allocs/op
BenchmarkBatchedSolve24Serial-4   	    1000	    200000 ns/op	   50000 B/op	     400 allocs/op
BenchmarkBatchedSolve48Serial-4   	     500	    600000 ns/op	  120000 B/op	     900 allocs/op
PASS
`

func TestBuildReport(t *testing.T) {
	rep, err := buildReport(strings.NewReader(benchOutput), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "Fake CPU @ 2.00GHz" {
		t.Errorf("environment lines misparsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b24 := rep.Benchmarks[0]
	if b24.Name != "BenchmarkBatchedSolve24Serial" || b24.Runs != 2 {
		t.Errorf("first summary = %+v", b24)
	}
	if b24.NsPerOpMin != 180000 || b24.NsPerOpMean != 190000 || b24.NsPerOpMax != 200000 {
		t.Errorf("ns/op min/mean/max = %v/%v/%v, want 180000/190000/200000",
			b24.NsPerOpMin, b24.NsPerOpMean, b24.NsPerOpMax)
	}
	if b24.BytesPerOp != 50000 || b24.AllocsPerOp != 400 {
		t.Errorf("memory stats = %v B/op %v allocs/op", b24.BytesPerOp, b24.AllocsPerOp)
	}
}

func TestBuildReportEmpty(t *testing.T) {
	if _, err := buildReport(strings.NewReader("PASS\n"), io.Discard); err == nil {
		t.Error("no benchmark lines must be an error")
	}
}

func TestCompareReports(t *testing.T) {
	base := &report{Date: "2026-01-01T00:00:00Z", Benchmarks: []summary{
		{Name: "BenchmarkA", NsPerOpMean: 1000},
		{Name: "BenchmarkB", NsPerOpMean: 1000},
		{Name: "BenchmarkGone", NsPerOpMean: 500},
	}}
	cur := &report{Benchmarks: []summary{
		{Name: "BenchmarkA", NsPerOpMean: 1050}, // +5%: under threshold
		{Name: "BenchmarkB", NsPerOpMean: 1300}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOpMean: 42}, // no baseline
	}}

	var out strings.Builder
	if !compareReports(base, cur, 0.10, &out) {
		t.Error("a +30% regression at a 10% threshold must fail the comparison")
	}
	text := out.String()
	for _, want := range []string{"BenchmarkA", "REGRESSED", "(new, no baseline)", "(in baseline, not run)"} {
		if !strings.Contains(text, want) {
			t.Errorf("comparison output missing %q:\n%s", want, text)
		}
	}
	if strings.Count(text, "REGRESSED") != 1 {
		t.Errorf("want exactly one REGRESSED line:\n%s", text)
	}

	out.Reset()
	if compareReports(base, cur, 0.50, &out) {
		t.Error("a +30% change at a 50% threshold must pass")
	}

	// An improvement is never a regression, whatever the threshold.
	out.Reset()
	fast := &report{Benchmarks: []summary{{Name: "BenchmarkA", NsPerOpMean: 700}}}
	if compareReports(base, fast, 0.0, &out) {
		t.Error("a -30% improvement must pass even at threshold 0")
	}
}
