// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so perf numbers land in a stable, diffable artifact
// (BENCH_milp.json) instead of scrollback. Repeated -count runs of the same
// benchmark are folded into min/mean/max summaries.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem -count=6 . | go run ./cmd/benchjson -o BENCH_milp.json
//
// With -compare, the aggregated stdin run is diffed against a committed
// baseline instead of written: per-benchmark ns/op deltas are printed and
// the exit status is non-zero when the run regressed. Deltas are judged on
// *min* ns/op (best of -count runs): scheduler-steal and frequency noise on
// a shared box is strictly additive, so the min filters it while a real
// regression shifts the whole distribution, min included. Mean deltas are
// printed alongside for context.
//
// The gate itself is two-tier, calibrated for noisy shared machines where
// identical-code back-to-back suite runs show per-benchmark min swings of
// ±20-35% but suite-wide geomean drift of only ±5%:
//
//   - the suite geomean of min ns/op deltas must stay within -threshold
//     (default +10%) — catches systemic slowdowns while per-benchmark noise
//     cancels across the suite;
//
//   - no single benchmark may regress beyond -max-single (default +50%) —
//     catches an isolated algorithmic blowup that a 17-benchmark geomean
//     would dilute below the suite threshold.
//
//     go test -run='^$' -bench=... -benchmem -count=6 . | go run ./cmd/benchjson -compare BENCH_milp.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	metrics     map[string]float64 // custom b.ReportMetric pairs, e.g. "jobs/sec"
}

// summary aggregates every -count repetition of one benchmark.
type summary struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOpMin  float64            `json:"ns_per_op_min"`
	NsPerOpMean float64            `json:"ns_per_op_mean"`
	NsPerOpMax  float64            `json:"ns_per_op_max"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // custom metrics, mean over runs
}

type report struct {
	Date       string    `json:"date"`
	Goos       string    `json:"goos,omitempty"`
	Goarch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []summary `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline report to diff against; prints ns/op deltas instead of writing JSON")
	threshold := flag.Float64("threshold", 0.10, "suite-geomean min ns/op regression that fails -compare (0.10 = +10%)")
	maxSingle := flag.Float64("max-single", 0.50, "per-benchmark min ns/op regression that fails -compare regardless of the geomean")
	flag.Parse()

	rep, err := buildReport(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		buf, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(buf, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if compareReports(&base, &rep, *threshold, *maxSingle, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}

// buildReport aggregates `go test -bench` output from r into a report,
// echoing every line to echo so the run stays visible.
func buildReport(r io.Reader, echo io.Writer) (report, error) {
	rep := report{Date: time.Now().UTC().Format(time.RFC3339)}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line)
			if ok {
				samples[name] = append(samples[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("read: %v", err)
	}
	if len(samples) == 0 {
		return rep, fmt.Errorf("no benchmark lines on stdin")
	}

	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		sum := summary{Name: name, Runs: len(ss), NsPerOpMin: ss[0].nsPerOp, NsPerOpMax: ss[0].nsPerOp}
		for _, s := range ss {
			sum.NsPerOpMean += s.nsPerOp / float64(len(ss))
			if s.nsPerOp < sum.NsPerOpMin {
				sum.NsPerOpMin = s.nsPerOp
			}
			if s.nsPerOp > sum.NsPerOpMax {
				sum.NsPerOpMax = s.nsPerOp
			}
			sum.BytesPerOp += s.bytesPerOp / float64(len(ss))
			sum.AllocsPerOp += s.allocsPerOp / float64(len(ss))
			for unit, v := range s.metrics {
				if sum.Metrics == nil {
					sum.Metrics = map[string]float64{}
				}
				sum.Metrics[unit] += v / float64(len(ss))
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, sum)
	}
	return rep, nil
}

// compareReports prints each current benchmark's ns/op against the baseline
// and reports whether the run regressed. Deltas are judged on min ns/op
// (noise on a shared machine only ever adds time, so best-of-N is the stable
// statistic); the mean delta is printed for context. When a report predates
// min tracking (min == 0) the mean is used instead.
//
// The failure condition is two-tier: the suite-wide geomean of min deltas
// must stay within threshold (per-benchmark noise cancels across the suite,
// so the geomean tracks real machine/code drift), and no single benchmark
// may regress beyond maxSingle (an isolated blowup the geomean would
// dilute). Per-benchmark deltas between threshold and maxSingle are labeled
// "warn" but do not fail on their own. Benchmarks present in only one report
// are warned about and skipped — a partial `-bench` run or a freshly added
// benchmark must never fail the gate.
func compareReports(base, cur *report, threshold, maxSingle float64, w io.Writer) (regressed bool) {
	baseline := make(map[string]summary, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fmt.Fprintf(w, "\nbaseline %s vs current run (geomean threshold %+.1f%%, per-benchmark limit %+.1f%%, on min ns/op):\n",
		base.Date, 100*threshold, 100*maxSingle)
	var logSum float64
	var compared int
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		b, ok := baseline[c.Name]
		if !ok || b.NsPerOpMean <= 0 {
			fmt.Fprintf(w, "  %-40s %12.0f ns/op  warning: no baseline, skipped\n", c.Name, c.NsPerOpMean)
			continue
		}
		bMin, cMin := b.NsPerOpMin, c.NsPerOpMin
		if bMin <= 0 || cMin <= 0 {
			bMin, cMin = b.NsPerOpMean, c.NsPerOpMean
		}
		minDelta := (cMin - bMin) / bMin
		meanDelta := (c.NsPerOpMean - b.NsPerOpMean) / b.NsPerOpMean
		logSum += math.Log(1 + minDelta)
		compared++
		verdict := "ok"
		switch {
		case minDelta > maxSingle:
			verdict = "REGRESSED"
			regressed = true
		case minDelta > threshold:
			verdict = "warn"
		}
		fmt.Fprintf(w, "  %-40s %12.0f -> %12.0f min ns/op  %+7.1f%% (mean %+7.1f%%)  %s\n",
			c.Name, bMin, cMin, 100*minDelta, 100*meanDelta, verdict)
		// Custom b.ReportMetric values (e.g. compile-skip-rate, slo-pct) are
		// carried through for the reader but never judged: they measure
		// policy or cache quantities, not time, so the regression verdict
		// stays a pure ns/op statement.
		names := make([]string, 0, len(c.Metrics))
		for name := range c.Metrics {
			if _, ok := b.Metrics[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "    %-38s %12.4g -> %12.4g %s  (info)\n", "", b.Metrics[name], c.Metrics[name], name)
		}
	}
	if compared > 0 {
		geomean := math.Expm1(logSum / float64(compared))
		verdict := "ok"
		if geomean > threshold {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "  %-40s %44s %+7.1f%%  %s\n", "suite geomean", "", 100*geomean, verdict)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "  %-40s %12.0f ns/op  warning: in baseline but not run, skipped\n", b.Name, b.NsPerOpMean)
		}
	}
	return regressed
}

// parseBenchLine parses one "BenchmarkName-8  N  123 ns/op  45 B/op  6 allocs/op"
// line; the -cpus suffix is stripped so repetitions group under one name.
func parseBenchLine(line string) (string, sample, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", sample{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			s.nsPerOp, seen = v, true
		case "B/op":
			s.bytesPerOp = v
		case "allocs/op":
			s.allocsPerOp = v
		default:
			// Custom b.ReportMetric units (e.g. "jobs/sec", "p99-ns",
			// "reject-rate") ride along so derived benchmarks like the
			// loadgen gate keep their domain numbers in the artifact.
			if s.metrics == nil {
				s.metrics = map[string]float64{}
			}
			s.metrics[unit] = v
		}
	}
	return name, s, seen
}
