// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so perf numbers land in a stable, diffable artifact
// (BENCH_milp.json) instead of scrollback. Repeated -count runs of the same
// benchmark are folded into min/mean/max summaries.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem -count=6 . | go run ./cmd/benchjson -o BENCH_milp.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// summary aggregates every -count repetition of one benchmark.
type summary struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMax  float64 `json:"ns_per_op_max"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type report struct {
	Date       string    `json:"date"`
	Goos       string    `json:"goos,omitempty"`
	Goarch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []summary `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := report{Date: time.Now().UTC().Format(time.RFC3339)}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays visible
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line)
			if ok {
				samples[name] = append(samples[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		sum := summary{Name: name, Runs: len(ss), NsPerOpMin: ss[0].nsPerOp, NsPerOpMax: ss[0].nsPerOp}
		for _, s := range ss {
			sum.NsPerOpMean += s.nsPerOp / float64(len(ss))
			if s.nsPerOp < sum.NsPerOpMin {
				sum.NsPerOpMin = s.nsPerOp
			}
			if s.nsPerOp > sum.NsPerOpMax {
				sum.NsPerOpMax = s.nsPerOp
			}
			sum.BytesPerOp += s.bytesPerOp / float64(len(ss))
			sum.AllocsPerOp += s.allocsPerOp / float64(len(ss))
		}
		rep.Benchmarks = append(rep.Benchmarks, sum)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}

// parseBenchLine parses one "BenchmarkName-8  N  123 ns/op  45 B/op  6 allocs/op"
// line; the -cpus suffix is stripped so repetitions group under one name.
func parseBenchLine(line string) (string, sample, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", sample{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			s.nsPerOp, seen = v, true
		case "B/op":
			s.bytesPerOp = v
		case "allocs/op":
			s.allocsPerOp = v
		}
	}
	return name, s, seen
}
