// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so perf numbers land in a stable, diffable artifact
// (BENCH_milp.json) instead of scrollback. Repeated -count runs of the same
// benchmark are folded into min/mean/max summaries.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem -count=6 . | go run ./cmd/benchjson -o BENCH_milp.json
//
// With -compare, the aggregated stdin run is diffed against a committed
// baseline instead of written: per-benchmark mean ns/op deltas are printed
// and the exit status is non-zero when any benchmark regressed beyond
// -threshold (relative, default +10%):
//
//	go test -run='^$' -bench=... -benchmem -count=6 . | go run ./cmd/benchjson -compare BENCH_milp.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one benchmark result line.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// summary aggregates every -count repetition of one benchmark.
type summary struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOpMin  float64 `json:"ns_per_op_min"`
	NsPerOpMean float64 `json:"ns_per_op_mean"`
	NsPerOpMax  float64 `json:"ns_per_op_max"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type report struct {
	Date       string    `json:"date"`
	Goos       string    `json:"goos,omitempty"`
	Goarch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []summary `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline report to diff against; prints ns/op deltas instead of writing JSON")
	threshold := flag.Float64("threshold", 0.10, "relative mean ns/op regression that fails -compare (0.10 = +10%)")
	flag.Parse()

	rep, err := buildReport(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *compare != "" {
		buf, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(buf, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if compareReports(&base, &rep, *threshold, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
}

// buildReport aggregates `go test -bench` output from r into a report,
// echoing every line to echo so the run stays visible.
func buildReport(r io.Reader, echo io.Writer) (report, error) {
	rep := report{Date: time.Now().UTC().Format(time.RFC3339)}
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, s, ok := parseBenchLine(line)
			if ok {
				samples[name] = append(samples[name], s)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("read: %v", err)
	}
	if len(samples) == 0 {
		return rep, fmt.Errorf("no benchmark lines on stdin")
	}

	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ss := samples[name]
		sum := summary{Name: name, Runs: len(ss), NsPerOpMin: ss[0].nsPerOp, NsPerOpMax: ss[0].nsPerOp}
		for _, s := range ss {
			sum.NsPerOpMean += s.nsPerOp / float64(len(ss))
			if s.nsPerOp < sum.NsPerOpMin {
				sum.NsPerOpMin = s.nsPerOp
			}
			if s.nsPerOp > sum.NsPerOpMax {
				sum.NsPerOpMax = s.nsPerOp
			}
			sum.BytesPerOp += s.bytesPerOp / float64(len(ss))
			sum.AllocsPerOp += s.allocsPerOp / float64(len(ss))
		}
		rep.Benchmarks = append(rep.Benchmarks, sum)
	}
	return rep, nil
}

// compareReports prints each current benchmark's mean ns/op against the
// baseline and reports whether any regressed beyond threshold. Benchmarks
// only one side ran are noted but never fail the comparison.
func compareReports(base, cur *report, threshold float64, w io.Writer) (regressed bool) {
	baseline := make(map[string]summary, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Name] = b
	}
	fmt.Fprintf(w, "\nbaseline %s vs current run (threshold %+.1f%%):\n", base.Date, 100*threshold)
	seen := make(map[string]bool, len(cur.Benchmarks))
	for _, c := range cur.Benchmarks {
		seen[c.Name] = true
		b, ok := baseline[c.Name]
		if !ok || b.NsPerOpMean <= 0 {
			fmt.Fprintf(w, "  %-40s %12.0f ns/op  (new, no baseline)\n", c.Name, c.NsPerOpMean)
			continue
		}
		delta := (c.NsPerOpMean - b.NsPerOpMean) / b.NsPerOpMean
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
			regressed = true
		}
		fmt.Fprintf(w, "  %-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			c.Name, b.NsPerOpMean, c.NsPerOpMean, 100*delta, verdict)
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			fmt.Fprintf(w, "  %-40s %12.0f ns/op  (in baseline, not run)\n", b.Name, b.NsPerOpMean)
		}
	}
	return regressed
}

// parseBenchLine parses one "BenchmarkName-8  N  123 ns/op  45 B/op  6 allocs/op"
// line; the -cpus suffix is stripped so repetitions group under one name.
func parseBenchLine(line string) (string, sample, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return "", sample{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	seen := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			s.nsPerOp, seen = v, true
		case "B/op":
			s.bytesPerOp = v
		case "allocs/op":
			s.allocsPerOp = v
		}
	}
	return name, s, seen
}
