package core

import (
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// TestTruncatedJobsLoseStalePlanChoice pins the MaxBatch/lastJob interaction:
// a job deferred in one cycle and truncated out of the batch in the next must
// not keep its plan choice — the shift-by-one-slice warm-start assumption
// only spans a single cycle, so a surviving entry would later be re-proposed
// at a wrong slice.
func TestTruncatedJobsLoseStalePlanChoice(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 32, Gap: 0, MaxBatch: 1})
	// A believed-running blocker keeps all nodes busy until t=8, so the
	// pending job's only feasible start is a deferred slice.
	blocker := &workload.Job{ID: 99, Class: workload.BestEffort, Type: workload.Unconstrained, K: 4, BaseRuntime: 100, Slowdown: 1}
	sched.running[99] = &runInfo{job: blocker, nodes: []int{0, 1, 2, 3}, estEnd: 8}

	idle := &workload.Job{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 8, Slowdown: 1}
	sched.Submit(0, idle)
	sched.Cycle(0, bitset.New(4))
	if _, ok := sched.lastJob[idle.ID]; !ok {
		t.Fatal("setup: cycle 0 should have deferred the job and recorded a plan choice")
	}

	// A higher-priority arrival fills the MaxBatch=1 batch at cycle 1,
	// truncating the deferred job out.
	urgent := &workload.Job{ID: 1, Class: workload.SLO, Reserved: true, Type: workload.Unconstrained, Submit: 4, K: 4, BaseRuntime: 8, Slowdown: 1, Deadline: 100}
	sched.Submit(4, urgent)
	sched.Cycle(4, bitset.New(4))
	if pc, ok := sched.lastJob[idle.ID]; ok {
		t.Errorf("truncated job kept stale plan choice %+v; it must be cleared", pc)
	}
}

// TestPreemptRescueLaunchesOnFreeNodes pins the last-chance rescue path: when
// an accepted SLO job at its final feasible start slice was missed by the
// solver but is placeable from genuinely free nodes, the rescue must launch
// it immediately — "the solver will get it next cycle" is a guaranteed miss,
// because next cycle has no feasible start by definition.
func TestPreemptRescueLaunchesOnFreeNodes(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, EnablePreemption: true})
	// The scheduler believes a best-effort job owns the whole cluster far
	// into the future (e.g. a stale overrun estimate), which culls every leaf
	// in the compiled model — the solver cannot place anything. Ground truth
	// disagrees: all nodes are actually free.
	stale := &workload.Job{ID: 50, Class: workload.BestEffort, Type: workload.Unconstrained, K: 4, BaseRuntime: 1000, Slowdown: 1}
	sched.running[50] = &runInfo{job: stale, nodes: []int{0, 1, 2, 3}, estEnd: 1000}

	// Deadline 7 with runtime 4 leaves start slice 0 as the only option.
	job := &workload.Job{ID: 1, Class: workload.SLO, Reserved: true, Type: workload.Unconstrained, Submit: 0, K: 2, BaseRuntime: 4, Slowdown: 1, Deadline: 7}
	sched.Submit(0, job)
	res := sched.Cycle(0, c.All())
	if len(res.Decisions) != 1 || res.Decisions[0].Job.ID != job.ID {
		t.Fatalf("decisions = %+v, want the last-chance SLO job launched on free nodes", res.Decisions)
	}
	if got := len(res.Decisions[0].Nodes); got != job.K {
		t.Errorf("launched on %d nodes, want %d", got, job.K)
	}
	if len(res.Preempted) != 0 {
		t.Errorf("preempted %d jobs; free nodes sufficed, no victims needed", len(res.Preempted))
	}
}

// TestPreemptRescueEvictsYoungestVictim pins the rescue's victim ordering:
// "youngest first (least progress wasted)" means most recently *launched*, not
// latest believed completion. Ordering by estEnd — which overruns bump forward
// arbitrarily — evicts whichever victim's estimate drifted furthest, here a
// job that has been running since t=0 and would lose all that progress.
func TestPreemptRescueEvictsYoungestVictim(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, EnablePreemption: true})
	// Two best-effort victims, each holding half the cluster. The old job has
	// been running since t=0 but its (overrun-inflated) estimate stretches to
	// t=100; the young job launched at t=8 and is believed done at t=20.
	old := &workload.Job{ID: 10, Class: workload.BestEffort, Type: workload.Unconstrained, K: 2, BaseRuntime: 100, Slowdown: 1}
	young := &workload.Job{ID: 11, Class: workload.BestEffort, Type: workload.Unconstrained, K: 2, BaseRuntime: 12, Slowdown: 1}
	sched.running[10] = &runInfo{job: old, nodes: []int{0, 1}, estEnd: 100, launched: 0}
	sched.running[11] = &runInfo{job: young, nodes: []int{2, 3}, estEnd: 20, launched: 8}

	// Deadline 19 at now=12 with runtime 4 leaves start slice 0 as the only
	// option; nothing is free, so the rescue must preempt exactly one victim.
	job := &workload.Job{ID: 1, Class: workload.SLO, Reserved: true, Type: workload.Unconstrained, Submit: 12, K: 2, BaseRuntime: 4, Slowdown: 1, Deadline: 19}
	sched.Submit(12, job)
	res := sched.Cycle(12, bitset.New(4))
	if len(res.Decisions) != 1 || res.Decisions[0].Job.ID != job.ID {
		t.Fatalf("decisions = %+v, want the last-chance SLO job rescued", res.Decisions)
	}
	if len(res.Preempted) != 1 || res.Preempted[0].ID != young.ID {
		t.Fatalf("preempted %+v, want only the youngest victim (job %d)", res.Preempted, young.ID)
	}
	if _, ok := sched.running[old.ID]; !ok {
		t.Errorf("long-running job %d was evicted; it launched first and had the most progress to lose", old.ID)
	}
}

// TestWarmStartsCountPerSubSolve pins the warm-start telemetry of a decomposed
// solve: WarmStarts counts sub-solves that actually received a non-nil seed —
// two seeded components in one cycle count two, and a cycle with no seed at
// all counts zero.
func TestWarmStartsCountPerSubSolve(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 8, nil).Build()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 32, Gap: 0})
	// Each half of the cluster is busy until t=12, so both data-local jobs
	// defer at cycle 0 and re-propose their shifted choices at cycle 1. Their
	// whole-cluster fallbacks run 2× and blow the deadline, so the batch
	// splits into one component per job and the cycle-1 seed must be counted
	// once per component.
	for i, lo := range []int{0, 4} {
		blocker := &workload.Job{ID: 100 + i, Class: workload.BestEffort, Type: workload.Unconstrained, K: 4, BaseRuntime: 12, Slowdown: 1}
		sched.running[blocker.ID] = &runInfo{job: blocker, nodes: []int{lo, lo + 1, lo + 2, lo + 3}, estEnd: 12}
	}
	for i, lo := range []int{0, 4} {
		sched.Submit(0, &workload.Job{
			ID: i, Class: workload.SLO, Reserved: true, Type: workload.DataLocal, Submit: 0,
			K: 2, BaseRuntime: 40, Slowdown: 2, Deadline: 60, DataNodes: []int{lo, lo + 1, lo + 2, lo + 3},
		})
	}
	sched.Cycle(0, bitset.New(8))
	if sched.Stats.WarmStarts != 0 {
		t.Fatalf("cycle 0 has no previous plan to seed from, got WarmStarts = %d", sched.Stats.WarmStarts)
	}
	if len(sched.lastJob) != 2 {
		t.Fatalf("setup: cycle 0 should defer both jobs, lastJob = %v", sched.lastJob)
	}
	sched.Cycle(4, bitset.New(8))
	if sched.Stats.Components < 2 {
		t.Fatalf("setup: cycle 1 did not decompose (components = %d)", sched.Stats.Components)
	}
	if sched.Stats.WarmStarts != 2 {
		t.Errorf("WarmStarts = %d, want 2: each seeded component sub-solve counts once", sched.Stats.WarmStarts)
	}
}

// TestFailureRestartKeepsFIFOPosition pins orderedPending's FIFO-by-arrival
// guarantee across requeues: a failure-killed job re-enters the pending queue
// at the tail, but must still be scheduled before jobs that arrived after it.
// The greedy (per-job, in-order) variant makes queue order decisive.
func TestFailureRestartKeepsFIFOPosition(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 1, nil).Build()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 1, BaseRuntime: 20, Slowdown: 1},
		{ID: 1, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 8, K: 1, BaseRuntime: 20, Slowdown: 1},
	}
	sched := New(c, Config{Greedy: true, CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	res, err := sim.Run(sim.Config{
		Cluster: c, Jobs: jobs, Scheduler: sched,
		// Job 0 is killed mid-run and re-queued behind job 1; the node
		// recovers between cycles.
		Failures: []sim.NodeFailure{{Node: 0, At: 10, RecoverAt: 14}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].FailureKills != 1 {
		t.Fatalf("setup: job 0 FailureKills = %d, want 1", res.Stats[0].FailureKills)
	}
	if !res.Stats[0].Completed || !res.Stats[1].Completed {
		t.Fatalf("both jobs should complete: %+v", res.Stats)
	}
	// FIFO within the best-effort class: job 0 (arrived t=0) restarts before
	// job 1 (arrived t=8) runs, despite sitting behind it in the raw queue.
	if res.Stats[0].Start >= res.Stats[1].Start {
		t.Errorf("restarted job 0 started at %d, after the later arrival's %d; FIFO-by-arrival broken",
			res.Stats[0].Start, res.Stats[1].Start)
	}
}
