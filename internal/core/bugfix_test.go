package core

import (
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// TestTruncatedJobsLoseStalePlanChoice pins the MaxBatch/lastJob interaction:
// a job deferred in one cycle and truncated out of the batch in the next must
// not keep its plan choice — the shift-by-one-slice warm-start assumption
// only spans a single cycle, so a surviving entry would later be re-proposed
// at a wrong slice.
func TestTruncatedJobsLoseStalePlanChoice(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 32, Gap: 0, MaxBatch: 1})
	// A believed-running blocker keeps all nodes busy until t=8, so the
	// pending job's only feasible start is a deferred slice.
	blocker := &workload.Job{ID: 99, Class: workload.BestEffort, Type: workload.Unconstrained, K: 4, BaseRuntime: 100, Slowdown: 1}
	sched.running[99] = &runInfo{job: blocker, nodes: []int{0, 1, 2, 3}, estEnd: 8}

	idle := &workload.Job{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 8, Slowdown: 1}
	sched.Submit(0, idle)
	sched.Cycle(0, bitset.New(4))
	if _, ok := sched.lastJob[idle.ID]; !ok {
		t.Fatal("setup: cycle 0 should have deferred the job and recorded a plan choice")
	}

	// A higher-priority arrival fills the MaxBatch=1 batch at cycle 1,
	// truncating the deferred job out.
	urgent := &workload.Job{ID: 1, Class: workload.SLO, Reserved: true, Type: workload.Unconstrained, Submit: 4, K: 4, BaseRuntime: 8, Slowdown: 1, Deadline: 100}
	sched.Submit(4, urgent)
	sched.Cycle(4, bitset.New(4))
	if pc, ok := sched.lastJob[idle.ID]; ok {
		t.Errorf("truncated job kept stale plan choice %+v; it must be cleared", pc)
	}
}

// TestPreemptRescueLaunchesOnFreeNodes pins the last-chance rescue path: when
// an accepted SLO job at its final feasible start slice was missed by the
// solver but is placeable from genuinely free nodes, the rescue must launch
// it immediately — "the solver will get it next cycle" is a guaranteed miss,
// because next cycle has no feasible start by definition.
func TestPreemptRescueLaunchesOnFreeNodes(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, EnablePreemption: true})
	// The scheduler believes a best-effort job owns the whole cluster far
	// into the future (e.g. a stale overrun estimate), which culls every leaf
	// in the compiled model — the solver cannot place anything. Ground truth
	// disagrees: all nodes are actually free.
	stale := &workload.Job{ID: 50, Class: workload.BestEffort, Type: workload.Unconstrained, K: 4, BaseRuntime: 1000, Slowdown: 1}
	sched.running[50] = &runInfo{job: stale, nodes: []int{0, 1, 2, 3}, estEnd: 1000}

	// Deadline 7 with runtime 4 leaves start slice 0 as the only option.
	job := &workload.Job{ID: 1, Class: workload.SLO, Reserved: true, Type: workload.Unconstrained, Submit: 0, K: 2, BaseRuntime: 4, Slowdown: 1, Deadline: 7}
	sched.Submit(0, job)
	res := sched.Cycle(0, c.All())
	if len(res.Decisions) != 1 || res.Decisions[0].Job.ID != job.ID {
		t.Fatalf("decisions = %+v, want the last-chance SLO job launched on free nodes", res.Decisions)
	}
	if got := len(res.Decisions[0].Nodes); got != job.K {
		t.Errorf("launched on %d nodes, want %d", got, job.K)
	}
	if len(res.Preempted) != 0 {
		t.Errorf("preempted %d jobs; free nodes sufficed, no victims needed", len(res.Preempted))
	}
}

// TestFailureRestartKeepsFIFOPosition pins orderedPending's FIFO-by-arrival
// guarantee across requeues: a failure-killed job re-enters the pending queue
// at the tail, but must still be scheduled before jobs that arrived after it.
// The greedy (per-job, in-order) variant makes queue order decisive.
func TestFailureRestartKeepsFIFOPosition(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 1, nil).Build()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 1, BaseRuntime: 20, Slowdown: 1},
		{ID: 1, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 8, K: 1, BaseRuntime: 20, Slowdown: 1},
	}
	sched := New(c, Config{Greedy: true, CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	res, err := sim.Run(sim.Config{
		Cluster: c, Jobs: jobs, Scheduler: sched,
		// Job 0 is killed mid-run and re-queued behind job 1; the node
		// recovers between cycles.
		Failures: []sim.NodeFailure{{Node: 0, At: 10, RecoverAt: 14}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].FailureKills != 1 {
		t.Fatalf("setup: job 0 FailureKills = %d, want 1", res.Stats[0].FailureKills)
	}
	if !res.Stats[0].Completed || !res.Stats[1].Completed {
		t.Fatalf("both jobs should complete: %+v", res.Stats)
	}
	// FIFO within the best-effort class: job 0 (arrived t=0) restarts before
	// job 1 (arrived t=8) runs, despite sitting behind it in the raw queue.
	if res.Stats[0].Start >= res.Stats[1].Start {
		t.Errorf("restarted job 0 started at %d, after the later arrival's %d; FIFO-by-arrival broken",
			res.Stats[0].Start, res.Stats[1].Start)
	}
}
