// Package core implements the TetriSched scheduler — the paper's primary
// contribution. Each cycle it aggregates the STRL requests of all pending
// jobs, compiles them into a single MILP, solves it within a configurable
// optimality gap, launches the jobs whose chosen start time is now, and
// throws the rest of the plan away to be re-derived next cycle (adaptive
// plan-ahead, §3.2.1).
//
// The Table 2 ablations are configuration switches: Greedy disables global
// scheduling (TetriSched-NG: per-job solves in three priority queues), NoHet
// disables soft-constraint awareness (TetriSched-NH), and PlanAhead=0
// disables deferred placement (TetriSched-NP, equivalent to alsched).
package core

import (
	"fmt"
	"sort"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/milp"
	"tetrisched/internal/randx"
	"tetrisched/internal/shard"
	"tetrisched/internal/sim"
	"tetrisched/internal/strl"
	"tetrisched/internal/strlgen"
	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// Config selects the TetriSched variant and solver budget.
type Config struct {
	// CyclePeriod is the scheduling cycle in seconds and also the time
	// quantum of the plan-ahead discretization (paper: 4s).
	CyclePeriod int64
	// PlanAhead is the deferred-placement window in seconds; 0 disables
	// plan-ahead (TetriSched-NP).
	PlanAhead int64
	// PlanQuantum is the planning time-slice in seconds; 0 uses CyclePeriod.
	// Coarser quanta shrink the MILP for long windows at the cost of start
	// time resolution. Warm starts require PlanQuantum == CyclePeriod (the
	// shift-by-one-slice assumption) and are disabled otherwise.
	PlanQuantum int64
	// Greedy switches to per-job scheduling over three priority FIFO queues
	// (TetriSched-NG).
	Greedy bool
	// NoHet disables heterogeneity awareness in STRL generation
	// (TetriSched-NH).
	NoHet bool
	// Gap is the relative MIP gap the solver may stop at (§3.2.2; paper uses
	// 10%).
	Gap float64
	// SolverTimeLimit bounds each MILP solve's wall-clock time.
	SolverTimeLimit time.Duration
	// SolverWorkers is the number of branch-and-bound workers per MILP solve
	// (milp.Options.Workers); 0 defaults to 1 (serial — the deterministic
	// historical behavior). The scheduler always requests deterministic
	// tie-breaking, so raising this keeps runs reproducible while cutting
	// wall-clock on multi-core hosts.
	SolverWorkers int
	// MaxBatch caps how many pending jobs one global solve aggregates; the
	// highest-priority jobs are batched first (§5: "TetriSched has the
	// flexibility of aggregating a subset of the pending jobs").
	MaxBatch int
	// DisableWarmStart turns off both solver warm paths: seeding the
	// incumbent with the previous cycle's shifted plan (§3.2.2) and the LP
	// kernel's dual-simplex re-solves from parent bases inside
	// branch-and-bound. A bisection switch — results are identical either
	// way, only slower.
	DisableWarmStart bool
	// DisablePresolve turns off the MILP presolve/model-reduction layer
	// (internal/milp/presolve.go); models enter branch-and-bound exactly as
	// compiled. A bisection switch like DisableWarmStart — placements are
	// policy-identical either way, only slower (docs/SOLVER.md).
	DisablePresolve bool
	// DenseBasis makes every LP scratch use the historical dense basis
	// inverse instead of the sparse LU factorization with Forrest–Tomlin
	// updates (internal/milp/lu.go). A bisection switch in the
	// DisableWarmStart/DisablePresolve mold — the engines represent the same
	// basis exactly, so placements are policy-identical either way, only
	// slower at scale (docs/SOLVER.md).
	DenseBasis bool
	// DisableIncremental turns off cross-cycle component reuse: every cycle
	// compiles and solves from scratch, the pre-PR-6 behavior. Reuse replays
	// a cached sub-solution only when a fingerprint proves the component's
	// solve inputs are byte-identical to last cycle's, so this is a bisection
	// switch in the DisableWarmStart/DisablePresolve mold — placements are
	// policy-identical either way, only slower (docs/SOLVER.md).
	DisableIncremental bool
	// DisableCompileCache turns off the churn-proportional cycle front end
	// (internal/core/frontend.go): the per-job STRL expression cache and the
	// whole-batch compiled-model cache. Every cycle then regenerates and
	// recompiles from scratch, the pre-compile-cache behavior. A hit requires
	// the batch's request pointers and believed release slices to be
	// identical, which makes the compiler's inputs byte-identical, so this is
	// a bisection switch in the DisableWarmStart/DisablePresolve mold —
	// placements are policy-identical either way, only slower (docs/SOLVER.md).
	DisableCompileCache bool
	// Shards enables the sharded shared-state control plane (internal/shard,
	// docs/SHARDING.md): the cluster is partitioned into Shards shards, each
	// planned by its own concurrent per-shard sub-solve over an optimistic
	// copy of the shared supply, with commit-time double-claim detection
	// (losers requeue in order) and a gang arbitrator serializing jobs whose
	// space-time demand spans shards. 0 — the default and the kill switch —
	// keeps the monolithic global MILP; 1 is policy-identical to monolithic
	// (pinned by the sharding parity property test). Ignored in Greedy mode.
	Shards int
	// Partitioner overrides how the cluster is split into shards; nil uses
	// shard.ByProfile (racks dealt round-robin within each hardware profile).
	// Consulted only when Shards > 0.
	Partitioner shard.Partitioner
	// BEDecay overrides the best-effort value decay horizon in seconds.
	BEDecay int64
	// Tracer, when non-nil, records per-cycle spans (generate, compile,
	// solve, extract) and per-decision events into the structured tracing
	// subsystem (internal/trace, docs/OBSERVABILITY.md). Nil disables
	// tracing at the cost of one branch per hook point.
	Tracer *trace.Tracer
	// EnablePreemption activates the paper's future-work extension (§7.2):
	// when an accepted SLO job is at its last feasible start slice and the
	// MILP could not place it, running best-effort jobs may be killed
	// (restart semantics) to free capacity. Off by default, matching the
	// paper's evaluated configuration.
	EnablePreemption bool
}

func (c Config) withDefaults() Config {
	if c.CyclePeriod <= 0 {
		c.CyclePeriod = 4
	}
	if c.PlanQuantum <= 0 {
		c.PlanQuantum = c.CyclePeriod
	}
	if c.Gap <= 0 {
		c.Gap = 0.1
	}
	if c.SolverTimeLimit <= 0 {
		c.SolverTimeLimit = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 48
	}
	if c.SolverWorkers <= 0 {
		c.SolverWorkers = 1
		if c.Shards > 1 && !c.Greedy {
			// Default the solver pool to one worker per shard so the per-shard
			// planners actually run concurrently; an explicit SolverWorkers
			// still wins. Deterministic apportioning keeps runs reproducible.
			c.SolverWorkers = c.Shards
		}
	}
	return c
}

// Name returns the Table 2 variant name for the configuration.
func (c Config) Name() string {
	switch {
	case c.Greedy:
		return "TetriSched-NG"
	case c.NoHet:
		return "TetriSched-NH"
	case c.PlanAhead <= 0:
		return "TetriSched-NP"
	default:
		return "TetriSched"
	}
}

// SolveStats accumulates per-solve MILP telemetry for the scalability
// analysis (§6.6): how many solves ran, how much tree they explored, and
// with how many workers.
type SolveStats struct {
	Solves     int           // MILP invocations across all cycles
	Nodes      int           // branch-and-bound nodes explored, total
	MaxNodes   int           // largest single-solve node count
	Workers    int           // workers used by the most recent solve
	WarmStarts int           // solves seeded with the previous cycle's shifted plan
	LPIters    int64         // simplex pivots across all relaxations (primal + dual)
	Phase1     int           // LPs that needed an artificial phase 1
	WarmLPs    int           // node LPs re-solved dual-feasibly from a parent basis
	ColdLPs    int           // LPs solved from scratch (incl. warm fallbacks)
	Runtime    time.Duration // cumulative solver wall-clock
	MaxSolve   time.Duration // slowest single solve
	Decomposed int           // global solves that split into independent components
	Components int           // sub-MILPs solved across all decomposed solves

	// Incremental-reuse telemetry (internal/core/incremental.go): every
	// fingerprinted component counts exactly once per cycle, as a hit
	// (cached sub-solution replayed) or a miss (solved fresh).
	ReuseHits   int // component sub-solves replayed from the previous cycle
	ReuseMisses int // fingerprinted components that had to be solved fresh

	// Cycle front-end telemetry (internal/core/frontend.go). The timers
	// accrue regardless of configuration; the hit/skip counters stay zero
	// when the compile cache is disabled, so the kill switch is honest in
	// both directions.
	GenerateNS   int64 // STRL generation wall-clock across all cycles, nanoseconds
	CompileNS    int64 // compile+decompose+route wall-clock across all cycles, nanoseconds
	ExprHits     int   // pending jobs whose STRL request came from the expression cache
	ExprMisses   int   // pending jobs generated fresh with the expression cache enabled
	CompileSkips int   // batched jobs whose compiled model was reused verbatim
	CompileJobs  int   // batched jobs compiled fresh in a global cycle

	// Presolve telemetry (internal/milp/presolve.go), summed across solves.
	PresolveFixed   int           // variables fixed before branch-and-bound
	PresolveRows    int           // constraint rows eliminated
	PresolveCliques int           // choose-≤-1 rows merged by clique domination
	PresolveRounds  int           // fixpoint rounds run
	PresolveTime    time.Duration // cumulative presolve wall-clock

	// Basis-factorization telemetry (internal/milp/lu.go, basis.go).
	Factorizations int64 // sparse LU (or dense fallback) basis factorizations
	EtaUpdates     int64 // Forrest–Tomlin eta updates applied between refactorizations
	DenseFallbacks int   // scratches that abandoned LU for the dense inverse

	// Root cutting-plane telemetry (internal/milp/cuts.go).
	CutRounds  int // root separation rounds that tightened a relaxation
	CoverCuts  int // knapsack cover cuts added
	CliqueCuts int // conflict clique cuts added

	// Branching-rule telemetry (internal/milp/pseudocost.go).
	PseudocostBranches int64 // branch decisions taken by learned pseudocosts
	FractionalBranches int64 // branch decisions by the most-fractional fallback
}

// WarmHitRate returns the fraction of node LPs served warm from a parent
// basis (0 when no LPs have run).
func (st *SolveStats) WarmHitRate() float64 {
	total := st.WarmLPs + st.ColdLPs
	if total == 0 {
		return 0
	}
	return float64(st.WarmLPs) / float64(total)
}

// ReuseHitRate returns the fraction of fingerprinted component sub-solves
// served by cross-cycle replay (0 when incremental scheduling never ran).
func (st *SolveStats) ReuseHitRate() float64 {
	total := st.ReuseHits + st.ReuseMisses
	if total == 0 {
		return 0
	}
	return float64(st.ReuseHits) / float64(total)
}

// CompileSkipRate returns the fraction of batched jobs whose compiled model
// was reused verbatim instead of compiled (0 when no global cycle ran).
func (st *SolveStats) CompileSkipRate() float64 {
	total := st.CompileSkips + st.CompileJobs
	if total == 0 {
		return 0
	}
	return float64(st.CompileSkips) / float64(total)
}

// MeanSolve returns the mean wall-clock per MILP solve.
func (st *SolveStats) MeanSolve() time.Duration {
	if st.Solves == 0 {
		return 0
	}
	return st.Runtime / time.Duration(st.Solves)
}

// record folds one solve's telemetry into the running totals. warmSeeds is
// the number of sub-solves that actually received a non-nil incumbent seed —
// for a decomposed solve that is per component, not per cycle, so a seed the
// decomposition restricted away from every live component counts zero.
func (st *SolveStats) record(sol *milp.Solution, warmSeeds int, d time.Duration) {
	st.Solves++
	st.Runtime += d
	if d > st.MaxSolve {
		st.MaxSolve = d
	}
	st.WarmStarts += warmSeeds
	if sol == nil {
		return
	}
	st.Workers = sol.Workers
	st.Nodes += sol.Nodes
	if sol.Nodes > st.MaxNodes {
		st.MaxNodes = sol.Nodes
	}
	st.LPIters += sol.LP.Iterations
	st.Phase1 += sol.LP.Phase1
	st.WarmLPs += sol.LP.WarmHits
	st.ColdLPs += sol.LP.ColdStarts
	st.PresolveFixed += sol.Presolve.VarsFixed
	st.PresolveRows += sol.Presolve.RowsDropped
	st.PresolveCliques += sol.Presolve.CliquesMerged
	st.PresolveRounds += sol.Presolve.Rounds
	st.PresolveTime += sol.Presolve.Duration
	st.Factorizations += sol.LP.Factorizations
	st.EtaUpdates += sol.LP.EtaUpdates
	st.DenseFallbacks += sol.LP.DenseFallbacks
	st.CutRounds += sol.Cuts.Rounds
	st.CoverCuts += sol.Cuts.Cover
	st.CliqueCuts += sol.Cuts.Clique
	st.PseudocostBranches += sol.Branch.Pseudocost
	st.FractionalBranches += sol.Branch.Fractional
}

// runInfo tracks the scheduler's belief about a running job.
type runInfo struct {
	job      *workload.Job
	nodes    []int
	estEnd   int64 // believed completion; bumped forward when overrun (§7.1)
	launched int64 // launch time; preemption evicts the youngest victims first
}

// planChoice remembers a deferred placement decision for warm-starting the
// next cycle.
type planChoice struct {
	key   string
	slice int64
}

// Scheduler is a TetriSched instance implementing sim.Scheduler.
type Scheduler struct {
	c       *cluster.Cluster
	cfg     Config
	gen     *strlgen.Generator
	rng     *randx.Source // node tie-breaking within equivalence groups
	pending []*workload.Job
	running map[int]*runInfo
	lastJob map[int]planChoice
	tr      *trace.Tracer

	// Incremental cross-cycle reuse state (internal/core/incremental.go);
	// dirtyJobs and reuse are nil when the machinery is disabled.
	dirtyJobs map[int]struct{}       // jobs touched since the last global cycle
	lastRel   []int64                // previous cycle's believed release slices
	reuse     map[uint64]*reuseEntry // job-set key → cached component sub-solution
	reuseNext map[uint64]*reuseEntry // recycled scratch for next cycle's epoch map
	reuseHW   int                    // high-water len of the reuse map since last shrink

	// Cycle front-end state (internal/core/frontend.go); exprCache is nil
	// when the compile cache is disabled. compScr and conflictScratch are
	// always-on allocation pools, independent of any cache semantics.
	exprCache       map[int]*exprEntry // job ID → cached STRL request + expiry
	fe              feState            // whole-batch compile cache
	compScr         *compiler.Scratch  // pooled compile build buffers
	conflictScratch *bitset.Set        // classifyConflict working-set scratch

	// Sharded control-plane state (internal/shard, docs/SHARDING.md); all nil
	// or zero when Config.Shards == 0 (the monolithic kill switch).
	shardSets  []*bitset.Set // node set per shard, from the Partitioner
	shardState *shard.State  // per-node allocation epochs, bumped on every change
	shardSnap  []uint64      // epoch snapshot taken at the head of each cycle
	shardMoved []int         // scratch for MovedSince
	shardStats ShardStats

	// Stats accumulates solver telemetry for the scalability analysis.
	Stats SolveStats
}

// ShardStats accumulates sharded control-plane telemetry: how often the
// optimistic per-shard plans collided at commit time and how the gang
// arbitrator resolved spanning jobs.
type ShardStats struct {
	Shards      int    // configured shard count (0 = monolithic)
	Partitioner string // partitioning strategy name ("" when monolithic)
	Cycles      int64  // sharded global cycles executed
	Spanning    int64  // jobs routed to the gang arbitrator
	Conflicts   int64  // commit-time cross-shard double-claims detected
	Requeued    int64  // jobs requeued intact after losing a double-claim
	ArbLaunched int64  // arbitrator jobs launched
	ArbDeferred int64  // arbitrator jobs deferred or requeued intact
}

// ShardStatsSnapshot returns a copy of the cumulative sharding telemetry; the
// daemon surfaces it via /v1/status and /metrics.
func (s *Scheduler) ShardStatsSnapshot() ShardStats { return s.shardStats }

// sharded reports whether the sharded control plane is active.
func (s *Scheduler) sharded() bool { return s.shardState != nil }

// SolveStatsSnapshot returns a copy of the cumulative solver telemetry; the
// daemon surfaces it via /v1/status and /metrics.
func (s *Scheduler) SolveStatsSnapshot() SolveStats { return s.Stats }

var _ sim.Scheduler = (*Scheduler)(nil)

// New creates a TetriSched scheduler for the cluster.
func New(c *cluster.Cluster, cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	gcfg := strlgen.Default(cfg.PlanQuantum, cfg.PlanAhead)
	gcfg.NoHeterogeneity = cfg.NoHet
	if cfg.BEDecay > 0 {
		gcfg.BEDecay = cfg.BEDecay
	}
	s := &Scheduler{
		c:       c,
		cfg:     cfg,
		gen:     strlgen.New(c, gcfg),
		rng:     randx.New(1), // fixed seed: runs stay deterministic
		running: make(map[int]*runInfo),
		lastJob: make(map[int]planChoice),
		tr:      cfg.Tracer,
		compScr: new(compiler.Scratch),
	}
	if s.incEnabled() {
		s.dirtyJobs = make(map[int]struct{})
		s.reuse = make(map[uint64]*reuseEntry)
	}
	if s.feEnabled() {
		s.exprCache = make(map[int]*exprEntry)
	}
	if cfg.Shards > 0 && !cfg.Greedy {
		p := cfg.Partitioner
		if p == nil {
			p = shard.ByProfile{}
		}
		s.shardSets = p.Partition(c, cfg.Shards)
		s.shardState = shard.NewState(c.N())
		s.shardStats.Shards = len(s.shardSets)
		s.shardStats.Partitioner = p.Name()
	}
	return s
}

// Name implements sim.Scheduler.
func (s *Scheduler) Name() string { return s.cfg.Name() }

// Submit implements sim.Scheduler.
func (s *Scheduler) Submit(now int64, j *workload.Job) {
	s.pending = append(s.pending, j)
	s.markJobDirty(j.ID)
}

// JobFinished implements sim.Scheduler. Finishing (or failing — the driver
// reports both here) invalidates the job everywhere the scheduler remembers
// it: the running set, the dirty tracking for next cycle's reuse gate, and
// any cached component sub-solution naming it. The nodes it held change
// their believed release slices, which the per-cycle release diff picks up.
func (s *Scheduler) JobFinished(now int64, j *workload.Job) {
	if r, ok := s.running[j.ID]; ok && s.sharded() {
		s.shardState.Bump(r.nodes) // the nodes' allocation state changed
	}
	delete(s.running, j.ID)
	s.markJobDirty(j.ID)
	s.purgeReuse(j.ID)
}

// priority orders pending jobs into the three queues of §6.3: accepted SLO,
// SLO without reservation, best effort — each FIFO by arrival.
func priority(j *workload.Job) int {
	switch {
	case j.Class == workload.SLO && j.Reserved:
		return 0
	case j.Class == workload.SLO:
		return 1
	default:
		return 2
	}
}

// orderedPending returns pending jobs in priority-then-arrival order. Arrival
// is the job's Submit time, not its position in s.pending: preemption victims
// and failure restarts re-enter the queue at the tail, and ordering by queue
// position would file an early-arriving restart behind later arrivals,
// breaking the FIFO-within-class guarantee of §6.3. Ties (same class, same
// Submit) break by the front door's weighted-fair admission sequence when one
// was stamped (workload.Job.AdmitSeq — jobs admitted in the same cycle share
// a Submit, and ID order would hand the queue position back to whichever
// tenant allocated lower IDs), then by job ID, which matches original
// submission order for simulator-generated jobs.
func (s *Scheduler) orderedPending() []*workload.Job {
	sorted := append([]*workload.Job(nil), s.pending...)
	sort.SliceStable(sorted, func(a, b int) bool {
		pa, pb := priority(sorted[a]), priority(sorted[b])
		if pa != pb {
			return pa < pb
		}
		if sorted[a].Submit != sorted[b].Submit {
			return sorted[a].Submit < sorted[b].Submit
		}
		if sorted[a].AdmitSeq != sorted[b].AdmitSeq {
			return sorted[a].AdmitSeq < sorted[b].AdmitSeq
		}
		return sorted[a].ID < sorted[b].ID
	})
	return sorted
}

// removePending deletes a job from the pending queue.
func (s *Scheduler) removePending(j *workload.Job) {
	for i, p := range s.pending {
		if p.ID == j.ID {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// releaseSlices computes each node's believed release slice from the running
// set, bumping overrun estimates forward one cycle (mis-estimate handling).
func (s *Scheduler) releaseSlices(now int64) []int64 {
	rel := make([]int64, s.c.N())
	for _, r := range s.running {
		if r.estEnd <= now {
			r.estEnd = now + s.cfg.CyclePeriod
		}
		slices := (r.estEnd - now + s.cfg.PlanQuantum - 1) / s.cfg.PlanQuantum
		for _, n := range r.nodes {
			rel[n] = slices
		}
	}
	return rel
}

// Cycle implements sim.Scheduler.
func (s *Scheduler) Cycle(now int64, free *bitset.Set) sim.CycleResult {
	var res sim.CycleResult
	if len(s.pending) == 0 {
		return res
	}
	s.tr.SetVirtualTime(now)
	cycleSpan := s.tr.Begin("cycle", "cycle")
	// Generate STRL for every pending job; jobs with no remaining value are
	// culled (counted as SLO misses).
	ordered := s.orderedPending()
	genSpan := s.tr.Begin("strl", "generate")
	genT0 := time.Now()
	reqs := make([]*strlgen.Request, 0, len(ordered))
	nOptions := 0
	for _, j := range ordered {
		var req *strlgen.Request
		if s.exprCache != nil {
			// Expression cache (frontend.go): reuse the previously generated
			// request verbatim while its value-function expiry bound holds.
			// Pointer-stable requests are what lets the whole-batch compile
			// cache recognize an unchanged cycle downstream.
			if ent, ok := s.exprCache[j.ID]; ok && now <= ent.validUntil {
				req = ent.req
				s.Stats.ExprHits++
			} else {
				var until int64
				req, until = s.gen.GenerateTTL(now, j)
				s.Stats.ExprMisses++
				if req != nil && until > now {
					s.exprCache[j.ID] = &exprEntry{req: req, validUntil: until}
				} else if ok {
					delete(s.exprCache, j.ID)
				}
			}
		} else {
			req = s.gen.Generate(now, j)
		}
		if req == nil {
			res.Dropped = append(res.Dropped, j)
			s.removePending(j)
			delete(s.lastJob, j.ID)
			s.markJobDirty(j.ID)
			s.purgeReuse(j.ID)
			s.tr.Instant("place", "drop", trace.I("job", int64(j.ID)))
			continue
		}
		nOptions += len(req.Options)
		reqs = append(reqs, req)
	}
	s.Stats.GenerateNS += time.Since(genT0).Nanoseconds()
	genSpan.End(trace.I("jobs", int64(len(ordered))), trace.I("requests", int64(len(reqs))),
		trace.I("options", int64(nOptions)), trace.I("dropped", int64(len(res.Dropped))))
	if len(reqs) == 0 {
		cycleSpan.End(trace.I("decisions", 0), trace.I("dropped", int64(len(res.Dropped))))
		return res
	}
	if s.cfg.Greedy {
		s.greedyCycle(now, free, reqs, &res)
	} else {
		s.globalCycle(now, free, reqs, &res)
	}
	cycleSpan.End(trace.I("pending", int64(len(s.pending))),
		trace.I("decisions", int64(len(res.Decisions))),
		trace.I("preempted", int64(len(res.Preempted))),
		trace.I("dropped", int64(len(res.Dropped))))
	return res
}

// globalCycle aggregates all pending requests into one MILP (§5).
func (s *Scheduler) globalCycle(now int64, free *bitset.Set, reqs []*strlgen.Request, res *sim.CycleResult) {
	if len(reqs) > s.cfg.MaxBatch {
		// Plan choices are valid for exactly one cycle (the shift-by-one-slice
		// assumption), but the clear-and-re-record pass below only covers the
		// batched requests. Jobs truncated out here would keep an entry whose
		// slice is off by however many cycles they stay truncated, so age them
		// out now rather than re-propose a wrong start later.
		for _, r := range reqs[s.cfg.MaxBatch:] {
			delete(s.lastJob, r.Job.ID)
		}
		reqs = reqs[:s.cfg.MaxBatch]
	}
	rel := s.releaseSlices(now)
	// Compile — or recognize an unchanged cycle and skip it. Decomposition
	// (and in sharded mode, request routing) is derived deterministically
	// from the compile inputs, so it is cached and reused with them:
	// jobs competing for disjoint node groups across the window form
	// independent sub-MILPs that solve concurrently, and branch-and-bound is
	// exponential in coupled model size, so the split shrinks search trees
	// multiplicatively. In sharded mode the decomposition is forced along
	// shard lines instead: each shard's jobs become that shard's planner (a
	// concurrent sub-solve over an optimistic copy of the shared supply) and
	// jobs no shard can hold are serialized through the gang-arbitrator
	// component (docs/SHARDING.md).
	compSpan := s.tr.Begin("compile", "compile")
	compT0 := time.Now()
	var comp *compiler.Compiled
	var comps []*compiler.Component
	var assign []int
	spanning := 0
	arbClass := -1
	if s.sharded() {
		arbClass = len(s.shardSets)
	}
	if s.feLookup(reqs, rel) {
		comp, comps, assign, spanning = s.fe.comp, s.fe.comps, s.fe.assign, s.fe.spanning
		s.Stats.CompileSkips += len(reqs)
	} else {
		jobExprs := make([]strl.Expr, len(reqs))
		for i, r := range reqs {
			jobExprs[i] = r.Expr
		}
		var err error
		comp, err = s.compScr.Compile(jobExprs, compiler.Options{
			Universe:  s.c.N(),
			Horizon:   s.horizon(),
			ReleaseAt: rel,
		})
		if err != nil {
			// Should be impossible for generated expressions; fail safe by
			// making no decisions this cycle.
			s.Stats.CompileNS += time.Since(compT0).Nanoseconds()
			compSpan.End(trace.S("error", err.Error()))
			return
		}
		if s.sharded() {
			assign, spanning = shard.Assign(s.shardSets, reqs)
			comps = comp.ForcedComponents(assign, arbClass)
		} else {
			comps = comp.Components()
		}
		s.Stats.CompileJobs += len(reqs)
		if s.feEnabled() {
			s.feStore(reqs, rel, comp, comps, assign, spanning)
		}
	}
	if s.sharded() {
		// The epoch snapshot taken here is what commit-time conflict
		// classification validates against; it reflects this cycle's shared
		// state, so it is taken fresh whether or not the compile was skipped.
		shSpan := s.tr.Begin("shard", "shard.assign")
		s.shardSnap = s.shardState.Snapshot(s.shardSnap)
		s.shardStats.Cycles++
		s.shardStats.Spanning += int64(spanning)
		shSpan.End(trace.I("shards", int64(len(s.shardSets))),
			trace.I("spanning", int64(spanning)),
			trace.I("components", int64(len(comps))))
	}
	s.Stats.CompileNS += time.Since(compT0).Nanoseconds()
	compSpan.End(trace.I("jobs", int64(len(reqs))), trace.I("vars", int64(len(comp.Model.Vars))),
		trace.I("cons", int64(len(comp.Model.Cons))), trace.I("horizon", s.horizon()))
	// Warm start: re-propose last cycle's deferred choices, shifted one
	// slice toward the present (only valid when the quantum equals the
	// cycle period).
	var seed []float64
	if !s.cfg.DisableWarmStart && s.cfg.PlanQuantum == s.cfg.CyclePeriod {
		var grants []compiler.LeafGrant
		for i, r := range reqs {
			pc, ok := s.lastJob[r.Job.ID]
			if !ok {
				continue
			}
			want := pc.slice - 1
			if want < 0 {
				continue
			}
			for _, o := range r.Options {
				if o.Key == pc.key && o.StartSlice == want {
					if g, ok := comp.SeedGrant(o.Leaf); ok {
						g.Job = i
						grants = append(grants, g)
					}
					break
				}
			}
		}
		if len(grants) > 0 {
			if v, ok := comp.InitialVector(grants); ok {
				seed = v
			}
		}
	}
	// Plan choices are valid for exactly one cycle (the shift-by-one-slice
	// assumption); clear them now and re-record whatever this solve defers.
	for _, r := range reqs {
		delete(s.lastJob, r.Job.ID)
	}
	mopts := milp.Options{
		Gap:              s.cfg.Gap,
		TimeLimit:        s.cfg.SolverTimeLimit,
		Workers:          s.cfg.SolverWorkers,
		Deterministic:    true,
		DisableWarmStart: s.cfg.DisableWarmStart,
		DisablePresolve:  s.cfg.DisablePresolve,
		DenseBasis:       s.cfg.DenseBasis,
	}
	solveSpan := s.tr.Begin("solve", "solve")
	t0 := time.Now()
	var err error
	var sol *milp.Solution
	var failed []*strlgen.Request
	var inc *incCycle
	if s.incEnabled() {
		inc = s.beginIncCycle(comp, reqs, rel)
	}
	warmSeeds, replayed := 0, 0
	if len(comps) > 1 {
		parts := make([]milp.Part, len(comps))
		for i, cc := range comps {
			cc := cc
			partSeed := cc.RestrictSeed(seed)
			parts[i] = milp.Part{
				Model:     cc.Model,
				VarMap:    cc.VarMap,
				Heuristic: cc.GreedyRound,
			}
			var cached *milp.Solution
			if inc != nil {
				cached = inc.lookup(cc, partSeed)
			}
			if cached != nil {
				// Replay: the fingerprint proved this component's solve inputs
				// identical to last cycle's, so the cached sub-solution stands
				// in for the solve. It still occupies its slot in worker
				// apportioning so the live parts search exactly as a full run
				// would (deterministic searches depend on worker counts).
				parts[i].Reuse = cached
				replayed++
			} else {
				parts[i].Seed = partSeed
				if partSeed != nil {
					warmSeeds++
				}
			}
			if s.tr != nil {
				name := "solve.component"
				if cached != nil {
					name = "solve.reuse"
				}
				parts[i].OnSolve = func() func(*milp.Solution) {
					sp := s.tr.Begin("solve", name)
					return func(ps *milp.Solution) { endComponentSpan(sp, cc, ps) }
				}
			}
		}
		var partSols []*milp.Solution
		sol, partSols, err = milp.SolveParts(parts, comp.Model.NumVars(), mopts)
		if replayed < len(comps) {
			// Decomposed/Components count sub-MILPs actually solved; a
			// replayed part ran no solver, and a fully replayed cycle ran none
			// at all.
			s.Stats.Decomposed++
			s.Stats.Components += len(comps) - replayed
		}
		if inc != nil {
			inc.commit(partSols)
		}
		if err == nil {
			// Components that produced no incumbent fall back individually;
			// the solved components keep their decisions.
			for i, ps := range partSols {
				if ps == nil || ps.Values == nil {
					for _, j := range comps[i].Jobs {
						failed = append(failed, reqs[j])
					}
				}
			}
		}
	} else {
		cc := comps[0]
		partSeed := cc.RestrictSeed(seed)
		var cached *milp.Solution
		if inc != nil {
			cached = inc.lookup(cc, partSeed)
		}
		if cached != nil {
			sol = cached
			replayed++
			if s.tr != nil {
				s.tr.Complete("solve", "solve.reuse", 0,
					trace.S("status", cached.Status.String()),
					trace.I("jobs", int64(len(cc.Jobs))),
					trace.F("objective", cached.Objective))
			}
		} else {
			mopts.InitialSolution = partSeed
			mopts.Heuristic = comp.GreedyRound
			sol, err = milp.Solve(comp.Model, mopts)
			if partSeed != nil {
				warmSeeds++
			}
		}
		if inc != nil {
			inc.commit([]*milp.Solution{sol})
		}
	}
	elapsed := time.Since(t0)
	res.SolverLatency += elapsed
	if replayed < len(comps) {
		// A fully replayed cycle ran no MILP at all: recording it would count
		// phantom solves (and, on the single-component path, replay the cached
		// solution's node/LP/presolve effort into the totals every cycle).
		s.Stats.record(sol, warmSeeds, elapsed)
		s.tracePresolve(sol)
	}
	endSolveSpan(solveSpan, sol, err, warmSeeds > 0)
	if err != nil || sol.Values == nil {
		// Solver produced nothing inside its budget (possible under extreme
		// backlog); fall back to greedy value-ordered packing so the cluster
		// never sits idle with pending work.
		s.tr.Instant("solve", "fallback", trace.I("jobs", int64(len(reqs))))
		s.fallbackPack(now, free, reqs, res)
		return
	}

	extractSpan := s.tr.Begin("extract", "extract")
	working := free.Clone()
	granted := make(map[int]bool)
	for _, g := range comp.Decode(sol) {
		req := reqs[g.Job]
		opt := req.OptionFor(g.Leaf)
		if opt == nil {
			continue
		}
		granted[req.Job.ID] = true
		arbJob := arbClass >= 0 && assign[g.Job] == arbClass
		if g.Start > 0 {
			s.lastJob[req.Job.ID] = planChoice{key: opt.Key, slice: g.Start}
			s.tr.Instant("place", "defer", trace.I("job", int64(req.Job.ID)),
				trace.S("option", opt.Key), trace.I("start_slice", g.Start))
			if arbJob {
				s.shardStats.ArbDeferred++
			}
			continue
		}
		// Commit the placement against the shared free set, in decode order
		// (priority order — losers of a race never jump ahead of winners).
		nodes := s.pickNodes(comp, g, working, nil, 0)
		if nodes == nil {
			// Optimistic commit failed: the nodes this shard planned on are
			// gone. When nodes claimed by other commits since the epoch
			// snapshot would have satisfied the grant, this is a cross-shard
			// double-claim; either way the job stays pending intact and
			// replans next cycle, keeping its (priority, Submit, AdmitSeq,
			// ID) queue position.
			if arbClass >= 0 && s.classifyConflict(comp, g, working) {
				s.shardStats.Conflicts++
				s.shardStats.Requeued++
				s.tr.Instant("shard", "shard.conflict", trace.I("job", int64(req.Job.ID)),
					trace.I("shard", int64(assign[g.Job])))
			}
			if arbJob {
				s.shardStats.ArbDeferred++
			}
			continue // extraction failed; stay pending and replan
		}
		if arbJob {
			s.shardStats.ArbLaunched++
		}
		s.launch(now, req.Job, nodes, opt, res)
	}
	extractSpan.End(trace.I("granted", int64(len(granted))),
		trace.I("launched", int64(len(res.Decisions))))
	if len(failed) > 0 {
		// Sub-solves that returned nothing inside the shared budget degrade to
		// greedy packing against whatever the solved components left free.
		s.tr.Instant("solve", "fallback", trace.I("jobs", int64(len(failed))))
		s.fallbackPackInto(now, working, failed, res)
	}
	if s.cfg.EnablePreemption {
		s.preemptRescue(now, working, reqs, granted, res)
	}
}

// classifyConflict decides whether a failed commit was a cross-shard
// double-claim: would the grant have placed if the nodes whose epoch moved
// since this cycle's snapshot (claimed by commits that beat this one) were
// still available? A failure that not even those nodes would cure — e.g. the
// release-slice optimism of an overrunning job — is not a conflict. Pure
// reads: it must not touch s.rng, or classification would perturb later
// placements and break single-shard parity with the monolithic path.
func (s *Scheduler) classifyConflict(comp *compiler.Compiled, g compiler.LeafGrant, working *bitset.Set) bool {
	s.shardMoved = s.shardState.MovedSince(s.shardSnap, s.shardMoved)
	if len(s.shardMoved) == 0 {
		return false
	}
	// The augmented set is rebuilt from scratch on every call, so it lives in
	// a per-scheduler scratch instead of a fresh allocation per failed grant
	// (TestClassifyConflictAllocs pins this path allocation-free).
	if s.conflictScratch == nil || s.conflictScratch.Cap() != working.Cap() {
		s.conflictScratch = bitset.New(working.Cap())
	}
	aug := s.conflictScratch
	aug.CopyFrom(working)
	added := false
	for _, n := range s.shardMoved {
		if !aug.Contains(n) {
			aug.Add(n)
			added = true
		}
	}
	if !added {
		return false
	}
	return wouldPlace(comp, g, aug)
}

// wouldPlace reports whether a start-now grant could be satisfied from set.
// Partition groups are disjoint, so per-group counting needs no consumption.
func wouldPlace(comp *compiler.Compiled, g compiler.LeafGrant, set *bitset.Set) bool {
	for group, count := range g.Counts {
		if comp.Part.Groups[group].IntersectCount(set) < count {
			return false
		}
	}
	return true
}

// endComponentSpan closes one component sub-solve's span with the component's
// size and the sub-solution's telemetry.
func endComponentSpan(sp trace.Span, cc *compiler.Component, sol *milp.Solution) {
	args := make([]trace.Arg, 0, 8)
	if cc.Shard >= 0 {
		args = append(args, trace.I("shard", int64(cc.Shard)))
	}
	if sol == nil {
		args = append(args, trace.S("status", "error"),
			trace.I("jobs", int64(len(cc.Jobs))), trace.I("vars", int64(cc.Model.NumVars())))
		sp.End(args...)
		return
	}
	args = append(args, trace.S("status", sol.Status.String()),
		trace.I("jobs", int64(len(cc.Jobs))),
		trace.I("vars", int64(cc.Model.NumVars())),
		trace.I("cons", int64(cc.Model.NumConstraints())),
		trace.F("objective", sol.Objective),
		trace.I("nodes", int64(sol.Nodes)),
		trace.I("workers", int64(sol.Workers)))
	sp.End(args...)
}

// tracePresolve emits the solve.presolve span for one solve's reduction
// work. The span nests inside the enclosing solve span by timestamp
// containment (it ends before endSolveSpan records the parent).
func (s *Scheduler) tracePresolve(sol *milp.Solution) {
	if s.tr == nil || sol == nil || sol.Presolve.Rounds == 0 {
		return
	}
	s.tr.Complete("solve", "solve.presolve", sol.Presolve.Duration,
		trace.I("vars_fixed", int64(sol.Presolve.VarsFixed)),
		trace.I("rows_dropped", int64(sol.Presolve.RowsDropped)),
		trace.I("cliques_merged", int64(sol.Presolve.CliquesMerged)),
		trace.I("rounds", int64(sol.Presolve.Rounds)))
}

// endSolveSpan closes a solve span with the solution's telemetry payload.
func endSolveSpan(sp trace.Span, sol *milp.Solution, err error, warmSeed bool) {
	if err != nil || sol == nil {
		msg := "no solution"
		if err != nil {
			msg = err.Error()
		}
		sp.End(trace.S("status", "error"), trace.S("error", msg), trace.B("warm_seed", warmSeed))
		return
	}
	sp.End(trace.S("status", sol.Status.String()),
		trace.F("objective", sol.Objective), trace.F("bound", sol.Bound),
		trace.I("nodes", int64(sol.Nodes)), trace.I("lp_iters", sol.LP.Iterations),
		trace.I("warm_lps", int64(sol.LP.WarmHits)), trace.I("cold_lps", int64(sol.LP.ColdStarts)),
		trace.B("warm_seed", warmSeed))
}

// preemptRescue is the optional preemption extension: an accepted SLO job
// whose *only* remaining feasible start is this cycle, and which the solver
// could not place, may evict running best-effort work. Victims lose all
// progress and re-enter the pending queue.
func (s *Scheduler) preemptRescue(now int64, working *bitset.Set, reqs []*strlgen.Request, granted map[int]bool, res *sim.CycleResult) {
	// Jobs launched earlier in this same cycle are not yet running from the
	// driver's perspective and must not be chosen as victims.
	launchedNow := make(map[int]bool, len(res.Decisions))
	for _, d := range res.Decisions {
		launchedNow[d.Job.ID] = true
	}
	for _, req := range reqs {
		j := req.Job
		if granted[j.ID] || priority(j) != 0 {
			continue
		}
		if _, isRunning := s.running[j.ID]; isRunning {
			continue // already launched this cycle by a fallback path
		}
		lastChance := true
		for _, o := range req.Options {
			if o.StartSlice > 0 {
				lastChance = false
				break
			}
		}
		if !lastChance {
			continue
		}
		// Pick the highest-value start-now option that preemption can cover.
		for _, o := range req.Options {
			set := o.Leaf.Set
			freeIn := set.IntersectCount(working)
			if freeIn >= j.K {
				// Placeable from free nodes alone. This is the job's last
				// feasible start slice — waiting for the solver to pick it up
				// next cycle guarantees a dead SLO — so launch directly.
				s.launchFrom(now, j, set, working, o, res)
				break
			}
			// Collect best-effort victims whose nodes intersect the set,
			// youngest first (least progress wasted).
			var victims []*runInfo
			for _, r := range s.running {
				if r.job.Class == workload.BestEffort && !launchedNow[r.job.ID] {
					victims = append(victims, r)
				}
			}
			sort.Slice(victims, func(a, b int) bool {
				if victims[a].launched != victims[b].launched {
					return victims[a].launched > victims[b].launched
				}
				return victims[a].job.ID > victims[b].job.ID
			})
			need := j.K - freeIn
			var chosen []*runInfo
			for _, v := range victims {
				if need <= 0 {
					break
				}
				inSet := 0
				for _, n := range v.nodes {
					if set.Contains(n) {
						inSet++
					}
				}
				if inSet > 0 {
					chosen = append(chosen, v)
					need -= inSet
				}
			}
			if need > 0 {
				continue // even full preemption cannot cover this option
			}
			for _, v := range chosen {
				res.Preempted = append(res.Preempted, v.job)
				s.tr.Instant("place", "preempt", trace.I("victim", int64(v.job.ID)),
					trace.I("rescued", int64(j.ID)))
				delete(s.running, v.job.ID)
				s.markJobDirty(v.job.ID)
				if s.sharded() {
					s.shardState.Bump(v.nodes)
				}
				for _, n := range v.nodes {
					working.Add(n)
				}
				s.pending = append(s.pending, v.job) // re-queue for restart
			}
			s.launchFrom(now, j, set, working, o, res)
			break
		}
	}
}

// launchFrom launches j on its first j.K free nodes within set, consuming
// them from working.
func (s *Scheduler) launchFrom(now int64, j *workload.Job, set, working *bitset.Set, o *strlgen.Option, res *sim.CycleResult) {
	nodes := make([]int, 0, j.K)
	set.Intersect(working).ForEach(func(n int) bool {
		nodes = append(nodes, n)
		return len(nodes) < j.K
	})
	for _, n := range nodes {
		working.Remove(n)
	}
	s.launch(now, j, nodes, o, res)
}

// greedyCycle is TetriSched-NG: one MILP per job, highest priority first,
// with earlier jobs' tentative space-time claims excluded from later solves.
func (s *Scheduler) greedyCycle(now int64, free *bitset.Set, reqs []*strlgen.Request, res *sim.CycleResult) {
	rel := s.releaseSlices(now)
	claims := newClaimSet()
	working := free.Clone()
	for _, req := range reqs {
		compSpan := s.tr.Begin("compile", "compile")
		compT0 := time.Now()
		// Per-probe compiles share the scheduler's pooled build buffers, so
		// the per-request path no longer re-pays the full build-state
		// allocation storm for every job (the Compiled keeps its jobs slice,
		// so that one stays per-iteration).
		comp, err := s.compScr.Compile([]strl.Expr{req.Expr}, compiler.Options{
			Universe:  s.c.N(),
			Horizon:   s.horizon(),
			ReleaseAt: rel,
			BusyAt:    claims.busyAt,
		})
		s.Stats.CompileNS += time.Since(compT0).Nanoseconds()
		if err != nil {
			compSpan.End(trace.S("error", err.Error()))
			continue
		}
		compSpan.End(trace.I("job", int64(req.Job.ID)), trace.I("vars", int64(len(comp.Model.Vars))),
			trace.I("cons", int64(len(comp.Model.Cons))))
		solveSpan := s.tr.Begin("solve", "solve")
		t0 := time.Now()
		sol, err := milp.Solve(comp.Model, milp.Options{
			Gap:              s.cfg.Gap,
			TimeLimit:        s.cfg.SolverTimeLimit,
			Workers:          s.cfg.SolverWorkers,
			Deterministic:    true,
			Heuristic:        comp.GreedyRound,
			DisableWarmStart: s.cfg.DisableWarmStart,
			DisablePresolve:  s.cfg.DisablePresolve,
			DenseBasis:       s.cfg.DenseBasis,
		})
		elapsed := time.Since(t0)
		res.SolverLatency += elapsed
		s.Stats.record(sol, 0, elapsed)
		s.tracePresolve(sol)
		endSolveSpan(solveSpan, sol, err, false)
		if err != nil || sol.Values == nil {
			continue
		}
		for _, g := range comp.Decode(sol) {
			opt := req.OptionFor(g.Leaf)
			if opt == nil {
				continue
			}
			end := g.Start + g.Dur
			if g.Start == 0 {
				nodes := s.pickNodes(comp, g, working, claims, end)
				if nodes == nil {
					continue
				}
				s.launch(now, req.Job, nodes, opt, res)
				for _, n := range nodes {
					claims.add(n, 0, end)
				}
			} else {
				// Tentatively claim concrete nodes for the deferred start so
				// later (lower-priority) jobs plan around them.
				s.tr.Instant("place", "defer", trace.I("job", int64(req.Job.ID)),
					trace.S("option", opt.Key), trace.I("start_slice", g.Start))
				nodes := s.pickDeferred(comp, g, rel, claims)
				for _, n := range nodes {
					claims.add(n, g.Start, end)
				}
			}
		}
	}
}

// fallbackPack launches jobs greedily in priority order on their best
// start-now option; used only when the MILP solver returns no solution
// within its budget.
func (s *Scheduler) fallbackPack(now int64, free *bitset.Set, reqs []*strlgen.Request, res *sim.CycleResult) {
	s.fallbackPackInto(now, free.Clone(), reqs, res)
}

// fallbackPackInto is fallbackPack against a caller-owned working set, which
// it consumes; the partial-failure path of a decomposed solve packs only the
// failed components' jobs into the capacity the solved components left free.
func (s *Scheduler) fallbackPackInto(now int64, working *bitset.Set, reqs []*strlgen.Request, res *sim.CycleResult) {
	for _, req := range reqs {
		var best *strlgen.Option
		for _, o := range req.Options {
			if o.StartSlice != 0 {
				continue
			}
			// The leaf's K is the option's gang width (elastic options offer
			// several widths).
			if o.Leaf.Set.IntersectCount(working) < o.Leaf.K {
				continue
			}
			if best == nil || o.Leaf.Value > best.Leaf.Value {
				best = o
			}
		}
		if best == nil {
			continue
		}
		nodes := make([]int, 0, best.Leaf.K)
		avail := best.Leaf.Set.Intersect(working)
		avail.ForEach(func(n int) bool {
			nodes = append(nodes, n)
			return len(nodes) < best.Leaf.K
		})
		for _, n := range nodes {
			working.Remove(n)
		}
		s.launch(now, req.Job, nodes, best, res)
	}
}

// launch emits a decision and updates internal running state.
func (s *Scheduler) launch(now int64, j *workload.Job, nodes []int, opt *strlgen.Option, res *sim.CycleResult) {
	s.tr.Instant("place", "launch", trace.I("job", int64(j.ID)), trace.S("option", opt.Key),
		trace.I("nodes", int64(len(nodes))), trace.I("est_dur", opt.EstDur))
	res.Decisions = append(res.Decisions, sim.Decision{Job: j, Nodes: nodes})
	if s.sharded() {
		s.shardState.Bump(nodes)
	}
	s.running[j.ID] = &runInfo{job: j, nodes: nodes, estEnd: now + opt.EstDur, launched: now}
	s.removePending(j)
	delete(s.lastJob, j.ID)
	s.markJobDirty(j.ID)
}

// pickNodes selects concrete free nodes for a start-now grant: from each
// partition group, nodes that are free now and (for greedy) unclaimed for the
// whole occupancy interval [0, end).
func (s *Scheduler) pickNodes(comp *compiler.Compiled, g compiler.LeafGrant, working *bitset.Set, claims *claimSet, end int64) []int {
	nodes := make([]int, 0, g.Total)
	for _, group := range sortedGroups(g.Counts) {
		count := g.Counts[group]
		var candidates []int
		comp.Part.Groups[group].ForEach(func(n int) bool {
			if !working.Contains(n) {
				return true
			}
			if claims != nil && claims.overlaps(n, 0, end) {
				return true
			}
			candidates = append(candidates, n)
			return true
		})
		if len(candidates) < count {
			return nil // insufficient concrete nodes; replan next cycle
		}
		// Nodes within a group are interchangeable by construction; pick a
		// pseudo-random subset so placement quality outside the guaranteed
		// equivalence set (e.g. accidental rack locality of an "anywhere"
		// fallback) carries no systematic bias.
		s.rng.Shuffle(candidates)
		nodes = append(nodes, candidates[:count]...)
	}
	for _, n := range nodes {
		working.Remove(n)
	}
	return nodes
}

// pickDeferred selects concrete nodes free throughout a future interval for
// a tentative greedy claim; best effort (may return fewer than requested).
func (s *Scheduler) pickDeferred(comp *compiler.Compiled, g compiler.LeafGrant, rel []int64, claims *claimSet) []int {
	end := g.Start + g.Dur
	var nodes []int
	for _, group := range sortedGroups(g.Counts) {
		count := g.Counts[group]
		set := comp.Part.Groups[group]
		set.ForEach(func(n int) bool {
			if count == 0 {
				return false
			}
			if rel[n] > g.Start {
				return true
			}
			if claims.overlaps(n, g.Start, end) {
				return true
			}
			nodes = append(nodes, n)
			count--
			return true
		})
	}
	return nodes
}

// sortedGroups returns the group indices of a grant in ascending order so
// node selection is deterministic.
func sortedGroups(counts map[int]int) []int {
	out := make([]int, 0, len(counts))
	for g := range counts {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

// horizon returns the plan-ahead window size in slices (≥1).
func (s *Scheduler) horizon() int64 {
	h := s.cfg.PlanAhead / s.cfg.PlanQuantum
	if h < 1 {
		h = 1
	}
	return h
}

// Pending returns the number of queued jobs (for tests and telemetry).
func (s *Scheduler) Pending() int { return len(s.pending) }

// Running returns the number of jobs the scheduler believes are running.
func (s *Scheduler) Running() int { return len(s.running) }

// String describes the scheduler.
func (s *Scheduler) String() string {
	return fmt.Sprintf("%s{cycle=%ds planAhead=%ds gap=%.0f%%}",
		s.Name(), s.cfg.CyclePeriod, s.cfg.PlanAhead, 100*s.cfg.Gap)
}
