package core

import (
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/workload"
)

// TestCompileCacheSteadyStateSkips pins the front-end tentpole on the
// canonical steady scenario: after the first cycle generates and compiles
// cold, every later cycle serves both jobs' requests from the expression
// cache and reuses the whole compiled batch verbatim, so the steady-state
// front end does zero generate/compile work. The first change — a new
// arrival — falls back to a fresh compile while the untouched jobs' cached
// expressions keep their hits.
func TestCompileCacheSteadyStateSkips(t *testing.T) {
	sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	const cycles = 10
	for i := 0; i < cycles; i++ {
		sched.Cycle(int64(i)*4, bitset.New(8))
	}
	if sched.Stats.ExprMisses != 2 || sched.Stats.ExprHits != 2*(cycles-1) {
		t.Errorf("expression cache hits=%d misses=%d, want %d/2 (both jobs generated once, then cached)",
			sched.Stats.ExprHits, sched.Stats.ExprMisses, 2*(cycles-1))
	}
	if sched.Stats.CompileJobs != 2 || sched.Stats.CompileSkips != 2*(cycles-1) {
		t.Errorf("compile cache skips=%d jobs=%d, want %d/2 (one cold compile, then whole-batch reuse)",
			sched.Stats.CompileSkips, sched.Stats.CompileJobs, 2*(cycles-1))
	}
	if !sched.fe.valid || len(sched.exprCache) != 2 {
		t.Errorf("cache state fe.valid=%v exprCache=%d entries, want a live batch cache over 2 jobs",
			sched.fe.valid, len(sched.exprCache))
	}
	if sched.Stats.GenerateNS <= 0 || sched.Stats.CompileNS <= 0 {
		t.Errorf("front-end timers GenerateNS=%d CompileNS=%d must accrue", sched.Stats.GenerateNS, sched.Stats.CompileNS)
	}

	// A new arrival changes the batch: the whole-batch cache must miss (no
	// stale model may ever be solved), while the two untouched jobs still hit
	// the expression cache.
	skips, hits := sched.Stats.CompileSkips, sched.Stats.ExprHits
	sched.Submit(int64(cycles)*4, &workload.Job{
		ID: 2, Class: workload.SLO, Reserved: true, Type: workload.DataLocal, Submit: int64(cycles) * 4,
		K: 2, BaseRuntime: 40, Slowdown: 10, Deadline: 300, DataNodes: []int{0, 1, 2, 3},
	})
	sched.Cycle(int64(cycles)*4, bitset.New(8))
	if sched.Stats.CompileSkips != skips {
		t.Errorf("arrival cycle skipped the compile (skips %d -> %d); a changed batch must compile fresh",
			skips, sched.Stats.CompileSkips)
	}
	if got := sched.Stats.ExprHits - hits; got != 2 {
		t.Errorf("untouched jobs recorded %d expression hits after the arrival, want 2", got)
	}
	if sched.Stats.CompileJobs != 2+3 {
		t.Errorf("CompileJobs = %d after the arrival cycle, want 5 (2 cold + 3 recompiled)", sched.Stats.CompileJobs)
	}
}

// TestCompileCacheKillSwitchInert pins DisableCompileCache (and the Greedy
// variant, which has no cycle-level batch): the front-end caches must be
// fully inert — no hits, no skips, no cache state — while the timers, which
// are plain work meters, keep running.
func TestCompileCacheKillSwitchInert(t *testing.T) {
	for _, cfg := range []Config{
		{CyclePeriod: 4, PlanAhead: 16, Gap: 0, DisableCompileCache: true},
		{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Greedy: true},
	} {
		sched := steadyScheduler(cfg)
		for i := 0; i < 5; i++ {
			sched.Cycle(int64(i)*4, bitset.New(8))
		}
		if sched.Stats.ExprHits != 0 || sched.Stats.ExprMisses != 0 || sched.Stats.CompileSkips != 0 {
			t.Errorf("%s (DisableCompileCache=%v): cache counters moved (exprHits=%d exprMisses=%d skips=%d); kill switch must make the caches inert",
				cfg.Name(), cfg.DisableCompileCache, sched.Stats.ExprHits, sched.Stats.ExprMisses, sched.Stats.CompileSkips)
		}
		if sched.exprCache != nil || sched.fe.valid {
			t.Errorf("%s (DisableCompileCache=%v): cache state allocated despite the kill switch", cfg.Name(), cfg.DisableCompileCache)
		}
		if sched.Stats.GenerateNS <= 0 || sched.Stats.CompileNS <= 0 {
			t.Errorf("%s: front-end timers stopped with the cache off (generate=%d compile=%d); they meter work, not cache behavior",
				cfg.Name(), sched.Stats.GenerateNS, sched.Stats.CompileNS)
		}
	}
	if sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, DisableCompileCache: true}); sched.Stats.CompileSkipRate() != 0 {
		t.Error("CompileSkipRate must be 0 before any cycle")
	}
	// The enabled steady run must actually skip, so the inert runs above are a
	// meaningful contrast (kill-switch honesty cuts both ways).
	sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	for i := 0; i < 5; i++ {
		sched.Cycle(int64(i)*4, bitset.New(8))
	}
	if sched.Stats.CompileSkips == 0 || sched.Stats.ExprHits == 0 {
		t.Error("enabled steady-state run recorded no front-end cache activity; the kill-switch contrast proves nothing")
	}
	if r := sched.Stats.CompileSkipRate(); r <= 0 || r >= 1 {
		t.Errorf("CompileSkipRate = %v on the steady run, want strictly between 0 (cold cycle) and 1", r)
	}
}

// TestExpressionCacheDeadlineExpiry pins cache-on/cache-off agreement across
// an expression-cache expiry: an SLO job whose deadline approaches loses
// start options cycle by cycle and is eventually dropped, and the cached run
// must drop it on exactly the same cycle with exactly the same intermediate
// behavior as the uncached run. The cluster is fully blocked so the job can
// never launch and the only observable events are deferrals and the drop.
func TestExpressionCacheDeadlineExpiry(t *testing.T) {
	run := func(disable bool) (dropCycle int, sched *Scheduler) {
		sched = steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, DisableCompileCache: disable})
		// A third SLO job with a deadline tight enough to expire mid-run:
		// options shrink as now advances and vanish entirely once even an
		// immediate start cannot meet the deadline.
		sched.Submit(0, &workload.Job{
			ID: 7, Class: workload.SLO, Reserved: true, Type: workload.DataLocal, Submit: 0,
			K: 2, BaseRuntime: 40, Slowdown: 10, Deadline: 60, DataNodes: []int{0, 1, 2, 3},
		})
		dropCycle = -1
		for i := 0; i < 12; i++ {
			res := sched.Cycle(int64(i)*4, bitset.New(8))
			for _, d := range res.Dropped {
				if d.ID == 7 && dropCycle < 0 {
					dropCycle = i
				}
			}
		}
		return dropCycle, sched
	}
	onDrop, onSched := run(false)
	offDrop, _ := run(true)
	if onDrop != offDrop {
		t.Errorf("cache-on dropped the expiring job at cycle %d, cache-off at cycle %d; expiry must be policy-invariant", onDrop, offDrop)
	}
	if onDrop < 0 {
		t.Fatal("expiring job was never dropped; the scenario exercised nothing")
	}
	if _, ok := onSched.exprCache[7]; ok {
		t.Error("dropped job still has an expression-cache entry; terminal events must purge")
	}
}
