package core

import (
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// TestDecomposeSchedulerSplitsDisjointDataJobs runs the full scheduler stack
// over a workload that visibly separates: data-local jobs pinned to disjoint
// replica sets whose remote fallback is culled by tight deadlines. The cycle
// must decompose the global solve into independent sub-MILPs (visible in
// SolveStats and per-component trace spans) and still meet every SLO.
func TestDecomposeSchedulerSplitsDisjointDataJobs(t *testing.T) {
	c := cluster.RC80(false)
	tr := trace.New(1 << 12)
	data := func(lo int) []int { return []int{lo, lo + 1, lo + 2, lo + 3} }
	mk := func(id, lo int) *workload.Job {
		// Local runtime 40 fits the deadline; the whole-cluster fallback runs
		// 2× and cannot, so it is culled at generation and the job's leaves
		// touch only its own replica set.
		return &workload.Job{
			ID: id, Class: workload.SLO, Type: workload.DataLocal, Submit: 0,
			K: 2, BaseRuntime: 40, Slowdown: 2, Deadline: 50, DataNodes: data(lo),
		}
	}
	jobs := []*workload.Job{mk(0, 0), mk(1, 0), mk(2, 40), mk(3, 40)}
	sched := New(c, Config{PlanAhead: 40, Gap: 0, Tracer: tr})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Stats {
		if !res.Stats[i].MetSLO() {
			t.Errorf("job %d missed its SLO: %+v", i, res.Stats[i])
		}
	}
	if sched.Stats.Decomposed < 1 {
		t.Errorf("Decomposed = %d, want >= 1", sched.Stats.Decomposed)
	}
	if sched.Stats.Components < 2 {
		t.Errorf("Components = %d, want >= 2", sched.Stats.Components)
	}
	spans := 0
	for _, e := range tr.Snapshot() {
		if e.Kind == trace.KindSpan && e.Name == "solve.component" {
			spans++
			var jobs, vars int64
			for _, a := range e.Args[:e.NArg] {
				switch a.Key {
				case "jobs":
					jobs = a.Int()
				case "vars":
					vars = a.Int()
				}
			}
			if jobs < 1 || vars < 1 {
				t.Errorf("component span missing size args: jobs=%d vars=%d", jobs, vars)
			}
		}
	}
	if spans < 2 {
		t.Errorf("recorded %d solve.component spans, want >= 2", spans)
	}
}

// TestDecomposeSingleComponentPathUnchanged: a contended batch must stay on
// the monolithic path (no decomposed-solve accounting).
func TestDecomposeSingleComponentPathUnchanged(t *testing.T) {
	c := threeNodeCluster()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 2, BaseRuntime: 10, Slowdown: 1, Deadline: 10},
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 1, BaseRuntime: 20, Slowdown: 1, Deadline: 40},
		{ID: 2, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 3, BaseRuntime: 10, Slowdown: 1, Deadline: 20},
	}
	sched := New(c, Config{CyclePeriod: 10, PlanAhead: 40, Gap: 0})
	if _, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, CyclePeriod: 10}); err != nil {
		t.Fatal(err)
	}
	if sched.Stats.Decomposed != 0 || sched.Stats.Components != 0 {
		t.Errorf("Fig 4 batch decomposed (%d solves, %d components); all three jobs share one contended cluster",
			sched.Stats.Decomposed, sched.Stats.Components)
	}
}
