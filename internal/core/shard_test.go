package core

import (
	"reflect"
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/compiler"
	"tetrisched/internal/sim"
	"tetrisched/internal/strl"
	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// twoRackCluster is the canonical sharding fixture: two identical 4-node
// racks, which ByProfile deals into two 4-node shards (one rack each).
func twoRackCluster() *cluster.Cluster {
	return cluster.NewBuilder().AddRack("r0", 4, nil).AddRack("r1", 4, nil).Build()
}

// be builds one best-effort unconstrained gang.
func be(id, k int, runtime int64) *workload.Job {
	return &workload.Job{
		ID: id, Class: workload.BestEffort, Type: workload.Unconstrained,
		K: k, BaseRuntime: runtime, Slowdown: 1, Submit: 0,
	}
}

// TestShardConflictDetectionAndRequeue crafts a cross-shard double-claim:
// four 3-node gangs on an 8-node cluster split into two shards. Each shard
// plans its two gangs against an optimistic full-supply copy of the shared
// "any node" row (12 nodes of demand against 8 of supply in total), so the
// commit loop must detect that the late gangs' nodes were claimed by commits
// that beat them — the epoch snapshot says the missing nodes moved — count
// the conflicts, and requeue the losers intact.
func TestShardConflictDetectionAndRequeue(t *testing.T) {
	c := twoRackCluster()
	tr := trace.New(1 << 10)
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Shards: 2, Tracer: tr})
	jobs := []*workload.Job{be(0, 3, 8), be(1, 3, 8), be(2, 3, 8), be(3, 3, 8)}
	for _, j := range jobs {
		sched.Submit(0, j)
	}
	free := bitset.New(c.N())
	free.Fill()
	res := sched.Cycle(0, free)

	// The shared free set admits at most two 3-node gangs; the rest must
	// requeue. No decision may ever be a partial gang.
	launched := bitset.New(c.N())
	for _, d := range res.Decisions {
		if len(d.Nodes) != d.Job.K {
			t.Errorf("job %d launched with %d nodes, want exactly K=%d (gangs are atomic)",
				d.Job.ID, len(d.Nodes), d.Job.K)
		}
		for _, n := range d.Nodes {
			if launched.Contains(n) {
				t.Errorf("node %d double-allocated across commits", n)
			}
			launched.Add(n)
		}
	}
	if len(res.Decisions) != 2 {
		t.Fatalf("launched %d gangs, want 2 (8 nodes / K=3)", len(res.Decisions))
	}
	st := sched.ShardStatsSnapshot()
	if st.Shards != 2 || st.Cycles != 1 {
		t.Errorf("shard stats shards=%d cycles=%d, want 2/1", st.Shards, st.Cycles)
	}
	if st.Conflicts < 1 {
		t.Errorf("Conflicts = %d, want >= 1: the losing gangs' nodes were claimed by "+
			"commits after the epoch snapshot", st.Conflicts)
	}
	if st.Requeued != st.Conflicts {
		t.Errorf("Requeued = %d, Conflicts = %d; every detected conflict requeues its job", st.Requeued, st.Conflicts)
	}
	// Losers stay pending intact.
	if sched.Pending() != 2 {
		t.Fatalf("Pending = %d after the conflict cycle, want the 2 losing gangs", sched.Pending())
	}
	// And the conflict instants carry the losing shard.
	conflictEvents := 0
	for _, e := range tr.Snapshot() {
		if e.Name == "shard.conflict" {
			conflictEvents++
		}
	}
	if int64(conflictEvents) != st.Conflicts {
		t.Errorf("recorded %d shard.conflict trace instants, want %d", conflictEvents, st.Conflicts)
	}
}

// TestShardLoserKeepsQueuePosition pins the requeue ordering contract: a gang
// that loses an optimistic commit race stays in the pending queue at its
// (priority, Submit, AdmitSeq, ID) position — a later arrival, even one
// admitted before the next cycle runs, files behind it.
func TestShardLoserKeepsQueuePosition(t *testing.T) {
	c := twoRackCluster()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Shards: 2})
	for id := 0; id < 4; id++ {
		sched.Submit(0, be(id, 3, 8))
	}
	free := bitset.New(c.N())
	free.Fill()
	sched.Cycle(0, free)
	if sched.Pending() != 2 {
		t.Fatalf("Pending = %d after the conflict cycle, want 2 losers", sched.Pending())
	}
	losers := make([]int, 0, 2)
	for _, j := range sched.orderedPending() {
		losers = append(losers, j.ID)
	}

	// A same-class arrival submitted later must sort behind both losers.
	late := be(9, 1, 8)
	late.Submit = 4
	sched.Submit(4, late)
	got := make([]int, 0, 3)
	for _, j := range sched.orderedPending() {
		got = append(got, j.ID)
	}
	want := append(append([]int{}, losers...), 9)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pending order after requeue = %v, want %v (losers keep their queue position)", got, want)
	}
}

// TestShardArbitratorAtomicity pins the gang arbitrator: a 6-node gang on two
// 4-node shards fits in neither, so it is serialized through the arbitrator
// component. When per-shard commits have already claimed its nodes the gang
// defers whole — never a partial launch — and once the cluster drains it
// launches with exactly its full K.
func TestShardArbitratorAtomicity(t *testing.T) {
	c := twoRackCluster()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Shards: 2})
	shardJobs := []*workload.Job{be(0, 3, 8), be(1, 3, 8)}
	gang := be(2, 6, 8)
	for _, j := range shardJobs {
		sched.Submit(0, j)
	}
	sched.Submit(0, gang)
	free := bitset.New(c.N())
	free.Fill()
	res := sched.Cycle(0, free)

	st := sched.ShardStatsSnapshot()
	if st.Spanning != 1 {
		t.Errorf("Spanning = %d, want 1: the 6-node gang fits in no 4-node shard", st.Spanning)
	}
	for _, d := range res.Decisions {
		if d.Job.ID == gang.ID {
			t.Fatalf("gang launched in the contended cycle with %d nodes; the shard gangs own 6 of 8", len(d.Nodes))
		}
		if len(d.Nodes) != d.Job.K {
			t.Errorf("job %d launched with %d nodes, want K=%d", d.Job.ID, len(d.Nodes), d.Job.K)
		}
	}
	if st.ArbDeferred < 1 {
		t.Errorf("ArbDeferred = %d, want >= 1: the gang must defer whole", st.ArbDeferred)
	}
	if st.ArbLaunched != 0 {
		t.Errorf("ArbLaunched = %d, want 0 in the contended cycle", st.ArbLaunched)
	}
	found := false
	for _, j := range sched.orderedPending() {
		if j.ID == gang.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("gang neither launched nor pending; arbitrator atomicity broken")
	}

	// Drain the shard gangs; the arbitrator gang must now launch atomically.
	for _, j := range shardJobs {
		sched.JobFinished(8, j)
	}
	free = bitset.New(c.N())
	free.Fill()
	for now := int64(8); now <= 24 && sched.Pending() > 0; now += 4 {
		res = sched.Cycle(now, free)
		for _, d := range res.Decisions {
			if d.Job.ID != gang.ID {
				t.Fatalf("unexpected launch of job %d on the drained cluster", d.Job.ID)
			}
			if len(d.Nodes) != gang.K {
				t.Fatalf("gang launched with %d nodes, want the full K=%d", len(d.Nodes), gang.K)
			}
		}
	}
	if sched.Pending() != 0 {
		t.Fatal("gang never launched on the drained cluster")
	}
	if st := sched.ShardStatsSnapshot(); st.ArbLaunched != 1 {
		t.Errorf("ArbLaunched = %d, want 1", st.ArbLaunched)
	}
}

// TestShardedCycleConcurrency runs a 4-shard simulation end to end — under
// the race detector this exercises the concurrent per-shard sub-solves
// (SolverWorkers defaults to the shard count) against the mutex-guarded
// epoch state, and every invariant the driver checks (no double allocation,
// gang atomicity) must hold.
func TestShardedCycleConcurrency(t *testing.T) {
	c := cluster.RC80(true)
	jobs, err := workload.Generate(workload.GSHET(30), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	sched := New(c, Config{PlanAhead: 48, Shards: 4})
	if sched.cfg.SolverWorkers != 4 {
		t.Fatalf("SolverWorkers = %d, want the shard count 4 by default", sched.cfg.SolverWorkers)
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := sched.ShardStatsSnapshot()
	if st.Cycles == 0 {
		t.Error("sharded run recorded no shard cycles")
	}
	done := 0
	for i := range res.Stats {
		if res.Stats[i].Finish > 0 || res.Stats[i].Dropped {
			done++
		}
	}
	if done != len(jobs) {
		t.Errorf("%d of %d jobs reached a terminal state", done, len(jobs))
	}
}

// TestReuseMapSteadyStateAllocs pins the epoch-map recycling contract: after
// warmup the cache epoch alternates between exactly two map allocations (the
// displaced epoch is cleared and reused as the next scratch), so steady-state
// cycles allocate no map at all.
func TestReuseMapSteadyStateAllocs(t *testing.T) {
	sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	seen := make(map[uintptr]int)
	const cycles = 12
	for i := 0; i < cycles; i++ {
		sched.Cycle(int64(i)*4, bitset.New(8))
		if sched.reuse == nil {
			t.Fatalf("cycle %d: no cache epoch installed", i)
		}
		seen[reflect.ValueOf(sched.reuse).Pointer()]++
		if sched.reuseNext == nil {
			t.Errorf("cycle %d: displaced epoch was not parked for recycling", i)
		}
	}
	if len(seen) > 2 {
		t.Errorf("cache epoch used %d distinct map allocations over %d cycles, want <= 2 (recycled pair)",
			len(seen), cycles)
	}
	if sched.Stats.ReuseHits == 0 {
		t.Error("steady scenario produced no reuse hits; the recycling assertion proved nothing")
	}
}

// TestReuseMapShrinksAfterSpike pins the footprint release: when the live
// entry set falls below a quarter of the high-water mark, commit copies it
// into a fresh right-sized map (Go maps never shrink their buckets) and drops
// the oversized pair entirely.
func TestReuseMapShrinksAfterSpike(t *testing.T) {
	sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	sched.Cycle(0, bitset.New(8))
	sched.Cycle(4, bitset.New(8))
	if len(sched.reuse) == 0 {
		t.Fatal("steady scenario cached no components; cannot exercise the shrink path")
	}
	// Pretend a backlog spike once pushed the epoch to 1000 entries. The live
	// set (two components) is far below a quarter of that, so the next commit
	// must re-make the map and reset the high-water mark.
	sched.reuseHW = 1000
	sched.Cycle(8, bitset.New(8))
	if sched.reuseNext != nil {
		t.Error("shrink path kept the displaced oversized map; it must be released")
	}
	if sched.reuseHW != len(sched.reuse) {
		t.Errorf("reuseHW = %d after shrink, want the live size %d", sched.reuseHW, len(sched.reuse))
	}
	if got := len(sched.reuse); got == 0 {
		t.Error("shrunk epoch lost its live entries")
	}
	// The cycle after a shrink re-makes scratch and keeps replaying.
	hits := sched.Stats.ReuseHits
	sched.Cycle(12, bitset.New(8))
	if sched.Stats.ReuseHits <= hits {
		t.Error("replay stopped after the shrink; the right-sized copy must preserve entries")
	}
}

// TestClassifyConflictAllocs pins the commit loop's conflict classifier
// allocation-free in steady state. classifyConflict runs once per failed
// grant inside the per-cycle commit loop, so a per-call Clone of the working
// set would allocate proportionally to contention; the scheduler-owned
// scratch set must absorb it entirely.
func TestClassifyConflictAllocs(t *testing.T) {
	c := twoRackCluster()
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Shards: 2})
	for _, j := range []*workload.Job{be(0, 3, 8), be(1, 3, 8), be(2, 3, 8), be(3, 3, 8)} {
		sched.Submit(0, j)
	}
	free := bitset.New(c.N())
	free.Fill()
	sched.Cycle(0, free) // launches bump epochs past the cycle's snapshot
	if len(sched.shardState.MovedSince(sched.shardSnap, nil)) == 0 {
		t.Fatal("no nodes moved since the snapshot; the classifier's hot path is not exercised")
	}

	// A one-leaf model over the whole cluster: the grant wants 3 nodes of
	// group 0, the working set is empty, and the moved nodes (claimed by the
	// winning commits) would cure it — a genuine cross-shard conflict.
	all := bitset.New(c.N())
	all.Fill()
	leaf := &strl.NCk{Set: all, K: 3, Start: 0, Dur: 2, Value: 1}
	comp, err := compiler.Compile([]strl.Expr{leaf}, compiler.Options{Universe: c.N(), Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	grant := compiler.LeafGrant{Job: 0, Leaf: leaf, Dur: 2, Counts: map[int]int{0: 3}, Total: 3}
	working := bitset.New(c.N())
	if !sched.classifyConflict(comp, grant, working) {
		t.Fatal("grant not classified as a conflict; the scenario exercised nothing")
	}
	if avg := testing.AllocsPerRun(100, func() {
		sched.classifyConflict(comp, grant, working)
	}); avg != 0 {
		t.Errorf("classifyConflict allocates %.1f times per call in steady state, want 0", avg)
	}
}
