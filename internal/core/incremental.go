package core

// Incremental cross-cycle scheduling (docs/SOLVER.md "Incremental
// scheduling"). Adaptive plan-ahead recompiles a nearly identical MILP every
// cycle, so a steady-state cluster pays the full cold cost regardless of how
// little changed. The component seam from the decomposition layer is the unit
// of reuse: when a component's solve inputs this cycle are byte-identical to
// last cycle's — witnessed by a fingerprint over the sliced model, the greedy
// heuristic's state, and the restricted warm-start seed — its cached
// sub-solution is replayed verbatim instead of being solved again.
//
// Replay is deliberately restricted to exact input identity. Anything looser
// (shifting a stale plan, seeding a changed component with a foreign
// incumbent beyond the existing lastJob mechanism) would let incremental-on
// and incremental-off runs diverge inside the MIP gap, and the policy
// contract (TestIncrementalParityProperty) is byte-identical decisions.
// Dirty sets are a cheap gate and a collision belt on top: a component
// touching a dirtied job or a node whose believed release slice moved never
// consults the cache, so even a fingerprint collision cannot replay across a
// known change.

import (
	"tetrisched/internal/bitset"
	"tetrisched/internal/compiler"
	"tetrisched/internal/milp"
	"tetrisched/internal/strlgen"
)

// reuseEntry is one cached component sub-solution.
type reuseEntry struct {
	fp  uint64         // fingerprint of the solve inputs (model + heuristic state + seed)
	sol *milp.Solution // component-space sub-solution; always StatusOptimal
	ids []int          // the component's job IDs, for event-driven purges
}

// incEnabled reports whether the incremental reuse machinery is active.
// Greedy mode (TetriSched-NG) solves per job with tentative claims threaded
// between solves — there is no component seam to cache.
func (s *Scheduler) incEnabled() bool { return !s.cfg.DisableIncremental && !s.cfg.Greedy }

// markJobDirty records that a job's scheduler-visible state changed
// (arrival, completion, drop, launch, preemption) so any component
// containing it skips the reuse cache next cycle, and purges the front-end
// caches naming it (frontend.go). No-op when both machineries are off.
func (s *Scheduler) markJobDirty(id int) {
	if s.dirtyJobs != nil {
		s.dirtyJobs[id] = struct{}{}
	}
	s.purgeFrontEnd(id)
}

// purgeReuse drops every cached component containing the job. The cache
// epoch is rebuilt each global cycle, but a cycle that ends with no pending
// work returns before the rebuild, so terminal events (finish, drop) must
// purge eagerly or entries naming dead jobs would survive a drain.
func (s *Scheduler) purgeReuse(id int) {
	for key, ent := range s.reuse {
		for _, jid := range ent.ids {
			if jid == id {
				delete(s.reuse, key)
				break
			}
		}
	}
}

// incCycle is one global cycle's view of the incremental state: the dirty
// sets consumed at cycle start plus the next cache epoch under construction.
type incCycle struct {
	s        *Scheduler
	comp     *compiler.Compiled
	reqs     []*strlgen.Request
	dirty    map[int]struct{} // job IDs dirtied since the previous global cycle
	changed  *bitset.Set      // nodes whose believed release slice moved
	grpDirty map[int]bool     // memo: partition group → contains a changed node
	pend     []pendEntry      // per-part key+fingerprint, aligned with the parts
	next     map[uint64]*reuseEntry
}

type pendEntry struct {
	key uint64
	fp  uint64
	ids []int
}

// beginIncCycle consumes the dirty-job set, diffs the believed release
// slices against the previous cycle's to find changed nodes, and opens the
// next cache epoch. Marks made later in this cycle (launches, preemptions)
// land in a fresh set and dirty the following cycle.
func (s *Scheduler) beginIncCycle(comp *compiler.Compiled, reqs []*strlgen.Request, rel []int64) *incCycle {
	// The epoch map is recycled rather than re-made: commit parks the
	// displaced epoch in reuseNext, and the next cycle clears and reuses its
	// backing storage. Steady-state cycles therefore allocate no map at all
	// (TestReuseMapSteadyStateAllocs).
	next := s.reuseNext
	if next != nil {
		clear(next)
		s.reuseNext = nil
	} else {
		next = make(map[uint64]*reuseEntry)
	}
	ic := &incCycle{
		s: s, comp: comp, reqs: reqs,
		dirty:    s.dirtyJobs,
		grpDirty: make(map[int]bool),
		changed:  bitset.New(s.c.N()),
		next:     next,
	}
	s.dirtyJobs = make(map[int]struct{})
	if s.lastRel == nil {
		ic.changed.Fill() // first cycle: everything is new
	} else {
		for n, r := range rel {
			if s.lastRel[n] != r {
				ic.changed.Add(n)
			}
		}
	}
	s.lastRel = append(s.lastRel[:0], rel...)
	return ic
}

// clean reports whether no dirty job and no release-changed node touches the
// component.
func (ic *incCycle) clean(cc *compiler.Component) bool {
	for _, bi := range cc.Jobs {
		if _, d := ic.dirty[ic.reqs[bi].Job.ID]; d {
			return false
		}
	}
	if ic.changed.Count() == 0 {
		return true
	}
	for _, g := range ic.comp.ComponentGroups(cc) {
		d, ok := ic.grpDirty[g]
		if !ok {
			d = ic.comp.Part.Groups[g].IntersectCount(ic.changed) > 0
			ic.grpDirty[g] = d
		}
		if d {
			return false
		}
	}
	return true
}

// lookup fingerprints the component (with its restricted seed) and returns
// the cached sub-solution when the component is clean and the fingerprint
// matches last cycle's; nil means the part must be solved. Every call
// appends the component's cache identity, in part order, for commit.
func (ic *incCycle) lookup(cc *compiler.Component, seed []float64) *milp.Solution {
	ids := make([]int, len(cc.Jobs))
	for i, bi := range cc.Jobs {
		ids[i] = ic.reqs[bi].Job.ID
	}
	fp := compiler.HashFloatsInto(ic.comp.ComponentFingerprint(cc), seed)
	key := compiler.HashInts(ids)
	ic.pend = append(ic.pend, pendEntry{key: key, fp: fp, ids: ids})
	if !ic.clean(cc) {
		ic.s.Stats.ReuseMisses++
		return nil
	}
	ent, ok := ic.s.reuse[key]
	if !ok || ent.fp != fp {
		ic.s.Stats.ReuseMisses++
		return nil
	}
	ic.s.Stats.ReuseHits++
	return ent.sol
}

// commit installs the next cache epoch from this cycle's sub-solutions,
// aligned with the lookup order. Only parts that proved optimality are
// cached: a time-limited incumbent is not a reproducible function of the
// fingerprinted inputs, so replaying one could diverge from a fresh solve.
// Replayed parts re-enter the epoch unchanged.
func (ic *incCycle) commit(partSols []*milp.Solution) {
	for i, sol := range partSols {
		if i >= len(ic.pend) || sol == nil || sol.Status != milp.StatusOptimal || sol.Values == nil {
			continue
		}
		p := ic.pend[i]
		ic.next[p.key] = &reuseEntry{fp: p.fp, sol: sol, ids: p.ids}
	}
	s := ic.s
	if len(ic.next) > s.reuseHW {
		s.reuseHW = len(ic.next)
	}
	// A Go map never returns bucket memory to the allocator, so a backlog
	// spike would pin its high-water footprint forever if the map were simply
	// cleared each epoch. Recycle the displaced map as next cycle's scratch,
	// and when the live set has fallen below a quarter of the high-water mark
	// copy it into a fresh right-sized map so the oversized backing storage
	// is actually released.
	if s.reuseHW > reuseShrinkMin && len(ic.next)*4 < s.reuseHW {
		shrunk := make(map[uint64]*reuseEntry, len(ic.next))
		for k, v := range ic.next {
			shrunk[k] = v
		}
		s.reuse = shrunk
		s.reuseNext = nil
		s.reuseHW = len(shrunk)
		return
	}
	old := s.reuse
	s.reuse = ic.next
	s.reuseNext = old
}

// reuseShrinkMin is the high-water mark below which the reuse map is never
// shrunk: re-making tiny maps would cost more than the bytes they pin.
const reuseShrinkMin = 64
