package core

import "sort"

// claimInterval is a half-open busy interval [s, e) in plan slices.
type claimInterval struct {
	s, e int64
}

// claimSet tracks tentative space-time claims made during a greedy
// (TetriSched-NG) cycle as per-node sorted, non-overlapping interval lists.
// The historical representation was a flat claim slice scanned linearly per
// time tick, making the pickNodes/pickDeferred availability checks
// O(horizon × claims) per candidate node; interval lists answer the same
// queries in O(log claims).
type claimSet struct {
	byNode map[int][]claimInterval
}

func newClaimSet() *claimSet {
	return &claimSet{byNode: make(map[int][]claimInterval)}
}

// add claims [s, e) on a node, merging with adjacent or overlapping
// intervals so the list stays sorted and disjoint.
func (c *claimSet) add(node int, s, e int64) {
	if e <= s {
		return
	}
	iv := c.byNode[node]
	// First interval with end beyond the new start — everything from here on
	// may touch [s, e).
	lo := sort.Search(len(iv), func(i int) bool { return iv[i].e >= s })
	hi := lo
	for hi < len(iv) && iv[hi].s <= e {
		if iv[hi].s < s {
			s = iv[hi].s
		}
		if iv[hi].e > e {
			e = iv[hi].e
		}
		hi++
	}
	merged := append(iv[:lo:lo], claimInterval{s, e})
	merged = append(merged, iv[hi:]...)
	c.byNode[node] = merged
}

// busyAt reports whether the node is claimed at slice t. Matches the
// compiler.Options.BusyAt signature.
func (c *claimSet) busyAt(node int, t int64) bool {
	iv := c.byNode[node]
	i := sort.Search(len(iv), func(i int) bool { return iv[i].e > t })
	return i < len(iv) && iv[i].s <= t
}

// overlaps reports whether the node has any claim intersecting [s, e).
func (c *claimSet) overlaps(node int, s, e int64) bool {
	if e <= s {
		return false
	}
	iv := c.byNode[node]
	i := sort.Search(len(iv), func(i int) bool { return iv[i].e > s })
	return i < len(iv) && iv[i].s < e
}
