package core

import (
	"math/rand"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// naiveClaims is the historical flat representation: one entry per claim,
// membership answered by a linear scan per time tick. It is the oracle the
// interval-list claimSet must agree with exactly.
type naiveClaims struct {
	claims []struct {
		node int
		s, e int64
	}
}

func (n *naiveClaims) add(node int, s, e int64) {
	n.claims = append(n.claims, struct {
		node int
		s, e int64
	}{node, s, e})
}

func (n *naiveClaims) busyAt(node int, t int64) bool {
	for _, c := range n.claims {
		if c.node == node && t >= c.s && t < c.e {
			return true
		}
	}
	return false
}

func (n *naiveClaims) overlaps(node int, s, e int64) bool {
	for t := s; t < e; t++ {
		if n.busyAt(node, t) {
			return true
		}
	}
	return false
}

// TestClaimSetMatchesNaive cross-checks the interval-list claimSet against
// the per-tick linear scan it replaced, over randomized claim patterns
// including overlapping, adjacent, and nested intervals.
func TestClaimSetMatchesNaive(t *testing.T) {
	const horizon = 40
	for trial := 0; trial < 50; trial++ {
		r := rand.New(rand.NewSource(int64(trial)))
		fast := newClaimSet()
		slow := &naiveClaims{}
		for i := 0; i < 30; i++ {
			node := r.Intn(4)
			s := int64(r.Intn(horizon))
			e := s + int64(r.Intn(10))
			fast.add(node, s, e)
			slow.add(node, s, e)
			for n := 0; n < 4; n++ {
				for tt := int64(0); tt < horizon+4; tt++ {
					if got, want := fast.busyAt(n, tt), slow.busyAt(n, tt); got != want {
						t.Fatalf("trial %d after %d adds: busyAt(%d,%d) = %v, naive says %v", trial, i+1, n, tt, got, want)
					}
				}
				for s2 := int64(0); s2 < horizon; s2 += 3 {
					for _, len2 := range []int64{0, 1, 2, 7} {
						if got, want := fast.overlaps(n, s2, s2+len2), slow.overlaps(n, s2, s2+len2); got != want {
							t.Fatalf("trial %d: overlaps(%d,[%d,%d)) = %v, naive says %v", trial, n, s2, s2+len2, got, want)
						}
					}
				}
			}
		}
	}
}

// TestClaimSetMerging pins the interval-merge behavior: overlapping and
// touching claims coalesce into one sorted disjoint list.
func TestClaimSetMerging(t *testing.T) {
	c := newClaimSet()
	c.add(0, 5, 8)
	c.add(0, 10, 12)
	c.add(0, 8, 10) // bridges the two
	if got := c.byNode[0]; len(got) != 1 || got[0] != (claimInterval{5, 12}) {
		t.Fatalf("intervals = %v, want one merged [5,12)", got)
	}
	if c.busyAt(0, 4) || !c.busyAt(0, 5) || !c.busyAt(0, 11) || c.busyAt(0, 12) {
		t.Fatal("half-open boundary semantics violated")
	}
	if c.overlaps(0, 0, 5) {
		t.Fatal("[0,5) must not overlap [5,12)")
	}
	if !c.overlaps(0, 11, 20) {
		t.Fatal("[11,20) must overlap [5,12)")
	}
	if c.overlaps(1, 0, 100) {
		t.Fatal("unclaimed node reported busy")
	}
	c.add(0, 3, 3) // empty interval is a no-op
	if len(c.byNode[0]) != 1 {
		t.Fatal("empty add changed the set")
	}
}

// longJobNG builds a TetriSched-NG scenario dominated by long-duration jobs,
// so tentative greedy claims span many plan slices and the overlap test (not
// just single-tick membership) decides placements.
func longJobNG() (*cluster.Cluster, []*workload.Job) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).AddRack("r1", 4, nil).Build()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 200, Slowdown: 1, Priority: 2},
		{ID: 1, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 200, Slowdown: 1, Priority: 2},
		{ID: 2, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 4, K: 4, BaseRuntime: 160, Slowdown: 1, Priority: 1},
		{ID: 3, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 8, K: 2, BaseRuntime: 120, Slowdown: 1, Priority: 1},
		{ID: 4, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 8, K: 2, BaseRuntime: 120, Slowdown: 1, Priority: 1},
		{ID: 5, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 12, K: 8, BaseRuntime: 100, Slowdown: 1, Priority: 3},
	}
	return c, jobs
}

// TestGreedyLongDurationDecisions runs TetriSched-NG over long-duration jobs
// and checks the decisions are sound and reproducible: every job completes,
// no node is double-assigned while a previous occupant is still believed
// running, and two identical runs make identical decisions.
func TestGreedyLongDurationDecisions(t *testing.T) {
	type placement struct {
		job   int
		start int64
		nodes []int
	}
	run := func() []placement {
		c, jobs := longJobNG()
		sched := New(c, Config{PlanAhead: 48, Greedy: true})
		res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
		if err != nil {
			t.Fatal(err)
		}
		var out []placement
		for _, st := range res.Stats {
			if !st.Completed {
				t.Fatalf("job %d did not complete: %+v", st.Job.ID, st)
			}
			out = append(out, placement{job: st.Job.ID, start: st.Start, nodes: st.Nodes})
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].job != b[i].job || a[i].start != b[i].start {
			t.Fatalf("decision %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
		for k := range a[i].nodes {
			if a[i].nodes[k] != b[i].nodes[k] {
				t.Fatalf("job %d node set differs across identical runs: %v vs %v", a[i].job, a[i].nodes, b[i].nodes)
			}
		}
	}
}
