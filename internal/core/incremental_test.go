package core

import (
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// steadyScheduler builds the canonical reuse scenario: two overrunning
// best-effort blockers pin every node's believed release slice at 1 forever
// (releaseSlices bumps an overrun estimate to now+CyclePeriod each cycle), and
// two data-local SLO jobs with far deadlines and a value-culled remote
// fallback defer in place cycle after cycle. From cycle 1 on, both components'
// solve inputs are byte-identical to the previous cycle's.
func steadyScheduler(cfg Config) *Scheduler {
	c := cluster.NewBuilder().AddRack("r0", 8, nil).Build()
	sched := New(c, cfg)
	for i, lo := range []int{0, 4} {
		blocker := &workload.Job{ID: 100 + i, Class: workload.BestEffort, Type: workload.Unconstrained, K: 4, BaseRuntime: 4, Slowdown: 1}
		sched.running[blocker.ID] = &runInfo{job: blocker, nodes: []int{lo, lo + 1, lo + 2, lo + 3}, estEnd: 0}
	}
	for i, lo := range []int{0, 4} {
		sched.Submit(0, &workload.Job{
			ID: i, Class: workload.SLO, Reserved: true, Type: workload.DataLocal, Submit: 0,
			// Slowdown 10 makes the whole-cluster fallback (400s) blow the
			// deadline at generation, keeping each job's leaves on its own
			// block; the local deadline never binds over the test's horizon,
			// so leaf values are independent of the current time.
			K: 2, BaseRuntime: 40, Slowdown: 10, Deadline: 300, DataNodes: []int{lo, lo + 1, lo + 2, lo + 3},
		})
	}
	return sched
}

// TestIncrementalSteadyStateReplays pins the tentpole behavior: in a
// steady-state cluster (pinned release slices, unchanged pending set) every
// component after the first cycle replays from the cache, no phantom solver
// telemetry accumulates, and the first change — a new arrival — invalidates
// exactly the component it lands in.
func TestIncrementalSteadyStateReplays(t *testing.T) {
	tr := trace.New(1 << 12)
	sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Tracer: tr})
	const cycles = 10
	for i := 0; i < cycles; i++ {
		res := sched.Cycle(int64(i)*4, bitset.New(8))
		if len(res.Decisions) != 0 || len(res.Dropped) != 0 {
			t.Fatalf("cycle %d: unexpected activity %+v; the scenario should defer forever", i, res)
		}
	}
	// Cycle 0 fingerprints both components cold; every later cycle replays
	// both.
	if sched.Stats.ReuseMisses != 2 {
		t.Errorf("ReuseMisses = %d, want 2 (both components, first cycle only)", sched.Stats.ReuseMisses)
	}
	if want := 2 * (cycles - 1); sched.Stats.ReuseHits != want {
		t.Errorf("ReuseHits = %d, want %d (two components replayed per steady cycle)", sched.Stats.ReuseHits, want)
	}
	// Fully replayed cycles run no MILP: only cycle 0's decomposed solve may
	// appear in the solver telemetry.
	if sched.Stats.Solves != 1 {
		t.Errorf("Solves = %d, want 1: replayed cycles must not record phantom solves", sched.Stats.Solves)
	}
	if sched.Stats.Decomposed != 1 || sched.Stats.Components != 2 {
		t.Errorf("Decomposed = %d, Components = %d; want only cycle 0's 2 live sub-solves counted",
			sched.Stats.Decomposed, sched.Stats.Components)
	}
	reuseSpans := 0
	for _, e := range tr.Snapshot() {
		if e.Name == "solve.reuse" {
			reuseSpans++
		}
	}
	if want := 2 * (cycles - 1); reuseSpans != want {
		t.Errorf("recorded %d solve.reuse spans, want %d", reuseSpans, want)
	}

	// A new arrival in block 0 dirties its component; block 1's component
	// still replays.
	hits, misses := sched.Stats.ReuseHits, sched.Stats.ReuseMisses
	sched.Submit(int64(cycles)*4, &workload.Job{
		ID: 2, Class: workload.SLO, Reserved: true, Type: workload.DataLocal, Submit: int64(cycles) * 4,
		K: 2, BaseRuntime: 40, Slowdown: 10, Deadline: 300, DataNodes: []int{0, 1, 2, 3},
	})
	sched.Cycle(int64(cycles)*4, bitset.New(8))
	if got := sched.Stats.ReuseMisses - misses; got != 1 {
		t.Errorf("arrival invalidated %d components, want exactly 1 (the block it landed in)", got)
	}
	if got := sched.Stats.ReuseHits - hits; got != 1 {
		t.Errorf("untouched component replayed %d times after the arrival, want 1", got)
	}
}

// TestIncrementalKillSwitch pins DisableIncremental (and the Greedy variant,
// which has no component seam): the reuse machinery must be fully inert — no
// hits, no misses, no cache — while the schedule itself is unchanged.
func TestIncrementalKillSwitch(t *testing.T) {
	for _, cfg := range []Config{
		{CyclePeriod: 4, PlanAhead: 16, Gap: 0, DisableIncremental: true},
		{CyclePeriod: 4, PlanAhead: 16, Gap: 0, Greedy: true},
	} {
		sched := steadyScheduler(cfg)
		for i := 0; i < 5; i++ {
			sched.Cycle(int64(i)*4, bitset.New(8))
		}
		if sched.Stats.ReuseHits != 0 || sched.Stats.ReuseMisses != 0 {
			t.Errorf("%s (DisableIncremental=%v): reuse counters moved (hits=%d misses=%d); kill switch must make the machinery inert",
				cfg.Name(), cfg.DisableIncremental, sched.Stats.ReuseHits, sched.Stats.ReuseMisses)
		}
		if sched.reuse != nil || sched.dirtyJobs != nil {
			t.Errorf("%s (DisableIncremental=%v): reuse state allocated despite the kill switch", cfg.Name(), cfg.DisableIncremental)
		}
	}
	// The enabled steady run must actually hit, so the inert runs above are a
	// meaningful contrast (kill-switch honesty cuts both ways).
	sched := steadyScheduler(Config{CyclePeriod: 4, PlanAhead: 16, Gap: 0})
	for i := 0; i < 5; i++ {
		sched.Cycle(int64(i)*4, bitset.New(8))
	}
	if sched.Stats.ReuseHits == 0 {
		t.Error("enabled steady-state run recorded no reuse hits; the kill-switch contrast proves nothing")
	}
}

// TestIncrementalStateDrains is the cross-cycle leak audit: after a full
// simulation in which every job completes or is dropped, every per-job map —
// lastJob, running, pending, the reuse cache, and the front-end caches
// (terminal events purge them eagerly; a drained scheduler sees no further
// global cycle to rebuild them) — must be empty, monolithic and sharded
// alike. dirtyJobs is exempt by design: it is a bounded buffer of recent
// event marks consumed at the next global cycle, not a per-job registry.
func TestIncrementalStateDrains(t *testing.T) {
	for _, shards := range []int{0, 2} {
		c := cluster.RC80(true)
		jobs, err := workload.Generate(workload.GSHET(15), c, 11)
		if err != nil {
			t.Fatal(err)
		}
		sched := New(c, Config{PlanAhead: 48, EnablePreemption: true, Shards: shards})
		if _, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched}); err != nil {
			t.Fatal(err)
		}
		if sched.Pending() != 0 || sched.Running() != 0 {
			t.Errorf("shards=%d: scheduler not drained: pending=%d running=%d", shards, sched.Pending(), sched.Running())
		}
		if len(sched.lastJob) != 0 {
			t.Errorf("shards=%d: lastJob retains %d entries after drain: %v", shards, len(sched.lastJob), sched.lastJob)
		}
		for key, ent := range sched.reuse {
			t.Errorf("shards=%d: reuse cache retains entry %x for jobs %v after drain", shards, key, ent.ids)
		}
		if len(sched.exprCache) != 0 {
			t.Errorf("shards=%d: expression cache retains %d entries after drain", shards, len(sched.exprCache))
		}
		if sched.fe.valid {
			t.Errorf("shards=%d: whole-batch compile cache still valid after drain (jobs %v)", shards, sched.fe.reqs)
		}
	}
}
