package core

// Churn-proportional cycle front end (docs/SOLVER.md "Compile cache").
// Incremental reuse (incremental.go) made the *solve* phase proportional to
// churn, which left per-job STRL generation and the global compile —
// partition, Algorithm 1 lowering, supply rows, component extraction — as
// the dominant steady-state cost. Two caches remove it:
//
//   - Expression cache: each pending job's generated request is kept with
//     the expiry bound strlgen.GenerateTTL derives from the job's value
//     function, and reused verbatim — same leaf pointers — until the bound
//     passes or an event dirties the job. Value functions are step
//     functions of time (SLO value is constant until the deadline-driven
//     option cull; a floored best-effort value never moves again), so most
//     requests are reusable for many cycles.
//
//   - Whole-batch compile cache: when this cycle's post-truncation request
//     list is pointer-identical to the one compiled last cycle and the
//     believed release slices are equal, the compiler's inputs are
//     byte-identical (the universe, horizon, and shard routing are all
//     deterministic functions of them), so last cycle's Compiled, component
//     decomposition, and shard assignment are reused verbatim. The reused
//     components keep their memoized fingerprints, feeding the solve-reuse
//     path with zero generate/compile/fingerprint work.
//
// Both caches reuse only provably identical inputs, the same contract the
// solve-reuse cache honors, so cache-on and cache-off runs make
// byte-identical decisions (TestCompileCacheParityProperty); the kill
// switch is Config.DisableCompileCache (-no-compile-cache).

import (
	"tetrisched/internal/compiler"
	"tetrisched/internal/strlgen"
)

// exprEntry is one cached per-job STRL request.
type exprEntry struct {
	req        *strlgen.Request
	validUntil int64 // last cycle time at which req is still byte-identical
}

// feState caches one cycle's entire compile output: the batch it was built
// from (request pointers + believed release slices) and everything the
// global cycle derives from it before solving.
type feState struct {
	valid    bool
	reqs     []*strlgen.Request
	rel      []int64
	comp     *compiler.Compiled
	comps    []*compiler.Component
	assign   []int // shard routing, nil when monolithic
	spanning int   // jobs routed to the gang arbitrator
}

// feEnabled reports whether the front-end caches are active. Greedy mode
// (TetriSched-NG) compiles per job with tentative claims threaded between
// solves — there is no cycle-level batch to cache.
func (s *Scheduler) feEnabled() bool { return !s.cfg.DisableCompileCache && !s.cfg.Greedy }

// purgeFrontEnd drops the job's cached expression and, when the cached batch
// names the job, the whole-batch compile cache. Called from markJobDirty so
// every event that can change a job's request (launch, finish, drop,
// preemption, resubmit) invalidates eagerly; a capacity change without a
// job event is caught by the release-slice comparison in feLookup instead.
func (s *Scheduler) purgeFrontEnd(id int) {
	if s.exprCache == nil {
		return
	}
	delete(s.exprCache, id)
	if !s.fe.valid {
		return
	}
	for _, r := range s.fe.reqs {
		if r.Job.ID == id {
			s.fe = feState{}
			return
		}
	}
}

// feLookup reports whether the cached compile output can stand in for
// compiling this cycle's batch: the request list must be pointer-identical
// element for element (the expression cache makes steady-state requests
// pointer-stable) and the believed release slices equal, which together
// make every compiler input byte-identical.
func (s *Scheduler) feLookup(reqs []*strlgen.Request, rel []int64) bool {
	fe := &s.fe
	if !fe.valid || len(fe.reqs) != len(reqs) || len(fe.rel) != len(rel) {
		return false
	}
	for i, r := range reqs {
		if fe.reqs[i] != r {
			return false
		}
	}
	for i, v := range rel {
		if fe.rel[i] != v {
			return false
		}
	}
	return true
}

// feStore caches this cycle's compile output for the next cycle's lookup.
// The reqs and rel slices are freshly built each cycle and never mutated
// afterwards, so they are retained directly.
func (s *Scheduler) feStore(reqs []*strlgen.Request, rel []int64, comp *compiler.Compiled, comps []*compiler.Component, assign []int, spanning int) {
	s.fe = feState{valid: true, reqs: reqs, rel: rel, comp: comp, comps: comps, assign: assign, spanning: spanning}
}
