package core

import (
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/metrics"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

func threeNodeCluster() *cluster.Cluster {
	return cluster.NewBuilder().AddRack("r0", 3, nil).Build()
}

// TestFig4EndToEnd runs the paper's §5.1 example through the full stack —
// workload → Rayon admission → STRL generation → MILP → simulated execution —
// and requires all three deadlines met, which needs global scheduling *and*
// plan-ahead.
func TestFig4EndToEnd(t *testing.T) {
	c := threeNodeCluster()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 2, BaseRuntime: 10, Slowdown: 1, Deadline: 10},
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 1, BaseRuntime: 20, Slowdown: 1, Deadline: 40},
		{ID: 2, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 3, BaseRuntime: 10, Slowdown: 1, Deadline: 20},
	}
	sched := New(c, Config{CyclePeriod: 10, PlanAhead: 40, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, CyclePeriod: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Stats {
		st := &res.Stats[i]
		if !st.MetSLO() {
			t.Errorf("job %d missed its deadline: start=%d finish=%d deadline=%d dropped=%v",
				i, st.Start, st.Finish, st.Job.Deadline, st.Dropped)
		}
	}
	// The unique feasible schedule: job0@0, job2@10, job1@20.
	if res.Stats[0].Start != 0 || res.Stats[2].Start != 10 || res.Stats[1].Start != 20 {
		t.Errorf("starts = %d,%d,%d; want 0,20,10",
			res.Stats[0].Start, res.Stats[1].Start, res.Stats[2].Start)
	}
}

// TestFig4NoPlanAheadMisses shows TetriSched-NP cannot meet all three
// deadlines in the same scenario.
func TestFig4NoPlanAheadMisses(t *testing.T) {
	c := threeNodeCluster()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 2, BaseRuntime: 10, Slowdown: 1, Deadline: 10},
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 1, BaseRuntime: 20, Slowdown: 1, Deadline: 40},
		{ID: 2, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 3, BaseRuntime: 10, Slowdown: 1, Deadline: 20},
	}
	sched := New(c, Config{CyclePeriod: 10, PlanAhead: 0, Gap: 0})
	if sched.Name() != "TetriSched-NP" {
		t.Fatalf("variant name = %q", sched.Name())
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, CyclePeriod: 10})
	if err != nil {
		t.Fatal(err)
	}
	met := 0
	for i := range res.Stats {
		if res.Stats[i].MetSLO() {
			met++
		}
	}
	if met > 2 {
		t.Errorf("NP met %d SLOs; plan-ahead should be required for all 3", met)
	}
}

// TestGPUJobPrefersGPUNodes checks heterogeneity awareness end to end.
func TestGPUJobPrefersGPUNodes(t *testing.T) {
	c := cluster.RC80(true)
	jobs := []*workload.Job{{
		ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 4,
		BaseRuntime: 40, Slowdown: 2, Deadline: 400,
	}}
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 40})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if !st.Completed {
		t.Fatal("job did not complete")
	}
	// On an idle cluster the GPU branch must win: runtime 40 not 80.
	if st.Finish-st.Start != 40 {
		t.Errorf("ran %ds; GPU placement should take 40s", st.Finish-st.Start)
	}
}

// TestWaitsForPreferredResources: with GPUs busy briefly, an SLO GPU job
// should defer to get preferred nodes rather than taking the slow fallback,
// when the deadline allows (the plan-ahead benefit of §2.3.2).
func TestWaitsForPreferredResources(t *testing.T) {
	c := cluster.RC80(true) // 20 GPU nodes (r0, r1)
	jobs := []*workload.Job{
		// Occupies all 20 GPU nodes for 20s.
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 20, BaseRuntime: 20, Slowdown: 3, Deadline: 100},
		// Arrives while GPUs busy; prefers to wait: waiting finishes at
		// ~20+40=60 < deadline; fallback would take 120s and miss.
		{ID: 1, Class: workload.SLO, Type: workload.GPU, Submit: 4, K: 20, BaseRuntime: 40, Slowdown: 3, Deadline: 100},
	}
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 60, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[1]
	if !st.MetSLO() {
		t.Fatalf("job 1 missed deadline: start=%d finish=%d dropped=%v", st.Start, st.Finish, st.Dropped)
	}
	if st.Finish-st.Start != 40 {
		t.Errorf("job 1 ran %ds; should have waited for GPU nodes (40s)", st.Finish-st.Start)
	}
	if st.Start < 20 {
		t.Errorf("job 1 started at %d while GPUs were still busy", st.Start)
	}
}

// TestFallsBackWhenDeadlineTight: same setup but the deadline is too tight
// to wait; the job must take the non-preferred fallback immediately.
func TestFallsBackWhenDeadlineTight(t *testing.T) {
	c := cluster.RC80(true)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 20, BaseRuntime: 100, Slowdown: 3, Deadline: 500},
		// Waiting for GPUs (free at ~100) would finish at 100+40=140 > 60.
		// Fallback: 40×1.5=60 ≤ 60 if started immediately.
		{ID: 1, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 20, BaseRuntime: 40, Slowdown: 1.5, Deadline: 60},
	}
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 120, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[1]
	if !st.MetSLO() {
		t.Fatalf("job 1 missed: start=%d finish=%d dropped=%v", st.Start, st.Finish, st.Dropped)
	}
	if st.Start != 0 {
		t.Errorf("job 1 started at %d; should fall back immediately", st.Start)
	}
}

// TestDropsHopelessSLOJobs: an SLO job whose deadline cannot be met is
// culled rather than wasting resources (§7.1).
func TestDropsHopelessSLOJobs(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{{
		ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 2,
		BaseRuntime: 100, Slowdown: 1, Deadline: 50, // impossible
	}}
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 40})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[0].Dropped {
		t.Errorf("hopeless SLO job was not dropped")
	}
}

// TestMPIJobRackLocal checks combinatorial constraint handling end to end.
func TestMPIJobRackLocal(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{{
		ID: 0, Class: workload.SLO, Type: workload.MPI, Submit: 0, K: 8,
		BaseRuntime: 40, Slowdown: 2, Deadline: 400,
	}}
	sched := New(c, Config{CyclePeriod: 4, PlanAhead: 40})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if !st.Completed || st.Finish-st.Start != 40 {
		t.Errorf("MPI job ran %ds; rack-local placement should take 40s", st.Finish-st.Start)
	}
}

// TestSmokeGSHET runs a small heterogeneous mix through all four variants
// and the driver's invariant checks.
func TestSmokeGSHET(t *testing.T) {
	c := cluster.RC80(true)
	mix := workload.GSHET(40)
	jobs, err := workload.Generate(mix, c, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{PlanAhead: 96},
		{PlanAhead: 96, Greedy: true},
		{PlanAhead: 96, NoHet: true},
		{PlanAhead: 0},
	} {
		cfg := cfg
		t.Run(Config(cfg).Name(), func(t *testing.T) {
			js := cloneJobs(jobs)
			sched := New(c, cfg)
			res, err := sim.Run(sim.Config{Cluster: c, Jobs: js, Scheduler: sched})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stalled {
				t.Fatal("stalled")
			}
			sum := metrics.Summarize(sched.Name(), res, c.N())
			if sum.Incomplete > 0 {
				t.Errorf("%d jobs incomplete", sum.Incomplete)
			}
			t.Log(sum.String())
		})
	}
}

// TestDeterministicRuns: identical seeds and configs give identical results.
func TestDeterministicRuns(t *testing.T) {
	c := cluster.RC80(true)
	mix := workload.GSHET(25)
	run := func() []sim.JobStat {
		jobs, err := workload.Generate(mix, c, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, Config{PlanAhead: 48})})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Finish != b[i].Finish || a[i].Dropped != b[i].Dropped {
			t.Fatalf("job %d diverged between identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func cloneJobs(jobs []*workload.Job) []*workload.Job {
	out := make([]*workload.Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		cp.Reserved = false
		out[i] = &cp
	}
	return out
}

func TestVariantNames(t *testing.T) {
	cases := map[string]Config{
		"TetriSched":    {PlanAhead: 96},
		"TetriSched-NG": {PlanAhead: 96, Greedy: true},
		"TetriSched-NH": {PlanAhead: 96, NoHet: true},
		"TetriSched-NP": {PlanAhead: 0},
	}
	for want, cfg := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

// TestQuickRandomWorkloadsInvariants drives random small workloads through
// every variant; the driver's invariant checks (no double-booking, gang
// atomicity, no ghost launches) act as the property under test.
func TestQuickRandomWorkloadsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("many simulations")
	}
	c := cluster.RC80(true)
	for seed := int64(0); seed < 6; seed++ {
		mix := workload.GSHET(15)
		mix.EstErr = float64(seed%5-2) / 4 // −0.5 … +0.5
		jobs, err := workload.Generate(mix, c, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{{PlanAhead: 48}, {PlanAhead: 48, Greedy: true}, {PlanAhead: 0}} {
			js := cloneJobs(jobs)
			res, err := sim.Run(sim.Config{Cluster: c, Jobs: js, Scheduler: New(c, cfg)})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfg.Name(), err)
			}
			if res.Stalled {
				t.Fatalf("seed %d %s: stalled", seed, cfg.Name())
			}
			// Accounting: every job either completed or (SLO only) dropped.
			for i := range res.Stats {
				st := &res.Stats[i]
				if !st.Completed && !st.Dropped {
					t.Fatalf("seed %d %s: job %d unaccounted", seed, cfg.Name(), i)
				}
				if st.Dropped && st.Job.Class != workload.BestEffort && st.Job.Deadline == 0 {
					t.Fatalf("seed %d %s: dropped job %d has no deadline", seed, cfg.Name(), i)
				}
			}
		}
	}
}

// TestBestEffortEventuallyRuns: BE jobs have a value floor and must never be
// starved forever, even behind a wall of SLO work.
func TestBestEffortEventuallyRuns(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 100, Slowdown: 1, Deadline: 150},
		{ID: 1, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 40, BaseRuntime: 20, Slowdown: 1},
	}
	sched := New(c, Config{PlanAhead: 96})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[1].Completed {
		t.Fatalf("best-effort job starved: %+v", res.Stats[1])
	}
}

// TestUnderEstimateAdjustment: a job that overruns its estimate keeps its
// nodes (no preemption) and the scheduler plans around the overrun.
func TestUnderEstimateAdjustment(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{
		// Believed 50s, truly 100s, occupying the whole cluster.
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 100, Slowdown: 1, Deadline: 400, EstErr: -0.5},
		// Needs the whole cluster after job 0; deadline allows the true
		// completion but not much slack.
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 10, K: 80, BaseRuntime: 50, Slowdown: 1, Deadline: 300},
	}
	sched := New(c, Config{PlanAhead: 96})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[0].Completed || res.Stats[0].Finish != 100 {
		t.Fatalf("job 0 should run to true completion at 100: %+v", res.Stats[0])
	}
	if res.Stats[0].Preemptions != 0 {
		t.Errorf("TetriSched must not preempt")
	}
	if !res.Stats[1].MetSLO() {
		t.Errorf("job 1 missed despite replanning: %+v", res.Stats[1])
	}
}

// TestPreemptionRescuesLastChanceSLO exercises the optional preemption
// extension: an accepted SLO job at its last feasible start evicts
// best-effort work; without the extension it misses its deadline.
func TestPreemptionRescuesLastChanceSLO(t *testing.T) {
	mk := func(enable bool) (*sim.Result, error) {
		c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
		jobs := []*workload.Job{
			// BE job holds the whole cluster for a long time.
			{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 1000, Slowdown: 1},
			// SLO job whose deadline is only reachable by starting at t=8.
			{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 8, K: 4, BaseRuntime: 40, Slowdown: 1, Deadline: 50},
		}
		sched := New(c, Config{PlanAhead: 40, EnablePreemption: enable})
		return sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	}
	res, err := mk(true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[1].MetSLO() {
		t.Errorf("SLO job missed despite preemption: %+v", res.Stats[1])
	}
	if res.Stats[0].Preemptions != 1 {
		t.Errorf("BE preemptions = %d, want 1", res.Stats[0].Preemptions)
	}
	if !res.Stats[0].Completed {
		t.Errorf("preempted BE job never restarted")
	}

	baseline, err := mk(false)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats[1].MetSLO() {
		t.Errorf("without preemption the SLO job should miss")
	}
	if baseline.Stats[0].Preemptions != 0 {
		t.Errorf("preemption occurred while disabled")
	}
}

// TestPreemptionNeverKillsSLOJobs: only best-effort work is evictable.
func TestPreemptionNeverKillsSLOJobs(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	jobs := []*workload.Job{
		// An SLO job holds the cluster.
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 200, Slowdown: 1, Deadline: 400},
		// A second SLO job that cannot be saved without killing the first.
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 8, K: 4, BaseRuntime: 40, Slowdown: 1, Deadline: 50},
	}
	sched := New(c, Config{PlanAhead: 40, EnablePreemption: true})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Preemptions != 0 {
		t.Errorf("SLO job was preempted")
	}
	if !res.Stats[0].MetSLO() {
		t.Errorf("running SLO job should finish on time: %+v", res.Stats[0])
	}
	if !res.Stats[1].Dropped {
		t.Errorf("unsaveable job should be dropped: %+v", res.Stats[1])
	}
}

// TestElasticJobShrinksUnderContention: a malleable job takes a narrower
// allocation (and runs longer) when the cluster is tight, and its full width
// when idle — the §4.1 space-time elasticity expressed with MAX over widths.
func TestElasticJobShrinksUnderContention(t *testing.T) {
	mk := func(busy bool) (*sim.Result, error) {
		c := cluster.NewBuilder().AddRack("r0", 8, nil).Build()
		jobs := []*workload.Job{}
		if busy {
			// A long SLO job pins 6 of 8 nodes.
			jobs = append(jobs, &workload.Job{
				ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 6,
				BaseRuntime: 500, Slowdown: 1, Deadline: 2000,
			})
		}
		elastic := &workload.Job{
			ID: len(jobs), Class: workload.BestEffort, Type: workload.Elastic, Submit: 4,
			K: 8, MinK: 2, BaseRuntime: 40, Slowdown: 1,
		}
		jobs = append(jobs, elastic)
		sched := New(c, Config{PlanAhead: 40, BEDecay: 200})
		return sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	}

	idle, err := mk(false)
	if err != nil {
		t.Fatal(err)
	}
	st := idle.Stats[0]
	if len(st.Nodes) != 8 || st.Finish-st.Start != 40 {
		t.Errorf("idle cluster: width=%d runtime=%d, want 8 nodes / 40s", len(st.Nodes), st.Finish-st.Start)
	}

	tight, err := mk(true)
	if err != nil {
		t.Fatal(err)
	}
	st = tight.Stats[1]
	if !st.Completed {
		t.Fatalf("elastic job never ran: %+v", st)
	}
	if len(st.Nodes) != 2 {
		t.Errorf("tight cluster: width=%d, want the 2-node shrink", len(st.Nodes))
	}
	if st.Finish-st.Start != 160 { // 40s × 8/2
		t.Errorf("tight cluster: runtime=%d, want 160 (work-conserving scale)", st.Finish-st.Start)
	}
	if st.Start > 40 {
		t.Errorf("elastic job waited until t=%d instead of shrinking immediately", st.Start)
	}
}

// TestAdaptsToNodeFailures: TetriSched replans around injected node
// failures — killed jobs restart elsewhere and deadlines still hold when
// capacity allows.
func TestAdaptsToNodeFailures(t *testing.T) {
	c := cluster.RC80(true)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 8,
			BaseRuntime: 60, Slowdown: 2, Deadline: 600},
		{ID: 1, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4,
			BaseRuntime: 40, Slowdown: 1},
	}
	sched := New(c, Config{PlanAhead: 96})
	// Fail two GPU nodes mid-run; whatever is running there restarts.
	res, err := sim.Run(sim.Config{
		Cluster: c, Jobs: jobs, Scheduler: sched,
		Failures: []sim.NodeFailure{{Node: 0, At: 20, RecoverAt: 200}, {Node: 1, At: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Stats {
		st := &res.Stats[i]
		if !st.Completed {
			t.Errorf("job %d never completed after failures: %+v", i, st)
		}
	}
	if res.Stats[0].Job.Class == workload.SLO && !res.Stats[0].MetSLO() {
		t.Errorf("SLO job missed despite ample slack: %+v", res.Stats[0])
	}
}

// TestDataLocalPlacement: dynamic heterogeneity (§2.2) — a job's preferred
// nodes are wherever its input replicas live, and TetriSched places it there
// when they are free.
func TestDataLocalPlacement(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{{
		ID: 0, Class: workload.SLO, Type: workload.DataLocal, Submit: 0, K: 3,
		BaseRuntime: 40, Slowdown: 2, Deadline: 400,
		DataNodes: []int{17, 42, 63, 71},
	}}
	sched := New(c, Config{PlanAhead: 40})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if !st.Completed || st.Finish-st.Start != 40 {
		t.Fatalf("data-local job ran %ds, want 40 (local)", st.Finish-st.Start)
	}
	replicas := map[int]bool{17: true, 42: true, 63: true, 71: true}
	for _, n := range st.Nodes {
		if !replicas[n] {
			t.Errorf("node %d is not a replica holder", n)
		}
	}
}

// TestDataLocalFallsBackWhenReplicasBusy: replicas pinned by another job →
// the data-local job runs remotely at its slowdown rather than waiting past
// a tight deadline.
func TestDataLocalFallsBackWhenReplicasBusy(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{
		// Occupies all four replica holders for a long time.
		{ID: 0, Class: workload.SLO, Type: workload.DataLocal, Submit: 0, K: 4,
			BaseRuntime: 500, Slowdown: 2, Deadline: 2000, DataNodes: []int{17, 42, 63, 71}},
		// Same replicas, tight deadline: must fall back to remote reads.
		{ID: 1, Class: workload.SLO, Type: workload.DataLocal, Submit: 4, K: 3,
			BaseRuntime: 40, Slowdown: 2, Deadline: 120, DataNodes: []int{17, 42, 63, 71}},
	}
	sched := New(c, Config{PlanAhead: 96, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[1]
	if !st.MetSLO() {
		t.Fatalf("job 1 missed: %+v", st)
	}
	if st.Finish-st.Start != 80 {
		t.Errorf("job 1 ran %ds, want 80 (remote, slowed)", st.Finish-st.Start)
	}
}

// TestWarmStartEquivalentOutcomes: disabling warm starts must not change
// which jobs complete (it is purely a solver accelerator), on a scenario
// small enough for exact solves either way.
func TestWarmStartEquivalentOutcomes(t *testing.T) {
	c := cluster.RC80(true)
	mix := workload.GSHET(20)
	run := func(disable bool) *sim.Result {
		jobs, err := workload.Generate(mix, c, 31)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs,
			Scheduler: New(c, Config{PlanAhead: 48, Gap: 0, DisableWarmStart: disable})})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(false), run(true)
	for i := range a.Stats {
		if a.Stats[i].Completed != b.Stats[i].Completed {
			t.Errorf("job %d completion differs with warm start disabled", i)
		}
	}
}

// TestSolverTelemetryAccumulates: the scheduler's solver counters feed the
// scalability analysis and must move.
func TestSolverTelemetryAccumulates(t *testing.T) {
	c := cluster.RC80(true)
	jobs, err := workload.Generate(workload.GSHET(10), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	sched := New(c, Config{PlanAhead: 48})
	if _, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched}); err != nil {
		t.Fatal(err)
	}
	if sched.Stats.Solves == 0 {
		t.Errorf("no solves recorded")
	}
	if sched.Stats.Nodes == 0 || sched.Stats.MaxNodes == 0 {
		t.Errorf("no branch-and-bound nodes recorded: %+v", sched.Stats)
	}
	if sched.Stats.Workers != 1 {
		t.Errorf("Workers = %d, want the serial default 1", sched.Stats.Workers)
	}
	if sched.Stats.Runtime <= 0 {
		t.Errorf("no solver runtime recorded")
	}
	if sched.Pending() != 0 || sched.Running() != 0 {
		t.Errorf("scheduler state not drained: pending=%d running=%d", sched.Pending(), sched.Running())
	}
}

// TestPriorityBreaksContention: of two identical BE jobs competing for the
// same nodes, the higher-priority one (§3.2 value scaling) runs first.
func TestPriorityBreaksContention(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 4, nil).Build()
	jobs := []*workload.Job{
		{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 40, Slowdown: 1, Priority: 1},
		{ID: 1, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 4, BaseRuntime: 40, Slowdown: 1, Priority: 10},
	}
	sched := New(c, Config{PlanAhead: 96, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Stats[1].Start < res.Stats[0].Start) {
		t.Errorf("high-priority job started at %d, low at %d; want high first",
			res.Stats[1].Start, res.Stats[0].Start)
	}
	if !res.Stats[0].Completed || !res.Stats[1].Completed {
		t.Errorf("both jobs must complete")
	}
}

// TestCoarsePlanQuantum: a coarser planning quantum must still schedule
// correctly (deferral included), with a smaller MILP.
func TestCoarsePlanQuantum(t *testing.T) {
	c := cluster.RC80(true)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 20, BaseRuntime: 20, Slowdown: 3, Deadline: 100},
		{ID: 1, Class: workload.SLO, Type: workload.GPU, Submit: 4, K: 20, BaseRuntime: 40, Slowdown: 3, Deadline: 120},
	}
	sched := New(c, Config{CyclePeriod: 4, PlanQuantum: 12, PlanAhead: 96, Gap: 0})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Stats {
		if !res.Stats[i].MetSLO() {
			t.Errorf("job %d missed with coarse quantum: %+v", i, res.Stats[i])
		}
	}
	// Job 1 still waits for the GPUs rather than taking the 120s fallback.
	if got := res.Stats[1].Finish - res.Stats[1].Start; got != 40 {
		t.Errorf("job 1 ran %ds, want 40 (GPU placement)", got)
	}
}

// warmStartScenario is a deferral-heavy workload: job 1 waits several cycles
// for the GPU nodes, so consecutive global solves re-propose its shifted
// plan as a warm-start seed. PlanAhead stays within MaxStartChoices slices so
// options are generated at every slice (stride 1) — a strided option grid has
// no slice-minus-one option for the seed to land on.
func warmStartScenario(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	c := cluster.RC80(true)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.GPU, Submit: 0, K: 20, BaseRuntime: 20, Slowdown: 3, Deadline: 100},
		{ID: 1, Class: workload.SLO, Type: workload.GPU, Submit: 4, K: 20, BaseRuntime: 40, Slowdown: 3, Deadline: 120},
	}
	sched := New(c, cfg)
	if _, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched}); err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestWarmStartSeedsCounted: with the default quantum the deferral scenario
// must produce warm-started solves, visible in SolveStats.
func TestWarmStartSeedsCounted(t *testing.T) {
	sched := warmStartScenario(t, Config{CyclePeriod: 4, PlanAhead: 48, Gap: 0})
	if sched.Stats.WarmStarts == 0 {
		t.Fatalf("no warm-started solves recorded across a deferral-heavy run: %+v", sched.Stats)
	}
}

// TestWarmStartDisabledByCoarseQuantum: seeding shifts last cycle's plan by
// exactly one slice, which is only meaningful when PlanQuantum equals
// CyclePeriod; a coarser quantum must disable it entirely.
func TestWarmStartDisabledByCoarseQuantum(t *testing.T) {
	sched := warmStartScenario(t, Config{CyclePeriod: 4, PlanQuantum: 12, PlanAhead: 96, Gap: 0})
	if sched.Stats.WarmStarts != 0 {
		t.Fatalf("PlanQuantum (12) != CyclePeriod (4) must disable seeding, got %d warm starts", sched.Stats.WarmStarts)
	}
}

// TestWarmStartDisabledBySwitch: the explicit DisableWarmStart ablation also
// zeroes the counter.
func TestWarmStartDisabledBySwitch(t *testing.T) {
	sched := warmStartScenario(t, Config{CyclePeriod: 4, PlanAhead: 48, Gap: 0, DisableWarmStart: true})
	if sched.Stats.WarmStarts != 0 {
		t.Fatalf("DisableWarmStart must disable seeding, got %d warm starts", sched.Stats.WarmStarts)
	}
}

// TestPendingOrderFollowsAdmitSeq: jobs tying on (priority, Submit) order by
// the front door's weighted-fair admission sequence when one was stamped, and
// fall back to job-ID order when none was (simulator jobs). Without the
// AdmitSeq tie-break, a tenant allocating low job IDs would reclaim the queue
// positions the fair dequeue took away from it.
func TestPendingOrderFollowsAdmitSeq(t *testing.T) {
	s := New(threeNodeCluster(), Config{PlanAhead: 16})
	mk := func(id int, seq int64) *workload.Job {
		return &workload.Job{ID: id, Class: workload.BestEffort, K: 1,
			BaseRuntime: 10, Slowdown: 1, Submit: 5, AdmitSeq: seq}
	}
	// Tenant A holds IDs 1-3, tenant B IDs 100-102; fair admission
	// interleaved them B-first.
	for _, j := range []*workload.Job{mk(1, 2), mk(2, 4), mk(3, 6), mk(100, 1), mk(101, 3), mk(102, 5)} {
		s.Submit(5, j)
	}
	got := make([]int, 0, 6)
	for _, j := range s.orderedPending() {
		got = append(got, j.ID)
	}
	want := []int{100, 1, 101, 2, 102, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("admit-seq ordering broken: got %v, want %v", got, want)
		}
	}

	// Zero AdmitSeq everywhere (simulator path): ID order, unchanged policy.
	s2 := New(threeNodeCluster(), Config{PlanAhead: 16})
	for _, id := range []int{3, 1, 2} {
		s2.Submit(5, mk(id, 0))
	}
	ord := s2.orderedPending()
	if ord[0].ID != 1 || ord[1].ID != 2 || ord[2].ID != 3 {
		t.Fatalf("zero-seq jobs must keep ID order, got %v %v %v", ord[0].ID, ord[1].ID, ord[2].ID)
	}
}
