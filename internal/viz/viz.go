// Package viz renders space-time schedules as text, in the style of the
// paper's Fig 1 grids: machines along the rows, time along the columns, one
// letter per job. It is wired into cmd/tetrisim (-gantt) and useful in tests
// and examples for eyeballing scheduler decisions.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
)

// glyphs label jobs in the grid, cycling for large job counts.
const glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"

// Options controls rendering.
type Options struct {
	// From/To bound the rendered time range; To=0 means the makespan.
	From, To int64
	// Step is seconds per column (default: chosen so the grid is ≤ MaxCols).
	Step int64
	// MaxCols caps the grid width (default 100).
	MaxCols int
	// MaxRows caps the number of node rows rendered (default: all).
	MaxRows int
}

// Render writes the schedule grid for a completed simulation.
func Render(w io.Writer, c *cluster.Cluster, res *sim.Result, opts Options) {
	from := opts.From
	to := opts.To
	if to <= from {
		to = res.Makespan
	}
	if to <= from {
		to = from + 1
	}
	maxCols := opts.MaxCols
	if maxCols <= 0 {
		maxCols = 100
	}
	step := opts.Step
	if step <= 0 {
		step = (to - from + int64(maxCols) - 1) / int64(maxCols)
		if step < 1 {
			step = 1
		}
	}
	cols := int((to - from + step - 1) / step)
	if cols < 1 {
		cols = 1
	}
	rows := c.N()
	if opts.MaxRows > 0 && rows > opts.MaxRows {
		rows = opts.MaxRows
	}

	// grid[node][col] = job glyph or '.'.
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", cols))
	}
	for i := range res.Stats {
		st := &res.Stats[i]
		if !st.Started && !st.Completed {
			continue
		}
		end := st.Finish
		if end == 0 || end < st.Start {
			end = to
		}
		g := glyphs[st.Job.ID%len(glyphs)]
		for _, n := range st.Nodes {
			if n >= rows {
				continue
			}
			for col := 0; col < cols; col++ {
				t0 := from + int64(col)*step
				t1 := t0 + step
				// Mark the cell if the job occupies any part of the column.
				if st.Start < t1 && end > t0 {
					grid[n][col] = g
				}
			}
		}
	}

	// Header: time axis.
	fmt.Fprintf(w, "%-10s t=%d … %d (each column = %ds)\n", "", from, to, step)
	prevRack := ""
	for n := 0; n < rows; n++ {
		node := c.Node(cluster.NodeID(n))
		label := node.Name
		if node.Rack != prevRack {
			prevRack = node.Rack
		}
		fmt.Fprintf(w, "%-10s %s\n", truncate(label, 10), grid[n])
	}

	// Legend: job → glyph, sorted by job ID.
	type entry struct {
		id    int
		label string
	}
	var legend []entry
	for i := range res.Stats {
		st := &res.Stats[i]
		if !st.Started && !st.Completed {
			continue
		}
		legend = append(legend, entry{
			id: st.Job.ID,
			label: fmt.Sprintf("%c=job%d(%s/%s,k=%d)",
				glyphs[st.Job.ID%len(glyphs)], st.Job.ID, st.Job.Class, st.Job.Type, st.Job.K),
		})
	}
	sort.Slice(legend, func(a, b int) bool { return legend[a].id < legend[b].id })
	if len(legend) > 0 {
		fmt.Fprint(w, "legend: ")
		for i, e := range legend {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			if i > 0 && i%4 == 0 {
				fmt.Fprint(w, "\n        ")
			}
			fmt.Fprint(w, e.label)
		}
		fmt.Fprintln(w)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
