package viz

import (
	"bytes"
	"strings"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

func sampleResult() (*cluster.Cluster, *sim.Result) {
	c := cluster.NewBuilder().AddRack("r0", 2, nil).AddRack("r1", 2, nil).Build()
	res := &sim.Result{Makespan: 40}
	res.Stats = []sim.JobStat{
		{
			Job:       &workload.Job{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, K: 2},
			Submitted: true, Started: true, Completed: true,
			Start: 0, Finish: 20, Nodes: []int{0, 1},
		},
		{
			Job:       &workload.Job{ID: 1, Class: workload.BestEffort, Type: workload.MPI, K: 2},
			Submitted: true, Started: true, Completed: true,
			Start: 20, Finish: 40, Nodes: []int{2, 3},
		},
		{
			Job:       &workload.Job{ID: 2, Class: workload.SLO, Type: workload.GPU, K: 1},
			Submitted: true, // never started (e.g. dropped)
		},
	}
	return c, res
}

func TestRenderGrid(t *testing.T) {
	c, res := sampleResult()
	var buf bytes.Buffer
	Render(&buf, c, res, Options{Step: 10})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("short output:\n%s", out)
	}
	// Node rows: job A on nodes 0-1 for the first two columns, job B on
	// nodes 2-3 for the last two.
	rowFor := func(name string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, name) {
				return l
			}
		}
		t.Fatalf("no row for %s in:\n%s", name, out)
		return ""
	}
	if r := rowFor("r0/n0"); !strings.Contains(r, "AA..") {
		t.Errorf("row r0/n0 = %q, want AA..", r)
	}
	if r := rowFor("r1/n1"); !strings.Contains(r, "..BB") {
		t.Errorf("row r1/n1 = %q, want ..BB", r)
	}
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "A=job0") {
		t.Errorf("legend missing:\n%s", out)
	}
	// The never-started job must not appear in the legend.
	if strings.Contains(out, "job2") {
		t.Errorf("unstarted job rendered:\n%s", out)
	}
}

func TestRenderAutoStepAndCaps(t *testing.T) {
	c, res := sampleResult()
	var buf bytes.Buffer
	Render(&buf, c, res, Options{MaxCols: 8, MaxRows: 2})
	out := buf.String()
	if strings.Contains(out, "r1/n0") {
		t.Errorf("MaxRows not honored:\n%s", out)
	}
	var buf2 bytes.Buffer
	Render(&buf2, c, res, Options{From: 20, To: 40, Step: 10})
	if strings.Contains(strings.Split(buf2.String(), "\n")[1], "A") {
		t.Errorf("time window not honored:\n%s", buf2.String())
	}
}

func TestRenderEmptyResult(t *testing.T) {
	c := cluster.RC80(false)
	var buf bytes.Buffer
	Render(&buf, c, &sim.Result{}, Options{MaxRows: 4})
	if !strings.Contains(buf.String(), "t=0") {
		t.Errorf("empty render malformed:\n%s", buf.String())
	}
}
