// Package trace is the scheduler's structured tracing substrate: a
// low-overhead, allocation-conscious event recorder that makes one
// scheduling run inspectable from the inside — where each cycle spent its
// time (STRL generation, MILP compile, solve, extraction), what the solver
// saw (model dimensions, nodes explored, warm-hit rates), and what was
// decided (placements with chosen start slices, deferrals, preemptions,
// admission verdicts, failure kills).
//
// The design goals, in order:
//
//  1. Disabled tracing must cost one branch. Every method is safe on a nil
//     *Tracer and returns immediately, so call sites need no guards and the
//     scheduler's hot path is unchanged when no tracer is configured.
//  2. Bounded memory. Events land in a fixed-size ring buffer (oldest
//     overwritten); long daemon runs never grow. An optional Sink streams
//     every event out as it is recorded (Chrome trace JSON or JSONL), so
//     full-fidelity traces go to disk without accumulating in memory.
//  3. No per-event maps or interface boxing. Event payloads are a fixed
//     inline array of typed Args (int/float/string/bool), filled by value.
//
// Two exporters ship with the package: Chrome trace-event JSON
// (ChromeSink/WriteChrome — loadable in Perfetto or chrome://tracing, with
// one named track per event category) and a streaming JSONL log
// (JSONLSink — one self-contained JSON object per line). See
// docs/OBSERVABILITY.md for the wire formats and a Perfetto how-to.
package trace

import (
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindSpan is a completed duration: [TS, TS+Dur).
	KindSpan Kind = iota
	// KindInstant is a point event.
	KindInstant
	// KindCounter is a sampled numeric series (args hold the values).
	KindCounter
)

// String returns the JSONL wire name of the kind.
func (k Kind) String() string {
	switch k {
	case KindSpan:
		return "span"
	case KindInstant:
		return "instant"
	case KindCounter:
		return "counter"
	}
	return "unknown"
}

type argKind uint8

const (
	argInt argKind = iota
	argFloat
	argStr
	argBool
)

// Arg is one typed key/value payload entry. Construct with I, F, S, or B;
// the zero Arg is ignored by exporters only if never counted, so always use
// the constructors.
type Arg struct {
	Key  string
	s    string
	i    int64
	f    float64
	kind argKind
}

// I makes an integer arg.
func I(key string, v int64) Arg { return Arg{Key: key, i: v, kind: argInt} }

// F makes a float arg.
func F(key string, v float64) Arg { return Arg{Key: key, f: v, kind: argFloat} }

// S makes a string arg.
func S(key, v string) Arg { return Arg{Key: key, s: v, kind: argStr} }

// B makes a boolean arg.
func B(key string, v bool) Arg {
	a := Arg{Key: key, kind: argBool}
	if v {
		a.i = 1
	}
	return a
}

// Int returns the integer payload (0 for non-integer args). Bool args read
// as 0/1.
func (a Arg) Int() int64 {
	if a.kind == argInt || a.kind == argBool {
		return a.i
	}
	return 0
}

// Float returns the float payload (0 for non-float args).
func (a Arg) Float() float64 {
	if a.kind == argFloat {
		return a.f
	}
	return 0
}

// Str returns the string payload ("" for non-string args).
func (a Arg) Str() string {
	if a.kind == argStr {
		return a.s
	}
	return ""
}

// MaxArgs is the per-event payload capacity; extra args are dropped.
const MaxArgs = 8

// Event is one recorded trace event. Events are plain values: the ring
// stores them inline and Snapshot copies them out, so holding a snapshot
// never pins tracer internals.
type Event struct {
	Seq  uint64 // global record order
	TS   int64  // nanoseconds since the tracer epoch (monotonic)
	Dur  int64  // span duration in nanoseconds (0 for instants/counters)
	VT   int64  // virtual (simulated) time in seconds; -1 when unknown
	Kind Kind
	Cat  string // category; becomes the track name in Chrome exports
	Name string
	Args [MaxArgs]Arg
	NArg int
}

// Sink receives every recorded event, synchronously, in record order, under
// the tracer's lock — implementations must be fast, must not retain e past
// the call, and must not call back into the Tracer. Close flushes and
// finalizes the output.
type Sink interface {
	Emit(e *Event) error
	Close() error
}

// Tracer records events into a ring buffer and, optionally, a streaming
// sink. All methods are safe on a nil receiver (no-ops), safe for
// concurrent use, and allocation-free on the record path.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	seq     uint64
	ring    []Event
	next    int // ring slot for the next event
	n       int // valid events in the ring (≤ len(ring))
	vt      int64
	sink    Sink
	sinkErr error // first sink failure; recording continues ring-only
}

// New returns a tracer whose ring holds ringSize events (≤ 0 picks 4096).
func New(ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 4096
	}
	return &Tracer{epoch: time.Now(), ring: make([]Event, ringSize), vt: -1}
}

// SetSink attaches a streaming sink and returns the tracer for chaining.
// Pass nil to detach (the previous sink is not closed).
func (t *Tracer) SetSink(s Sink) *Tracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
	return t
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// SetVirtualTime stamps subsequent events with the simulation clock.
func (t *Tracer) SetVirtualTime(vt int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.vt = vt
	t.mu.Unlock()
}

func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

func (t *Tracer) record(kind Kind, cat, name string, ts, dur int64, args []Arg) {
	t.mu.Lock()
	e := &t.ring[t.next]
	*e = Event{Seq: t.seq, TS: ts, Dur: dur, VT: t.vt, Kind: kind, Cat: cat, Name: name}
	e.NArg = copy(e.Args[:], args)
	t.seq++
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	if t.n < len(t.ring) {
		t.n++
	}
	if t.sink != nil && t.sinkErr == nil {
		t.sinkErr = t.sink.Emit(e)
	}
	t.mu.Unlock()
}

// Span is an in-flight duration handle returned by Begin. The zero Span
// (from a nil tracer) is inert.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	start int64
}

// Begin opens a span; close it with End. Spans on the same category nest by
// timestamp containment in Chrome exports.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, start: t.now()}
}

// End records the span with its payload.
func (s Span) End(args ...Arg) {
	if s.t == nil {
		return
	}
	end := s.t.now()
	s.t.record(KindSpan, s.cat, s.name, s.start, end-s.start, args)
}

// Complete records a span whose duration was measured externally (e.g. a
// sub-phase timed inside a library call); the span is taken to end now and
// start d earlier, clamped to the tracer epoch.
func (t *Tracer) Complete(cat, name string, d time.Duration, args ...Arg) {
	if t == nil {
		return
	}
	end := t.now()
	start := end - int64(d)
	if start < 0 {
		start = 0
	}
	t.record(KindSpan, cat, name, start, end-start, args)
}

// Instant records a point event.
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(KindInstant, cat, name, t.now(), 0, args)
}

// Counter records a sample of one or more numeric series.
func (t *Tracer) Counter(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.record(KindCounter, cat, name, t.now(), 0, args)
}

// Snapshot copies the ring's contents in record order (oldest first). The
// result is independent of further recording.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		j := start + i
		if j >= len(t.ring) {
			j -= len(t.ring)
		}
		out[i] = t.ring[j]
	}
	return out
}

// Err returns the first sink failure, if any. The ring keeps recording
// after a sink error; only streaming stops.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// Close finalizes and detaches the sink (flushing exporters' trailers) and
// returns the first error seen on the streaming path. A sinkless or nil
// tracer closes cleanly.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sink != nil {
		err := t.sink.Close()
		if t.sinkErr == nil {
			t.sinkErr = err
		}
		t.sink = nil
	}
	return t.sinkErr
}
