package trace

import (
	"math"
	"strconv"
)

// Append-based JSON encoding shared by the exporters. Hand-rolled rather
// than encoding/json so the streaming sinks stay allocation-free per event
// (one reusable buffer, no intermediate maps or reflection).

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted, escaped JSON string.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(b, '"')
}

// appendValue appends the arg's value as a JSON literal.
func (a Arg) appendValue(b []byte) []byte {
	switch a.kind {
	case argInt:
		return strconv.AppendInt(b, a.i, 10)
	case argFloat:
		if math.IsNaN(a.f) || math.IsInf(a.f, 0) {
			return appendJSONString(b, strconv.FormatFloat(a.f, 'g', -1, 64))
		}
		return strconv.AppendFloat(b, a.f, 'g', -1, 64)
	case argBool:
		if a.i != 0 {
			return append(b, "true"...)
		}
		return append(b, "false"...)
	default:
		return appendJSONString(b, a.s)
	}
}

// appendArgs appends the event payload as a JSON object, including the
// virtual-time stamp when one is set.
func appendArgs(b []byte, e *Event) []byte {
	b = append(b, '{')
	for i := 0; i < e.NArg; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, e.Args[i].Key)
		b = append(b, ':')
		b = e.Args[i].appendValue(b)
	}
	if e.VT >= 0 {
		if e.NArg > 0 {
			b = append(b, ',')
		}
		b = append(b, `"vt":`...)
		b = strconv.AppendInt(b, e.VT, 10)
	}
	return append(b, '}')
}

// appendMicros appends a nanosecond quantity as fractional microseconds
// (the unit of Chrome trace timestamps).
func appendMicros(b []byte, ns int64) []byte {
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	if frac != 0 {
		b = append(b, '.')
		b = append(b, '0'+byte(frac/100), '0'+byte(frac/10%10), '0'+byte(frac%10))
	}
	return b
}
