package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// ChromeSink streams events as Chrome trace-event JSON (the format read by
// Perfetto and chrome://tracing): a `{"traceEvents":[...]}` object whose
// array grows one element per event, so memory stays bounded no matter how
// long the run. Spans become "X" (complete) events, instants "i", counters
// "C". Each event category gets its own named track (tid) so the per-phase
// timelines — cycle, strl, compile, solve, place, … — render as separate
// swimlanes. Close writes the track-name metadata and the closing
// brackets; a trace is well-formed JSON only after Close.
type ChromeSink struct {
	bw     *bufio.Writer
	buf    []byte
	tracks map[string]int
	order  []string // categories by first appearance, index+1 = tid
	wrote  bool
	closed bool
}

// NewChromeSink starts a Chrome trace-event stream on w. The caller owns w
// and closes it after Close.
func NewChromeSink(w io.Writer) *ChromeSink {
	s := &ChromeSink{
		bw:     bufio.NewWriterSize(w, 1<<16),
		buf:    make([]byte, 0, 512),
		tracks: make(map[string]int),
	}
	s.bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	return s
}

func (s *ChromeSink) tid(cat string) int {
	if id, ok := s.tracks[cat]; ok {
		return id
	}
	id := len(s.order) + 1
	s.tracks[cat] = id
	s.order = append(s.order, cat)
	return id
}

// Emit implements Sink.
func (s *ChromeSink) Emit(e *Event) error {
	b := s.buf[:0]
	if s.wrote {
		b = append(b, ',')
	}
	s.wrote = true
	b = append(b, `{"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, e.Cat)
	b = append(b, `,"ph":"`...)
	switch e.Kind {
	case KindSpan:
		b = append(b, 'X')
	case KindCounter:
		b = append(b, 'C')
	default:
		b = append(b, 'i')
	}
	b = append(b, `","pid":1,"tid":`...)
	b = appendInt(b, s.tid(e.Cat))
	b = append(b, `,"ts":`...)
	b = appendMicros(b, e.TS)
	if e.Kind == KindSpan {
		b = append(b, `,"dur":`...)
		b = appendMicros(b, e.Dur)
	}
	if e.Kind == KindInstant {
		b = append(b, `,"s":"t"`...)
	}
	b = append(b, `,"args":`...)
	b = appendArgs(b, e)
	b = append(b, '}')
	s.buf = b
	_, err := s.bw.Write(b)
	return err
}

// Close implements Sink: it appends thread/process-name metadata events,
// closes the JSON structure, and flushes.
func (s *ChromeSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	b := s.buf[:0]
	if s.wrote {
		b = append(b, ',')
	}
	b = append(b, `{"name":"process_name","ph":"M","pid":1,"args":{"name":"tetrisched"}}`...)
	for i, cat := range s.order {
		b = append(b, `,{"name":"thread_name","ph":"M","pid":1,"tid":`...)
		b = appendInt(b, i+1)
		b = append(b, `,"args":{"name":`...)
		b = appendJSONString(b, cat)
		b = append(b, `}}`...)
	}
	b = append(b, `]}`...)
	if _, err := s.bw.Write(b); err != nil {
		return err
	}
	return s.bw.Flush()
}

func appendInt(b []byte, v int) []byte {
	if v >= 0 && v < 10 {
		return append(b, '0'+byte(v))
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = '0' + byte(v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// WriteChrome writes a snapshot of events as one complete Chrome
// trace-event JSON document (used by the daemon's /v1/trace endpoint).
func WriteChrome(w io.Writer, events []Event) error {
	s := NewChromeSink(w)
	for i := range events {
		if err := s.Emit(&events[i]); err != nil {
			return err
		}
	}
	return s.Close()
}

// ChromeEvent is the decoded form of one trace-event array element, for
// consumers that read exported traces back (tests, tooling).
type ChromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat"`
	Ph   string                 `json:"ph"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	Args map[string]interface{} `json:"args"`
}

// ChromeDoc is the decoded top-level Chrome trace-event JSON object.
type ChromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []ChromeEvent `json:"traceEvents"`
}

// ValidateChrome checks that data is a well-formed Chrome trace-event JSON
// document and returns the event count.
func ValidateChrome(data []byte) (int, error) {
	doc, err := DecodeChrome(data)
	if err != nil {
		return 0, err
	}
	return len(doc.TraceEvents), nil
}

// DecodeChrome parses an exported Chrome trace-event JSON document.
func DecodeChrome(data []byte) (*ChromeDoc, error) {
	var doc ChromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}
