package trace

import (
	"bufio"
	"io"
	"strconv"
)

// JSONLSink streams events as JSON Lines: one self-contained object per
// event, newline-terminated, flushed through a fixed-size buffer — nothing
// is retained per event, so arbitrarily long runs stream in constant
// memory. Unlike the Chrome format the file is valid line-by-line from the
// first event, which makes it greppable, tail -f-able, and robust to
// truncation.
//
// Wire form:
//
//	{"seq":12,"ts_us":1042.5,"kind":"span","cat":"solve","name":"solve","dur_us":880.2,"args":{"nodes":17,"vt":96}}
type JSONLSink struct {
	bw  *bufio.Writer
	buf []byte
}

// NewJSONLSink starts a JSONL stream on w. The caller owns w and closes it
// after Close.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 512)}
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e *Event) error {
	b := s.buf[:0]
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"ts_us":`...)
	b = appendMicros(b, e.TS)
	b = append(b, `,"kind":`...)
	b = appendJSONString(b, e.Kind.String())
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, e.Cat)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, e.Name)
	if e.Kind == KindSpan {
		b = append(b, `,"dur_us":`...)
		b = appendMicros(b, e.Dur)
	}
	b = append(b, `,"args":`...)
	b = appendArgs(b, e)
	b = append(b, '}', '\n')
	s.buf = b
	_, err := s.bw.Write(b)
	return err
}

// Close implements Sink: it flushes buffered lines.
func (s *JSONLSink) Close() error { return s.bw.Flush() }
