package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestNilTracer: every method must be a no-op on a nil tracer — the
// disabled-tracing fast path call sites rely on.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Begin("cat", "name")
	sp.End(I("x", 1))
	tr.Instant("cat", "name", S("k", "v"))
	tr.Counter("cat", "name", F("v", 1.5))
	tr.SetVirtualTime(42)
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil snapshot = %v", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil close: %v", err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("nil err: %v", err)
	}
	if tr.SetSink(nil) != nil {
		t.Fatal("nil SetSink returned non-nil")
	}
}

// TestRingWrap: the ring keeps the newest events in record order once full.
func TestRingWrap(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Instant("c", "e", I("i", int64(i)))
	}
	snap := tr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for k, e := range snap {
		if want := uint64(6 + k); e.Seq != want {
			t.Errorf("snap[%d].Seq = %d, want %d", k, e.Seq, want)
		}
		if e.NArg != 1 || e.Args[0].i != int64(6+k) {
			t.Errorf("snap[%d] args = %+v", k, e.Args[:e.NArg])
		}
	}
	// Before wrap-around, a short run is returned whole.
	tr2 := New(8)
	tr2.Instant("c", "a")
	tr2.Instant("c", "b")
	if snap := tr2.Snapshot(); len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("partial snapshot = %+v", snap)
	}
}

// TestSpanPayload: spans carry duration, virtual time, and truncated args.
func TestSpanPayload(t *testing.T) {
	tr := New(16)
	tr.SetVirtualTime(96)
	sp := tr.Begin("solve", "solve")
	args := make([]Arg, 0, MaxArgs+2)
	for i := 0; i < MaxArgs+2; i++ {
		args = append(args, I("k", int64(i)))
	}
	sp.End(args...)
	snap := tr.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("events = %d", len(snap))
	}
	e := snap[0]
	if e.Kind != KindSpan || e.Dur < 0 || e.VT != 96 || e.Cat != "solve" {
		t.Fatalf("event = %+v", e)
	}
	if e.NArg != MaxArgs {
		t.Fatalf("NArg = %d, want %d (extra args dropped)", e.NArg, MaxArgs)
	}
}

// TestChromeExport: snapshot export round-trips through encoding/json with
// the expected phases, tracks, and metadata.
func TestChromeExport(t *testing.T) {
	tr := New(64)
	tr.SetVirtualTime(4)
	sp := tr.Begin("cycle", "cycle")
	inner := tr.Begin("solve", "solve")
	inner.End(I("nodes", 17), F("objective", 3.25), S("status", "optimal"), B("warm", true))
	sp.End(I("pending", 5))
	tr.Instant("place", "launch", I("job", 7), S("option", "pref\"q"))
	tr.Counter("queue", "pending", I("jobs", 5))

	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	doc, err := DecodeChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	phases := map[string]string{}
	tracks := map[int]string{}
	var threadNames int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threadNames++
				tracks[e.Tid] = e.Args["name"].(string)
			}
		case "X", "i", "C":
			phases[e.Name] = e.Ph
			if e.Pid != 1 || e.Tid < 1 {
				t.Errorf("event %q pid/tid = %d/%d", e.Name, e.Pid, e.Tid)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if phases["cycle"] != "X" || phases["solve"] != "X" || phases["launch"] != "i" || phases["pending"] != "C" {
		t.Errorf("phases = %v", phases)
	}
	if threadNames != 4 { // cycle, solve, place, queue
		t.Errorf("thread_name metadata = %d, want 4 (%v)", threadNames, tracks)
	}
	// Spot-check payload fidelity, including string escaping and vt.
	for _, e := range doc.TraceEvents {
		if e.Name == "launch" {
			if e.Args["option"] != `pref"q` || e.Args["job"] != float64(7) || e.Args["vt"] != float64(4) {
				t.Errorf("launch args = %v", e.Args)
			}
		}
		if e.Name == "solve" {
			if e.Args["warm"] != true || e.Args["status"] != "optimal" || e.Args["objective"] != 3.25 {
				t.Errorf("solve args = %v", e.Args)
			}
		}
	}
}

// TestChromeSinkStreaming: a tracer streaming through a ChromeSink with a
// tiny ring produces a complete document containing every event, proving
// the stream does not depend on ring retention.
func TestChromeSinkStreaming(t *testing.T) {
	var buf bytes.Buffer
	tr := New(2).SetSink(NewChromeSink(&buf))
	const total = 100
	for i := 0; i < total; i++ {
		tr.Instant("c", "e", I("i", int64(i)))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("streamed chrome trace malformed: %v", err)
	}
	if n < total { // + metadata events
		t.Fatalf("streamed %d events, want ≥ %d", n, total)
	}
}

// TestJSONLSink: every line is a self-contained JSON object with the
// documented fields.
func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(2).SetSink(NewJSONLSink(&buf))
	tr.SetVirtualTime(8)
	sp := tr.Begin("cycle", "cycle")
	sp.End(I("pending", 3))
	tr.Instant("place", "defer", I("job", 1), I("start_slice", 2))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	for i, ln := range lines {
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		for _, key := range []string{"seq", "ts_us", "kind", "cat", "name", "args"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line %d missing %q: %s", i, key, ln)
			}
		}
	}
	var span map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatal(err)
	}
	if span["kind"] != "span" || span["dur_us"] == nil {
		t.Errorf("span line = %v", span)
	}
	if args := span["args"].(map[string]interface{}); args["pending"] != float64(3) || args["vt"] != float64(8) {
		t.Errorf("span args = %v", span["args"])
	}
}

// errWriter fails after n bytes to exercise the sink-error path.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

var errSink = &sinkError{}

type sinkError struct{}

func (*sinkError) Error() string { return "sink write failed" }

// TestSinkError: a failing sink surfaces via Err/Close but recording into
// the ring continues.
func TestSinkError(t *testing.T) {
	tr := New(8).SetSink(NewJSONLSink(&errWriter{n: 0}))
	for i := 0; i < 2000; i++ { // enough to overflow the bufio buffer
		tr.Instant("c", "e", S("pad", strings.Repeat("x", 64)))
	}
	if err := tr.Err(); err == nil {
		t.Fatal("sink error not surfaced")
	}
	if len(tr.Snapshot()) != 8 {
		t.Fatalf("ring stopped recording after sink error: %d events", len(tr.Snapshot()))
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close lost the sink error")
	}
}

// TestConcurrentRecording: concurrent spans, instants, and snapshots are
// race-free (verified by the tier-1 -race pass) and lose nothing.
func TestConcurrentRecording(t *testing.T) {
	tr := New(4096)
	var wg sync.WaitGroup
	const goroutines, each = 8, 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				sp := tr.Begin("worker", "unit")
				tr.Instant("worker", "tick", I("g", int64(g)))
				sp.End(I("i", int64(i)))
				if i%10 == 0 {
					_ = tr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap) != goroutines*each*2 {
		t.Fatalf("events = %d, want %d", len(snap), goroutines*each*2)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("non-contiguous seq at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

// BenchmarkDisabled measures the nil-tracer fast path that rides inside
// every scheduler cycle when tracing is off.
func BenchmarkDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("cycle", "cycle")
		tr.Instant("place", "launch", I("job", int64(i)))
		sp.End(I("pending", 5))
	}
}

// BenchmarkInstant measures the enabled ring-record path.
func BenchmarkInstant(b *testing.B) {
	tr := New(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant("place", "launch", I("job", int64(i)), S("option", "pref"))
	}
}

// BenchmarkJSONLEmit measures the streaming encode path.
func BenchmarkJSONLEmit(b *testing.B) {
	tr := New(64).SetSink(NewJSONLSink(io.Discard))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Instant("solve", "solve", I("nodes", int64(i)), F("objective", 3.5))
	}
}
