package experiments

import (
	"fmt"
	"io"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/workload"
)

// grErrs is the estimate-error sweep of Figs 6/8/9/10 (percent).
var grErrs = []float64{-50, -20, 0, 20, 50, 100}

// narrowErrs is the Fig 7 sweep (percent).
var narrowErrs = []float64{-20, -10, 0, 10, 20}

// planAheads is the Fig 11/12 plan-ahead sweep (seconds).
var planAheads = []int64{0, 44, 96, 120, 144}

// Table1 prints the workload composition table.
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1 — Workload compositions")
	fmt.Fprintf(w, "%-10s%8s%8s%16s%8s%8s\n", "Workload", "SLO", "BE", "Unconstrained", "GPU", "MPI")
	for _, m := range []workload.Mix{workload.GRSLO(1), workload.GRMIX(1), workload.GSMIX(1), workload.GSHET(1)} {
		fmt.Fprintf(w, "%-10s%7.0f%%%7.0f%%%15.0f%%%7.0f%%%7.0f%%\n",
			m.Name, 100*m.SLOFrac, 100*(1-m.SLOFrac),
			100*m.UnconstrainedFrac, 100*m.GPUFrac, 100*m.MPIFrac)
	}
	return nil
}

// Table2 prints the scheduler ablation configurations.
func Table2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2 — TetriSched configurations")
	rows := []struct{ name, desc string }{
		{"TetriSched", "all features"},
		{"TetriSched-NH", "No Heterogeneity (soft constraint awareness disabled)"},
		{"TetriSched-NG", "No Global scheduling (greedy per-job over 3 priority queues)"},
		{"TetriSched-NP", "No Plan-ahead (window = 1 cycle; alsched-equivalent)"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %s\n", r.name, r.desc)
	}
	return nil
}

// tetri builds the full-featured TetriSched at scale sc.
func tetri(sc Scale) Builder {
	return TetriSched(core.Config{
		CyclePeriod: sc.CyclePeriod, PlanAhead: sc.PlanAhead,
		SolverTimeLimit: sc.SolverTimeLimit, SolverWorkers: sc.SolverWorkers,
	})
}

func variant(sc Scale, mod func(*core.Config)) Builder {
	cfg := core.Config{CyclePeriod: sc.CyclePeriod, PlanAhead: sc.PlanAhead,
		SolverTimeLimit: sc.SolverTimeLimit, SolverWorkers: sc.SolverWorkers}
	mod(&cfg)
	return TetriSched(cfg)
}

// Fig6 — RC256, GR MIX: SLO attainment and BE latency vs estimate error,
// Rayon/TetriSched vs Rayon/CS.
func Fig6(w io.Writer, sc Scale) error {
	c := cluster.RC256(false)
	mix := workload.GRMIX(sc.Jobs)
	mix.TargetUtil = 1.3 // near-saturation, as in §6.4
	s, err := errSweep(c, mix, grErrs, sc, []Builder{RayonCS(), tetri(sc)})
	if err != nil {
		return err
	}
	s.printMetric(w, "Fig 6(a) — SLO attainment, all SLO jobs (%) [RC256, GR_MIX]", sloAll, "%")
	s.printMetric(w, "Fig 6(b) — SLO attainment, jobs w/ reservations (%) [RC256, GR_MIX]", sloAccepted, "%")
	s.printMetric(w, "Fig 6(c) — SLO attainment, jobs w/o reservations (%) [RC256, GR_MIX]", sloNoRes, "%")
	s.printMetric(w, "Fig 6(d) — Best-effort mean latency (s) [RC256, GR_MIX]", beLatency, "s")
	return nil
}

// Fig7 — RC256, GR SLO (SLO-only): attainment vs estimate error.
func Fig7(w io.Writer, sc Scale) error {
	c := cluster.RC256(false)
	mix := workload.GRSLO(sc.Jobs)
	mix.TargetUtil = 1.3
	s, err := errSweep(c, mix, narrowErrs, sc, []Builder{RayonCS(), tetri(sc)})
	if err != nil {
		return err
	}
	s.printMetric(w, "Fig 7(a) — SLO attainment, all SLO jobs (%) [RC256, GR_SLO]", sloAll, "%")
	s.printMetric(w, "Fig 7(b) — SLO attainment, accepted SLO jobs (%) [RC256, GR_SLO]", sloAccepted, "%")
	s.printMetric(w, "Fig 7(c) — SLO attainment, jobs w/o reservations (%) [RC256, GR_SLO]", sloNoRes, "%")
	return nil
}

// Fig8 — RC80, GS MIX: attainment and latency vs estimate error.
func Fig8(w io.Writer, sc Scale) error {
	c := cluster.RC80(false)
	mix := workload.GSMIX(sc.Jobs)
	mix.TargetUtil = 1.3
	s, err := errSweep(c, mix, grErrs, sc, []Builder{RayonCS(), tetri(sc)})
	if err != nil {
		return err
	}
	s.printMetric(w, "Fig 8(a) — SLO attainment, all SLO jobs (%) [RC80, GS_MIX]", sloAll, "%")
	s.printMetric(w, "Fig 8(b) — SLO attainment, accepted SLO jobs (%) [RC80, GS_MIX]", sloAccepted, "%")
	s.printMetric(w, "Fig 8(c) — Best-effort mean latency (s) [RC80, GS_MIX]", beLatency, "s")
	return nil
}

// Fig9 — RC80, GS HET: soft-constraint ablation (TetriSched vs
// TetriSched-NH vs Rayon/CS) vs estimate error.
func Fig9(w io.Writer, sc Scale) error {
	c := cluster.RC80(true)
	mix := workload.GSHET(sc.Jobs)
	errs := []float64{-50, -20, 0, 20, 50}
	s, err := errSweep(c, mix, errs, sc, []Builder{
		RayonCS(), tetri(sc),
		variant(sc, func(c *core.Config) { c.NoHet = true }),
	})
	if err != nil {
		return err
	}
	s.printMetric(w, "Fig 9(a) — SLO attainment, all SLO jobs (%) [RC80, GS_HET]", sloAll, "%")
	s.printMetric(w, "Fig 9(b) — SLO attainment, accepted SLO jobs (%) [RC80, GS_HET]", sloAccepted, "%")
	s.printMetric(w, "Fig 9(c) — SLO attainment, jobs w/o reservations (%) [RC80, GS_HET]", sloNoRes, "%")
	s.printMetric(w, "Fig 9(d) — Best-effort mean latency (s) [RC80, GS_HET]", beLatency, "s")
	return nil
}

// Fig10 — RC80, GS HET: global-scheduling ablation (TetriSched vs
// TetriSched-NG vs Rayon/CS) vs estimate error.
func Fig10(w io.Writer, sc Scale) error {
	c := cluster.RC80(true)
	mix := workload.GSHET(sc.Jobs)
	errs := []float64{-50, -20, 0, 20, 50}
	s, err := errSweep(c, mix, errs, sc, []Builder{
		RayonCS(), tetri(sc),
		variant(sc, func(c *core.Config) { c.Greedy = true }),
	})
	if err != nil {
		return err
	}
	s.printMetric(w, "Fig 10(a) — SLO attainment, all SLO jobs (%) [RC80, GS_HET]", sloAll, "%")
	s.printMetric(w, "Fig 10(b) — SLO attainment, accepted SLO jobs (%) [RC80, GS_HET]", sloAccepted, "%")
	s.printMetric(w, "Fig 10(c) — SLO attainment, jobs w/o reservations (%) [RC80, GS_HET]", sloNoRes, "%")
	s.printMetric(w, "Fig 10(d) — Best-effort mean latency (s) [RC80, GS_HET]", beLatency, "s")
	return nil
}

// Fig11 — RC80, GS HET: TetriSched and TetriSched-NG as a function of the
// plan-ahead window (plan-ahead=0 is TetriSched-NP / alsched).
func Fig11(w io.Writer, sc Scale) error {
	c := cluster.RC80(true)
	mix := workload.GSHET(sc.Jobs)
	s := newSeries("plan-ahead", []string{"Rayon/CS", "TetriSched", "TetriSched-NG"})
	for _, pa := range planAheads {
		x := fmt.Sprintf("%ds", pa)
		scPA := sc
		scPA.PlanAhead = pa
		cs, err := Averaged(c, mix, sc, RayonCS())
		if err != nil {
			return err
		}
		s.add(x, cs)
		full, err := Averaged(c, mix, scPA, variant(scPA, func(c *core.Config) { c.PlanAhead = pa }))
		if err != nil {
			return err
		}
		full.Scheduler = "TetriSched"
		s.add(x, full)
		greedy, err := Averaged(c, mix, scPA, variant(scPA, func(c *core.Config) { c.PlanAhead = pa; c.Greedy = true }))
		if err != nil {
			return err
		}
		greedy.Scheduler = "TetriSched-NG"
		s.add(x, greedy)
	}
	s.printMetric(w, "Fig 11(a) — SLO attainment, all SLO jobs (%) vs plan-ahead [RC80, GS_HET]", sloAll, "%")
	s.printMetric(w, "Fig 11(b) — SLO attainment, accepted SLO jobs (%) vs plan-ahead [RC80, GS_HET]", sloAccepted, "%")
	s.printMetric(w, "Fig 11(c) — SLO attainment, jobs w/o reservations (%) vs plan-ahead [RC80, GS_HET]", sloNoRes, "%")
	s.printMetric(w, "Fig 11(d) — Best-effort mean latency (s) vs plan-ahead [RC80, GS_HET]", beLatency, "s")
	return nil
}

// Fig12 — scalability: solver and cycle wall-clock latency (of this
// repository's own MILP solver) vs plan-ahead, plus the latency CDF at the
// largest window.
func Fig12(w io.Writer, sc Scale) error {
	c := cluster.RC80(true)
	mix := workload.GSHET(sc.Jobs)
	type row struct {
		pa            int64
		solver, cycle map[string]float64
		cdfSolver     map[string]*metrics.CDF
		cdfCycle      map[string]*metrics.CDF
	}
	var rows []row
	for _, pa := range planAheads {
		scPA := sc
		scPA.PlanAhead = pa
		r := row{pa: pa,
			solver: map[string]float64{}, cycle: map[string]float64{},
			cdfSolver: map[string]*metrics.CDF{}, cdfCycle: map[string]*metrics.CDF{}}
		for _, b := range []Builder{
			variant(scPA, func(c *core.Config) { c.PlanAhead = pa }),
			variant(scPA, func(c *core.Config) { c.PlanAhead = pa; c.Greedy = true }),
		} {
			name := "TetriSched"
			if b.Name == "TetriSched-NG" {
				name = "TetriSched-NG"
			}
			sum, err := Averaged(c, mix, scPA, b)
			if err != nil {
				return err
			}
			r.solver[name] = metrics.NewDurationCDF(sum.SolverLatencies).Mean()
			r.cycle[name] = metrics.NewDurationCDF(sum.CycleLatencies).Mean()
			r.cdfSolver[name] = metrics.NewDurationCDF(sum.SolverLatencies)
			r.cdfCycle[name] = metrics.NewDurationCDF(sum.CycleLatencies)
		}
		rows = append(rows, r)
	}
	fmt.Fprintln(w, "\nFig 12(a) — mean solver latency (ms) vs plan-ahead [RC80, GS_HET]")
	fmt.Fprintf(w, "%-12s%16s%16s\n", "plan-ahead", "TetriSched", "TetriSched-NG")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%14.1fms%14.1fms\n", fmt.Sprintf("%ds", r.pa), r.solver["TetriSched"], r.solver["TetriSched-NG"])
	}
	fmt.Fprintln(w, "\nFig 12(b) — mean cycle latency (ms) vs plan-ahead [RC80, GS_HET]")
	fmt.Fprintf(w, "%-12s%16s%16s\n", "plan-ahead", "TetriSched", "TetriSched-NG")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%14.1fms%14.1fms\n", fmt.Sprintf("%ds", r.pa), r.cycle["TetriSched"], r.cycle["TetriSched-NG"])
	}
	last := rows[len(rows)-1]
	fmt.Fprintf(w, "\nFig 12(c) — latency CDF at plan-ahead=%ds (ms)\n", last.pa)
	fmt.Fprintf(w, "%-6s%18s%18s%18s%18s\n", "pct", "T cycle", "NG cycle", "T solver", "NG solver")
	for _, p := range []float64{10, 25, 50, 75, 90, 99, 100} {
		fmt.Fprintf(w, "p%-5.0f%16.1fms%16.1fms%16.1fms%16.1fms\n", p,
			last.cdfCycle["TetriSched"].Percentile(p),
			last.cdfCycle["TetriSched-NG"].Percentile(p),
			last.cdfSolver["TetriSched"].Percentile(p),
			last.cdfSolver["TetriSched-NG"].Percentile(p))
	}
	return nil
}

// All runs every table and figure in order.
func All(w io.Writer, sc Scale) error {
	steps := []struct {
		name string
		fn   func(io.Writer, Scale) error
	}{
		{"Table 1", func(w io.Writer, _ Scale) error { return Table1(w) }},
		{"Table 2", func(w io.Writer, _ Scale) error { return Table2(w) }},
		{"Fig 6", Fig6},
		{"Fig 7", Fig7},
		{"Fig 8", Fig8},
		{"Fig 9", Fig9},
		{"Fig 10", Fig10},
		{"Fig 11", Fig11},
		{"Fig 12", Fig12},
		{"Extension: scale", ExtScale},
		{"Extension: preemption", ExtPreempt},
		{"Extension: elastic", ExtElastic},
		{"Extension: sharding", ExtShard},
	}
	for _, s := range steps {
		fmt.Fprintf(w, "\n================ %s ================\n", s.name)
		if err := s.fn(w, sc); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
