// Package experiments regenerates every table and figure of the TetriSched
// paper's evaluation (§7). Each FigN function runs the corresponding
// workload/cluster/parameter sweep against the relevant schedulers and
// prints the same rows/series the paper plots. Scale controls job counts and
// seeds so benchmarks can run reduced versions of the same code paths.
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tetrisched/internal/capsched"
	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// Scale controls experiment size.
type Scale struct {
	// Jobs is the number of jobs per run.
	Jobs int
	// Seeds is how many seeds to average over.
	Seeds int
	// PlanAhead is the default plan-ahead window in seconds.
	PlanAhead int64
	// CyclePeriod in seconds (paper: 4).
	CyclePeriod int64
	// SolverTimeLimit per MILP solve.
	SolverTimeLimit time.Duration
	// SolverWorkers is the branch-and-bound worker count per MILP solve
	// (0 = serial).
	SolverWorkers int
}

// Full is the default experiment scale.
func Full() Scale {
	return Scale{Jobs: 150, Seeds: 2, PlanAhead: 96, CyclePeriod: 4, SolverTimeLimit: 300 * time.Millisecond}
}

// Quick is a reduced scale for smoke runs.
func Quick() Scale {
	return Scale{Jobs: 60, Seeds: 1, PlanAhead: 96, CyclePeriod: 4, SolverTimeLimit: 200 * time.Millisecond}
}

// Bench is the smallest scale, used by the repository's per-figure
// benchmarks: every code path of the full experiment, minimal wall time.
func Bench() Scale {
	return Scale{Jobs: 15, Seeds: 1, PlanAhead: 48, CyclePeriod: 4, SolverTimeLimit: 50 * time.Millisecond}
}

// Builder constructs a scheduler bound to a cluster and reservation plan.
type Builder struct {
	Name  string
	Build func(c *cluster.Cluster, plan *rayon.Plan) sim.Scheduler
}

// TetriSched returns a builder for a TetriSched variant.
func TetriSched(cfg core.Config) Builder {
	return Builder{
		Name: cfg.Name(),
		Build: func(c *cluster.Cluster, plan *rayon.Plan) sim.Scheduler {
			return core.New(c, cfg)
		},
	}
}

// RayonCS returns a builder for the baseline stack.
func RayonCS() Builder {
	return Builder{
		Name: "Rayon/CS",
		Build: func(c *cluster.Cluster, plan *rayon.Plan) sim.Scheduler {
			return capsched.New(c, plan)
		},
	}
}

// RunOne generates the mix with the seed, runs it under the scheduler, and
// summarizes.
func RunOne(c *cluster.Cluster, mix workload.Mix, seed int64, b Builder, cyclePeriod int64) (metrics.Summary, error) {
	jobs, err := workload.Generate(mix, c, seed)
	if err != nil {
		return metrics.Summary{}, err
	}
	plan := rayon.NewPlan(c.N(), cyclePeriod)
	sched := b.Build(c, plan)
	res, err := sim.Run(sim.Config{
		Cluster:     c,
		Jobs:        jobs,
		Scheduler:   sched,
		Plan:        plan,
		CyclePeriod: cyclePeriod,
	})
	if err != nil {
		return metrics.Summary{}, fmt.Errorf("%s seed %d: %w", b.Name, seed, err)
	}
	if res.Stalled {
		return metrics.Summary{}, fmt.Errorf("%s seed %d: simulation stalled", b.Name, seed)
	}
	return metrics.Summarize(b.Name, res, c.N()), nil
}

// Averaged runs the mix across sc.Seeds seeds and averages the headline
// metrics.
func Averaged(c *cluster.Cluster, mix workload.Mix, sc Scale, b Builder) (metrics.Summary, error) {
	var acc metrics.Summary
	acc.Scheduler = b.Name
	for s := 0; s < sc.Seeds; s++ {
		sum, err := RunOne(c, mix, int64(1000+s), b, sc.CyclePeriod)
		if err != nil {
			return acc, err
		}
		acc.SLOAll += sum.SLOAll
		acc.SLOAccepted += sum.SLOAccepted
		acc.SLONoRes += sum.SLONoRes
		acc.MeanBELatency += sum.MeanBELatency
		acc.Utilization += sum.Utilization
		acc.NumSLO += sum.NumSLO
		acc.NumAccepted += sum.NumAccepted
		acc.NumNoRes += sum.NumNoRes
		acc.NumBE += sum.NumBE
		acc.Incomplete += sum.Incomplete
		acc.CycleLatencies = append(acc.CycleLatencies, sum.CycleLatencies...)
		acc.SolverLatencies = append(acc.SolverLatencies, sum.SolverLatencies...)
	}
	n := float64(sc.Seeds)
	acc.SLOAll /= n
	acc.SLOAccepted /= n
	acc.SLONoRes /= n
	acc.MeanBELatency /= n
	acc.Utilization /= n
	return acc, nil
}

// series is one sweep: metric values per x-point per scheduler.
type series struct {
	xlabel  string
	xs      []string
	columns []string
	cells   map[string]map[string]metrics.Summary // x -> scheduler -> summary
}

func newSeries(xlabel string, columns []string) *series {
	return &series{xlabel: xlabel, columns: columns, cells: map[string]map[string]metrics.Summary{}}
}

func (s *series) add(x string, sum metrics.Summary) {
	if s.cells[x] == nil {
		s.cells[x] = map[string]metrics.Summary{}
		s.xs = append(s.xs, x)
	}
	s.cells[x][sum.Scheduler] = sum
}

// tsvDir, when set via SetTSVDir, receives one tab-separated file per
// sub-figure alongside the printed tables — plotting-friendly output.
var tsvDir string

// SetTSVDir directs every subsequently printed sub-figure to also be written
// as <dir>/<fig-id>.tsv. Pass "" to disable.
func SetTSVDir(dir string) { tsvDir = dir }

// tsvName slugifies a sub-figure title ("Fig 9(a) — …" → "fig9a.tsv").
func tsvName(title string) string {
	head, _, _ := strings.Cut(title, "—")
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(head)) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		b.WriteString("figure")
	}
	return b.String() + ".tsv"
}

// writeTSV dumps the series for one metric as TSV.
func (s *series) writeTSV(title string, metric func(metrics.Summary) float64) {
	if tsvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(tsvDir, tsvName(title)))
	if err != nil {
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s\n%s", title, s.xlabel)
	for _, c := range s.columns {
		fmt.Fprintf(f, "\t%s", c)
	}
	fmt.Fprintln(f)
	for _, x := range s.xs {
		fmt.Fprint(f, x)
		for _, c := range s.columns {
			if sum, ok := s.cells[x][c]; ok {
				fmt.Fprintf(f, "\t%.3f", metric(sum))
			} else {
				fmt.Fprint(f, "\t")
			}
		}
		fmt.Fprintln(f)
	}
}

// printMetric renders one sub-figure table.
func (s *series) printMetric(w io.Writer, title string, metric func(metrics.Summary) float64, unit string) {
	s.writeTSV(title, metric)
	fmt.Fprintf(w, "\n%s\n", title)
	fmt.Fprintf(w, "%-12s", s.xlabel)
	for _, c := range s.columns {
		fmt.Fprintf(w, "%16s", c)
	}
	fmt.Fprintln(w)
	for _, x := range s.xs {
		fmt.Fprintf(w, "%-12s", x)
		for _, c := range s.columns {
			if sum, ok := s.cells[x][c]; ok {
				fmt.Fprintf(w, "%14.1f%s", metric(sum), unit)
			} else {
				fmt.Fprintf(w, "%16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

func sloAll(s metrics.Summary) float64      { return s.SLOAll }
func sloAccepted(s metrics.Summary) float64 { return s.SLOAccepted }
func sloNoRes(s metrics.Summary) float64    { return s.SLONoRes }
func beLatency(s metrics.Summary) float64   { return s.MeanBELatency }

// errSweep runs an estimate-error sweep for one workload/cluster and a set
// of schedulers.
func errSweep(c *cluster.Cluster, mix workload.Mix, errs []float64, sc Scale, builders []Builder) (*series, error) {
	cols := make([]string, len(builders))
	for i, b := range builders {
		cols[i] = b.Name
	}
	s := newSeries("err(%)", cols)
	for _, e := range errs {
		m := mix
		m.EstErr = e / 100
		for _, b := range builders {
			sum, err := Averaged(c, m, sc, b)
			if err != nil {
				return nil, err
			}
			s.add(fmt.Sprintf("%+.0f", e), sum)
		}
	}
	return s, nil
}
