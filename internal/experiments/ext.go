package experiments

import (
	"fmt"
	"io"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/workload"
)

// ExtScale is the companion-TR scalability experiment (§7.3): the paper's
// technical report scales TetriSched to a 1000-node simulated cluster and
// reports that cycle latency distributions degrade only mildly. This sweep
// runs the GS HET workload, scaled to hold per-node load constant, across
// cluster sizes and reports scheduling quality and real solver/cycle
// latencies of this implementation.
func ExtScale(w io.Writer, sc Scale) error {
	type point struct {
		name  string
		c     *cluster.Cluster
		scale int // workload multiplier vs RC80
	}
	points := []point{
		{"RC80 (80)", cluster.RC80(true), 1},
		{"RC256 (256)", cluster.RC256(true), 3},
		{"RC1000 (1024)", rc1000(), 12},
	}
	fmt.Fprintln(w, "\nExtension (TR §7.3) — scalability with cluster size [GS_HET, constant per-node load]")
	fmt.Fprintf(w, "%-14s%12s%12s%14s%14s%14s\n", "cluster", "SLO-all(%)", "BE-lat(s)", "solver-p50", "solver-p99", "cycle-mean")
	for _, p := range points {
		mix := workload.GSHET(sc.Jobs * p.scale)
		b := TetriSched(core.Config{
			CyclePeriod: sc.CyclePeriod, PlanAhead: sc.PlanAhead,
			SolverTimeLimit: sc.SolverTimeLimit, SolverWorkers: sc.SolverWorkers,
		})
		sum, err := RunOne(p.c, mix, 1000, b, sc.CyclePeriod)
		if err != nil {
			return err
		}
		solver := metrics.NewDurationCDF(sum.SolverLatencies)
		cyc := metrics.NewDurationCDF(sum.CycleLatencies)
		fmt.Fprintf(w, "%-14s%12.1f%12.1f%12.1fms%12.1fms%12.1fms\n",
			p.name, sum.SLOAll, sum.MeanBELatency,
			solver.Percentile(50), solver.Percentile(99), cyc.Mean())
	}
	return nil
}

// ExtPreempt is an ablation for the repository's preemption extension (the
// paper lists preemption in a TetriSched-like scheduler as future work,
// §7.2): TetriSched with and without best-effort preemption on the GS MIX
// workload under under-estimation, where last-chance SLO jobs are most
// common.
func ExtPreempt(w io.Writer, sc Scale) error {
	c := cluster.RC80(false)
	mix := workload.GSMIX(sc.Jobs)
	mix.EstErr = -0.5
	mix.TargetUtil = 1.3
	fmt.Fprintln(w, "\nExtension — best-effort preemption ablation [RC80, GS_MIX, err=-50%]")
	fmt.Fprintf(w, "%-28s%12s%12s%14s\n", "scheduler", "SLO-all(%)", "SLO-res(%)", "BE-latency(s)")
	for _, on := range []bool{false, true} {
		cfg := core.Config{CyclePeriod: sc.CyclePeriod, PlanAhead: sc.PlanAhead,
			SolverTimeLimit: sc.SolverTimeLimit, SolverWorkers: sc.SolverWorkers,
			EnablePreemption: on}
		b := TetriSched(cfg)
		if on {
			b.Name = "TetriSched+preempt"
		}
		sum, err := Averaged(c, mix, sc, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s%12.1f%12.1f%14.1f\n", b.Name, sum.SLOAll, sum.SLOAccepted, sum.MeanBELatency)
	}
	return nil
}

// ExtElastic measures the benefit of malleable best-effort jobs (the §4.1
// space-time elasticity extension): GS MIX with rigid vs elastic BE jobs.
func ExtElastic(w io.Writer, sc Scale) error {
	c := cluster.RC80(false)
	fmt.Fprintln(w, "\nExtension — elastic (malleable) best-effort jobs [RC80, GS_MIX variant]")
	fmt.Fprintf(w, "%-28s%12s%14s%12s\n", "workload", "SLO-all(%)", "BE-latency(s)", "util(%)")
	for _, elastic := range []bool{false, true} {
		mix := workload.GSMIX(sc.Jobs)
		mix.TargetUtil = 1.3
		label := "rigid BE jobs"
		if elastic {
			// A third of the workload becomes malleable.
			mix.UnconstrainedFrac = 2.0 / 3
			mix.ElasticFrac = 1.0 / 3
			label = "1/3 elastic jobs"
		}
		sum, err := Averaged(c, mix, sc, tetri(sc))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-28s%12.1f%14.1f%12.1f\n", label, sum.SLOAll, sum.MeanBELatency, 100*sum.Utilization)
	}
	return nil
}

// rc1000 builds the TR's thousand-node cluster: 16 racks × 64 nodes, 4 racks
// GPU-labeled (same 25% ratio as RC80/RC256 het variants).
func rc1000() *cluster.Cluster {
	b := cluster.NewBuilder()
	for r := 0; r < 16; r++ {
		var attrs map[string]string
		if r < 4 {
			k, v := cluster.GPUAttr()
			attrs = map[string]string{k: v}
		}
		b.AddRack(fmt.Sprintf("r%d", r), 64, attrs)
	}
	return b.Build()
}
