package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/workload"
)

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"GR_SLO", "GR_MIX", "GS_MIX", "GS_HET", "100%", "75%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TetriSched-NH", "TetriSched-NG", "TetriSched-NP"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestRunOneAndAveraged(t *testing.T) {
	sc := Bench()
	c := cluster.RC80(false)
	mix := workload.GSMIX(sc.Jobs)
	sum, err := RunOne(c, mix, 1, tetri(sc), sc.CyclePeriod)
	if err != nil {
		t.Fatal(err)
	}
	if sum.NumSLO+sum.NumBE != sc.Jobs {
		t.Errorf("job accounting: SLO=%d BE=%d, want total %d", sum.NumSLO, sum.NumBE, sc.Jobs)
	}
	avg, err := Averaged(c, mix, sc, RayonCS())
	if err != nil {
		t.Fatal(err)
	}
	if avg.Scheduler != "Rayon/CS" {
		t.Errorf("scheduler name = %q", avg.Scheduler)
	}
}

// TestFig9BenchScale exercises the full Fig 9 code path (three schedulers ×
// error sweep) at the benchmark scale and sanity-checks the output format.
func TestFig9BenchScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation sweep")
	}
	var buf bytes.Buffer
	if err := Fig9(&buf, Bench()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 9(a)", "Fig 9(d)", "TetriSched-NH", "Rayon/CS", "-50", "+50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 9 output missing %q:\n%s", want, out)
		}
	}
}

func TestVariantBuilders(t *testing.T) {
	sc := Bench()
	b := variant(sc, func(c *core.Config) { c.Greedy = true })
	if b.Name != "TetriSched-NG" {
		t.Errorf("variant name = %q", b.Name)
	}
	c := cluster.RC80(false)
	s := b.Build(c, nil)
	if s.Name() != "TetriSched-NG" {
		t.Errorf("built scheduler name = %q", s.Name())
	}
}

func TestTSVExport(t *testing.T) {
	dir := t.TempDir()
	SetTSVDir(dir)
	defer SetTSVDir("")
	s := newSeries("err(%)", []string{"A", "B"})
	s.add("-50", metrics.Summary{Scheduler: "A", SLOAll: 10})
	s.add("-50", metrics.Summary{Scheduler: "B", SLOAll: 20})
	s.add("+0", metrics.Summary{Scheduler: "A", SLOAll: 30})
	var buf bytes.Buffer
	s.printMetric(&buf, "Fig 6(a) — SLO attainment, all SLO jobs (%)", sloAll, "%")
	data, err := os.ReadFile(filepath.Join(dir, "fig6a.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"err(%)\tA\tB", "-50\t10.000\t20.000", "+0\t30.000\t"} {
		if !strings.Contains(out, want) {
			t.Errorf("TSV missing %q:\n%s", want, out)
		}
	}
}
