package experiments

import (
	"fmt"
	"io"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// ExtShard evaluates the sharded control plane (internal/shard) at a scale
// the monolithic planner visibly struggles with: a 10k-node cluster whose
// GS HET workload couples into one global MILP per cycle. Per-shard planners
// solve concurrently over optimistic supply copies and commit against the
// shared free set, so cycle latency should fall with the shard count while
// commit-time conflict resolution keeps SLO attainment within noise of the
// monolithic policy. The sweep prints both, plus the conflict/arbitrator
// telemetry that explains the residual gap.
func ExtShard(w io.Writer, sc Scale) error {
	c := RC10K()
	mix := workload.GSHET(sc.Jobs * 8)
	fmt.Fprintln(w, "\nExtension — sharded shared-state scheduling [RC10K (10240 nodes), GS_HET]")
	fmt.Fprintf(w, "%-14s%12s%12s%12s%12s%12s%12s\n",
		"planners", "SLO-all(%)", "cycle-mean", "cycle-p99", "conflicts", "requeued", "spanning")
	for _, shards := range []int{0, 4, 16} {
		name := "monolithic"
		if shards > 0 {
			name = fmt.Sprintf("%d shards", shards)
		}
		sum, sh, err := RunSharded(c, mix, 1000, sc, shards)
		if err != nil {
			return err
		}
		cyc := metrics.NewDurationCDF(sum.CycleLatencies)
		fmt.Fprintf(w, "%-14s%12.1f%10.1fms%10.1fms%12d%12d%12d\n",
			name, sum.SLOAll, cyc.Mean(), cyc.Percentile(99),
			sh.Conflicts, sh.Requeued, sh.Spanning)
	}
	return nil
}

// RunSharded runs one seeded simulation of the mix on the cluster with the
// given shard count (0 = monolithic) and returns the summary plus the shard
// telemetry. Shared by ExtShard and the root BenchmarkShardedCycle* suite.
func RunSharded(c *cluster.Cluster, mix workload.Mix, seed int64, sc Scale, shards int) (metrics.Summary, core.ShardStats, error) {
	return RunShardedBasis(c, mix, seed, sc, shards, false)
}

// RunShardedBasis is RunSharded with the solver's dense-basis kill switch
// exposed, so the BenchmarkShardedCycleLU* pair can pin the sparse LU engine
// against the historical dense inverse on the same scenario.
func RunShardedBasis(c *cluster.Cluster, mix workload.Mix, seed int64, sc Scale, shards int, dense bool) (metrics.Summary, core.ShardStats, error) {
	jobs, err := workload.Generate(mix, c, seed)
	if err != nil {
		return metrics.Summary{}, core.ShardStats{}, err
	}
	sched := core.New(c, core.Config{
		CyclePeriod: sc.CyclePeriod, PlanAhead: sc.PlanAhead,
		SolverTimeLimit: sc.SolverTimeLimit, SolverWorkers: sc.SolverWorkers,
		Shards: shards, DenseBasis: dense,
	})
	plan := rayon.NewPlan(c.N(), sc.CyclePeriod)
	res, err := sim.Run(sim.Config{
		Cluster: c, Jobs: jobs, Scheduler: sched, Plan: plan, CyclePeriod: sc.CyclePeriod,
	})
	if err != nil {
		return metrics.Summary{}, core.ShardStats{}, fmt.Errorf("%d shards seed %d: %w", shards, seed, err)
	}
	if res.Stalled {
		return metrics.Summary{}, core.ShardStats{}, fmt.Errorf("%d shards seed %d: simulation stalled", shards, seed)
	}
	return metrics.Summarize(sched.Name(), res, c.N()), sched.ShardStatsSnapshot(), nil
}

// RC10K builds the sharding experiment's cluster: 128 racks of 80 nodes
// (10240 total), the leading 32 racks GPU-labeled (the same 25% ratio as the
// paper's RC80/RC256 heterogeneous variants).
func RC10K() *cluster.Cluster {
	b := cluster.NewBuilder()
	for r := 0; r < 128; r++ {
		var attrs map[string]string
		if r < 32 {
			k, v := cluster.GPUAttr()
			attrs = map[string]string{k: v}
		}
		b.AddRack(fmt.Sprintf("r%d", r), 80, attrs)
	}
	return b.Build()
}
