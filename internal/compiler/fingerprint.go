package compiler

import (
	"math"
	"sort"
)

// This file computes cross-cycle component fingerprints for the scheduler's
// incremental reuse cache (docs/SOLVER.md "Incremental scheduling").
//
// Two compilations of the same job set may replay a cached sub-solution only
// when every input the sub-solve reads is identical, so the fingerprint must
// cover (a) the component's model mathematics and (b) everything the
// GreedyRound incumbent heuristic consumes beyond the model: the per-leaf
// lowering records and the availability ledger of every partition group the
// component touches. Variable and constraint names are excluded — they embed
// batch positions and global group numbers, both of which shift when
// unrelated jobs come and go even though the component's own math is
// unchanged. For the same reason partition-group indices are renumbered by
// first appearance within the component before hashing.

// fnv64 is an inline FNV-1a accumulator (hash/fnv forces a []byte round trip
// per write; the fingerprint is on the per-cycle hot path).
type fnv64 uint64

const (
	fnvOffset fnv64 = 14695981039346656037
	fnvPrime  fnv64 = 1099511628211
)

func (h *fnv64) u64(v uint64) {
	x := *h
	for i := 0; i < 8; i++ {
		x ^= fnv64(v & 0xff)
		x *= fnvPrime
		v >>= 8
	}
	*h = x
}

func (h *fnv64) i64(v int64)   { h.u64(uint64(v)) }
func (h *fnv64) f64(v float64) { h.u64(math.Float64bits(v)) }
func (h *fnv64) bool(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// HashInts folds a slice of ints (e.g. a component's job IDs) into a key.
func HashInts(vals []int) uint64 {
	h := fnvOffset
	h.i64(int64(len(vals)))
	for _, v := range vals {
		h.i64(int64(v))
	}
	return uint64(h)
}

// HashFloatsInto folds a float vector into an existing fingerprint; a nil
// vector hashes differently from an empty or zero one, so "no seed" and
// "all-zero seed" produce distinct fingerprints.
func HashFloatsInto(fp uint64, vec []float64) uint64 {
	h := fnv64(fp)
	if vec == nil {
		h.i64(-1)
		return uint64(h)
	}
	h.i64(int64(len(vec)))
	for _, v := range vec {
		h.f64(v)
	}
	return uint64(h)
}

// ComponentFingerprint returns a canonical digest of everything a component
// sub-solve reads: the sliced model's mathematics (variable types, bounds and
// objective coefficients; constraint operators, right-hand sides and term
// lists, in emission order) plus the GreedyRound inputs — each job's leaf
// records (shape, k, start, dur, value, culled/single flags) and the
// availability row of every partition group those leaves reference. Equal
// fingerprints across cycles mean the sub-solve would run on byte-identical
// inputs, so its prior solution can be replayed verbatim.
func (c *Compiled) ComponentFingerprint(cc *Component) uint64 {
	if cc.fpSet {
		return cc.fp
	}
	h := fnvOffset
	m := cc.Model
	h.i64(int64(m.Sense))
	h.i64(int64(m.NumVars()))
	for i := range m.Vars {
		v := &m.Vars[i]
		h.i64(int64(v.Type))
		h.f64(v.Lb)
		h.f64(v.Ub)
		h.f64(v.Obj)
	}
	h.i64(int64(len(m.Cons)))
	for i := range m.Cons {
		con := &m.Cons[i]
		h.i64(int64(con.Op))
		h.f64(con.RHS)
		h.i64(int64(len(con.Terms)))
		for _, t := range con.Terms {
			h.i64(int64(t.Var))
			h.f64(t.Coef)
		}
	}

	// Heuristic state: leaf records in compilation order, restricted to the
	// component's jobs (jobs hashed by position within the component, not by
	// batch index), with group indices renumbered by first appearance. The
	// first reference to a group also hashes its availability row — capacity
	// changes anywhere the component can place work invalidate the print.
	pos := make(map[int]int, len(cc.Jobs))
	for i, j := range cc.Jobs {
		pos[j] = i
	}
	renum := make(map[int]int)
	group := func(g int) {
		ci, seen := renum[g]
		if !seen {
			ci = len(renum)
			renum[g] = ci
			h.bool(true)
			row := c.avail[g]
			h.i64(int64(len(row)))
			for _, n := range row {
				h.i64(n)
			}
		} else {
			h.bool(false)
		}
		h.i64(int64(ci))
	}
	for _, rec := range c.leaves {
		p, ok := pos[rec.job]
		if !ok {
			continue
		}
		h.i64(int64(p))
		h.bool(rec.linear)
		h.bool(rec.single)
		h.bool(rec.culled)
		h.i64(int64(rec.k))
		h.i64(rec.start)
		h.i64(rec.dur)
		h.f64(leafValue(rec.expr))
		if rec.culled {
			continue
		}
		if rec.single {
			group(rec.group)
		} else {
			h.i64(int64(len(rec.parts)))
			for _, pv := range rec.parts {
				group(pv.group)
			}
		}
	}
	cc.fp, cc.fpSet = uint64(h), true
	return cc.fp
}

// ComponentGroups returns the partition-group indices referenced by the
// component's non-culled leaves, ascending. The scheduler uses it to decide
// whether a node whose release slice moved can affect this component.
func (c *Compiled) ComponentGroups(cc *Component) []int {
	in := make(map[int]bool, len(cc.Jobs))
	for _, j := range cc.Jobs {
		in[j] = true
	}
	seen := make(map[int]bool)
	for _, rec := range c.leaves {
		if !in[rec.job] || rec.culled {
			continue
		}
		if rec.single {
			seen[rec.group] = true
		} else {
			for _, pv := range rec.parts {
				seen[pv.group] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}
