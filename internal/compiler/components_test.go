package compiler

import (
	"math"
	"testing"

	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

// blockJobs builds nBlocks disjoint 3-node blocks with two competing jobs
// each (K=2 on 3 nodes forces a binding supply row, so jobs within a block
// stay coupled while blocks never touch).
func blockJobs(n, nBlocks int) []strl.Expr {
	var jobs []strl.Expr
	for b := 0; b < nBlocks; b++ {
		blk := set(n, 3*b, 3*b+1, 3*b+2)
		for j := 0; j < 2; j++ {
			jobs = append(jobs, &strl.Max{Kids: []strl.Expr{
				&strl.NCk{Set: blk, K: 2, Start: 0, Dur: 2, Value: 10},
				&strl.NCk{Set: blk, K: 2, Start: 1, Dur: 2, Value: 8},
				&strl.NCk{Set: blk, K: 2, Start: 2, Dur: 2, Value: 6},
			}})
		}
	}
	return jobs
}

// TestDecomposeDisjointBlocks is the acceptance-criterion detection test: a
// batch of jobs over pairwise-disjoint equivalence sets must split into
// exactly one component per block, each carrying its own jobs and a
// consistently remapped sub-model.
func TestDecomposeDisjointBlocks(t *testing.T) {
	const nBlocks = 4
	n := 3 * nBlocks
	jobs := blockJobs(n, nBlocks)
	c, err := Compile(jobs, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	comps := c.Components()
	if len(comps) != nBlocks {
		t.Fatalf("got %d components, want %d", len(comps), nBlocks)
	}
	seen := make(map[int]bool)
	for ci, cc := range comps {
		if len(cc.Jobs) != 2 {
			t.Errorf("component %d has jobs %v, want 2 jobs", ci, cc.Jobs)
		}
		for _, j := range cc.Jobs {
			if seen[j] {
				t.Errorf("job %d appears in more than one component", j)
			}
			seen[j] = true
		}
		if cc.VarMap == nil {
			t.Fatalf("component %d of a decomposed batch has identity VarMap", ci)
		}
		if len(cc.VarMap) != cc.Model.NumVars() {
			t.Fatalf("component %d: VarMap len %d != %d vars", ci, len(cc.VarMap), cc.Model.NumVars())
		}
		// The remap must preserve variable identity: same name, type, bounds,
		// and objective as the parent variable it stands for.
		for sv, fv := range cc.VarMap {
			want := c.Model.Vars[fv]
			got := cc.Model.Vars[sv]
			if got != want {
				t.Fatalf("component %d var %d: %+v != parent var %d %+v", ci, sv, got, fv, want)
			}
		}
	}
	if len(seen) != len(jobs) {
		t.Errorf("components cover %d jobs, want %d", len(seen), len(jobs))
	}
}

// TestDecomposeContendedBatchStaysWhole pins the zero-copy single-component
// path: jobs coupled through a binding supply row must come back as one
// component wrapping the original model.
func TestDecomposeContendedBatchStaysWhole(t *testing.T) {
	jobs := blockJobs(3, 1) // two jobs on the same 3-node block
	c, err := Compile(jobs, Options{Universe: 3, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	comps := c.Components()
	if len(comps) != 1 {
		t.Fatalf("got %d components, want 1", len(comps))
	}
	if comps[0].Model != c.Model {
		t.Error("single component should reuse the original model, not a copy")
	}
	if comps[0].VarMap != nil {
		t.Error("single component should have the identity VarMap")
	}
	if len(comps[0].Jobs) != 2 {
		t.Errorf("single component jobs = %v, want both", comps[0].Jobs)
	}
}

// TestDecomposeSliceParity solves each component independently and checks the
// lifted union is feasible for the full model with the same total objective
// as the monolithic solve — decomposition must be lossless.
func TestDecomposeSliceParity(t *testing.T) {
	const nBlocks = 3
	n := 3 * nBlocks
	jobs := blockJobs(n, nBlocks)
	c, err := Compile(jobs, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mono := solve(t, c)
	comps := c.Components()
	if len(comps) != nBlocks {
		t.Fatalf("got %d components, want %d", len(comps), nBlocks)
	}
	full := make([]float64, c.Model.NumVars())
	sum := 0.0
	for ci, cc := range comps {
		sub, err := milp.Solve(cc.Model, milp.Options{})
		if err != nil {
			t.Fatalf("component %d solve: %v", ci, err)
		}
		if sub.Status != milp.StatusOptimal {
			t.Fatalf("component %d status = %v", ci, sub.Status)
		}
		sum += sub.Objective
		cc.Lift(sub.Values, full)
	}
	if math.Abs(sum-mono.Objective) > 1e-6 {
		t.Errorf("component objective sum %v != monolithic %v", sum, mono.Objective)
	}
	if !c.Model.IsFeasible(full, 1e-6) {
		t.Error("lifted union of component optima is infeasible for the full model")
	}
	if got := c.Model.ObjectiveValue(full); math.Abs(got-mono.Objective) > 1e-6 {
		t.Errorf("lifted union objective %v != monolithic %v", got, mono.Objective)
	}
}

// TestDecomposeComponentGreedyRound checks the component-scoped heuristic
// produces candidates in component variable space that the sub-model accepts.
func TestDecomposeComponentGreedyRound(t *testing.T) {
	const nBlocks = 3
	n := 3 * nBlocks
	c, err := Compile(blockJobs(n, nBlocks), Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for ci, cc := range c.Components() {
		relax := make([]float64, cc.Model.NumVars()) // all-zero LP point
		cand := cc.GreedyRound(relax)
		if cand == nil {
			t.Fatalf("component %d: GreedyRound returned nil", ci)
		}
		if len(cand) != cc.Model.NumVars() {
			t.Fatalf("component %d: candidate has %d entries for %d vars", ci, len(cand), cc.Model.NumVars())
		}
		if !cc.Model.IsFeasible(cand, 1e-6) {
			t.Errorf("component %d: greedy candidate infeasible for sub-model", ci)
		}
		if cc.Model.ObjectiveValue(cand) <= 0 {
			t.Errorf("component %d: greedy candidate has non-positive objective", ci)
		}
	}
}

// TestDecomposeRestrictLiftRoundTrip pins the embedding algebra.
func TestDecomposeRestrictLiftRoundTrip(t *testing.T) {
	n := 6
	c, err := Compile(blockJobs(n, 2), Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	comps := c.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	full := make([]float64, c.Model.NumVars())
	for i := range full {
		full[i] = float64(i) + 0.5
	}
	rebuilt := make([]float64, len(full))
	for _, cc := range comps {
		cc.Lift(cc.Restrict(full), rebuilt)
	}
	for i := range full {
		if rebuilt[i] != full[i] {
			t.Fatalf("var %d: restrict∘lift = %v, want %v", i, rebuilt[i], full[i])
		}
	}
	if comps[0].Restrict(nil) != nil {
		t.Error("Restrict(nil) should be nil")
	}
}
