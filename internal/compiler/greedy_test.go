package compiler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

func TestGreedyRoundProducesFeasibleIncumbent(t *testing.T) {
	n := 6
	gpus := set(n, 0, 1, 2)
	jobs := []strl.Expr{
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: gpus, K: 3, Start: 0, Dur: 2, Value: 100},
			&strl.NCk{Set: full(n), K: 3, Start: 0, Dur: 3, Value: 80},
		}},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: gpus, K: 3, Start: 0, Dur: 2, Value: 100},
			&strl.NCk{Set: gpus, K: 3, Start: 2, Dur: 2, Value: 99},
			&strl.NCk{Set: full(n), K: 3, Start: 0, Dur: 3, Value: 80},
		}},
	}
	c, err := Compile(jobs, Options{Universe: n, Horizon: 5})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Feed a fabricated "relaxation" that half-prefers every GPU branch.
	x := make([]float64, c.Model.NumVars())
	for i := range x {
		x[i] = 0.5
	}
	cand := c.GreedyRound(x)
	if cand == nil {
		t.Fatal("GreedyRound returned nil on satisfiable instance")
	}
	if !c.Model.IsFeasible(cand, 1e-6) {
		t.Fatalf("GreedyRound candidate infeasible")
	}
	if obj := c.Model.ObjectiveValue(cand); obj < 179 {
		// Both jobs schedulable: one on GPUs now, one elsewhere or deferred.
		t.Errorf("greedy objective = %v, want ≥ 179", obj)
	}
}

func TestGreedyRoundSkipsUnroundableShapes(t *testing.T) {
	n := 4
	jobs := []strl.Expr{
		&strl.Min{Kids: []strl.Expr{
			&strl.NCk{Set: set(n, 0, 1), K: 1, Start: 0, Dur: 1, Value: 5},
			&strl.NCk{Set: set(n, 2, 3), K: 1, Start: 0, Dur: 1, Value: 5},
		}},
		&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 1, Value: 3},
	}
	c, err := Compile(jobs, Options{Universe: n, Horizon: 2})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	x := make([]float64, c.Model.NumVars())
	cand := c.GreedyRound(x)
	// The MIN job is skipped; the plain nCk is granted.
	if cand == nil {
		t.Fatal("expected a candidate covering the roundable job")
	}
	if !c.Model.IsFeasible(cand, 1e-6) {
		t.Fatalf("candidate infeasible")
	}
	if obj := c.Model.ObjectiveValue(cand); math.Abs(obj-3) > 1e-9 {
		t.Errorf("objective = %v, want 3 (nCk only)", obj)
	}
}

func TestGreedyRoundRespectsCapacity(t *testing.T) {
	n := 3
	// Three jobs each wanting 2 of 3 nodes at t=0: only one fits.
	var jobs []strl.Expr
	for i := 0; i < 3; i++ {
		jobs = append(jobs, &strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 1, Value: 1})
	}
	c, err := Compile(jobs, Options{Universe: n, Horizon: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	x := make([]float64, c.Model.NumVars())
	cand := c.GreedyRound(x)
	if cand == nil {
		t.Fatal("nil candidate")
	}
	if !c.Model.IsFeasible(cand, 1e-6) {
		t.Fatalf("candidate violates supply")
	}
	if obj := c.Model.ObjectiveValue(cand); math.Abs(obj-1) > 1e-9 {
		t.Errorf("objective = %v, want exactly 1", obj)
	}
}

// TestSolveWithHeuristicMatchesExact: plugging the heuristic into the solver
// must not change optimality on exactly-solved instances.
func TestSolveWithHeuristicMatchesExact(t *testing.T) {
	n := 4
	gpus := set(n, 0, 1)
	jobs := []strl.Expr{
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: gpus, K: 2, Start: 0, Dur: 2, Value: 4},
			&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 3, Value: 3},
		}},
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: gpus, K: 2, Start: 0, Dur: 2, Value: 4},
			&strl.NCk{Set: gpus, K: 2, Start: 2, Dur: 2, Value: 3.9},
			&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 3, Value: 3},
		}},
	}
	c, err := Compile(jobs, Options{Universe: n, Horizon: 5})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	exact, err := milp.Solve(c.Model, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	withH, err := milp.Solve(c.Model, milp.Options{Heuristic: c.GreedyRound})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Objective-withH.Objective) > 1e-6 {
		t.Errorf("heuristic changed the optimum: %v vs %v", withH.Objective, exact.Objective)
	}
}

// TestQuickSeedGrantFeasibility: for any compiled batch, granting any single
// non-culled leaf via SeedGrant + InitialVector yields a model-feasible
// point — the invariant the scheduler's warm start relies on.
func TestQuickSeedGrantFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		horizon := int64(1 + r.Intn(4))
		var jobs []strl.Expr
		for j := 0; j < 1+r.Intn(3); j++ {
			jobs = append(jobs, randomJob(r, n, horizon))
		}
		var rel []int64
		if r.Intn(2) == 0 {
			rel = make([]int64, n)
			for i := range rel {
				rel[i] = int64(r.Intn(3))
			}
		}
		c, err := Compile(jobs, Options{Universe: n, Horizon: horizon, ReleaseAt: rel})
		if err != nil {
			return true // structurally invalid random job; skip
		}
		for _, job := range jobs {
			if !roundable(job) {
				// Partial grants under MIN subtrees are outside
				// InitialVector's contract (see its doc comment).
				continue
			}
			for _, l := range strl.Leaves(job) {
				g, ok := c.SeedGrant(l)
				if !ok {
					continue
				}
				vec, ok := c.InitialVector([]LeafGrant{g})
				if !ok {
					continue // e.g. min-sibling culled; acceptable
				}
				if !c.Model.IsFeasible(vec, 1e-6) {
					t.Logf("seed %d: single-leaf seed infeasible for %s", seed, l)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
