package compiler

import (
	"sort"

	"tetrisched/internal/strl"
)

// GreedyRound converts an LP relaxation point into an integral candidate by
// walking jobs in decreasing LP preference and granting each its
// highest-scoring feasible option against a running capacity ledger. It is
// handed to the MILP solver as the incumbent heuristic: structure-aware
// rounding is orders of magnitude cheaper than generic LP dives and gives
// the branch-and-bound search strong incumbents, which is what lets
// gap-based termination stop early (§3.2.2).
//
// Jobs whose expressions are not a single nCk or a MAX over nCk leaves (the
// shapes the STRL generator emits) are skipped; the solver re-validates the
// returned point, so this is purely a heuristic.
func (c *Compiled) GreedyRound(x []float64) []float64 {
	return c.greedyRoundJobs(x, nil)
}

// greedyRoundJobs rounds on behalf of a subset of the batch's jobs (nil means
// all of them); component sub-solves restrict the walk to their own jobs so a
// candidate never claims capacity a different component's solve is entitled
// to. x and the returned vector are in full-model variable space.
func (c *Compiled) greedyRoundJobs(x []float64, jobs []int) []float64 {
	// Remaining capacity ledger per (group, slice).
	remain := make([][]int64, len(c.avail))
	for g := range c.avail {
		remain[g] = append([]int64(nil), c.avail[g]...)
	}

	if jobs == nil {
		jobs = make([]int, len(c.jobs))
		for i := range jobs {
			jobs[i] = i
		}
	}

	// Group leaves by job, keeping only greedy-roundable jobs.
	perJob := make([][]*leafRecord, len(c.jobs))
	for _, j := range jobs {
		expr := c.jobs[j]
		if !roundable(expr) {
			continue
		}
		for _, l := range strl.Leaves(expr) {
			rec := c.byExpr[l]
			if rec != nil && !rec.culled {
				perJob[j] = append(perJob[j], rec)
			}
		}
	}

	// Job order: LP job-indicator value descending (stable on index).
	order := append([]int(nil), jobs...)
	sort.SliceStable(order, func(a, b int) bool {
		return x[c.jobInd[order[a]]] > x[c.jobInd[order[b]]]
	})

	var grants []LeafGrant
	for _, j := range order {
		recs := perJob[j]
		if len(recs) == 0 {
			continue
		}
		// Option order: LP indicator value, then STRL value, descending.
		sort.SliceStable(recs, func(a, b int) bool {
			xa, xb := x[recs[a].ind], x[recs[b].ind]
			if xa != xb {
				return xa > xb
			}
			return leafValue(recs[a].expr) > leafValue(recs[b].expr)
		})
		for _, rec := range recs {
			if g, ok := c.tryGrant(rec, remain); ok {
				grants = append(grants, g)
				break
			}
		}
	}
	if len(grants) == 0 {
		return nil
	}
	vec, ok := c.InitialVector(grants)
	if !ok {
		return nil
	}
	return vec
}

// roundable reports whether the job expression has the generator's shape.
func roundable(e strl.Expr) bool {
	switch n := e.(type) {
	case *strl.NCk:
		return true
	case *strl.Max:
		for _, k := range n.Kids {
			if _, ok := k.(*strl.NCk); !ok {
				return false
			}
		}
		return true
	}
	return false
}

func leafValue(e strl.Expr) float64 {
	switch l := e.(type) {
	case *strl.NCk:
		return l.Value
	case *strl.LnCk:
		return l.Value
	}
	return 0
}

// tryGrant attempts to satisfy the leaf's full k from the remaining
// capacity, committing the usage on success.
func (c *Compiled) tryGrant(rec *leafRecord, remain [][]int64) (LeafGrant, bool) {
	s, e, ok := c.slices(rec.start, rec.dur)
	if !ok {
		return LeafGrant{}, false
	}
	groups := []int{rec.group}
	if !rec.single {
		groups = groups[:0]
		for _, pv := range rec.parts {
			groups = append(groups, pv.group)
		}
	}
	counts := map[int]int{}
	need := rec.k
	for _, g := range groups {
		if need == 0 {
			break
		}
		avail := int64(1) << 62
		for t := s; t < e; t++ {
			if remain[g][t] < avail {
				avail = remain[g][t]
			}
		}
		take := int(avail)
		if take > need {
			take = need
		}
		if take > 0 {
			counts[g] = take
			need -= take
		}
	}
	if need > 0 {
		return LeafGrant{}, false
	}
	for g, cnt := range counts {
		for t := s; t < e; t++ {
			remain[g][t] -= int64(cnt)
		}
	}
	return LeafGrant{
		Job: rec.job, Leaf: rec.expr, Start: rec.start, Dur: rec.dur,
		Counts: counts, Total: rec.k,
	}, true
}
