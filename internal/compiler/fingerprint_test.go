package compiler

import (
	"testing"
)

// TestRestrictSeedNilOnEmptySupport pins the seed-projection contract: a
// component outside the seed's support gets nil (no seed), not an all-zero
// vector the solver would mistake for a warm incumbent.
func TestRestrictSeedNilOnEmptySupport(t *testing.T) {
	n := 6
	c, err := Compile(blockJobs(n, 2), Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	comps := c.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	// Seed the full vector only inside component 0's variables.
	full := make([]float64, c.Model.NumVars())
	full[comps[0].VarMap[0]] = 1
	if got := comps[0].RestrictSeed(full); got == nil {
		t.Error("component holding the seed's support got a nil projection")
	}
	if got := comps[1].RestrictSeed(full); got != nil {
		t.Errorf("component outside the seed's support got %v, want nil", got)
	}
	if got := comps[1].Restrict(full); got == nil {
		t.Error("plain Restrict must still return the (zero) projection")
	}
	if got := comps[0].RestrictSeed(nil); got != nil {
		t.Errorf("RestrictSeed(nil) = %v, want nil", got)
	}
}

// TestComponentFingerprintStable: recompiling the identical batch yields the
// identical fingerprint per component — the property replay depends on.
func TestComponentFingerprintStable(t *testing.T) {
	n := 9
	rel := make([]int64, n)
	rel[0] = 1
	compile := func() *Compiled {
		c, err := Compile(blockJobs(n, 3), Options{Universe: n, Horizon: 4, ReleaseAt: rel})
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return c
	}
	a, b := compile(), compile()
	ca, cb := a.Components(), b.Components()
	if len(ca) != len(cb) {
		t.Fatalf("component counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		fa, fb := a.ComponentFingerprint(ca[i]), b.ComponentFingerprint(cb[i])
		if fa != fb {
			t.Errorf("component %d: fingerprints differ across identical compilations (%x vs %x)", i, fa, fb)
		}
	}
}

// TestComponentFingerprintBatchPositionInvariant: a component's fingerprint
// must not depend on where its jobs sit in the batch or on global group
// numbering — unrelated arrivals elsewhere in the cluster shift both, and the
// whole point of the cache is surviving them.
func TestComponentFingerprintBatchPositionInvariant(t *testing.T) {
	n := 9
	// Batch A: blocks 0,1,2. Batch B: only block 2's jobs (the block-2 jobs
	// drop from batch positions 4,5 to 0,1 and their group loses its global
	// numbering neighbors).
	full, err := Compile(blockJobs(n, 3), Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile full: %v", err)
	}
	solo, err := Compile(blockJobs(n, 3)[4:6], Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile solo: %v", err)
	}
	fullComps := full.Components()
	if len(fullComps) != 3 {
		t.Fatalf("full batch: %d components, want 3", len(fullComps))
	}
	soloComps := solo.Components()
	if len(soloComps) != 1 {
		t.Fatalf("solo batch: %d components, want 1", len(soloComps))
	}
	fa := full.ComponentFingerprint(fullComps[2])
	fb := solo.ComponentFingerprint(soloComps[0])
	if fa != fb {
		t.Errorf("block-2 component fingerprints differ with batch position (%x vs %x); names or global numbering leaked in", fa, fb)
	}
}

// TestComponentFingerprintSensitivity: inputs a sub-solve actually reads —
// release slices under the component's nodes, leaf values, and the seed
// vector (including nil vs all-zero) — must each move the fingerprint.
func TestComponentFingerprintSensitivity(t *testing.T) {
	n := 6
	base, err := Compile(blockJobs(n, 2), Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	baseComps := base.Components()
	fp0 := base.ComponentFingerprint(baseComps[0])
	fp1 := base.ComponentFingerprint(baseComps[1])

	// A release-slice change under block 0 moves component 0's print (its
	// availability ledger changed) but not component 1's.
	rel := make([]int64, n)
	rel[0] = 2
	shifted, err := Compile(blockJobs(n, 2), Options{Universe: n, Horizon: 4, ReleaseAt: rel})
	if err != nil {
		t.Fatalf("compile shifted: %v", err)
	}
	shiftedComps := shifted.Components()
	if got := shifted.ComponentFingerprint(shiftedComps[0]); got == fp0 {
		t.Error("release change under the component did not move its fingerprint")
	}
	if got := shifted.ComponentFingerprint(shiftedComps[1]); got != fp1 {
		t.Error("release change under block 0 moved block 1's fingerprint")
	}

	// Seed folding: nil, empty, and zero vectors are all distinct.
	zero := make([]float64, 4)
	if HashFloatsInto(fp0, nil) == HashFloatsInto(fp0, zero) {
		t.Error("nil seed hashes like an all-zero seed")
	}
	if HashFloatsInto(fp0, nil) == HashFloatsInto(fp0, []float64{}) {
		t.Error("nil seed hashes like an empty seed")
	}
	if HashFloatsInto(fp0, zero) == HashFloatsInto(fp0, []float64{0, 0, 0, 1}) {
		t.Error("seed contents do not move the hash")
	}
}
