package compiler

import (
	"tetrisched/internal/milp"
)

// Component is one independent sub-problem of a compiled batch: a maximal set
// of jobs whose variables are transitively connected through shared
// constraints. Jobs land in the same component exactly when some constraint —
// in practice a supply row over a (group, slice) cell both compete for —
// couples their variables; jobs whose candidate leaves touch disjoint node
// groups across the whole plan-ahead window (or whose shared supply rows were
// dropped as non-binding) end up in different components and can be solved as
// separate, much smaller MILPs with no loss of optimality.
//
// The detection is driven by the emitted constraints rather than the
// job↔equivalence-group structure alone, so presolve effects (culled leaves,
// dropped non-binding supply rows) decouple jobs that a purely structural
// analysis would still consider connected.
type Component struct {
	// Jobs holds the batch indices of this component's jobs, ascending.
	Jobs []int
	// Model is the component's MILP. For a single-component batch it is the
	// parent's model itself (zero-copy); otherwise a sliced copy.
	Model *milp.Model
	// VarMap maps each component variable index to its index in the parent
	// model. Nil means the identity mapping (single-component case).
	VarMap []int

	parent *Compiled
}

// Components partitions the compiled batch into independently solvable
// sub-MILPs. It returns one Component per connected component of the
// variable↔constraint graph, ordered by each component's smallest job index
// (so the result is deterministic for a given model). A batch that does not
// decompose returns a single Component wrapping the original model.
func (c *Compiled) Components() []*Component {
	nj := len(c.jobs)
	if nj == 0 {
		return nil
	}
	nv := c.Model.NumVars()
	// varJob[v] = owning job; variables are created per-job contiguously.
	varJob := make([]int, nv)
	for j := 0; j < nj; j++ {
		hi := nv
		if j+1 < nj {
			hi = c.jobVarLo[j+1]
		}
		for v := c.jobVarLo[j]; v < hi; v++ {
			varJob[v] = j
		}
	}

	// Union-find over jobs: every constraint ties together the jobs of all
	// variables it mentions.
	uf := make([]int, nj)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]] // path halving
			x = uf[x]
		}
		return x
	}
	for _, con := range c.Model.Cons {
		if len(con.Terms) < 2 {
			continue
		}
		a := find(varJob[con.Terms[0].Var])
		for _, t := range con.Terms[1:] {
			b := find(varJob[t.Var])
			if a != b {
				uf[b] = a
			}
		}
	}

	// Group jobs by root, numbering components by first appearance so the
	// output order is stable.
	compOf := make([]int, nj)
	var jobSets [][]int
	index := make(map[int]int, nj)
	for j := 0; j < nj; j++ {
		r := find(j)
		ci, ok := index[r]
		if !ok {
			ci = len(jobSets)
			index[r] = ci
			jobSets = append(jobSets, nil)
		}
		compOf[j] = ci
		jobSets[ci] = append(jobSets[ci], j)
	}
	if len(jobSets) == 1 {
		return []*Component{{Jobs: jobSets[0], Model: c.Model, parent: c}}
	}

	// Slice the parent model per component. full2sub is reused across
	// components and reset via each component's VarMap afterwards.
	full2sub := make([]int, nv)
	for i := range full2sub {
		full2sub[i] = -1
	}
	out := make([]*Component, len(jobSets))
	for ci, jobs := range jobSets {
		cc := &Component{Jobs: jobs, parent: c}
		sub := milp.NewModel(c.Model.Sense)
		for _, j := range jobs {
			hi := nv
			if j+1 < nj {
				hi = c.jobVarLo[j+1]
			}
			for v := c.jobVarLo[j]; v < hi; v++ {
				full2sub[v] = len(cc.VarMap)
				cc.VarMap = append(cc.VarMap, v)
				fv := c.Model.Vars[v]
				sub.AddVar(fv.Name, fv.Type, fv.Lb, fv.Ub, fv.Obj)
			}
		}
		for _, con := range c.Model.Cons {
			if len(con.Terms) == 0 || compOf[varJob[con.Terms[0].Var]] != ci {
				continue
			}
			// All of the constraint's variables belong to this component by
			// construction of the union-find.
			terms := make([]milp.Term, len(con.Terms))
			for i, t := range con.Terms {
				terms[i] = milp.Term{Var: milp.VarID(full2sub[t.Var]), Coef: t.Coef}
			}
			sub.Cons = append(sub.Cons, milp.Constraint{Name: con.Name, Terms: terms, Op: con.Op, RHS: con.RHS})
		}
		cc.Model = sub
		out[ci] = cc
		for _, v := range cc.VarMap {
			full2sub[v] = -1
		}
	}
	return out
}

// Lift scatters a component-space vector into a full-model vector (entries
// outside the component are left untouched).
func (cc *Component) Lift(sub, full []float64) {
	if cc.VarMap == nil {
		copy(full, sub)
		return
	}
	for i, fv := range cc.VarMap {
		full[fv] = sub[i]
	}
}

// Restrict projects a full-model vector onto the component's variables. Nil
// in, nil out.
func (cc *Component) Restrict(full []float64) []float64 {
	if full == nil {
		return nil
	}
	if cc.VarMap == nil {
		out := make([]float64, len(full))
		copy(out, full)
		return out
	}
	out := make([]float64, len(cc.VarMap))
	for i, fv := range cc.VarMap {
		out[i] = full[fv]
	}
	return out
}

// RestrictSeed projects a full-model warm-start vector onto the component,
// returning nil when the projection has no nonzero entry. Unlike Restrict, a
// support-free projection means "this component has no seed": handing the
// solver an all-zero vector would both plant a spurious zero-value incumbent
// in a sub-solve the seed never covered and let telemetry count it as a warm
// start.
func (cc *Component) RestrictSeed(full []float64) []float64 {
	out := cc.Restrict(full)
	for _, v := range out {
		if v != 0 {
			return out
		}
	}
	return nil
}

// GreedyRound is the component-space analogue of Compiled.GreedyRound: it
// rounds an LP relaxation point of the component model into an integral
// candidate covering only this component's jobs. Safe for concurrent use,
// like the full-model version, so each concurrent sub-solve can carry its
// own heuristic.
func (cc *Component) GreedyRound(x []float64) []float64 {
	if cc.VarMap == nil {
		return cc.parent.GreedyRound(x)
	}
	full := make([]float64, cc.parent.Model.NumVars())
	cc.Lift(x, full)
	fx := cc.parent.greedyRoundJobs(full, cc.Jobs)
	if fx == nil {
		return nil
	}
	return cc.Restrict(fx)
}
