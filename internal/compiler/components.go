package compiler

import (
	"tetrisched/internal/milp"
)

// Component is one independent sub-problem of a compiled batch: a maximal set
// of jobs whose variables are transitively connected through shared
// constraints. Jobs land in the same component exactly when some constraint —
// in practice a supply row over a (group, slice) cell both compete for —
// couples their variables; jobs whose candidate leaves touch disjoint node
// groups across the whole plan-ahead window (or whose shared supply rows were
// dropped as non-binding) end up in different components and can be solved as
// separate, much smaller MILPs with no loss of optimality.
//
// The detection is driven by the emitted constraints rather than the
// job↔equivalence-group structure alone, so presolve effects (culled leaves,
// dropped non-binding supply rows) decouple jobs that a purely structural
// analysis would still consider connected.
type Component struct {
	// Jobs holds the batch indices of this component's jobs, ascending.
	Jobs []int
	// Model is the component's MILP. For a single-component batch it is the
	// parent's model itself (zero-copy); otherwise a sliced copy.
	Model *milp.Model
	// VarMap maps each component variable index to its index in the parent
	// model. Nil means the identity mapping (single-component case).
	VarMap []int
	// Shard is the forced-partition class this component belongs to when the
	// decomposition was produced by ForcedComponents, or -1 for the natural
	// decomposition of Components. Observability only; the solver ignores it.
	Shard int

	parent *Compiled

	// fp memoizes ComponentFingerprint. The component and its parent are
	// immutable once built, so the print is computed at most once even when
	// the compile cache carries the component across many cycles.
	fp    uint64
	fpSet bool
}

// Components partitions the compiled batch into independently solvable
// sub-MILPs. It returns one Component per connected component of the
// variable↔constraint graph, ordered by each component's smallest job index
// (so the result is deterministic for a given model). A batch that does not
// decompose returns a single Component wrapping the original model.
func (c *Compiled) Components() []*Component {
	return c.components(nil, -1)
}

// ForcedComponents is Components under an externally imposed job partition:
// assign[j] names the class (shard) of batch job j, and jobs in different
// classes are kept in different components even when a shared supply row
// couples them. A shared row that is cut this way is a ≤-row with nonnegative
// coefficients (the only cross-job rows the compiler emits), so each side
// receives a restricted copy — its own terms against the row's full RHS. The
// copies are optimistic: each class plans as if it had the row's whole
// capacity, and the caller is responsible for resolving the resulting
// over-commits when the per-class plans are applied (the sharded scheduler
// does this at commit time; see internal/shard). A cross-class row that is
// not safe to cut (not ≤, or a negative coefficient — none today) falls back
// to coupling its jobs, which merges their classes for this batch and keeps
// the decomposition exact rather than silently unsound.
//
// merge, when ≥ 0, names one class whose jobs are additionally forced into a
// single component regardless of natural connectivity — the sharded
// scheduler's gang arbitrator, which serializes jobs spanning shards through
// one solve. Pass merge < 0 to disable.
//
// Natural connected-component refinement still applies within each class, so
// a one-class assignment reproduces Components exactly.
func (c *Compiled) ForcedComponents(assign []int, merge int) []*Component {
	return c.components(assign, merge)
}

func (c *Compiled) components(assign []int, merge int) []*Component {
	nj := len(c.jobs)
	if nj == 0 {
		return nil
	}
	nv := c.Model.NumVars()
	// varJob[v] = owning job; variables are created per-job contiguously.
	varJob := make([]int, nv)
	for j := 0; j < nj; j++ {
		hi := nv
		if j+1 < nj {
			hi = c.jobVarLo[j+1]
		}
		for v := c.jobVarLo[j]; v < hi; v++ {
			varJob[v] = j
		}
	}

	// Union-find over jobs: every constraint ties together the jobs of all
	// variables it mentions — unless a forced partition cuts it.
	uf := make([]int, nj)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]] // path halving
			x = uf[x]
		}
		return x
	}
	// cut[i] marks parent constraint i as sliced across the forced partition
	// (restricted per-component copies instead of whole-row ownership). Nil
	// when no forced partition is in effect.
	var cut []bool
	for conIdx, con := range c.Model.Cons {
		if len(con.Terms) < 2 {
			continue
		}
		if assign != nil && spansClasses(con.Terms, varJob, assign) && cuttable(con) {
			if cut == nil {
				cut = make([]bool, len(c.Model.Cons))
			}
			cut[conIdx] = true
			continue
		}
		a := find(varJob[con.Terms[0].Var])
		for _, t := range con.Terms[1:] {
			b := find(varJob[t.Var])
			if a != b {
				uf[b] = a
			}
		}
	}
	if assign != nil && merge >= 0 {
		// Force every job of the merge class into one component (the gang
		// arbitrator): spanning gangs plan against each other in a single
		// model instead of optimistically double-booking shared capacity.
		first := -1
		for j := 0; j < nj; j++ {
			if assign[j] != merge {
				continue
			}
			if first < 0 {
				first = j
				continue
			}
			a, b := find(first), find(j)
			if a != b {
				uf[b] = a
			}
		}
	}

	// Group jobs by root, numbering components by first appearance so the
	// output order is stable.
	compOf := make([]int, nj)
	var jobSets [][]int
	index := make(map[int]int, nj)
	for j := 0; j < nj; j++ {
		r := find(j)
		ci, ok := index[r]
		if !ok {
			ci = len(jobSets)
			index[r] = ci
			jobSets = append(jobSets, nil)
		}
		compOf[j] = ci
		jobSets[ci] = append(jobSets[ci], j)
	}
	shardOf := func(jobs []int) int {
		if assign == nil {
			return -1
		}
		return assign[jobs[0]]
	}
	if len(jobSets) == 1 {
		// Zero-copy: with one component every cut row's terms all live here,
		// so the parent model is the component model verbatim.
		return []*Component{{Jobs: jobSets[0], Model: c.Model, Shard: shardOf(jobSets[0]), parent: c}}
	}

	// Slice the parent model per component. full2sub is reused across
	// components and reset via each component's VarMap afterwards.
	full2sub := make([]int, nv)
	for i := range full2sub {
		full2sub[i] = -1
	}
	out := make([]*Component, len(jobSets))
	for ci, jobs := range jobSets {
		cc := &Component{Jobs: jobs, Shard: shardOf(jobs), parent: c}
		sub := milp.NewModel(c.Model.Sense)
		for _, j := range jobs {
			hi := nv
			if j+1 < nj {
				hi = c.jobVarLo[j+1]
			}
			for v := c.jobVarLo[j]; v < hi; v++ {
				full2sub[v] = len(cc.VarMap)
				cc.VarMap = append(cc.VarMap, v)
				fv := c.Model.Vars[v]
				sub.AddVar(fv.Name, fv.Type, fv.Lb, fv.Ub, fv.Obj)
			}
		}
		for conIdx, con := range c.Model.Cons {
			if len(con.Terms) == 0 {
				continue
			}
			if cut != nil && cut[conIdx] {
				c.sliceCutRow(sub, con, full2sub)
				continue
			}
			if compOf[varJob[con.Terms[0].Var]] != ci {
				continue
			}
			// All of the constraint's variables belong to this component by
			// construction of the union-find.
			terms := make([]milp.Term, len(con.Terms))
			for i, t := range con.Terms {
				terms[i] = milp.Term{Var: milp.VarID(full2sub[t.Var]), Coef: t.Coef}
			}
			sub.Cons = append(sub.Cons, milp.Constraint{Name: con.Name, Terms: terms, Op: con.Op, RHS: con.RHS})
		}
		cc.Model = sub
		out[ci] = cc
		for _, v := range cc.VarMap {
			full2sub[v] = -1
		}
	}
	return out
}

// spansClasses reports whether a constraint's terms touch jobs in more than
// one forced-partition class.
func spansClasses(terms []milp.Term, varJob, assign []int) bool {
	first := assign[varJob[terms[0].Var]]
	for _, t := range terms[1:] {
		if assign[varJob[t.Var]] != first {
			return true
		}
	}
	return false
}

// cuttable reports whether slicing a row into per-class restricted copies
// with the full RHS keeps each copy a valid relaxation: only ≤-rows with
// nonnegative coefficients qualify (dropping terms can only loosen them).
func cuttable(con milp.Constraint) bool {
	if con.Op != milp.LE {
		return false
	}
	for _, t := range con.Terms {
		if t.Coef < 0 {
			return false
		}
	}
	return true
}

// sliceCutRow appends this component's restricted copy of a cut cross-class
// row to sub: the terms mapped by full2sub, against the row's full RHS.
// Copies with no local term, or that cannot bind even at every local
// variable's upper bound, are dropped (mirroring the compiler's own
// non-binding supply-row elision).
func (c *Compiled) sliceCutRow(sub *milp.Model, con milp.Constraint, full2sub []int) {
	var terms []milp.Term
	maxUse := 0.0
	for _, t := range con.Terms {
		sv := full2sub[t.Var]
		if sv < 0 {
			continue
		}
		terms = append(terms, milp.Term{Var: milp.VarID(sv), Coef: t.Coef})
		maxUse += t.Coef * c.Model.Vars[t.Var].Ub
	}
	if len(terms) == 0 || maxUse <= con.RHS {
		return
	}
	sub.Cons = append(sub.Cons, milp.Constraint{Name: con.Name, Terms: terms, Op: con.Op, RHS: con.RHS})
}

// Lift scatters a component-space vector into a full-model vector (entries
// outside the component are left untouched).
func (cc *Component) Lift(sub, full []float64) {
	if cc.VarMap == nil {
		copy(full, sub)
		return
	}
	for i, fv := range cc.VarMap {
		full[fv] = sub[i]
	}
}

// Restrict projects a full-model vector onto the component's variables. Nil
// in, nil out.
func (cc *Component) Restrict(full []float64) []float64 {
	if full == nil {
		return nil
	}
	if cc.VarMap == nil {
		out := make([]float64, len(full))
		copy(out, full)
		return out
	}
	out := make([]float64, len(cc.VarMap))
	for i, fv := range cc.VarMap {
		out[i] = full[fv]
	}
	return out
}

// RestrictSeed projects a full-model warm-start vector onto the component,
// returning nil when the projection has no nonzero entry. Unlike Restrict, a
// support-free projection means "this component has no seed": handing the
// solver an all-zero vector would both plant a spurious zero-value incumbent
// in a sub-solve the seed never covered and let telemetry count it as a warm
// start.
func (cc *Component) RestrictSeed(full []float64) []float64 {
	out := cc.Restrict(full)
	for _, v := range out {
		if v != 0 {
			return out
		}
	}
	return nil
}

// GreedyRound is the component-space analogue of Compiled.GreedyRound: it
// rounds an LP relaxation point of the component model into an integral
// candidate covering only this component's jobs. Safe for concurrent use,
// like the full-model version, so each concurrent sub-solve can carry its
// own heuristic.
func (cc *Component) GreedyRound(x []float64) []float64 {
	if cc.VarMap == nil {
		return cc.parent.GreedyRound(x)
	}
	full := make([]float64, cc.parent.Model.NumVars())
	cc.Lift(x, full)
	fx := cc.parent.greedyRoundJobs(full, cc.Jobs)
	if fx == nil {
		return nil
	}
	return cc.Restrict(fx)
}
