// Package compiler translates STRL expressions into MILP models, following
// Algorithm 1 of the TetriSched paper, and decodes solver output back into
// per-leaf resource grants.
//
// Time is discretized: leaf Start/Dur are in scheduling quanta relative to
// the current cycle (start 0 = now), and the plan-ahead window spans slices
// [0, Horizon). Space is reduced by the equivalence-set partitioner: the
// cluster is refined against every equivalence set referenced this cycle, so
// the model tracks integer node *counts* per partition group rather than
// individual machines. Leaves whose set intersects a single group are
// presolved away entirely (their partition variable is exactly k·I), which is
// the dominant case and keeps models small.
package compiler

import (
	"fmt"
	"math"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

// Options configures a compilation.
type Options struct {
	// Universe is the cluster size (node count).
	Universe int
	// Horizon is the number of time slices in the plan-ahead window; leaves
	// must start within [0, Horizon). Occupancy beyond the window is
	// unconstrained, mirroring the paper's bounded plan-ahead.
	Horizon int64
	// ReleaseAt[i] is the slice at which node i becomes free (0 = free now).
	// Nil means every node is free. Entries beyond Horizon keep the node
	// unavailable for the whole window.
	ReleaseAt []int64
	// BusyAt, if non-nil, marks additional per-slice unavailability (e.g.
	// tentative claims made earlier in a greedy scheduling pass). A node is
	// available at slice t iff t ≥ ReleaseAt[n] and !BusyAt(n, t).
	BusyAt func(node int, slice int64) bool
}

// partVar is one integer partition variable: the node count a leaf draws
// from one group.
type partVar struct {
	group int
	id    milp.VarID
}

// leafRecord captures how one STRL leaf was lowered into the model.
type leafRecord struct {
	job    int
	expr   strl.Expr
	linear bool
	k      int
	start  int64
	dur    int64
	ind    milp.VarID // controlling indicator (shared along MIN paths)
	single bool       // presolved: count is k·ind in group
	group  int        // valid when single
	parts  []partVar  // valid when !single
	culled bool       // provably unsatisfiable within the window
}

// Compiled is the result of compiling a batch of job expressions.
type Compiled struct {
	// Model is the MILP to hand to the solver (maximize).
	Model *milp.Model
	// Part is the cycle's partitioning of the cluster.
	Part *cluster.Partitioning

	opts     Options
	jobs     []strl.Expr
	jobInd   []milp.VarID
	jobVarLo []int // first model variable of each job (vars are per-job contiguous)
	leaves   []*leafRecord
	byExpr   map[strl.Expr]*leafRecord
	childInd map[strl.Expr]milp.VarID // indicator created for each max/sum child
	minVar   map[strl.Expr]milp.VarID // value variable of each MIN node
	avail    [][]int64                // [group][slice]
	scr      *Scratch                 // build-time only; nil once Compile returns
}

// Scratch owns the reusable build buffers for Compile, so a caller that
// compiles every cycle (the scheduler hot path) produces near-zero garbage
// beyond the Compiled it keeps. The zero value is ready to use; a Scratch
// must not be used from more than one goroutine at a time, and the Compiled
// it returns does not retain it.
type Scratch struct {
	universe *bitset.Set
	eqsets   []*bitset.Set
	covers   map[strl.Expr][]int
	objTerm  map[milp.VarID]float64
	// use is the dense supply accumulator, one cell of usage terms per
	// (group, slice) at cell index group*horizon+slice. Cells keep their
	// capacity across compilations.
	use    [][]milp.Term
	demand []milp.Term // leaf demand-row build buffer (AddConstraint copies)
}

// useGrid sizes the supply accumulator for nG groups over h slices and
// resets every cell. Resetting at the start of a compilation (rather than
// the end) keeps an error return from poisoning the next one.
func (sc *Scratch) useGrid(nG int, h int64) {
	need := nG * int(h)
	if need > cap(sc.use) {
		grown := make([][]milp.Term, need)
		copy(grown, sc.use[:cap(sc.use)])
		sc.use = grown
	} else {
		sc.use = sc.use[:need]
	}
	for i, cell := range sc.use {
		if len(cell) != 0 {
			sc.use[i] = cell[:0]
		}
	}
}

// LeafGrant is a decoded allocation for one leaf: how many nodes it receives
// from each partition group.
type LeafGrant struct {
	Job    int
	Leaf   strl.Expr
	Start  int64
	Dur    int64
	Counts map[int]int // group index -> node count
	Total  int
}

// Compile lowers one STRL expression per pending job into a single MILP.
// The top level is an implicit SUM across jobs, each with its own indicator,
// exactly as the scheduler aggregates pending requests (§3.2).
func Compile(jobs []strl.Expr, opts Options) (*Compiled, error) {
	return new(Scratch).Compile(jobs, opts)
}

// Compile is the package-level Compile against this Scratch's pooled
// buffers. The emitted model is byte-identical to a fresh compilation:
// pooling only changes where the intermediate build state lives.
func (sc *Scratch) Compile(jobs []strl.Expr, opts Options) (*Compiled, error) {
	if opts.Universe <= 0 {
		return nil, fmt.Errorf("compiler: universe must be positive")
	}
	if opts.Horizon <= 0 {
		return nil, fmt.Errorf("compiler: horizon must be positive")
	}
	if opts.ReleaseAt != nil && len(opts.ReleaseAt) != opts.Universe {
		return nil, fmt.Errorf("compiler: ReleaseAt has %d entries for %d nodes", len(opts.ReleaseAt), opts.Universe)
	}
	for _, j := range jobs {
		if err := strl.Validate(j); err != nil {
			return nil, err
		}
	}

	// Gather every equivalence set referenced this cycle and partition the
	// cluster against them. Partition clones the universe and refines into
	// fresh group sets, retaining neither input, so both are poolable.
	eqsets := sc.eqsets[:0]
	for _, j := range jobs {
		for _, l := range strl.Leaves(j) {
			switch x := l.(type) {
			case *strl.NCk:
				eqsets = append(eqsets, x.Set)
			case *strl.LnCk:
				eqsets = append(eqsets, x.Set)
			}
		}
	}
	sc.eqsets = eqsets
	if sc.universe == nil || sc.universe.Cap() != opts.Universe {
		sc.universe = bitset.New(opts.Universe)
	}
	sc.universe.Fill()
	part := cluster.Partition(sc.universe, eqsets)

	if sc.covers == nil {
		sc.covers = make(map[strl.Expr][]int)
		sc.objTerm = make(map[milp.VarID]float64)
	} else {
		clear(sc.covers)
		clear(sc.objTerm)
	}
	sc.useGrid(len(part.Groups), opts.Horizon)

	c := &Compiled{
		Model:    milp.NewModel(milp.Maximize),
		Part:     part,
		opts:     opts,
		jobs:     jobs,
		byExpr:   make(map[strl.Expr]*leafRecord),
		childInd: make(map[strl.Expr]milp.VarID),
		minVar:   make(map[strl.Expr]milp.VarID),
		scr:      sc,
	}
	c.computeAvail()

	// Map each leaf to its equivalence-set cover (aligned with eqsets order).
	{
		i := 0
		for _, j := range jobs {
			for _, l := range strl.Leaves(j) {
				sc.covers[l] = part.Cover[i]
				i++
			}
		}
	}

	for jid, job := range jobs {
		c.jobVarLo = append(c.jobVarLo, c.Model.NumVars())
		ind := c.Model.AddBinary(fmt.Sprintf("I_j%d", jid), 0)
		c.jobInd = append(c.jobInd, ind)
		terms, err := c.gen(jid, job, ind, sc.covers)
		if err != nil {
			c.scr = nil
			return nil, err
		}
		for _, t := range terms {
			sc.objTerm[t.Var] += t.Coef
		}
	}
	for v, coef := range sc.objTerm {
		c.Model.SetObj(v, coef)
	}
	// Supply constraints: usage within each (group, slice) cannot exceed the
	// nodes available there. Constraints that cannot bind are dropped.
	// The dense accumulator is walked group-major then slice-major, the same
	// order the old sorted-key emission used, so the emitted model (and thus
	// the chosen optimum among ties) stays deterministic.
	h := int(opts.Horizon)
	for g := range part.Groups {
		for t := 0; t < h; t++ {
			terms := sc.use[g*h+t]
			if len(terms) == 0 {
				continue
			}
			limit := c.avail[g][t]
			maxUse := 0.0
			for _, tm := range terms {
				maxUse += tm.Coef * c.Model.Vars[tm.Var].Ub
			}
			if maxUse <= float64(limit) {
				continue
			}
			c.Model.AddConstraint(
				fmt.Sprintf("supply_g%d_t%d", g, t),
				terms, milp.LE, float64(limit))
		}
	}
	c.scr = nil
	return c, nil
}

// computeAvail fills avail[group][slice] from node release times.
func (c *Compiled) computeAvail() {
	h := c.opts.Horizon
	c.avail = make([][]int64, len(c.Part.Groups))
	for g, set := range c.Part.Groups {
		row := make([]int64, h)
		set.ForEach(func(n int) bool {
			rel := int64(0)
			if c.opts.ReleaseAt != nil {
				rel = c.opts.ReleaseAt[n]
			}
			if rel < 0 {
				rel = 0
			}
			for t := rel; t < h; t++ {
				if c.opts.BusyAt != nil && c.opts.BusyAt(n, t) {
					continue
				}
				row[t]++
			}
			return true
		})
		c.avail[g] = row
	}
}

// gen is Algorithm 1: it lowers expr under indicator ind, returning the
// linear objective contribution of the subtree.
func (c *Compiled) gen(job int, expr strl.Expr, ind milp.VarID, covers map[strl.Expr][]int) ([]milp.Term, error) {
	switch x := expr.(type) {
	case *strl.NCk:
		return c.genNCk(job, x, ind, covers[expr])
	case *strl.LnCk:
		return c.genLnCk(job, x, ind, covers[expr])
	case *strl.Sum:
		var out []milp.Term
		var kids []milp.Term
		for i, kid := range x.Kids {
			ki := c.Model.AddBinary(fmt.Sprintf("I_j%d_sum%d", job, i), 0)
			c.childInd[kid] = ki
			kids = append(kids, milp.Term{Var: ki, Coef: 1})
			terms, err := c.gen(job, kid, ki, covers)
			if err != nil {
				return nil, err
			}
			out = append(out, terms...)
		}
		// Σ I_i ≤ n·I: children activate only if the parent does.
		kids = append(kids, milp.Term{Var: ind, Coef: -float64(len(x.Kids))})
		c.Model.AddConstraint(fmt.Sprintf("sum_j%d", job), kids, milp.LE, 0)
		return out, nil
	case *strl.Max:
		var out []milp.Term
		var kids []milp.Term
		for i, kid := range x.Kids {
			ki := c.Model.AddBinary(fmt.Sprintf("I_j%d_max%d", job, i), 0)
			c.childInd[kid] = ki
			kids = append(kids, milp.Term{Var: ki, Coef: 1})
			terms, err := c.gen(job, kid, ki, covers)
			if err != nil {
				return nil, err
			}
			out = append(out, terms...)
		}
		// Σ I_i ≤ I: at most one branch, and only if the parent activates.
		kids = append(kids, milp.Term{Var: ind, Coef: -1})
		c.Model.AddConstraint(fmt.Sprintf("max_j%d", job), kids, milp.LE, 0)
		return out, nil
	case *strl.Min:
		v := c.Model.AddVar(fmt.Sprintf("V_j%d", job), milp.Continuous, 0, milp.Inf, 0)
		c.minVar[x] = v
		for _, kid := range x.Kids {
			terms, err := c.gen(job, kid, ind, covers) // children share the indicator
			if err != nil {
				return nil, err
			}
			// V ≤ f_i.
			con := []milp.Term{{Var: v, Coef: 1}}
			for _, t := range terms {
				con = append(con, milp.Term{Var: t.Var, Coef: -t.Coef})
			}
			c.Model.AddConstraint(fmt.Sprintf("min_j%d", job), con, milp.LE, 0)
		}
		return []milp.Term{{Var: v, Coef: 1}}, nil
	case *strl.Scale:
		terms, err := c.gen(job, x.Kid, ind, covers)
		if err != nil {
			return nil, err
		}
		out := make([]milp.Term, len(terms))
		for i, t := range terms {
			out[i] = milp.Term{Var: t.Var, Coef: x.S * t.Coef}
		}
		return out, nil
	case *strl.Barrier:
		terms, err := c.gen(job, x.Kid, ind, covers)
		if err != nil {
			return nil, err
		}
		// v·I ≤ f.
		con := []milp.Term{{Var: ind, Coef: x.V}}
		for _, t := range terms {
			con = append(con, milp.Term{Var: t.Var, Coef: -t.Coef})
		}
		c.Model.AddConstraint(fmt.Sprintf("barrier_j%d", job), con, milp.LE, 0)
		return []milp.Term{{Var: ind, Coef: x.V}}, nil
	}
	return nil, fmt.Errorf("compiler: unknown expression type %T", expr)
}

// slices returns the occupied slice range [start, end) clipped to the window,
// or ok=false if the leaf cannot start inside the window.
func (c *Compiled) slices(start, dur int64) (int64, int64, bool) {
	if start < 0 || start >= c.opts.Horizon {
		return 0, 0, false
	}
	end := start + dur
	if end > c.opts.Horizon {
		end = c.opts.Horizon
	}
	return start, end, true
}

func (c *Compiled) genNCk(job int, leaf *strl.NCk, ind milp.VarID, cover []int) ([]milp.Term, error) {
	rec := &leafRecord{job: job, expr: leaf, k: leaf.K, start: leaf.Start, dur: leaf.Dur, ind: ind}
	c.leaves = append(c.leaves, rec)
	c.byExpr[leaf] = rec

	s, e, ok := c.slices(leaf.Start, leaf.Dur)
	// Cull leaves that provably cannot be satisfied: out of window, or not
	// enough nodes available across the cover during the occupied slices.
	feasible := ok
	if ok {
		total := int64(0)
		for _, g := range cover {
			total += c.minAvail(g, s, e)
		}
		feasible = total >= int64(leaf.K)
	}
	if !feasible {
		rec.culled = true
		// The leaf (and anything that requires it) must not activate.
		c.Model.AddConstraint(fmt.Sprintf("cull_j%d", job),
			[]milp.Term{{Var: ind, Coef: 1}}, milp.LE, 0)
		return nil, nil
	}

	if len(cover) == 1 {
		// Presolve: the only possible grant is k nodes from this group, so
		// the partition variable is k·I exactly.
		rec.single, rec.group = true, cover[0]
		c.addUse(cover[0], s, e, milp.Term{Var: ind, Coef: float64(leaf.K)})
		return []milp.Term{{Var: ind, Coef: leaf.Value}}, nil
	}
	demand := c.scr.demand[:0]
	for _, g := range cover {
		ub := math.Min(float64(leaf.K), float64(c.minAvail(g, s, e)))
		p := c.Model.AddVar(fmt.Sprintf("P_j%d_g%d_s%d", job, g, leaf.Start), milp.Integer, 0, ub, 0)
		rec.parts = append(rec.parts, partVar{group: g, id: p})
		demand = append(demand, milp.Term{Var: p, Coef: 1})
		c.addUse(g, s, e, milp.Term{Var: p, Coef: 1})
	}
	// Demand: Σ P_x = k·I. AddConstraint copies its terms, so the pooled
	// build buffer can be handed over and reused for the next leaf.
	demand = append(demand, milp.Term{Var: ind, Coef: -float64(leaf.K)})
	c.Model.AddConstraint(fmt.Sprintf("demand_j%d_s%d", job, leaf.Start), demand, milp.EQ, 0)
	c.scr.demand = demand
	return []milp.Term{{Var: ind, Coef: leaf.Value}}, nil
}

func (c *Compiled) genLnCk(job int, leaf *strl.LnCk, ind milp.VarID, cover []int) ([]milp.Term, error) {
	rec := &leafRecord{job: job, expr: leaf, linear: true, k: leaf.K, start: leaf.Start, dur: leaf.Dur, ind: ind}
	c.leaves = append(c.leaves, rec)
	c.byExpr[leaf] = rec

	s, e, ok := c.slices(leaf.Start, leaf.Dur)
	if !ok {
		rec.culled = true
		c.Model.AddConstraint(fmt.Sprintf("cull_j%d", job),
			[]milp.Term{{Var: ind, Coef: 1}}, milp.LE, 0)
		return nil, nil
	}
	demand := c.scr.demand[:0]
	var out []milp.Term
	for _, g := range cover {
		ub := math.Min(float64(leaf.K), float64(c.minAvail(g, s, e)))
		p := c.Model.AddVar(fmt.Sprintf("Pl_j%d_g%d_s%d", job, g, leaf.Start), milp.Integer, 0, ub, 0)
		rec.parts = append(rec.parts, partVar{group: g, id: p})
		demand = append(demand, milp.Term{Var: p, Coef: 1})
		c.addUse(g, s, e, milp.Term{Var: p, Coef: 1})
		out = append(out, milp.Term{Var: p, Coef: leaf.Value / float64(leaf.K)})
	}
	// Demand: Σ P_x ≤ k·I.
	demand = append(demand, milp.Term{Var: ind, Coef: -float64(leaf.K)})
	c.Model.AddConstraint(fmt.Sprintf("ldemand_j%d_s%d", job, leaf.Start), demand, milp.LE, 0)
	c.scr.demand = demand
	return out, nil
}

// minAvail returns the minimum availability of group g over slices [s, e).
func (c *Compiled) minAvail(g int, s, e int64) int64 {
	mn := int64(math.MaxInt64)
	for t := s; t < e; t++ {
		if c.avail[g][t] < mn {
			mn = c.avail[g][t]
		}
	}
	if mn == math.MaxInt64 {
		mn = 0
	}
	return mn
}

func (c *Compiled) addUse(g int, s, e int64, term milp.Term) {
	h := int(c.opts.Horizon)
	for t := int(s); t < int(e); t++ {
		i := g*h + t
		c.scr.use[i] = append(c.scr.use[i], term)
	}
}

// Stats summarizes a compiled model, the quantities that drive solver
// latency in the paper's scalability analysis (§7.3: "partition variables
// are the most prominent decision variables").
type Stats struct {
	Jobs        int
	Leaves      int
	CulledLeafs int
	Groups      int
	Vars        int
	IntVars     int
	Constraints int
}

// Stats reports the compiled model's size.
func (c *Compiled) Stats() Stats {
	s := Stats{
		Jobs:        len(c.jobs),
		Leaves:      len(c.leaves),
		Groups:      len(c.Part.Groups),
		Vars:        c.Model.NumVars(),
		IntVars:     c.Model.NumIntVars(),
		Constraints: c.Model.NumConstraints(),
	}
	for _, l := range c.leaves {
		if l.culled {
			s.CulledLeafs++
		}
	}
	return s
}

// JobChosen reports whether job j received any allocation in the solution.
func (c *Compiled) JobChosen(sol *milp.Solution, j int) bool {
	for _, g := range c.Decode(sol) {
		if g.Job == j && g.Total > 0 {
			return true
		}
	}
	return false
}

// Decode converts a solver solution into per-leaf grants. Leaves with no
// allocation are omitted.
func (c *Compiled) Decode(sol *milp.Solution) []LeafGrant {
	var out []LeafGrant
	for _, rec := range c.leaves {
		if rec.culled {
			continue
		}
		g := LeafGrant{Job: rec.job, Leaf: rec.expr, Start: rec.start, Dur: rec.dur, Counts: map[int]int{}}
		if rec.single {
			n := int(math.Round(sol.Values[rec.ind])) * rec.k
			if n > 0 {
				g.Counts[rec.group] = n
				g.Total = n
			}
		} else {
			for _, pv := range rec.parts {
				n := int(math.Round(sol.Values[pv.id]))
				if n > 0 {
					g.Counts[pv.group] += n
					g.Total += n
				}
			}
		}
		if g.Total > 0 {
			out = append(out, g)
		}
	}
	return out
}

// Assignment converts a solution into the strl evaluator's assignment form
// (leaf → total granted count) for cross-checking the model against STRL
// semantics.
func (c *Compiled) Assignment(sol *milp.Solution) strl.Assignment {
	a := strl.Assignment{}
	for _, g := range c.Decode(sol) {
		a[g.Leaf] = g.Total
	}
	return a
}

// SeedGrant builds a full-k grant for the leaf, splitting the count greedily
// across its partition groups by availability over the leaf's slices. It is
// used to express "the same choice as last cycle" when warm-starting; the
// caller combines grants with InitialVector and the solver re-validates
// feasibility. ok is false for culled or unknown leaves.
func (c *Compiled) SeedGrant(leaf strl.Expr) (LeafGrant, bool) {
	rec, found := c.byExpr[leaf]
	if !found || rec.culled {
		return LeafGrant{}, false
	}
	g := LeafGrant{Job: rec.job, Leaf: leaf, Start: rec.start, Dur: rec.dur, Counts: map[int]int{}}
	if rec.single {
		g.Counts[rec.group] = rec.k
		g.Total = rec.k
		return g, true
	}
	s, e, ok := c.slices(rec.start, rec.dur)
	if !ok {
		return LeafGrant{}, false
	}
	need := rec.k
	for _, pv := range rec.parts {
		if need == 0 {
			break
		}
		take := int(c.minAvail(pv.group, s, e))
		if take > need {
			take = need
		}
		if take > 0 {
			g.Counts[pv.group] = take
			g.Total += take
			need -= take
		}
	}
	if !rec.linear && g.Total != rec.k {
		return LeafGrant{}, false
	}
	return g, true
}

// InitialVector builds a candidate solution vector that grants each listed
// leaf the given per-group counts, activating the indicators along its path.
// It returns ok=false if the grants cannot be expressed (e.g. a culled leaf).
//
// Contract: grants must jointly satisfy MIN subtrees — activating one leaf
// under a MIN forces its siblings' demands, so partial MIN grants yield
// infeasible vectors. The scheduler only seeds max-of-leaf job shapes, and
// the solver re-validates feasibility before accepting any seed, so a bad
// vector degrades to "no warm start" rather than a wrong schedule.
//
// The vector is full-space (one entry per model variable). Downstream
// reductions remap it transparently: milp.Solve restricts it through the
// presolve layer's RestrictPoint (feasible full-space points restrict to
// feasible reduced points), and Component.Restrict projects it onto each
// sub-model of a decomposed solve — callers never adjust the vector for
// either transformation.
func (c *Compiled) InitialVector(grants []LeafGrant) ([]float64, bool) {
	x := make([]float64, c.Model.NumVars())
	active := map[strl.Expr]bool{}
	for _, g := range grants {
		rec, ok := c.byExpr[g.Leaf]
		if !ok || rec.culled {
			return nil, false
		}
		if rec.single {
			if g.Total != rec.k {
				return nil, false
			}
			x[rec.ind] = 1
		} else {
			total := 0
			for _, pv := range rec.parts {
				n := g.Counts[pv.group]
				x[pv.id] = float64(n)
				total += n
			}
			if total != g.Total {
				return nil, false
			}
			if !rec.linear {
				if total != rec.k {
					return nil, false
				}
				x[rec.ind] = 1
			} else if total > 0 {
				x[rec.ind] = 1
			}
		}
		active[g.Leaf] = true
	}
	// Activate ancestor indicators bottom-up per job.
	for j, job := range c.jobs {
		if c.activate(job, active, x) {
			x[c.jobInd[j]] = 1
		}
	}
	// Set MIN value variables to their implied values: the solver treats the
	// vector as a candidate point; we rely on Solve's feasibility check, so V
	// values must be consistent. We recompute them with a second pass.
	c.setMinVars(x)
	return x, true
}

// activate marks indicator variables for subtrees containing active leaves
// and reports whether e contains any.
func (c *Compiled) activate(e strl.Expr, active map[strl.Expr]bool, x []float64) bool {
	switch n := e.(type) {
	case *strl.NCk, *strl.LnCk:
		return active[e]
	case *strl.Max:
		any := false
		for _, kid := range n.Kids {
			if c.activate(kid, active, x) {
				any = true
				x[c.childInd[kid]] = 1
			}
		}
		return any
	case *strl.Min:
		any := false
		for _, kid := range n.Kids {
			if c.activate(kid, active, x) {
				any = true
			}
		}
		return any
	case *strl.Sum:
		any := false
		for _, kid := range n.Kids {
			if c.activate(kid, active, x) {
				any = true
				x[c.childInd[kid]] = 1
			}
		}
		return any
	case *strl.Scale:
		return c.activate(n.Kid, active, x)
	case *strl.Barrier:
		return c.activate(n.Kid, active, x)
	}
	return false
}

// setMinVars assigns each MIN's value variable min_i f_i under the current
// vector by re-walking the trees.
func (c *Compiled) setMinVars(x []float64) {
	for _, job := range c.jobs {
		c.evalInto(job, x)
	}
}

// evalInto computes the objective contribution of e under x, storing MIN
// values into their variables along the way.
func (c *Compiled) evalInto(e strl.Expr, x []float64) float64 {
	switch n := e.(type) {
	case *strl.NCk:
		rec := c.byExpr[e]
		if rec == nil || rec.culled {
			return 0
		}
		if x[rec.ind] > 0.5 {
			if rec.single {
				return n.Value
			}
			total := 0.0
			for _, pv := range rec.parts {
				total += x[pv.id]
			}
			if int(math.Round(total)) == n.K {
				return n.Value
			}
		}
		return 0
	case *strl.LnCk:
		rec := c.byExpr[e]
		if rec == nil || rec.culled {
			return 0
		}
		total := 0.0
		for _, pv := range rec.parts {
			total += x[pv.id]
		}
		return n.Value * total / float64(n.K)
	case *strl.Max:
		best := 0.0
		for _, kid := range n.Kids {
			if v := c.evalInto(kid, x); v > best {
				best = v
			}
		}
		return best
	case *strl.Min:
		mn := math.Inf(1)
		for _, kid := range n.Kids {
			v := c.evalInto(kid, x)
			if v < mn {
				mn = v
			}
		}
		if math.IsInf(mn, 1) {
			mn = 0
		}
		x[c.minVar[e]] = mn
		return mn
	case *strl.Sum:
		total := 0.0
		for _, kid := range n.Kids {
			total += c.evalInto(kid, x)
		}
		return total
	case *strl.Scale:
		return n.S * c.evalInto(n.Kid, x)
	case *strl.Barrier:
		if c.evalInto(n.Kid, x) >= n.V {
			return n.V
		}
		return 0
	}
	return 0
}
