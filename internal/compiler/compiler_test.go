package compiler

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/milp"
	"tetrisched/internal/strl"
)

func set(n int, ids ...int) *bitset.Set { return bitset.FromIndices(n, ids...) }

func full(n int) *bitset.Set {
	s := bitset.New(n)
	s.Fill()
	return s
}

func solve(t *testing.T, c *Compiled) *milp.Solution {
	t.Helper()
	sol, err := milp.Solve(c.Model, milp.Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if sol.Status != milp.StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	return sol
}

// TestFig4MILPExample reproduces the paper's §5.1 example exactly: 3 jobs on
// 3 machines where only global scheduling with plan-ahead meets all three
// deadlines, yielding job 1 at t=0, job 3 at t=10s (slice 1), job 2 at t=20s
// (slice 2).
func TestFig4MILPExample(t *testing.T) {
	n := 3
	all := full(n)
	job1 := &strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1}
	job2 := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1},
		&strl.NCk{Set: all, K: 1, Start: 1, Dur: 2, Value: 1},
		&strl.NCk{Set: all, K: 1, Start: 2, Dur: 2, Value: 1},
	}}
	job3 := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1},
		&strl.NCk{Set: all, K: 3, Start: 1, Dur: 1, Value: 1},
	}}
	c, err := Compile([]strl.Expr{job1, job2, job3}, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3 (all jobs scheduled)", sol.Objective)
	}
	starts := map[int]int64{}
	for _, g := range c.Decode(sol) {
		starts[g.Job] = g.Start
	}
	if starts[0] != 0 || starts[2] != 1 || starts[1] != 2 {
		t.Errorf("schedule = %v, want job0@0 job2@1 job1@2", starts)
	}
}

// TestFig4WithoutPlanAhead shows that with horizon 1 (plan-ahead disabled)
// at most two of the three jobs can be scheduled, the motivating gap of §5.1.
func TestFig4WithoutPlanAhead(t *testing.T) {
	n := 3
	all := full(n)
	job1 := &strl.NCk{Set: all, K: 2, Start: 0, Dur: 1, Value: 1}
	job2 := &strl.NCk{Set: all, K: 1, Start: 0, Dur: 2, Value: 1}
	job3 := &strl.NCk{Set: all, K: 3, Start: 0, Dur: 1, Value: 1}
	c, err := Compile([]strl.Expr{job1, job2, job3}, Options{Universe: n, Horizon: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if sol.Objective > 2+1e-9 {
		t.Errorf("objective = %v; without plan-ahead at most 2 jobs fit at t=0", sol.Objective)
	}
}

// TestGPUSoftConstraint compiles the Fig 3 example: the GPU branch must win
// when GPUs are free, and the fallback branch when they are busy.
func TestGPUSoftConstraint(t *testing.T) {
	n := 4
	gpus := set(n, 0, 1)
	job := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: gpus, K: 2, Start: 0, Dur: 2, Value: 4},
		&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 3, Value: 3},
	}}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("objective = %v, want 4 (GPU branch)", sol.Objective)
	}
	grants := c.Decode(sol)
	if len(grants) != 1 || grants[0].Leaf != job.Kids[0] {
		t.Errorf("grants = %+v, want the GPU leaf", grants)
	}

	// Occupy the GPUs for the whole window: the fallback must win.
	rel := []int64{99, 99, 0, 0}
	c2, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 4, ReleaseAt: rel})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol2 := solve(t, c2)
	if math.Abs(sol2.Objective-3) > 1e-6 {
		t.Fatalf("objective = %v, want 3 (fallback branch)", sol2.Objective)
	}
	g2 := c2.Decode(sol2)
	if len(g2) != 1 || g2[0].Leaf != job.Kids[1] {
		t.Errorf("grants = %+v, want the fallback leaf", g2)
	}
	// The fallback leaf spans both groups; only the 2 free nodes can serve.
	for grp, cnt := range g2[0].Counts {
		if !c2.Part.Groups[grp].Contains(2) && !c2.Part.Groups[grp].Contains(3) && cnt > 0 {
			t.Errorf("fallback drew %d nodes from busy group %d", cnt, grp)
		}
	}
}

// TestMinAntiAffinity: the Availability job of Fig 1 must take one node per
// rack, or nothing if a rack is full.
func TestMinAntiAffinity(t *testing.T) {
	n := 4
	rack1, rack2 := set(n, 0, 1), set(n, 2, 3)
	job := &strl.Min{Kids: []strl.Expr{
		&strl.NCk{Set: rack1, K: 1, Start: 0, Dur: 3, Value: 5},
		&strl.NCk{Set: rack2, K: 1, Start: 0, Dur: 3, Value: 5},
	}}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 3})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("objective = %v, want 5", sol.Objective)
	}
	grants := c.Decode(sol)
	if len(grants) != 2 {
		t.Fatalf("grants = %+v, want one per rack", grants)
	}

	// Rack 2 fully busy → min unsatisfiable → nothing scheduled.
	rel := []int64{0, 0, 9, 9}
	c2, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 3, ReleaseAt: rel})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol2 := solve(t, c2)
	if sol2.Objective > 1e-9 {
		t.Errorf("objective = %v, want 0", sol2.Objective)
	}
	if g := c2.Decode(sol2); len(g) != 0 {
		t.Errorf("grants = %+v, want none (anti-affinity unsatisfiable)", g)
	}
}

func TestScaleAndBarrier(t *testing.T) {
	n := 2
	leafA := &strl.NCk{Set: set(n, 0), K: 1, Start: 0, Dur: 1, Value: 2}
	leafB := &strl.NCk{Set: set(n, 1), K: 1, Start: 0, Dur: 1, Value: 3}
	// barrier(sum, 5) is satisfied only when both leaves are granted.
	job := &strl.Barrier{Kid: &strl.Sum{Kids: []strl.Expr{leafA, leafB}}, V: 5}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("barrier objective = %v, want 5", sol.Objective)
	}

	scaled := &strl.Scale{Kid: &strl.NCk{Set: full(n), K: 1, Start: 0, Dur: 1, Value: 2}, S: 2.5}
	c2, err := Compile([]strl.Expr{scaled}, Options{Universe: n, Horizon: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol2 := solve(t, c2)
	if math.Abs(sol2.Objective-5) > 1e-6 {
		t.Fatalf("scale objective = %v, want 5", sol2.Objective)
	}
}

func TestLnCkPartialGrant(t *testing.T) {
	n := 3
	// LnCk over 3 nodes with k=3 but one node busy: expect a grant of 2 worth 2/3 of value.
	job := &strl.LnCk{Set: full(n), K: 3, Start: 0, Dur: 2, Value: 6}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 2, ReleaseAt: []int64{0, 0, 5}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("objective = %v, want 4", sol.Objective)
	}
	g := c.Decode(sol)
	if len(g) != 1 || g[0].Total != 2 {
		t.Errorf("grants = %+v, want total 2", g)
	}
}

func TestCulledLeafOutOfWindow(t *testing.T) {
	n := 2
	job := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: full(n), K: 1, Start: 5, Dur: 1, Value: 10}, // beyond horizon
		&strl.NCk{Set: full(n), K: 1, Start: 0, Dur: 1, Value: 1},
	}}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 2})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Fatalf("objective = %v, want 1 (high-value leaf is outside the window)", sol.Objective)
	}
}

func TestCulledLeafInsufficientNodes(t *testing.T) {
	n := 2
	job := &strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 1, Value: 10}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 1, ReleaseAt: []int64{0, 7}})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if sol.Objective > 1e-9 {
		t.Errorf("objective = %v, want 0 (only 1 node free)", sol.Objective)
	}
}

func TestCompileErrors(t *testing.T) {
	n := 2
	good := &strl.NCk{Set: full(n), K: 1, Start: 0, Dur: 1, Value: 1}
	if _, err := Compile([]strl.Expr{good}, Options{Universe: 0, Horizon: 1}); err == nil {
		t.Errorf("zero universe accepted")
	}
	if _, err := Compile([]strl.Expr{good}, Options{Universe: n, Horizon: 0}); err == nil {
		t.Errorf("zero horizon accepted")
	}
	if _, err := Compile([]strl.Expr{good}, Options{Universe: n, Horizon: 1, ReleaseAt: []int64{0}}); err == nil {
		t.Errorf("bad ReleaseAt length accepted")
	}
	bad := &strl.Max{}
	if _, err := Compile([]strl.Expr{bad}, Options{Universe: n, Horizon: 1}); err == nil {
		t.Errorf("invalid expression accepted")
	}
}

func TestGangSharesSupply(t *testing.T) {
	// Two jobs each wanting 2 of 3 nodes at t=0: only one fits.
	n := 3
	j1 := &strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 1, Value: 1}
	j2 := &strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 1, Value: 1}
	c, err := Compile([]strl.Expr{j1, j2}, Options{Universe: n, Horizon: 1})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-1) > 1e-6 {
		t.Errorf("objective = %v, want 1", sol.Objective)
	}
}

func TestInitialVectorWarmStart(t *testing.T) {
	n := 4
	gpus := set(n, 0, 1)
	job := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: gpus, K: 2, Start: 0, Dur: 2, Value: 4},
		&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 3, Value: 3},
	}}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Seed with the (suboptimal) fallback branch; grant from whichever groups
	// cover the full cluster.
	fallback := job.Kids[1].(*strl.NCk)
	rec := c.byExpr[strl.Expr(fallback)]
	counts := map[int]int{}
	if rec.single {
		counts[rec.group] = 2
	} else {
		counts[rec.parts[0].group] = 2
	}
	grant := LeafGrant{Job: 0, Leaf: fallback, Start: 0, Dur: 3, Counts: counts, Total: 2}
	vec, ok := c.InitialVector([]LeafGrant{grant})
	if !ok {
		t.Fatalf("InitialVector rejected a valid grant")
	}
	if !c.Model.IsFeasible(vec, 1e-6) {
		t.Fatalf("InitialVector produced infeasible point")
	}
	if obj := c.Model.ObjectiveValue(vec); math.Abs(obj-3) > 1e-6 {
		t.Fatalf("seed objective = %v, want 3", obj)
	}
	sol, err := milp.Solve(c.Model, milp.Options{InitialSolution: vec})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Errorf("warm-started solve objective = %v, want 4", sol.Objective)
	}
}

func TestAssignmentMatchesEval(t *testing.T) {
	n := 4
	gpus := set(n, 0, 1)
	job := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: gpus, K: 2, Start: 0, Dur: 2, Value: 4},
		&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 3, Value: 3},
	}}
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	sol := solve(t, c)
	v, err := strl.Eval(job, c.Assignment(sol))
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	if math.Abs(v-sol.Objective) > 1e-6 {
		t.Errorf("STRL eval = %v, MILP objective = %v", v, sol.Objective)
	}
}

// --- Brute-force equivalence ---------------------------------------------

// bfLeaf captures one leaf for brute-force search.
type bfLeaf struct {
	expr   strl.Expr
	set    *bitset.Set
	k      int
	linear bool
	start  int64
	dur    int64
}

// bruteForce finds the maximum total value over all structurally valid,
// supply-feasible grant combinations, by enumerating per-leaf grants and
// per-group splits.
func bruteForce(jobs []strl.Expr, opts Options) float64 {
	var leaves []bfLeaf
	var eqsets []*bitset.Set
	for _, j := range jobs {
		for _, l := range strl.Leaves(j) {
			switch x := l.(type) {
			case *strl.NCk:
				leaves = append(leaves, bfLeaf{expr: l, set: x.Set, k: x.K, start: x.Start, dur: x.Dur})
				eqsets = append(eqsets, x.Set)
			case *strl.LnCk:
				leaves = append(leaves, bfLeaf{expr: l, set: x.Set, k: x.K, linear: true, start: x.Start, dur: x.Dur})
				eqsets = append(eqsets, x.Set)
			}
		}
	}
	universe := bitset.New(opts.Universe)
	universe.Fill()
	part := cluster.Partition(universe, eqsets)
	// usage[g][t] accumulated; capacity from ReleaseAt.
	capacity := make([][]int, len(part.Groups))
	for g, grp := range part.Groups {
		capacity[g] = make([]int, opts.Horizon)
		grp.ForEach(func(nd int) bool {
			rel := int64(0)
			if opts.ReleaseAt != nil {
				rel = opts.ReleaseAt[nd]
			}
			for t := rel; t < opts.Horizon; t++ {
				capacity[g][t]++
			}
			return true
		})
	}
	usage := make([][]int, len(part.Groups))
	for g := range usage {
		usage[g] = make([]int, opts.Horizon)
	}

	best := 0.0
	assign := strl.Assignment{}

	var rec func(i int)
	place := func(i int, g, count int, then func()) {
		l := leaves[i]
		s, e := l.start, l.start+l.dur
		if s < 0 || s >= opts.Horizon {
			return
		}
		if e > opts.Horizon {
			e = opts.Horizon
		}
		for t := s; t < e; t++ {
			if usage[g][t]+count > capacity[g][t] {
				return
			}
		}
		for t := s; t < e; t++ {
			usage[g][t] += count
		}
		then()
		for t := s; t < e; t++ {
			usage[g][t] -= count
		}
	}
	var splits func(i int, remaining int, groups []int, then func())
	splits = func(i int, remaining int, groups []int, then func()) {
		if remaining == 0 {
			then()
			return
		}
		if len(groups) == 0 {
			return
		}
		g := groups[0]
		for c := 0; c <= remaining; c++ {
			c := c
			if c == 0 {
				splits(i, remaining, groups[1:], then)
			} else {
				place(i, g, c, func() { splits(i, remaining-c, groups[1:], then) })
			}
		}
	}
	rec = func(i int) {
		if i == len(leaves) {
			total := 0.0
			valid := true
			for _, j := range jobs {
				v, err := strl.Eval(j, assign)
				if err != nil {
					valid = false
					break
				}
				total += v
			}
			if valid && total > best {
				best = total
			}
			return
		}
		l := leaves[i]
		var grants []int
		if l.linear {
			for g := 0; g <= l.k; g++ {
				grants = append(grants, g)
			}
		} else {
			grants = []int{0, l.k}
		}
		for _, g := range grants {
			if g == 0 {
				assign[l.expr] = 0
				rec(i + 1)
				continue
			}
			assign[l.expr] = g
			splits(i, g, part.Cover[i], func() { rec(i + 1) })
		}
		assign[l.expr] = 0
	}
	rec(0)
	return best
}

// randomJob builds a small random job expression over n nodes.
func randomJob(r *rand.Rand, n int, horizon int64) strl.Expr {
	leaf := func() strl.Expr {
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				s.Add(i)
			}
		}
		if s.Empty() {
			s.Add(r.Intn(n))
		}
		k := 1 + r.Intn(minInt(2, s.Count()))
		start := int64(r.Intn(int(horizon)))
		dur := 1 + int64(r.Intn(2))
		v := float64(1 + r.Intn(9))
		if r.Intn(4) == 0 {
			return &strl.LnCk{Set: s, K: k, Start: start, Dur: dur, Value: v}
		}
		return &strl.NCk{Set: s, K: k, Start: start, Dur: dur, Value: v}
	}
	switch r.Intn(8) {
	case 0:
		return leaf()
	case 1:
		return &strl.Max{Kids: []strl.Expr{leaf(), leaf()}}
	case 2:
		return &strl.Min{Kids: []strl.Expr{leaf(), leaf()}}
	case 3:
		return &strl.Sum{Kids: []strl.Expr{leaf(), leaf()}}
	case 4:
		return &strl.Scale{Kid: &strl.Max{Kids: []strl.Expr{leaf(), leaf()}}, S: float64(1 + r.Intn(3))}
	case 5:
		return &strl.Barrier{Kid: leaf(), V: float64(1 + r.Intn(4))}
	case 6:
		// Nested: max over a min-pair and a leaf (soft anti-affinity).
		return &strl.Max{Kids: []strl.Expr{
			&strl.Min{Kids: []strl.Expr{leaf(), leaf()}},
			leaf(),
		}}
	default:
		// Nested: barrier over a scaled sum.
		return &strl.Barrier{
			Kid: &strl.Scale{Kid: &strl.Sum{Kids: []strl.Expr{leaf(), leaf()}}, S: 2},
			V:   float64(2 + r.Intn(6)),
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestQuickCompilerAgainstBruteForce is the central compiler invariant: the
// MILP optimum equals the brute-force best STRL valuation over all feasible
// grants.
func TestQuickCompilerAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4) // 2..5 nodes
		horizon := int64(1 + r.Intn(3))
		njobs := 1 + r.Intn(3) // 1..3 jobs
		jobs := make([]strl.Expr, njobs)
		for i := range jobs {
			jobs[i] = randomJob(r, n, horizon)
		}
		var rel []int64
		if r.Intn(2) == 0 {
			rel = make([]int64, n)
			for i := range rel {
				rel[i] = int64(r.Intn(3))
			}
		}
		opts := Options{Universe: n, Horizon: horizon, ReleaseAt: rel}
		c, err := Compile(jobs, opts)
		if err != nil {
			// Some random jobs are structurally invalid (k > |set| caught by
			// Validate); regenerate by accepting.
			return true
		}
		sol, err := milp.Solve(c.Model, milp.Options{})
		if err != nil {
			t.Logf("seed %d: solve error: %v\n%s", seed, err, c.Model)
			return false
		}
		if sol.Status != milp.StatusOptimal {
			t.Logf("seed %d: status %v", seed, sol.Status)
			return false
		}
		want := bruteForce(jobs, opts)
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Logf("seed %d: MILP=%v brute=%v\njobs: %v\nmodel:\n%s", seed, sol.Objective, want, jobs, c.Model)
			return false
		}
		// The decoded assignment must evaluate to the same objective.
		a := c.Assignment(sol)
		total := 0.0
		for _, j := range jobs {
			v, err := strl.Eval(j, a)
			if err != nil {
				t.Logf("seed %d: decode eval error: %v", seed, err)
				return false
			}
			total += v
		}
		if math.Abs(total-sol.Objective) > 1e-6 {
			t.Logf("seed %d: decoded eval=%v objective=%v", seed, total, sol.Objective)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 40
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompile40Jobs(b *testing.B) {
	n := 80
	r := rand.New(rand.NewSource(5))
	gpus := bitset.New(n)
	for i := 0; i < 20; i++ {
		gpus.Add(i)
	}
	jobs := make([]strl.Expr, 40)
	for j := range jobs {
		var kids []strl.Expr
		k := 1 + r.Intn(8)
		for s := int64(0); s < 12; s++ {
			kids = append(kids,
				&strl.NCk{Set: gpus, K: k, Start: s, Dur: 3, Value: 10 - float64(s)*0.5},
				&strl.NCk{Set: full(n), K: k, Start: s, Dur: 5, Value: 8 - float64(s)*0.5})
		}
		jobs[j] = &strl.Max{Kids: kids}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(jobs, Options{Universe: n, Horizon: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileAndSolve20Jobs(b *testing.B) {
	n := 40
	r := rand.New(rand.NewSource(5))
	gpus := bitset.New(n)
	for i := 0; i < 10; i++ {
		gpus.Add(i)
	}
	jobs := make([]strl.Expr, 20)
	for j := range jobs {
		var kids []strl.Expr
		k := 1 + r.Intn(5)
		for s := int64(0); s < 8; s++ {
			kids = append(kids,
				&strl.NCk{Set: gpus, K: k, Start: s, Dur: 3, Value: 10 - float64(s)*0.5},
				&strl.NCk{Set: full(n), K: k, Start: s, Dur: 5, Value: 8 - float64(s)*0.5})
		}
		jobs[j] = &strl.Max{Kids: kids}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := Compile(jobs, Options{Universe: n, Horizon: 12})
		if err != nil {
			b.Fatal(err)
		}
		// The scheduler's production configuration: bounded solve with the
		// structure-aware incumbent heuristic.
		if _, err := milp.Solve(c.Model, milp.Options{
			Gap: 0.1, TimeLimit: 300 * time.Millisecond, Heuristic: c.GreedyRound,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStats(t *testing.T) {
	n := 4
	gpus := set(n, 0, 1)
	jobs := []strl.Expr{
		&strl.Max{Kids: []strl.Expr{
			&strl.NCk{Set: gpus, K: 2, Start: 0, Dur: 2, Value: 4},
			&strl.NCk{Set: full(n), K: 2, Start: 9, Dur: 3, Value: 3}, // out of window → culled
		}},
	}
	c, err := Compile(jobs, Options{Universe: n, Horizon: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Jobs != 1 || st.Leaves != 2 || st.CulledLeafs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Groups != 2 || st.Vars != c.Model.NumVars() || st.Constraints == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.IntVars == 0 {
		t.Errorf("no integer vars counted: %+v", st)
	}
}

// TestBusyAtClaims: per-slice unavailability holes (greedy tentative claims)
// reduce availability exactly where claimed.
func TestBusyAtClaims(t *testing.T) {
	n := 2
	job := &strl.Max{Kids: []strl.Expr{
		&strl.NCk{Set: full(n), K: 2, Start: 0, Dur: 2, Value: 5},
		&strl.NCk{Set: full(n), K: 2, Start: 2, Dur: 2, Value: 4},
	}}
	// Node 1 claimed during slices [0,2): only the deferred option fits.
	busy := func(node int, t int64) bool { return node == 1 && t < 2 }
	c, err := Compile([]strl.Expr{job}, Options{Universe: n, Horizon: 4, BusyAt: busy})
	if err != nil {
		t.Fatal(err)
	}
	sol := solve(t, c)
	if math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("objective = %v, want 4 (deferred option)", sol.Objective)
	}
	g := c.Decode(sol)
	if len(g) != 1 || g[0].Start != 2 {
		t.Errorf("grants = %+v, want start=2", g)
	}
}
