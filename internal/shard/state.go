package shard

import "sync"

// State is the versioned shared cluster state: one monotonically increasing
// epoch per node, bumped whenever the node's allocation changes (launch,
// finish, preemption). Shard planners snapshot the epochs when a cycle's free
// set is captured; at commit time a placement that cannot be applied is
// classified as a cross-shard double-claim exactly when nodes whose epoch
// moved since the snapshot would have satisfied it (internal/core's
// classifyConflict). Safe for concurrent use.
type State struct {
	mu    sync.Mutex
	epoch []uint64
}

// NewState returns the epoch vector for an n-node cluster, all zeros.
func NewState(n int) *State {
	return &State{epoch: make([]uint64, n)}
}

// Snapshot copies the current epochs into dst (grown if needed) and returns
// it.
func (st *State) Snapshot(dst []uint64) []uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	if cap(dst) < len(st.epoch) {
		dst = make([]uint64, len(st.epoch))
	}
	dst = dst[:len(st.epoch)]
	copy(dst, st.epoch)
	return dst
}

// Bump advances the epoch of each listed node.
func (st *State) Bump(nodes []int) {
	if len(nodes) == 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, n := range nodes {
		st.epoch[n]++
	}
}

// Moved reports whether node n's epoch has advanced past the snapshot value
// snap[n].
func (st *State) Moved(n int, snap []uint64) bool {
	if n >= len(snap) {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epoch[n] != snap[n]
}

// MovedSince collects the nodes whose epoch differs from the snapshot,
// appending into buf.
func (st *State) MovedSince(snap []uint64, buf []int) []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	buf = buf[:0]
	for n := range st.epoch {
		if n < len(snap) && st.epoch[n] != snap[n] {
			buf = append(buf, n)
		}
	}
	return buf
}
