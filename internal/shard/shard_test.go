package shard

import (
	"reflect"
	"sync"
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/strl"
	"tetrisched/internal/strlgen"
	"tetrisched/internal/workload"
)

// hetCluster builds 4 plain racks and 2 gpu racks of 4 nodes each.
func hetCluster() *cluster.Cluster {
	gk, gv := cluster.GPUAttr()
	b := cluster.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddRack("plain"+string(rune('0'+i)), 4, nil)
	}
	b.AddRack("gpu0", 4, map[string]string{gk: gv})
	b.AddRack("gpu1", 4, map[string]string{gk: gv})
	return b.Build()
}

// TestByProfilePartitionIsDisjointCover: every node lands in exactly one
// shard, and repeated calls return the identical partition (determinism is
// what keeps the per-shard fingerprint caches valid).
func TestByProfilePartitionIsDisjointCover(t *testing.T) {
	c := hetCluster()
	for _, n := range []int{1, 2, 3, 4, 6} {
		sets := ByProfile{}.Partition(c, n)
		if len(sets) != n {
			t.Fatalf("n=%d: got %d sets", n, len(sets))
		}
		seen := bitset.New(c.N())
		total := 0
		for _, s := range sets {
			total += s.Count()
			union := seen.Clone()
			union.UnionWith(s)
			if union.Count() != seen.Count()+s.Count() {
				t.Errorf("n=%d: shards overlap", n)
			}
			seen = union
		}
		if total != c.N() {
			t.Errorf("n=%d: shards cover %d of %d nodes", n, total, c.N())
		}
		again := ByProfile{}.Partition(c, n)
		for i := range sets {
			if !reflect.DeepEqual(sets[i].Indices(), again[i].Indices()) {
				t.Errorf("n=%d: partition not deterministic (shard %d differs)", n, i)
			}
		}
	}
}

// TestByProfileBalancesHardwareClasses: with 2 shards over 4 plain + 2 gpu
// racks, each shard must receive a proportional slice of each profile (2
// plain racks and 1 gpu rack), and whole racks must stay together.
func TestByProfileBalancesHardwareClasses(t *testing.T) {
	c := hetCluster()
	sets := ByProfile{}.Partition(c, 2)
	gk, gv := cluster.GPUAttr()
	gpu := c.WithAttr(gk, gv)
	for i, s := range sets {
		if got := s.IntersectCount(gpu); got != 4 {
			t.Errorf("shard %d holds %d gpu nodes, want 4 (one whole gpu rack)", i, got)
		}
		if s.Count() != c.N()/2 {
			t.Errorf("shard %d holds %d nodes, want %d", i, s.Count(), c.N()/2)
		}
	}
	// Whole racks: every rack set is a subset of exactly one shard.
	for _, rack := range c.Racks() {
		rs := c.Rack(rack)
		owners := 0
		for _, s := range sets {
			if rs.IntersectCount(s) == rs.Count() {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("rack %s split across shards", rack)
		}
	}
}

// TestByProfileFallsBackToRanges: fewer racks than shards cannot deal whole
// racks; the partition degrades to contiguous node-ID ranges that still
// cover disjointly.
func TestByProfileFallsBackToRanges(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 6, nil).Build()
	sets := ByProfile{}.Partition(c, 3)
	for i, want := range [][]int{{0, 1}, {2, 3}, {4, 5}} {
		if got := sets[i].Indices(); !reflect.DeepEqual(got, want) {
			t.Errorf("shard %d = %v, want %v", i, got, want)
		}
	}
}

// mkReq builds a request with a single option over the given node set.
func mkReq(id, k int, set *bitset.Set, preferred bool) *strlgen.Request {
	return &strlgen.Request{
		Job: &workload.Job{ID: id, K: k},
		Options: []*strlgen.Option{{
			Key: "opt", Preferred: preferred,
			Leaf: &strl.NCk{Set: set, K: k},
		}},
	}
}

// TestAssignSingleShardIsZero pins the parity early-out: with one shard every
// assignment is class 0 and nothing spans — even a request no node set can
// satisfy (which would otherwise route to the arbitrator and force-merge
// components, breaking the single-shard ≡ monolithic property).
func TestAssignSingleShardIsZero(t *testing.T) {
	all := bitset.New(8)
	all.Fill()
	sets := []*bitset.Set{all}
	reqs := []*strlgen.Request{
		mkReq(0, 2, all, true),
		mkReq(1, 99, all, true), // unsatisfiable anywhere
	}
	assign, spanning := Assign(sets, reqs)
	if spanning != 0 {
		t.Errorf("spanning = %d, want 0 with a single shard", spanning)
	}
	for i, a := range assign {
		if a != 0 {
			t.Errorf("req %d assigned to class %d, want 0", i, a)
		}
	}
}

// TestAssignRoutesAndDetectsSpanning: a request satisfiable only in shard 1
// goes there; one satisfiable in both ties by job ID; a gang wider than any
// shard routes to the arbitrator class.
func TestAssignRoutesAndDetectsSpanning(t *testing.T) {
	s0, s1 := bitset.New(8), bitset.New(8)
	for n := 0; n < 4; n++ {
		s0.Add(n)
		s1.Add(n + 4)
	}
	all := bitset.New(8)
	all.Fill()
	right := bitset.New(8)
	for n := 4; n < 8; n++ {
		right.Add(n)
	}
	sets := []*bitset.Set{s0, s1}
	reqs := []*strlgen.Request{
		mkReq(0, 3, right, true), // only shard 1 can hold it
		mkReq(2, 2, all, true),   // ties; even ID -> shard 0
		mkReq(3, 2, all, true),   // ties; odd ID -> shard 1
		mkReq(4, 6, all, true),   // wider than any shard -> arbitrator
	}
	assign, spanning := Assign(sets, reqs)
	if want := []int{1, 0, 1, 2}; !reflect.DeepEqual(assign, want) {
		t.Errorf("assign = %v, want %v", assign, want)
	}
	if spanning != 1 {
		t.Errorf("spanning = %d, want 1", spanning)
	}
}

// TestStateEpochProtocol: bumps advance only the listed nodes, Moved and
// MovedSince compare against a caller-held snapshot, and a fresh snapshot
// clears the diff.
func TestStateEpochProtocol(t *testing.T) {
	st := NewState(4)
	snap := st.Snapshot(nil)
	if moved := st.MovedSince(snap, nil); len(moved) != 0 {
		t.Fatalf("fresh state reports moved nodes %v", moved)
	}
	st.Bump([]int{1, 3})
	if !st.Moved(1, snap) || !st.Moved(3, snap) || st.Moved(0, snap) {
		t.Error("Moved does not match the bumped set")
	}
	if moved := st.MovedSince(snap, nil); !reflect.DeepEqual(moved, []int{1, 3}) {
		t.Errorf("MovedSince = %v, want [1 3]", moved)
	}
	snap = st.Snapshot(snap)
	if moved := st.MovedSince(snap, nil); len(moved) != 0 {
		t.Errorf("re-snapshot still reports moved nodes %v", moved)
	}
}

// TestStateConcurrentAccess hammers the epoch state from concurrent
// planner-like goroutines (snapshot + diff) and committer-like goroutines
// (bumps); the race detector enforces the synchronization contract.
func TestStateConcurrentAccess(t *testing.T) {
	st := NewState(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			nodes := []int{g, g + 16, g + 32}
			for i := 0; i < 500; i++ {
				st.Bump(nodes)
			}
		}(g)
		go func() {
			defer wg.Done()
			var snap []uint64
			var buf []int
			for i := 0; i < 500; i++ {
				snap = st.Snapshot(snap)
				buf = st.MovedSince(snap, buf)
			}
		}()
	}
	wg.Wait()
	snap := st.Snapshot(nil)
	for _, g := range []int{0, 1, 2, 3} {
		if snap[g] != 500 {
			t.Errorf("node %d epoch = %d, want 500", g, snap[g])
		}
	}
}
