// Package shard is the sharded shared-state control plane: it partitions the
// cluster into shards, routes each pending job's STRL request to the shard
// best able to satisfy it, and tracks per-node state epochs so optimistic
// per-shard plans can be validated when they commit.
//
// The design follows the arktos-style global scheduler: every shard plans
// concurrently over a snapshot of the full cluster state, each believing it
// owns the capacity it sees (the compiler slices shared supply rows into
// optimistic per-shard copies; compiler.ForcedComponents). Conflicts are not
// prevented up front — they are detected when placements commit against the
// shared free set, and the losing jobs requeue intact. Jobs whose space-time
// demand no single shard can satisfy are serialized through a gang
// arbitrator component so gangs place atomically or defer whole
// (docs/SHARDING.md).
package shard

import (
	"sort"
	"strings"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
)

// Partitioner splits a cluster into n shards. Implementations must be
// deterministic for a given cluster: shard membership feeds the component
// fingerprint cache, and an unstable partition would invalidate it every
// cycle.
type Partitioner interface {
	// Name identifies the strategy in telemetry and /v1/status.
	Name() string
	// Partition returns n disjoint node sets covering the cluster. Sets may
	// be empty when the cluster is smaller than n.
	Partition(c *cluster.Cluster, n int) []*bitset.Set
}

// ByProfile shards along resource-profile and locality lines: racks are
// grouped by their attribute profile (gpu=true vs plain, etc.) and each
// profile's racks are dealt round-robin across shards, so every shard holds a
// proportional slice of every hardware class and whole racks stay together
// (rack-locality STRL options remain satisfiable within one shard). Clusters
// with fewer racks than shards fall back to contiguous node-ID ranges.
type ByProfile struct{}

// Name implements Partitioner.
func (ByProfile) Name() string { return "by-profile" }

// Partition implements Partitioner.
func (ByProfile) Partition(c *cluster.Cluster, n int) []*bitset.Set {
	if n < 1 {
		n = 1
	}
	sets := make([]*bitset.Set, n)
	for i := range sets {
		sets[i] = bitset.New(c.N())
	}
	if n == 1 {
		sets[0].Fill()
		return sets
	}
	racks := c.Racks()
	if len(racks) < n {
		// Too few racks to deal whole: split the node-ID space into n
		// near-equal contiguous ranges instead.
		per := (c.N() + n - 1) / n
		for id := 0; id < c.N(); id++ {
			sets[id/per].Add(id)
		}
		return sets
	}
	// Group racks by profile (attributes of the rack's first node — racks
	// built via AddRack are attribute-uniform), keeping the sorted rack order
	// within each profile.
	byProfile := make(map[string][]string)
	var profiles []string
	for _, rack := range racks {
		rs := c.Rack(rack)
		first := rs.Next(-1)
		key := profileKey(c.Node(cluster.NodeID(first)).Attrs)
		if _, ok := byProfile[key]; !ok {
			profiles = append(profiles, key)
		}
		byProfile[key] = append(byProfile[key], rack)
	}
	sort.Strings(profiles)
	for _, p := range profiles {
		for i, rack := range byProfile[p] {
			sets[i%n].UnionWith(c.Rack(rack))
		}
	}
	return sets
}

// profileKey serializes a node attribute map into a canonical string.
func profileKey(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	kv := make([]string, 0, len(attrs))
	for k, v := range attrs {
		kv = append(kv, k+"="+v)
	}
	sort.Strings(kv)
	return strings.Join(kv, ",")
}
