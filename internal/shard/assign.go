package shard

import (
	"tetrisched/internal/bitset"
	"tetrisched/internal/strlgen"
)

// Assign routes each generated request to a shard. The score of shard s for a
// request is the sum over its options of a satisfiability-weighted vote: an
// option whose leaf can fit entirely inside the shard (|leaf set ∩ shard| ≥
// K) contributes 4 when it is the job's preferred placement and 1 otherwise.
// The job goes to the highest-scoring shard; ties break by job ID modulo the
// tied count, which both balances load and — because the score depends only
// on the partition and the job's own options — keeps the assignment stable
// across cycles, preserving per-shard fingerprint-cache hits.
//
// A request no single shard can satisfy on any option (a gang whose node
// demand spans shards) is assigned class len(sets): the arbitrator. The
// returned assign slice is indexed like reqs; spanning counts the arbitrator
// routings.
func Assign(sets []*bitset.Set, reqs []*strlgen.Request) (assign []int, spanning int) {
	assign = make([]int, len(reqs))
	if len(sets) == 1 {
		// Nothing can span a single shard; this also pins the single-shard
		// configuration to the monolithic decomposition exactly (the parity
		// property the kill switch is tested against).
		return assign, 0
	}
	scores := make([]int, len(sets))
	ties := make([]int, 0, len(sets))
	for ri, req := range reqs {
		best := 0
		for s := range scores {
			scores[s] = 0
		}
		for _, o := range req.Options {
			for s, set := range sets {
				if o.Leaf.Set.IntersectCount(set) >= o.Leaf.K {
					if o.Preferred {
						scores[s] += 4
					} else {
						scores[s]++
					}
				}
			}
		}
		for _, sc := range scores {
			if sc > best {
				best = sc
			}
		}
		if best == 0 {
			assign[ri] = len(sets) // spans shards: arbitrator
			spanning++
			continue
		}
		ties = ties[:0]
		for s, sc := range scores {
			if sc == best {
				ties = append(ties, s)
			}
		}
		assign[ri] = ties[req.Job.ID%len(ties)]
	}
	return assign, spanning
}
