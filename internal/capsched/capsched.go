// Package capsched models the Rayon/CapacityScheduler stack that the paper
// compares against (§6.1): a reservation-following scheduler with container
// preemption enabled.
//
// Accepted SLO jobs start at their Rayon-planned start time, preempting
// best-effort work if needed to claim their guaranteed capacity. Everything
// else — best-effort jobs, SLO jobs whose reservations were rejected, and
// jobs whose reservations expired before they finished — funnels through a
// deadline-blind FIFO best-effort queue. Placement is heterogeneity-blind
// (arbitrary free nodes), which is exactly the handicap §7.2 measures.
package capsched

import (
	"sort"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/randx"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

type runInfo struct {
	job         *workload.Job
	nodes       []int
	start       int64
	guardedTill int64 // reservation end; 0 for best-effort placements
}

// preemptible reports whether the running job may be killed to honor a
// reservation: anything running without a live guarantee.
func (r *runInfo) preemptible(now int64) bool { return r.guardedTill <= now }

// Options tunes the baseline. The paper's evaluated configuration enables
// container preemption ("this gives a significant boost", §6.1); disabling
// it models a plain CapacityScheduler without the Rayon enforcement hooks.
type Options struct {
	DisablePreemption bool
}

// Scheduler implements sim.Scheduler for the Rayon/CS baseline.
type Scheduler struct {
	c    *cluster.Cluster
	plan *rayon.Plan
	opts Options
	rng  *randx.Source

	reserved []*workload.Job // accepted-SLO jobs awaiting their planned start
	beQueue  []*workload.Job // FIFO: BE + SLO w/o reservation + transfers
	running  map[int]*runInfo
}

var _ sim.Scheduler = (*Scheduler)(nil)

// New creates the baseline scheduler. plan must be the same reservation plan
// the simulation driver admits jobs against.
func New(c *cluster.Cluster, plan *rayon.Plan) *Scheduler {
	return NewWithOptions(c, plan, Options{})
}

// NewWithOptions creates the baseline with explicit options.
func NewWithOptions(c *cluster.Cluster, plan *rayon.Plan, opts Options) *Scheduler {
	return &Scheduler{c: c, plan: plan, opts: opts, rng: randx.New(1), running: make(map[int]*runInfo)}
}

// Name implements sim.Scheduler.
func (s *Scheduler) Name() string { return "Rayon/CS" }

// Submit implements sim.Scheduler.
func (s *Scheduler) Submit(now int64, j *workload.Job) {
	if j.Class == workload.SLO && j.Reserved {
		s.reserved = append(s.reserved, j)
		sort.SliceStable(s.reserved, func(a, b int) bool {
			ra, rb := s.plan.Lookup(s.reserved[a].ID), s.plan.Lookup(s.reserved[b].ID)
			return plannedStart(ra) < plannedStart(rb)
		})
		return
	}
	s.beQueue = append(s.beQueue, j)
}

func plannedStart(r *rayon.Reservation) int64 {
	if r == nil {
		return 1 << 62
	}
	return r.Start
}

// JobFinished implements sim.Scheduler.
func (s *Scheduler) JobFinished(now int64, j *workload.Job) {
	delete(s.running, j.ID)
}

// Cycle implements sim.Scheduler.
func (s *Scheduler) Cycle(now int64, free *bitset.Set) sim.CycleResult {
	var res sim.CycleResult
	working := free.Clone()

	// Launch reserved jobs whose planned start has arrived, preempting
	// unguarded work when the guaranteed capacity is not free.
	var stillWaiting []*workload.Job
	for _, j := range s.reserved {
		r := s.plan.Lookup(j.ID)
		if r == nil || r.End <= now {
			// Reservation lapsed before the job could start: transfer to the
			// best-effort queue (its deadline information is lost).
			s.beQueue = append(s.beQueue, j)
			continue
		}
		if r.Start > now {
			stillWaiting = append(stillWaiting, j)
			continue
		}
		if working.Count() < j.K && !s.opts.DisablePreemption {
			s.preemptFor(now, j.K-working.Count(), working, &res)
		}
		if working.Count() < j.K {
			stillWaiting = append(stillWaiting, j) // retry next cycle
			continue
		}
		nodes := s.takeNodes(working, j.K)
		res.Decisions = append(res.Decisions, sim.Decision{Job: j, Nodes: nodes})
		s.running[j.ID] = &runInfo{job: j, nodes: nodes, start: now, guardedTill: r.End}
	}
	s.reserved = stillWaiting

	// Best-effort FIFO: strictly in order, no preemption, no deadline
	// awareness.
	for len(s.beQueue) > 0 {
		j := s.beQueue[0]
		if working.Count() < j.K {
			break // head-of-line blocking, as in a FIFO capacity queue
		}
		nodes := s.takeNodes(working, j.K)
		res.Decisions = append(res.Decisions, sim.Decision{Job: j, Nodes: nodes})
		s.running[j.ID] = &runInfo{job: j, nodes: nodes, start: now}
		s.beQueue = s.beQueue[1:]
	}
	return res
}

// preemptFor kills unguarded running jobs, most recently started first,
// until `need` nodes have been reclaimed. Preempted jobs lose all progress
// and rejoin the best-effort queue.
func (s *Scheduler) preemptFor(now int64, need int, working *bitset.Set, res *sim.CycleResult) {
	var victims []*runInfo
	for _, r := range s.running {
		if r.preemptible(now) {
			victims = append(victims, r)
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		if victims[a].start != victims[b].start {
			return victims[a].start > victims[b].start // youngest first
		}
		return victims[a].job.ID > victims[b].job.ID
	})
	for _, v := range victims {
		if need <= 0 {
			return
		}
		res.Preempted = append(res.Preempted, v.job)
		delete(s.running, v.job.ID)
		for _, n := range v.nodes {
			working.Add(n)
		}
		need -= len(v.nodes)
		s.beQueue = append(s.beQueue, v.job)
	}
}

// takeNodes removes and returns k arbitrary free nodes — pseudo-random with
// a fixed seed, modeling heterogeneity-blind placement without the
// systematic (lucky or unlucky) structure a deterministic scan would add.
func (s *Scheduler) takeNodes(working *bitset.Set, k int) []int {
	candidates := working.Indices()
	s.rng.Shuffle(candidates)
	nodes := candidates[:k]
	for _, n := range nodes {
		working.Remove(n)
	}
	return nodes
}

// QueueLengths reports (reserved, best-effort) queue lengths for tests.
func (s *Scheduler) QueueLengths() (int, int) { return len(s.reserved), len(s.beQueue) }
