package capsched

import (
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/metrics"
	"tetrisched/internal/rayon"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

func TestReservedJobStartsAtPlannedTime(t *testing.T) {
	c := cluster.RC80(false)
	plan := rayon.NewPlan(c.N(), 4)
	jobs := []*workload.Job{
		// Fills the whole cluster for 40s with a reservation.
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 40, Slowdown: 1, Deadline: 40},
		// Second reserved job must be planned after the first.
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 40, Slowdown: 1, Deadline: 200},
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, plan), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[0].MetSLO() || !res.Stats[1].MetSLO() {
		t.Errorf("reserved jobs missed SLOs: %+v %+v", res.Stats[0], res.Stats[1])
	}
	if res.Stats[1].Start < 40 {
		t.Errorf("job 1 started at %d, before its planned window", res.Stats[1].Start)
	}
}

func TestPreemptsBestEffortForReservation(t *testing.T) {
	c := cluster.RC80(false)
	plan := rayon.NewPlan(c.N(), 4)
	jobs := []*workload.Job{
		// BE job occupies the whole cluster for a long time.
		{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 400, Slowdown: 1},
		// Reserved SLO job arrives later and needs everything.
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 20, K: 80, BaseRuntime: 40, Slowdown: 1, Deadline: 100},
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, plan), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[1].MetSLO() {
		t.Errorf("reserved job missed SLO despite preemption: %+v", res.Stats[1])
	}
	if res.Stats[0].Preemptions == 0 {
		t.Errorf("BE job was not preempted")
	}
	if !res.Stats[0].Completed {
		t.Errorf("preempted BE job never completed")
	}
	// Restart semantics: the BE job's total latency exceeds its runtime.
	if res.Stats[0].Latency() <= 400 {
		t.Errorf("BE latency %d shows no preemption waste", res.Stats[0].Latency())
	}
}

func TestExpiredReservationTransfersToBEQueue(t *testing.T) {
	c := cluster.RC80(false)
	plan := rayon.NewPlan(c.N(), 4)
	// Under-estimated job: reservation covers 40s (est) but it truly runs
	// 400s; after expiry it becomes preemptible.
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 400, Slowdown: 1, Deadline: 500, EstErr: -0.9},
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 100, K: 80, BaseRuntime: 40, Slowdown: 1, Deadline: 200},
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, plan), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Job 1's reservation preempts job 0 once job 0's guarantee lapsed.
	if res.Stats[0].Preemptions == 0 {
		t.Errorf("under-estimated job kept its nodes after reservation expiry")
	}
	if !res.Stats[1].MetSLO() {
		t.Errorf("second reserved job missed: %+v", res.Stats[1])
	}
}

func TestDeadlineBlindnessRunsLateJobs(t *testing.T) {
	c := cluster.RC80(false)
	plan := rayon.NewPlan(c.N(), 4)
	// Impossible deadline: CS runs it anyway (wasting resources), unlike
	// TetriSched which would drop it.
	jobs := []*workload.Job{
		{ID: 0, Class: workload.SLO, Type: workload.Unconstrained, Submit: 0, K: 2, BaseRuntime: 100, Slowdown: 1, Deadline: 50},
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, plan), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if st.Dropped {
		t.Errorf("CS dropped a job; it is deadline-blind")
	}
	if !st.Completed {
		t.Errorf("job never ran")
	}
	if st.MetSLO() {
		t.Errorf("impossible SLO marked met")
	}
}

func TestHeterogeneityBlindPlacement(t *testing.T) {
	c := cluster.RC80(true)
	plan := rayon.NewPlan(c.N(), 4)
	// CS picks the lowest-ID free nodes with no topology awareness: the
	// second k=6 MPI job lands on nodes 6–11, straddling racks r0/r1, and
	// runs at its 2× slowdown. (TetriSched would place it rack-locally.)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.BestEffort, Type: workload.MPI, Submit: 0, K: 6, BaseRuntime: 40, Slowdown: 2},
		{ID: 1, Class: workload.BestEffort, Type: workload.MPI, Submit: 0, K: 6, BaseRuntime: 40, Slowdown: 2},
	}
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, plan), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Job 0 gets nodes 0..9 (rack r0) — coincidentally local. Job 2 (k=5)
	// lands across r2's remainder… verify at least one job was slowed by
	// blind placement.
	slowed := false
	for i := range res.Stats {
		if res.Stats[i].Finish-res.Stats[i].Start > 40 {
			slowed = true
		}
	}
	if !slowed {
		t.Errorf("blind placement never produced a slowed MPI job")
	}
}

func TestSmokeGSMix(t *testing.T) {
	c := cluster.RC80(false)
	jobs, err := workload.Generate(workload.GSMIX(40), c, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan := rayon.NewPlan(c.N(), 4)
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: New(c, plan), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled")
	}
	sum := metrics.Summarize("Rayon/CS", res, c.N())
	if sum.Incomplete > 0 {
		t.Errorf("%d incomplete jobs", sum.Incomplete)
	}
	t.Log(sum.String())
}

func TestQueueLengths(t *testing.T) {
	c := cluster.RC80(false)
	plan := rayon.NewPlan(c.N(), 4)
	s := New(c, plan)
	// A reserved SLO job and a BE job.
	slo := &workload.Job{ID: 0, Class: workload.SLO, K: 4, BaseRuntime: 40, Deadline: 400}
	if plan.Admit(0, 0, 400, 4, 40) == nil {
		t.Fatal("admission failed")
	}
	slo.Reserved = true
	s.Submit(0, slo)
	s.Submit(0, &workload.Job{ID: 1, Class: workload.BestEffort, K: 2, BaseRuntime: 20})
	if r, b := s.QueueLengths(); r != 1 || b != 1 {
		t.Errorf("queues = (%d,%d), want (1,1)", r, b)
	}
}

func TestDisablePreemption(t *testing.T) {
	c := cluster.RC80(false)
	plan := rayon.NewPlan(c.N(), 4)
	jobs := []*workload.Job{
		{ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained, Submit: 0, K: 80, BaseRuntime: 400, Slowdown: 1},
		{ID: 1, Class: workload.SLO, Type: workload.Unconstrained, Submit: 20, K: 80, BaseRuntime: 40, Slowdown: 1, Deadline: 100},
	}
	sched := NewWithOptions(c, plan, Options{DisablePreemption: true})
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: sched, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Preemptions != 0 {
		t.Errorf("preemption occurred while disabled")
	}
	if res.Stats[1].MetSLO() {
		t.Errorf("without preemption the reserved job cannot claim its capacity on time")
	}
	if !res.Stats[1].Completed {
		t.Errorf("reserved job should still eventually run")
	}
}
