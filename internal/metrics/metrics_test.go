package metrics

import (
	"math"
	"testing"
	"time"

	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

func TestSummarize(t *testing.T) {
	res := &sim.Result{Makespan: 100, BusyNodeSeconds: 500}
	add := func(class workload.Class, reserved, completed bool, submit, finish, deadline int64) {
		j := &workload.Job{ID: len(res.Stats), Class: class, Reserved: reserved, Submit: submit, Deadline: deadline}
		st := sim.JobStat{Job: j, Submitted: true, Completed: completed, Finish: finish}
		if !completed {
			st.Dropped = true
		}
		res.Stats = append(res.Stats, st)
	}
	// 2 accepted SLO: one met, one late.
	add(workload.SLO, true, true, 0, 50, 60)
	add(workload.SLO, true, true, 0, 80, 60)
	// 2 SLO w/o reservation: one met, one dropped.
	add(workload.SLO, false, true, 0, 40, 60)
	add(workload.SLO, false, false, 0, 0, 60)
	// 2 BE: latencies 10 and 30.
	add(workload.BestEffort, false, true, 0, 10, 0)
	add(workload.BestEffort, false, true, 10, 40, 0)

	s := Summarize("test", res, 10)
	if s.NumSLO != 4 || s.NumAccepted != 2 || s.NumNoRes != 2 || s.NumBE != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if math.Abs(s.SLOAll-50) > 1e-9 {
		t.Errorf("SLOAll = %v", s.SLOAll)
	}
	if math.Abs(s.SLOAccepted-50) > 1e-9 {
		t.Errorf("SLOAccepted = %v", s.SLOAccepted)
	}
	if math.Abs(s.SLONoRes-50) > 1e-9 {
		t.Errorf("SLONoRes = %v", s.SLONoRes)
	}
	if math.Abs(s.MeanBELatency-20) > 1e-9 {
		t.Errorf("BE latency = %v", s.MeanBELatency)
	}
	if math.Abs(s.Utilization-0.5) > 1e-9 {
		t.Errorf("utilization = %v", s.Utilization)
	}
	if s.Incomplete != 0 {
		t.Errorf("incomplete = %d", s.Incomplete)
	}
	if s.String() == "" {
		t.Errorf("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize("empty", &sim.Result{}, 10)
	if s.SLOAll != 0 || s.MeanBELatency != 0 {
		t.Errorf("empty summary nonzero: %+v", s)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	if got := c.At(3); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("At(3) = %v", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.Percentile(50); math.Abs(got-3) > 1e-9 {
		t.Errorf("p50 = %v", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := c.Percentile(100); got != 5 {
		t.Errorf("p100 = %v", got)
	}
	if got := c.Percentile(25); math.Abs(got-2) > 1e-9 {
		t.Errorf("p25 = %v", got)
	}
	if got := c.Mean(); math.Abs(got-3) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	empty := NewCDF(nil)
	if empty.At(1) != 0 || empty.Percentile(50) != 0 || empty.Mean() != 0 {
		t.Errorf("empty CDF misbehaves")
	}
}

func TestDurationHelpers(t *testing.T) {
	ds := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond}
	if got := MeanDuration(ds); got != 20*time.Millisecond {
		t.Errorf("mean duration = %v", got)
	}
	if MeanDuration(nil) != 0 {
		t.Errorf("mean of empty should be 0")
	}
	c := NewDurationCDF(ds)
	if math.Abs(c.Percentile(100)-30) > 1e-9 {
		t.Errorf("duration CDF p100 = %v", c.Percentile(100))
	}
}
