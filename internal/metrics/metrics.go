// Package metrics computes the paper's evaluation metrics (§6.3) from
// simulation results: SLO attainment for all/accepted/without-reservation
// job categories, mean best-effort latency, and latency distributions for
// the scalability analysis.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// Summary aggregates one simulation run into the four headline metrics.
type Summary struct {
	Scheduler string

	// SLO attainment percentages (0–100).
	SLOAll      float64 // all SLO jobs
	SLOAccepted float64 // SLO jobs with accepted reservations
	SLONoRes    float64 // SLO jobs without reservations

	// MeanBELatency is the mean completion latency of best-effort jobs in
	// seconds (incomplete BE jobs are excluded; Incomplete counts them).
	MeanBELatency float64

	// Counts per category.
	NumSLO, NumAccepted, NumNoRes, NumBE int
	Incomplete                           int

	// Utilization is busy node-seconds over capacity×makespan.
	Utilization float64

	// Latency capture for Fig 12.
	CycleLatencies  []time.Duration
	SolverLatencies []time.Duration
}

// Summarize reduces a run result to its Summary.
func Summarize(name string, res *sim.Result, clusterSize int) Summary {
	s := Summary{Scheduler: name, Utilization: res.Utilization(clusterSize)}
	var sloMet, accMet, noResMet int
	var beLatSum float64
	var beDone int
	for i := range res.Stats {
		st := &res.Stats[i]
		switch st.Job.Class {
		case workload.SLO:
			s.NumSLO++
			met := st.MetSLO()
			if met {
				sloMet++
			}
			if st.Job.Reserved {
				s.NumAccepted++
				if met {
					accMet++
				}
			} else {
				s.NumNoRes++
				if met {
					noResMet++
				}
			}
		case workload.BestEffort:
			s.NumBE++
			if st.Completed {
				beDone++
				beLatSum += float64(st.Latency())
			}
		}
		if !st.Completed && !st.Dropped {
			s.Incomplete++
		}
	}
	s.SLOAll = pct(sloMet, s.NumSLO)
	s.SLOAccepted = pct(accMet, s.NumAccepted)
	s.SLONoRes = pct(noResMet, s.NumNoRes)
	if beDone > 0 {
		s.MeanBELatency = beLatSum / float64(beDone)
	}
	for _, c := range res.Cycles {
		s.CycleLatencies = append(s.CycleLatencies, c.Wall)
		s.SolverLatencies = append(s.SolverLatencies, c.Solver)
	}
	return s
}

func pct(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// String renders the headline numbers on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%-16s SLO(all)=%5.1f%% SLO(res)=%5.1f%% SLO(no-res)=%5.1f%% BE-latency=%6.1fs util=%4.1f%%",
		s.Scheduler, s.SLOAll, s.SLOAccepted, s.SLONoRes, s.MeanBELatency, 100*s.Utilization)
}

// MeanDuration averages a duration slice.
func MeanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewDurationCDF builds a CDF over durations in milliseconds.
func NewDurationCDF(ds []time.Duration) *CDF {
	samples := make([]float64, len(ds))
	for i, d := range ds {
		samples[i] = float64(d) / float64(time.Millisecond)
	}
	return NewCDF(samples)
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Percentile returns the p-th percentile (p in [0,100]).
func (c *CDF) Percentile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 100 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := p / 100 * float64(len(c.sorted)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range c.sorted {
		total += v
	}
	return total / float64(len(c.sorted))
}
