package strl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"tetrisched/internal/bitset"
)

// Resolver supplies node sets for symbolic names appearing in STRL text and
// the universe size for numeric node lists.
type Resolver interface {
	// ResolveSet maps a symbolic set item (e.g. "*", "rack:r0", "gpu") to a
	// node set.
	ResolveSet(name string) (*bitset.Set, error)
	// Universe returns the cluster size, the capacity of parsed sets.
	Universe() int
}

// NumericResolver resolves only numeric node IDs and "*" over a fixed
// universe; sufficient for tests and round-tripping printed expressions.
type NumericResolver int

// ResolveSet implements Resolver: only "*" is symbolic.
func (n NumericResolver) ResolveSet(name string) (*bitset.Set, error) {
	if name == "*" {
		s := bitset.New(int(n))
		s.Fill()
		return s, nil
	}
	return nil, fmt.Errorf("strl: unknown set name %q", name)
}

// Universe implements Resolver.
func (n NumericResolver) Universe() int { return int(n) }

// Parse reads a textual STRL expression such as
//
//	max(nCk({0, 1}, k=2, start=0, dur=2, v=4),
//	    nCk({*}, k=2, start=0, dur=3, v=3))
//
// resolving symbolic set items through res. Numeric set items are node IDs.
func Parse(src string, res Resolver) (Expr, error) {
	p := &parser{src: src, res: res}
	p.next()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing input at %q", p.tok.text)
	}
	if err := Validate(e); err != nil {
		return nil, err
	}
	return e, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokEq
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	src string
	pos int
	tok token
	res Resolver
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("strl: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.src) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.src[p.pos]
	switch c {
	case '(':
		p.pos++
		p.tok = token{tokLParen, "(", start}
	case ')':
		p.pos++
		p.tok = token{tokRParen, ")", start}
	case '{':
		p.pos++
		p.tok = token{tokLBrace, "{", start}
	case '}':
		p.pos++
		p.tok = token{tokRBrace, "}", start}
	case ',':
		p.pos++
		p.tok = token{tokComma, ",", start}
	case '=':
		p.pos++
		p.tok = token{tokEq, "=", start}
	case '*':
		p.pos++
		p.tok = token{tokStar, "*", start}
	default:
		if c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9') {
			p.pos++
			for p.pos < len(p.src) && (isDigit(p.src[p.pos]) || p.src[p.pos] == '.' ||
				p.src[p.pos] == 'e' || p.src[p.pos] == 'E' ||
				((p.src[p.pos] == '-' || p.src[p.pos] == '+') && (p.src[p.pos-1] == 'e' || p.src[p.pos-1] == 'E'))) {
				p.pos++
			}
			p.tok = token{tokNumber, p.src[start:p.pos], start}
			return
		}
		if isIdentStart(c) {
			p.pos++
			for p.pos < len(p.src) && isIdentPart(p.src[p.pos]) {
				p.pos++
			}
			p.tok = token{tokIdent, p.src[start:p.pos], start}
			return
		}
		p.tok = token{tokEOF, string(c), start}
		p.pos++
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == ':' || c == '=' || c == '-' || c == '.' || c == '/'
}

func (p *parser) expect(k tokKind, what string) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %q", what, p.tok.text)
	}
	p.next()
	return nil
}

func (p *parser) parseExpr() (Expr, error) {
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected expression, found %q", p.tok.text)
	}
	op := p.tok.text
	p.next()
	if err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	switch strings.ToLower(op) {
	case "nck":
		return p.parseLeaf(false)
	case "lnck":
		return p.parseLeaf(true)
	case "max", "min", "sum":
		var kids []Expr
		for {
			kid, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			kids = append(kids, kid)
			if p.tok.kind != tokComma {
				break
			}
			p.next()
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		switch strings.ToLower(op) {
		case "max":
			return &Max{Kids: kids}, nil
		case "min":
			return &Min{Kids: kids}, nil
		default:
			return &Sum{Kids: kids}, nil
		}
	case "scale", "barrier":
		kid, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokComma, "','"); err != nil {
			return nil, err
		}
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		if strings.ToLower(op) == "scale" {
			return &Scale{Kid: kid, S: v}, nil
		}
		return &Barrier{Kid: kid, V: v}, nil
	default:
		return nil, p.errf("unknown operator %q", op)
	}
}

// parseLeaf parses the remainder of nCk(...)/LnCk(...) after the '('.
func (p *parser) parseLeaf(linear bool) (Expr, error) {
	set, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	fields := map[string]float64{}
	for p.tok.kind == tokComma {
		p.next()
		if p.tok.kind != tokIdent {
			return nil, p.errf("expected field name, found %q", p.tok.text)
		}
		// The lexer folds "k=2" into one ident because '=' is an ident char;
		// split on the first '='.
		raw := p.tok.text
		p.next()
		var name, valstr string
		if i := strings.IndexByte(raw, '='); i >= 0 {
			name, valstr = raw[:i], raw[i+1:]
		} else {
			name = raw
			if p.tok.kind == tokEq {
				p.next()
			}
		}
		var v float64
		if valstr != "" {
			v, err = strconv.ParseFloat(valstr, 64)
			if err != nil {
				return nil, p.errf("bad number %q", valstr)
			}
		} else {
			v, err = p.parseNumber()
			if err != nil {
				return nil, err
			}
		}
		fields[strings.ToLower(name)] = v
	}
	if err := p.expect(tokRParen, "')'"); err != nil {
		return nil, err
	}
	for _, f := range []string{"k", "dur"} {
		if _, ok := fields[f]; !ok {
			return nil, fmt.Errorf("strl: leaf missing field %q", f)
		}
	}
	k := int(fields["k"])
	start := int64(fields["start"])
	dur := int64(fields["dur"])
	v, ok := fields["v"]
	if !ok {
		v = 1
	}
	if linear {
		return &LnCk{Set: set, K: k, Start: start, Dur: dur, Value: v}, nil
	}
	return &NCk{Set: set, K: k, Start: start, Dur: dur, Value: v}, nil
}

func (p *parser) parseNumber() (float64, error) {
	if p.tok.kind != tokNumber {
		return 0, p.errf("expected number, found %q", p.tok.text)
	}
	v, err := strconv.ParseFloat(p.tok.text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.tok.text)
	}
	p.next()
	return v, nil
}

// parseSet parses {item, item, ...} where items are node IDs or symbolic
// names resolved through the Resolver; a bare name (no braces) is also
// accepted.
func (p *parser) parseSet() (*bitset.Set, error) {
	set := bitset.New(p.res.Universe())
	addItem := func() error {
		switch p.tok.kind {
		case tokNumber:
			id, err := strconv.Atoi(p.tok.text)
			if err != nil || id < 0 || id >= p.res.Universe() {
				return p.errf("bad node id %q", p.tok.text)
			}
			set.Add(id)
			p.next()
			return nil
		case tokIdent, tokStar:
			s, err := p.res.ResolveSet(p.tok.text)
			if err != nil {
				return p.errf("%v", err)
			}
			if s.Cap() != set.Cap() {
				return p.errf("resolver returned set with capacity %d, want %d", s.Cap(), set.Cap())
			}
			set.UnionWith(s)
			p.next()
			return nil
		default:
			return p.errf("expected set item, found %q", p.tok.text)
		}
	}
	if p.tok.kind == tokLBrace {
		p.next()
		if p.tok.kind != tokRBrace {
			for {
				if err := addItem(); err != nil {
					return nil, err
				}
				if p.tok.kind != tokComma {
					break
				}
				p.next()
			}
		}
		if err := p.expect(tokRBrace, "'}'"); err != nil {
			return nil, err
		}
		return set, nil
	}
	if err := addItem(); err != nil {
		return nil, err
	}
	return set, nil
}
