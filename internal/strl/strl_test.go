package strl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
)

func set(n int, ids ...int) *bitset.Set { return bitset.FromIndices(n, ids...) }

func TestEvalNCk(t *testing.T) {
	leaf := &NCk{Set: set(4, 0, 1), K: 2, Start: 0, Dur: 2, Value: 4}
	if v, err := Eval(leaf, Assignment{}); err != nil || v != 0 {
		t.Errorf("ungranted nCk = %v, %v", v, err)
	}
	if v, err := Eval(leaf, Assignment{leaf: 2}); err != nil || v != 4 {
		t.Errorf("granted nCk = %v, %v", v, err)
	}
	if _, err := Eval(leaf, Assignment{leaf: 1}); err == nil {
		t.Errorf("partial nCk grant should error")
	}
}

func TestEvalLnCk(t *testing.T) {
	leaf := &LnCk{Set: set(4, 0, 1, 2, 3), K: 4, Value: 8}
	if v, _ := Eval(leaf, Assignment{leaf: 2}); v != 4 {
		t.Errorf("LnCk half grant = %v, want 4", v)
	}
	if _, err := Eval(leaf, Assignment{leaf: 5}); err == nil {
		t.Errorf("over-grant should error")
	}
}

func TestEvalMaxChoosesBest(t *testing.T) {
	a := &NCk{Set: set(4, 0, 1), K: 2, Dur: 2, Value: 4}
	b := &NCk{Set: set(4, 0, 1, 2, 3), K: 2, Dur: 3, Value: 3}
	m := &Max{Kids: []Expr{a, b}}
	if v, err := Eval(m, Assignment{a: 2}); err != nil || v != 4 {
		t.Errorf("max(a) = %v, %v", v, err)
	}
	if v, err := Eval(m, Assignment{b: 2}); err != nil || v != 3 {
		t.Errorf("max(b) = %v, %v", v, err)
	}
	if _, err := Eval(m, Assignment{a: 2, b: 2}); err == nil {
		t.Errorf("two active max branches should error")
	}
}

func TestEvalMinAntiAffinity(t *testing.T) {
	// The Availability job from Fig 1: one node on each of two racks.
	r1 := &NCk{Set: set(4, 0, 1), K: 1, Dur: 3, Value: 5}
	r2 := &NCk{Set: set(4, 2, 3), K: 1, Dur: 3, Value: 5}
	m := &Min{Kids: []Expr{r1, r2}}
	if v, _ := Eval(m, Assignment{r1: 1, r2: 1}); v != 5 {
		t.Errorf("min both = %v, want 5", v)
	}
	if v, _ := Eval(m, Assignment{r1: 1}); v != 0 {
		t.Errorf("min one = %v, want 0", v)
	}
}

func TestEvalSumScaleBarrier(t *testing.T) {
	a := &NCk{Set: set(2, 0), K: 1, Dur: 1, Value: 2}
	b := &NCk{Set: set(2, 1), K: 1, Dur: 1, Value: 3}
	s := &Sum{Kids: []Expr{a, b}}
	if v, _ := Eval(s, Assignment{a: 1, b: 1}); v != 5 {
		t.Errorf("sum = %v", v)
	}
	sc := &Scale{Kid: s, S: 2}
	if v, _ := Eval(sc, Assignment{a: 1, b: 1}); v != 10 {
		t.Errorf("scale = %v", v)
	}
	bar := &Barrier{Kid: s, V: 4}
	if v, _ := Eval(bar, Assignment{a: 1, b: 1}); v != 4 {
		t.Errorf("barrier met = %v", v)
	}
	if v, _ := Eval(bar, Assignment{a: 1}); v != 0 {
		t.Errorf("barrier unmet = %v", v)
	}
}

func TestPaperGPUExample(t *testing.T) {
	// Fig 3: max(nCk({M1,M2}, 2, s, 2, vG(s+2)), nCk({M1..M4}, 2, s, 3, vG(s+3)))
	// with vG decreasing: preferred branch wins when granted.
	pref := &NCk{Set: set(4, 0, 1), K: 2, Start: 0, Dur: 2, Value: 4}
	any := &NCk{Set: set(4, 0, 1, 2, 3), K: 2, Start: 0, Dur: 3, Value: 3}
	e := &Max{Kids: []Expr{pref, any}}
	if err := Validate(e); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if v, _ := Eval(e, Assignment{pref: 2}); v != 4 {
		t.Errorf("preferred = %v, want 4", v)
	}
	if h := Horizon(e); h != 3 {
		t.Errorf("horizon = %d, want 3", h)
	}
	if got := len(Leaves(e)); got != 2 {
		t.Errorf("leaves = %d", got)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Expr{
		&NCk{Set: set(4, 0), K: 2, Dur: 1, Value: 1},    // k > |set|
		&NCk{Set: set(4, 0, 1), K: 0, Dur: 1, Value: 1}, // k = 0
		&NCk{Set: set(4, 0, 1), K: 1, Dur: 0, Value: 1}, // dur = 0
		&Max{},                       // empty
		&Min{},                       // empty
		&Sum{},                       // empty
		&Scale{Kid: &Max{}, S: 2},    // nested empty
		&NCk{Set: nil, K: 1, Dur: 1}, // nil set
	}
	for i, e := range bad {
		if err := Validate(e); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestParseBasic(t *testing.T) {
	e, err := Parse("max(nCk({0, 1}, k=2, start=0, dur=2, v=4), nCk({*}, k=2, start=1, dur=3, v=3))", NumericResolver(4))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, ok := e.(*Max)
	if !ok || len(m.Kids) != 2 {
		t.Fatalf("parsed %T", e)
	}
	a := m.Kids[0].(*NCk)
	if a.K != 2 || a.Start != 0 || a.Dur != 2 || a.Value != 4 || a.Set.Count() != 2 {
		t.Errorf("leaf a = %+v", a)
	}
	b := m.Kids[1].(*NCk)
	if b.Set.Count() != 4 || b.Start != 1 {
		t.Errorf("leaf b = %+v", b)
	}
}

func TestParseOperators(t *testing.T) {
	src := `sum(
		min(nCk({0}, k=1, dur=1, v=2), nCk({1}, k=1, dur=1, v=2)),
		scale(LnCk({0,1,2}, k=3, start=2, dur=4, v=6), 1.5),
		barrier(nCk({2}, k=1, dur=1, v=9), 9))`
	e, err := Parse(src, NumericResolver(3))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, ok := e.(*Sum)
	if !ok || len(s.Kids) != 3 {
		t.Fatalf("parsed %T with %d kids", e, len(s.Kids))
	}
	if _, ok := s.Kids[0].(*Min); !ok {
		t.Errorf("kid 0 = %T", s.Kids[0])
	}
	sc, ok := s.Kids[1].(*Scale)
	if !ok || sc.S != 1.5 {
		t.Errorf("kid 1 = %T %+v", s.Kids[1], s.Kids[1])
	}
	if l, ok := sc.Kid.(*LnCk); !ok || l.K != 3 || l.Start != 2 || l.Dur != 4 {
		t.Errorf("LnCk = %+v", sc.Kid)
	}
	if b, ok := s.Kids[2].(*Barrier); !ok || b.V != 9 {
		t.Errorf("kid 2 = %+v", s.Kids[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus(nCk({0}, k=1, dur=1))",
		"nCk({0}, k=1)",               // missing dur
		"nCk({9}, k=1, dur=1)",        // node out of range
		"max()",                       // empty operator
		"nCk({0}, k=1, dur=1) extra",  // trailing tokens
		"nCk({unknown}, k=1, dur=1)",  // unresolvable name
		"scale(nCk({0}, k=1, dur=1))", // missing scalar
	}
	for _, src := range cases {
		if _, err := Parse(src, NumericResolver(4)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestClusterResolver(t *testing.T) {
	c := cluster.NewBuilder().
		AddRack("r0", 2, map[string]string{"gpu": "true"}).
		AddRack("r1", 2, nil).
		Build()
	r := ClusterResolver{C: c}
	e, err := Parse("max(nCk({attr:gpu=true}, k=2, dur=2, v=4), nCk({*}, k=2, dur=3, v=3))", r)
	if err != nil {
		t.Fatalf("parse with cluster resolver: %v", err)
	}
	leaves := Leaves(e)
	if leaves[0].(*NCk).Set.Count() != 2 {
		t.Errorf("gpu set = %v", leaves[0].(*NCk).Set)
	}
	for _, src := range []string{
		"nCk({rack:r1}, k=2, dur=1)",
		"nCk({gpu}, k=2, dur=1)",
		"nCk({r0}, k=2, dur=1)",
		"nCk({node:r1/n0}, k=1, dur=1)",
	} {
		if _, err := Parse(src, r); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	for _, src := range []string{
		"nCk({rack:nope}, k=1, dur=1)",
		"nCk({node:nope}, k=1, dur=1)",
		"nCk({attr:malformed}, k=1, dur=1)",
	} {
		if _, err := Parse(src, r); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// randomExpr builds a random STRL tree for round-trip testing.
func randomExpr(r *rand.Rand, n, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				s.Add(i)
			}
		}
		if s.Empty() {
			s.Add(r.Intn(n))
		}
		k := 1 + r.Intn(s.Count())
		leaf := rand.Intn(2)
		if leaf == 0 {
			return &NCk{Set: s, K: k, Start: int64(r.Intn(5)), Dur: 1 + int64(r.Intn(4)), Value: float64(r.Intn(10) + 1)}
		}
		return &LnCk{Set: s, K: k, Start: int64(r.Intn(5)), Dur: 1 + int64(r.Intn(4)), Value: float64(r.Intn(10) + 1)}
	}
	nk := 1 + r.Intn(3)
	kids := make([]Expr, nk)
	for i := range kids {
		kids[i] = randomExpr(r, n, depth-1)
	}
	switch r.Intn(5) {
	case 0:
		return &Max{Kids: kids}
	case 1:
		return &Min{Kids: kids}
	case 2:
		return &Sum{Kids: kids}
	case 3:
		return &Scale{Kid: kids[0], S: float64(1 + r.Intn(5))}
	default:
		return &Barrier{Kid: kids[0], V: float64(1 + r.Intn(5))}
	}
}

func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		e := randomExpr(r, n, 3)
		text := e.String()
		parsed, err := Parse(text, NumericResolver(n))
		if err != nil {
			t.Logf("seed %d: parse error %v on %q", seed, err, text)
			return false
		}
		if parsed.String() != text {
			t.Logf("seed %d: round trip mismatch:\n  in:  %s\n  out: %s", seed, text, parsed.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWalkOrder(t *testing.T) {
	a := &NCk{Set: set(2, 0), K: 1, Dur: 1}
	b := &NCk{Set: set(2, 1), K: 1, Dur: 1}
	e := &Sum{Kids: []Expr{&Scale{Kid: a, S: 2}, b}}
	var kinds []string
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *Sum:
			kinds = append(kinds, "sum")
		case *Scale:
			kinds = append(kinds, "scale")
		case *NCk:
			kinds = append(kinds, "nck")
		}
	})
	if strings.Join(kinds, ",") != "sum,scale,nck,nck" {
		t.Errorf("walk order = %v", kinds)
	}
}
