package strl

import (
	"fmt"
	"math"
)

// Assignment maps each leaf (by pointer identity) to the number of nodes
// granted to it. Leaves absent from the map receive zero. An assignment
// describes *how much* each leaf gets; whether concrete nodes exist to honor
// it is a separate supply question answered by the compiler/solver.
type Assignment map[Expr]int

// Eval computes the value of e under the assignment, enforcing STRL
// structural semantics:
//
//   - nCk yields Value if granted exactly K nodes, 0 if granted none; any
//     other grant is invalid.
//   - LnCk yields Value·c/K for a grant c ∈ [0, K].
//   - max allows at most one child to hold a grant and yields its value.
//   - min yields the minimum child value.
//   - sum yields the sum of child values.
//   - scale multiplies; barrier thresholds at V.
//
// Invalid assignments (partial nCk grants, multiple active max branches)
// return an error.
func Eval(e Expr, a Assignment) (float64, error) {
	switch x := e.(type) {
	case *NCk:
		c := a[x]
		switch c {
		case 0:
			return 0, nil
		case x.K:
			return x.Value, nil
		default:
			return 0, fmt.Errorf("strl: nCk granted %d nodes, need 0 or %d", c, x.K)
		}
	case *LnCk:
		c := a[x]
		if c < 0 || c > x.K {
			return 0, fmt.Errorf("strl: LnCk granted %d nodes, need 0..%d", c, x.K)
		}
		return x.Value * float64(c) / float64(x.K), nil
	case *Max:
		best := 0.0
		active := 0
		for _, k := range x.Kids {
			v, err := Eval(k, a)
			if err != nil {
				return 0, err
			}
			if anyGrant(k, a) {
				active++
			}
			if v > best {
				best = v
			}
		}
		if active > 1 {
			return 0, fmt.Errorf("strl: max with %d active branches", active)
		}
		return best, nil
	case *Min:
		mn := math.Inf(1)
		for _, k := range x.Kids {
			v, err := Eval(k, a)
			if err != nil {
				return 0, err
			}
			mn = math.Min(mn, v)
		}
		if math.IsInf(mn, 1) {
			return 0, nil
		}
		return mn, nil
	case *Sum:
		total := 0.0
		for _, k := range x.Kids {
			v, err := Eval(k, a)
			if err != nil {
				return 0, err
			}
			total += v
		}
		return total, nil
	case *Scale:
		v, err := Eval(x.Kid, a)
		if err != nil {
			return 0, err
		}
		return x.S * v, nil
	case *Barrier:
		v, err := Eval(x.Kid, a)
		if err != nil {
			return 0, err
		}
		if v >= x.V {
			return x.V, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("strl: unknown expression type %T", e)
}

// anyGrant reports whether any leaf under e holds a nonzero grant.
func anyGrant(e Expr, a Assignment) bool {
	found := false
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *NCk, *LnCk:
			if a[x] != 0 {
				found = true
			}
		}
	})
	return found
}

// Satisfied reports whether the expression yields positive value under a.
func Satisfied(e Expr, a Assignment) (bool, error) {
	v, err := Eval(e, a)
	return v > 0, err
}
