// Package strl implements the Space-Time Request Language of the TetriSched
// paper (§4): an algebra of resource requests whose leaves ask for "any k
// nodes from an equivalence set, starting at s for duration d, worth v", and
// whose operators compose choices (MAX), conjunctions (MIN), aggregation
// (SUM), and value shaping (SCALE, BARRIER).
//
// A STRL expression is a function from resource space-time allocations to
// scalar value; positive value means the expression is satisfied. The
// evaluator in this package defines those semantics directly and serves as
// the ground truth against which the MILP compilation is property-tested.
package strl

import (
	"fmt"
	"strings"

	"tetrisched/internal/bitset"
)

// Expr is a node of a STRL expression tree.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// NCk is the principal STRL primitive: choose any K nodes out of Set,
// occupying them from Start for Dur time quanta, yielding Value if satisfied.
// It expresses both hard constraints (alone) and, composed under Max, soft
// ones.
type NCk struct {
	Set   *bitset.Set
	K     int
	Start int64
	Dur   int64
	Value float64
}

// LnCk is the "Linear n choose k" primitive: it accepts any count c ≤ K from
// Set and yields Value·c/K, suppressing the enumeration of same-set
// same-duration options that differ only in k (§4.1).
type LnCk struct {
	Set   *bitset.Set
	K     int
	Start int64
	Dur   int64
	Value float64
}

// Max yields the value of its single chosen subexpression: OR semantics,
// used to offer alternative placements or start times.
type Max struct{ Kids []Expr }

// Min yields the minimum value across its subexpressions, all of which must
// be satisfied together: AND semantics, used for anti-affinity and gangs
// spanning distinct domains.
type Min struct{ Kids []Expr }

// Sum yields the sum of its subexpressions' values; the top-level aggregator
// for global scheduling.
type Sum struct{ Kids []Expr }

// Scale multiplies the value of its subexpression by S.
type Scale struct {
	Kid Expr
	S   float64
}

// Barrier yields V iff its subexpression's value reaches V, else 0.
type Barrier struct {
	Kid Expr
	V   float64
}

func (*NCk) exprNode()     {}
func (*LnCk) exprNode()    {}
func (*Max) exprNode()     {}
func (*Min) exprNode()     {}
func (*Sum) exprNode()     {}
func (*Scale) exprNode()   {}
func (*Barrier) exprNode() {}

// String renders the expression in the parseable textual syntax.
func (e *NCk) String() string {
	return fmt.Sprintf("nCk(%s, k=%d, start=%d, dur=%d, v=%g)", setString(e.Set), e.K, e.Start, e.Dur, e.Value)
}

func (e *LnCk) String() string {
	return fmt.Sprintf("LnCk(%s, k=%d, start=%d, dur=%d, v=%g)", setString(e.Set), e.K, e.Start, e.Dur, e.Value)
}

func (e *Max) String() string { return opString("max", e.Kids) }
func (e *Min) String() string { return opString("min", e.Kids) }
func (e *Sum) String() string { return opString("sum", e.Kids) }

func (e *Scale) String() string   { return fmt.Sprintf("scale(%s, %g)", e.Kid, e.S) }
func (e *Barrier) String() string { return fmt.Sprintf("barrier(%s, %g)", e.Kid, e.V) }

func opString(op string, kids []Expr) string {
	parts := make([]string, len(kids))
	for i, k := range kids {
		parts[i] = k.String()
	}
	return op + "(" + strings.Join(parts, ", ") + ")"
}

func setString(s *bitset.Set) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}

// Leaves returns the NCk/LnCk leaves of e in depth-first order.
func Leaves(e Expr) []Expr {
	var out []Expr
	Walk(e, func(x Expr) {
		switch x.(type) {
		case *NCk, *LnCk:
			out = append(out, x)
		}
	})
	return out
}

// Walk visits every node of e in depth-first pre-order.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch x := e.(type) {
	case *Max:
		for _, k := range x.Kids {
			Walk(k, fn)
		}
	case *Min:
		for _, k := range x.Kids {
			Walk(k, fn)
		}
	case *Sum:
		for _, k := range x.Kids {
			Walk(k, fn)
		}
	case *Scale:
		Walk(x.Kid, fn)
	case *Barrier:
		Walk(x.Kid, fn)
	}
}

// Horizon returns the latest end time (start+dur) across all leaves, i.e.
// the extent of the plan-ahead window the expression requires.
func Horizon(e Expr) int64 {
	var h int64
	Walk(e, func(x Expr) {
		switch l := x.(type) {
		case *NCk:
			if t := l.Start + l.Dur; t > h {
				h = t
			}
		case *LnCk:
			if t := l.Start + l.Dur; t > h {
				h = t
			}
		}
	})
	return h
}

// Validate checks structural sanity: positive k, nonnegative durations,
// nonempty sets large enough to ever satisfy the leaf, operators nonempty.
func Validate(e Expr) error {
	var err error
	Walk(e, func(x Expr) {
		if err != nil {
			return
		}
		switch l := x.(type) {
		case *NCk:
			err = validateLeaf(l.Set, l.K, l.Dur, "nCk")
		case *LnCk:
			err = validateLeaf(l.Set, l.K, l.Dur, "LnCk")
		case *Max:
			if len(l.Kids) == 0 {
				err = fmt.Errorf("strl: empty max")
			}
		case *Min:
			if len(l.Kids) == 0 {
				err = fmt.Errorf("strl: empty min")
			}
		case *Sum:
			if len(l.Kids) == 0 {
				err = fmt.Errorf("strl: empty sum")
			}
		}
	})
	return err
}

func validateLeaf(set *bitset.Set, k int, dur int64, kind string) error {
	if set == nil {
		return fmt.Errorf("strl: %s with nil set", kind)
	}
	if k <= 0 {
		return fmt.Errorf("strl: %s with k=%d", kind, k)
	}
	if dur <= 0 {
		return fmt.Errorf("strl: %s with dur=%d", kind, dur)
	}
	if set.Count() < k && kind == "nCk" {
		return fmt.Errorf("strl: nCk requests k=%d from set of %d", k, set.Count())
	}
	return nil
}
