package strl

import (
	"fmt"
	"strings"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
)

// ClusterResolver resolves symbolic set names against a cluster:
//
//	"*"            all nodes
//	"rack:NAME"    the nodes of a rack
//	"attr:K=V"     nodes carrying attribute K=V
//	"node:NAME"    a single node by name
//	"NAME"         shorthand for attr:NAME=true, then rack:NAME
type ClusterResolver struct {
	C *cluster.Cluster
}

// Universe implements Resolver.
func (r ClusterResolver) Universe() int { return r.C.N() }

// ResolveSet implements Resolver.
func (r ClusterResolver) ResolveSet(name string) (*bitset.Set, error) {
	switch {
	case name == "*":
		return r.C.All(), nil
	case strings.HasPrefix(name, "rack:"):
		s := r.C.Rack(strings.TrimPrefix(name, "rack:"))
		if s == nil {
			return nil, fmt.Errorf("strl: unknown rack %q", name)
		}
		return s, nil
	case strings.HasPrefix(name, "attr:"):
		kv := strings.TrimPrefix(name, "attr:")
		i := strings.IndexByte(kv, '=')
		if i < 0 {
			return nil, fmt.Errorf("strl: attr set %q must be attr:key=value", name)
		}
		return r.C.WithAttr(kv[:i], kv[i+1:]), nil
	case strings.HasPrefix(name, "node:"):
		want := strings.TrimPrefix(name, "node:")
		for i := 0; i < r.C.N(); i++ {
			if r.C.Node(cluster.NodeID(i)).Name == want {
				return bitset.FromIndices(r.C.N(), i), nil
			}
		}
		return nil, fmt.Errorf("strl: unknown node %q", want)
	default:
		if s := r.C.WithAttr(name, "true"); !s.Empty() {
			return s, nil
		}
		if s := r.C.Rack(name); s != nil {
			return s, nil
		}
		return nil, fmt.Errorf("strl: cannot resolve set %q", name)
	}
}
