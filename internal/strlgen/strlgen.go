// Package strlgen is the STRL Generator (§3.1, §4.4): it combines a pending
// job's placement-preference type with its reservation-supplied deadline,
// runtime estimate, and priority signal to emit a STRL expression offering
// every feasible (placement, start-time) option inside the plan-ahead
// window, each valued by the class value function of Fig 5.
package strlgen

import (
	"fmt"
	"math"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/strl"
	"tetrisched/internal/workload"
)

// Config tunes STRL generation.
type Config struct {
	// Quantum is seconds per time slice; equals the scheduling cycle period
	// so the window shifts one slice per cycle.
	Quantum int64
	// PlanAheadSlices is the window size in slices (≥1; 1 disables deferred
	// placement, the TetriSched-NP / alsched configuration).
	PlanAheadSlices int64
	// MaxStartChoices caps the number of start-time options per placement;
	// starts are strided across the window when it exceeds the cap. This is
	// the expression-growth culling of §3.2.1.
	MaxStartChoices int
	// FallbackStartChoices caps start-time options for non-preferred
	// fallback placements, which span many partition groups and dominate
	// MILP size; preferred placements keep the full resolution.
	FallbackStartChoices int
	// MaxRackChoices caps how many rack-local options an MPI job offers;
	// racks are rotated by job ID so the population still covers the whole
	// cluster.
	MaxRackChoices int
	// NoHeterogeneity disables placement preferences (TetriSched-NH): every
	// job asks for k nodes from the whole cluster with a conservatively
	// slowed duration estimate (§6.3).
	NoHeterogeneity bool

	// Value function parameters (Fig 5).
	ValueAcceptedSLO float64 // default 1000
	ValueSLONoRes    float64 // default 25
	ValueBE          float64 // default 1
	// BEDecay is the time for a best-effort job's value to decay linearly
	// from ValueBE toward BEFloor.
	BEDecay int64
	BEFloor float64
	// EarlinessEps breaks ties among equal-valued options in favor of
	// earlier *completion* (fraction of value per slice of completion
	// delay): a job that can finish sooner by briefly waiting for preferred
	// resources is worth slightly more than one that starts now on slow
	// ones, which is exactly the deferral tradeoff of §2.3.2.
	EarlinessEps float64
}

// Default returns the paper's configuration for the given quantum and
// plan-ahead window (both seconds).
func Default(quantum, planAhead int64) Config {
	slices := planAhead / quantum
	if slices < 1 {
		slices = 1
	}
	return Config{
		Quantum:              quantum,
		PlanAheadSlices:      slices,
		MaxStartChoices:      12,
		FallbackStartChoices: 4,
		MaxRackChoices:       4,
		ValueAcceptedSLO:     1000,
		ValueSLONoRes:        25,
		ValueBE:              1,
		BEDecay:              3600,
		BEFloor:              0.01,
		EarlinessEps:         0.001,
	}
}

// Option is one (placement, start) choice offered to the solver.
type Option struct {
	// Key identifies the placement independent of start time ("pref", "any",
	// "rack:r3"), used to match choices across cycles for warm starts.
	Key string
	// Preferred marks the fast placement.
	Preferred bool
	// StartSlice is the option's start slice within this cycle's window.
	StartSlice int64
	// EstDur is the believed runtime in seconds on this placement.
	EstDur int64
	// Leaf is the compiled STRL leaf.
	Leaf *strl.NCk
}

// Request is a generated job request: the expression handed to the compiler
// plus the option list used for decoding and warm starts.
type Request struct {
	Job     *workload.Job
	Expr    strl.Expr
	Options []*Option
}

// OptionFor returns the option owning the given leaf, if any.
func (r *Request) OptionFor(leaf strl.Expr) *Option {
	for _, o := range r.Options {
		if strl.Expr(o.Leaf) == leaf {
			return o
		}
	}
	return nil
}

// Generator emits STRL requests for one cluster.
type Generator struct {
	cfg  Config
	c    *cluster.Cluster
	all  *bitset.Set
	gpus *bitset.Set
	rack map[string]*bitset.Set
}

// New builds a Generator.
func New(c *cluster.Cluster, cfg Config) *Generator {
	if cfg.Quantum <= 0 {
		panic("strlgen: quantum must be positive")
	}
	if cfg.PlanAheadSlices < 1 {
		cfg.PlanAheadSlices = 1
	}
	if cfg.MaxStartChoices < 1 {
		cfg.MaxStartChoices = 1
	}
	gk, gv := cluster.GPUAttr()
	g := &Generator{cfg: cfg, c: c, all: c.All(), gpus: c.WithAttr(gk, gv), rack: map[string]*bitset.Set{}}
	for _, r := range c.Racks() {
		g.rack[r] = c.Rack(r)
	}
	return g
}

// placement is an internal placement candidate.
type placement struct {
	key       string
	set       *bitset.Set
	preferred bool
	width     int // gang width; 0 means the job's full K
}

// placements enumerates the candidate placements for a job type.
func (g *Generator) placements(j *workload.Job) []placement {
	if g.cfg.NoHeterogeneity {
		return []placement{{key: "any", set: g.all, preferred: j.Type == workload.Unconstrained}}
	}
	switch j.Type {
	case workload.Elastic:
		// Space-time elasticity (§4.1): offer a few gang widths as MAX
		// alternatives; narrower widths run proportionally longer.
		lo, hi := j.WidthRange()
		widths := []int{hi}
		if lo < hi {
			if mid := (lo + hi) / 2; mid > lo && mid < hi {
				widths = append(widths, mid)
			}
			widths = append(widths, lo)
		}
		var out []placement
		for _, m := range widths {
			out = append(out, placement{
				key: fmt.Sprintf("any-w%d", m), set: g.all, preferred: true, width: m,
			})
		}
		return out
	case workload.GPU:
		var out []placement
		if g.gpus.Count() >= j.K {
			out = append(out, placement{key: "pref", set: g.gpus, preferred: true})
		}
		out = append(out, placement{key: "any", set: g.all, preferred: false})
		return out
	case workload.DataLocal:
		var out []placement
		if len(j.DataNodes) >= j.K {
			set := bitset.New(g.c.N())
			for _, n := range j.DataNodes {
				if n >= 0 && n < g.c.N() {
					set.Add(n)
				}
			}
			if set.Count() >= j.K {
				out = append(out, placement{key: "data", set: set, preferred: true})
			}
		}
		out = append(out, placement{key: "any", set: g.all, preferred: false})
		return out
	case workload.MPI:
		var out []placement
		racks := g.c.Racks()
		max := g.cfg.MaxRackChoices
		if max <= 0 || max > len(racks) {
			max = len(racks)
		}
		// Rotate the rack window by job ID: each job sees a bounded number of
		// equivalent rack options (they are interchangeable from the job's
		// perspective, §4.2) while the job population covers every rack.
		for i := 0; i < len(racks) && max > 0; i++ {
			r := racks[(i+j.ID)%len(racks)]
			if set := g.rack[r]; set.Count() >= j.K {
				out = append(out, placement{key: "rack:" + r, set: set, preferred: true})
				max--
			}
		}
		out = append(out, placement{key: "any", set: g.all, preferred: false})
		return out
	default:
		return []placement{{key: "any", set: g.all, preferred: true}}
	}
}

// value applies the Fig 5 value functions for a completion at time
// `completion` (absolute seconds), scaled by the job's priority. Zero means
// the option is worthless and is culled.
func (g *Generator) value(j *workload.Job, completion int64) float64 {
	return g.priority(j) * g.baseValue(j, completion)
}

func (g *Generator) priority(j *workload.Job) float64 {
	if j.Priority > 0 {
		return j.Priority
	}
	return 1
}

func (g *Generator) baseValue(j *workload.Job, completion int64) float64 {
	switch {
	case j.Class == workload.SLO && j.Reserved:
		if completion <= j.Deadline {
			return g.cfg.ValueAcceptedSLO
		}
		return 0
	case j.Class == workload.SLO:
		if completion <= j.Deadline {
			return g.cfg.ValueSLONoRes
		}
		return 0
	default:
		frac := 1 - float64(completion-j.Submit)/float64(g.cfg.BEDecay)
		v := g.cfg.ValueBE * frac
		if v < g.cfg.BEFloor {
			v = g.cfg.BEFloor
		}
		return v
	}
}

// Generate builds the job's request for the cycle starting at `now`.
// It returns nil when the job has no option of positive value — for an SLO
// job that means its deadline can no longer be met under current estimates
// and the scheduler should cull it (it will never regain value).
func (g *Generator) Generate(now int64, j *workload.Job) *Request {
	req, _ := g.GenerateTTL(now, j)
	return req
}

// optionTTL returns the largest cycle time now' at which Generate(now', j)
// would still emit this option with the same value. Option enumeration is
// otherwise a pure function of the job, so the minimum over a request's
// options bounds how long the whole request stays byte-identical:
//
//   - SLO (reserved or not): the value is a constant while the completion
//     meets the deadline, and the option is culled the first cycle it
//     cannot, so the bound is the latest now' with
//     now' + (completion-now) <= Deadline.
//   - Best-effort on the BEFloor clamp: the raw linearly-decayed value has
//     already fallen to the floor, where it stays forever — never expires.
//   - Best-effort still decaying: the value moves every cycle; valid only
//     at `now` itself.
func (g *Generator) optionTTL(now int64, j *workload.Job, completion int64) int64 {
	if j.Class == workload.SLO {
		return j.Deadline - (completion - now)
	}
	raw := g.cfg.ValueBE * (1 - float64(completion-j.Submit)/float64(g.cfg.BEDecay))
	if raw <= g.cfg.BEFloor && g.cfg.BEFloor > 0 {
		return math.MaxInt64
	}
	return now
}

// GenerateTTL is Generate plus an expiry bound for the scheduler's per-job
// expression cache: the returned validUntil is the largest cycle time now'
// (now' >= now) for which Generate(now', j) returns a request with identical
// options, values, and structure, so the caller may reuse this request —
// including its leaf pointers, which downstream caches key on — for any
// cycle at or before validUntil. A nil request carries validUntil = now.
func (g *Generator) GenerateTTL(now int64, j *workload.Job) (*Request, int64) {
	validUntil := int64(math.MaxInt64)
	if j.K <= 0 || j.K > g.all.Count() {
		return nil, now // unsatisfiable on this cluster
	}
	placements := g.placements(j)
	strideFor := func(budget int) int64 {
		if budget < 1 {
			budget = 1
		}
		if int(g.cfg.PlanAheadSlices) > budget {
			return (g.cfg.PlanAheadSlices + int64(budget) - 1) / int64(budget)
		}
		return 1
	}
	req := &Request{Job: j}
	for _, p := range placements {
		budget := g.cfg.MaxStartChoices
		if !p.preferred && len(placements) > 1 && g.cfg.FallbackStartChoices > 0 {
			budget = g.cfg.FallbackStartChoices
		}
		stride := strideFor(budget)
		width := j.K
		if p.width > 0 {
			width = p.width
		}
		est := j.EstRuntime(p.preferred)
		if p.width > 0 && p.width < j.K {
			// Elastic width scaling on the believed runtime.
			est = (est*int64(j.K) + int64(p.width) - 1) / int64(p.width)
		}
		if g.cfg.NoHeterogeneity && j.Type != workload.Unconstrained && j.Type != workload.Elastic {
			// NH plans conservatively with the slowed estimate (§6.3).
			est = j.EstRuntime(false)
		}
		durSlices := (est + g.cfg.Quantum - 1) / g.cfg.Quantum
		for s := int64(0); s < g.cfg.PlanAheadSlices; s += stride {
			completion := now + s*g.cfg.Quantum + est
			v := g.value(j, completion)
			if v <= 0 {
				// Later starts only complete later; stop enumerating this
				// placement (deadline culling, §3.2.1).
				break
			}
			if ttl := g.optionTTL(now, j, completion); ttl < validUntil {
				validUntil = ttl
			}
			delaySlices := float64(completion-now) / float64(g.cfg.Quantum)
			factor := 1 - g.cfg.EarlinessEps*delaySlices
			if factor < 0.1 {
				factor = 0.1
			}
			v *= factor
			leaf := &strl.NCk{Set: p.set, K: width, Start: s, Dur: durSlices, Value: v}
			req.Options = append(req.Options, &Option{
				Key:        p.key,
				Preferred:  p.preferred,
				StartSlice: s,
				EstDur:     est,
				Leaf:       leaf,
			})
		}
	}
	if len(req.Options) == 0 {
		return nil, now
	}
	if len(req.Options) == 1 {
		req.Expr = req.Options[0].Leaf
		return req, validUntil
	}
	kids := make([]strl.Expr, len(req.Options))
	for i, o := range req.Options {
		kids[i] = o.Leaf
	}
	req.Expr = &strl.Max{Kids: kids}
	return req, validUntil
}

// String describes the generator configuration.
func (g *Generator) String() string {
	return fmt.Sprintf("strlgen{quantum=%ds window=%d slices noHet=%v}",
		g.cfg.Quantum, g.cfg.PlanAheadSlices, g.cfg.NoHeterogeneity)
}
