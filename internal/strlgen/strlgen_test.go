package strlgen

import (
	"math"
	"reflect"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/strl"
	"tetrisched/internal/workload"
)

func gpuJob(k int) *workload.Job {
	return &workload.Job{
		ID: 1, Class: workload.SLO, Type: workload.GPU, Reserved: true,
		Submit: 0, K: k, BaseRuntime: 20, Slowdown: 1.5, Deadline: 200,
	}
}

func TestGPUOptions(t *testing.T) {
	c := cluster.RC80(true)
	g := New(c, Default(4, 40)) // 10 slices
	req := g.Generate(0, gpuJob(4))
	if req == nil {
		t.Fatal("nil request")
	}
	var pref, any int
	for _, o := range req.Options {
		switch o.Key {
		case "pref":
			pref++
			if !o.Preferred {
				t.Errorf("pref option not marked preferred")
			}
			if o.EstDur != 20 {
				t.Errorf("pref est = %d, want 20", o.EstDur)
			}
			if o.Leaf.Set.Count() != 20 { // RC80 het: 2 racks × 10 GPU nodes
				t.Errorf("pref set size = %d, want 20", o.Leaf.Set.Count())
			}
		case "any":
			any++
			if o.Preferred {
				t.Errorf("fallback marked preferred")
			}
			if o.EstDur != 30 {
				t.Errorf("fallback est = %d, want 30 (slowdown 1.5)", o.EstDur)
			}
		default:
			t.Errorf("unexpected option key %q", o.Key)
		}
	}
	// Preferred placements get full start resolution; fallbacks are capped
	// at FallbackStartChoices (default 4) to bound MILP size.
	if pref != 10 || any != 4 {
		t.Errorf("options pref=%d any=%d, want 10/4", pref, any)
	}
	if _, ok := req.Expr.(*strl.Max); !ok {
		t.Errorf("expr is %T, want max", req.Expr)
	}
	// Every option must be recoverable from its leaf.
	for _, o := range req.Options {
		if req.OptionFor(o.Leaf) != o {
			t.Errorf("OptionFor failed for %q@%d", o.Key, o.StartSlice)
		}
	}
}

func TestMPIOptionsPerRack(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 8)) // 2 slices
	j := &workload.Job{Class: workload.BestEffort, Type: workload.MPI, K: 4, BaseRuntime: 40, Slowdown: 2}
	req := g.Generate(0, j)
	if req == nil {
		t.Fatal("nil request")
	}
	racks := map[string]bool{}
	for _, o := range req.Options {
		if o.Key != "any" {
			racks[o.Key] = true
			if o.EstDur != 40 {
				t.Errorf("rack option est = %d", o.EstDur)
			}
			if o.Leaf.Set.Count() != 10 {
				t.Errorf("rack set size = %d", o.Leaf.Set.Count())
			}
		}
	}
	// Rack options are capped at MaxRackChoices (default 4); racks are
	// interchangeable equivalence sets, so the cap loses little.
	if len(racks) != 4 {
		t.Errorf("rack options for %d racks, want 4", len(racks))
	}
}

// TestMPIRackRotation: different jobs see different rack windows so the
// population covers the cluster.
func TestMPIRackRotation(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 8))
	seen := map[string]bool{}
	for id := 0; id < 8; id++ {
		j := &workload.Job{ID: id, Class: workload.BestEffort, Type: workload.MPI, K: 4, BaseRuntime: 40, Slowdown: 2}
		req := g.Generate(0, j)
		for _, o := range req.Options {
			if o.Key != "any" {
				seen[o.Key] = true
			}
		}
	}
	if len(seen) != 8 {
		t.Errorf("rotation covered %d racks, want all 8: %v", len(seen), seen)
	}
}

func TestDeadlineCulling(t *testing.T) {
	c := cluster.RC80(true)
	g := New(c, Default(4, 400))
	j := gpuJob(4)
	j.Deadline = 40 // only early starts on preferred nodes can make it
	req := g.Generate(0, j)
	if req == nil {
		t.Fatal("nil request")
	}
	for _, o := range req.Options {
		completion := o.StartSlice*4 + o.EstDur
		if completion > j.Deadline {
			t.Errorf("option %q@%d completes at %d after deadline %d", o.Key, o.StartSlice, completion, j.Deadline)
		}
	}
	// Preferred (20s est): starts 0..5 viable (start 20s + 20 = 40). Fallback
	// (30s est): starts 0..2 viable.
	if len(req.Options) == 0 {
		t.Fatal("no options survived culling")
	}

	// Deadline unreachable → nil (drop signal).
	j2 := gpuJob(4)
	j2.Deadline = 10
	if req := g.Generate(0, j2); req != nil {
		t.Errorf("expected nil request for unreachable deadline, got %d options", len(req.Options))
	}
	// Time moves past the deadline → nil.
	j3 := gpuJob(4)
	if req := g.Generate(1000, j3); req != nil {
		t.Errorf("expected nil request after deadline passed")
	}
}

func TestBEValueDecaysButFloors(t *testing.T) {
	c := cluster.RC80(false)
	cfg := Default(4, 8)
	cfg.BEDecay = 100
	g := New(c, cfg)
	j := &workload.Job{Class: workload.BestEffort, Type: workload.Unconstrained, K: 2, BaseRuntime: 20, Slowdown: 1}
	early := g.Generate(0, j)
	late := g.Generate(100000, j) // long after submission
	if early == nil || late == nil {
		t.Fatal("BE requests must never be culled")
	}
	if early.Options[0].Leaf.Value <= late.Options[0].Leaf.Value {
		t.Errorf("BE value should decay: early %v late %v", early.Options[0].Leaf.Value, late.Options[0].Leaf.Value)
	}
	if late.Options[0].Leaf.Value <= 0 {
		t.Errorf("BE value must floor above zero")
	}
}

func TestValueClasses(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 4))
	mk := func(class workload.Class, reserved bool) float64 {
		j := &workload.Job{Class: class, Reserved: reserved, Type: workload.Unconstrained,
			K: 2, BaseRuntime: 20, Slowdown: 1, Deadline: 10000}
		req := g.Generate(0, j)
		if req == nil {
			t.Fatal("nil request")
		}
		return req.Options[0].Leaf.Value
	}
	acc := mk(workload.SLO, true)
	nores := mk(workload.SLO, false)
	be := mk(workload.BestEffort, false)
	if !(acc > nores && nores > be) {
		t.Errorf("value ordering violated: accepted=%v no-res=%v be=%v", acc, nores, be)
	}
	if acc < 900 || nores < 20 || be > 2 {
		t.Errorf("values far from Fig 5: %v %v %v", acc, nores, be)
	}
}

func TestNoHeterogeneity(t *testing.T) {
	c := cluster.RC80(true)
	cfg := Default(4, 20)
	cfg.NoHeterogeneity = true
	g := New(c, cfg)
	req := g.Generate(0, gpuJob(4))
	if req == nil {
		t.Fatal("nil request")
	}
	for _, o := range req.Options {
		if o.Key != "any" {
			t.Errorf("NH produced placement option %q", o.Key)
		}
		if o.Leaf.Set.Count() != c.N() {
			t.Errorf("NH option set = %d nodes, want whole cluster", o.Leaf.Set.Count())
		}
		if o.EstDur != 30 {
			t.Errorf("NH est = %d, want conservative 30", o.EstDur)
		}
	}
}

func TestStartStride(t *testing.T) {
	c := cluster.RC80(false)
	cfg := Default(4, 400) // 100 slices
	cfg.MaxStartChoices = 10
	g := New(c, cfg)
	j := &workload.Job{Class: workload.BestEffort, Type: workload.Unconstrained, K: 2, BaseRuntime: 20, Slowdown: 1}
	req := g.Generate(0, j)
	if req == nil {
		t.Fatal("nil request")
	}
	if len(req.Options) > 10 {
		t.Errorf("%d options exceed MaxStartChoices", len(req.Options))
	}
}

func TestOversizeJobCulled(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 8))
	j := &workload.Job{Class: workload.BestEffort, Type: workload.Unconstrained, K: 81, BaseRuntime: 20, Slowdown: 1}
	if g.Generate(0, j) != nil {
		t.Errorf("job wider than cluster not culled")
	}
}

func TestEarlinessTieBreak(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 40))
	j := &workload.Job{Class: workload.SLO, Reserved: true, Type: workload.Unconstrained,
		K: 2, BaseRuntime: 20, Slowdown: 1, Deadline: 100000}
	req := g.Generate(0, j)
	prev := req.Options[0].Leaf.Value
	for _, o := range req.Options[1:] {
		if o.Leaf.Value >= prev {
			t.Errorf("later start %d not valued below earlier (%v >= %v)", o.StartSlice, o.Leaf.Value, prev)
		}
		prev = o.Leaf.Value
	}
}

func TestElasticWidthOptions(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 8))
	j := &workload.Job{Class: workload.BestEffort, Type: workload.Elastic,
		K: 8, MinK: 2, BaseRuntime: 40, Slowdown: 1}
	req := g.Generate(0, j)
	if req == nil {
		t.Fatal("nil request")
	}
	widths := map[int]int64{} // width -> est
	for _, o := range req.Options {
		widths[o.Leaf.K] = o.EstDur
	}
	if len(widths) != 3 {
		t.Fatalf("widths = %v, want 3 choices (2, 5, 8)", widths)
	}
	if widths[8] != 40 {
		t.Errorf("full width est = %d, want 40", widths[8])
	}
	if widths[2] != 160 {
		t.Errorf("min width est = %d, want 160 (40 × 8/2)", widths[2])
	}
	if mid, ok := widths[5]; !ok || mid != 64 {
		t.Errorf("mid width est = %d, want 64 (ceil(40×8/5))", mid)
	}
}

func TestElasticRigidWhenNoMinK(t *testing.T) {
	c := cluster.RC80(false)
	g := New(c, Default(4, 8))
	j := &workload.Job{Class: workload.BestEffort, Type: workload.Elastic,
		K: 8, BaseRuntime: 40, Slowdown: 1} // MinK unset → rigid
	req := g.Generate(0, j)
	for _, o := range req.Options {
		if o.Leaf.K != 8 {
			t.Errorf("rigid elastic offered width %d", o.Leaf.K)
		}
	}
}

func BenchmarkGenerateGSHETJob(b *testing.B) {
	c := cluster.RC80(true)
	g := New(c, Default(4, 96))
	j := &workload.Job{ID: 3, Class: workload.SLO, Reserved: true, Type: workload.MPI,
		K: 6, BaseRuntime: 180, Slowdown: 1.5, Deadline: 900}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Generate(0, j) == nil {
			b.Fatal("nil request")
		}
	}
}

// ttlSummary reduces a request to the fields the scheduler's expression cache
// must keep byte-identical: option keys, window-relative starts, widths,
// durations, and leaf values.
type ttlSummary struct {
	Key   string
	Start int64
	K     int
	Dur   int64
	Value float64
}

func summarize(req *Request) []ttlSummary {
	if req == nil {
		return nil
	}
	out := make([]ttlSummary, len(req.Options))
	for i, o := range req.Options {
		out[i] = ttlSummary{Key: o.Key, Start: o.Leaf.Start, K: o.Leaf.K, Dur: o.Leaf.Dur, Value: o.Leaf.Value}
	}
	return out
}

// TestGenerateTTLBoundsReuse pins the expiry bound that licenses the
// scheduler's expression cache: regenerating at any time up to and including
// validUntil yields a window-relative request identical to the cached one,
// and regenerating one quantum past it does not.
func TestGenerateTTLBoundsReuse(t *testing.T) {
	c := cluster.RC80(false)

	t.Run("slo deadline cull", func(t *testing.T) {
		g := New(c, Default(4, 16)) // 4 slices, starts s = 0..3
		j := &workload.Job{ID: 1, Class: workload.SLO, Reserved: true, Type: workload.Unconstrained,
			Submit: 0, K: 2, BaseRuntime: 20, Slowdown: 1, Deadline: 100}
		req, until := g.GenerateTTL(0, j)
		if req == nil {
			t.Fatal("nil request")
		}
		// The binding option is the last start (s=3): its completion is
		// now+4*3+20, which meets the deadline exactly until now = 68.
		if until != 68 {
			t.Fatalf("validUntil = %d, want 68 (deadline 100 - last-start completion offset 32)", until)
		}
		base := summarize(req)
		for _, now := range []int64{4, 36, until} {
			if got := summarize(g.Generate(now, j)); !reflect.DeepEqual(got, base) {
				t.Errorf("regeneration at now=%d (<= validUntil) diverged:\n  cached %v\n  fresh  %v", now, base, got)
			}
		}
		if got := summarize(g.Generate(until+4, j)); reflect.DeepEqual(got, base) {
			t.Errorf("regeneration at now=%d (past validUntil) still identical; the bound is not tight", until+4)
		}
	})

	t.Run("best-effort decaying", func(t *testing.T) {
		cfg := Default(4, 16)
		cfg.BEDecay = 100
		g := New(c, cfg)
		j := &workload.Job{ID: 2, Class: workload.BestEffort, Type: workload.Unconstrained,
			Submit: 0, K: 2, BaseRuntime: 20, Slowdown: 1}
		req, until := g.GenerateTTL(0, j)
		if req == nil {
			t.Fatal("nil request")
		}
		if until != 0 {
			t.Fatalf("validUntil = %d for a still-decaying best-effort value, want 0 (the generation instant only)", until)
		}
		if got := summarize(g.Generate(4, j)); reflect.DeepEqual(got, summarize(req)) {
			t.Error("decaying best-effort request identical one quantum later; its leaf values must have moved")
		}
	})

	t.Run("best-effort floored forever", func(t *testing.T) {
		cfg := Default(4, 16)
		cfg.BEDecay = 100
		g := New(c, cfg)
		// Submitted far in the past: the decayed value sits on the BEFloor
		// clamp and never moves again.
		j := &workload.Job{ID: 3, Class: workload.BestEffort, Type: workload.Unconstrained,
			Submit: -100000, K: 2, BaseRuntime: 20, Slowdown: 1}
		req, until := g.GenerateTTL(0, j)
		if req == nil {
			t.Fatal("nil request")
		}
		if until != math.MaxInt64 {
			t.Fatalf("validUntil = %d for a floored best-effort value, want MaxInt64 (never expires)", until)
		}
		for _, now := range []int64{400, 100000} {
			if got := summarize(g.Generate(now, j)); !reflect.DeepEqual(got, summarize(req)) {
				t.Errorf("floored best-effort request diverged at now=%d; the clamp makes it time-invariant", now)
			}
		}
	})

	t.Run("culled job", func(t *testing.T) {
		g := New(c, Default(4, 16))
		j := &workload.Job{ID: 4, Class: workload.SLO, Type: workload.Unconstrained,
			Submit: 0, K: 2, BaseRuntime: 200, Slowdown: 1, Deadline: 100}
		if req, _ := g.GenerateTTL(0, j); req != nil {
			t.Error("unsatisfiable job produced a request")
		}
	})
}
