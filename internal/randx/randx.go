// Package randx provides deterministic random distributions used by the
// workload generators. All draws flow through a seeded *rand.Rand so that a
// simulation seed fully determines its outcome.
package randx

import (
	"math"
	"math/rand"
	"sort"
)

// Source wraps a seeded PRNG with the distribution samplers the workload
// generators need.
type Source struct {
	r *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{r: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying *rand.Rand for ad hoc draws.
func (s *Source) Rand() *rand.Rand { return s.r }

// Float64 returns a uniform draw in [0,1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Source) Intn(n int) int { return s.r.Intn(n) }

// Uniform returns a uniform draw in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.r.Float64()
}

// UniformInt returns a uniform integer draw in [lo, hi] inclusive.
func (s *Source) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("randx: UniformInt hi < lo")
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Exp returns an exponential draw with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.r.ExpFloat64() * mean
}

// Lognormal returns a draw from a lognormal distribution parameterized by the
// mu and sigma of the underlying normal.
func (s *Source) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// LognormalMeanCV returns a lognormal draw parameterized by its own mean and
// coefficient of variation (stddev/mean), which is how workload
// characterizations are usually reported.
func (s *Source) LognormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		panic("randx: lognormal mean must be positive")
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return s.Lognormal(mu, math.Sqrt(sigma2))
}

// BoundedPareto returns a draw from a bounded Pareto distribution on [lo, hi]
// with shape alpha. Heavy-tailed job sizes in production traces are commonly
// modeled this way.
func (s *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("randx: invalid bounded Pareto parameters")
	}
	u := s.r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	return s.r.Float64() < p
}

// Discrete samples from a finite distribution given by (value, weight) pairs.
type Discrete struct {
	values []float64
	cum    []float64 // cumulative weights, last element = total
}

// NewDiscrete builds a sampler over the given values with the given
// nonnegative weights. Weights need not sum to 1.
func NewDiscrete(values, weights []float64) *Discrete {
	if len(values) != len(weights) || len(values) == 0 {
		panic("randx: values/weights mismatch")
	}
	d := &Discrete{values: append([]float64(nil), values...), cum: make([]float64, len(weights))}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("randx: negative weight")
		}
		total += w
		d.cum[i] = total
	}
	if total <= 0 {
		panic("randx: weights sum to zero")
	}
	return d
}

// Sample draws one value.
func (d *Discrete) Sample(s *Source) float64 {
	u := s.Float64() * d.cum[len(d.cum)-1]
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}

// Mean returns the expectation of the discrete distribution.
func (d *Discrete) Mean() float64 {
	total := d.cum[len(d.cum)-1]
	mean := 0.0
	prev := 0.0
	for i, c := range d.cum {
		mean += d.values[i] * (c - prev) / total
		prev = c
	}
	return mean
}

// Shuffle permutes the ints in place.
func (s *Source) Shuffle(xs []int) {
	s.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Split derives a new independent Source from this one; convenient for giving
// each workload stream its own generator while staying deterministic.
func (s *Source) Split() *Source {
	return New(s.r.Int63())
}
