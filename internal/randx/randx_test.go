package randx

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestUniformRange(t *testing.T) {
	s := New(1)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(3, 7)
		if v < 3 || v >= 7 {
			t.Fatalf("uniform out of range: %v", v)
		}
		n := s.UniformInt(2, 5)
		if n < 2 || n > 5 {
			t.Fatalf("uniform int out of range: %v", n)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("exp mean = %v, want ~10", mean)
	}
}

func TestLognormalMeanCV(t *testing.T) {
	s := New(11)
	sum, sumsq := 0.0, 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := s.LognormalMeanCV(50, 1.5)
		if v <= 0 {
			t.Fatalf("lognormal draw <= 0")
		}
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	if math.Abs(mean-50)/50 > 0.05 {
		t.Errorf("lognormal mean = %v, want ~50", mean)
	}
	std := math.Sqrt(sumsq/n - mean*mean)
	cv := std / mean
	if math.Abs(cv-1.5)/1.5 > 0.1 {
		t.Errorf("lognormal cv = %v, want ~1.5", cv)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	s := New(13)
	for i := 0; i < 5000; i++ {
		v := s.BoundedPareto(1.2, 1, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("bounded pareto out of range: %v", v)
		}
	}
}

func TestDiscrete(t *testing.T) {
	d := NewDiscrete([]float64{1, 10, 100}, []float64{1, 2, 1})
	if math.Abs(d.Mean()-(1*0.25+10*0.5+100*0.25)) > 1e-9 {
		t.Errorf("discrete mean = %v", d.Mean())
	}
	s := New(17)
	counts := map[float64]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(s)]++
	}
	if len(counts) != 3 {
		t.Fatalf("sampled %d distinct values, want 3", len(counts))
	}
	if f := float64(counts[10]) / n; math.Abs(f-0.5) > 0.02 {
		t.Errorf("P(10) = %v, want ~0.5", f)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.01 {
		t.Errorf("bernoulli rate = %v, want ~0.3", f)
	}
}

func TestSplitIndependence(t *testing.T) {
	s := New(23)
	a := s.Split()
	b := s.Split()
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
		}
	}
	if same {
		t.Errorf("split sources produced identical streams")
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { New(1).LognormalMeanCV(-1, 1) },
		func() { New(1).BoundedPareto(0, 1, 2) },
		func() { NewDiscrete([]float64{1}, []float64{0}) },
		func() { NewDiscrete([]float64{1, 2}, []float64{1}) },
		func() { New(1).UniformInt(5, 4) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
