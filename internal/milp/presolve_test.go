package milp

import (
	"math"
	"testing"
)

// TestPresolveBoundPropagationFixesBinaries: a ≤-row whose residual activity
// forces every binary below 1 must fix them all to 0 and leave an empty
// reduced model.
func TestPresolveBoundPropagationFixesBinaries(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("tight", []Term{{x, 2}, {y, 2}}, LE, 1)
	pre := Presolve(m)
	if pre.Infeasible {
		t.Fatal("model is feasible (all-zero), presolve claimed infeasible")
	}
	if pre.Stats.VarsFixed != 2 {
		t.Errorf("VarsFixed = %d, want 2", pre.Stats.VarsFixed)
	}
	if pre.Model.NumVars() != 0 {
		t.Errorf("reduced model has %d vars, want 0", pre.Model.NumVars())
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || sol.Objective != 0 {
		t.Errorf("solve: status %v objective %v, want optimal 0", sol.Status, sol.Objective)
	}
	if len(sol.Values) != 2 || sol.Values[0] != 0 || sol.Values[1] != 0 {
		t.Errorf("lifted values %v, want [0 0]", sol.Values)
	}
}

// TestPresolveSingletonAndPropagation: singleton rows become bounds (with
// integer rounding) and are dropped; propagation tightens the coupled row's
// variables.
func TestPresolveSingletonAndPropagation(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Integer, 0, 10, 1)
	y := m.AddVar("y", Integer, 0, 10, 1)
	m.AddConstraint("cap", []Term{{x, 1}, {y, 1}}, LE, 7)
	m.AddConstraint("xcap", []Term{{x, 2}}, LE, 9)
	pre := Presolve(m)
	if pre.Infeasible || pre.Model.NumVars() != 2 {
		t.Fatalf("unexpected reduction outcome: %+v", pre)
	}
	if ub := pre.Model.Vars[0].Ub; ub != 4 {
		t.Errorf("x upper bound = %v, want 4 (2x ≤ 9 rounded inward)", ub)
	}
	if ub := pre.Model.Vars[1].Ub; ub != 7 {
		t.Errorf("y upper bound = %v, want 7 (propagated from cap)", ub)
	}
	if pre.Stats.RowsDropped != 1 {
		t.Errorf("RowsDropped = %d, want 1 (the singleton)", pre.Stats.RowsDropped)
	}
	if pre.Model.NumConstraints() != 1 {
		t.Errorf("reduced model has %d rows, want 1", pre.Model.NumConstraints())
	}
}

// TestPresolveRedundantRow: a row slack at every point of the bound box is
// dropped.
func TestPresolveRedundantRow(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("slack", []Term{{x, 1}, {y, 1}}, LE, 5)
	m.AddConstraint("eq", []Term{{x, 1}, {y, -1}}, EQ, 0) // keeps x,y from duality fixing
	pre := Presolve(m)
	if pre.Infeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if pre.Model.NumConstraints() != 1 {
		t.Errorf("reduced model has %d rows, want 1 (slack row dropped)", pre.Model.NumConstraints())
	}
}

// TestPresolveDedup: identical ≤-rows merge keeping the smallest RHS, and a
// ≥-row mirroring a ≤-row merges through GE→LE normalization.
func TestPresolveDedup(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("a", []Term{{x, 1}, {y, 1}}, LE, 2)
	m.AddConstraint("b", []Term{{x, 1}, {y, 1}}, LE, 1)
	m.AddConstraint("c", []Term{{x, -1}, {y, -1}}, GE, -1) // normalizes to x+y ≤ 1
	pre := Presolve(m)
	if pre.Infeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if pre.Model.NumConstraints() != 1 {
		t.Fatalf("reduced model has %d rows, want 1", pre.Model.NumConstraints())
	}
	if rhs := pre.Model.Cons[0].RHS; rhs != 1 {
		t.Errorf("merged RHS = %v, want the tightest (1)", rhs)
	}
}

// TestPresolveDedupEQConflict: identical =-rows with different RHS prove
// infeasibility.
func TestPresolveDedupEQConflict(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("a", []Term{{x, 1}, {y, 1}}, EQ, 1)
	m.AddConstraint("b", []Term{{x, 1}, {y, 1}}, EQ, 2)
	if pre := Presolve(m); !pre.Infeasible {
		t.Error("conflicting duplicate equalities not detected as infeasible")
	}
}

// TestPresolveCliqueDomination: a set-packing row whose literals are a subset
// of another packing row's is implied by it and dropped.
func TestPresolveCliqueDomination(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	z := m.AddBinary("z", 1)
	m.AddConstraint("sub", []Term{{x, 1}, {y, 1}}, LE, 1)
	m.AddConstraint("super", []Term{{x, 1}, {y, 1}, {z, 1}}, LE, 1)
	pre := Presolve(m)
	if pre.Infeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if pre.Stats.CliquesMerged != 1 {
		t.Errorf("CliquesMerged = %d, want 1", pre.Stats.CliquesMerged)
	}
	if pre.Model.NumConstraints() != 1 {
		t.Errorf("reduced model has %d rows, want 1", pre.Model.NumConstraints())
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 1 {
		t.Errorf("objective = %v, want 1 (at most one of x,y,z)", sol.Objective)
	}
}

// TestPresolveDualityFix: an empty column with positive objective under
// maximize sits at its upper bound; negative objective at its lower bound.
func TestPresolveDualityFix(t *testing.T) {
	m := NewModel(Maximize)
	up := m.AddVar("up", Integer, 0, 3, 2)
	dn := m.AddVar("dn", Integer, 0, 3, -2)
	_ = up
	_ = dn
	pre := Presolve(m)
	if pre.Stats.VarsFixed != 2 || pre.Model.NumVars() != 0 {
		t.Fatalf("empty columns not fixed: %+v", pre.Stats)
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 6 || sol.Values[0] != 3 || sol.Values[1] != 0 {
		t.Errorf("objective %v values %v, want 6 [3 0]", sol.Objective, sol.Values)
	}
}

// TestPresolveObjConstAndLift: a GE-singleton fixes a column with objective
// weight; the lifted solution restores the column's value and the objective
// constant on both objective and bound.
func TestPresolveObjConstAndLift(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 1)
	z := m.AddBinary("z", 1)
	m.AddConstraint("force", []Term{{x, 1}}, GE, 1)
	m.AddConstraint("choose", []Term{{y, 1}, {z, 1}}, EQ, 1)
	pre := Presolve(m)
	if pre.Infeasible {
		t.Fatal("feasible model declared infeasible")
	}
	if pre.Stats.VarsFixed != 1 || pre.Model.NumVars() != 2 {
		t.Fatalf("want exactly x fixed: %+v, %d vars left", pre.Stats, pre.Model.NumVars())
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || sol.Objective != 6 {
		t.Errorf("status %v objective %v, want optimal 6", sol.Status, sol.Objective)
	}
	if sol.Bound != 6 {
		t.Errorf("bound %v, want 6 (objective constant lifted into the bound)", sol.Bound)
	}
	if sol.Values[0] != 1 {
		t.Errorf("fixed column not restored: values %v", sol.Values)
	}
	if !m.IsFeasible(sol.Values, 1e-9) {
		t.Errorf("lifted point infeasible in the original model: %v", sol.Values)
	}
}

// TestPresolveDetectsInfeasible: presolve proves infeasibility before the
// solver runs, and Solve reports it with the presolve stats attached.
func TestPresolveDetectsInfeasible(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("impossible", []Term{{x, 1}, {y, 1}}, GE, 3)
	pre := Presolve(m)
	if !pre.Infeasible {
		t.Fatal("x+y ≥ 3 over binaries not detected as infeasible")
	}
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("solve status %v, want infeasible", sol.Status)
	}
	if sol.Presolve.Rounds == 0 {
		t.Error("presolve stats missing from the infeasible solution")
	}
}

// TestPresolveRestrictLiftRoundtrip: point maps drop fixed columns on the way
// in and restore them on the way out; malformed seeds vanish (nil).
func TestPresolveRestrictLiftRoundtrip(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 1)
	z := m.AddBinary("z", 1)
	m.AddConstraint("force", []Term{{x, 1}}, GE, 1)
	m.AddConstraint("choose", []Term{{y, 1}, {z, 1}}, EQ, 1)
	pre := Presolve(m)
	if pre.Model.NumVars() != 2 {
		t.Fatalf("want a 2-var reduced model, got %d", pre.Model.NumVars())
	}
	r := pre.RestrictPoint([]float64{1, 0.25, 0.75})
	if len(r) != 2 || r[0] != 0.25 || r[1] != 0.75 {
		t.Errorf("RestrictPoint = %v, want [0.25 0.75]", r)
	}
	l := pre.LiftPoint(r)
	if len(l) != 3 || l[0] != 1 || l[1] != 0.25 || l[2] != 0.75 {
		t.Errorf("LiftPoint = %v, want [1 0.25 0.75]", l)
	}
	if pre.RestrictPoint(nil) != nil {
		t.Error("RestrictPoint(nil) != nil")
	}
	if pre.RestrictPoint([]float64{1}) != nil {
		t.Error("length-mismatched seed not rejected")
	}
}

// TestPresolveIdentity: a model with nothing to reduce passes through
// untouched — same *Model pointer, zero stats, passthrough point maps.
func TestPresolveIdentity(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 4)
	z := m.AddBinary("z", 3)
	m.AddConstraint("cap", []Term{{x, 2}, {y, 2}, {z, 2}}, LE, 4)
	pre := Presolve(m)
	if pre.Model != m {
		t.Error("identity presolve did not alias the input model")
	}
	if pre.Stats.VarsFixed != 0 || pre.Stats.RowsDropped != 0 {
		t.Errorf("identity presolve reported work: %+v", pre.Stats)
	}
	seed := []float64{1, 1, 0}
	if r := pre.RestrictPoint(seed); &r[0] != &seed[0] {
		t.Error("identity RestrictPoint did not pass the slice through")
	}
}

// TestPresolveInfiniteBounds: unbounded continuous columns must not poison
// activity analysis — the coupled row stays, and the solve still finishes.
func TestPresolveInfiniteBounds(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar("x", Continuous, 0, Inf, 1)
	y := m.AddVar("y", Continuous, 0, Inf, 1)
	m.AddConstraint("need", []Term{{x, 1}, {y, 1}}, GE, 2)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Errorf("status %v objective %v, want optimal 2", sol.Status, sol.Objective)
	}
}
