package milp

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// randMILP builds a seeded random mixed model with a couple of coupling
// constraints, giving branch-and-bound trees deep enough to exercise the
// worker pool.
func randMILP(seed int64) *Model {
	r := rand.New(rand.NewSource(seed))
	m := NewModel(Maximize)
	n := 8 + r.Intn(8)
	terms1 := make([]Term, 0, n)
	terms2 := make([]Term, 0, n)
	for i := 0; i < n; i++ {
		var v VarID
		switch r.Intn(3) {
		case 0:
			v = m.AddBinary(fmt.Sprintf("b%d", i), 1+r.Float64()*9)
		case 1:
			v = m.AddVar(fmt.Sprintf("i%d", i), Integer, 0, float64(1+r.Intn(4)), 1+r.Float64()*5)
		default:
			v = m.AddVar(fmt.Sprintf("c%d", i), Continuous, 0, 2, r.Float64()*3)
		}
		terms1 = append(terms1, Term{v, 1 + r.Float64()*4})
		terms2 = append(terms2, Term{v, r.Float64() * 3})
	}
	m.AddConstraint("cap1", terms1, LE, float64(n)*1.5)
	m.AddConstraint("cap2", terms2, LE, float64(n))
	return m
}

// TestParallelMatchesSerialObjective runs exact solves of the same models
// serially and with both parallel drivers; all must agree on the optimal
// objective (the optimal point need not be unique).
func TestParallelMatchesSerialObjective(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		serial, err := Solve(randMILP(seed), Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		if serial.Workers != 1 {
			t.Fatalf("seed %d: serial Workers = %d", seed, serial.Workers)
		}
		for _, opt := range []Options{
			{Workers: 4, SerialCutoff: -1},
			{Workers: 4, Deterministic: true, SerialCutoff: -1},
		} {
			par, err := Solve(randMILP(seed), opt)
			if err != nil {
				t.Fatalf("seed %d workers=4 det=%v: %v", seed, opt.Deterministic, err)
			}
			if par.Status != serial.Status {
				t.Errorf("seed %d det=%v: status %v, serial %v", seed, opt.Deterministic, par.Status, serial.Status)
			}
			if diff := par.Objective - serial.Objective; diff > 1e-6 || diff < -1e-6 {
				t.Errorf("seed %d det=%v: objective %.9f, serial %.9f", seed, opt.Deterministic, par.Objective, serial.Objective)
			}
			if par.Workers != 4 {
				t.Errorf("seed %d det=%v: Workers = %d, want 4", seed, opt.Deterministic, par.Workers)
			}
		}
	}
}

// TestDeterministicParallelValues solves the same model ten times with four
// deterministic workers; every run must return byte-identical Values.
func TestDeterministicParallelValues(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		var ref *Solution
		for run := 0; run < 10; run++ {
			sol, err := Solve(randMILP(seed), Options{Workers: 4, Deterministic: true, Gap: 0.05, SerialCutoff: -1})
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, run, err)
			}
			if ref == nil {
				ref = sol
				continue
			}
			if sol.Objective != ref.Objective || sol.Bound != ref.Bound || sol.Nodes != ref.Nodes {
				t.Fatalf("seed %d run %d: (obj,bound,nodes)=(%v,%v,%d) differs from run 0 (%v,%v,%d)",
					seed, run, sol.Objective, sol.Bound, sol.Nodes, ref.Objective, ref.Bound, ref.Nodes)
			}
			if len(sol.Values) != len(ref.Values) {
				t.Fatalf("seed %d run %d: Values length drifted", seed, run)
			}
			for i := range sol.Values {
				if sol.Values[i] != ref.Values[i] {
					t.Fatalf("seed %d run %d: Values[%d] = %v, run 0 had %v", seed, run, i, sol.Values[i], ref.Values[i])
				}
			}
		}
	}
}

// TestParallelGapBoundInvariant re-runs the bound invariant under both
// parallel drivers: a gap-limited parallel solve must never report a bound
// tighter than the true optimum.
func TestParallelGapBoundInvariant(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		exact, err := Solve(randKnapsack(seed), Options{})
		if err != nil || exact.Status != StatusOptimal {
			t.Fatalf("seed %d: exact solve failed: %v %v", seed, exact, err)
		}
		for _, opt := range []Options{
			{Workers: 4, Gap: 0.2, SerialCutoff: -1},
			{Workers: 4, Deterministic: true, Gap: 0.2, SerialCutoff: -1},
		} {
			sol, err := Solve(randKnapsack(seed), opt)
			if err != nil {
				t.Fatalf("seed %d det=%v: %v", seed, opt.Deterministic, err)
			}
			if sol.Bound < exact.Objective-1e-6 {
				t.Errorf("seed %d det=%v: Bound %.6f tighter than optimum %.6f", seed, opt.Deterministic, sol.Bound, exact.Objective)
			}
			if sol.Gap() > 0.2+1e-9 {
				t.Errorf("seed %d det=%v: achieved gap %.4f exceeds requested 0.2", seed, opt.Deterministic, sol.Gap())
			}
		}
	}
}

// TestParallelWithHeuristic exercises the concurrent heuristic-callback path
// (the STRL compiler's GreedyRound runs this way in production).
func TestParallelWithHeuristic(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		m := randMILP(seed)
		heur := func(relax []float64) []float64 {
			cand := make([]float64, len(relax))
			for i, v := range m.Vars {
				if v.Type == Continuous {
					cand[i] = relax[i]
				}
			}
			return cand // all-integers-zero: feasible for these ≤ models
		}
		serial, err := Solve(randMILP(seed), Options{Workers: 1, Heuristic: heur})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		par, err := Solve(randMILP(seed), Options{Workers: 4, Heuristic: heur, SerialCutoff: -1})
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if diff := par.Objective - serial.Objective; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("seed %d: objective %.9f, serial %.9f", seed, par.Objective, serial.Objective)
		}
	}
}

// TestWorkersDefault checks Workers resolution: 0 means one worker per CPU.
func TestWorkersDefault(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	m.AddConstraint("c", []Term{{x, 1}}, LE, 1)
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); sol.Workers != want {
		t.Fatalf("Workers = %d, want GOMAXPROCS = %d", sol.Workers, want)
	}
}

// TestParallelTimeLimit checks cooperative deadline handling: workers must
// stop promptly and still return the best incumbent found.
func TestParallelTimeLimit(t *testing.T) {
	start := time.Now()
	sol, err := Solve(randMILP(3), Options{Workers: 4, TimeLimit: 50 * time.Millisecond, SerialCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("solve ran %v, deadline not honored", el)
	}
	if sol.Status != StatusOptimal && sol.Status != StatusFeasible {
		t.Fatalf("status = %v, want a solution", sol.Status)
	}
}

// TestParallelMaxNodes checks the cooperative node limit.
func TestParallelMaxNodes(t *testing.T) {
	sol, err := Solve(randMILP(5), Options{Workers: 4, MaxNodes: 3, SerialCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	// The limit is checked before each pop; a round of in-flight workers may
	// overshoot by at most Workers nodes.
	if sol.Nodes > 3+4 {
		t.Fatalf("explored %d nodes, limit 3 (+4 in-flight slack)", sol.Nodes)
	}
}

// --- Warm-start seeding (Options.InitialSolution) ---

// warmStartModel is a knapsack with a known feasible-but-suboptimal seed.
func warmStartModel() (*Model, []float64) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 4)
	z := m.AddBinary("z", 3)
	m.AddConstraint("cap", []Term{{x, 2}, {y, 2}, {z, 2}}, LE, 4)
	return m, []float64{0, 0, 1} // objective 3; optimum is x+y = 9
}

// TestWarmStartFeasibleSeedSurvivesRootAbort: when the root relaxation is
// aborted (expired deadline), a feasible InitialSolution is returned as the
// incumbent instead of NoSolution.
func TestWarmStartFeasibleSeedSurvivesRootAbort(t *testing.T) {
	m, seed := warmStartModel()
	sol, err := Solve(m, Options{TimeLimit: time.Nanosecond, InitialSolution: seed})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusFeasible {
		t.Fatalf("status = %v, want feasible (seed incumbent)", sol.Status)
	}
	if sol.Objective != 3 {
		t.Fatalf("objective = %v, want the seed's 3", sol.Objective)
	}
	for i, v := range seed {
		if sol.Values[i] != v {
			t.Fatalf("Values[%d] = %v, want seed value %v", i, sol.Values[i], v)
		}
	}
}

// TestWarmStartInfeasibleSeedRejected: an infeasible seed must be silently
// dropped — with no time to search, that means NoSolution, never a bogus
// incumbent.
func TestWarmStartInfeasibleSeedRejected(t *testing.T) {
	m, _ := warmStartModel()
	bad := []float64{1, 1, 1} // weight 6 > cap 4
	sol, err := Solve(m, Options{TimeLimit: time.Nanosecond, InitialSolution: bad})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusNoSolution {
		t.Fatalf("status = %v, want no-solution (infeasible seed rejected)", sol.Status)
	}
	if sol.Values != nil {
		t.Fatalf("Values = %v, want nil", sol.Values)
	}
}

// TestWarmStartSeedBeatsGap: a feasible seed already within the gap lets a
// full solve terminate immediately on it.
func TestWarmStartSeedAdoptedAsIncumbent(t *testing.T) {
	m, seed := warmStartModel()
	sol, err := Solve(m, Options{InitialSolution: seed, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With the node budget exhausted at the root, the returned incumbent is
	// either the seed or something the root heuristics improved past it.
	if sol.Objective < 3 {
		t.Fatalf("objective = %v, seed incumbent (3) was lost", sol.Objective)
	}
}
