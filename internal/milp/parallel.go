package milp

import (
	"container/heap"
	"math"
	"sync"
	"time"
)

// Parallel branch-and-bound drivers.
//
// Two strategies share the serial search's node/incumbent logic:
//
//   - runAsync: a free-running worker pool over the shared best-bound heap.
//     Workers pop under a mutex, solve the node's LP relaxation on private
//     scratch state, then re-acquire the lock to publish incumbents and push
//     children. Fastest, but the explored tree depends on worker
//     interleaving, so equal-objective ties can resolve differently run to
//     run.
//
//   - runBatch (Options.Deterministic): synchronous rounds. Each round pops
//     up to Workers nodes in best-bound order (ties broken by node creation
//     sequence), evaluates their LPs concurrently, then applies the results
//     in pop order. The explored tree and all tie-breaks are independent of
//     goroutine scheduling, so repeated solves return byte-identical Values
//     (absent wall-clock limits).
//
// Both honor gap/time/node limits cooperatively: any worker that observes a
// limit raises the shared stop flag and wakes the others.

// nodeResult is the off-lock outcome of evaluating one branch-and-bound node.
type nodeResult struct {
	node     *bbNode
	dead     bool        // infeasible, numerical trouble, or obj-pruned at solve time
	obj      float64     // LP objective of the node relaxation
	integral bool        // relaxation solved integral
	vals     []float64   // integral point (when integral)
	cand     []float64   // heuristic candidate to consider (may be nil)
	fracs    []fracVar   // fractional candidates (when !integral); branch selection
	snap     *basisState // node's optimal basis, shared by both children
}

// evalNode solves one node's LP relaxation on the worker's scratch and
// derives everything the shared-state apply step needs. It only reads search
// state that is fixed for the duration of the solve (model, p, opts,
// deadline) plus the caller's scratch, so it runs without the driver lock.
// idx is the node's 1-based processing index, used for the heuristic cadence.
func (s *search) evalNode(node *bbNode, sc *simplexState, lbBuf, ubBuf []float64, idx int) nodeResult {
	copy(lbBuf, s.p.lb)
	copy(ubBuf, s.p.ub)
	for _, o := range node.overrides {
		if o.isUB {
			ubBuf[o.col] = math.Min(ubBuf[o.col], o.value)
		} else {
			lbBuf[o.col] = math.Max(lbBuf[o.col], o.value)
		}
	}
	st, x, err := s.solveNodeLP(sc, node, lbBuf, ubBuf)
	if err != nil || st != lpOptimal {
		// Infeasible, unbounded (impossible below a bounded root), iteration
		// limit, or numerical trouble: prune, as the serial loop does.
		return nodeResult{node: node, dead: true}
	}
	r := nodeResult{node: node, obj: s.model.ObjectiveValue(x[:len(s.model.Vars)])}
	if fr := firstFractional(s.model, x); fr < 0 {
		r.integral = true
		r.vals = roundIntegral(s.model, x[:len(s.model.Vars)])
		return r
	}
	// Snapshot before the heuristic dive: the dive solves on its own scratch,
	// but taking the basis now keeps the capture adjacent to the solve it
	// belongs to.
	r.snap = s.nodeSnapshot(sc)
	if s.opts.Heuristic != nil && idx%16 == 0 {
		if cand := s.opts.Heuristic(x[:len(s.model.Vars)]); cand != nil && s.model.IsFeasible(cand, 1e-6) {
			r.cand = cand
		}
	} else if s.opts.Heuristic == nil && idx%64 == 0 {
		if cand := diveFrom(s.model, s.p, lbBuf, ubBuf, x, s.deadline, !s.opts.DisableWarmStart, &sc.stats); cand != nil {
			r.cand = cand
		}
	}
	// Branch selection consults the shared pseudocost table, so it happens in
	// the apply step (under the driver lock); only the fractional candidates
	// are captured here, copied because x aliases the worker scratch.
	r.fracs = gatherFractional(s.model, x, nil)
	return r
}

// applyResult publishes one evaluated node into the shared search state:
// incumbent updates and child creation. Callers must hold the driver lock
// (async) or apply results in deterministic order between rounds (batch).
func (s *search) applyResult(r nodeResult) {
	if r.dead {
		return
	}
	s.noteBranchOutcome(r.node, r.obj)
	// Re-check against the possibly-improved incumbent: another worker may
	// have published a better one while this node's LP was solving.
	if s.incumbent != nil && !s.better(r.obj, s.incObj) {
		return
	}
	if r.integral {
		o := s.model.ObjectiveValue(r.vals)
		if s.incumbent == nil || s.better(o, s.incObj) {
			s.incumbent, s.incObj = r.vals, o
		}
		return
	}
	if r.cand != nil {
		if o := s.model.ObjectiveValue(r.cand); s.incumbent == nil || s.better(o, s.incObj) {
			s.incumbent, s.incObj = r.cand, o
		}
		if s.incumbent != nil && !s.better(r.obj, s.incObj) {
			return // the candidate itself closed this subtree
		}
	}
	bv, v := s.selectBranch(r.fracs)
	s.pushChildren(r.node, bv, v, r.obj, r.snap)
}

// runAsync is the free-running worker pool. Shared state (heap, incumbent,
// counters, bestBound) is guarded by mu; workers block on cond when the heap
// is momentarily empty but siblings are still expanding nodes.
//
// A worker may be expanding a node whose bound is weaker than the heap top,
// and its subtree stays unexplored if the search stops now — so the proven
// global bound, the gap-termination test, and the bound reported at limit
// stops must all fold in the bounds of in-flight nodes, not just the heap.
func (s *search) runAsync() {
	var (
		mu         sync.Mutex
		cond       = sync.Cond{L: &mu}
		inFlight   []float64 // bounds of nodes currently being evaluated
		stopped    bool
		boundFinal bool // s.bestBound already folds heap + in-flight; finish must keep it
	)
	stop := func() {
		if !stopped {
			stopped = true
			cond.Broadcast()
		}
	}
	// globalBound folds the heap top and every in-flight bound; extra, if
	// non-nil, is a just-popped node not yet counted anywhere.
	globalBound := func(extra *float64) float64 {
		var b float64
		have := false
		if extra != nil {
			b, have = *extra, true
		}
		if s.h.Len() > 0 {
			if !have || s.weakerBound(s.h.nodes[0].bound, b) {
				b, have = s.h.nodes[0].bound, true
			}
		}
		for _, fb := range inFlight {
			if !have || s.weakerBound(fb, b) {
				b, have = fb, true
			}
		}
		if !have {
			return s.incObj
		}
		return b
	}
	// stopAtLimit finalizes the reported bound before a node/time limit stop:
	// heap and in-flight subtrees are all unexplored at this point.
	stopAtLimit := func() {
		s.bestBound = globalBound(nil)
		boundFinal = true
		stop()
	}
	worker := func() {
		sc := newScratch(s.p)
		lbBuf := make([]float64, len(s.p.lb))
		ubBuf := make([]float64, len(s.p.ub))
		mu.Lock()
		defer mu.Unlock()
		// LIFO defers: the stats fold runs before the Unlock above, i.e.
		// still under the driver lock.
		defer s.lp.add(&sc.stats)
		for {
			for !stopped && s.h.Len() == 0 && len(inFlight) > 0 {
				cond.Wait()
			}
			if stopped || s.h.Len() == 0 {
				// Heap drained and nobody is expanding: search exhausted.
				stop()
				return
			}
			if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
				stopAtLimit()
				return
			}
			if s.opts.TimeLimit > 0 && time.Since(s.start) > s.opts.TimeLimit {
				s.deadlineHit = true
				stopAtLimit()
				return
			}
			node := heap.Pop(s.h).(*bbNode)
			glob := globalBound(&node.bound)
			s.bestBound = glob
			if s.incumbent != nil && !s.better(node.bound, s.incObj) {
				continue // pruned by bound
			}
			// Stop only when the *global* bound meets the gap: the popped
			// node alone being within gap proves nothing while a
			// weaker-bound sibling is still in flight. Until then gap-met
			// nodes keep getting expanded — that work tightens the bound.
			if s.gapMet(glob) {
				s.gapBreak = true
				boundFinal = true
				stop()
				return
			}
			s.nodes++
			idx := s.nodes
			inFlight = append(inFlight, node.bound)
			mu.Unlock()
			r := s.evalNode(node, sc, lbBuf, ubBuf, idx)
			mu.Lock()
			for i, fb := range inFlight {
				if fb == node.bound {
					inFlight = append(inFlight[:i], inFlight[i+1:]...)
					break
				}
			}
			if !stopped {
				s.applyResult(r)
			}
			cond.Broadcast()
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < s.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	wg.Wait()
	s.boundFinal = boundFinal
}

// weakerBound reports whether a is a weaker (more conservative) bound than b.
func (s *search) weakerBound(a, b float64) bool {
	if s.maximize {
		return a > b
	}
	return a < b
}

// runBatch is the deterministic driver: synchronous rounds of up to Workers
// nodes, popped in best-bound order with sequence tie-breaks, evaluated
// concurrently, applied in pop order.
func (s *search) runBatch() {
	lbBufs := make([][]float64, s.workers)
	ubBufs := make([][]float64, s.workers)
	scratches := make([]*simplexState, s.workers)
	for i := range lbBufs {
		lbBufs[i] = make([]float64, len(s.p.lb))
		ubBufs[i] = make([]float64, len(s.p.ub))
		scratches[i] = newScratch(s.p)
	}
	defer func() {
		for _, sc := range scratches {
			s.lp.add(&sc.stats)
		}
	}()
	batch := make([]*bbNode, 0, s.workers)
	idxs := make([]int, 0, s.workers)
	results := make([]nodeResult, s.workers)
	for s.h.Len() > 0 {
		if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
			break
		}
		if s.opts.TimeLimit > 0 && time.Since(s.start) > s.opts.TimeLimit {
			s.deadlineHit = true
			break
		}
		// Build this round's batch in deterministic best-bound order. The
		// gap test only applies to the first pop: it carries the global
		// bound, and stopping there matches the serial search.
		batch, idxs = batch[:0], idxs[:0]
		for len(batch) < s.workers && s.h.Len() > 0 {
			node := heap.Pop(s.h).(*bbNode)
			if len(batch) == 0 {
				s.bestBound = node.bound
			}
			if s.incumbent != nil && !s.better(node.bound, s.incObj) {
				continue // pruned by bound
			}
			if len(batch) == 0 && s.gapMet(node.bound) {
				s.gapBreak = true
				break
			}
			s.nodes++
			batch = append(batch, node)
			idxs = append(idxs, s.nodes)
		}
		if s.gapBreak {
			break
		}
		if len(batch) == 0 {
			continue
		}
		var wg sync.WaitGroup
		for i := range batch {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = s.evalNode(batch[i], scratches[i], lbBufs[i], ubBufs[i], idxs[i])
			}(i)
		}
		wg.Wait()
		for i := range batch {
			s.applyResult(results[i])
		}
	}
}
