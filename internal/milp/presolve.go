package milp

import (
	"math"
	"sort"
	"time"
)

// This file implements the presolve (model-reduction) pass that runs between
// compilation and branch-and-bound. The compiled STRL models carry structure
// a reducer can exploit — choose-≤-1 indicator rows, binaries already fixed
// by their bounds, capacity rows that are slack for every assignment, and
// duplicate rows emitted by per-slice capacity expansion. Presolve applies a
// catalog of standard reductions repeatedly to a fixpoint:
//
//   - bound propagation over ≤-rows (and both sides of =-rows), tightening
//     and fixing integer variables from row activity bounds;
//   - singleton-row conversion to bounds and redundant-row elimination
//     (rows whose max activity cannot exceed the RHS);
//   - fixed-column substitution into the RHS with objective-constant
//     accumulation, and empty-column removal via duality fixing (a variable
//     whose objective and row coefficients all pull one way is fixed to the
//     corresponding bound);
//   - dedup of identical rows (≥-rows are normalized to ≤ first, so a
//     mirrored pair also merges);
//   - clique strengthening: set-packing rows over binary literals that are
//     subsets of another packing row are implied by it and dropped.
//
// Every reduction preserves the optimal objective value, and the surviving
// reductions preserve feasibility of restricted points: mapping any feasible
// full-space point into the reduced space (dropping fixed columns) yields a
// feasible reduced point, so warm-start seeds and heuristic candidates pass
// through Presolved.RestrictPoint unharmed. Lift restores a full-space
// Solution — values for fixed columns, the accumulated objective constant on
// both objective and bound — so callers cannot observe the reduction.

// psTol is the presolve-local absolute tolerance for declaring a row violated (and hence
// the model infeasible) during presolve. It is deliberately tighter than the
// 1e-6 feasibility tolerance used by IsFeasible so presolve never rejects a
// model the solver would accept.
const psTol = 1e-7

// maxPresolveRounds bounds the reduce-to-fixpoint loop. Reductions monotonely
// shrink the model, so the loop terminates on its own; the cap is a backstop
// against tolerance-induced oscillation.
const maxPresolveRounds = 25

// PresolveStats reports what the presolve pass did to a model.
type PresolveStats struct {
	VarsFixed     int // columns fixed and substituted out
	RowsDropped   int // rows eliminated (redundant, singleton, duplicate, empty, clique-implied)
	CliquesMerged int // set-packing rows dropped as subsets of a stronger clique (also counted in RowsDropped)
	Rounds        int // fixpoint iterations run
	Duration      time.Duration
}

// add folds o into s (used when merging decomposed part solutions and when
// accumulating scheduler-lifetime telemetry).
func (s *PresolveStats) add(o *PresolveStats) {
	s.VarsFixed += o.VarsFixed
	s.RowsDropped += o.RowsDropped
	s.CliquesMerged += o.CliquesMerged
	s.Rounds += o.Rounds
	s.Duration += o.Duration
}

// Presolved is the outcome of reducing a model: the reduced model plus the
// postsolve state needed to lift reduced-space solutions and map full-space
// points (seeds, heuristic candidates) into the reduced space.
type Presolved struct {
	// Model is the reduced model to hand to the solver. When no reduction
	// fired it is the original model, untouched.
	Model *Model
	// Stats records what the pass did.
	Stats PresolveStats
	// Infeasible reports that presolve proved the model has no feasible
	// point; Model is nil in that case.
	Infeasible bool

	identity bool      // no reduction fired: Lift and the point maps pass through
	nOrig    int       // variable count of the original model
	objConst float64   // objective contribution of the fixed columns
	isFixed  []bool    // original index -> fixed?
	fixedVal []float64 // original index -> fixed value
	keep     []int     // reduced index -> original index
}

// Lift maps a reduced-space Solution back to the original model's space:
// values of fixed columns are restored, and the objective constant is added
// to both the objective and the proven bound. The input is not modified.
func (p *Presolved) Lift(sol *Solution) *Solution {
	out := *sol
	out.Presolve = p.Stats
	if p.identity {
		return &out
	}
	switch sol.Status {
	case StatusOptimal, StatusFeasible:
		full := make([]float64, p.nOrig)
		for i := range full {
			if p.isFixed[i] {
				full[i] = p.fixedVal[i]
			}
		}
		// An empty reduced model solves with Values == nil; the fixed columns
		// alone are the full solution.
		if sol.Values != nil {
			for ri, oi := range p.keep {
				full[oi] = sol.Values[ri]
			}
		}
		out.Values = full
		out.Objective = sol.Objective + p.objConst
		out.Bound = sol.Bound + p.objConst
	case StatusNoSolution:
		out.Bound = sol.Bound + p.objConst
	}
	return &out
}

// RestrictPoint maps a full-space point into the reduced space by dropping
// the fixed columns. Nil in, nil out; a length mismatch also yields nil (the
// caller's seed is silently unusable, matching Solve's infeasible-seed
// policy). For any point feasible in the original model the restriction is
// feasible in the reduced model, so warm-start seeds survive presolve.
func (p *Presolved) RestrictPoint(x []float64) []float64 {
	if x == nil {
		return nil
	}
	if p.identity {
		return x
	}
	if len(x) != p.nOrig {
		return nil
	}
	out := make([]float64, len(p.keep))
	for ri, oi := range p.keep {
		out[ri] = x[oi]
	}
	return out
}

// LiftPoint maps a reduced-space point to the full space, filling fixed
// columns with their values. Used to present full-space relaxation points to
// caller-supplied heuristics.
func (p *Presolved) LiftPoint(x []float64) []float64 {
	if p.identity {
		return x
	}
	out := make([]float64, p.nOrig)
	for i := range out {
		if p.isFixed[i] {
			out[i] = p.fixedVal[i]
		}
	}
	for ri, oi := range p.keep {
		if ri < len(x) {
			out[oi] = x[ri]
		}
	}
	return out
}

// psRow is a working-copy constraint. GE rows are normalized to LE at load
// (coefficients and RHS negated) so the reducers only see LE and EQ; zero
// coefficients are dropped. Term order is preserved from the input model —
// AddConstraint already merges duplicate variables, and every reducer here
// is order-independent (dedup compares rows in emission order, which is how
// per-slice expansion duplicates actually appear).
type psRow struct {
	name  string
	terms []Term
	op    Op
	rhs   float64
	dead  bool
	hash  uint64 // cached rowHash; 0 = stale (recompute)
}

// presolver is the working state of one reduction pass.
type presolver struct {
	m      *Model
	lb, ub []float64
	rows   []psRow
	fixed  []bool
	fixVal []float64

	// scratch reused across rounds
	inEQ, up, down []bool         // dualityFix column flags
	dedupSeen      map[uint64]int // dedupRows hash -> first row index
	cliqueRows     []psCliqueRow  // mergeCliques candidate rows
	cliqueLits     []int          // mergeCliques flat literal storage

	stats      PresolveStats
	infeasible bool
	changed    bool // a reduction fired this round
	touched    bool // any reduction fired at all (identity fast-path guard)
	pendingFix bool // columns fixed since the last substitution pass
}

func (p *presolver) mark() { p.changed = true; p.touched = true }

func (p *presolver) dropRow(r *psRow) {
	r.dead = true
	p.stats.RowsDropped++
	p.mark()
}

// Presolve reduces the model. The input model is never modified; when no
// reduction applies the returned Presolved aliases it directly.
func Presolve(m *Model) *Presolved {
	start := time.Now()
	p := newPresolver(m)
	for round := 0; round < maxPresolveRounds && !p.infeasible; round++ {
		p.changed = false
		p.stats.Rounds++
		p.substituteFixed()
		if p.infeasible {
			break
		}
		p.reduceRows()
		if p.infeasible {
			break
		}
		// Dedup and clique domination are idempotent: when nothing has
		// changed since they last ran, re-running finds nothing.
		if round == 0 || p.changed {
			p.dedupRows()
			if p.infeasible {
				break
			}
			p.mergeCliques()
		}
		p.dualityFix()
		if !p.changed {
			break
		}
	}
	if !p.infeasible {
		// Flush fixes from the final round into the surviving rows.
		p.substituteFixed()
	}
	out := p.build()
	out.Stats.Duration = time.Since(start)
	return out
}

func newPresolver(m *Model) *presolver {
	n := len(m.Vars)
	p := &presolver{
		m:      m,
		lb:     make([]float64, n),
		ub:     make([]float64, n),
		fixed:  make([]bool, n),
		fixVal: make([]float64, n),
		inEQ:   make([]bool, n),
		up:     make([]bool, n),
		down:   make([]bool, n),
	}
	for i, v := range m.Vars {
		lb, ub := v.Lb, v.Ub
		if v.Type != Continuous {
			// Integral bounds: fractional input bounds round inward.
			if r := math.Ceil(lb - intTol); r > lb+1e-9 {
				lb = r
				p.touched = true
			}
			if r := math.Floor(ub + intTol); r < ub-1e-9 {
				ub = r
				p.touched = true
			}
		}
		p.lb[i], p.ub[i] = lb, ub
	}
	// Columns the input model already pins (lb == ub) substitute out in the
	// first round like any other fixed column.
	for i := range p.lb {
		p.afterBound(i)
		if p.infeasible {
			return p
		}
	}
	total := 0
	for ci := range m.Cons {
		total += len(m.Cons[ci].Terms)
	}
	flat := make([]Term, 0, total) // one backing array for every row's terms
	p.rows = make([]psRow, 0, len(m.Cons))
	for ci := range m.Cons {
		c := &m.Cons[ci]
		rhs := c.RHS
		op := c.Op
		neg := false
		if op == GE {
			neg = true
			rhs = -rhs
			op = LE
		}
		lo := len(flat)
		for _, t := range c.Terms {
			if t.Coef == 0 {
				continue
			}
			if neg {
				t.Coef = -t.Coef
			}
			flat = append(flat, t)
		}
		p.rows = append(p.rows, psRow{name: c.Name, terms: flat[lo:len(flat):len(flat)], op: op, rhs: rhs})
	}
	return p
}

// fixVar fixes variable v to x and records it for postsolve.
func (p *presolver) fixVar(v int, x float64) {
	if p.fixed[v] {
		if math.Abs(p.fixVal[v]-x) > psTol {
			p.infeasible = true
		}
		return
	}
	if x < p.lb[v]-psTol || x > p.ub[v]+psTol {
		p.infeasible = true
		return
	}
	p.fixed[v] = true
	p.fixVal[v] = x
	p.lb[v], p.ub[v] = x, x
	p.stats.VarsFixed++
	p.pendingFix = true
	p.mark()
}

// afterBound checks a variable's bounds after a tightening: crossed bounds
// beyond tolerance are infeasible; bounds that meet fix the variable.
func (p *presolver) afterBound(v int) {
	if p.lb[v] > p.ub[v]+psTol {
		p.infeasible = true
		return
	}
	if p.m.Vars[v].Type != Continuous {
		if p.ub[v] <= p.lb[v]+0.5 { // integral bounds: equal
			p.fixVar(v, p.lb[v])
		}
		return
	}
	if p.ub[v]-p.lb[v] <= 1e-12 {
		p.fixVar(v, (p.lb[v]+p.ub[v])/2)
	}
}

// tightenUb lowers v's upper bound to b if that is a real improvement.
func (p *presolver) tightenUb(v int, b float64) {
	if p.fixed[v] {
		if p.fixVal[v] > b+psTol {
			p.infeasible = true
		}
		return
	}
	if p.m.Vars[v].Type != Continuous {
		b = math.Floor(b + intTol)
	}
	if b >= p.ub[v]-1e-9 {
		return
	}
	p.ub[v] = b
	p.mark()
	p.afterBound(v)
}

// tightenLb raises v's lower bound to b if that is a real improvement.
func (p *presolver) tightenLb(v int, b float64) {
	if p.fixed[v] {
		if p.fixVal[v] < b-psTol {
			p.infeasible = true
		}
		return
	}
	if p.m.Vars[v].Type != Continuous {
		b = math.Ceil(b - intTol)
	}
	if b <= p.lb[v]+1e-9 {
		return
	}
	p.lb[v] = b
	p.mark()
	p.afterBound(v)
}

// substituteFixed removes fixed columns from every live row, folding their
// contribution into the RHS. Rows left empty are checked and dropped. A
// no-op (and free) when no column was fixed since the last pass.
func (p *presolver) substituteFixed() {
	if !p.pendingFix {
		return
	}
	p.pendingFix = false
	for ri := range p.rows {
		r := &p.rows[ri]
		if r.dead {
			continue
		}
		hasFixed := false
		for _, t := range r.terms {
			if p.fixed[t.Var] {
				hasFixed = true
				break
			}
		}
		if hasFixed {
			out := r.terms[:0]
			for _, t := range r.terms {
				if p.fixed[t.Var] {
					r.rhs -= t.Coef * p.fixVal[t.Var]
				} else {
					out = append(out, t)
				}
			}
			r.terms = out
			r.hash = 0 // terms changed; cached fingerprint is stale
			p.mark()
		}
		if len(r.terms) == 0 {
			switch r.op {
			case LE:
				if r.rhs < -psTol {
					p.infeasible = true
					return
				}
			case EQ:
				if math.Abs(r.rhs) > psTol {
					p.infeasible = true
					return
				}
			}
			p.dropRow(r)
		}
	}
}

// termRange returns the [min, max] contribution of one term under the
// current bounds. Coefficients are never zero here, so no 0·Inf NaNs.
func (p *presolver) termRange(t Term) (lo, hi float64) {
	lb, ub := p.lb[t.Var], p.ub[t.Var]
	if t.Coef > 0 {
		return t.Coef * lb, t.Coef * ub
	}
	return t.Coef * ub, t.Coef * lb
}

// reduceRows runs activity analysis on every live row: infeasibility and
// redundancy detection, singleton-to-bound conversion, and bound propagation
// on each variable from the residual activity of the rest of the row.
func (p *presolver) reduceRows() {
	for ri := range p.rows {
		r := &p.rows[ri]
		if r.dead {
			continue
		}
		if len(r.terms) == 1 {
			p.singletonRow(r)
			if p.infeasible {
				return
			}
			continue
		}
		minSum, maxSum := 0.0, 0.0
		minInf, maxInf := 0, 0
		for _, t := range r.terms {
			lo, hi := p.termRange(t)
			if math.IsInf(lo, -1) {
				minInf++
			} else {
				minSum += lo
			}
			if math.IsInf(hi, 1) {
				maxInf++
			} else {
				maxSum += hi
			}
		}
		minAct, maxAct := minSum, maxSum
		if minInf > 0 {
			minAct = math.Inf(-1)
		}
		if maxInf > 0 {
			maxAct = math.Inf(1)
		}
		switch r.op {
		case LE:
			if minAct > r.rhs+psTol {
				p.infeasible = true
				return
			}
			if maxAct <= r.rhs+psTol {
				p.dropRow(r) // slack at every point in the bound box
				continue
			}
		case EQ:
			if minAct > r.rhs+psTol || maxAct < r.rhs-psTol {
				p.infeasible = true
				return
			}
			if minAct >= r.rhs-psTol && maxAct <= r.rhs+psTol {
				p.dropRow(r) // forced to RHS at every point
				continue
			}
		}
		for _, t := range r.terms {
			if p.fixed[t.Var] {
				continue
			}
			lo, hi := p.termRange(t)
			// ≤ side: a·x ≤ rhs − min(rest of row).
			rest, ok := residual(minSum, minInf, lo, -1)
			if ok {
				b := (r.rhs - rest) / t.Coef
				if t.Coef > 0 {
					p.tightenUb(int(t.Var), b)
				} else {
					p.tightenLb(int(t.Var), b)
				}
				if p.infeasible {
					return
				}
			}
			if r.op != EQ {
				continue
			}
			// ≥ side of an equality: a·x ≥ rhs − max(rest of row).
			rest, ok = residual(maxSum, maxInf, hi, 1)
			if ok {
				b := (r.rhs - rest) / t.Coef
				if t.Coef > 0 {
					p.tightenLb(int(t.Var), b)
				} else {
					p.tightenUb(int(t.Var), b)
				}
				if p.infeasible {
					return
				}
			}
		}
	}
}

// residual computes the row activity with one term removed, given the finite
// part of the sum and the count of infinite contributions. sign selects which
// infinity the sum saturates toward (-1: min activity, +1: max activity).
// ok is false when the residual itself is infinite (no bound derivable).
func residual(finiteSum float64, infCount int, contrib float64, sign int) (rest float64, ok bool) {
	switch {
	case infCount == 0:
		return finiteSum - contrib, true
	case infCount == 1 && math.IsInf(contrib, sign):
		return finiteSum, true
	default:
		return 0, false
	}
}

// singletonRow converts a one-term row into a variable bound and drops it.
func (p *presolver) singletonRow(r *psRow) {
	t := r.terms[0]
	v := int(t.Var)
	b := r.rhs / t.Coef
	switch r.op {
	case LE:
		if t.Coef > 0 {
			p.tightenUb(v, b)
		} else {
			p.tightenLb(v, b)
		}
	case EQ:
		if p.m.Vars[v].Type != Continuous && math.Abs(b-math.Round(b)) > intTol {
			p.infeasible = true
			return
		}
		p.tightenUb(v, b)
		if p.infeasible {
			return
		}
		p.tightenLb(v, b)
	}
	if p.infeasible {
		return
	}
	p.dropRow(r)
}

// dedupRows drops rows with identical operators and term vectors. Duplicate
// ≤-rows keep the smallest RHS; duplicate =-rows with different RHS are an
// infeasibility. Per-slice capacity expansion emits many identical rows when
// consecutive slices see the same demand set, so this fires often on
// compiled models. Rows are hashed without allocating and verified
// term-by-term on a hash hit; a verification miss (hash collision with a
// different row) just skips the dedup for that row.
func (p *presolver) dedupRows() {
	if p.dedupSeen == nil {
		p.dedupSeen = make(map[uint64]int, len(p.rows))
	} else {
		clear(p.dedupSeen)
	}
	for ri := range p.rows {
		r := &p.rows[ri]
		if r.dead {
			continue
		}
		h := r.hash
		if h == 0 {
			h = rowHash(r)
			r.hash = h
		}
		if fi, dup := p.dedupSeen[h]; dup {
			first := &p.rows[fi]
			if first.op == r.op && sameTerms(first.terms, r.terms) {
				switch r.op {
				case LE:
					if r.rhs < first.rhs {
						first.rhs = r.rhs
					}
				case EQ:
					if math.Abs(r.rhs-first.rhs) > psTol {
						p.infeasible = true
						return
					}
				}
				p.dropRow(r)
			}
			continue
		}
		p.dedupSeen[h] = ri
	}
}

// rowHash mixes the row's operator and term vector into a 64-bit fingerprint
// (splitmix64-style finalization per word). Collisions are tolerable: callers
// verify term-by-term before acting on a match. Never returns 0, so 0 can
// mark a stale cache entry.
func rowHash(r *psRow) uint64 {
	h := uint64(r.op) + 0x9e3779b97f4a7c15
	for _, t := range r.terms {
		h = mix64(h, uint64(t.Var))
		h = mix64(h, math.Float64bits(t.Coef))
	}
	if h == 0 {
		h = 1
	}
	return h
}

func mix64(h, v uint64) uint64 {
	v += h
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// sameTerms reports whether two term vectors are identical.
func sameTerms(a, b []Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maxCliqueRows caps the set-packing rows considered by the quadratic
// domination check; compiled models stay far below it.
const maxCliqueRows = 1024

// mergeCliques drops set-packing rows implied by a stronger packing row.
// A row Σ pos − Σ neg ≤ 1 − |neg| over binary variables says "at most one of
// these literals is true" (a clique in the conflict graph); any such row
// whose literal set is a subset of another clique's is implied by it. The
// compiler's choose-≤-1 indicator rows take exactly this shape once the
// presolver has fixed the parent indicators.
func (p *presolver) mergeCliques() {
	cliques := p.cliqueRows[:0]
	lits := p.cliqueLits[:0]
	for ri := range p.rows {
		r := &p.rows[ri]
		if r.dead || r.op != LE || len(r.terms) < 2 {
			continue
		}
		neg := 0
		ok := true
		for _, t := range r.terms {
			v := int(t.Var)
			if p.m.Vars[v].Type == Continuous || p.lb[v] != 0 || p.ub[v] != 1 {
				ok = false
				break
			}
			switch t.Coef {
			case 1:
			case -1:
				neg++
			default:
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok || math.Abs(r.rhs-(1-float64(neg))) > psTol {
			continue
		}
		lo := len(lits)
		for _, t := range r.terms {
			l := int(t.Var) * 2
			if t.Coef < 0 {
				l++ // complemented literal
			}
			lits = append(lits, l)
		}
		sort.Ints(lits[lo:])
		cliques = append(cliques, psCliqueRow{ri: ri, lo: lo, hi: len(lits)})
		if len(cliques) >= maxCliqueRows {
			break
		}
	}
	p.cliqueRows, p.cliqueLits = cliques, lits
	if len(cliques) < 2 {
		return
	}
	sort.Slice(cliques, func(i, j int) bool {
		li, lj := cliques[i].hi-cliques[i].lo, cliques[j].hi-cliques[j].lo
		if li != lj {
			return li < lj
		}
		return cliques[i].ri < cliques[j].ri
	})
	for i := range cliques {
		if p.rows[cliques[i].ri].dead {
			continue
		}
		for j := i + 1; j < len(cliques); j++ {
			if p.rows[cliques[j].ri].dead {
				continue
			}
			if subsetInts(lits[cliques[i].lo:cliques[i].hi], lits[cliques[j].lo:cliques[j].hi]) {
				p.dropRow(&p.rows[cliques[i].ri])
				p.stats.CliquesMerged++
				break
			}
		}
	}
}

// psCliqueRow is one set-packing candidate in mergeCliques' scratch: row
// index plus the [lo, hi) extent of its sorted literals in cliqueLits.
type psCliqueRow struct {
	ri, lo, hi int
}

// subsetInts reports whether sorted slice a is a subset of sorted slice b.
func subsetInts(a, b []int) bool {
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j >= len(b) || b[j] != x {
			return false
		}
		j++
	}
	return true
}

// dualityFix fixes columns whose objective and constraint coefficients all
// pull toward the same bound. Under maximize, a variable with non-negative
// objective that appears in no equality row and never increases a ≤-row's
// activity when raised can sit at its upper bound in some optimal solution;
// the mirror cases follow. Columns appearing in no row at all ("empty
// columns") qualify trivially and are removed here. Raising (or lowering)
// such a variable never leaves the feasible region, so restricted feasible
// points stay feasible.
func (p *presolver) dualityFix() {
	n := len(p.m.Vars)
	for v := 0; v < n; v++ {
		p.inEQ[v], p.up[v], p.down[v] = false, false, false
	}
	for ri := range p.rows {
		r := &p.rows[ri]
		if r.dead {
			continue
		}
		for _, t := range r.terms {
			v := int(t.Var)
			if r.op == EQ {
				p.inEQ[v] = true
			} else if t.Coef > 0 {
				p.up[v] = true
			} else {
				p.down[v] = true
			}
		}
	}
	max := p.m.Sense == Maximize
	for v := 0; v < n; v++ {
		if p.fixed[v] || p.inEQ[v] {
			continue
		}
		obj := p.m.Vars[v].Obj
		var toUb, toLb bool
		if max {
			toUb = obj >= 0 && !p.up[v] && !math.IsInf(p.ub[v], 1)
			toLb = !toUb && obj <= 0 && !p.down[v] && !math.IsInf(p.lb[v], -1)
		} else {
			toLb = obj >= 0 && !p.down[v] && !math.IsInf(p.lb[v], -1)
			toUb = !toLb && obj <= 0 && !p.up[v] && !math.IsInf(p.ub[v], 1)
		}
		switch {
		case toUb:
			p.fixVar(v, p.ub[v])
		case toLb:
			p.fixVar(v, p.lb[v])
		}
		if p.infeasible {
			return
		}
	}
}

// build assembles the Presolved result from the terminal presolver state.
func (p *presolver) build() *Presolved {
	n := len(p.m.Vars)
	if p.infeasible {
		return &Presolved{Stats: p.stats, Infeasible: true, nOrig: n}
	}
	if !p.touched {
		return &Presolved{Model: p.m, Stats: p.stats, identity: true, nOrig: n}
	}
	newID := make([]int, n)
	keep := make([]int, 0, n)
	objConst := 0.0
	for i := 0; i < n; i++ {
		if p.fixed[i] {
			newID[i] = -1
			objConst += p.m.Vars[i].Obj * p.fixVal[i]
			continue
		}
		newID[i] = len(keep)
		keep = append(keep, i)
	}
	// Assemble the reduced model directly with pre-sized slices — terms are
	// already merged and zero-free, so AddVar/AddConstraint would only add
	// re-grow and re-merge overhead on this hot path.
	live, liveTerms := 0, 0
	for ri := range p.rows {
		if !p.rows[ri].dead {
			live++
			liveTerms += len(p.rows[ri].terms)
		}
	}
	rm := &Model{
		Sense: p.m.Sense,
		Vars:  make([]Variable, len(keep)),
		Cons:  make([]Constraint, 0, live),
	}
	for ri, oi := range keep {
		v := p.m.Vars[oi]
		v.Lb, v.Ub = p.lb[oi], p.ub[oi]
		rm.Vars[ri] = v
	}
	flat := make([]Term, 0, liveTerms)
	for ri := range p.rows {
		r := &p.rows[ri]
		if r.dead {
			continue
		}
		lo := len(flat)
		for _, t := range r.terms {
			flat = append(flat, Term{Var: VarID(newID[t.Var]), Coef: t.Coef})
		}
		rm.Cons = append(rm.Cons, Constraint{Name: r.name, Terms: flat[lo:len(flat):len(flat)], Op: r.op, RHS: r.rhs})
	}
	return &Presolved{
		Model:    rm,
		Stats:    p.stats,
		nOrig:    n,
		objConst: objConst,
		isFixed:  p.fixed,
		fixedVal: p.fixVal,
		keep:     keep,
	}
}
