package milp

import (
	"math"
	"time"
)

// Dual simplex warm restarts.
//
// A branch-and-bound child differs from its parent by exactly one tightened
// variable bound, and the parent's optimal basis stays dual feasible under
// any bound change (reduced costs depend only on costs and the basis). So
// instead of re-solving the child from scratch, solveFrom restores the
// parent basis, lets the one out-of-bounds basic variable drive a handful of
// dual simplex pivots, and finishes with a primal pricing pass that
// certifies optimality. Anything that invalidates the warm start — a corrupt
// or stale snapshot, a singular refactorization, a dual-infeasible start, a
// stalled dual phase — falls back to the cold primal path, so warm restarts
// can only ever change how fast a node solves, never what it returns.

// solveFrom solves the LP under the given bounds, warm-starting from the
// snapshot when possible and falling back to the cold path otherwise. The
// returned slice aliases the scratch, like solve's.
func (s *simplexState) solveFrom(warm *basisState, lb, ub []float64, maxIter int, deadline time.Time) (lpStatus, []float64, error) {
	if warm != nil {
		st, x, used := s.solveWarm(warm, lb, ub, maxIter, deadline)
		if used {
			s.stats.WarmHits++
			return st, x, nil
		}
		s.stats.WarmFallbacks++
	}
	return s.solve(lb, ub, maxIter, deadline)
}

// solveWarm attempts the dual-simplex restart; used reports whether the warm
// path ran to a conclusion (optimal, infeasible, or out of budget). When
// used is false the scratch holds no meaningful result and the caller must
// run the cold path.
func (s *simplexState) solveWarm(warm *basisState, lb, ub []float64, maxIter int, deadline time.Time) (st lpStatus, x []float64, used bool) {
	p := s.p
	s.begin(maxIter, deadline)
	if !s.restore(warm, lb, ub) {
		return 0, nil, false
	}
	if err := s.refactorize(); err != nil {
		return 0, nil, false
	}
	// The restored basis must price out dual-feasibly, or the dual method's
	// invariant (and its infeasibility certificate) is void.
	s.cost = p.c
	s.computeDuals()
	if !s.dualFeasible(lb, ub) {
		return 0, nil, false
	}
	switch ds, err := s.dualIterate(lb, ub); {
	case err != nil || ds == lpStalled:
		// Singular mid-flight refactorization or an out-of-budget dual
		// phase: the state is unusable, start over cold.
		return 0, nil, false
	case ds == lpInfeasible:
		return lpInfeasible, nil, true
	case ds == lpIterLimit:
		return lpIterLimit, nil, true // deadline or global budget exhausted
	}
	// Dual phase reached primal feasibility; a primal pass from this basis
	// certifies optimality (usually a single pricing scan) and repairs any
	// residual reduced-cost drift.
	s.bland, s.stall = false, 0
	pst, err := s.iterate(lb, ub, p.c)
	if err != nil {
		return 0, nil, false
	}
	return pst, s.x[:p.n], true
}

// dualFeasible reports whether every nonbasic column prices out consistently
// with its resting position, within warmTol.
func (s *simplexState) dualFeasible(lb, ub []float64) bool {
	p := s.p
	y := s.y
	for j := 0; j < p.n; j++ {
		st := s.status[j]
		if st == inBasis || lb[j] == ub[j] {
			continue
		}
		d := p.c[j]
		for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
			d -= y[p.colRow[k]] * p.colVal[k]
		}
		switch st {
		case atLower:
			if d < -warmTol {
				return false
			}
		case atUpper:
			if d > warmTol {
				return false
			}
		case atFree:
			if d < -warmTol || d > warmTol {
				return false
			}
		}
	}
	return true
}

// dualIterate runs bounded-variable dual simplex pivots until primal
// feasibility (which, from a dual-feasible start, is optimality), until a
// violated row admits no entering column (a Farkas certificate: the LP is
// infeasible), or until a budget stop. lpStalled means the local iteration
// cap was exhausted and the caller should fall back to a cold solve;
// lpIterLimit means the solve-wide budget or deadline expired.
func (s *simplexState) dualIterate(lb, ub []float64) (lpStatus, error) {
	p := s.p
	m := p.m
	// A valid warm restart converges in a handful of pivots; a long dual
	// phase signals numerical trouble and is cheaper to restart cold.
	budget := 6*m + 300
	taken := 0
	refactorCountdown := refactorInterval
	dualBland := false
	stall := 0
	for {
		if s.iter >= s.maxIter {
			return lpIterLimit, nil
		}
		if taken >= budget {
			return lpStalled, nil
		}
		if s.iter%256 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return lpIterLimit, nil
		}
		s.iter++
		taken++
		s.stats.Iterations++
		if refactorCountdown--; refactorCountdown <= 0 || s.eng.needsRefactor() {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			s.computeDuals()
			s.resetDevex()
			refactorCountdown = refactorInterval
		}
		// Leaving row: Devex-weighted primal infeasibility v²/δ_i, an
		// approximate steepest-edge measure over the violated rows. Raw
		// eligibility (violation beyond feasTol) is unchanged, so the pricer
		// only reorders pivots among rows the plain rule could also pick
		// (Bland mode: the lowest row with any violation).
		leave := -1
		bestScore := 0.0
		below := false
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			var v float64
			var under bool
			if v = lb[bj] - s.x[bj]; v > feasTol {
				under = true
			} else if v = s.x[bj] - ub[bj]; v > feasTol {
				under = false
			} else {
				continue
			}
			if dualBland {
				leave, below = i, under
				break
			}
			if score := v * v / s.dwt[i]; score > bestScore {
				bestScore, leave, below = score, i, under
			}
		}
		if leave < 0 {
			return lpOptimal, nil
		}
		out := s.basis[leave]
		rho := s.rho
		s.eng.btranRow(leave, rho)
		// Entering column via the bounded-variable dual ratio test. α_j is
		// the pivot-row entry ρ·a_j; eligibility is by sign (moving x_j in
		// its allowed direction must push x[out] back toward its bound), the
		// minimum ratio |d_j|/|α_j| preserves dual feasibility, and ties
		// prefer the largest |α_j| for numerical stability (Bland mode: the
		// lowest eligible index).
		enter := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		var enterAlpha, enterD float64
		y := s.y
		for j := 0; j < p.n; j++ {
			st := s.status[j]
			if st == inBasis || lb[j] == ub[j] {
				continue
			}
			alpha := 0.0
			d := p.c[j]
			for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
				r := p.colRow[k]
				v := p.colVal[k]
				alpha += rho[r] * v
				d -= y[r] * v
			}
			if alpha < pivotTol && alpha > -pivotTol {
				continue
			}
			var dd float64
			switch st {
			case atLower: // x_j may only increase
				if below != (alpha < 0) {
					continue
				}
				if d > 0 {
					dd = d // clamp tolerable dual infeasibility to a zero ratio
				}
			case atUpper: // x_j may only decrease
				if below != (alpha > 0) {
					continue
				}
				if d < 0 {
					dd = -d
				}
			case atFree: // either direction
				dd = math.Abs(d)
			}
			if dualBland {
				enter, enterAlpha, enterD = j, alpha, d
				break
			}
			ratio := dd / math.Abs(alpha)
			if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-12 && math.Abs(alpha) > bestAlpha) {
				bestRatio, bestAlpha = ratio, math.Abs(alpha)
				enter, enterAlpha, enterD = j, alpha, d
			}
		}
		if enter < 0 {
			// No column can repair the violated row: every eligible move is
			// blocked by sign, so the current resting values already extremize
			// x[out] — the node is infeasible.
			return lpInfeasible, nil
		}
		// Step length lands the leaving variable exactly on its violated
		// bound. The entering variable may overshoot its own far bound; as a
		// basic variable that is a legal intermediate state the next
		// iterations repair.
		var delta float64
		if below {
			delta = s.x[out] - lb[out]
		} else {
			delta = s.x[out] - ub[out]
		}
		t := delta / enterAlpha
		s.ftran(enter)
		w := s.w
		s.x[enter] += t
		for i := 0; i < m; i++ {
			if wi := w[i]; wi != 0 {
				s.x[s.basis[i]] -= t * wi
			}
		}
		if below {
			s.x[out], s.status[out] = lb[out], atLower
		} else {
			s.x[out], s.status[out] = ub[out], atUpper
		}
		s.basis[leave] = enter
		s.status[enter] = inBasis
		pivW := w[leave]
		if !s.eng.update(leave, w) {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			s.computeDuals()
			s.resetDevex()
			refactorCountdown = refactorInterval
		} else {
			// Row leave of the new inverse is rho/pivot, so the rank-1 dual
			// repair reuses the pivot row already in hand.
			if enterD != 0 {
				f := enterD / pivW
				for k, v := range rho {
					if v != 0 {
						y[k] += f * v
					}
				}
			}
			// Dual Devex: the pivot column w prices every row's weight
			// against the reference weight of the leaving row.
			dr := s.dwt[leave] / (pivW * pivW)
			for i := 0; i < m; i++ {
				if i == leave {
					continue
				}
				if wi := w[i]; wi != 0 {
					if cand := wi * wi * dr; cand > s.dwt[i] {
						s.dwt[i] = cand
					}
				}
			}
			if dr < 1 {
				dr = 1
			}
			s.dwt[leave] = dr
		}
		// Degeneracy control: a zero dual step across a string of pivots is
		// the cycling precondition; arm Bland's rule (lowest-index row and
		// column) after a stall, like the primal phase does.
		if !dualBland && bestRatio*math.Abs(delta) > 1e-12 {
			stall = 0
		} else {
			stall++
			if stall > 3*m+50 {
				dualBland = true
			}
		}
	}
}
