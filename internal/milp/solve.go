package milp

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the solution is optimal within the configured gap.
	StatusOptimal Status = iota
	// StatusFeasible means a feasible incumbent was found but search ended
	// early (time, node, or iteration limit).
	StatusFeasible
	// StatusInfeasible means the model has no feasible solution.
	StatusInfeasible
	// StatusUnbounded means the relaxation is unbounded in the optimize
	// direction.
	StatusUnbounded
	// StatusNoSolution means search ended early with no incumbent.
	StatusNoSolution
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options configures a Solve call. The zero value requests an exact solve
// with no limits.
type Options struct {
	// Gap is the relative MIP gap: search stops when
	// |bestBound − incumbent| ≤ Gap·max(1,|incumbent|). The paper configures
	// its solver to return solutions within 10% of optimal (§3.2.2).
	Gap float64
	// TimeLimit bounds wall-clock search time (0 = unlimited). The best
	// incumbent found is returned with StatusFeasible.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes (0 = unlimited).
	MaxNodes int
	// InitialSolution, if non-nil and feasible, seeds the incumbent — used by
	// the scheduler to warm-start each cycle with the previous cycle's plan.
	InitialSolution []float64
	// Heuristic, if non-nil, proposes an integral candidate from an LP
	// relaxation point. Problem-aware callers (the STRL compiler) supply a
	// structure-exploiting rounding that is far cheaper than generic LP
	// dives; candidates are validated before being accepted as incumbents.
	Heuristic func(relaxation []float64) []float64
}

// Solution is the result of a Solve call.
type Solution struct {
	Status    Status
	Objective float64   // objective of Values (valid unless NoSolution/Infeasible)
	Bound     float64   // best proven bound on the optimum
	Values    []float64 // one entry per model variable
	Nodes     int       // branch-and-bound nodes explored
	Runtime   time.Duration
}

// Gap returns the achieved relative gap between bound and objective.
func (s *Solution) Gap() float64 {
	return math.Abs(s.Bound-s.Objective) / math.Max(1, math.Abs(s.Objective))
}

const intTol = 1e-6

// bbNode is a branch-and-bound subproblem: the root bounds plus overrides.
type bbNode struct {
	bound     float64 // parent LP objective (optimistic)
	depth     int
	overrides []boundOverride
}

type boundOverride struct {
	col   int
	isUB  bool
	value float64
}

type nodeHeap struct {
	nodes []*bbNode
	max   bool // true: pop highest bound first (maximize)
}

func (h *nodeHeap) Len() int { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool {
	if h.max {
		return h.nodes[i].bound > h.nodes[j].bound
	}
	return h.nodes[i].bound < h.nodes[j].bound
}
func (h *nodeHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	x := old[n-1]
	h.nodes = old[:n-1]
	return x
}

// Solve optimizes the model. Pure LPs (no integer variables) are solved with
// a single simplex call; otherwise best-bound branch-and-bound runs until the
// gap, time, or node limit is met.
func Solve(model *Model, opts Options) (*Solution, error) {
	start := time.Now()
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(model.Vars) == 0 {
		return &Solution{Status: StatusOptimal, Values: nil, Runtime: time.Since(start)}, nil
	}
	p := newLP(model)
	maximize := model.Sense == Maximize
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	better := func(a, b float64) bool { // is a strictly better than b?
		if maximize {
			return a > b+1e-12
		}
		return a < b-1e-12
	}
	worst := math.Inf(-1)
	if !maximize {
		worst = math.Inf(1)
	}

	var incumbent []float64
	incObj := worst
	if opts.InitialSolution != nil && model.IsFeasible(opts.InitialSolution, 1e-6) {
		incumbent = append([]float64(nil), opts.InitialSolution...)
		incObj = model.ObjectiveValue(incumbent)
	}

	// Root relaxation.
	st, x, err := solveLPDeadline(p, p.lb, p.ub, 0, deadline)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Nodes: 1}
	switch st {
	case lpInfeasible:
		sol.Status = StatusInfeasible
		sol.Runtime = time.Since(start)
		return sol, nil
	case lpUnbounded:
		sol.Status = StatusUnbounded
		sol.Runtime = time.Since(start)
		return sol, nil
	case lpIterLimit:
		// Root aborted (deadline or iteration cap): report the seed
		// incumbent if one was provided, else no solution.
		if incumbent != nil {
			return &Solution{Status: StatusFeasible, Objective: incObj, Values: incumbent, Nodes: 1, Runtime: time.Since(start)}, nil
		}
		return &Solution{Status: StatusNoSolution, Nodes: 1, Runtime: time.Since(start)}, nil
	}
	rootObj := model.ObjectiveValue(x[:len(model.Vars)])

	frac := firstFractional(model, x)
	if frac < 0 {
		// LP optimum is already integral.
		vals := roundIntegral(model, x[:len(model.Vars)])
		return &Solution{
			Status:    StatusOptimal,
			Objective: model.ObjectiveValue(vals),
			Bound:     rootObj,
			Values:    vals,
			Nodes:     1,
			Runtime:   time.Since(start),
		}, nil
	}

	// Heuristics on the root for a strong starting incumbent: plain rounding,
	// then an LP dive that fixes fractional integers one at a time. A good
	// incumbent matters because gap-based termination returns it directly.
	consider := func(cand []float64) {
		if cand == nil || !model.IsFeasible(cand, 1e-6) {
			return
		}
		if obj := model.ObjectiveValue(cand); incumbent == nil || better(obj, incObj) {
			incumbent, incObj = cand, obj
		}
	}
	consider(roundHeuristic(model, x))
	if opts.Heuristic != nil {
		consider(opts.Heuristic(x[:len(model.Vars)]))
	} else {
		consider(diveFrom(model, p, p.lb, p.ub, x, deadline))
	}

	h := &nodeHeap{max: maximize}
	heap.Init(h)
	heap.Push(h, &bbNode{bound: rootObj})

	gapMet := func(bound float64) bool {
		if incumbent == nil {
			return false
		}
		return math.Abs(bound-incObj) <= opts.Gap*math.Max(1, math.Abs(incObj))+1e-9
	}

	nodes := 1
	bestBound := rootObj
	deadlineHit := false
	lbBuf := make([]float64, len(p.lb))
	ubBuf := make([]float64, len(p.ub))
	for h.Len() > 0 {
		if opts.MaxNodes > 0 && nodes >= opts.MaxNodes {
			break
		}
		if opts.TimeLimit > 0 && time.Since(start) > opts.TimeLimit {
			deadlineHit = true
			break
		}
		node := heap.Pop(h).(*bbNode)
		bestBound = node.bound // best-bound order: the top of the heap is the global bound
		if incumbent != nil && !better(node.bound, incObj) {
			continue // pruned by bound
		}
		if gapMet(node.bound) {
			break
		}
		copy(lbBuf, p.lb)
		copy(ubBuf, p.ub)
		for _, o := range node.overrides {
			if o.isUB {
				ubBuf[o.col] = math.Min(ubBuf[o.col], o.value)
			} else {
				lbBuf[o.col] = math.Max(lbBuf[o.col], o.value)
			}
		}
		nodes++
		st, x, err := solveLPDeadline(p, lbBuf, ubBuf, 0, deadline)
		if err != nil || st == lpIterLimit {
			continue // treat numerical trouble as a pruned node
		}
		if st == lpInfeasible {
			continue
		}
		if st == lpUnbounded {
			// Integer restrictions cannot unbound a bounded relaxation; the
			// root would have been unbounded. Defensive skip.
			continue
		}
		obj := model.ObjectiveValue(x[:len(model.Vars)])
		if incumbent != nil && !better(obj, incObj) {
			continue
		}
		fr := firstFractional(model, x)
		if fr < 0 {
			vals := roundIntegral(model, x[:len(model.Vars)])
			o := model.ObjectiveValue(vals)
			if incumbent == nil || better(o, incObj) {
				incumbent, incObj = vals, o
			}
			continue
		}
		// Periodically derive an incumbent from this node's relaxation; cheap
		// relative to the search it prunes.
		if opts.Heuristic != nil && nodes%16 == 0 {
			consider(opts.Heuristic(x[:len(model.Vars)]))
		} else if opts.Heuristic == nil && nodes%64 == 0 {
			consider(diveFrom(model, p, lbBuf, ubBuf, x, deadline))
		}
		// Branch on the most fractional integer variable.
		bv := mostFractional(model, x)
		v := x[bv]
		down := append(append([]boundOverride(nil), node.overrides...),
			boundOverride{col: bv, isUB: true, value: math.Floor(v + intTol)})
		up := append(append([]boundOverride(nil), node.overrides...),
			boundOverride{col: bv, isUB: false, value: math.Ceil(v - intTol)})
		heap.Push(h, &bbNode{bound: obj, depth: node.depth + 1, overrides: down})
		heap.Push(h, &bbNode{bound: obj, depth: node.depth + 1, overrides: up})
	}
	if h.Len() == 0 && !deadlineHit {
		// Exhausted the tree: the incumbent is exactly optimal.
		bestBound = incObj
	} else if h.Len() > 0 {
		top := h.nodes[0].bound
		if maximize {
			bestBound = math.Max(top, incObj)
		} else {
			bestBound = math.Min(top, incObj)
		}
	}

	sol = &Solution{Nodes: nodes, Bound: bestBound, Runtime: time.Since(start)}
	if incumbent == nil {
		if h.Len() == 0 {
			sol.Status = StatusInfeasible
		} else {
			sol.Status = StatusNoSolution
		}
		return sol, nil
	}
	sol.Values = incumbent
	sol.Objective = incObj
	if h.Len() == 0 || gapMet(bestBound) {
		sol.Status = StatusOptimal
	} else {
		sol.Status = StatusFeasible
	}
	return sol, nil
}

// firstFractional returns the index of an integer-typed variable whose LP
// value is fractional, or -1 if the LP point is integral.
func firstFractional(m *Model, x []float64) int {
	for i, v := range m.Vars {
		if v.Type == Continuous {
			continue
		}
		if math.Abs(x[i]-math.Round(x[i])) > intTol {
			return i
		}
	}
	return -1
}

// mostFractional picks the integer variable farthest from integrality.
func mostFractional(m *Model, x []float64) int {
	best, bestDist := -1, intTol
	for i, v := range m.Vars {
		if v.Type == Continuous {
			continue
		}
		f := x[i] - math.Floor(x[i])
		d := math.Min(f, 1-f)
		if d > bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// roundIntegral snaps near-integer values of integer variables exactly.
func roundIntegral(m *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for i, v := range m.Vars {
		if v.Type != Continuous {
			out[i] = math.Round(out[i])
		}
	}
	return out
}

// diveHeuristic walks from the root relaxation toward an integral point with
// a bounded number of LP re-solves: each step fixes every already-integral
// integer variable plus the most fractional one, so it converges in a
// handful of solves even on large models. It returns a feasible integral
// point or nil.
// diveFrom dives from an arbitrary bound box and LP point.
func diveFrom(m *Model, p *lp, lb0, ub0 []float64, fromX []float64, deadline time.Time) []float64 {
	const maxSteps = 12
	lb := append([]float64(nil), lb0...)
	ub := append([]float64(nil), ub0...)
	x := fromX
	for depth := 0; depth < maxSteps; depth++ {
		fr := mostFractional(m, x)
		if fr < 0 {
			vals := roundIntegral(m, x[:len(m.Vars)])
			if m.IsFeasible(vals, 1e-6) {
				return vals
			}
			return nil
		}
		for i, v := range m.Vars {
			if v.Type == Continuous {
				continue
			}
			r := math.Round(x[i])
			if math.Abs(x[i]-r) <= intTol {
				r = clampVal(r, lb[i], ub[i])
				lb[i], ub[i] = r, r
			}
		}
		v := clampVal(math.Round(x[fr]), lb[fr], ub[fr])
		lb[fr], ub[fr] = v, v
		st, nx, err := solveLPDeadline(p, lb, ub, 0, deadline)
		if err != nil || st != lpOptimal {
			return nil
		}
		x = nx
	}
	return nil
}

// roundHeuristic tries rounding the relaxation to a feasible integer point.
// For the down-monotone models STRL compiles to (all demands scale with
// indicators), rounding indicators down is frequently feasible.
func roundHeuristic(m *Model, x []float64) []float64 {
	for _, mode := range []func(float64) float64{math.Floor, math.Round} {
		cand := make([]float64, len(m.Vars))
		copy(cand, x[:len(m.Vars)])
		for i, v := range m.Vars {
			if v.Type != Continuous {
				cand[i] = clampVal(mode(cand[i]), v.Lb, v.Ub)
			}
		}
		if m.IsFeasible(cand, 1e-6) {
			return cand
		}
	}
	return nil
}
