package milp

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"time"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// StatusOptimal means the solution is optimal within the configured gap.
	StatusOptimal Status = iota
	// StatusFeasible means a feasible incumbent was found but search ended
	// early (time, node, or iteration limit).
	StatusFeasible
	// StatusInfeasible means the model has no feasible solution.
	StatusInfeasible
	// StatusUnbounded means the relaxation is unbounded in the optimize
	// direction.
	StatusUnbounded
	// StatusNoSolution means search ended early with no incumbent.
	StatusNoSolution
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusNoSolution:
		return "no-solution"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options configures a Solve call. The zero value requests an exact solve
// with no limits, using one branch-and-bound worker per CPU.
type Options struct {
	// Gap is the relative MIP gap: search stops when
	// |bestBound − incumbent| ≤ Gap·max(1,|incumbent|). The paper configures
	// its solver to return solutions within 10% of optimal (§3.2.2).
	Gap float64
	// TimeLimit bounds wall-clock search time (0 = unlimited). The best
	// incumbent found is returned with StatusFeasible.
	TimeLimit time.Duration
	// MaxNodes bounds the number of branch-and-bound nodes (0 = unlimited).
	MaxNodes int
	// Workers is the number of branch-and-bound workers exploring the tree.
	// 0 uses runtime.GOMAXPROCS(0); 1 runs the serial search (the historical
	// behavior). Each worker solves LP relaxations on its own scratch state;
	// incumbents and the open-node queue are shared.
	Workers int
	// Deterministic makes multi-worker searches independent of worker
	// interleaving: nodes are expanded in synchronous best-bound rounds with
	// a fixed tie-break order (equal-bound nodes by creation sequence,
	// equal-objective incumbents by application order), so repeated solves of
	// the same model return byte-identical Values. Serial solves are always
	// deterministic. Wall-clock limits (TimeLimit) remain a source of timing
	// dependence in every mode.
	Deterministic bool
	// InitialSolution, if non-nil and feasible, seeds the incumbent — used by
	// the scheduler to warm-start each cycle with the previous cycle's plan.
	// An infeasible seed is silently ignored.
	InitialSolution []float64
	// Heuristic, if non-nil, proposes an integral candidate from an LP
	// relaxation point. Problem-aware callers (the STRL compiler) supply a
	// structure-exploiting rounding that is far cheaper than generic LP
	// dives; candidates are validated before being accepted as incumbents.
	// With Workers > 1 the callback is invoked concurrently and must be safe
	// for concurrent use (pure functions of their input are).
	Heuristic func(relaxation []float64) []float64
	// DisableWarmStart forces every branch-and-bound node LP onto the cold
	// primal path instead of dual-simplex re-solving from the parent basis.
	// Warm restarts never change results — this switch exists for bisection
	// and for measuring their speedup, not for correctness workarounds.
	DisableWarmStart bool
	// DisablePresolve skips the model-reduction pass that normally runs
	// before branch-and-bound (see presolve.go). Presolve never changes the
	// optimal objective and lifts solutions back to the full variable space,
	// so this switch exists for bisection and parity testing, not for
	// correctness workarounds.
	DisablePresolve bool
	// SerialCutoff routes models whose vars×rows product (after presolve)
	// falls below it to the serial driver even when Workers > 1: on small
	// trees the pool's coordination overhead exceeds the parallel speedup.
	// 0 uses DefaultSerialCutoff; negative disables the routing so Workers
	// is always honored.
	SerialCutoff int
	// DenseBasis solves every LP on the historical dense basis inverse
	// instead of the sparse LU engine. The engines represent the same basis
	// exactly, so this switch exists for bisection and as the numerical
	// kill switch, not for correctness workarounds.
	DenseBasis bool
	// DisableCuts skips root cover/clique cut separation (see cuts.go).
	// Cuts are valid for every integer point and never change the optimal
	// objective — this switch exists for bisection and parity testing.
	DisableCuts bool
	// DisablePseudocost pins branching to the historical most-fractional
	// rule instead of learned pseudocosts (see pseudocost.go). Branching
	// order never changes which solutions are optimal, only search speed.
	DisablePseudocost bool
}

// DefaultSerialCutoff is the vars×rows product below which multi-worker
// solves fall back to the serial driver. Measured on the batched-solve
// suite: 24-job batches (≈5k after presolve) lose a few percent to pool
// coordination while 48-job batches (≈15k) win from it.
const DefaultSerialCutoff = 8192

// productBelow reports a·b < limit for non-negative a, b without computing
// the product: sharded 10k-node scenarios emit models whose vars×rows
// product overflows int on 32-bit platforms, and a wrapped product would
// mis-route huge models onto the serial driver. limit ≤ 0 (routing disabled)
// is never below.
func productBelow(a, b, limit int) bool {
	if limit <= 0 {
		return false
	}
	if a == 0 || b == 0 {
		return true
	}
	return a <= (limit-1)/b
}

// effectiveWorkers resolves Workers to a concrete worker count.
func (o Options) effectiveWorkers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// Solution is the result of a Solve call.
type Solution struct {
	Status    Status
	Objective float64       // objective of Values (valid unless NoSolution/Infeasible)
	Bound     float64       // best proven bound on the optimum
	Values    []float64     // one entry per model variable
	Nodes     int           // branch-and-bound nodes explored
	Workers   int           // branch-and-bound workers used by the search
	LP        LPStats       // LP-kernel telemetry summed over all relaxations
	Presolve  PresolveStats // model-reduction telemetry (zero when presolve is disabled)
	Cuts      CutStats      // root cutting-plane activity (zero when cuts are disabled)
	Branch    BranchStats   // branching-rule usage counts
	Runtime   time.Duration
}

// Gap returns the achieved relative gap between bound and objective.
func (s *Solution) Gap() float64 {
	return math.Abs(s.Bound-s.Objective) / math.Max(1, math.Abs(s.Objective))
}

const intTol = 1e-6

// bbNode is a branch-and-bound subproblem: the root bounds plus overrides.
type bbNode struct {
	bound     float64 // parent LP objective (optimistic)
	depth     int
	seq       uint64 // creation order, for deterministic tie-breaking
	overrides []boundOverride
	warm      *basisState // parent's optimal basis (nil: solve cold)

	// Branching record for pseudocost learning: the column the parent
	// branched on to create this node (−1 at the root), the direction, the
	// fractional distance pushed, and the parent's LP objective.
	pcol  int
	pup   bool
	pfrac float64
	pobj  float64
}

type boundOverride struct {
	col   int
	isUB  bool
	value float64
}

type nodeHeap struct {
	nodes []*bbNode
	max   bool // true: pop highest bound first (maximize)
	det   bool // true: break bound ties by creation sequence
}

func (h *nodeHeap) Len() int { return len(h.nodes) }
func (h *nodeHeap) Less(i, j int) bool {
	a, b := h.nodes[i], h.nodes[j]
	if a.bound != b.bound {
		if h.max {
			return a.bound > b.bound
		}
		return a.bound < b.bound
	}
	if h.det {
		return a.seq < b.seq
	}
	return false
}
func (h *nodeHeap) Swap(i, j int)      { h.nodes[i], h.nodes[j] = h.nodes[j], h.nodes[i] }
func (h *nodeHeap) Push(x interface{}) { h.nodes = append(h.nodes, x.(*bbNode)) }
func (h *nodeHeap) Pop() interface{} {
	old := h.nodes
	n := len(old)
	x := old[n-1]
	h.nodes = old[:n-1]
	return x
}

// search carries the branch-and-bound state shared by the serial and
// parallel drivers. In parallel modes every field below is guarded by the
// driver's mutex (async) or only touched between synchronous rounds (batch).
type search struct {
	model    *Model
	p        *lp
	opts     Options
	start    time.Time
	deadline time.Time
	maximize bool
	workers  int

	incumbent []float64
	incObj    float64

	scratch *simplexState // serial driver's (and the root solve's) LP scratch
	lp      LPStats       // folded worker telemetry; finish() adds s.scratch's
	cuts    CutStats      // root cutting-plane activity
	branch  BranchStats   // branching-rule usage
	pc      *pcTable      // learned pseudocosts, guarded like the heap
	fracBuf []fracVar     // serial driver's fractional-candidate scratch

	h   *nodeHeap
	seq uint64

	nodes       int
	bestBound   float64 // proven global bound (weakest open node, incl. in-flight)
	deadlineHit bool
	gapBreak    bool // terminated with the global bound gap-met
	boundFinal  bool // async driver already folded in-flight bounds into bestBound
}

// better reports whether a is strictly better than b in the optimize sense.
func (s *search) better(a, b float64) bool {
	if s.maximize {
		return a > b+1e-12
	}
	return a < b-1e-12
}

// gapMet reports whether the incumbent is within the configured gap of bound.
func (s *search) gapMet(bound float64) bool {
	if s.incumbent == nil {
		return false
	}
	return math.Abs(bound-s.incObj) <= s.opts.Gap*math.Max(1, math.Abs(s.incObj))+1e-9
}

// consider adopts cand as the incumbent if it is feasible and better.
func (s *search) consider(cand []float64) {
	if cand == nil || !s.model.IsFeasible(cand, 1e-6) {
		return
	}
	if obj := s.model.ObjectiveValue(cand); s.incumbent == nil || s.better(obj, s.incObj) {
		s.incumbent, s.incObj = cand, obj
	}
}

// pushNode stamps the node's creation sequence and adds it to the open heap.
func (s *search) pushNode(n *bbNode) {
	s.seq++
	n.seq = s.seq
	heap.Push(s.h, n)
}

// pickBound returns the weaker (more conservative) of two valid bounds: the
// larger under maximize, the smaller under minimize.
func (s *search) pickBound(a, b float64) float64 {
	if s.maximize {
		return math.Max(a, b)
	}
	return math.Min(a, b)
}

// solveNodeLP solves one node's relaxation on the given scratch,
// warm-starting from the parent basis unless the kill switch is set or the
// node carries no snapshot.
func (s *search) solveNodeLP(sc *simplexState, node *bbNode, lb, ub []float64) (lpStatus, []float64, error) {
	if s.opts.DisableWarmStart {
		return sc.solve(lb, ub, 0, s.deadline)
	}
	return sc.solveFrom(node.warm, lb, ub, 0, s.deadline)
}

// nodeSnapshot captures the scratch's basis for the node's children, or nil
// when warm starts are disabled or the basis cannot seed one.
func (s *search) nodeSnapshot(sc *simplexState) *basisState {
	if s.opts.DisableWarmStart {
		return nil
	}
	return sc.snapshot()
}

// Solve optimizes the model. Pure LPs (no integer variables) are solved with
// a single simplex call; otherwise best-bound branch-and-bound runs until the
// gap, time, or node limit is met. With Options.Workers > 1 the tree search
// runs on a worker pool (see parallel.go).
func Solve(model *Model, opts Options) (*Solution, error) {
	start := time.Now()
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if !opts.DisablePresolve {
		pre := Presolve(model)
		if pre.Infeasible {
			return &Solution{Status: StatusInfeasible, Workers: opts.effectiveWorkers(), Presolve: pre.Stats, Runtime: time.Since(start)}, nil
		}
		ropts := opts
		ropts.DisablePresolve = true
		if !pre.identity {
			ropts.InitialSolution = pre.RestrictPoint(opts.InitialSolution)
			if opts.Heuristic != nil {
				h := opts.Heuristic
				ropts.Heuristic = func(relax []float64) []float64 {
					return pre.RestrictPoint(h(pre.LiftPoint(relax)))
				}
			}
		}
		red, err := Solve(pre.Model, ropts)
		if err != nil {
			return nil, err
		}
		sol := pre.Lift(red)
		sol.Runtime = time.Since(start)
		return sol, nil
	}
	workers := opts.effectiveWorkers()
	if len(model.Vars) == 0 {
		return &Solution{Status: StatusOptimal, Values: nil, Workers: workers, Runtime: time.Since(start)}, nil
	}
	if workers > 1 {
		// Small models lose more to pool coordination than they gain from
		// parallel tree search; route them to the serial driver.
		cutoff := opts.SerialCutoff
		if cutoff == 0 {
			cutoff = DefaultSerialCutoff
		}
		if productBelow(len(model.Vars), len(model.Cons), cutoff) {
			workers = 1
		}
	}
	p := newLP(model)
	p.dense = opts.DenseBasis
	maximize := model.Sense == Maximize
	var deadline time.Time
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	s := &search{
		model:    model,
		p:        p,
		opts:     opts,
		start:    start,
		deadline: deadline,
		maximize: maximize,
		workers:  workers,
	}
	worst := math.Inf(-1)
	if !maximize {
		worst = math.Inf(1)
	}
	s.incObj = worst
	if opts.InitialSolution != nil && model.IsFeasible(opts.InitialSolution, 1e-6) {
		s.incumbent = append([]float64(nil), opts.InitialSolution...)
		s.incObj = model.ObjectiveValue(s.incumbent)
	}

	// Root relaxation, solved on the search's own scratch so the serial
	// driver keeps reusing its basis memory.
	s.scratch = newScratch(p)
	st, x, err := s.scratch.solve(p.lb, p.ub, 0, deadline)
	if err != nil {
		return nil, err
	}
	switch st {
	case lpInfeasible:
		return &Solution{Status: StatusInfeasible, Nodes: 1, Workers: workers, LP: s.scratch.stats, Runtime: time.Since(start)}, nil
	case lpUnbounded:
		return &Solution{Status: StatusUnbounded, Nodes: 1, Workers: workers, LP: s.scratch.stats, Runtime: time.Since(start)}, nil
	case lpIterLimit:
		// Root aborted (deadline or iteration cap): report the seed
		// incumbent if one was provided, else no solution.
		if s.incumbent != nil {
			return &Solution{Status: StatusFeasible, Objective: s.incObj, Values: s.incumbent, Nodes: 1, Workers: workers, LP: s.scratch.stats, Runtime: time.Since(start)}, nil
		}
		return &Solution{Status: StatusNoSolution, Nodes: 1, Workers: workers, LP: s.scratch.stats, Runtime: time.Since(start)}, nil
	}
	rootObj := model.ObjectiveValue(x[:len(model.Vars)])

	integralRoot := func() (*Solution, error) {
		// LP optimum is already integral.
		vals := roundIntegral(model, x[:len(model.Vars)])
		s.lp.add(&s.scratch.stats)
		return &Solution{
			Status:    StatusOptimal,
			Objective: model.ObjectiveValue(vals),
			Bound:     rootObj,
			Values:    vals,
			Nodes:     1,
			Workers:   workers,
			LP:        s.lp,
			Cuts:      s.cuts,
			Runtime:   time.Since(start),
		}, nil
	}
	if firstFractional(model, x) < 0 {
		return integralRoot()
	}

	// Heuristics on the root for a strong starting incumbent: plain rounding,
	// then an LP dive that fixes fractional integers one at a time. A good
	// incumbent matters because gap-based termination returns it directly —
	// and it runs before cut separation, because an incumbent that already
	// meets the gap against the un-cut root bound makes every separation
	// round (a model copy plus a cold LP re-solve) pure overhead.
	s.consider(roundHeuristic(model, x))
	if opts.Heuristic != nil {
		s.consider(opts.Heuristic(x[:len(model.Vars)]))
	} else {
		s.consider(diveFrom(model, p, p.lb, p.ub, x, deadline, !opts.DisableWarmStart, &s.scratch.stats))
	}

	if !opts.DisableCuts && !s.gapMet(rootObj) {
		// Strengthen the root relaxation with cover/clique cuts before
		// branching; the search's model/LP/scratch may be replaced (cuts
		// only append rows, so variable indexing is untouched — incumbents
		// stay feasible because cuts hold for every integer point).
		x, rootObj = s.runCutRounds(x, rootObj)
		model, p = s.model, s.p
		if firstFractional(model, x) < 0 {
			return integralRoot()
		}
	}
	rootSnap := s.nodeSnapshot(s.scratch)
	s.pc = newPCTable(len(model.Vars))

	s.h = &nodeHeap{max: maximize, det: workers > 1 && opts.Deterministic}
	heap.Init(s.h)
	s.pushNode(&bbNode{bound: rootObj, warm: rootSnap, pcol: -1})
	s.nodes = 1
	s.bestBound = rootObj

	switch {
	case workers == 1:
		s.runSerial()
	case opts.Deterministic:
		s.runBatch()
	default:
		s.runAsync()
	}
	return s.finish(), nil
}

// runSerial is the single-threaded best-bound search (Workers == 1), kept
// byte-for-byte equivalent to the historical solver so serial results are
// stable across releases.
func (s *search) runSerial() {
	lbBuf := make([]float64, len(s.p.lb))
	ubBuf := make([]float64, len(s.p.ub))
	for s.h.Len() > 0 {
		if s.opts.MaxNodes > 0 && s.nodes >= s.opts.MaxNodes {
			break
		}
		if s.opts.TimeLimit > 0 && time.Since(s.start) > s.opts.TimeLimit {
			s.deadlineHit = true
			break
		}
		node := heap.Pop(s.h).(*bbNode)
		s.bestBound = node.bound // best-bound order: the popped node carries the global bound
		if s.incumbent != nil && !s.better(node.bound, s.incObj) {
			continue // pruned by bound
		}
		if s.gapMet(node.bound) {
			s.gapBreak = true
			break
		}
		copy(lbBuf, s.p.lb)
		copy(ubBuf, s.p.ub)
		for _, o := range node.overrides {
			if o.isUB {
				ubBuf[o.col] = math.Min(ubBuf[o.col], o.value)
			} else {
				lbBuf[o.col] = math.Max(lbBuf[o.col], o.value)
			}
		}
		s.nodes++
		st, x, err := s.solveNodeLP(s.scratch, node, lbBuf, ubBuf)
		if err != nil || st == lpIterLimit {
			continue // treat numerical trouble as a pruned node
		}
		if st == lpInfeasible {
			continue
		}
		if st == lpUnbounded {
			// Integer restrictions cannot unbound a bounded relaxation; the
			// root would have been unbounded. Defensive skip.
			continue
		}
		obj := s.model.ObjectiveValue(x[:len(s.model.Vars)])
		s.noteBranchOutcome(node, obj)
		if s.incumbent != nil && !s.better(obj, s.incObj) {
			continue
		}
		fr := firstFractional(s.model, x)
		if fr < 0 {
			vals := roundIntegral(s.model, x[:len(s.model.Vars)])
			o := s.model.ObjectiveValue(vals)
			if s.incumbent == nil || s.better(o, s.incObj) {
				s.incumbent, s.incObj = vals, o
			}
			continue
		}
		snap := s.nodeSnapshot(s.scratch)
		// Periodically derive an incumbent from this node's relaxation; cheap
		// relative to the search it prunes.
		if s.opts.Heuristic != nil && s.nodes%16 == 0 {
			s.consider(s.opts.Heuristic(x[:len(s.model.Vars)]))
		} else if s.opts.Heuristic == nil && s.nodes%64 == 0 {
			s.consider(diveFrom(s.model, s.p, lbBuf, ubBuf, x, s.deadline, !s.opts.DisableWarmStart, &s.scratch.stats))
		}
		// Branch by pseudocost score (most-fractional until the table has
		// history). Both children share the parent's basis snapshot — it is
		// immutable once taken.
		s.fracBuf = gatherFractional(s.model, x, s.fracBuf)
		bv, v := s.selectBranch(s.fracBuf)
		s.pushChildren(node, bv, v, obj, snap)
	}
}

// finish derives the reported bound and status from the terminal search
// state and assembles the Solution.
func (s *search) finish() *Solution {
	if s.gapBreak {
		// Terminated by popping a gap-met node: that node's subtree is
		// unexplored, so its bound (already in s.bestBound) remains the
		// proven global bound. Historically the bound was recomputed from
		// the heap top (or collapsed to the incumbent when the heap was
		// empty) — both can be tighter than what was actually proven,
		// overstating how close the incumbent is to optimal. Keep the
		// popped bound, widened by any surviving open nodes.
		b := s.bestBound
		if s.h.Len() > 0 {
			b = s.pickBound(b, s.h.nodes[0].bound)
		}
		if s.incumbent != nil {
			b = s.pickBound(b, s.incObj)
		}
		s.bestBound = b
	} else if s.boundFinal {
		// Async limit stop: s.bestBound already folds the heap top and the
		// bounds of nodes that were in flight when the stop flag rose —
		// their subtrees are unexplored, so the heap top alone would
		// overstate progress. Nothing tighter is provable here.
	} else if s.h.Len() == 0 && !s.deadlineHit {
		// Exhausted the tree: the incumbent is exactly optimal.
		s.bestBound = s.incObj
	} else if s.h.Len() > 0 {
		s.bestBound = s.pickBound(s.h.nodes[0].bound, s.incObj)
	}

	if s.scratch != nil { // parallel drivers folded worker scratches already
		s.lp.add(&s.scratch.stats)
	}
	sol := &Solution{Nodes: s.nodes, Bound: s.bestBound, Workers: s.workers, LP: s.lp, Cuts: s.cuts, Branch: s.branch, Runtime: time.Since(s.start)}
	if s.incumbent == nil {
		if s.h.Len() == 0 {
			sol.Status = StatusInfeasible
		} else {
			sol.Status = StatusNoSolution
		}
		return sol
	}
	sol.Values = s.incumbent
	sol.Objective = s.incObj
	if s.h.Len() == 0 || s.gapMet(s.bestBound) {
		sol.Status = StatusOptimal
	} else {
		sol.Status = StatusFeasible
	}
	return sol
}

// firstFractional returns the index of an integer-typed variable whose LP
// value is fractional, or -1 if the LP point is integral.
func firstFractional(m *Model, x []float64) int {
	for i, v := range m.Vars {
		if v.Type == Continuous {
			continue
		}
		if math.Abs(x[i]-math.Round(x[i])) > intTol {
			return i
		}
	}
	return -1
}

// mostFractional picks the integer variable farthest from integrality.
func mostFractional(m *Model, x []float64) int {
	best, bestDist := -1, intTol
	for i, v := range m.Vars {
		if v.Type == Continuous {
			continue
		}
		f := x[i] - math.Floor(x[i])
		d := math.Min(f, 1-f)
		if d > bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// roundIntegral snaps near-integer values of integer variables exactly.
func roundIntegral(m *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for i, v := range m.Vars {
		if v.Type != Continuous {
			out[i] = math.Round(out[i])
		}
	}
	return out
}

// diveFrom walks from an arbitrary bound box and LP point toward an integral
// point with a bounded number of LP re-solves: each step fixes every
// already-integral integer variable plus the most fractional one, so it
// converges in a handful of solves even on large models. It returns a
// feasible integral point or nil.
//
// The dive solves on its own scratch (the caller's relaxation point usually
// aliases the caller's scratch and must survive the dive) and, when useWarm
// is set, chains each step's basis into the next step's dual re-solve — each
// step only tightens bounds, the textbook warm-restart case. Its LP telemetry
// is folded into stats, which must be private to the calling goroutine.
func diveFrom(m *Model, p *lp, lb0, ub0 []float64, fromX []float64, deadline time.Time, useWarm bool, stats *LPStats) []float64 {
	const maxSteps = 12
	lb := append([]float64(nil), lb0...)
	ub := append([]float64(nil), ub0...)
	sc := newScratch(p)
	defer func() { stats.add(&sc.stats) }()
	x := fromX
	var warm *basisState
	for depth := 0; depth < maxSteps; depth++ {
		fr := mostFractional(m, x)
		if fr < 0 {
			vals := roundIntegral(m, x[:len(m.Vars)])
			if m.IsFeasible(vals, 1e-6) {
				return vals
			}
			return nil
		}
		for i, v := range m.Vars {
			if v.Type == Continuous {
				continue
			}
			r := math.Round(x[i])
			if math.Abs(x[i]-r) <= intTol {
				r = clampVal(r, lb[i], ub[i])
				lb[i], ub[i] = r, r
			}
		}
		v := clampVal(math.Round(x[fr]), lb[fr], ub[fr])
		lb[fr], ub[fr] = v, v
		st, nx, err := sc.solveFrom(warm, lb, ub, 0, deadline)
		if err != nil || st != lpOptimal {
			return nil
		}
		if useWarm {
			warm = sc.snapshot()
		}
		x = nx
	}
	return nil
}

// roundHeuristic tries rounding the relaxation to a feasible integer point.
// For the down-monotone models STRL compiles to (all demands scale with
// indicators), rounding indicators down is frequently feasible.
func roundHeuristic(m *Model, x []float64) []float64 {
	for _, mode := range []func(float64) float64{math.Floor, math.Round} {
		cand := make([]float64, len(m.Vars))
		copy(cand, x[:len(m.Vars)])
		for i, v := range m.Vars {
			if v.Type != Continuous {
				cand[i] = clampVal(mode(cand[i]), v.Lb, v.Ub)
			}
		}
		if m.IsFeasible(cand, 1e-6) {
			return cand
		}
	}
	return nil
}
