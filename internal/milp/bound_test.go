package milp

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randKnapsack builds a seeded random binary knapsack. These models
// reproduce the historical gap-termination bound misreport: search often
// breaks by popping a gap-met node whose subtree is unexplored, and the old
// code then recomputed the bound from the heap top (or collapsed it to the
// incumbent), overstating how close the incumbent was to optimal.
func randKnapsack(seed int64) *Model {
	r := rand.New(rand.NewSource(seed))
	m := NewModel(Maximize)
	n := 10 + r.Intn(10)
	terms := make([]Term, n)
	for i := 0; i < n; i++ {
		v := m.AddBinary(fmt.Sprintf("x%d", i), 1+r.Float64()*10)
		terms[i] = Term{v, 1 + r.Float64()*5}
	}
	m.AddConstraint("cap", terms, LE, float64(n))
	return m
}

// TestGapBoundNotOverstated asserts the core invariant the old code broke:
// the reported Bound must never be tighter than the true optimum. Before the
// fix, gap-limited solves of these models reported Bound equal to the
// incumbent (claiming a 0.0000 achieved gap) while the true optimum sat
// several percent above it — e.g. seed 2 at gap 0.15 reported Bound
// 43.6037 against a true optimum of 46.6652.
func TestGapBoundNotOverstated(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		exact, err := Solve(randKnapsack(seed), Options{})
		if err != nil || exact.Status != StatusOptimal {
			t.Fatalf("seed %d: exact solve failed: %v %v", seed, exact, err)
		}
		for _, gap := range []float64{0.15, 0.25, 0.35} {
			sol, err := Solve(randKnapsack(seed), Options{Gap: gap})
			if err != nil {
				t.Fatalf("seed %d gap %g: %v", seed, gap, err)
			}
			if sol.Bound < exact.Objective-1e-6 {
				t.Errorf("seed %d gap %g: Bound %.6f tighter than true optimum %.6f (incumbent %.6f, claimed gap %.4f)",
					seed, gap, sol.Bound, exact.Objective, sol.Objective, sol.Gap())
			}
			if sol.Gap() > gap+1e-9 {
				t.Errorf("seed %d gap %g: achieved gap %.4f exceeds requested", seed, gap, sol.Gap())
			}
		}
	}
}

// TestGapBreakKeepsPoppedBound pins the exact termination state the bug
// lived in: search breaks by popping a gap-met node (bound 10) while the
// heap still holds a weaker open node (bound 8) and the incumbent sits at
// 7.5. The popped node's subtree is unexplored, so 10 is the only proven
// global bound; the old code reported max(heap-top, incumbent) = 8.
func TestGapBreakKeepsPoppedBound(t *testing.T) {
	m := NewModel(Maximize)
	m.AddBinary("x", 1)
	s := &search{
		model:     m,
		opts:      Options{Gap: 0.5},
		maximize:  true,
		workers:   1,
		incumbent: []float64{1},
		incObj:    7.5,
		h:         &nodeHeap{max: true},
		nodes:     3,
		bestBound: 10, // the popped, gap-met, unexplored node
		gapBreak:  true,
	}
	heap.Init(s.h)
	s.pushNode(&bbNode{bound: 8})
	sol := s.finish()
	if sol.Bound != 10 {
		t.Fatalf("Bound = %v, want the popped node's bound 10 (heap top 8 is not a proven global bound)", sol.Bound)
	}
	if got := sol.Gap(); math.Abs(got-2.5/7.5) > 1e-12 {
		t.Fatalf("Gap() = %v, want 0.3333", got)
	}
	if sol.Status != StatusOptimal { // 10 is still within the configured 0.5 gap
		t.Fatalf("Status = %v, want optimal-within-gap", sol.Status)
	}
}

// TestGapBreakEmptyHeapKeepsPoppedBound covers the sibling flavor: the
// gap-met pop empties the heap. The old code collapsed Bound to the
// incumbent (claiming exact optimality) even though the popped subtree was
// never explored.
func TestGapBreakEmptyHeapKeepsPoppedBound(t *testing.T) {
	m := NewModel(Maximize)
	m.AddBinary("x", 1)
	s := &search{
		model:     m,
		opts:      Options{Gap: 0.5},
		maximize:  true,
		workers:   1,
		incumbent: []float64{1},
		incObj:    7.5,
		h:         &nodeHeap{max: true},
		nodes:     3,
		bestBound: 10,
		gapBreak:  true,
	}
	heap.Init(s.h)
	sol := s.finish()
	if sol.Bound != 10 {
		t.Fatalf("Bound = %v, want the popped node's bound 10, not the incumbent 7.5", sol.Bound)
	}
	if sol.Gap() == 0 {
		t.Fatal("Gap() = 0 misreports an approximate solve as exact")
	}
}
