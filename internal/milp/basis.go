package milp

import "math"

// basisState is a compact snapshot of an optimal simplex basis: the basic
// column of each row plus every column's resting position. It deliberately
// excludes the basis inverse — restoring refactorizes from the column data —
// so a snapshot costs O(m + n) bytes, not O(m²), and branch-and-bound can
// attach one to both children of a node (snapshots are immutable once taken
// and safe to share across workers).
type basisState struct {
	basis  []int32 // row -> column
	status []byte  // column -> position, structurals and slacks only
}

// snapshot captures the current basis for a later warm restart, or nil when
// it cannot seed one (a phase-1 artificial still sits in the basis). Call it
// only directly after a solve on this scratch returned lpOptimal; any later
// solve overwrites the state being captured.
func (s *simplexState) snapshot() *basisState {
	p := s.p
	bs := &basisState{
		basis:  make([]int32, p.m),
		status: append([]byte(nil), s.status[:p.n]...),
	}
	for i, j := range s.basis {
		if j >= p.n {
			return nil // artificial basic at zero: not a phase-2 basis
		}
		bs.basis[i] = int32(j)
	}
	return bs
}

// restore adopts a snapshot into the scratch under the given (possibly
// changed) bounds: statuses are copied, nonbasic variables rest on their new
// bounds, and basic values are left for refactorization to fill in. It
// reports false when the snapshot is structurally invalid for this LP —
// wrong shape, out-of-range or duplicate basic columns, statuses that do not
// match the basis, or a nonbasic position with no finite bound to rest on —
// in which case the caller must fall back to a cold solve.
func (s *simplexState) restore(warm *basisState, lb, ub []float64) bool {
	p := s.p
	if warm == nil || len(warm.basis) != p.m || len(warm.status) != p.n {
		return false
	}
	copy(s.status, warm.status)
	// Walk the basis, marking each basic column as visited so duplicates —
	// which would alias two rows to one column and corrupt the
	// refactorization — are rejected.
	const visited = 0xff
	ok := true
	for i, j32 := range warm.basis {
		j := int(j32)
		if j < 0 || j >= p.n || s.status[j] != inBasis {
			ok = false
			break
		}
		s.status[j] = visited
		s.basis[i] = j
	}
	inBasisCount := 0
	for j := 0; j < p.n; j++ {
		if s.status[j] == visited {
			s.status[j] = inBasis
			inBasisCount++
		} else if s.status[j] == inBasis {
			ok = false // marked basic but absent from the basis rows
		}
	}
	if !ok || inBasisCount != p.m {
		return false
	}
	for j := 0; j < p.n; j++ {
		if lb[j] > ub[j] {
			return false // crossing bounds: not a warm-startable box
		}
		switch s.status[j] {
		case atLower:
			if math.IsInf(lb[j], -1) {
				return false // stale: the bound it rested on is gone
			}
			s.x[j] = lb[j]
		case atUpper:
			if math.IsInf(ub[j], 1) {
				return false
			}
			s.x[j] = ub[j]
		case atFree:
			s.x[j] = 0
		default: // inBasis: refactorize computes the value
			s.x[j] = 0
		}
	}
	return true
}
