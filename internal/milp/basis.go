package milp

import (
	"errors"
	"math"
)

// basisState is a compact snapshot of an optimal simplex basis: the basic
// column of each row plus every column's resting position. It deliberately
// excludes the basis representation — restoring refactorizes from the column
// data — so a snapshot costs O(m + n) bytes, not O(m²), and branch-and-bound
// can attach one to both children of a node (snapshots are immutable once
// taken and safe to share across workers).
type basisState struct {
	basis  []int32 // row -> column
	status []byte  // column -> position, structurals and slacks only
}

// snapshot captures the current basis for a later warm restart, or nil when
// it cannot seed one (a phase-1 artificial still sits in the basis). Call it
// only directly after a solve on this scratch returned lpOptimal; any later
// solve overwrites the state being captured.
func (s *simplexState) snapshot() *basisState {
	p := s.p
	bs := &basisState{
		basis:  make([]int32, p.m),
		status: append([]byte(nil), s.status[:p.n]...),
	}
	for i, j := range s.basis {
		if j >= p.n {
			return nil // artificial basic at zero: not a phase-2 basis
		}
		bs.basis[i] = int32(j)
	}
	return bs
}

// restore adopts a snapshot into the scratch under the given (possibly
// changed) bounds: statuses are copied, nonbasic variables rest on their new
// bounds, and basic values are left for refactorization to fill in. It
// reports false when the snapshot is structurally invalid for this LP —
// wrong shape, out-of-range or duplicate basic columns, statuses that do not
// match the basis, or a nonbasic position with no finite bound to rest on —
// in which case the caller must fall back to a cold solve.
func (s *simplexState) restore(warm *basisState, lb, ub []float64) bool {
	p := s.p
	if warm == nil || len(warm.basis) != p.m || len(warm.status) != p.n {
		return false
	}
	copy(s.status, warm.status)
	// Walk the basis, marking each basic column as visited so duplicates —
	// which would alias two rows to one column and corrupt the
	// refactorization — are rejected.
	const visited = 0xff
	ok := true
	for i, j32 := range warm.basis {
		j := int(j32)
		if j < 0 || j >= p.n || s.status[j] != inBasis {
			ok = false
			break
		}
		s.status[j] = visited
		s.basis[i] = j
	}
	inBasisCount := 0
	for j := 0; j < p.n; j++ {
		if s.status[j] == visited {
			s.status[j] = inBasis
			inBasisCount++
		} else if s.status[j] == inBasis {
			ok = false // marked basic but absent from the basis rows
		}
	}
	if !ok || inBasisCount != p.m {
		return false
	}
	for j := 0; j < p.n; j++ {
		if lb[j] > ub[j] {
			return false // crossing bounds: not a warm-startable box
		}
		switch s.status[j] {
		case atLower:
			if math.IsInf(lb[j], -1) {
				return false // stale: the bound it rested on is gone
			}
			s.x[j] = lb[j]
		case atUpper:
			if math.IsInf(ub[j], 1) {
				return false
			}
			s.x[j] = ub[j]
		case atFree:
			s.x[j] = 0
		default: // inBasis: refactorize computes the value
			s.x[j] = 0
		}
	}
	return true
}

// errUnstableFactor is returned by the LU engine when element growth during
// factorization exceeds its stability budget; the scratch responds by
// swapping in the dense engine for the remainder of its life.
var errUnstableFactor = errors.New("milp: unstable LU factorization")

// basisEngine maintains an invertible representation of the simplex basis
// matrix B (columns indexed by basis slot, rows by LP row). Two
// implementations exist: denseBasis keeps the explicit m×m inverse updated in
// product form (the historical kernel, kill-switch selectable via
// Options.DenseBasis) and luBasis keeps sparse LU factors with
// Forrest–Tomlin/product-form eta updates (the default; see lu.go).
//
// Vector spaces: FTRAN results and eta pivots live in basis-slot space; BTRAN
// results (dual vectors) live in LP-row space. For the square basis these
// coincide dimensionally but not semantically.
type basisEngine interface {
	// reset installs the diagonal basis B = diag(d); every d entry must be
	// ±1 (the all-slack and signed-artificial quick starts).
	reset(d []float64)
	// factor rebuilds the representation from the basic columns. basis[i] <
	// p.n indexes an LP column; basis[i] >= p.n indexes the phase-1
	// artificial for row basis[i]−p.n with coefficient art[basis[i]−p.n].
	// Returns errSingularBasis or errUnstableFactor on failure, leaving the
	// representation unusable until the next successful reset/factor.
	factor(basis []int, art []float64) error
	// ftranCol computes w = B⁻¹·a_j for LP column j (j ≥ p.n: artificial).
	ftranCol(j int, art []float64, w []float64)
	// ftranVec computes w = B⁻¹·v. v is clobbered; v and w must not alias.
	ftranVec(v, w []float64)
	// btranVec computes y = Bᵀ⁻¹·v for a slot-space v (e.g. basic costs).
	// v is clobbered; v and y must not alias.
	btranVec(v, y []float64)
	// btranRow computes rho = e_rᵀ·B⁻¹, row r of the basis inverse.
	btranRow(r int, rho []float64)
	// update absorbs a pivot in basis slot r where w = B⁻¹·a_enter (the
	// vector just returned by ftranCol). It reports false when the update
	// would be numerically unsafe or the update budget is spent, in which
	// case the caller must refactorize instead — the representation is
	// unchanged.
	update(r int, w []float64) bool
	// needsRefactor reports that accumulated updates crossed the engine's
	// fill or chain-length budget and a refactorization is due.
	needsRefactor() bool
}

// denseBasis is the historical dense kernel behind the basisEngine interface:
// an explicit row-major m×m basis inverse, product-form pivot updates, and
// Gauss-Jordan refactorization. O(m²) memory and per-pivot work — retained as
// the Options.DenseBasis kill switch and as the fallback target when LU
// factorization goes numerically bad.
type denseBasis struct {
	p    *lp
	binv []float64 // dense basis inverse, row-major, stride m

	refac     []float64   // refactorization workspace, m×2m flat
	refacRows [][]float64 // row headers into refac, swapped while pivoting

	stats *LPStats
}

func newDenseBasis(p *lp, stats *LPStats) *denseBasis {
	return &denseBasis{p: p, binv: make([]float64, p.m*p.m), stats: stats}
}

func (d *denseBasis) reset(diag []float64) {
	m := d.p.m
	for i := range d.binv {
		d.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		d.binv[i*m+i] = diag[i] // diag(±1) is its own inverse
	}
}

// factor recomputes the basis inverse from scratch with Gauss-Jordan
// elimination and partial pivoting. The workspace is owned by the engine and
// reused across calls; row swaps exchange headers, not data.
func (d *denseBasis) factor(basis []int, art []float64) error {
	p := d.p
	m := p.m
	w2 := 2 * m
	if d.refac == nil {
		d.refac = make([]float64, m*w2)
		d.refacRows = make([][]float64, m)
	}
	a := d.refacRows
	for i := 0; i < m; i++ {
		row := d.refac[i*w2 : i*w2+w2]
		for k := range row {
			row[k] = 0
		}
		row[m+i] = 1
		a[i] = row
	}
	for r, j := range basis {
		if j < p.n {
			for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
				a[p.colRow[k]][r] = p.colVal[k]
			}
		} else {
			a[j-p.n][r] = art[j-p.n]
		}
	}
	for col := 0; col < m; col++ {
		piv := col
		for i := col + 1; i < m; i++ {
			if math.Abs(a[i][col]) > math.Abs(a[piv][col]) {
				piv = i
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return errSingularBasis
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for k := col; k < w2; k++ {
			a[col][k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == col || a[i][col] == 0 {
				continue
			}
			f := a[i][col]
			for k := col; k < w2; k++ {
				a[i][k] -= f * a[col][k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(d.binv[i*m:i*m+m], a[i][m:])
	}
	d.stats.Factorizations++
	return nil
}

// ftranCol exploits column sparsity: each basis-inverse row is streamed once
// and only the column's nonzeros touched.
func (d *denseBasis) ftranCol(enter int, art []float64, w []float64) {
	p := d.p
	m := p.m
	if enter >= p.n {
		ar, ac := enter-p.n, art[enter-p.n]
		for i := 0; i < m; i++ {
			w[i] = d.binv[i*m+ar] * ac
		}
		return
	}
	st0, en0 := p.colStart[enter], p.colStart[enter+1]
	if en0-st0 == 1 {
		r0, v0 := int(p.colRow[st0]), p.colVal[st0]
		for i := 0; i < m; i++ {
			w[i] = d.binv[i*m+r0] * v0
		}
		return
	}
	rows, vals := p.colRow[st0:en0], p.colVal[st0:en0]
	for i := 0; i < m; i++ {
		row := d.binv[i*m : i*m+m]
		acc := 0.0
		for k, r := range rows {
			acc += row[r] * vals[k]
		}
		w[i] = acc
	}
}

func (d *denseBasis) ftranVec(v, w []float64) {
	m := d.p.m
	for i := 0; i < m; i++ {
		row := d.binv[i*m : i*m+m]
		acc := 0.0
		for k, rv := range v {
			if rv != 0 {
				acc += row[k] * rv
			}
		}
		w[i] = acc
	}
}

func (d *denseBasis) btranVec(v, y []float64) {
	m := d.p.m
	for i := 0; i < m; i++ {
		y[i] = 0
	}
	for r := 0; r < m; r++ {
		vr := v[r]
		if vr == 0 {
			continue
		}
		row := d.binv[r*m : r*m+m]
		for i, bv := range row {
			y[i] += vr * bv
		}
	}
}

func (d *denseBasis) btranRow(r int, rho []float64) {
	m := d.p.m
	copy(rho, d.binv[r*m:r*m+m])
}

// update applies the product-form basis-inverse update for a pivot in row r.
// Rows with a negligible multiplier are skipped entirely, so the cost scales
// with the fill of the pivot column.
func (d *denseBasis) update(r int, w []float64) bool {
	m := d.p.m
	rowR := d.binv[r*m : r*m+m]
	inv := 1 / w[r]
	for k := range rowR {
		rowR[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := w[i]
		if f < 1e-13 && f > -1e-13 {
			continue
		}
		rowI := d.binv[i*m : i*m+m]
		for k := range rowI {
			rowI[k] -= f * rowR[k]
		}
	}
	return true
}

// needsRefactor is always false: the dense inverse has no fill budget, and
// drift control is the caller's periodic refactorization countdown.
func (d *denseBasis) needsRefactor() bool { return false }
