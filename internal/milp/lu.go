package milp

import (
	"math"
	"sort"
)

// luBasis is the default basisEngine: a sparse LU factorization of the basis
// matrix with product-form (Forrest–Tomlin-style) eta updates between
// refactorizations.
//
// Factorization is left-looking column elimination with a static
// Markowitz-flavored pivot order: columns are factored in ascending
// nonzero-count order, and within a column the pivot row is chosen among
// rows within a threshold of the largest magnitude, preferring the sparsest
// row of the basis. The result is B·Q = L·U, where Q maps factor step k to
// basis slot q[k], L is unit lower triangular with its implicit diagonal at
// pivot rows prow[k], and U is upper triangular in factor coordinates.
//
// A pivot that replaces the column in basis slot r with a_enter multiplies B
// on the right by the eta matrix E (identity except column r = w = B⁻¹·a_enter),
// so B⁻¹ gains a left factor E⁻¹. FTRAN applies the LU solves then the eta
// chain oldest-first; BTRAN applies the transposed chain newest-first then
// the transposed LU solves. The chain is bounded by etaLimit/fillLimit;
// crossing either reports needsRefactor. Element growth beyond growthLimit
// during factorization returns errUnstableFactor, which the owning scratch
// answers by swapping in the dense engine (see simplexState.refactorize).
type luBasis struct {
	p     *lp
	stats *LPStats

	prow []int32 // factor step -> pivot LP row
	q    []int32 // factor step -> basis slot
	// L columns excluding the unit diagonal; row indices are LP rows.
	lstart []int32
	lrow   []int32
	lval   []float64
	// U columns excluding the diagonal; row indices are factor steps j < k.
	ustart []int32
	urow   []int32
	uval   []float64
	udiag  []float64

	// Eta chain accumulated since the last factor; indices are basis slots.
	etaR     []int32
	etaPiv   []float64
	etaStart []int32
	etaRow   []int32
	etaVal   []float64

	// Refactorization and stability budgets; fields so the torture tests can
	// tighten them.
	etaLimit    int     // refactor after this many eta updates
	fillLimit   int     // ... or once the chain carries this many entries
	growthLimit float64 // max element growth before a factor is rejected

	work    []float64 // dense accumulator over LP rows
	mark    []int32   // row -> stamp of the column currently factoring
	touched []int32   // rows touched by the column currently factoring
	pos     []int32   // LP row -> factor step, -1 while unpivoted
	zbuf    []float64 // factor-coordinate solve scratch
	vbuf    []float64 // scatter scratch, kept all-zero between calls
	rowCnt  []int32   // basis row counts for the Markowitz row preference
	colCnt  []int32   // per-slot column counts for the factor order
	stamp   int32
}

func newLUBasis(p *lp, stats *LPStats) *luBasis {
	m := p.m
	return &luBasis{
		p:           p,
		stats:       stats,
		prow:        make([]int32, m),
		q:           make([]int32, m),
		lstart:      make([]int32, m+1),
		ustart:      make([]int32, m+1),
		udiag:       make([]float64, m),
		etaStart:    make([]int32, 1, 65),
		etaLimit:    64,
		fillLimit:   6*m + 256,
		growthLimit: 1e12,
		work:        make([]float64, m),
		mark:        make([]int32, m),
		touched:     make([]int32, 0, m),
		pos:         make([]int32, m),
		zbuf:        make([]float64, m),
		vbuf:        make([]float64, m),
		rowCnt:      make([]int32, m),
		colCnt:      make([]int32, m),
	}
}

func (u *luBasis) clearEtas() {
	u.etaR = u.etaR[:0]
	u.etaPiv = u.etaPiv[:0]
	u.etaStart = u.etaStart[:1]
	u.etaRow = u.etaRow[:0]
	u.etaVal = u.etaVal[:0]
}

// reset installs the diagonal basis B = diag(d): a trivial factor with
// identity permutations and no off-diagonal fill.
func (u *luBasis) reset(diag []float64) {
	m := u.p.m
	u.clearEtas()
	for k := 0; k < m; k++ {
		u.prow[k] = int32(k)
		u.q[k] = int32(k)
		u.lstart[k+1] = 0
		u.ustart[k+1] = 0
		u.udiag[k] = diag[k]
	}
	u.lrow = u.lrow[:0]
	u.lval = u.lval[:0]
	u.urow = u.urow[:0]
	u.uval = u.uval[:0]
}

// factor rebuilds L and U from the basic columns and clears the eta chain.
func (u *luBasis) factor(basis []int, art []float64) error {
	p := u.p
	m := p.m
	u.clearEtas()
	u.lrow, u.lval = u.lrow[:0], u.lval[:0]
	u.urow, u.uval = u.urow[:0], u.uval[:0]
	u.lstart[0], u.ustart[0] = 0, 0

	// Static Markowitz-flavored ordering: column counts decide the factor
	// order, row counts the within-column pivot preference.
	for i := 0; i < m; i++ {
		u.rowCnt[i] = 0
		u.pos[i] = -1
		u.q[i] = int32(i)
	}
	maxB := 0.0
	for slot, j := range basis {
		if j < p.n {
			st, en := p.colStart[j], p.colStart[j+1]
			u.colCnt[slot] = int32(en - st)
			for t := st; t < en; t++ {
				u.rowCnt[p.colRow[t]]++
				if a := math.Abs(p.colVal[t]); a > maxB {
					maxB = a
				}
			}
		} else {
			u.colCnt[slot] = 1
			u.rowCnt[j-p.n]++
			// artificial coefficients are ±1
			if maxB < 1 {
				maxB = 1
			}
		}
	}
	cnt := u.colCnt
	sort.Slice(u.q, func(a, b int) bool {
		qa, qb := u.q[a], u.q[b]
		if cnt[qa] != cnt[qb] {
			return cnt[qa] < cnt[qb]
		}
		return qa < qb
	})

	if u.stamp > math.MaxInt32-int32(m)-2 {
		for i := range u.mark {
			u.mark[i] = 0
		}
		u.stamp = 0
	}
	maxU := 0.0
	for k := 0; k < m; k++ {
		u.stamp++
		stamp := u.stamp
		u.touched = u.touched[:0]
		work := u.work
		// Scatter the column for this factor step.
		j := basis[u.q[k]]
		if j < p.n {
			for t := p.colStart[j]; t < p.colStart[j+1]; t++ {
				r := p.colRow[t]
				work[r] = p.colVal[t]
				u.mark[r] = stamp
				u.touched = append(u.touched, r)
			}
		} else {
			r := int32(j - p.n)
			work[r] = art[j-p.n]
			u.mark[r] = stamp
			u.touched = append(u.touched, r)
		}
		// Left-looking elimination: apply every earlier column whose pivot
		// row is live in the accumulator, in factor order so each pivot value
		// is final before it is used.
		for jj := 0; jj < k; jj++ {
			pr := u.prow[jj]
			if u.mark[pr] != stamp {
				continue
			}
			pv := work[pr]
			if pv == 0 {
				continue
			}
			for t := u.lstart[jj]; t < u.lstart[jj+1]; t++ {
				r := u.lrow[t]
				if u.mark[r] != stamp {
					u.mark[r] = stamp
					work[r] = 0
					u.touched = append(u.touched, r)
				}
				work[r] -= u.lval[t] * pv
			}
		}
		// Threshold pivoting: among unpivoted rows within 10× of the largest
		// magnitude, prefer the sparsest basis row (Markowitz row count),
		// then the larger magnitude — deterministic because the touched list
		// order is a pure function of the input.
		maxAbs := 0.0
		for _, r := range u.touched {
			if u.pos[r] >= 0 {
				continue
			}
			if a := math.Abs(work[r]); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs < 1e-12 {
			for _, r := range u.touched {
				work[r] = 0
			}
			return errSingularBasis
		}
		thresh := 0.1 * maxAbs
		pr := int32(-1)
		var prCnt int32
		var prAbs float64
		for _, r := range u.touched {
			if u.pos[r] >= 0 {
				continue
			}
			a := math.Abs(work[r])
			if a < thresh {
				continue
			}
			c := u.rowCnt[r]
			if pr < 0 || c < prCnt || (c == prCnt && a > prAbs) {
				pr, prCnt, prAbs = r, c, a
			}
		}
		piv := work[pr]
		u.prow[k] = pr
		u.pos[pr] = int32(k)
		u.udiag[k] = piv
		if a := math.Abs(piv); a > maxU {
			maxU = a
		}
		for _, r := range u.touched {
			v := work[r]
			work[r] = 0
			if r == pr || v == 0 {
				continue
			}
			if ps := u.pos[r]; ps >= 0 {
				u.urow = append(u.urow, ps)
				u.uval = append(u.uval, v)
				if a := math.Abs(v); a > maxU {
					maxU = a
				}
			} else if l := v / piv; l > 1e-14 || l < -1e-14 {
				u.lrow = append(u.lrow, r)
				u.lval = append(u.lval, l)
			}
		}
		u.lstart[k+1] = int32(len(u.lrow))
		u.ustart[k+1] = int32(len(u.urow))
	}
	if maxU > u.growthLimit*math.Max(1, maxB) {
		return errUnstableFactor
	}
	u.stats.Factorizations++
	return nil
}

// applyEtasFtran applies the eta chain oldest-first to a slot-space vector:
// each E⁻¹ scales the pivot slot and subtracts its column from the rest.
func (u *luBasis) applyEtasFtran(w []float64) {
	for e := 0; e < len(u.etaR); e++ {
		r := u.etaR[e]
		t := w[r] / u.etaPiv[e]
		w[r] = t
		if t == 0 {
			continue
		}
		for k := u.etaStart[e]; k < u.etaStart[e+1]; k++ {
			w[u.etaRow[k]] -= u.etaVal[k] * t
		}
	}
}

func (u *luBasis) ftranVec(v, w []float64) {
	m := u.p.m
	// L-solve in place over LP rows.
	for k := 0; k < m; k++ {
		pv := v[u.prow[k]]
		if pv == 0 {
			continue
		}
		for t := u.lstart[k]; t < u.lstart[k+1]; t++ {
			v[u.lrow[t]] -= u.lval[t] * pv
		}
	}
	// U-solve into factor coordinates, then permute into slot space.
	z := u.zbuf
	for k := m - 1; k >= 0; k-- {
		t := v[u.prow[k]]
		if t == 0 {
			z[k] = 0
			continue
		}
		zk := t / u.udiag[k]
		z[k] = zk
		for e := u.ustart[k]; e < u.ustart[k+1]; e++ {
			v[u.prow[u.urow[e]]] -= u.uval[e] * zk
		}
	}
	for k := 0; k < m; k++ {
		w[u.q[k]] = z[k]
	}
	u.applyEtasFtran(w)
}

func (u *luBasis) ftranCol(j int, art []float64, w []float64) {
	p := u.p
	v := u.vbuf
	if j >= p.n {
		v[j-p.n] = art[j-p.n]
	} else {
		for t := p.colStart[j]; t < p.colStart[j+1]; t++ {
			v[p.colRow[t]] = p.colVal[t]
		}
	}
	u.ftranVec(v, w)
	for i := range v {
		v[i] = 0
	}
}

func (u *luBasis) btranVec(v, y []float64) {
	m := u.p.m
	// Transposed eta chain, newest first: only the pivot slot changes.
	for e := len(u.etaR) - 1; e >= 0; e-- {
		r := u.etaR[e]
		acc := v[r]
		for k := u.etaStart[e]; k < u.etaStart[e+1]; k++ {
			acc -= u.etaVal[k] * v[u.etaRow[k]]
		}
		v[r] = acc / u.etaPiv[e]
	}
	// Uᵀ forward solve in factor coordinates (a dot product per column).
	z := u.zbuf
	for k := 0; k < m; k++ {
		acc := v[u.q[k]]
		for e := u.ustart[k]; e < u.ustart[k+1]; e++ {
			acc -= u.uval[e] * z[u.urow[e]]
		}
		z[k] = acc / u.udiag[k]
	}
	// Lᵀ backward solve into LP-row space: every off-diagonal of column k
	// sits in a row pivoted after k, so those y entries are already final.
	for k := m - 1; k >= 0; k-- {
		acc := z[k]
		for t := u.lstart[k]; t < u.lstart[k+1]; t++ {
			acc -= u.lval[t] * y[u.lrow[t]]
		}
		y[u.prow[k]] = acc
	}
}

func (u *luBasis) btranRow(r int, rho []float64) {
	v := u.vbuf
	v[r] = 1
	u.btranVec(v, rho)
	for i := range v {
		v[i] = 0
	}
}

// update absorbs a pivot as one more eta in the chain. It refuses pivots that
// are too small absolutely or relative to the pivot column (the caller
// refactorizes instead, which re-pivots for stability).
func (u *luBasis) update(r int, w []float64) bool {
	piv := w[r]
	a := math.Abs(piv)
	if a < pivotTol {
		return false
	}
	maxW := 0.0
	for _, v := range w {
		if v < 0 {
			v = -v
		}
		if v > maxW {
			maxW = v
		}
	}
	if a < 1e-8*maxW {
		return false
	}
	u.etaR = append(u.etaR, int32(r))
	u.etaPiv = append(u.etaPiv, piv)
	for i, v := range w {
		if i == r || (v < 1e-13 && v > -1e-13) {
			continue
		}
		u.etaRow = append(u.etaRow, int32(i))
		u.etaVal = append(u.etaVal, v)
	}
	u.etaStart = append(u.etaStart, int32(len(u.etaRow)))
	u.stats.EtaUpdates++
	return true
}

func (u *luBasis) needsRefactor() bool {
	return len(u.etaR) >= u.etaLimit || len(u.etaRow) >= u.fillLimit
}
