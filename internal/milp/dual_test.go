package milp

import (
	"math"
	"testing"
	"time"
)

// degenerateModel is maximally tie-heavy: n unit-box variables under one
// binding cardinality cap duplicated dup times, so every re-solve pivots
// through rows with identical ratios and zero-length dual steps — the
// precondition for classical simplex cycling.
func degenerateModel(n, capacity, dup int) *Model {
	m := NewModel(Maximize)
	terms := make([]Term, n)
	for j := 0; j < n; j++ {
		m.AddVar("x", Continuous, 0, 1, 1)
		terms[j] = Term{Var: VarID(j), Coef: 1}
	}
	for i := 0; i < dup; i++ {
		m.AddConstraint("cap", terms, LE, float64(capacity))
	}
	return m
}

// TestDualDegenerateChainNoCycle pins the dual phase's anti-cycling behavior:
// walking a branch-and-bound-style chain of bound fixings across a fully
// degenerate LP must terminate, agree with cold solves at every step, and do
// so in a bounded number of pivots (a cycle would exhaust the dual budget and
// show up as a fallback storm or an iteration blow-up).
func TestDualDegenerateChainNoCycle(t *testing.T) {
	const n, capacity, dup = 12, 6, 5
	model := degenerateModel(n, capacity, dup)
	p := newLP(model)

	sc := newScratch(p)
	st, x, err := sc.solve(p.lb, p.ub, 0, time.Time{})
	if err != nil || st != lpOptimal {
		t.Fatalf("root: st=%v err=%v", st, err)
	}
	if obj := model.ObjectiveValue(x[:n]); math.Abs(obj-float64(capacity)) > 1e-9 {
		t.Fatalf("root objective %.9f; want %d", obj, capacity)
	}

	lb := append([]float64(nil), p.lb...)
	ub := append([]float64(nil), p.ub...)
	warm := sc.snapshot()
	// Fix variables to 0 one at a time: each step forces the re-solve to pull
	// a replacement variable in across rows that are all tied at the cap.
	for step := 0; step < n-1; step++ {
		ub[step] = 0
		coldSt, coldX, err := solveLP(p, lb, ub, 0)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		warmSt, warmX, err := sc.solveFrom(warm, lb, ub, 0, time.Time{})
		if err != nil {
			t.Fatalf("step %d warm: %v", step, err)
		}
		if warmSt != coldSt {
			t.Fatalf("step %d: warm status %v != cold %v", step, warmSt, coldSt)
		}
		if coldSt == lpOptimal {
			co := model.ObjectiveValue(coldX[:n])
			wo := model.ObjectiveValue(warmX[:n])
			if math.Abs(co-wo) > 1e-9 {
				t.Fatalf("step %d: warm objective %.9f != cold %.9f", step, wo, co)
			}
			want := math.Min(float64(capacity), float64(n-1-step))
			if math.Abs(co-want) > 1e-9 {
				t.Fatalf("step %d: objective %.9f; want %.0f", step, co, want)
			}
		}
		warm = sc.snapshot()
	}
	// The chain is n−1 re-solves over an m=5, n=17-column LP; anything past a
	// few hundred pivots means a degenerate loop only the budget cut short.
	if sc.stats.Iterations > 500 {
		t.Fatalf("degenerate chain took %d pivots; cycling suspected", sc.stats.Iterations)
	}
	if sc.stats.WarmHits == 0 {
		t.Fatal("degenerate chain never warm-started; dual path is dead")
	}
	t.Logf("stats: %+v", sc.stats)
}

// TestDualZeroRatioPivots forces the fully-degenerate corner: the tightened
// bound already sits at the optimal value, so every dual ratio ties at zero
// and the re-solve must still land exactly, without drifting or stalling.
func TestDualZeroRatioPivots(t *testing.T) {
	const n, capacity, dup = 8, 4, 4
	model := degenerateModel(n, capacity, dup)
	p := newLP(model)
	sc := newScratch(p)
	st, x, err := sc.solve(p.lb, p.ub, 0, time.Time{})
	if err != nil || st != lpOptimal {
		t.Fatalf("root: st=%v err=%v", st, err)
	}
	warm := sc.snapshot()
	lb := append([]float64(nil), p.lb...)
	ub := append([]float64(nil), p.ub...)
	// Fix every variable to its (integral) optimal value: the warm re-solve
	// starts optimal and degenerate at once.
	for j := 0; j < n; j++ {
		v := math.Round(x[j])
		lb[j], ub[j] = v, v
	}
	warmSt, warmX, err := sc.solveFrom(warm, lb, ub, 0, time.Time{})
	if err != nil || warmSt != lpOptimal {
		t.Fatalf("warm: st=%v err=%v", warmSt, err)
	}
	if obj := model.ObjectiveValue(warmX[:n]); math.Abs(obj-float64(capacity)) > 1e-9 {
		t.Fatalf("objective %.9f; want %d", obj, capacity)
	}
}
