package milp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mustSolve(t *testing.T, m *Model, opts Options) *Solution {
	t.Helper()
	sol, err := Solve(m, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestPureLPMax(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 → x=4, y=0, obj 12.
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, Inf, 3)
	y := m.AddVar("y", Continuous, 0, Inf, 2)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, LE, 4)
	m.AddConstraint("c2", []Term{{x, 1}, {y, 3}}, LE, 6)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Abs(sol.Objective-12) > 1e-6 {
		t.Errorf("objective = %v, want 12", sol.Objective)
	}
	if math.Abs(sol.Values[x]-4) > 1e-6 || math.Abs(sol.Values[y]) > 1e-6 {
		t.Errorf("values = %v, want [4 0]", sol.Values)
	}
}

func TestPureLPMinWithGE(t *testing.T) {
	// minimize 2x + 3y s.t. x + y >= 10, x <= 6 → x=6, y=4, obj 24.
	m := NewModel(Minimize)
	x := m.AddVar("x", Continuous, 0, 6, 2)
	y := m.AddVar("y", Continuous, 0, Inf, 3)
	m.AddConstraint("cover", []Term{{x, 1}, {y, 1}}, GE, 10)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-24) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 24", sol.Status, sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// maximize x + y s.t. x + y = 5, x <= 3, y <= 3.
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, 3, 1)
	y := m.AddVar("y", Continuous, 0, 3, 1)
	m.AddConstraint("eq", []Term{{x, 1}, {y, 1}}, EQ, 5)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
}

func TestInfeasibleLP(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, 1, 1)
	m.AddConstraint("c", []Term{{x, 1}}, GE, 2)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasiblePhase1NeededMin(t *testing.T) {
	// GE constraints force phase 1 (x=0 start infeasible): min x+y, x+y>=4,
	// x-y>=1 → x=2.5,y=1.5, obj 4.
	m := NewModel(Minimize)
	x := m.AddVar("x", Continuous, 0, Inf, 1)
	y := m.AddVar("y", Continuous, 0, Inf, 1)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, GE, 4)
	m.AddConstraint("c2", []Term{{x, 1}, {y, -1}}, GE, 1)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 4", sol.Status, sol.Objective)
	}
}

func TestUnboundedLP(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, Inf, 1)
	y := m.AddVar("y", Continuous, 0, Inf, 0)
	m.AddConstraint("c", []Term{{x, 1}, {y, -1}}, LE, 3)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// minimize x s.t. x >= -7 via constraint on a free variable.
	m := NewModel(Minimize)
	x := m.AddVar("x", Continuous, math.Inf(-1), Inf, 1)
	m.AddConstraint("c", []Term{{x, 1}}, GE, -7)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-(-7)) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal -7", sol.Status, sol.Objective)
	}
}

func TestKnapsack(t *testing.T) {
	// Classic 0/1 knapsack: weights 2,3,4,5; values 3,4,5,6; cap 5 → best 7 (items 0,1).
	m := NewModel(Maximize)
	w := []float64{2, 3, 4, 5}
	v := []float64{3, 4, 5, 6}
	terms := make([]Term, 4)
	for i := 0; i < 4; i++ {
		id := m.AddBinary("", v[i])
		terms[i] = Term{id, w[i]}
	}
	m.AddConstraint("cap", terms, LE, 5)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-7) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 7", sol.Status, sol.Objective)
	}
}

func TestIntegerGeneral(t *testing.T) {
	// maximize x + y, 2x + 3y <= 12, x,y integer in [0,4] → e.g. x=4,y=1, obj 5.
	m := NewModel(Maximize)
	x := m.AddVar("x", Integer, 0, 4, 1)
	y := m.AddVar("y", Integer, 0, 4, 1)
	m.AddConstraint("c", []Term{{x, 2}, {y, 3}}, LE, 12)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
	if math.Abs(sol.Values[x]-math.Round(sol.Values[x])) > 1e-6 {
		t.Errorf("x not integral: %v", sol.Values[x])
	}
}

func TestMILPInfeasible(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	y := m.AddBinary("y", 1)
	m.AddConstraint("c1", []Term{{x, 1}, {y, 1}}, GE, 2)
	m.AddConstraint("c2", []Term{{x, 1}, {y, 1}}, LE, 1)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestWarmStartIncumbent(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 4)
	m.AddConstraint("c", []Term{{x, 3}, {y, 3}}, LE, 3)
	seed := []float64{0, 1} // feasible, obj 4
	sol := mustSolve(t, m, Options{InitialSolution: seed})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("got %v obj %v, want optimal 5", sol.Status, sol.Objective)
	}
	// An infeasible seed must be ignored, not crash.
	bad := []float64{1, 1}
	sol = mustSolve(t, m, Options{InitialSolution: bad})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("with bad seed: got %v obj %v", sol.Status, sol.Objective)
	}
}

func TestGapTermination(t *testing.T) {
	// With Gap=1.0 any incumbent within 100% of the bound is accepted.
	m := NewModel(Maximize)
	n := 12
	terms := make([]Term, n)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		id := m.AddBinary("", 1+r.Float64()*10)
		terms[i] = Term{id, 1 + r.Float64()*5}
	}
	m.AddConstraint("cap", terms, LE, 12)
	sol := mustSolve(t, m, Options{Gap: 1.0})
	if sol.Status != StatusOptimal { // "optimal within gap"
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Values == nil {
		t.Fatalf("no solution returned")
	}
	if !m.IsFeasible(sol.Values, 1e-6) {
		t.Fatalf("returned infeasible point")
	}
}

func TestTimeLimitReturnsIncumbent(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 1)
	m.AddConstraint("c", []Term{{x, 1}}, LE, 1)
	sol := mustSolve(t, m, Options{TimeLimit: time.Hour})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-1) > 1e-9 {
		t.Fatalf("trivial solve failed: %v %v", sol.Status, sol.Objective)
	}
}

func TestValidateErrors(t *testing.T) {
	m := NewModel(Maximize)
	m.AddVar("x", Continuous, 2, 1, 0) // lb > ub
	if _, err := Solve(m, Options{}); err == nil {
		t.Errorf("expected validation error for lb>ub")
	}

	m2 := NewModel(Maximize)
	m2.AddVar("x", Integer, 0, Inf, 1) // unbounded integer
	if _, err := Solve(m2, Options{}); err == nil {
		t.Errorf("expected validation error for unbounded integer")
	}

	m3 := NewModel(Maximize)
	x := m3.AddVar("x", Continuous, 0, 1, 1)
	m3.AddConstraint("c", []Term{{x + 5, 1}}, LE, 1) // bad var id
	if _, err := Solve(m3, Options{}); err == nil {
		t.Errorf("expected validation error for bad var id")
	}
}

func TestEmptyModel(t *testing.T) {
	sol := mustSolve(t, NewModel(Maximize), Options{})
	if sol.Status != StatusOptimal {
		t.Fatalf("empty model status = %v", sol.Status)
	}
}

func TestMergeTerms(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, 10, 1)
	m.AddConstraint("c", []Term{{x, 1}, {x, 2}}, LE, 6) // 3x <= 6
	sol := mustSolve(t, m, Options{})
	if math.Abs(sol.Objective-2) > 1e-6 {
		t.Errorf("merged-term objective = %v, want 2", sol.Objective)
	}
}

func TestModelString(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Binary, 0, 1, 2)
	y := m.AddVar("", Integer, 0, 3, -1)
	m.AddConstraint("c", []Term{{x, 1}, {y, -2}}, LE, 4)
	s := m.String()
	for _, want := range []string{"maximize", "2 x", "x1", "<= 4", "binary"} {
		if !contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// bruteForce enumerates all integer assignments of a pure-integer model and
// returns the best feasible objective, or NaN if infeasible.
func bruteForce(m *Model) float64 {
	vals := make([]float64, len(m.Vars))
	best := math.NaN()
	var rec func(i int)
	rec = func(i int) {
		if i == len(m.Vars) {
			if m.IsFeasible(vals, 1e-9) {
				obj := m.ObjectiveValue(vals)
				if math.IsNaN(best) {
					best = obj
				} else if m.Sense == Maximize && obj > best {
					best = obj
				} else if m.Sense == Minimize && obj < best {
					best = obj
				}
			}
			return
		}
		for v := m.Vars[i].Lb; v <= m.Vars[i].Ub+1e-9; v++ {
			vals[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// randomIntModel builds a random small pure-integer model.
func randomIntModel(r *rand.Rand) *Model {
	sense := Maximize
	if r.Intn(2) == 0 {
		sense = Minimize
	}
	m := NewModel(sense)
	nv := 2 + r.Intn(4) // 2..5 vars
	for i := 0; i < nv; i++ {
		typ := Integer
		ub := float64(1 + r.Intn(3))
		if r.Intn(2) == 0 {
			typ = Binary
			ub = 1
		}
		m.AddVar("", typ, 0, ub, float64(r.Intn(11)-5))
	}
	nc := 1 + r.Intn(4)
	for c := 0; c < nc; c++ {
		var terms []Term
		for i := 0; i < nv; i++ {
			if coef := r.Intn(7) - 3; coef != 0 {
				terms = append(terms, Term{VarID(i), float64(coef)})
			}
		}
		if len(terms) == 0 {
			terms = []Term{{0, 1}}
		}
		op := []Op{LE, GE, EQ}[r.Intn(3)]
		rhs := float64(r.Intn(13) - 4)
		m.AddConstraint("", terms, op, rhs)
	}
	return m
}

func TestQuickMILPAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomIntModel(r)
		want := bruteForce(m)
		sol, err := Solve(m, Options{})
		if err != nil {
			t.Logf("seed %d: solve error %v\nmodel:\n%s", seed, err, m)
			return false
		}
		if math.IsNaN(want) {
			if sol.Status != StatusInfeasible {
				t.Logf("seed %d: want infeasible, got %v obj %v\nmodel:\n%s", seed, sol.Status, sol.Objective, m)
				return false
			}
			return true
		}
		if sol.Status != StatusOptimal {
			t.Logf("seed %d: want optimal, got %v\nmodel:\n%s", seed, sol.Status, m)
			return false
		}
		if math.Abs(sol.Objective-want) > 1e-6 {
			t.Logf("seed %d: obj %v, brute force %v\nmodel:\n%s", seed, sol.Objective, want, m)
			return false
		}
		if !m.IsFeasible(sol.Values, 1e-6) {
			t.Logf("seed %d: returned infeasible point\nmodel:\n%s", seed, m)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate LP (multiple constraints active at origin).
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, Inf, 0.75)
	y := m.AddVar("y", Continuous, 0, Inf, -150)
	z := m.AddVar("z", Continuous, 0, Inf, 0.02)
	w := m.AddVar("w", Continuous, 0, Inf, -6)
	// Beale's cycling example.
	m.AddConstraint("c1", []Term{{x, 0.25}, {y, -60}, {z, -0.04}, {w, 9}}, LE, 0)
	m.AddConstraint("c2", []Term{{x, 0.5}, {y, -90}, {z, -0.02}, {w, 3}}, LE, 0)
	m.AddConstraint("c3", []Term{{z, 1}}, LE, 1)
	sol := mustSolve(t, m, Options{})
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-0.05) > 1e-6 {
		t.Fatalf("Beale: got %v obj %v, want optimal 0.05", sol.Status, sol.Objective)
	}
}

func TestSolutionGap(t *testing.T) {
	s := &Solution{Objective: 90, Bound: 100}
	if g := s.Gap(); math.Abs(g-10.0/90.0) > 1e-12 {
		t.Errorf("gap = %v", g)
	}
}

func BenchmarkKnapsack30(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	m := NewModel(Maximize)
	terms := make([]Term, 30)
	for i := range terms {
		id := m.AddBinary("", 1+r.Float64()*20)
		terms[i] = Term{id, 1 + r.Float64()*10}
	}
	m.AddConstraint("cap", terms, LE, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, Options{Gap: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLP200(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	m := NewModel(Maximize)
	n := 200
	ids := make([]VarID, n)
	for i := 0; i < n; i++ {
		ids[i] = m.AddVar("", Continuous, 0, 10, r.Float64())
	}
	for c := 0; c < 80; c++ {
		var terms []Term
		for i := 0; i < n; i += 1 + r.Intn(10) {
			terms = append(terms, Term{ids[i], 1 + r.Float64()})
		}
		m.AddConstraint("", terms, LE, 50+r.Float64()*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMaxNodesLimit(t *testing.T) {
	// A model the solver cannot finish in one node, with MaxNodes=2: must
	// still return its best incumbent with StatusFeasible or better.
	r := rand.New(rand.NewSource(21))
	m := NewModel(Maximize)
	terms := make([]Term, 16)
	for i := range terms {
		id := m.AddBinary("", 1+r.Float64()*9)
		terms[i] = Term{id, 1 + r.Float64()*4}
	}
	m.AddConstraint("cap", terms, LE, 20)
	sol := mustSolve(t, m, Options{MaxNodes: 2})
	if sol.Values == nil {
		t.Fatalf("no incumbent under MaxNodes limit (status %v)", sol.Status)
	}
	if !m.IsFeasible(sol.Values, 1e-6) {
		t.Fatalf("incumbent infeasible")
	}
}

func TestHeuristicCallback(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddBinary("x", 5)
	y := m.AddBinary("y", 4)
	m.AddConstraint("c", []Term{{x, 3}, {y, 3}}, LE, 4)
	called := false
	sol := mustSolve(t, m, Options{Heuristic: func(relax []float64) []float64 {
		called = true
		return []float64{1, 0} // feasible, objective 5 (optimal)
	}})
	if !called {
		t.Errorf("heuristic never invoked")
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Objective-5) > 1e-9 {
		t.Errorf("got %v obj %v", sol.Status, sol.Objective)
	}
	// A garbage heuristic must be ignored.
	sol2 := mustSolve(t, m, Options{Heuristic: func(relax []float64) []float64 {
		return []float64{1, 1} // infeasible
	}})
	if sol2.Status != StatusOptimal || math.Abs(sol2.Objective-5) > 1e-9 {
		t.Errorf("bad heuristic corrupted solve: %v obj %v", sol2.Status, sol2.Objective)
	}
}

func TestTinyTimeLimit(t *testing.T) {
	// With a 1ns budget the solver must return promptly and safely.
	r := rand.New(rand.NewSource(31))
	m := NewModel(Maximize)
	terms := make([]Term, 24)
	for i := range terms {
		id := m.AddBinary("", 1+r.Float64()*9)
		terms[i] = Term{id, 1 + r.Float64()*4}
	}
	m.AddConstraint("cap", terms, LE, 30)
	sol, err := Solve(m, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values != nil && !m.IsFeasible(sol.Values, 1e-6) {
		t.Fatalf("returned infeasible point under tiny time limit")
	}
}

// TestBoundDominatesObjective: on maximize models the proven bound is never
// below the returned objective, and a StatusOptimal solve respects the gap.
func TestBoundDominatesObjective(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		m := NewModel(Maximize)
		n := 8 + r.Intn(8)
		terms := make([]Term, n)
		for i := 0; i < n; i++ {
			id := m.AddBinary("", 1+r.Float64()*10)
			terms[i] = Term{id, 1 + r.Float64()*5}
		}
		m.AddConstraint("cap", terms, LE, float64(n))
		gap := 0.05
		sol := mustSolve(t, m, Options{Gap: gap})
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if sol.Bound < sol.Objective-1e-6 {
			t.Fatalf("trial %d: bound %v below objective %v", trial, sol.Bound, sol.Objective)
		}
		if g := sol.Gap(); g > gap+1e-6 {
			t.Fatalf("trial %d: achieved gap %v exceeds %v", trial, g, gap)
		}
	}
}

// TestStressSchedulerLikeModels throws larger scheduler-shaped models (many
// binaries, supply rows, indicator chains) at the solver under a tight time
// budget: it must always return a feasible point or a clean status — never
// an error, panic, or infeasible "solution".
func TestStressSchedulerLikeModels(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := NewModel(Maximize)
		nJobs := 20 + r.Intn(20)
		nSlices := 8 + r.Intn(8)
		capacity := float64(20 + r.Intn(40))
		supply := make([][]Term, nSlices)
		for j := 0; j < nJobs; j++ {
			job := m.AddBinary("", 0)
			opts := 2 + r.Intn(6)
			var kids []Term
			for o := 0; o < opts; o++ {
				k := float64(1 + r.Intn(8))
				v := 1 + r.Float64()*999
				ind := m.AddBinary("", v)
				kids = append(kids, Term{ind, 1})
				start := r.Intn(nSlices)
				dur := 1 + r.Intn(nSlices-start)
				for t := start; t < start+dur; t++ {
					supply[t] = append(supply[t], Term{ind, k})
				}
			}
			kids = append(kids, Term{job, -1})
			m.AddConstraint("", kids, LE, 0)
		}
		for t, terms := range supply {
			if len(terms) > 0 {
				m.AddConstraint(fmt.Sprintf("s%d", t), terms, LE, capacity)
			}
		}
		sol, err := Solve(m, Options{Gap: 0.1, TimeLimit: 150 * time.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch sol.Status {
		case StatusOptimal, StatusFeasible:
			if !m.IsFeasible(sol.Values, 1e-6) {
				t.Fatalf("seed %d: returned infeasible point", seed)
			}
		case StatusNoSolution:
			// acceptable under the budget
		default:
			t.Fatalf("seed %d: unexpected status %v", seed, sol.Status)
		}
	}
}
