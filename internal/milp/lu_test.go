package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Numerical torture tests for the sparse LU basis engine: every operation is
// checked against the dense inverse on the same basis, factorization must
// reject singular and numerically wild bases, the eta chain must stay exact
// through forced-refactorization churn, and the dense fallback must engage
// when (and only when) a factorization is rejected as unstable.

// tortureModel builds a random MILP whose LP relaxation has a mix of
// inequality senses, ranged coefficients, and enough structure to produce
// non-trivial optimal bases.
func tortureModel(r *rand.Rand, nv, nc int) *Model {
	m := NewModel(Maximize)
	for j := 0; j < nv; j++ {
		typ := Continuous
		if r.Intn(2) == 0 {
			typ = Binary
		}
		m.AddVar("", typ, 0, 1+float64(r.Intn(4)), r.Float64()*10-2)
	}
	for i := 0; i < nc; i++ {
		var terms []Term
		for j := 0; j < nv; j++ {
			if r.Intn(3) == 0 {
				terms = append(terms, Term{Var: VarID(j), Coef: float64(r.Intn(9) - 4)})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: VarID(r.Intn(nv)), Coef: 1})
		}
		op := LE
		if r.Intn(4) == 0 {
			op = GE
		}
		rhs := float64(r.Intn(20))
		if op == GE {
			rhs = -rhs
		}
		m.AddConstraint("", terms, op, rhs)
	}
	return m
}

// solvedBasis runs a cold LP solve and returns the scratch if it ended on an
// all-structural optimal basis (nil otherwise).
func solvedBasis(p *lp) *simplexState {
	s := newScratch(p)
	st, _, err := s.solve(p.lb, p.ub, 0, timeZero())
	if err != nil || st != lpOptimal {
		return nil
	}
	for _, j := range s.basis {
		if j >= p.n {
			return nil
		}
	}
	return s
}

func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		if x := math.Abs(a[i] - b[i]); x > d {
			d = x
		}
	}
	return d
}

// TestLUEngineMatchesDense factors the same solved bases with both engines
// and checks FTRAN/BTRAN agreement entry-for-entry, then drives a chain of
// simulated pivots through both and re-checks after every eta update.
func TestLUEngineMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	bases := 0
	for it := 0; it < 60; it++ {
		model := tortureModel(r, 4+r.Intn(10), 3+r.Intn(8))
		p := newLP(model)
		s := solvedBasis(p)
		if s == nil {
			continue
		}
		bases++
		m := p.m
		var stLU, stD LPStats
		lu := newLUBasis(p, &stLU)
		db := newDenseBasis(p, &stD)
		basis := append([]int(nil), s.basis...)
		if err := lu.factor(basis, nil); err != nil {
			t.Fatalf("it %d: LU factor: %v", it, err)
		}
		if err := db.factor(basis, nil); err != nil {
			t.Fatalf("it %d: dense factor: %v", it, err)
		}
		checkAgree := func(stage string) {
			wl, wd := make([]float64, m), make([]float64, m)
			for j := 0; j < p.n; j++ {
				lu.ftranCol(j, nil, wl)
				db.ftranCol(j, nil, wd)
				if d := maxDiff(wl, wd); d > 1e-7 {
					t.Fatalf("it %d %s: ftranCol(%d) diverges by %g", it, stage, j, d)
				}
			}
			for i := 0; i < m; i++ {
				lu.btranRow(i, wl)
				db.btranRow(i, wd)
				if d := maxDiff(wl, wd); d > 1e-7 {
					t.Fatalf("it %d %s: btranRow(%d) diverges by %g", it, stage, i, d)
				}
			}
			vl, vd := make([]float64, m), make([]float64, m)
			for i := range vl {
				vl[i] = r.Float64()*4 - 2
				vd[i] = vl[i]
			}
			lu.btranVec(vl, wl)
			db.btranVec(vd, wd)
			if d := maxDiff(wl, wd); d > 1e-7 {
				t.Fatalf("it %d %s: btranVec diverges by %g", it, stage, d)
			}
		}
		checkAgree("post-factor")
		// Simulated pivot chain: bring nonbasic columns in one at a time.
		w := make([]float64, m)
		pivots := 0
		for j := 0; j < p.n && pivots < 8; j++ {
			inB := false
			for _, bj := range basis {
				if bj == j {
					inB = true
					break
				}
			}
			if inB {
				continue
			}
			lu.ftranCol(j, nil, w)
			slot := -1
			for i := 0; i < m; i++ {
				if math.Abs(w[i]) > 0.1 && (slot < 0 || math.Abs(w[i]) > math.Abs(w[slot])) {
					slot = i
				}
			}
			if slot < 0 {
				continue
			}
			if !lu.update(slot, w) {
				continue
			}
			if !db.update(slot, w) {
				t.Fatalf("it %d: dense refused a pivot the LU engine took", it)
			}
			basis[slot] = j
			pivots++
			checkAgree("post-update")
		}
		if pivots > 0 && stLU.EtaUpdates == 0 {
			t.Fatalf("it %d: %d pivots but no eta updates counted", it, pivots)
		}
	}
	if bases < 20 {
		t.Fatalf("only %d usable bases generated; torture coverage too thin", bases)
	}
}

// TestLUSingularBasisRejected gives both engines a basis with two linearly
// dependent columns; both must report errSingularBasis and neither may be
// left claiming a usable representation.
func TestLUSingularBasisRejected(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, 10, 1)
	y := m.AddVar("y", Continuous, 0, 10, 1)
	m.AddConstraint("r0", []Term{{x, 1}, {y, 1}}, LE, 5)
	m.AddConstraint("r1", []Term{{x, 2}, {y, 2}}, LE, 9)
	p := newLP(m)
	var st LPStats
	basis := []int{0, 1} // columns x and y: row-proportional, singular
	if err := newLUBasis(p, &st).factor(basis, nil); err != errSingularBasis {
		t.Fatalf("LU factor of singular basis: %v, want errSingularBasis", err)
	}
	if err := newDenseBasis(p, &st).factor(basis, nil); err != errSingularBasis {
		t.Fatalf("dense factor of singular basis: %v, want errSingularBasis", err)
	}
	if st.Factorizations != 0 {
		t.Fatalf("failed factorizations were counted as successes: %+v", st)
	}
}

// TestLUForcedRefactorization tightens the eta and fill budgets to their
// minima so nearly every pivot forces a refactorization mid-solve, and
// checks the solver still reaches the same optimum as the dense engine.
func TestLUForcedRefactorization(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	var refactors int64
	for it := 0; it < 40; it++ {
		model := tortureModel(r, 6+r.Intn(8), 4+r.Intn(6))
		p := newLP(model)
		s := newScratch(p)
		lu := s.eng.(*luBasis)
		lu.etaLimit = 1
		lu.fillLimit = 1
		st1, x1, err := s.solve(p.lb, p.ub, 0, timeZero())
		if err != nil {
			t.Fatalf("it %d: forced-refactor solve: %v", it, err)
		}
		pd := newLP(model)
		pd.dense = true
		sd := newScratch(pd)
		st2, x2, err := sd.solve(pd.lb, pd.ub, 0, timeZero())
		if err != nil {
			t.Fatalf("it %d: dense solve: %v", it, err)
		}
		if st1 != st2 {
			t.Fatalf("it %d: status %v (forced refactor) vs %v (dense)", it, st1, st2)
		}
		if st1 != lpOptimal {
			continue
		}
		o1, o2 := model.ObjectiveValue(x1[:len(model.Vars)]), model.ObjectiveValue(x2[:len(model.Vars)])
		if math.Abs(o1-o2) > 1e-6*math.Max(1, math.Abs(o2)) {
			t.Fatalf("it %d: objective %.9f (forced refactor) != %.9f (dense)", it, o1, o2)
		}
		// An instance whose pivots were all bound flips legitimately never
		// refactorizes, but once two eta updates happened the budget of one
		// must have forced a factorization in between.
		if s.stats.EtaUpdates >= 2 && s.stats.Factorizations == 0 {
			t.Fatalf("it %d: %d eta updates under a budget of 1 without refactorizing: %+v",
				it, s.stats.EtaUpdates, s.stats)
		}
		refactors += s.stats.Factorizations
	}
	if refactors == 0 {
		t.Fatal("no instance forced a refactorization; torture coverage too thin")
	}
}

// TestLUEtaChainGrowth drives enough pivots through one engine to cross the
// eta budget and checks needsRefactor trips exactly at the limit.
func TestLUEtaChainGrowth(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for it := 0; it < 20; it++ {
		model := tortureModel(r, 12, 8)
		p := newLP(model)
		s := solvedBasis(p)
		if s == nil {
			continue
		}
		var st LPStats
		lu := newLUBasis(p, &st)
		lu.etaLimit = 3
		basis := append([]int(nil), s.basis...)
		if err := lu.factor(basis, nil); err != nil {
			continue
		}
		w := make([]float64, p.m)
		taken := 0
		for j := 0; j < p.n && taken < 3; j++ {
			inB := false
			for _, bj := range basis {
				if bj == j {
					inB = true
					break
				}
			}
			if inB {
				continue
			}
			lu.ftranCol(j, nil, w)
			slot := -1
			for i := 0; i < p.m; i++ {
				if math.Abs(w[i]) > 0.1 {
					slot = i
					break
				}
			}
			if slot < 0 || !lu.update(slot, w) {
				continue
			}
			basis[slot] = j
			taken++
			if taken < 3 && lu.needsRefactor() {
				t.Fatalf("it %d: needsRefactor tripped after %d/3 etas", it, taken)
			}
		}
		if taken == 3 && !lu.needsRefactor() {
			t.Fatalf("it %d: eta budget of 3 spent but needsRefactor is false", it)
		}
		if taken == 3 {
			// Refactorizing must clear the chain and the trigger.
			if err := lu.factor(basis, nil); err != nil {
				t.Fatalf("it %d: refactor after chain growth: %v", it, err)
			}
			if lu.needsRefactor() {
				t.Fatalf("it %d: needsRefactor still set after refactorization", it)
			}
			return
		}
	}
	t.Skip("no instance sustained 3 eta updates; generator too conservative")
}

// TestLUUnstableFactorFallsBackDense forces the growth limit to an absurdly
// small value so the next refactorization rejects the factor as unstable,
// and checks the scratch permanently swaps to the dense engine, counts the
// fallback, and keeps solving correctly.
func TestLUUnstableFactorFallsBackDense(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	swapped := 0
	for it := 0; it < 30; it++ {
		model := tortureModel(r, 6+r.Intn(6), 4+r.Intn(5))
		p := newLP(model)
		s := solvedBasis(p)
		if s == nil {
			continue
		}
		lu, ok := s.eng.(*luBasis)
		if !ok {
			t.Fatalf("it %d: default engine is %T, want *luBasis", it, s.eng)
		}
		lu.growthLimit = 1e-300 // every factor now exceeds the growth budget
		if err := s.refactorize(); err != nil {
			t.Fatalf("it %d: refactorize with fallback: %v", it, err)
		}
		if _, ok := s.eng.(*denseBasis); !ok {
			t.Fatalf("it %d: engine after unstable factor is %T, want *denseBasis", it, s.eng)
		}
		if s.stats.DenseFallbacks != 1 {
			t.Fatalf("it %d: DenseFallbacks = %d, want 1", it, s.stats.DenseFallbacks)
		}
		swapped++
		// The swapped scratch must still solve exactly.
		st, x, err := s.solve(p.lb, p.ub, 0, timeZero())
		if err != nil || st != lpOptimal {
			t.Fatalf("it %d: post-fallback solve: status %v err %v", it, st, err)
		}
		pd := newLP(model)
		pd.dense = true
		sd := newScratch(pd)
		_, xd, err := sd.solve(pd.lb, pd.ub, 0, timeZero())
		if err != nil {
			t.Fatalf("it %d: reference dense solve: %v", it, err)
		}
		o1, o2 := model.ObjectiveValue(x[:len(model.Vars)]), model.ObjectiveValue(xd[:len(model.Vars)])
		if math.Abs(o1-o2) > 1e-6*math.Max(1, math.Abs(o2)) {
			t.Fatalf("it %d: post-fallback objective %.9f != dense %.9f", it, o1, o2)
		}
	}
	if swapped < 10 {
		t.Fatalf("only %d fallback swaps exercised; coverage too thin", swapped)
	}
}

// TestLUSingularWarmBasisFallsBackCold restores a structurally valid snapshot
// whose basis matrix is singular (two duplicate columns of the model, not of
// the snapshot): restore accepts it, refactorization must fail, and the warm
// path must fall back cold and still return the optimum.
func TestLUSingularWarmBasisFallsBackCold(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("x", Continuous, 0, 4, 1)
	y := m.AddVar("y", Continuous, 0, 4, 1) // same column as x in every row
	m.AddConstraint("r0", []Term{{x, 1}, {y, 1}}, LE, 6)
	m.AddConstraint("r1", []Term{{x, 3}, {y, 3}}, LE, 12)
	p := newLP(m)
	s := newScratch(p)
	warm := &basisState{
		basis:  []int32{0, 1}, // x and y basic: structurally valid, singular
		status: []byte{inBasis, inBasis, atLower, atLower},
	}
	st, xv, err := s.solveFrom(warm, p.lb, p.ub, 0, timeZero())
	if err != nil {
		t.Fatalf("solveFrom: %v", err)
	}
	if st != lpOptimal {
		t.Fatalf("status %v, want optimal via cold fallback", st)
	}
	if s.stats.WarmFallbacks != 1 || s.stats.WarmHits != 0 {
		t.Fatalf("warm accounting %+v, want exactly one fallback and no hits", s.stats)
	}
	if obj := m.ObjectiveValue(xv[:2]); math.Abs(obj-4) > 1e-6 {
		t.Fatalf("objective %.9f, want 4 (x+y capped by x+y<=6, 3x+3y<=12 -> 4)", obj)
	}
}

// timeZero returns the zero deadline (helper keeps call sites terse).
func timeZero() (t0 time.Time) { return }
