package milp

import "math"

// Pseudocost branching.
//
// Most-fractional branching picks the variable whose LP value is closest to
// 0.5 — a static rule that knows nothing about which variables actually move
// the objective. Pseudocosts learn that online: every solved child records
// how much the LP objective degraded per unit of fractionality pushed away,
// keyed by (variable, direction). Branching then prefers variables whose
// history predicts large degradation on BOTH children — the "hard stuff
// first" ordering that shrinks trees, because a branch that hurts both ways
// tightens both subtrees' bounds at once.
//
// The table starts empty (reliability: with no observations at all the
// selector is exactly the historical most-fractional rule, and unobserved
// variables fall back to the table-wide average), updates are applied where
// the drivers already hold the shared-state lock, and Options.DisablePseudocost
// pins the historical rule outright. Branching order never affects which
// solutions are feasible or optimal — only how fast the search proves them —
// so the switch is a policy-invariant kill switch like DenseBasis and
// DisableCuts.

// BranchStats reports how branch variables were chosen during one Solve.
type BranchStats struct {
	// Pseudocost counts branchings decided by pseudocost scores.
	Pseudocost int64
	// Fractional counts branchings by the most-fractional fallback (always
	// all of them under Options.DisablePseudocost).
	Fractional int64
}

func (a *BranchStats) add(b *BranchStats) {
	a.Pseudocost += b.Pseudocost
	a.Fractional += b.Fractional
}

// pcTable accumulates per-variable, per-direction pseudocosts: the mean LP
// objective degradation per unit of fractionality, learned from solved
// children. Access is guarded by the owning driver (serial loop, batch
// apply phase, or the async driver lock).
type pcTable struct {
	upSum, dnSum []float64
	upCnt, dnCnt []int32
	observations int64
}

func newPCTable(n int) *pcTable {
	return &pcTable{
		upSum: make([]float64, n),
		dnSum: make([]float64, n),
		upCnt: make([]int32, n),
		dnCnt: make([]int32, n),
	}
}

// fracVar is one fractional integer column of a node relaxation, captured so
// branch selection can run later (and under the driver lock) without the
// relaxation vector.
type fracVar struct {
	col int
	val float64
}

// gatherFractional lists the fractional integer columns of x into buf.
func gatherFractional(m *Model, x []float64, buf []fracVar) []fracVar {
	out := buf[:0]
	for i, v := range m.Vars {
		if v.Type == Continuous {
			continue
		}
		if math.Abs(x[i]-math.Round(x[i])) > intTol {
			out = append(out, fracVar{col: i, val: x[i]})
		}
	}
	return out
}

// noteBranchOutcome records a solved child's objective against the branching
// decision that created it. Infeasible/pruned children record nothing — their
// degradation is unbounded and would poison the mean.
func (s *search) noteBranchOutcome(node *bbNode, childObj float64) {
	if node.pcol < 0 || s.pc == nil {
		return
	}
	degrade := childObj - node.pobj
	if s.maximize {
		degrade = node.pobj - childObj
	}
	if degrade < 0 {
		degrade = 0 // drift: a child cannot beat its parent relaxation
	}
	per := degrade / node.pfrac
	if node.pup {
		s.pc.upSum[node.pcol] += per
		s.pc.upCnt[node.pcol]++
	} else {
		s.pc.dnSum[node.pcol] += per
		s.pc.dnCnt[node.pcol]++
	}
	s.pc.observations++
}

// selectBranch picks the branching column among the fractional candidates:
// pseudocost product score when the table has history, most-fractional
// otherwise (and always under Options.DisablePseudocost). fracs is non-empty.
func (s *search) selectBranch(fracs []fracVar) (int, float64) {
	if !s.opts.DisablePseudocost && s.pc != nil && s.pc.observations > 0 {
		// Table-wide mean degradations back unobserved directions, so a
		// variable with one strong observed side still outranks noise.
		var upAvg, dnAvg float64
		var upN, dnN int64
		for i := range s.pc.upCnt {
			upN += int64(s.pc.upCnt[i])
			dnN += int64(s.pc.dnCnt[i])
			upAvg += s.pc.upSum[i]
			dnAvg += s.pc.dnSum[i]
		}
		if upN > 0 {
			upAvg /= float64(upN)
		}
		if dnN > 0 {
			dnAvg /= float64(dnN)
		}
		const eps = 1e-6
		best, bestScore := -1, math.Inf(-1)
		var bestVal float64
		for _, fc := range fracs {
			f := fc.val - math.Floor(fc.val)
			up := upAvg
			if s.pc.upCnt[fc.col] > 0 {
				up = s.pc.upSum[fc.col] / float64(s.pc.upCnt[fc.col])
			}
			dn := dnAvg
			if s.pc.dnCnt[fc.col] > 0 {
				dn = s.pc.dnSum[fc.col] / float64(s.pc.dnCnt[fc.col])
			}
			score := math.Max(f*dn, eps) * math.Max((1-f)*up, eps)
			if score > bestScore {
				best, bestScore, bestVal = fc.col, score, fc.val
			}
		}
		s.branch.Pseudocost++
		return best, bestVal
	}
	// Historical rule: the integer variable farthest from integrality,
	// lowest index on ties (fracs is in ascending column order).
	best, bestDist := fracs[0].col, -1.0
	bestVal := fracs[0].val
	for _, fc := range fracs {
		f := fc.val - math.Floor(fc.val)
		if d := math.Min(f, 1-f); d > bestDist {
			best, bestDist, bestVal = fc.col, d, fc.val
		}
	}
	s.branch.Fractional++
	return best, bestVal
}

// pushChildren branches the node on column bv (relaxation value v, LP
// objective obj) and pushes both children, stamping each with the branching
// record noteBranchOutcome will consume when the child solves.
func (s *search) pushChildren(node *bbNode, bv int, v, obj float64, snap *basisState) {
	f := v - math.Floor(v)
	down := append(append([]boundOverride(nil), node.overrides...),
		boundOverride{col: bv, isUB: true, value: math.Floor(v + intTol)})
	up := append(append([]boundOverride(nil), node.overrides...),
		boundOverride{col: bv, isUB: false, value: math.Ceil(v - intTol)})
	s.pushNode(&bbNode{
		bound: obj, depth: node.depth + 1, overrides: down, warm: snap,
		pcol: bv, pup: false, pfrac: math.Max(f, intTol), pobj: obj,
	})
	s.pushNode(&bbNode{
		bound: obj, depth: node.depth + 1, overrides: up, warm: snap,
		pcol: bv, pup: true, pfrac: math.Max(1-f, intTol), pobj: obj,
	})
}
