package milp

import (
	"fmt"
	"io"
	"strings"
)

// WriteLP emits the model in the CPLEX LP file format, so models generated
// by the STRL compiler can be fed to external solvers (CPLEX, Gurobi, CBC,
// HiGHS) and cross-checked against this package's results — useful given
// that this solver stands in for the paper's CPLEX backend.
func (m *Model) WriteLP(w io.Writer) error {
	bw := &errWriter{w: w}
	if m.Sense == Maximize {
		bw.printf("Maximize\n obj:")
	} else {
		bw.printf("Minimize\n obj:")
	}
	wrote := false
	for i, v := range m.Vars {
		if v.Obj == 0 {
			continue
		}
		bw.printf(" %s %s", lpCoef(v.Obj, !wrote), m.lpName(VarID(i)))
		wrote = true
	}
	if !wrote {
		bw.printf(" 0 %s", m.lpName(0))
	}
	bw.printf("\nSubject To\n")
	for i, c := range m.Cons {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("c%d", i)
		}
		bw.printf(" %s:", sanitizeLP(name))
		first := true
		for _, t := range c.Terms {
			if t.Coef == 0 {
				continue
			}
			bw.printf(" %s %s", lpCoef(t.Coef, first), m.lpName(t.Var))
			first = false
		}
		if first {
			bw.printf(" 0 %s", m.lpName(0))
		}
		op := "<="
		switch c.Op {
		case GE:
			op = ">="
		case EQ:
			op = "="
		}
		bw.printf(" %s %g\n", op, c.RHS)
	}
	bw.printf("Bounds\n")
	for i, v := range m.Vars {
		name := m.lpName(VarID(i))
		switch {
		case v.Lb == v.Ub:
			bw.printf(" %s = %g\n", name, v.Lb)
		case isNegInf(v.Lb) && isPosInf(v.Ub):
			bw.printf(" %s free\n", name)
		case isNegInf(v.Lb):
			bw.printf(" -inf <= %s <= %g\n", name, v.Ub)
		case isPosInf(v.Ub):
			bw.printf(" %s >= %g\n", name, v.Lb)
		default:
			bw.printf(" %g <= %s <= %g\n", v.Lb, name, v.Ub)
		}
	}
	var bins, gens []string
	for i, v := range m.Vars {
		switch v.Type {
		case Binary:
			bins = append(bins, m.lpName(VarID(i)))
		case Integer:
			gens = append(gens, m.lpName(VarID(i)))
		}
	}
	if len(bins) > 0 {
		bw.printf("Binary\n %s\n", strings.Join(bins, " "))
	}
	if len(gens) > 0 {
		bw.printf("General\n %s\n", strings.Join(gens, " "))
	}
	bw.printf("End\n")
	return bw.err
}

// lpName returns a format-safe unique variable name.
func (m *Model) lpName(v VarID) string {
	n := m.Vars[v].Name
	if n == "" {
		return fmt.Sprintf("x%d", int(v))
	}
	return sanitizeLP(n)
}

// sanitizeLP strips characters the LP format reserves.
func sanitizeLP(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// lpCoef renders a signed coefficient ("+ 2", "- 1") with the sign folded
// into the leading position when first.
func lpCoef(c float64, first bool) string {
	sign := "+"
	if c < 0 {
		sign = "-"
		c = -c
	}
	if first && sign == "+" {
		return fmt.Sprintf("%g", c)
	}
	return fmt.Sprintf("%s %g", sign, c)
}

func isPosInf(v float64) bool { return v > 1e300 }
func isNegInf(v float64) bool { return v < -1e300 }

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
