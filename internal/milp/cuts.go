package milp

import (
	"math"
	"sort"
)

// Root cutting planes.
//
// The STRL compiler's placement models carry heavy set-packing structure
// (choose-≤-1 indicator rows, capacity knapsacks over binary placement
// indicators), so two classic families close most of the root gap cheaply:
//
//   - cover cuts: for a knapsack row Σ a_j·x_j ≤ b over binaries with a_j > 0,
//     any subset C with Σ_{C} a_j > b admits Σ_{C} x_j ≤ |C|−1;
//   - clique cuts: merging the pairwise conflicts implied by the model's
//     set-packing rows (the same literal encoding presolve's clique
//     domination uses) can yield a clique spanning several rows, giving
//     Σ pos x_j − Σ neg x_j ≤ 1 − |neg| — strictly stronger than any one row.
//
// Both families are valid for every integer-feasible point, never merely for
// the optimum, so adding them cannot change the MILP's optimal objective or
// cut off any feasible schedule — only tighten the LP relaxation the
// branch-and-bound bounds come from. Separation runs only at the root
// (Options.DisableCuts kills it), for a bounded number of rounds, on a copy
// of the model; node re-solves then inherit the tightened relaxation for
// free through the shared LP.

// CutStats reports root cutting-plane activity for one Solve call.
type CutStats struct {
	// Rounds is the number of separation rounds that added at least one cut.
	Rounds int
	// Cover and Clique count the cuts added by family.
	Cover  int
	Clique int
}

func (a *CutStats) add(b *CutStats) {
	a.Rounds += b.Rounds
	a.Cover += b.Cover
	a.Clique += b.Clique
}

const (
	// maxCutRounds bounds root separation rounds; each re-solves the root LP.
	maxCutRounds = 3
	// maxCutsPerRound bounds cuts added per round, most violated first.
	maxCutsPerRound = 64
	// cutViolationTol is the minimum LP violation worth cutting; anything
	// smaller is noise against feasTol and will not move the relaxation.
	cutViolationTol = 1e-4
	// maxCutRows caps the rows scanned per family, like presolve's
	// maxCliqueRows; compiled models stay far below it.
	maxCutRows = 4096
)

// cutCandidate is one violated inequality found by a separation pass.
type cutCandidate struct {
	con       Constraint
	violation float64
	clique    bool
	key       string // canonical literal signature for in-round dedup
}

// isBinaryVar reports whether column v is a 0/1 integer column in m.
func isBinaryVar(m *Model, v int) bool {
	vr := &m.Vars[v]
	return vr.Type != Continuous && vr.Lb == 0 && vr.Ub == 1
}

// packingLits extracts the literal list of a set-packing row
// Σ pos − Σ neg ≤ 1 − |neg| over binaries, the same shape presolve's
// mergeCliques recognizes: literal 2v is "x_v = 1", literal 2v+1 is the
// complement "x_v = 0". Returns nil when the row is not a packing row.
func packingLits(m *Model, con *Constraint, buf []int) []int {
	if con.Op != LE || len(con.Terms) < 2 {
		return nil
	}
	neg := 0
	lits := buf[:0]
	for _, t := range con.Terms {
		if !isBinaryVar(m, int(t.Var)) {
			return nil
		}
		switch t.Coef {
		case 1:
			lits = append(lits, int(t.Var)*2)
		case -1:
			neg++
			lits = append(lits, int(t.Var)*2+1)
		default:
			return nil
		}
	}
	if math.Abs(con.RHS-(1-float64(neg))) > 1e-9 {
		return nil
	}
	return lits
}

// litValue is the LP value of a literal: x_v for 2v, 1−x_v for 2v+1.
func litValue(x []float64, lit int) float64 {
	if lit&1 == 0 {
		return x[lit/2]
	}
	return 1 - x[lit/2]
}

// cliqueConstraint converts a literal clique into its packing inequality.
func cliqueConstraint(lits []int) Constraint {
	con := Constraint{Name: "cut:clique", Op: LE, RHS: 1}
	for _, l := range lits {
		if l&1 == 0 {
			con.Terms = append(con.Terms, Term{Var: VarID(l / 2), Coef: 1})
		} else {
			con.Terms = append(con.Terms, Term{Var: VarID(l / 2), Coef: -1})
			con.RHS--
		}
	}
	return con
}

// litKey canonicalizes a sorted literal list for duplicate suppression.
func litKey(lits []int) string {
	b := make([]byte, 0, len(lits)*4)
	for _, l := range lits {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// separateCliqueCuts merges the conflict edges of the model's set-packing
// rows and greedily grows cliques around the most fractional literals. A
// clique contained in a single existing row separates nothing (the LP already
// satisfies that row), so only cliques whose literal set extends every
// originating row can be violated — exactly the cross-row strengthening
// presolve's domination pass cannot do, because no single stronger row exists
// in the model.
func separateCliqueCuts(m *Model, x []float64, out []cutCandidate) []cutCandidate {
	// Conflict adjacency over literals, built from pairwise conflicts of each
	// packing row. Literal space is 2·|vars|; only literals that appear in
	// some packing row get a map entry.
	adj := make(map[int]map[int]struct{})
	addEdge := func(a, b int) {
		ea := adj[a]
		if ea == nil {
			ea = make(map[int]struct{})
			adj[a] = ea
		}
		ea[b] = struct{}{}
	}
	var litBuf []int
	rows := 0
	for ci := range m.Cons {
		lits := packingLits(m, &m.Cons[ci], litBuf)
		if lits == nil {
			continue
		}
		litBuf = lits[:0]
		for i := 0; i < len(lits); i++ {
			for j := i + 1; j < len(lits); j++ {
				addEdge(lits[i], lits[j])
				addEdge(lits[j], lits[i])
			}
		}
		if rows++; rows >= maxCutRows {
			break
		}
	}
	if len(adj) == 0 {
		return out
	}
	// Seed order: literals by LP value descending — a violated clique needs
	// literal values summing past 1, so high-value literals lead.
	seeds := make([]int, 0, len(adj))
	for l := range adj {
		if litValue(x, l) > cutViolationTol {
			seeds = append(seeds, l)
		}
	}
	sort.Slice(seeds, func(i, j int) bool {
		vi, vj := litValue(x, seeds[i]), litValue(x, seeds[j])
		if vi != vj {
			return vi > vj
		}
		return seeds[i] < seeds[j]
	})
	seen := make(map[string]struct{})
	for _, seed := range seeds {
		clique := []int{seed}
		total := litValue(x, seed)
		// Greedy growth over the seed's neighbors, best LP value first.
		nbrs := make([]int, 0, len(adj[seed]))
		for n := range adj[seed] {
			nbrs = append(nbrs, n)
		}
		sort.Slice(nbrs, func(i, j int) bool {
			vi, vj := litValue(x, nbrs[i]), litValue(x, nbrs[j])
			if vi != vj {
				return vi > vj
			}
			return nbrs[i] < nbrs[j]
		})
		for _, n := range nbrs {
			if n/2 == seed/2 {
				continue // a variable never conflicts with itself usefully
			}
			compatible := true
			for _, c := range clique {
				if _, ok := adj[n][c]; !ok {
					compatible = false
					break
				}
			}
			if compatible {
				clique = append(clique, n)
				total += litValue(x, n)
			}
		}
		if len(clique) < 3 || total <= 1+cutViolationTol {
			continue
		}
		sort.Ints(clique)
		key := litKey(clique)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, cutCandidate{
			con:       cliqueConstraint(clique),
			violation: total - 1,
			clique:    true,
			key:       key,
		})
	}
	return out
}

// separateCoverCuts scans knapsack rows (positive coefficients over binaries,
// ≤ with positive slack capacity) for violated cover inequalities, greedily
// building each cover from the row's most fractional items.
func separateCoverCuts(m *Model, x []float64, out []cutCandidate) []cutCandidate {
	type item struct {
		v int
		a float64
	}
	var items []item
	seen := make(map[string]struct{})
	rows := 0
	for ci := range m.Cons {
		con := &m.Cons[ci]
		if con.Op != LE || len(con.Terms) < 3 || con.RHS <= 0 {
			continue
		}
		ok := true
		items = items[:0]
		sum := 0.0
		for _, t := range con.Terms {
			if t.Coef <= 0 || !isBinaryVar(m, int(t.Var)) {
				ok = false
				break
			}
			items = append(items, item{v: int(t.Var), a: t.Coef})
			sum += t.Coef
		}
		if !ok || sum <= con.RHS+1e-9 {
			continue // not a knapsack, or it can never bind
		}
		if rows++; rows >= maxCutRows {
			break
		}
		// Greedy cover: take items by LP value descending until their
		// coefficients exceed the capacity.
		sort.Slice(items, func(i, j int) bool {
			if x[items[i].v] != x[items[j].v] {
				return x[items[i].v] > x[items[j].v]
			}
			return items[i].v < items[j].v
		})
		acc := 0.0
		cover := 0
		for cover < len(items) && acc <= con.RHS+1e-9 {
			acc += items[cover].a
			cover++
		}
		if acc <= con.RHS+1e-9 {
			continue
		}
		// Violation check: Σ_C x* > |C| − 1.
		xsum := 0.0
		for _, it := range items[:cover] {
			xsum += x[it.v]
		}
		violation := xsum - float64(cover-1)
		if violation <= cutViolationTol {
			continue
		}
		lits := make([]int, cover)
		cut := Constraint{Name: "cut:cover", Op: LE, RHS: float64(cover - 1)}
		for i, it := range items[:cover] {
			lits[i] = it.v * 2
			cut.Terms = append(cut.Terms, Term{Var: VarID(it.v), Coef: 1})
		}
		sort.Ints(lits)
		key := litKey(lits)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, cutCandidate{con: cut, violation: violation, key: key})
	}
	return out
}

// separateCuts runs both families at the LP point x and returns the most
// violated candidates, capped at maxCutsPerRound, deduplicated by literal
// signature across families.
func separateCuts(m *Model, x []float64) []cutCandidate {
	cands := separateCoverCuts(m, x, nil)
	cands = separateCliqueCuts(m, x, cands)
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].violation != cands[j].violation {
			return cands[i].violation > cands[j].violation
		}
		return cands[i].key < cands[j].key
	})
	seen := make(map[string]struct{}, len(cands))
	kept := cands[:0]
	for _, c := range cands {
		if _, dup := seen[c.key]; dup {
			continue
		}
		seen[c.key] = struct{}{}
		kept = append(kept, c)
		if len(kept) >= maxCutsPerRound {
			break
		}
	}
	return kept
}

// runCutRounds strengthens the root relaxation with separation rounds: find
// violated cuts at the current root point, append them to a copy of the
// model, rebuild the LP, and re-solve cold. The search's model, LP, and
// scratch are replaced on every successful round — structural variable
// indexing is untouched (cuts only append rows), so incumbents, heuristics,
// and postsolve lifting are unaffected. Any round whose re-solve does not
// reach optimality is discarded and cutting stops; cuts are an optional
// strengthening, never a correctness dependency.
func (s *search) runCutRounds(x []float64, rootObj float64) ([]float64, float64) {
	for round := 0; round < maxCutRounds; round++ {
		cands := separateCuts(s.model, x)
		if len(cands) == 0 {
			return x, rootObj
		}
		cons := make([]Constraint, len(s.model.Cons), len(s.model.Cons)+len(cands))
		copy(cons, s.model.Cons)
		grown := &Model{Sense: s.model.Sense, Vars: s.model.Vars, Cons: cons}
		nCover, nClique := 0, 0
		for _, c := range cands {
			grown.Cons = append(grown.Cons, c.con)
			if c.clique {
				nClique++
			} else {
				nCover++
			}
		}
		p2 := newLP(grown)
		p2.dense = s.p.dense
		sc2 := newScratch(p2)
		st, nx, err := sc2.solve(p2.lb, p2.ub, 0, s.deadline)
		if err != nil || st != lpOptimal {
			// Deadline, iteration cap, or numerical trouble on the grown LP:
			// keep the un-cut root, which is already solved and valid.
			return x, rootObj
		}
		s.lp.add(&s.scratch.stats) // the old scratch retires with this round
		s.model, s.p, s.scratch = grown, p2, sc2
		s.cuts.Rounds++
		s.cuts.Cover += nCover
		s.cuts.Clique += nClique
		x = nx
		rootObj = s.model.ObjectiveValue(x[:len(s.model.Vars)])
		if firstFractional(s.model, x) < 0 {
			return x, rootObj // integral: no further separation needed
		}
	}
	return x, rootObj
}
