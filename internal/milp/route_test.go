package milp

import (
	"math"
	"testing"
)

// TestProductBelow pins the overflow-safe serial-routing comparison (the
// behavioral crossover itself is TestSerialRoutingCrossover in the root
// package): vars×rows products that would wrap a native int must route to
// the parallel driver, never serial.
func TestProductBelow(t *testing.T) {
	cases := []struct {
		a, b, limit int
		want        bool
	}{
		{0, 0, DefaultSerialCutoff, true}, // empty model is trivially small
		{0, math.MaxInt, DefaultSerialCutoff, true},
		{1, DefaultSerialCutoff - 1, DefaultSerialCutoff, true},
		{1, DefaultSerialCutoff, DefaultSerialCutoff, false},
		{90, 91, DefaultSerialCutoff, true},   // 8190 < 8192
		{64, 128, DefaultSerialCutoff, false}, // exactly 8192: not below
		{2896, 2896, DefaultSerialCutoff, false},
		{5, 7, 36, true},
		{5, 7, 35, false},
		// The bug this replaced: raw a*b wraps negative for sharded 10k-node
		// models and mis-routed them serial. Saturating compare must not.
		{3_100_000, 3_100_000, DefaultSerialCutoff, false},
		{math.MaxInt, math.MaxInt, DefaultSerialCutoff, false},
		{math.MaxInt, 2, math.MaxInt, false},
		{math.MaxInt - 1, 1, math.MaxInt, true},
		// limit ≤ 0 disables routing: nothing is "below".
		{1, 1, 0, false},
		{0, 0, -1, false},
	}
	for _, c := range cases {
		if got := productBelow(c.a, c.b, c.limit); got != c.want {
			t.Errorf("productBelow(%d, %d, %d) = %v, want %v", c.a, c.b, c.limit, got, c.want)
		}
	}
}
