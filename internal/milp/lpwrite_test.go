package milp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteLP(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar("I_j0", Binary, 0, 1, 4)
	y := m.AddVar("P j0/g1", Integer, 0, 3, 0) // name needs sanitizing
	z := m.AddVar("", Continuous, math.Inf(-1), Inf, -1)
	w := m.AddVar("fixed", Continuous, 2, 2, 0)
	m.AddConstraint("supply g0", []Term{{x, 2}, {y, 1}}, LE, 3)
	m.AddConstraint("", []Term{{y, -1}, {z, 1}}, GE, 0)
	m.AddConstraint("eq", []Term{{w, 1}}, EQ, 2)

	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Maximize",
		"obj: 4 I_j0 - 1 x2",
		"Subject To",
		"supply_g0: 2 I_j0 + 1 P_j0_g1 <= 3",
		"c1: - 1 P_j0_g1 + 1 x2 >= 0",
		"eq: 1 fixed = 2",
		"Bounds",
		"x2 free",
		"fixed = 2",
		"0 <= P_j0_g1 <= 3",
		"Binary\n I_j0",
		"General\n P_j0_g1",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteLPEmptyObjective(t *testing.T) {
	m := NewModel(Minimize)
	m.AddVar("x", Continuous, 0, 1, 0)
	m.AddConstraint("c", nil, LE, 1)
	var buf bytes.Buffer
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Minimize") || !strings.Contains(buf.String(), "0 x") {
		t.Errorf("degenerate LP malformed:\n%s", buf.String())
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) {
	return 0, bytes.ErrTooLarge
}

func TestWriteLPPropagatesErrors(t *testing.T) {
	m := NewModel(Maximize)
	m.AddVar("x", Binary, 0, 1, 1)
	if err := m.WriteLP(failingWriter{}); err == nil {
		t.Errorf("writer error swallowed")
	}
}
