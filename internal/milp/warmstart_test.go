package milp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randomBoxLP builds a random all-continuous LP with finite bounds: the shape
// of a branch-and-bound node relaxation. Roughly a third of the instances
// come out infeasible, which the warm path must also classify correctly.
func randomBoxLP(r *rand.Rand) *Model {
	m := NewModel(Minimize)
	if r.Intn(2) == 0 {
		m.Sense = Maximize
	}
	nv := 3 + r.Intn(10)
	for j := 0; j < nv; j++ {
		lb := -5 + r.Float64()*5
		ub := lb + r.Float64()*8
		m.AddVar("x", Continuous, lb, ub, math.Round((r.Float64()*10-5)*4)/4)
	}
	nc := 1 + r.Intn(8)
	for i := 0; i < nc; i++ {
		var terms []Term
		for j := 0; j < nv; j++ {
			if r.Intn(3) == 0 {
				terms = append(terms, Term{Var: VarID(j), Coef: math.Round((r.Float64()*6-3)*2) / 2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: VarID(r.Intn(nv)), Coef: 1})
		}
		op := Op(r.Intn(3))
		m.AddConstraint("c", terms, op, math.Round((r.Float64()*20-10)*2)/2)
	}
	return m
}

// tightenLikeBB narrows one variable's box the way branching does and returns
// whether the box is still non-empty.
func tightenLikeBB(r *rand.Rand, lb, ub []float64, nvars int) bool {
	j := r.Intn(nvars)
	mid := lb[j] + (ub[j]-lb[j])*(0.25+0.5*r.Float64())
	if r.Intn(2) == 0 {
		ub[j] = mid
	} else {
		lb[j] = mid
	}
	return lb[j] <= ub[j]
}

// TestWarmStartMatchesColdProperty is the snapshot/restore property test: on
// ≥200 seeded random LPs, re-solving a tightened box from the parent basis
// must classify the node exactly like a cold solve and, when optimal, reach
// the same objective.
func TestWarmStartMatchesColdProperty(t *testing.T) {
	const seeds = 400
	optimal, warmHits := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		model := randomBoxLP(r)
		if err := model.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := newLP(model)
		parent := newScratch(p)
		st, _, err := parent.solve(p.lb, p.ub, 0, time.Time{})
		if err != nil {
			t.Fatalf("seed %d root: %v", seed, err)
		}
		if st != lpOptimal {
			continue // infeasible root: nothing to snapshot
		}
		snap := parent.snapshot()

		lb := append([]float64(nil), p.lb...)
		ub := append([]float64(nil), p.ub...)
		// Chain a few tightenings from the same snapshot plus re-snapshots,
		// like a dive down one branch-and-bound path.
		warm := snap
		warmSc := newScratch(p)
		for step := 0; step < 4; step++ {
			if !tightenLikeBB(r, lb, ub, len(model.Vars)) {
				break
			}
			coldSt, coldX, err := solveLP(p, lb, ub, 0)
			if err != nil {
				t.Fatalf("seed %d step %d cold: %v", seed, step, err)
			}
			warmSt, warmX, err := warmSc.solveFrom(warm, lb, ub, 0, time.Time{})
			if err != nil {
				t.Fatalf("seed %d step %d warm: %v", seed, step, err)
			}
			if warmSt != coldSt {
				t.Fatalf("seed %d step %d: warm status %v != cold %v", seed, step, warmSt, coldSt)
			}
			if coldSt != lpOptimal {
				break
			}
			optimal++
			co := model.ObjectiveValue(coldX[:len(model.Vars)])
			wo := model.ObjectiveValue(warmX[:len(model.Vars)])
			if diff := math.Abs(co - wo); diff > 1e-6*math.Max(1, math.Abs(co)) {
				t.Fatalf("seed %d step %d: warm objective %.9f != cold %.9f", seed, step, wo, co)
			}
			warm = warmSc.snapshot()
		}
		warmHits += warmSc.stats.WarmHits
	}
	if optimal < 200 {
		t.Fatalf("only %d optimal re-solves exercised; want ≥200 (generator drifted?)", optimal)
	}
	if warmHits == 0 {
		t.Fatal("no warm restart ever succeeded; dual path is dead")
	}
	t.Logf("optimal re-solves=%d warm hits=%d", optimal, warmHits)
}

// TestCorruptSnapshotFallsBackCold corrupts snapshots in every structural way
// restore checks for and requires (a) rejection, (b) a clean cold-path result
// identical to a from-scratch solve — never a wrong optimum.
func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	// Scan seeds for an instance whose root solves optimal with a usable
	// snapshot; the corruption cases below all start from it.
	var (
		model  *Model
		p      *lp
		parent *simplexState
		want   float64
	)
	for seed := int64(0); ; seed++ {
		r := rand.New(rand.NewSource(seed))
		model = randomBoxLP(r)
		p = newLP(model)
		parent = newScratch(p)
		st, x, err := parent.solve(p.lb, p.ub, 0, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		// m ≥ 2 so the duplicate-column corruption below is not a no-op.
		if st == lpOptimal && p.m >= 2 && parent.snapshot() != nil {
			want = model.ObjectiveValue(x[:len(model.Vars)])
			break
		}
		if seed > 100 {
			t.Fatal("no optimal random instance in 100 seeds")
		}
	}

	corruptions := map[string]func(*basisState){
		"duplicate-basis-column": func(b *basisState) { b.basis[0] = b.basis[len(b.basis)-1] },
		"out-of-range-column":    func(b *basisState) { b.basis[0] = int32(p.n) },
		"negative-column":        func(b *basisState) { b.basis[0] = -1 },
		"truncated-status":       func(b *basisState) { b.status = b.status[:len(b.status)-1] },
		"truncated-basis":        func(b *basisState) { b.basis = b.basis[:len(b.basis)-1] },
		"stray-inbasis-status": func(b *basisState) {
			for j, st := range b.status {
				if st != inBasis {
					b.status[j] = inBasis
					return
				}
			}
		},
		"nonbasic-marked-out": func(b *basisState) { b.status[b.basis[0]] = atLower },
	}
	for name, corrupt := range corruptions {
		snap := parent.snapshot()
		if snap == nil {
			t.Fatal("snapshot unexpectedly nil")
		}
		corrupt(snap)
		sc := newScratch(p)
		st, x, err := sc.solveFrom(snap, p.lb, p.ub, 0, time.Time{})
		if err != nil || st != lpOptimal {
			t.Fatalf("%s: st=%v err=%v", name, st, err)
		}
		if got := model.ObjectiveValue(x[:len(model.Vars)]); math.Abs(got-want) > 1e-6 {
			t.Errorf("%s: objective %.9f != cold %.9f", name, got, want)
		}
		if sc.stats.WarmFallbacks != 1 || sc.stats.WarmHits != 0 {
			t.Errorf("%s: stats %+v; want exactly one fallback, no hits", name, sc.stats)
		}
	}

	// A stale snapshot — valid shape, but a resting bound has since moved to
	// infinity — must be rejected by restore and still classified exactly
	// like a cold solve under the widened box.
	snap := parent.snapshot()
	ub := append([]float64(nil), p.ub...)
	stale := false
	for j, st := range snap.status {
		if st == atUpper {
			ub[j] = math.Inf(1)
			stale = true
		}
	}
	if stale {
		coldSt, coldX, err := solveLP(p, p.lb, ub, 0)
		if err != nil {
			t.Fatal(err)
		}
		sc := newScratch(p)
		warmSt, warmX, err := sc.solveFrom(snap, p.lb, ub, 0, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if warmSt != coldSt {
			t.Fatalf("stale-bound snapshot: warm status %v != cold %v", warmSt, coldSt)
		}
		if sc.stats.WarmHits != 0 {
			t.Errorf("stale-bound snapshot restored; want fallback (stats %+v)", sc.stats)
		}
		if coldSt == lpOptimal {
			co := model.ObjectiveValue(coldX[:len(model.Vars)])
			wo := model.ObjectiveValue(warmX[:len(model.Vars)])
			if math.Abs(co-wo) > 1e-6*math.Max(1, math.Abs(co)) {
				t.Errorf("stale-bound snapshot: objective %.9f != cold %.9f", wo, co)
			}
		}
	}

	// Nil snapshot is not a fallback, just a cold node (the root, or a parent
	// whose basis could not seed a restart).
	sc2 := newScratch(p)
	if _, _, err := sc2.solveFrom(nil, p.lb, p.ub, 0, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if sc2.stats.WarmFallbacks != 0 || sc2.stats.ColdStarts != 1 {
		t.Errorf("nil snapshot stats %+v; want pure cold start", sc2.stats)
	}
}
