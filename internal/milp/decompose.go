package milp

import (
	"fmt"
	"sync"
)

// Part is one independent sub-model of a decomposed MILP. The sub-models of
// one SolveParts call must reference pairwise-disjoint slices of the original
// variable space; VarMap carries the embedding.
type Part struct {
	// Model is the sub-model to solve.
	Model *Model
	// VarMap maps the sub-model's variable index to the full model's. Nil
	// means identity (the part covers a prefix of the full variable space —
	// in practice, the single-part case where Model is the full model).
	VarMap []int
	// Seed, if non-nil and feasible, seeds the part's incumbent
	// (Options.InitialSolution, in the part's own variable space).
	Seed []float64
	// Heuristic is the part's incumbent heuristic (Options.Heuristic, in the
	// part's own variable space).
	Heuristic func(relaxation []float64) []float64
	// OnSolve, if non-nil, is invoked in the part's solver goroutine just
	// before its solve begins; the returned function is invoked with the
	// part's solution (nil on solver error) when it ends. Callers use it to
	// open and close per-part trace spans with correct timing.
	OnSolve func() func(*Solution)
	// Reuse, if non-nil, is a previously computed solution for this part's
	// model (same variable space, proven under identical inputs — the
	// caller's fingerprint is the witness); SolveParts adopts it verbatim
	// instead of solving. The part still participates in worker apportioning
	// so its siblings are solved with exactly the worker counts a full run
	// would use (deterministic searches depend on them), but it contributes
	// no node/LP/presolve/runtime telemetry to the merge — only its Values,
	// Objective, Bound, and Status.
	Reuse *Solution
}

// SolveParts solves the independent parts of a decomposed model concurrently
// and merges the results as if a single Solve had run on the full model:
//
//   - Values is a full-length vector (fullVars entries) scattered from the
//     part solutions through their VarMaps; variables of parts that produced
//     no solution stay zero.
//   - Objective and Bound are sums over the parts that produced values (a
//     failed part contributes no bound, so Bound is only proven relative to
//     the solved parts).
//   - Nodes, LP telemetry, and Runtime are sums over every part that ran —
//     Runtime is therefore aggregate solver effort, not wall-clock, which is
//     roughly Runtime divided by the parts solved concurrently. Parts adopted
//     from a Reuse solution contribute values but no effort telemetry.
//   - Workers is the largest per-part worker count.
//
// Options apply per part: every part shares the Gap, TimeLimit, and MaxNodes
// budgets (parts run concurrently, so a shared TimeLimit bounds the whole
// decomposed solve's wall-clock), while Workers is apportioned across parts
// largest-first by integer-variable count, every part getting at least one.
//
// Status merging: any infeasible or unbounded part makes the whole solve
// infeasible/unbounded (Values nil — the full model has no solution); else if
// every part proved optimality the merge is optimal; else feasible when at
// least one part returned values, and no-solution when none did.
//
// The returned slice holds each part's own Solution (nil where the part's
// Solve returned an error), for callers that need to know which parts failed.
func SolveParts(parts []Part, fullVars int, opts Options) (*Solution, []*Solution, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("milp: SolveParts requires at least one part")
	}
	for i := range parts {
		p := &parts[i]
		if p.Model == nil {
			return nil, nil, fmt.Errorf("milp: part %d has no model", i)
		}
		if p.VarMap == nil {
			if p.Model.NumVars() > fullVars {
				return nil, nil, fmt.Errorf("milp: part %d has %d vars for a %d-var full model", i, p.Model.NumVars(), fullVars)
			}
			continue
		}
		if len(p.VarMap) != p.Model.NumVars() {
			return nil, nil, fmt.Errorf("milp: part %d VarMap has %d entries for %d vars", i, len(p.VarMap), p.Model.NumVars())
		}
		for _, fv := range p.VarMap {
			if fv < 0 || fv >= fullVars {
				return nil, nil, fmt.Errorf("milp: part %d VarMap entry %d out of range [0,%d)", i, fv, fullVars)
			}
		}
	}

	weights := make([]int, len(parts))
	for i := range parts {
		weights[i] = parts[i].Model.NumIntVars()
	}
	assign := apportionWorkers(opts.effectiveWorkers(), weights)

	sols := make([]*Solution, len(parts))
	var wg sync.WaitGroup
	for i := range parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var done func(*Solution)
			if parts[i].OnSolve != nil {
				done = parts[i].OnSolve()
			}
			if parts[i].Reuse != nil {
				sols[i] = parts[i].Reuse
				if done != nil {
					done(sols[i])
				}
				return
			}
			po := opts
			po.Workers = assign[i]
			po.InitialSolution = parts[i].Seed
			po.Heuristic = parts[i].Heuristic
			sol, err := Solve(parts[i].Model, po)
			if err == nil {
				sols[i] = sol
			}
			if done != nil {
				done(sols[i])
			}
		}(i)
	}
	wg.Wait()
	return mergeParts(parts, sols, fullVars), sols, nil
}

// apportionWorkers splits total workers across parts proportionally to their
// weights, largest-first: every part gets one worker, then the remainder goes
// one at a time to the part with the highest weight-to-assignment ratio
// (D'Hondt), ties to the lower index. Deterministic in its inputs.
func apportionWorkers(total int, weights []int) []int {
	n := len(weights)
	assign := make([]int, n)
	w := make([]int, n)
	for i := range assign {
		assign[i] = 1
		w[i] = weights[i]
		if w[i] < 1 {
			w[i] = 1
		}
	}
	for rem := total - n; rem > 0; rem-- {
		best := 0
		for i := 1; i < n; i++ {
			// w[i]/assign[i] > w[best]/assign[best], cross-multiplied.
			if w[i]*assign[best] > w[best]*assign[i] {
				best = i
			}
		}
		assign[best]++
	}
	return assign
}

// mergeParts folds per-part solutions into one full-model Solution; see
// SolveParts for the merge semantics.
func mergeParts(parts []Part, sols []*Solution, fullVars int) *Solution {
	merged := &Solution{}
	succeeded, optimal, infeasible, unbounded := 0, 0, false, false
	for i, sol := range sols {
		if sol == nil {
			continue
		}
		if parts[i].Reuse == nil {
			// Replayed parts did no search this call; folding their recorded
			// effort back in would double-count it every cycle they survive.
			merged.Nodes += sol.Nodes
			merged.LP.add(&sol.LP)
			merged.Presolve.add(&sol.Presolve)
			merged.Cuts.add(&sol.Cuts)
			merged.Branch.add(&sol.Branch)
			merged.Runtime += sol.Runtime
			if sol.Workers > merged.Workers {
				merged.Workers = sol.Workers
			}
		}
		switch sol.Status {
		case StatusInfeasible:
			infeasible = true
			continue
		case StatusUnbounded:
			unbounded = true
			continue
		}
		if sol.Values == nil {
			continue
		}
		succeeded++
		if sol.Status == StatusOptimal {
			optimal++
		}
		merged.Objective += sol.Objective
		merged.Bound += sol.Bound
		if merged.Values == nil {
			merged.Values = make([]float64, fullVars)
		}
		if parts[i].VarMap == nil {
			copy(merged.Values, sol.Values)
		} else {
			for si, fv := range parts[i].VarMap {
				merged.Values[fv] = sol.Values[si]
			}
		}
	}
	switch {
	case infeasible:
		merged.Status = StatusInfeasible
		merged.Values = nil
	case unbounded:
		merged.Status = StatusUnbounded
		merged.Values = nil
	case succeeded == 0:
		merged.Status = StatusNoSolution
	case optimal == len(parts):
		merged.Status = StatusOptimal
	default:
		merged.Status = StatusFeasible
	}
	return merged
}
