package milp

import (
	"errors"
	"math"
	"time"
)

// lpStatus is the outcome of an LP solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpUnbounded
	lpIterLimit
)

// Numerical tolerances for the simplex method.
const (
	feasTol  = 1e-7 // bound/constraint feasibility
	optTol   = 1e-7 // reduced-cost optimality
	pivotTol = 1e-9 // minimum acceptable pivot magnitude
)

var errSingularBasis = errors.New("milp: singular basis during refactorization")

type colEntry struct {
	row  int
	coef float64
}

// lp is a linear program in computational standard form:
//
//	minimize cᵀx  subject to  A·x = b,  lb ≤ x ≤ ub
//
// where the columns include one slack per original row (a·x + s = rhs, with
// slack bounds encoding ≤ / ≥ / =). Artificial columns are appended during
// phase 1 when the all-slack basis is infeasible.
type lp struct {
	m, n  int          // rows, columns (structurals + slacks)
	cols  [][]colEntry // sparse columns of A
	b     []float64
	c     []float64 // phase-2 objective (minimize)
	lb    []float64
	ub    []float64
	nvars int // structural variable count (prefix of columns)
}

// newLP converts a Model into computational standard form. Branch-and-bound
// passes per-node copies of the bound arrays without rebuilding the matrix.
func newLP(model *Model) *lp {
	m := len(model.Cons)
	nv := len(model.Vars)
	p := &lp{
		m:     m,
		n:     nv + m,
		cols:  make([][]colEntry, nv+m),
		b:     make([]float64, m),
		c:     make([]float64, nv+m),
		lb:    make([]float64, nv+m),
		ub:    make([]float64, nv+m),
		nvars: nv,
	}
	sign := 1.0
	if model.Sense == Maximize {
		sign = -1.0 // minimize the negated objective
	}
	for j, v := range model.Vars {
		p.c[j] = sign * v.Obj
		p.lb[j] = v.Lb
		p.ub[j] = v.Ub
	}
	for i, con := range model.Cons {
		p.b[i] = con.RHS
		for _, t := range con.Terms {
			if t.Coef != 0 {
				p.cols[t.Var] = append(p.cols[t.Var], colEntry{row: i, coef: t.Coef})
			}
		}
		sj := nv + i
		p.cols[sj] = []colEntry{{row: i, coef: 1}}
		switch con.Op {
		case LE:
			p.lb[sj], p.ub[sj] = 0, Inf
		case GE:
			p.lb[sj], p.ub[sj] = math.Inf(-1), 0
		case EQ:
			p.lb[sj], p.ub[sj] = 0, 0
		}
	}
	return p
}

// Nonbasic variable positions.
const (
	atLower byte = iota
	atUpper
	atFree // free variable resting at zero
	inBasis
)

// simplexState carries the working state of one LP solve.
type simplexState struct {
	p        *lp
	nTotal   int // columns including artificials
	artCols  [][]colEntry
	cost     []float64
	basis    []int  // row -> column
	status   []byte // column -> position
	x        []float64
	binv     [][]float64 // dense basis inverse
	y        []float64   // duals scratch
	w        []float64   // pivot column scratch
	ratios   []float64   // ratio-test scratch
	iter     int
	maxIter  int
	bland    bool
	stall    int
	deadline time.Time // zero = no deadline
}

// solveLP solves the LP under the given bound overrides. The returned values
// cover the structural and slack columns; the objective is in the internal
// minimize orientation (callers re-evaluate via the Model).
func solveLP(p *lp, lb, ub []float64, maxIter int) (lpStatus, []float64, error) {
	return solveLPDeadline(p, lb, ub, maxIter, time.Time{})
}

// solveLPDeadline is solveLP with a wall-clock deadline; when exceeded the
// solve aborts with lpIterLimit.
func solveLPDeadline(p *lp, lb, ub []float64, maxIter int, deadline time.Time) (lpStatus, []float64, error) {
	if maxIter <= 0 {
		maxIter = 200*(p.m+1) + 20000
	}
	s := &simplexState{
		p:        p,
		nTotal:   p.n,
		basis:    make([]int, p.m),
		status:   make([]byte, p.n, p.n+p.m),
		x:        make([]float64, p.n, p.n+p.m),
		binv:     identity(p.m),
		y:        make([]float64, p.m),
		w:        make([]float64, p.m),
		ratios:   make([]float64, p.m),
		maxIter:  maxIter,
		deadline: deadline,
	}
	for j := 0; j < p.n; j++ {
		switch {
		case !math.IsInf(lb[j], -1):
			s.x[j], s.status[j] = lb[j], atLower
		case !math.IsInf(ub[j], 1):
			s.x[j], s.status[j] = ub[j], atUpper
		default:
			s.x[j], s.status[j] = 0, atFree
		}
	}
	// Residuals of the rows with all columns at their resting points.
	resid := make([]float64, p.m)
	copy(resid, p.b)
	for j := 0; j < p.nvars; j++ {
		if s.x[j] != 0 {
			for _, e := range p.cols[j] {
				resid[e.row] -= e.coef * s.x[j]
			}
		}
	}
	// Quick start: all-slack basis if feasible (always true for models the
	// STRL compiler emits, where the zero assignment is feasible).
	feasibleStart := true
	for i := 0; i < p.m; i++ {
		sj := p.nvars + i
		if resid[i] < lb[sj]-feasTol || resid[i] > ub[sj]+feasTol {
			feasibleStart = false
			break
		}
	}
	if feasibleStart {
		for i := 0; i < p.m; i++ {
			sj := p.nvars + i
			s.basis[i] = sj
			s.status[sj] = inBasis
			s.x[sj] = resid[i]
		}
		st, err := s.iterate(lb, ub, p.c)
		if err != nil {
			return lpIterLimit, nil, err
		}
		return st, s.x[:p.n], nil
	}

	// Phase 1: one signed artificial per row so each starts basic at |resid|.
	lbFull := append(append(make([]float64, 0, p.n+p.m), lb...), make([]float64, p.m)...)
	ubFull := append(append(make([]float64, 0, p.n+p.m), ub...), make([]float64, p.m)...)
	costP1 := make([]float64, p.n+p.m)
	s.artCols = make([][]colEntry, p.m)
	for i := 0; i < p.m; i++ {
		aj := p.n + i
		coef := 1.0
		if resid[i] < 0 {
			coef = -1.0
		}
		s.artCols[i] = []colEntry{{row: i, coef: coef}}
		lbFull[aj], ubFull[aj] = 0, Inf
		costP1[aj] = 1
		s.basis[i] = aj
		s.binv[i][i] = coef // basis matrix diag(±1) is its own inverse
		s.x = append(s.x, math.Abs(resid[i]))
		s.status = append(s.status, inBasis)
	}
	s.nTotal = p.n + p.m
	st, err := s.iterate(lbFull, ubFull, costP1)
	if err != nil {
		return lpIterLimit, nil, err
	}
	if st == lpIterLimit {
		return lpIterLimit, nil, nil
	}
	p1obj := 0.0
	for j := p.n; j < s.nTotal; j++ {
		p1obj += s.x[j]
	}
	if p1obj > 1e-6 {
		return lpInfeasible, nil, nil
	}
	// Pin artificials to zero and optimize the real objective.
	for j := p.n; j < s.nTotal; j++ {
		ubFull[j] = 0
		if s.x[j] < 0 || s.x[j] > 0 {
			s.x[j] = clampVal(s.x[j], 0, 0)
		}
	}
	costP2 := make([]float64, s.nTotal)
	copy(costP2, p.c)
	s.bland, s.stall = false, 0
	st, err = s.iterate(lbFull, ubFull, costP2)
	if err != nil {
		return lpIterLimit, nil, err
	}
	return st, s.x[:p.n], nil
}

func clampVal(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func identity(m int) [][]float64 {
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
		a[i][i] = 1
	}
	return a
}

// column returns the sparse column j, including artificial columns.
func (s *simplexState) column(j int) []colEntry {
	if j < s.p.n {
		return s.p.cols[j]
	}
	return s.artCols[j-s.p.n]
}

// iterate runs primal simplex iterations to optimality under the given
// bounds and cost vector.
func (s *simplexState) iterate(lb, ub, cost []float64) (lpStatus, error) {
	s.cost = cost
	refactorCountdown := 120
	for {
		if s.iter >= s.maxIter {
			return lpIterLimit, nil
		}
		if s.iter%256 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return lpIterLimit, nil
		}
		s.iter++
		if refactorCountdown--; refactorCountdown <= 0 {
			if err := s.refactorize(); err != nil {
				return lpIterLimit, err
			}
			refactorCountdown = 120
		}
		// Duals: y = cBᵀ·Binv.
		for i := 0; i < s.p.m; i++ {
			s.y[i] = 0
		}
		for r := 0; r < s.p.m; r++ {
			cb := cost[s.basis[r]]
			if cb == 0 {
				continue
			}
			row := s.binv[r]
			for i := 0; i < s.p.m; i++ {
				s.y[i] += cb * row[i]
			}
		}
		// Pricing: Dantzig rule, Bland's rule once stalling is detected.
		enter, dir := -1, 1.0
		best := 0.0
		for j := 0; j < s.nTotal; j++ {
			st := s.status[j]
			if st == inBasis || lb[j] == ub[j] {
				continue
			}
			d := cost[j]
			for _, e := range s.column(j) {
				d -= s.y[e.row] * e.coef
			}
			var score, dj float64
			switch st {
			case atLower:
				if d < -optTol {
					score, dj = -d, 1
				}
			case atUpper:
				if d > optTol {
					score, dj = d, -1
				}
			case atFree:
				if math.Abs(d) > optTol {
					score = math.Abs(d)
					if d > 0 {
						dj = -1
					} else {
						dj = 1
					}
				}
			}
			if score > 0 {
				if s.bland {
					enter, dir = j, dj
					break
				}
				if score > best {
					best, enter, dir = score, j, dj
				}
			}
		}
		if enter < 0 {
			return lpOptimal, nil
		}
		// Pivot column w = Binv·a_enter.
		for i := 0; i < s.p.m; i++ {
			s.w[i] = 0
		}
		for _, e := range s.column(enter) {
			if e.coef == 0 {
				continue
			}
			for i := 0; i < s.p.m; i++ {
				s.w[i] += s.binv[i][e.row] * e.coef
			}
		}
		// Ratio test, pass 1: the smallest blocking step.
		tLim := math.Inf(1)
		if !math.IsInf(lb[enter], -1) && !math.IsInf(ub[enter], 1) {
			tLim = ub[enter] - lb[enter] // bound flip distance
		}
		for i := 0; i < s.p.m; i++ {
			s.ratios[i] = math.Inf(1)
			wi := dir * s.w[i]
			if math.Abs(wi) < pivotTol {
				continue
			}
			bj := s.basis[i]
			var t float64
			if wi > 0 {
				if math.IsInf(lb[bj], -1) {
					continue
				}
				t = (s.x[bj] - lb[bj]) / wi
			} else {
				if math.IsInf(ub[bj], 1) {
					continue
				}
				t = (s.x[bj] - ub[bj]) / wi
			}
			if t < 0 {
				t = 0
			}
			s.ratios[i] = t
			if t < tLim {
				tLim = t
			}
		}
		if math.IsInf(tLim, 1) {
			return lpUnbounded, nil
		}
		// Pass 2: among blocking rows near the limit, prefer the largest
		// pivot magnitude for numerical stability (Bland: lowest index).
		leave := -1
		bestPivot := 0.0
		for i := 0; i < s.p.m; i++ {
			if s.ratios[i] <= tLim+1e-9 && !math.IsInf(s.ratios[i], 1) {
				if s.bland {
					if leave < 0 || s.basis[i] < s.basis[leave] {
						leave = i
					}
				} else if math.Abs(s.w[i]) > bestPivot {
					bestPivot = math.Abs(s.w[i])
					leave = i
				}
			}
		}
		// Apply the step.
		s.x[enter] += dir * tLim
		for i := 0; i < s.p.m; i++ {
			if s.w[i] != 0 {
				s.x[s.basis[i]] -= dir * tLim * s.w[i]
			}
		}
		if leave < 0 {
			// Bound flip.
			if s.status[enter] == atLower {
				s.status[enter] = atUpper
				s.x[enter] = ub[enter]
			} else {
				s.status[enter] = atLower
				s.x[enter] = lb[enter]
			}
			s.noteProgress(tLim, best)
			continue
		}
		out := s.basis[leave]
		// Land the leaving variable exactly on the bound it hit.
		if dir*s.w[leave] > 0 {
			s.x[out] = lb[out]
			s.status[out] = atLower
		} else {
			s.x[out] = ub[out]
			s.status[out] = atUpper
		}
		s.basis[leave] = enter
		s.status[enter] = inBasis
		s.pivotUpdate(leave)
		s.noteProgress(tLim, best)
	}
}

// noteProgress tracks degenerate stalls and arms Bland's anti-cycling rule.
func (s *simplexState) noteProgress(step, reducedCost float64) {
	if step*reducedCost > 1e-12 {
		s.stall = 0
		s.bland = false
		return
	}
	s.stall++
	if s.stall > 3*s.p.m+50 {
		s.bland = true
	}
}

// pivotUpdate applies the product-form basis-inverse update for a pivot in
// row r, where s.w holds Binv·a_enter.
func (s *simplexState) pivotUpdate(r int) {
	piv := s.w[r]
	rowR := s.binv[r]
	inv := 1 / piv
	for k := 0; k < s.p.m; k++ {
		rowR[k] *= inv
	}
	for i := 0; i < s.p.m; i++ {
		if i == r {
			continue
		}
		f := s.w[i]
		if math.Abs(f) < 1e-13 {
			continue
		}
		rowI := s.binv[i]
		for k := 0; k < s.p.m; k++ {
			rowI[k] -= f * rowR[k]
		}
	}
}

// refactorize recomputes the basis inverse from scratch (Gauss-Jordan with
// partial pivoting) and refreshes basic variable values, containing drift
// from repeated product-form updates.
func (s *simplexState) refactorize() error {
	m := s.p.m
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, 2*m)
		a[i][m+i] = 1
	}
	for r, j := range s.basis {
		for _, e := range s.column(j) {
			a[e.row][r] = e.coef
		}
	}
	for col := 0; col < m; col++ {
		p := col
		for i := col + 1; i < m; i++ {
			if math.Abs(a[i][col]) > math.Abs(a[p][col]) {
				p = i
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return errSingularBasis
		}
		a[col], a[p] = a[p], a[col]
		inv := 1 / a[col][col]
		for k := col; k < 2*m; k++ {
			a[col][k] *= inv
		}
		for i := 0; i < m; i++ {
			if i == col || a[i][col] == 0 {
				continue
			}
			f := a[i][col]
			for k := col; k < 2*m; k++ {
				a[i][k] -= f * a[col][k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(s.binv[i], a[i][m:])
	}
	// Refresh basic values: xB = Binv·(b − N·xN).
	resid := make([]float64, m)
	copy(resid, s.p.b)
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == inBasis || s.x[j] == 0 {
			continue
		}
		for _, e := range s.column(j) {
			resid[e.row] -= e.coef * s.x[j]
		}
	}
	for i := 0; i < m; i++ {
		v := 0.0
		for k := 0; k < m; k++ {
			v += s.binv[i][k] * resid[k]
		}
		s.x[s.basis[i]] = v
	}
	return nil
}
