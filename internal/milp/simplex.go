package milp

import (
	"errors"
	"math"
	"time"
)

// lpStatus is the outcome of an LP solve.
type lpStatus int

const (
	lpOptimal lpStatus = iota
	lpInfeasible
	lpUnbounded
	lpIterLimit
	// lpStalled is internal to the warm-start path: the dual phase exceeded
	// its iteration budget and the caller must fall back to a cold solve.
	lpStalled
)

// Numerical tolerances for the simplex method.
const (
	feasTol  = 1e-7 // bound/constraint feasibility
	optTol   = 1e-7 // reduced-cost optimality
	pivotTol = 1e-9 // minimum acceptable pivot magnitude
	// warmTol bounds the reduced-cost violation tolerated when adopting a
	// parent basis for a dual-simplex restart; beyond it the snapshot is
	// treated as stale and the solve falls back to the cold path.
	warmTol = 1e-6
)

var errSingularBasis = errors.New("milp: singular basis during refactorization")

// LPStats aggregates LP-kernel telemetry across every relaxation solved
// during one Solve call: the root, branch-and-bound node re-solves, and
// heuristic dives.
type LPStats struct {
	// Iterations counts simplex pivots, primal and dual phases combined.
	Iterations int64
	// Phase1 counts solves that needed a signed-artificial phase 1.
	Phase1 int
	// WarmHits counts node LPs re-solved dual-feasibly from a parent basis.
	WarmHits int
	// WarmFallbacks counts warm restarts abandoned for the cold path
	// (stale or corrupt snapshot, refactorization failure, dual-infeasible
	// start, or a stalled dual phase).
	WarmFallbacks int
	// ColdStarts counts LPs solved from scratch, including warm fallbacks.
	ColdStarts int
	// Factorizations counts basis refactorizations, sparse LU or dense.
	Factorizations int64
	// EtaUpdates counts product-form eta updates absorbed by the LU engine
	// between refactorizations (always zero under Options.DenseBasis).
	EtaUpdates int64
	// DenseFallbacks counts scratches that abandoned the LU engine for the
	// dense inverse after a numerically unstable factorization.
	DenseFallbacks int
}

func (a *LPStats) add(b *LPStats) {
	a.Iterations += b.Iterations
	a.Phase1 += b.Phase1
	a.WarmHits += b.WarmHits
	a.WarmFallbacks += b.WarmFallbacks
	a.ColdStarts += b.ColdStarts
	a.Factorizations += b.Factorizations
	a.EtaUpdates += b.EtaUpdates
	a.DenseFallbacks += b.DenseFallbacks
}

// lp is a linear program in computational standard form:
//
//	minimize cᵀx  subject to  A·x = b,  lb ≤ x ≤ ub
//
// where the columns include one slack per original row (a·x + s = rhs, with
// slack bounds encoding ≤ / ≥ / =). Artificial columns are appended during
// phase 1 when the all-slack basis is infeasible. The matrix is stored as
// flat compressed sparse columns so pricing, FTRAN, and refactorization walk
// contiguous arrays and skip zeros.
type lp struct {
	m, n     int
	colStart []int32 // column j occupies colRow/colVal[colStart[j]:colStart[j+1]]
	colRow   []int32
	colVal   []float64
	b        []float64
	c        []float64 // phase-2 objective (minimize)
	lb       []float64
	ub       []float64
	nvars    int  // structural variable count (prefix of columns)
	dense    bool // scratches use the dense basis engine (Options.DenseBasis)
}

// newLP converts a Model into computational standard form. Branch-and-bound
// passes per-node copies of the bound arrays without rebuilding the matrix.
func newLP(model *Model) *lp {
	m := len(model.Cons)
	nv := len(model.Vars)
	n := nv + m
	p := &lp{
		m:        m,
		n:        n,
		colStart: make([]int32, n+1),
		b:        make([]float64, m),
		c:        make([]float64, n),
		lb:       make([]float64, n),
		ub:       make([]float64, n),
		nvars:    nv,
	}
	sign := 1.0
	if model.Sense == Maximize {
		sign = -1.0 // minimize the negated objective
	}
	for j, v := range model.Vars {
		p.c[j] = sign * v.Obj
		p.lb[j] = v.Lb
		p.ub[j] = v.Ub
	}
	// Pass 1: per-column entry counts (structurals; slacks are singletons).
	nnz := 0
	for _, con := range model.Cons {
		for _, t := range con.Terms {
			if t.Coef != 0 {
				p.colStart[t.Var+1]++
				nnz++
			}
		}
	}
	for j := 0; j < nv; j++ {
		p.colStart[j+1] += p.colStart[j]
	}
	for i := 0; i < m; i++ {
		p.colStart[nv+i+1] = p.colStart[nv+i] + 1
	}
	p.colRow = make([]int32, nnz+m)
	p.colVal = make([]float64, nnz+m)
	// Pass 2: fill, tracking the next free slot per column.
	next := make([]int32, nv)
	for j := 0; j < nv; j++ {
		next[j] = p.colStart[j]
	}
	for i, con := range model.Cons {
		p.b[i] = con.RHS
		for _, t := range con.Terms {
			if t.Coef != 0 {
				k := next[t.Var]
				next[t.Var]++
				p.colRow[k] = int32(i)
				p.colVal[k] = t.Coef
			}
		}
		sj := nv + i
		k := p.colStart[sj]
		p.colRow[k] = int32(i)
		p.colVal[k] = 1
		switch con.Op {
		case LE:
			p.lb[sj], p.ub[sj] = 0, Inf
		case GE:
			p.lb[sj], p.ub[sj] = math.Inf(-1), 0
		case EQ:
			p.lb[sj], p.ub[sj] = 0, 0
		}
	}
	return p
}

// Nonbasic variable positions.
const (
	atLower byte = iota
	atUpper
	atFree // free variable resting at zero
	inBasis
)

// refactorInterval is the pivot count between periodic refactorizations, the
// drift-control backstop behind the engines' own fill/instability triggers.
const refactorInterval = 120

// simplexState is the reusable working state of the LP kernel: one per
// branch-and-bound worker (plus one for the root), so the buffers — including
// the basis engine's factors — are allocated once per search, not once per
// node. A state carries no result across solves (every solve re-initializes
// from its bounds or snapshot), only buffers and accumulated LPStats, so
// reusing one keeps repeated solves deterministic.
type simplexState struct {
	p       *lp
	eng     basisEngine
	nTotal  int       // columns including phase-1 artificials
	artCoef []float64 // phase-1 artificial column coefs (±1); nil outside phase 1
	cost    []float64
	basis   []int  // row -> column
	status  []byte // column -> position
	x       []float64
	y       []float64 // duals, maintained incrementally across pivots
	w       []float64 // FTRAN scratch
	rho     []float64 // BTRAN pivot-row scratch
	cb      []float64 // basic-cost gather scratch for computeDuals
	ratios  []float64 // ratio-test scratch
	rbuf    []float64 // residual scratch
	cand    []int32   // pricing candidate list (multiple pricing)

	// Devex reference weights: gamma prices nonbasic columns in the primal
	// (score d²/γ), dwt weights row infeasibilities in the dual (score
	// v²/δ). Both reset to the unit framework at phase entry and on every
	// refactorization.
	gamma []float64
	dwt   []float64

	lbFull, ubFull, costFull []float64 // phase-1 bound/cost buffers

	iter     int
	maxIter  int
	bland    bool
	stall    int
	deadline time.Time // zero = no deadline
	stats    LPStats
}

// newScratch allocates a reusable solver state for p. The basis engine is
// sparse LU by default; p.dense (Options.DenseBasis) selects the dense
// inverse.
func newScratch(p *lp) *simplexState {
	s := &simplexState{
		p:      p,
		basis:  make([]int, p.m),
		status: make([]byte, p.n, p.n+p.m),
		x:      make([]float64, p.n, p.n+p.m),
		y:      make([]float64, p.m),
		w:      make([]float64, p.m),
		rho:    make([]float64, p.m),
		cb:     make([]float64, p.m),
		ratios: make([]float64, p.m),
		rbuf:   make([]float64, p.m),
		cand:   make([]int32, 0, p.n),
		gamma:  make([]float64, p.n+p.m),
		dwt:    make([]float64, p.m),
	}
	if p.dense {
		s.eng = newDenseBasis(p, &s.stats)
	} else {
		s.eng = newLUBasis(p, &s.stats)
	}
	return s
}

// begin resets per-solve state (buffers and stats survive).
func (s *simplexState) begin(maxIter int, deadline time.Time) {
	p := s.p
	if maxIter <= 0 {
		maxIter = 200*(p.m+1) + 20000
	}
	s.iter = 0
	s.maxIter = maxIter
	s.deadline = deadline
	s.nTotal = p.n
	s.artCoef = nil
	s.bland, s.stall = false, 0
	s.cand = s.cand[:0] // bounds differ per solve; stale candidates mislead
	s.status = s.status[:p.n]
	s.x = s.x[:p.n]
	s.resetDevex()
}

// resetDevex restores the unit reference framework for both Devex pricers.
func (s *simplexState) resetDevex() {
	for i := range s.gamma {
		s.gamma[i] = 1
	}
	for i := range s.dwt {
		s.dwt[i] = 1
	}
}

// solveLP solves the LP under the given bound overrides on a fresh scratch.
// The returned values cover the structural and slack columns; the objective
// is in the internal minimize orientation (callers re-evaluate via the
// Model). The returned slice aliases the scratch and is invalidated by the
// next solve on it.
func solveLP(p *lp, lb, ub []float64, maxIter int) (lpStatus, []float64, error) {
	return solveLPDeadline(p, lb, ub, maxIter, time.Time{})
}

// solveLPDeadline is solveLP with a wall-clock deadline; when exceeded the
// solve aborts with lpIterLimit.
func solveLPDeadline(p *lp, lb, ub []float64, maxIter int, deadline time.Time) (lpStatus, []float64, error) {
	return newScratch(p).solve(lb, ub, maxIter, deadline)
}

// solve runs a cold primal solve: quick-start from the all-slack basis when
// it is feasible, signed-artificial phase 1 otherwise.
func (s *simplexState) solve(lb, ub []float64, maxIter int, deadline time.Time) (lpStatus, []float64, error) {
	s.begin(maxIter, deadline)
	s.stats.ColdStarts++
	p := s.p
	for j := 0; j < p.n; j++ {
		switch {
		case !math.IsInf(lb[j], -1):
			s.x[j], s.status[j] = lb[j], atLower
		case !math.IsInf(ub[j], 1):
			s.x[j], s.status[j] = ub[j], atUpper
		default:
			s.x[j], s.status[j] = 0, atFree
		}
	}
	// Residuals of the rows with all columns at their resting points.
	resid := s.rbuf
	copy(resid, p.b)
	for j := 0; j < p.nvars; j++ {
		if xj := s.x[j]; xj != 0 {
			for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
				resid[p.colRow[k]] -= p.colVal[k] * xj
			}
		}
	}
	// Quick start: all-slack basis if feasible (always true for models the
	// STRL compiler emits, where the zero assignment is feasible).
	feasibleStart := true
	for i := 0; i < p.m; i++ {
		sj := p.nvars + i
		if resid[i] < lb[sj]-feasTol || resid[i] > ub[sj]+feasTol {
			feasibleStart = false
			break
		}
	}
	if feasibleStart {
		diag := s.w
		for i := 0; i < p.m; i++ {
			diag[i] = 1
		}
		s.eng.reset(diag)
		for i := 0; i < p.m; i++ {
			sj := p.nvars + i
			s.basis[i] = sj
			s.status[sj] = inBasis
			s.x[sj] = resid[i]
		}
		st, err := s.iterate(lb, ub, p.c)
		if err != nil {
			return lpIterLimit, nil, err
		}
		return st, s.x[:p.n], nil
	}

	// Phase 1: one signed artificial per row so each starts basic at |resid|.
	s.stats.Phase1++
	if s.lbFull == nil {
		s.lbFull = make([]float64, p.n+p.m)
		s.ubFull = make([]float64, p.n+p.m)
		s.costFull = make([]float64, p.n+p.m)
	}
	lbFull, ubFull, costP1 := s.lbFull, s.ubFull, s.costFull
	copy(lbFull, lb)
	copy(ubFull, ub)
	for j := range costP1 {
		costP1[j] = 0
	}
	s.artCoef = make([]float64, p.m)
	s.x = s.x[:p.n+p.m]
	s.status = s.status[:p.n+p.m]
	for i := 0; i < p.m; i++ {
		aj := p.n + i
		coef := 1.0
		if resid[i] < 0 {
			coef = -1.0
		}
		s.artCoef[i] = coef
		lbFull[aj], ubFull[aj] = 0, Inf
		costP1[aj] = 1
		s.basis[i] = aj
		s.x[aj] = math.Abs(resid[i])
		s.status[aj] = inBasis
	}
	s.eng.reset(s.artCoef) // basis matrix diag(±1) is its own inverse
	s.nTotal = p.n + p.m
	st, err := s.iterate(lbFull, ubFull, costP1)
	if err != nil {
		return lpIterLimit, nil, err
	}
	if st == lpIterLimit {
		return lpIterLimit, nil, nil
	}
	p1obj := 0.0
	for j := p.n; j < s.nTotal; j++ {
		p1obj += s.x[j]
	}
	if p1obj > 1e-6 {
		return lpInfeasible, nil, nil
	}
	// Pin artificials to zero and optimize the real objective.
	for j := p.n; j < s.nTotal; j++ {
		ubFull[j] = 0
		if s.x[j] < 0 || s.x[j] > 0 {
			s.x[j] = clampVal(s.x[j], 0, 0)
		}
	}
	costP2 := costP1
	copy(costP2, p.c)
	for j := p.n; j < s.nTotal; j++ {
		costP2[j] = 0
	}
	s.bland, s.stall = false, 0
	st, err = s.iterate(lbFull, ubFull, costP2)
	if err != nil {
		return lpIterLimit, nil, err
	}
	return st, s.x[:p.n], nil
}

func clampVal(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// computeDuals recomputes y = cBᵀ·B⁻¹ from scratch with one BTRAN. Pivots
// keep y current with a rank-1 update; this full pass runs at phase entry and
// after every refactorization to contain drift.
func (s *simplexState) computeDuals() {
	cb := s.cb
	for i, bj := range s.basis {
		cb[i] = s.cost[bj]
	}
	s.eng.btranVec(cb, s.y)
}

// ftran computes w = B⁻¹·a_enter into s.w.
func (s *simplexState) ftran(enter int) {
	s.eng.ftranCol(enter, s.artCoef, s.w)
}

// iterate runs primal simplex iterations to optimality under the given
// bounds and cost vector.
func (s *simplexState) iterate(lb, ub, cost []float64) (lpStatus, error) {
	s.cost = cost
	p := s.p
	m := p.m
	s.computeDuals()
	refactorCountdown := refactorInterval
	for {
		if s.iter >= s.maxIter {
			return lpIterLimit, nil
		}
		if s.iter%256 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return lpIterLimit, nil
		}
		s.iter++
		s.stats.Iterations++
		if refactorCountdown--; refactorCountdown <= 0 || s.eng.needsRefactor() {
			if err := s.refactorize(); err != nil {
				return lpIterLimit, err
			}
			s.computeDuals()
			s.resetDevex()
			refactorCountdown = refactorInterval
		}
		// Pricing: Devex over a candidate list (multiple pricing) —
		// attractive columns found by the last full scan are re-priced first,
		// and a full scan runs only when the list runs dry. Optimality is
		// declared exclusively by an empty full scan, so the shortcut cannot
		// terminate early. Each eligible column scores d²/γ with its Devex
		// reference weight γ — an approximate steepest-edge measure that
		// favors pivots making real progress over merely steep reduced
		// costs. Bland's rule and phase 1 always scan in full.
		enter, dir := -1, 1.0
		var enterD float64
		best := 0.0
		y := s.y
		useCand := !s.bland && s.nTotal == p.n
		if useCand && len(s.cand) > 0 {
			keep := s.cand[:0]
			for _, j32 := range s.cand {
				j := int(j32)
				st := s.status[j]
				if st == inBasis || lb[j] == ub[j] {
					continue
				}
				d := cost[j]
				for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
					d -= y[p.colRow[k]] * p.colVal[k]
				}
				var dj float64
				eligible := false
				switch st {
				case atLower:
					if d < -optTol {
						eligible, dj = true, 1
					}
				case atUpper:
					if d > optTol {
						eligible, dj = true, -1
					}
				case atFree:
					if math.Abs(d) > optTol {
						eligible = true
						if d > 0 {
							dj = -1
						} else {
							dj = 1
						}
					}
				}
				if eligible {
					keep = append(keep, j32)
					if score := d * d / s.gamma[j]; score > best {
						best, enter, dir, enterD = score, j, dj, d
					}
				}
			}
			s.cand = keep
		}
		if enter < 0 {
			if useCand {
				s.cand = s.cand[:0]
			}
			for j := 0; j < p.n; j++ {
				st := s.status[j]
				if st == inBasis || lb[j] == ub[j] {
					continue
				}
				d := cost[j]
				for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
					d -= y[p.colRow[k]] * p.colVal[k]
				}
				var dj float64
				eligible := false
				switch st {
				case atLower:
					if d < -optTol {
						eligible, dj = true, 1
					}
				case atUpper:
					if d > optTol {
						eligible, dj = true, -1
					}
				case atFree:
					if math.Abs(d) > optTol {
						eligible = true
						if d > 0 {
							dj = -1
						} else {
							dj = 1
						}
					}
				}
				if eligible {
					if s.bland {
						enter, dir, enterD = j, dj, d
						break
					}
					if useCand {
						s.cand = append(s.cand, int32(j))
					}
					if score := d * d / s.gamma[j]; score > best {
						best, enter, dir, enterD = score, j, dj, d
					}
				}
			}
		}
		// Artificial columns participate only in phase 1; under Bland's rule
		// they are scanned only when no structural column qualified (their
		// indices are higher by construction).
		if s.nTotal > p.n && !(s.bland && enter >= 0) {
			for j := p.n; j < s.nTotal; j++ {
				st := s.status[j]
				if st == inBasis || lb[j] == ub[j] {
					continue
				}
				ai := j - p.n
				d := cost[j] - y[ai]*s.artCoef[ai]
				var dj float64
				eligible := false
				switch st {
				case atLower:
					if d < -optTol {
						eligible, dj = true, 1
					}
				case atUpper:
					if d > optTol {
						eligible, dj = true, -1
					}
				case atFree:
					if math.Abs(d) > optTol {
						eligible = true
						if d > 0 {
							dj = -1
						} else {
							dj = 1
						}
					}
				}
				if eligible {
					if s.bland {
						enter, dir, enterD = j, dj, d
						break
					}
					if score := d * d / s.gamma[j]; score > best {
						best, enter, dir, enterD = score, j, dj, d
					}
				}
			}
		}
		if enter < 0 {
			return lpOptimal, nil
		}
		// Pivot column w = B⁻¹·a_enter.
		s.ftran(enter)
		w := s.w
		// Ratio test, pass 1: the smallest blocking step.
		tLim := math.Inf(1)
		if !math.IsInf(lb[enter], -1) && !math.IsInf(ub[enter], 1) {
			tLim = ub[enter] - lb[enter] // bound flip distance
		}
		for i := 0; i < m; i++ {
			s.ratios[i] = math.Inf(1)
			wi := dir * w[i]
			if math.Abs(wi) < pivotTol {
				continue
			}
			bj := s.basis[i]
			var t float64
			if wi > 0 {
				if math.IsInf(lb[bj], -1) {
					continue
				}
				t = (s.x[bj] - lb[bj]) / wi
			} else {
				if math.IsInf(ub[bj], 1) {
					continue
				}
				t = (s.x[bj] - ub[bj]) / wi
			}
			if t < 0 {
				t = 0
			}
			s.ratios[i] = t
			if t < tLim {
				tLim = t
			}
		}
		if math.IsInf(tLim, 1) {
			return lpUnbounded, nil
		}
		// Pass 2: among blocking rows near the limit, prefer the largest
		// pivot magnitude for numerical stability (Bland: lowest index).
		leave := -1
		bestPivot := 0.0
		for i := 0; i < m; i++ {
			if s.ratios[i] <= tLim+1e-9 && !math.IsInf(s.ratios[i], 1) {
				if s.bland {
					if leave < 0 || s.basis[i] < s.basis[leave] {
						leave = i
					}
				} else if math.Abs(w[i]) > bestPivot {
					bestPivot = math.Abs(w[i])
					leave = i
				}
			}
		}
		// Apply the step.
		s.x[enter] += dir * tLim
		for i := 0; i < m; i++ {
			if w[i] != 0 {
				s.x[s.basis[i]] -= dir * tLim * w[i]
			}
		}
		if leave < 0 {
			// Bound flip: no basis change, duals unchanged.
			if s.status[enter] == atLower {
				s.status[enter] = atUpper
				s.x[enter] = ub[enter]
			} else {
				s.status[enter] = atLower
				s.x[enter] = lb[enter]
			}
			s.noteProgress(tLim, best)
			continue
		}
		out := s.basis[leave]
		// Land the leaving variable exactly on the bound it hit.
		if dir*w[leave] > 0 {
			s.x[out] = lb[out]
			s.status[out] = atLower
		} else {
			s.x[out] = ub[out]
			s.status[out] = atUpper
		}
		s.basis[leave] = enter
		s.status[enter] = inBasis
		pivW := w[leave]
		// rho = e_leaveᵀ·B_old⁻¹ feeds both the rank-1 dual update (row
		// leave of the new inverse is rho/pivot) and the Devex weight
		// updates, so it is taken before the engine absorbs the pivot.
		s.eng.btranRow(leave, s.rho)
		if !s.eng.update(leave, w) {
			// The engine refused the pivot (tiny pivot or spent budget):
			// refactorize from the updated basis instead.
			if err := s.refactorize(); err != nil {
				return lpIterLimit, err
			}
			s.computeDuals()
			s.resetDevex()
			refactorCountdown = refactorInterval
		} else {
			if enterD != 0 {
				f := enterD / pivW
				for k, v := range s.rho {
					if v != 0 {
						y[k] += f * v
					}
				}
			}
			s.devexPrimalUpdate(enter, out, pivW)
		}
		s.noteProgress(tLim, best)
	}
}

// devexPrimalUpdate refreshes the primal Devex reference weights after a
// pivot with entering column q and pivot element pivW, using the pre-pivot
// row rho still in s.rho. Updates are restricted to the candidate list (the
// only columns the pricer will score before the next full scan) plus the
// leaving variable, which re-enters the nonbasic set with the pivot-scaled
// reference weight.
func (s *simplexState) devexPrimalUpdate(enter, out int, pivW float64) {
	p := s.p
	gq := s.gamma[enter]
	r2 := pivW * pivW
	gOut := gq / r2
	if gOut < 1 {
		gOut = 1
	}
	s.gamma[out] = gOut
	if len(s.cand) == 0 {
		return
	}
	rho := s.rho
	scale := gq / r2
	for _, j32 := range s.cand {
		j := int(j32)
		if s.status[j] == inBasis {
			continue
		}
		alpha := 0.0
		for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
			alpha += rho[p.colRow[k]] * p.colVal[k]
		}
		if alpha == 0 {
			continue
		}
		if cand := alpha * alpha * scale; cand > s.gamma[j] {
			s.gamma[j] = cand
		}
	}
}

// noteProgress tracks degenerate stalls and arms Bland's anti-cycling rule.
func (s *simplexState) noteProgress(step, score float64) {
	if step*score > 1e-12 {
		s.stall = 0
		s.bland = false
		return
	}
	s.stall++
	if s.stall > 3*s.p.m+50 {
		s.bland = true
	}
}

// refactorize rebuilds the basis representation from the column data and
// refreshes basic variable values, containing drift from repeated
// product-form updates. If the LU engine rejects the basis as numerically
// unstable (element growth past its budget), the scratch permanently swaps
// in the dense engine — the kill-switch path in reverse — and counts the
// fallback.
func (s *simplexState) refactorize() error {
	if err := s.eng.factor(s.basis, s.artCoef); err != nil {
		if err != errUnstableFactor {
			return err
		}
		s.eng = newDenseBasis(s.p, &s.stats)
		s.stats.DenseFallbacks++
		if err := s.eng.factor(s.basis, s.artCoef); err != nil {
			return err
		}
	}
	// Refresh basic values: xB = B⁻¹·(b − N·xN).
	p := s.p
	resid := s.rbuf
	copy(resid, p.b)
	for j := 0; j < s.nTotal; j++ {
		if s.status[j] == inBasis {
			continue
		}
		xj := s.x[j]
		if xj == 0 {
			continue
		}
		if j < p.n {
			for k := p.colStart[j]; k < p.colStart[j+1]; k++ {
				resid[p.colRow[k]] -= p.colVal[k] * xj
			}
		} else {
			resid[j-p.n] -= s.artCoef[j-p.n] * xj
		}
	}
	s.eng.ftranVec(resid, s.w)
	for i, bj := range s.basis {
		s.x[bj] = s.w[i]
	}
	return nil
}
