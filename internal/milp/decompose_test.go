package milp

import (
	"math"
	"reflect"
	"sync"
	"testing"
)

// knapsack builds a tiny 0/1 model: maximize Σ value_i·x_i subject to
// Σ weight_i·x_i ≤ cap.
func knapsack(values, weights []float64, cap float64) *Model {
	m := NewModel(Maximize)
	terms := make([]Term, len(values))
	for i, v := range values {
		id := m.AddBinary("", v)
		terms[i] = Term{Var: id, Coef: weights[i]}
	}
	m.AddConstraint("cap", terms, LE, cap)
	return m
}

func seqVarMap(lo, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

// TestDecomposeSolvePartsMatchesIndependentSolves is the stats-merging
// acceptance test: the merged Solution's Values, Objective, Bound, Nodes, LP
// telemetry, and Runtime must equal the per-part solutions combined.
func TestDecomposeSolvePartsMatchesIndependentSolves(t *testing.T) {
	models := []*Model{
		knapsack([]float64{5, 4, 3}, []float64{2, 3, 1}, 4),
		knapsack([]float64{7, 1}, []float64{1, 1}, 1),
		knapsack([]float64{2, 2, 2, 2}, []float64{1, 1, 1, 1}, 2),
	}
	fullVars := 0
	parts := make([]Part, len(models))
	for i, m := range models {
		parts[i] = Part{Model: m, VarMap: seqVarMap(fullVars, m.NumVars())}
		fullVars += m.NumVars()
	}
	merged, sols, err := SolveParts(parts, fullVars, Options{Workers: 2, Deterministic: true})
	if err != nil {
		t.Fatalf("SolveParts: %v", err)
	}
	if merged.Status != StatusOptimal {
		t.Fatalf("merged status = %v, want optimal", merged.Status)
	}
	if len(merged.Values) != fullVars {
		t.Fatalf("merged values len %d, want %d", len(merged.Values), fullVars)
	}
	var obj, bound float64
	var nodes int
	var iters int64
	var warm, cold int
	for i, sol := range sols {
		if sol == nil {
			t.Fatalf("part %d solution is nil", i)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("part %d status = %v", i, sol.Status)
		}
		obj += sol.Objective
		bound += sol.Bound
		nodes += sol.Nodes
		iters += sol.LP.Iterations
		warm += sol.LP.WarmHits
		cold += sol.LP.ColdStarts
		lo := parts[i].VarMap[0]
		for si, v := range sol.Values {
			if merged.Values[lo+si] != v {
				t.Fatalf("part %d var %d: merged %v != part %v", i, si, merged.Values[lo+si], v)
			}
		}
		// Each part must also agree with a direct Solve of its model.
		direct, err := Solve(parts[i].Model, Options{Deterministic: true})
		if err != nil {
			t.Fatalf("direct solve %d: %v", i, err)
		}
		if math.Abs(direct.Objective-sol.Objective) > 1e-9 {
			t.Errorf("part %d objective %v != direct %v", i, sol.Objective, direct.Objective)
		}
	}
	if math.Abs(merged.Objective-obj) > 1e-9 || math.Abs(merged.Bound-bound) > 1e-9 {
		t.Errorf("merged obj/bound = %v/%v, want sums %v/%v", merged.Objective, merged.Bound, obj, bound)
	}
	if merged.Nodes != nodes {
		t.Errorf("merged nodes = %d, want sum %d", merged.Nodes, nodes)
	}
	if merged.LP.Iterations != iters || merged.LP.WarmHits != warm || merged.LP.ColdStarts != cold {
		t.Errorf("merged LP stats %+v, want sums iters=%d warm=%d cold=%d", merged.LP, iters, warm, cold)
	}
	var runtime int64
	for _, sol := range sols {
		runtime += int64(sol.Runtime)
	}
	if int64(merged.Runtime) != runtime {
		t.Errorf("merged runtime %v != sum of part runtimes %v", merged.Runtime, runtime)
	}
}

// TestDecomposeDeterministicAcrossRuns: repeated decomposed solves of the
// same parts return byte-identical merged values.
func TestDecomposeDeterministicAcrossRuns(t *testing.T) {
	build := func() ([]Part, int) {
		models := []*Model{
			knapsack([]float64{5, 4, 3, 2}, []float64{2, 3, 1, 2}, 4),
			knapsack([]float64{7, 1, 4}, []float64{1, 1, 2}, 2),
		}
		fullVars := 0
		parts := make([]Part, len(models))
		for i, m := range models {
			parts[i] = Part{Model: m, VarMap: seqVarMap(fullVars, m.NumVars())}
			fullVars += m.NumVars()
		}
		return parts, fullVars
	}
	parts, fullVars := build()
	first, _, err := SolveParts(parts, fullVars, Options{Workers: 3, Deterministic: true})
	if err != nil {
		t.Fatalf("SolveParts: %v", err)
	}
	for run := 0; run < 5; run++ {
		parts, fullVars := build()
		again, _, err := SolveParts(parts, fullVars, Options{Workers: 3, Deterministic: true})
		if err != nil {
			t.Fatalf("SolveParts run %d: %v", run, err)
		}
		if !reflect.DeepEqual(first.Values, again.Values) {
			t.Fatalf("run %d: values diverged\n%v\n%v", run, first.Values, again.Values)
		}
	}
}

// TestDecomposeApportionWorkers pins the largest-first worker split.
func TestDecomposeApportionWorkers(t *testing.T) {
	cases := []struct {
		total   int
		weights []int
		want    []int
	}{
		{1, []int{10, 1}, []int{1, 1}},      // floor: everyone gets one
		{2, []int{10, 1}, []int{1, 1}},      // nothing left after the floor
		{4, []int{4, 2, 1}, []int{2, 1, 1}}, // extra goes largest-first
		{8, []int{4, 2, 1}, []int{5, 2, 1}}, // D'Hondt rounds, ties to lower index
		{6, []int{3, 3}, []int{3, 3}},       // equal weights split evenly
		{5, []int{0, 0, 0}, []int{2, 2, 1}}, // zero weights clamp to 1 and spread
	}
	for _, tc := range cases {
		got := apportionWorkers(tc.total, tc.weights)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("apportionWorkers(%d, %v) = %v, want %v", tc.total, tc.weights, got, tc.want)
		}
	}
}

// TestDecomposeMergePartialFailure pins the partial-failure semantics: a part
// with no solution leaves its variables zero and degrades the merged status
// to feasible, while the surviving parts' stats still aggregate.
func TestDecomposeMergePartialFailure(t *testing.T) {
	m1 := knapsack([]float64{5}, []float64{1}, 1)
	m2 := knapsack([]float64{3}, []float64{1}, 1)
	s1, err := Solve(m1, Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	parts := []Part{
		{Model: m1, VarMap: []int{0}},
		{Model: m2, VarMap: []int{1}},
	}
	merged := mergeParts(parts, []*Solution{s1, nil}, 2)
	if merged.Status != StatusFeasible {
		t.Fatalf("merged status = %v, want feasible", merged.Status)
	}
	if merged.Values == nil || merged.Values[0] != 1 || merged.Values[1] != 0 {
		t.Fatalf("merged values = %v, want [1 0]", merged.Values)
	}
	if math.Abs(merged.Objective-5) > 1e-9 || merged.Nodes != s1.Nodes {
		t.Errorf("merged obj/nodes = %v/%d, want 5/%d", merged.Objective, merged.Nodes, s1.Nodes)
	}
}

// TestDecomposeInfeasiblePartPoisonsMerge: the full model is infeasible iff
// any part is, and an infeasible merge must not hand back partial values.
func TestDecomposeInfeasiblePartPoisonsMerge(t *testing.T) {
	bad := NewModel(Maximize)
	x := bad.AddBinary("x", 1)
	bad.AddConstraint("impossible", []Term{{Var: x, Coef: 1}}, GE, 2)
	parts := []Part{
		{Model: knapsack([]float64{5}, []float64{1}, 1), VarMap: []int{0}},
		{Model: bad, VarMap: []int{1}},
	}
	merged, _, err := SolveParts(parts, 2, Options{})
	if err != nil {
		t.Fatalf("SolveParts: %v", err)
	}
	if merged.Status != StatusInfeasible {
		t.Fatalf("merged status = %v, want infeasible", merged.Status)
	}
	if merged.Values != nil {
		t.Fatalf("infeasible merge returned values %v", merged.Values)
	}
}

// TestDecomposeSeedAndHooksRouted: per-part seeds reach the sub-solver and
// OnSolve wraps each part's solve exactly once, in its goroutine.
func TestDecomposeSeedAndHooksRouted(t *testing.T) {
	models := []*Model{
		knapsack([]float64{5, 4}, []float64{2, 3}, 4),
		knapsack([]float64{7, 1}, []float64{1, 1}, 1),
	}
	var mu sync.Mutex
	began, ended := 0, 0
	parts := make([]Part, len(models))
	fullVars := 0
	for i, m := range models {
		parts[i] = Part{
			Model:  m,
			VarMap: seqVarMap(fullVars, m.NumVars()),
			Seed:   make([]float64, m.NumVars()), // all-zero: feasible incumbent
			OnSolve: func() func(*Solution) {
				mu.Lock()
				began++
				mu.Unlock()
				return func(sol *Solution) {
					mu.Lock()
					defer mu.Unlock()
					ended++
					if sol == nil || sol.Status != StatusOptimal {
						t.Errorf("hook saw solution %+v, want optimal", sol)
					}
				}
			},
		}
		fullVars += m.NumVars()
	}
	merged, _, err := SolveParts(parts, fullVars, Options{Deterministic: true})
	if err != nil {
		t.Fatalf("SolveParts: %v", err)
	}
	if merged.Status != StatusOptimal {
		t.Fatalf("merged status = %v", merged.Status)
	}
	if began != len(parts) || ended != len(parts) {
		t.Errorf("hooks ran begin=%d end=%d, want %d each", began, ended, len(parts))
	}
}

// TestDecomposeValidation: structural input errors are reported, not solved
// around.
func TestDecomposeValidation(t *testing.T) {
	m := knapsack([]float64{1}, []float64{1}, 1)
	if _, _, err := SolveParts(nil, 1, Options{}); err == nil {
		t.Error("empty parts should error")
	}
	if _, _, err := SolveParts([]Part{{Model: m, VarMap: []int{0, 1}}}, 2, Options{}); err == nil {
		t.Error("VarMap length mismatch should error")
	}
	if _, _, err := SolveParts([]Part{{Model: m, VarMap: []int{5}}}, 2, Options{}); err == nil {
		t.Error("out-of-range VarMap should error")
	}
	if _, _, err := SolveParts([]Part{{VarMap: []int{0}}}, 1, Options{}); err == nil {
		t.Error("nil model should error")
	}
}

// TestDecomposeReusePartAdoptedVerbatim pins the Reuse contract: a part
// carrying a cached solution is adopted without solving — its Values,
// Objective, and Bound merge exactly as a live solve's would, it keeps its
// worker-apportioning slot, but it contributes no node/LP/runtime effort and
// its OnSolve hook still fires (the trace shows a zero-effort replay span).
func TestDecomposeReusePartAdoptedVerbatim(t *testing.T) {
	models := []*Model{
		knapsack([]float64{5, 4, 3}, []float64{2, 3, 1}, 4),
		knapsack([]float64{7, 1}, []float64{1, 1}, 1),
	}
	parts := make([]Part, len(models))
	fullVars := 0
	for i, m := range models {
		parts[i] = Part{Model: m, VarMap: seqVarMap(fullVars, m.NumVars())}
		fullVars += m.NumVars()
	}
	fresh, freshSols, err := SolveParts(parts, fullVars, Options{Workers: 2, Deterministic: true})
	if err != nil {
		t.Fatalf("fresh SolveParts: %v", err)
	}

	var mu sync.Mutex
	hookSaw := (*Solution)(nil)
	parts[0].Reuse = freshSols[0]
	parts[0].OnSolve = func() func(*Solution) {
		return func(sol *Solution) {
			mu.Lock()
			hookSaw = sol
			mu.Unlock()
		}
	}
	replay, replaySols, err := SolveParts(parts, fullVars, Options{Workers: 2, Deterministic: true})
	if err != nil {
		t.Fatalf("replay SolveParts: %v", err)
	}
	if replaySols[0] != freshSols[0] {
		t.Error("reused part did not adopt the supplied solution verbatim")
	}
	mu.Lock()
	if hookSaw != freshSols[0] {
		t.Errorf("OnSolve hook saw %+v, want the reused solution", hookSaw)
	}
	mu.Unlock()
	if !reflect.DeepEqual(replay.Values, fresh.Values) {
		t.Errorf("replayed merge values differ from the fresh run:\n%v\n%v", replay.Values, fresh.Values)
	}
	if replay.Objective != fresh.Objective || replay.Bound != fresh.Bound || replay.Status != fresh.Status {
		t.Errorf("replayed merge (obj=%v bound=%v status=%v) != fresh (obj=%v bound=%v status=%v)",
			replay.Objective, replay.Bound, replay.Status, fresh.Objective, fresh.Bound, fresh.Status)
	}
	// Effort telemetry counts only the live part.
	live := replaySols[1]
	if replay.Nodes != live.Nodes || replay.LP != live.LP || replay.Runtime != live.Runtime {
		t.Errorf("replayed merge effort (nodes=%d lp=%+v runtime=%v) should equal the live part's (nodes=%d lp=%+v runtime=%v)",
			replay.Nodes, replay.LP, replay.Runtime, live.Nodes, live.LP, live.Runtime)
	}
	// Worker apportioning is computed before Reuse short-circuits, so the live
	// part solves with the same worker count as in the fresh run.
	if live.Workers != freshSols[1].Workers {
		t.Errorf("live part solved with %d workers, want %d (same apportionment as a full run)",
			live.Workers, freshSols[1].Workers)
	}
}
