// Package milp implements a small mixed-integer linear programming solver:
// a bounded-variable revised simplex LP kernel (primal phase 1/2 for cold
// starts, dual simplex for warm restarts from a parent basis) under a
// best-bound branch-and-bound search with MIP-gap and time limits. Node
// relaxations re-solve from their parent's basis snapshot by default; see
// docs/SOLVER.md for the warm-restart protocol and its fallback rules.
//
// It fills the role IBM CPLEX plays in the TetriSched paper (§3.2.2): the
// STRL compiler targets this package's Model type, and the scheduler asks for
// solutions that are optimal within a configurable relative gap, optionally
// seeded with the previous cycle's solution as an incumbent.
package milp

import (
	"fmt"
	"math"
	"strings"
)

// Sense is the optimization direction of a model.
type Sense int

// Optimization directions.
const (
	Maximize Sense = iota
	Minimize
)

// VarType describes the integrality requirement of a variable.
type VarType int

// Variable types.
const (
	Continuous VarType = iota
	Integer
	Binary
)

func (t VarType) String() string {
	switch t {
	case Continuous:
		return "continuous"
	case Integer:
		return "integer"
	case Binary:
		return "binary"
	}
	return fmt.Sprintf("VarType(%d)", int(t))
}

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Inf is positive infinity, usable as a variable bound.
var Inf = math.Inf(1)

// VarID identifies a variable within its Model.
type VarID int

// Term is a coefficient applied to a variable in a constraint.
type Term struct {
	Var  VarID
	Coef float64
}

// Variable holds the definition of a model variable.
type Variable struct {
	Name string
	Type VarType
	Lb   float64
	Ub   float64
	Obj  float64
}

// Constraint is a linear constraint Σ coef·var  op  RHS.
type Constraint struct {
	Name  string
	Terms []Term
	Op    Op
	RHS   float64
}

// Model is a mixed-integer linear program. Build it with AddVar and
// AddConstraint, then pass it to Solve. A Model is not safe for concurrent
// mutation, but may be solved concurrently once fully built.
type Model struct {
	Sense Sense
	Vars  []Variable
	Cons  []Constraint
}

// NewModel returns an empty model with the given optimization sense.
func NewModel(sense Sense) *Model {
	return &Model{Sense: sense}
}

// AddVar adds a variable and returns its ID. Binary variables have their
// bounds clamped to [0,1] regardless of the supplied lb/ub.
func (m *Model) AddVar(name string, typ VarType, lb, ub, obj float64) VarID {
	if typ == Binary {
		lb, ub = math.Max(lb, 0), math.Min(ub, 1)
	}
	m.Vars = append(m.Vars, Variable{Name: name, Type: typ, Lb: lb, Ub: ub, Obj: obj})
	return VarID(len(m.Vars) - 1)
}

// AddBinary adds a binary variable with the given objective coefficient.
func (m *Model) AddBinary(name string, obj float64) VarID {
	return m.AddVar(name, Binary, 0, 1, obj)
}

// AddConstraint adds Σ terms op rhs. Terms referring to the same variable are
// merged.
func (m *Model) AddConstraint(name string, terms []Term, op Op, rhs float64) {
	m.Cons = append(m.Cons, Constraint{Name: name, Terms: mergeTerms(terms), Op: op, RHS: rhs})
}

func mergeTerms(terms []Term) []Term {
	seen := make(map[VarID]int, len(terms))
	out := make([]Term, 0, len(terms))
	for _, t := range terms {
		if i, ok := seen[t.Var]; ok {
			out[i].Coef += t.Coef
			continue
		}
		seen[t.Var] = len(out)
		out = append(out, t)
	}
	return out
}

// SetObj replaces the objective coefficient of v.
func (m *Model) SetObj(v VarID, obj float64) { m.Vars[v].Obj = obj }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.Vars) }

// NumConstraints returns the number of constraints.
func (m *Model) NumConstraints() int { return len(m.Cons) }

// NumIntVars returns the number of integer and binary variables.
func (m *Model) NumIntVars() int {
	n := 0
	for _, v := range m.Vars {
		if v.Type != Continuous {
			n++
		}
	}
	return n
}

// Validate checks structural sanity: bounds ordered, terms in range, finite
// coefficients.
func (m *Model) Validate() error {
	for i, v := range m.Vars {
		if v.Lb > v.Ub {
			return fmt.Errorf("milp: var %q (#%d): lb %v > ub %v", v.Name, i, v.Lb, v.Ub)
		}
		if math.IsNaN(v.Lb) || math.IsNaN(v.Ub) || math.IsNaN(v.Obj) || math.IsInf(v.Obj, 0) {
			return fmt.Errorf("milp: var %q (#%d): invalid bound or objective", v.Name, i)
		}
		if v.Type != Continuous && (math.IsInf(v.Lb, -1) || math.IsInf(v.Ub, 1)) {
			return fmt.Errorf("milp: integer var %q (#%d) must have finite bounds", v.Name, i)
		}
	}
	for i, c := range m.Cons {
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("milp: constraint %q (#%d): invalid rhs", c.Name, i)
		}
		for _, t := range c.Terms {
			if t.Var < 0 || int(t.Var) >= len(m.Vars) {
				return fmt.Errorf("milp: constraint %q (#%d): bad var id %d", c.Name, i, t.Var)
			}
			if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
				return fmt.Errorf("milp: constraint %q (#%d): invalid coefficient", c.Name, i)
			}
		}
	}
	return nil
}

// ObjectiveValue evaluates the objective at the given point.
func (m *Model) ObjectiveValue(x []float64) float64 {
	obj := 0.0
	for i, v := range m.Vars {
		obj += v.Obj * x[i]
	}
	return obj
}

// IsFeasible reports whether x satisfies all bounds, integrality, and
// constraints within tol.
func (m *Model) IsFeasible(x []float64, tol float64) bool {
	if len(x) != len(m.Vars) {
		return false
	}
	for i, v := range m.Vars {
		if x[i] < v.Lb-tol || x[i] > v.Ub+tol {
			return false
		}
		if v.Type != Continuous && math.Abs(x[i]-math.Round(x[i])) > tol {
			return false
		}
	}
	for _, c := range m.Cons {
		lhs := 0.0
		for _, t := range c.Terms {
			lhs += t.Coef * x[t.Var]
		}
		switch c.Op {
		case LE:
			if lhs > c.RHS+tol {
				return false
			}
		case GE:
			if lhs < c.RHS-tol {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the model in an LP-like text format, useful for debugging
// compiled STRL expressions.
func (m *Model) String() string {
	var b strings.Builder
	if m.Sense == Maximize {
		b.WriteString("maximize\n  ")
	} else {
		b.WriteString("minimize\n  ")
	}
	first := true
	for i, v := range m.Vars {
		if v.Obj == 0 {
			continue
		}
		writeTerm(&b, &first, v.Obj, m.varName(VarID(i)))
	}
	if first {
		b.WriteString("0")
	}
	b.WriteString("\nsubject to\n")
	for i, c := range m.Cons {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("c%d", i)
		}
		fmt.Fprintf(&b, "  %s: ", name)
		cf := true
		for _, t := range c.Terms {
			writeTerm(&b, &cf, t.Coef, m.varName(t.Var))
		}
		if cf {
			b.WriteString("0")
		}
		fmt.Fprintf(&b, " %s %g\n", c.Op, c.RHS)
	}
	b.WriteString("bounds\n")
	for i, v := range m.Vars {
		fmt.Fprintf(&b, "  %g <= %s <= %g  [%s]\n", v.Lb, m.varName(VarID(i)), v.Ub, v.Type)
	}
	return b.String()
}

func (m *Model) varName(v VarID) string {
	if n := m.Vars[v].Name; n != "" {
		return n
	}
	return fmt.Sprintf("x%d", int(v))
}

func writeTerm(b *strings.Builder, first *bool, coef float64, name string) {
	switch {
	case *first:
		if coef == 1 {
			b.WriteString(name)
		} else if coef == -1 {
			b.WriteString("-" + name)
		} else {
			fmt.Fprintf(b, "%g %s", coef, name)
		}
		*first = false
	case coef >= 0:
		if coef == 1 {
			fmt.Fprintf(b, " + %s", name)
		} else {
			fmt.Fprintf(b, " + %g %s", coef, name)
		}
	default:
		if coef == -1 {
			fmt.Fprintf(b, " - %s", name)
		} else {
			fmt.Fprintf(b, " - %g %s", -coef, name)
		}
	}
}
