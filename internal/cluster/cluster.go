// Package cluster models the static structure of a heterogeneous cluster:
// nodes grouped into racks and labeled with attributes (e.g. gpu=true), plus
// the dynamic equivalence-set partitioner that TetriSched uses to minimize
// the number of MILP partition variables (paper §4.2 and TR Appendix A).
package cluster

import (
	"fmt"
	"sort"

	"tetrisched/internal/bitset"
)

// NodeID indexes a node within its cluster; IDs are dense in [0, N).
type NodeID int

// Node is one machine.
type Node struct {
	ID    NodeID
	Name  string
	Rack  string
	Attrs map[string]string
}

// Cluster is an immutable description of the machines available to the
// scheduler.
type Cluster struct {
	nodes  []Node
	racks  []string
	byRack map[string]*bitset.Set
	byAttr map[string]*bitset.Set // key "k=v"
	all    *bitset.Set
}

// Builder assembles a Cluster rack by rack.
type Builder struct {
	nodes []Node
}

// NewBuilder returns an empty cluster builder.
func NewBuilder() *Builder { return &Builder{} }

// AddRack appends a rack of n nodes, all carrying the given attributes.
// Node names are generated as rack/node-index.
func (b *Builder) AddRack(rack string, n int, attrs map[string]string) *Builder {
	for i := 0; i < n; i++ {
		node := Node{
			ID:    NodeID(len(b.nodes)),
			Name:  fmt.Sprintf("%s/n%d", rack, i),
			Rack:  rack,
			Attrs: copyAttrs(attrs),
		}
		b.nodes = append(b.nodes, node)
	}
	return b
}

// AddNode appends a single node.
func (b *Builder) AddNode(name, rack string, attrs map[string]string) *Builder {
	b.nodes = append(b.nodes, Node{
		ID:    NodeID(len(b.nodes)),
		Name:  name,
		Rack:  rack,
		Attrs: copyAttrs(attrs),
	})
	return b
}

func copyAttrs(attrs map[string]string) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	c := make(map[string]string, len(attrs))
	for k, v := range attrs {
		c[k] = v
	}
	return c
}

// Build freezes the builder into a Cluster.
func (b *Builder) Build() *Cluster {
	n := len(b.nodes)
	c := &Cluster{
		nodes:  b.nodes,
		byRack: make(map[string]*bitset.Set),
		byAttr: make(map[string]*bitset.Set),
		all:    bitset.New(n),
	}
	c.all.Fill()
	for _, node := range b.nodes {
		rs, ok := c.byRack[node.Rack]
		if !ok {
			rs = bitset.New(n)
			c.byRack[node.Rack] = rs
			c.racks = append(c.racks, node.Rack)
		}
		rs.Add(int(node.ID))
		for k, v := range node.Attrs {
			key := k + "=" + v
			as, ok := c.byAttr[key]
			if !ok {
				as = bitset.New(n)
				c.byAttr[key] = as
			}
			as.Add(int(node.ID))
		}
	}
	sort.Strings(c.racks)
	return c
}

// N returns the number of nodes.
func (c *Cluster) N() int { return len(c.nodes) }

// Node returns the node with the given ID.
func (c *Cluster) Node(id NodeID) Node { return c.nodes[id] }

// Racks returns the rack names in sorted order.
func (c *Cluster) Racks() []string { return c.racks }

// Rack returns the set of nodes in the named rack (nil if unknown).
func (c *Cluster) Rack(name string) *bitset.Set {
	if s, ok := c.byRack[name]; ok {
		return s.Clone()
	}
	return nil
}

// WithAttr returns the set of nodes carrying attribute k=v; the empty set if
// none do.
func (c *Cluster) WithAttr(k, v string) *bitset.Set {
	if s, ok := c.byAttr[k+"="+v]; ok {
		return s.Clone()
	}
	return bitset.New(c.N())
}

// All returns the set of all nodes.
func (c *Cluster) All() *bitset.Set { return c.all.Clone() }

// Partitioning is the result of refining the cluster's nodes against the
// equivalence sets referenced in one scheduling cycle: Groups is a partition
// of the universe such that every input equivalence set is an exact union of
// groups. Cover[i] lists the group indices whose union is input set i.
type Partitioning struct {
	Groups []*bitset.Set
	Cover  [][]int
}

// Partition refines universe against the given equivalence sets. This is the
// "dynamic partitioning of cluster resources at the beginning of each cycle
// to minimize the number of partition variables" optimization: the MILP only
// needs one integer variable per (leaf, group, start) rather than per node.
func Partition(universe *bitset.Set, eqsets []*bitset.Set) *Partitioning {
	groups := []*bitset.Set{universe.Clone()}
	for _, es := range eqsets {
		var next []*bitset.Set
		for _, g := range groups {
			in := g.Intersect(es)
			if in.Empty() {
				next = append(next, g)
				continue
			}
			out := g.Difference(es)
			next = append(next, in)
			if !out.Empty() {
				next = append(next, out)
			}
		}
		groups = next
	}
	p := &Partitioning{Groups: groups, Cover: make([][]int, len(eqsets))}
	for i, es := range eqsets {
		for gi, g := range groups {
			if g.SubsetOf(es) && !g.Empty() {
				p.Cover[i] = append(p.Cover[i], gi)
			}
		}
	}
	return p
}
