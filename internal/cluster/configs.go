package cluster

import "fmt"

// Standard experiment cluster configurations from the paper (§6.1).
// RC256 is the 256-node / 8-rack testbed; RC80 is the 80-node subset.
// In heterogeneous runs a fraction of racks is GPU-labeled; the paper's
// GS HET workload sends 50% GPU-preferring and 50% rack-affine MPI jobs at
// it, so we label 2 of 8 racks (25% of nodes) with gpu=true, matching the
// scarce-preferred-resource setup of Fig 1.
const (
	attrGPU = "gpu"
)

// GPUAttr is the attribute key used to label GPU nodes.
func GPUAttr() (string, string) { return attrGPU, "true" }

// RC256 builds the 256-node cluster: 8 racks of 32 nodes. If het is true,
// racks r0 and r1 are GPU-labeled.
func RC256(het bool) *Cluster { return rackCluster(8, 32, het) }

// RC80 builds the 80-node cluster: 8 racks of 10 nodes. If het is true,
// racks r0 and r1 are GPU-labeled.
func RC80(het bool) *Cluster { return rackCluster(8, 10, het) }

// rackCluster builds racks×perRack nodes; when het is set the first quarter
// of racks carry gpu=true.
func rackCluster(racks, perRack int, het bool) *Cluster {
	b := NewBuilder()
	gpuRacks := racks / 4
	for r := 0; r < racks; r++ {
		var attrs map[string]string
		if het && r < gpuRacks {
			attrs = map[string]string{attrGPU: "true"}
		}
		b.AddRack(fmt.Sprintf("r%d", r), perRack, attrs)
	}
	return b.Build()
}
