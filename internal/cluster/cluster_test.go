package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tetrisched/internal/bitset"
)

func TestBuilderAndLookups(t *testing.T) {
	c := NewBuilder().
		AddRack("r0", 2, map[string]string{"gpu": "true"}).
		AddRack("r1", 3, nil).
		AddNode("special", "r1", map[string]string{"ssd": "true"}).
		Build()
	if c.N() != 6 {
		t.Fatalf("N = %d, want 6", c.N())
	}
	if got := c.Rack("r0").Count(); got != 2 {
		t.Errorf("rack r0 size = %d", got)
	}
	if got := c.Rack("r1").Count(); got != 4 {
		t.Errorf("rack r1 size = %d", got)
	}
	if c.Rack("nope") != nil {
		t.Errorf("unknown rack should be nil")
	}
	if got := c.WithAttr("gpu", "true").Count(); got != 2 {
		t.Errorf("gpu nodes = %d", got)
	}
	if got := c.WithAttr("ssd", "true").Count(); got != 1 {
		t.Errorf("ssd nodes = %d", got)
	}
	if got := c.WithAttr("none", "x").Count(); got != 0 {
		t.Errorf("missing attr nodes = %d", got)
	}
	if got := c.All().Count(); got != 6 {
		t.Errorf("all = %d", got)
	}
	if n := c.Node(0); n.Rack != "r0" || n.Name != "r0/n0" {
		t.Errorf("node 0 = %+v", n)
	}
	if got := len(c.Racks()); got != 2 {
		t.Errorf("racks = %v", c.Racks())
	}
}

func TestStandardConfigs(t *testing.T) {
	c := RC256(true)
	if c.N() != 256 {
		t.Fatalf("RC256 N = %d", c.N())
	}
	if got := c.WithAttr(GPUAttr()).Count(); got != 64 {
		t.Errorf("RC256 gpu nodes = %d, want 64", got)
	}
	if len(c.Racks()) != 8 {
		t.Errorf("RC256 racks = %d", len(c.Racks()))
	}
	c80 := RC80(false)
	if c80.N() != 80 {
		t.Fatalf("RC80 N = %d", c80.N())
	}
	if got := c80.WithAttr(GPUAttr()).Count(); got != 0 {
		t.Errorf("homogeneous RC80 gpu nodes = %d, want 0", got)
	}
}

func TestPartitionSimple(t *testing.T) {
	// Universe {0..5}; eqsets {0,1,2} and {2,3} → groups {0,1},{2},{3},{4,5}.
	u := bitset.New(6)
	u.Fill()
	e1 := bitset.FromIndices(6, 0, 1, 2)
	e2 := bitset.FromIndices(6, 2, 3)
	p := Partition(u, []*bitset.Set{e1, e2})
	if len(p.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(p.Groups))
	}
	// Cover of e1 must union to exactly e1.
	for i, es := range []*bitset.Set{e1, e2} {
		un := bitset.New(6)
		for _, gi := range p.Cover[i] {
			un.UnionWith(p.Groups[gi])
		}
		if !un.Equal(es) {
			t.Errorf("cover of eqset %d = %v, want %v", i, un, es)
		}
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		u := bitset.New(n)
		u.Fill()
		k := 1 + r.Intn(5)
		eqsets := make([]*bitset.Set, k)
		for i := range eqsets {
			s := bitset.New(n)
			for j := 0; j < n; j++ {
				if r.Intn(3) == 0 {
					s.Add(j)
				}
			}
			eqsets[i] = s
		}
		p := Partition(u, eqsets)
		// Property 1: groups are disjoint and union to the universe.
		un := bitset.New(n)
		total := 0
		for _, g := range p.Groups {
			if g.Empty() {
				return false // no empty groups
			}
			if un.Intersects(g) {
				return false // disjoint
			}
			un.UnionWith(g)
			total += g.Count()
		}
		if !un.Equal(u) || total != n {
			return false
		}
		// Property 2: every eqset ∩ universe is an exact union of its cover.
		for i, es := range eqsets {
			cov := bitset.New(n)
			for _, gi := range p.Cover[i] {
				cov.UnionWith(p.Groups[gi])
			}
			if !cov.Equal(es.Intersect(u)) {
				return false
			}
		}
		// Property 3: every group is entirely inside or outside each eqset.
		for _, g := range p.Groups {
			for _, es := range eqsets {
				ic := g.IntersectCount(es)
				if ic != 0 && ic != g.Count() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRestrictedUniverse(t *testing.T) {
	// Eqsets may reference nodes outside the universe (e.g. busy nodes);
	// cover must equal the intersection with the universe.
	u := bitset.FromIndices(8, 0, 1, 2, 3)
	es := bitset.FromIndices(8, 2, 3, 4, 5)
	p := Partition(u, []*bitset.Set{es})
	cov := bitset.New(8)
	for _, gi := range p.Cover[0] {
		cov.UnionWith(p.Groups[gi])
	}
	want := bitset.FromIndices(8, 2, 3)
	if !cov.Equal(want) {
		t.Errorf("cover = %v, want %v", cov, want)
	}
}
