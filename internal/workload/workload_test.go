package workload

import (
	"math"
	"reflect"
	"testing"

	"tetrisched/internal/cluster"
)

func TestRuntimeAndEstimates(t *testing.T) {
	j := &Job{BaseRuntime: 100, Slowdown: 1.5, EstErr: 0.2}
	if got := j.TrueRuntime(true); got != 100 {
		t.Errorf("preferred runtime = %d", got)
	}
	if got := j.TrueRuntime(false); got != 150 {
		t.Errorf("slowed runtime = %d", got)
	}
	if got := j.EstRuntime(true); got != 120 {
		t.Errorf("estimated preferred = %d", got)
	}
	if got := j.EstRuntime(false); got != 180 {
		t.Errorf("estimated slowed = %d", got)
	}
	under := &Job{BaseRuntime: 100, Slowdown: 1.5, EstErr: -0.5}
	if got := under.EstRuntime(true); got != 50 {
		t.Errorf("under-estimated = %d", got)
	}
	tiny := &Job{BaseRuntime: 1, Slowdown: 1, EstErr: -0.99}
	if got := tiny.EstRuntime(true); got < 1 {
		t.Errorf("estimate must be >= 1, got %d", got)
	}
}

func TestPlacementPreferred(t *testing.T) {
	c := cluster.RC80(true) // racks r0,r1 GPU-labeled
	gpuNodes := c.WithAttr(cluster.GPUAttr()).Indices()
	plain := c.Rack("r5").Indices()

	gpuJob := &Job{Type: GPU, K: 2}
	if !PlacementPreferred(c, gpuJob, gpuNodes[:2]) {
		t.Errorf("all-GPU placement should be preferred")
	}
	if PlacementPreferred(c, gpuJob, []int{gpuNodes[0], plain[0]}) {
		t.Errorf("mixed placement should not be preferred")
	}

	mpiJob := &Job{Type: MPI, K: 3}
	if !PlacementPreferred(c, mpiJob, plain[:3]) {
		t.Errorf("rack-local placement should be preferred")
	}
	cross := []int{plain[0], c.Rack("r6").Indices()[0], plain[1]}
	if PlacementPreferred(c, mpiJob, cross) {
		t.Errorf("cross-rack placement should not be preferred")
	}

	un := &Job{Type: Unconstrained, K: 2}
	if !PlacementPreferred(c, un, cross[:2]) {
		t.Errorf("unconstrained always preferred")
	}
	if ActualRuntime(c, &Job{Type: MPI, K: 2, BaseRuntime: 100, Slowdown: 2}, cross[:2]) != 200 {
		t.Errorf("cross-rack MPI should be slowed")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	c := cluster.RC80(true)
	a, err := Generate(GSHET(100), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GSHET(100), c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("job counts = %d, %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
	diff, err := Generate(GSHET(100), c, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !reflect.DeepEqual(a[i], diff[i]) {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical workloads")
	}
}

func TestGenerateShapes(t *testing.T) {
	c := cluster.RC80(true)
	jobs, err := Generate(GSHET(2000), c, 42)
	if err != nil {
		t.Fatal(err)
	}
	var slo, gpu, mpi int
	maxRack := 0
	for _, r := range c.Racks() {
		if n := c.Rack(r).Count(); n > maxRack {
			maxRack = n
		}
	}
	prev := int64(-1)
	for _, j := range jobs {
		if j.Submit < prev {
			t.Fatalf("jobs not sorted by submit time")
		}
		prev = j.Submit
		if j.K < 1 || j.K > c.N() {
			t.Fatalf("bad gang size %d", j.K)
		}
		if j.BaseRuntime < 30 || j.BaseRuntime > 900 {
			t.Fatalf("runtime %d outside clip range", j.BaseRuntime)
		}
		switch j.Type {
		case GPU:
			gpu++
		case MPI:
			mpi++
			if j.K > maxRack {
				t.Fatalf("MPI job wider than any rack: %d", j.K)
			}
		}
		if j.Class == SLO {
			slo++
			if j.Deadline <= j.Submit+j.BaseRuntime {
				t.Fatalf("deadline %d leaves no slack (submit %d runtime %d)", j.Deadline, j.Submit, j.BaseRuntime)
			}
		} else if j.Deadline != 0 {
			t.Fatalf("BE job has a deadline")
		}
	}
	if f := float64(slo) / 2000; math.Abs(f-0.75) > 0.05 {
		t.Errorf("SLO fraction = %v, want ~0.75", f)
	}
	if f := float64(gpu) / 2000; math.Abs(f-0.5) > 0.05 {
		t.Errorf("GPU fraction = %v, want ~0.5", f)
	}
	if f := float64(mpi) / 2000; math.Abs(f-0.5) > 0.05 {
		t.Errorf("MPI fraction = %v, want ~0.5", f)
	}
}

func TestLoadCalibration(t *testing.T) {
	c := cluster.RC256(false)
	jobs, err := Generate(GRMIX(3000), c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Offered load = total work / (capacity × span) should be near the
	// target of 1.0 (within the tolerance of heavy-tailed sampling).
	var work float64
	for _, j := range jobs {
		work += float64(j.K) * float64(j.BaseRuntime)
	}
	span := float64(jobs[len(jobs)-1].Submit)
	load := work / (float64(c.N()) * span)
	if load < 0.7 || load > 1.4 {
		t.Errorf("offered load = %v, want ≈1.0", load)
	}
}

func TestMixValidate(t *testing.T) {
	c := cluster.RC80(false)
	bad := GSMIX(10)
	bad.GPUFrac = 0.5 // fractions now sum to 1.5
	if _, err := Generate(bad, c, 1); err == nil {
		t.Errorf("invalid type fractions accepted")
	}
	bad2 := GSMIX(0)
	if _, err := Generate(bad2, c, 1); err == nil {
		t.Errorf("zero jobs accepted")
	}
	bad3 := GSMIX(10)
	bad3.DeadlineSlackMin = 0.5
	if _, err := Generate(bad3, c, 1); err == nil {
		t.Errorf("slack < 1 accepted")
	}
}

func TestEstErrPropagates(t *testing.T) {
	c := cluster.RC80(false)
	m := GSMIX(50)
	m.EstErr = -0.5
	jobs, err := Generate(m, c, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.EstErr != -0.5 {
			t.Fatalf("estimate error not propagated")
		}
	}
}
