package workload

import (
	"fmt"
	"math"
	"sort"

	"tetrisched/internal/cluster"
	"tetrisched/internal/randx"
)

// ClassParams describes the size/duration distribution of one job class.
type ClassParams struct {
	// Gang width distribution: discrete values with weights.
	KValues  []float64
	KWeights []float64
	// Base runtime: lognormal with this mean and coefficient of variation,
	// clipped to [MinDur, MaxDur] seconds.
	MeanDur float64
	CVDur   float64
	MinDur  int64
	MaxDur  int64
}

func (p ClassParams) meanK() float64 {
	return randx.NewDiscrete(p.KValues, p.KWeights).Mean()
}

// Mix configures one workload generation run, corresponding to a row of
// Table 1.
type Mix struct {
	Name    string
	SLOFrac float64 // fraction of jobs that are SLO class

	// Placement-type fractions (must sum to 1).
	UnconstrainedFrac float64
	GPUFrac           float64
	MPIFrac           float64
	// ElasticFrac jobs are malleable (extension): width in [K/4, K].
	ElasticFrac float64

	SLOClass ClassParams
	BEClass  ClassParams

	// TargetUtil is the offered load as a fraction of cluster capacity; the
	// paper adjusts load to utilize near 100% of capacity (§6.4).
	TargetUtil float64
	// NumJobs is the total number of jobs to generate.
	NumJobs int
	// Slowdown applied to GPU/MPI jobs on non-preferred placements.
	Slowdown float64
	// DeadlineSlackMin/Max bound the uniform slack factor: deadline =
	// submit + slack×preferred-runtime.
	DeadlineSlackMin float64
	DeadlineSlackMax float64
	// EstErr is the runtime estimate error applied to every job (swept by
	// the experiments).
	EstErr float64
}

// Validate checks mix parameters.
func (m Mix) Validate() error {
	if m.NumJobs <= 0 {
		return fmt.Errorf("workload: NumJobs must be positive")
	}
	if m.SLOFrac < 0 || m.SLOFrac > 1 {
		return fmt.Errorf("workload: SLOFrac out of range")
	}
	if s := m.UnconstrainedFrac + m.GPUFrac + m.MPIFrac + m.ElasticFrac; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("workload: type fractions sum to %v, want 1", s)
	}
	if m.TargetUtil <= 0 {
		return fmt.Errorf("workload: TargetUtil must be positive")
	}
	if m.DeadlineSlackMin < 1 || m.DeadlineSlackMax < m.DeadlineSlackMin {
		return fmt.Errorf("workload: bad deadline slack range")
	}
	return nil
}

// Generate produces the job stream for the mix on the given cluster, sorted
// by submit time. The same seed always yields the same stream.
func Generate(m Mix, c *cluster.Cluster, seed int64) ([]*Job, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	src := randx.New(seed)
	kSLO := randx.NewDiscrete(m.SLOClass.KValues, m.SLOClass.KWeights)
	kBE := randx.NewDiscrete(m.BEClass.KValues, m.BEClass.KWeights)

	// Load calibration: mean work per job (node-seconds) over the class mix
	// determines the Poisson arrival rate that fills TargetUtil of capacity.
	meanWork := m.SLOFrac*m.SLOClass.meanK()*m.SLOClass.MeanDur +
		(1-m.SLOFrac)*m.BEClass.meanK()*m.BEClass.MeanDur
	capacity := float64(c.N())
	interarrival := meanWork / (capacity * m.TargetUtil)

	maxK := c.N()
	if m.MPIFrac > 0 {
		// MPI jobs must fit in a rack to have a preferred option.
		smallest := math.MaxInt32
		for _, r := range c.Racks() {
			if n := c.Rack(r).Count(); n < smallest {
				smallest = n
			}
		}
		maxK = smallest
	}
	gpuCount := 0
	{
		k, v := cluster.GPUAttr()
		gpuCount = c.WithAttr(k, v).Count()
	}

	jobs := make([]*Job, 0, m.NumJobs)
	t := 0.0
	for i := 0; i < m.NumJobs; i++ {
		t += src.Exp(interarrival)
		j := &Job{ID: i, Submit: int64(t), Slowdown: m.Slowdown, EstErr: m.EstErr}
		if src.Float64() < m.SLOFrac {
			j.Class = SLO
		} else {
			j.Class = BestEffort
		}
		params := m.BEClass
		kdist := kBE
		if j.Class == SLO {
			params = m.SLOClass
			kdist = kSLO
		}
		j.K = int(kdist.Sample(src))
		if j.K > maxK {
			j.K = maxK
		}
		if j.K < 1 {
			j.K = 1
		}
		dur := src.LognormalMeanCV(params.MeanDur, params.CVDur)
		j.BaseRuntime = clampInt64(int64(dur), params.MinDur, params.MaxDur)

		r := src.Float64()
		switch {
		case r < m.UnconstrainedFrac:
			j.Type = Unconstrained
		case r < m.UnconstrainedFrac+m.GPUFrac:
			j.Type = GPU
			if j.K > gpuCount && gpuCount > 0 {
				j.K = gpuCount
			}
		case r < m.UnconstrainedFrac+m.GPUFrac+m.MPIFrac:
			j.Type = MPI
		default:
			j.Type = Elastic
			j.MinK = j.K / 4
			if j.MinK < 1 {
				j.MinK = 1
			}
		}
		if j.Type != Unconstrained && j.Slowdown <= 1 {
			j.Slowdown = 1.5
		}
		if j.Class == SLO {
			slack := src.Uniform(m.DeadlineSlackMin, m.DeadlineSlackMax)
			j.Deadline = j.Submit + int64(slack*float64(j.BaseRuntime))
		}
		jobs = append(jobs, j)
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	return jobs, nil
}

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// --- Predefined mixes (Table 1) -------------------------------------------

// swimFB2009 approximates the SWIM fb2009_2 production class used for SLO
// jobs: heavy-tailed gang widths, multi-minute runtimes.
func swimFB2009() ClassParams {
	return ClassParams{
		KValues:  []float64{2, 4, 8, 12, 16, 24},
		KWeights: []float64{25, 30, 22, 12, 8, 3},
		MeanDur:  240, CVDur: 1.2, MinDur: 30, MaxDur: 1800,
	}
}

// swimYahoo approximates the SWIM yahoo_1 class used for best-effort jobs:
// smaller, shorter jobs.
func swimYahoo() ClassParams {
	return ClassParams{
		KValues:  []float64{1, 2, 4, 6, 8},
		KWeights: []float64{30, 30, 25, 10, 5},
		MeanDur:  120, CVDur: 1.0, MinDur: 20, MaxDur: 900,
	}
}

// synthClass is the narrower synthetic class for the GS workloads, sized for
// the RC80 cluster.
func synthClass(meanDur float64) ClassParams {
	return ClassParams{
		KValues:  []float64{2, 4, 6, 8},
		KWeights: []float64{30, 35, 25, 10},
		MeanDur:  meanDur, CVDur: 0.8, MinDur: 30, MaxDur: 900,
	}
}

// GRSLO is the production-derived SLO-only mix (Table 1 row "GR SLO").
func GRSLO(numJobs int) Mix {
	return Mix{
		Name: "GR_SLO", SLOFrac: 1.0,
		UnconstrainedFrac: 1.0,
		SLOClass:          swimFB2009(), BEClass: swimYahoo(),
		TargetUtil: 1.0, NumJobs: numJobs, Slowdown: 1.5,
		DeadlineSlackMin: 2, DeadlineSlackMax: 6,
	}
}

// GRMIX is the production-derived 52% SLO / 48% BE mix (Table 1 row "GR MIX").
func GRMIX(numJobs int) Mix {
	m := GRSLO(numJobs)
	m.Name = "GR_MIX"
	m.SLOFrac = 0.52
	return m
}

// GSMIX is the synthetic homogeneous 70% SLO / 30% BE mix (Table 1 row
// "GS MIX"), sized for RC80.
func GSMIX(numJobs int) Mix {
	return Mix{
		Name: "GS_MIX", SLOFrac: 0.70,
		UnconstrainedFrac: 1.0,
		SLOClass:          synthClass(180), BEClass: synthClass(90),
		TargetUtil: 1.0, NumJobs: numJobs, Slowdown: 1.5,
		DeadlineSlackMin: 2, DeadlineSlackMax: 6,
	}
}

// GSHET is the synthetic heterogeneous 75% SLO / 25% BE mix with 50% GPU and
// 50% MPI placement preferences (Table 1 row "GS HET"), sized for RC80.
func GSHET(numJobs int) Mix {
	return Mix{
		Name: "GS_HET", SLOFrac: 0.75,
		GPUFrac: 0.5, MPIFrac: 0.5,
		SLOClass: synthClass(180), BEClass: synthClass(90),
		TargetUtil: 1.0, NumJobs: numJobs, Slowdown: 1.5,
		DeadlineSlackMin: 2, DeadlineSlackMax: 6,
	}
}
