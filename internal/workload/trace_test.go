package workload

import (
	"os"
	"path/filepath"
	"testing"

	"tetrisched/internal/cluster"
)

func TestTraceRoundTrip(t *testing.T) {
	c := cluster.RC80(true)
	jobs, err := Generate(GSHET(40), c, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveTrace(path, jobs); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(jobs) {
		t.Fatalf("loaded %d jobs, want %d", len(loaded), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], loaded[i]
		if a.Class != b.Class || a.Type != b.Type || a.Submit != b.Submit ||
			a.K != b.K || a.BaseRuntime != b.BaseRuntime || a.Slowdown != b.Slowdown ||
			a.Deadline != b.Deadline || a.EstErr != b.EstErr {
			t.Fatalf("job %d differs:\n  saved:  %+v\n  loaded: %+v", i, a, b)
		}
		if b.ID != i {
			t.Fatalf("job %d: ID %d not dense", i, b.ID)
		}
		if b.Reserved {
			t.Fatalf("job %d: Reserved must not round-trip", i)
		}
	}
}

func TestLoadTraceErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"garbage.json": `{not json`,
		"version.json": `{"version": 99, "jobs": []}`,
		"class.json":   `{"version": 1, "jobs": [{"id":0,"class":"??","type":"GPU","submit":0,"k":1,"base_runtime":10,"slowdown":1}]}`,
		"type.json":    `{"version": 1, "jobs": [{"id":0,"class":"SLO","type":"??","submit":0,"k":1,"base_runtime":10,"slowdown":1}]}`,
		"invalid.json": `{"version": 1, "jobs": [{"id":0,"class":"SLO","type":"GPU","submit":0,"k":0,"base_runtime":10,"slowdown":1}]}`,
	}
	for name, content := range cases {
		if _, err := LoadTrace(write(name, content)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := LoadTrace(filepath.Join(dir, "missing.json")); err == nil {
		t.Errorf("missing file: expected error")
	}
}

func TestLoadTraceSortsAndRenumbers(t *testing.T) {
	p := filepath.Join(t.TempDir(), "t.json")
	content := `{"version":1,"jobs":[
	  {"id":7,"class":"BE","type":"Unconstrained","submit":50,"k":2,"base_runtime":10,"slowdown":1},
	  {"id":3,"class":"SLO","type":"MPI","submit":5,"k":4,"base_runtime":20,"slowdown":2,"deadline":100}
	]}`
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs, err := LoadTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Submit != 5 || jobs[0].ID != 0 || jobs[1].ID != 1 {
		t.Errorf("sort/renumber failed: %+v %+v", jobs[0], jobs[1])
	}
	if jobs[0].Type != MPI || jobs[0].Class != SLO {
		t.Errorf("fields lost: %+v", jobs[0])
	}
}
