package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// traceFile is the on-disk representation of a job trace: a versioned JSON
// document so traces can be shared, archived, and replayed bit-identically
// across scheduler variants (the comparison methodology of §6).
type traceFile struct {
	Version int         `json:"version"`
	Jobs    []*traceJob `json:"jobs"`
}

// traceJob mirrors Job with stable, human-editable field names. The
// Reserved flag is deliberately excluded: admission is re-run on replay so
// the reservation plan matches the cluster being simulated.
type traceJob struct {
	ID          int     `json:"id"`
	Class       string  `json:"class"`
	Type        string  `json:"type"`
	Submit      int64   `json:"submit"`
	K           int     `json:"k"`
	BaseRuntime int64   `json:"base_runtime"`
	Slowdown    float64 `json:"slowdown"`
	Deadline    int64   `json:"deadline,omitempty"`
	EstErr      float64 `json:"est_err,omitempty"`
	MinK        int     `json:"min_k,omitempty"`
	DataNodes   []int   `json:"data_nodes,omitempty"`
	Priority    float64 `json:"priority,omitempty"`
}

const traceVersion = 1

// SaveTrace writes jobs to path as JSON.
func SaveTrace(path string, jobs []*Job) error {
	tf := traceFile{Version: traceVersion}
	for _, j := range jobs {
		tf.Jobs = append(tf.Jobs, &traceJob{
			ID:          j.ID,
			Class:       j.Class.String(),
			Type:        j.Type.String(),
			Submit:      j.Submit,
			K:           j.K,
			BaseRuntime: j.BaseRuntime,
			Slowdown:    j.Slowdown,
			Deadline:    j.Deadline,
			EstErr:      j.EstErr,
			MinK:        j.MinK,
			DataNodes:   j.DataNodes,
			Priority:    j.Priority,
		})
	}
	data, err := json.MarshalIndent(&tf, "", "  ")
	if err != nil {
		return fmt.Errorf("workload: encoding trace: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTrace reads a trace written by SaveTrace. Jobs are returned sorted by
// submit time with dense IDs, as the simulation driver requires.
func LoadTrace(path string) ([]*Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("workload: parsing trace %s: %w", path, err)
	}
	if tf.Version != traceVersion {
		return nil, fmt.Errorf("workload: trace %s has version %d, want %d", path, tf.Version, traceVersion)
	}
	jobs := make([]*Job, 0, len(tf.Jobs))
	for i, tj := range tf.Jobs {
		j := &Job{
			Submit:      tj.Submit,
			K:           tj.K,
			BaseRuntime: tj.BaseRuntime,
			Slowdown:    tj.Slowdown,
			Deadline:    tj.Deadline,
			EstErr:      tj.EstErr,
			MinK:        tj.MinK,
			DataNodes:   tj.DataNodes,
			Priority:    tj.Priority,
		}
		switch tj.Class {
		case "SLO":
			j.Class = SLO
		case "BE":
			j.Class = BestEffort
		default:
			return nil, fmt.Errorf("workload: trace job %d: unknown class %q", i, tj.Class)
		}
		switch tj.Type {
		case "Unconstrained":
			j.Type = Unconstrained
		case "GPU":
			j.Type = GPU
		case "MPI":
			j.Type = MPI
		case "Elastic":
			j.Type = Elastic
		case "DataLocal":
			j.Type = DataLocal
		default:
			return nil, fmt.Errorf("workload: trace job %d: unknown type %q", i, tj.Type)
		}
		if j.K <= 0 || j.BaseRuntime <= 0 {
			return nil, fmt.Errorf("workload: trace job %d: invalid k=%d runtime=%d", i, j.K, j.BaseRuntime)
		}
		jobs = append(jobs, j)
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	for i := range jobs {
		jobs[i].ID = i
	}
	return jobs, nil
}
