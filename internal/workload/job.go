// Package workload models jobs and generates the synthetic workload mixes of
// the TetriSched paper's evaluation (Table 1): production-trace-derived
// (GR SLO, GR MIX) and synthetic (GS MIX, GS HET) compositions of SLO and
// best-effort jobs with Unconstrained, GPU, and MPI placement preferences.
//
// The SWIM production traces (Facebook fb2009_2, Yahoo yahoo_1) are not
// redistributable; we substitute parameterized heavy-tailed distributions
// matching the published characterizations (many small jobs, a long tail of
// large ones) — see DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"math"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
)

// Class distinguishes deadline-bound SLO jobs from latency-sensitive
// best-effort jobs.
type Class int

// Job classes.
const (
	SLO Class = iota
	BestEffort
)

func (c Class) String() string {
	if c == SLO {
		return "SLO"
	}
	return "BE"
}

// Type is the placement-preference type of a job (§6.2.1).
type Type int

// Placement preference types.
const (
	// Unconstrained jobs value any k nodes equally.
	Unconstrained Type = iota
	// GPU jobs prefer k GPU-labeled nodes and slow down elsewhere.
	GPU
	// MPI jobs prefer all k tasks rack-local and slow down when spread.
	MPI
	// Elastic jobs are malleable: they accept any width in [MinK, K] and
	// run proportionally longer on fewer nodes (the "general space-time
	// elasticity" STRL expresses with MAX over shapes, §4.1).
	Elastic
	// DataLocal jobs prefer the nodes holding their input replicas — the
	// paper's *dynamic* heterogeneity (§2.2): the machines a job finds
	// attractive depend on where its data currently lives, not on static
	// hardware attributes.
	DataLocal
)

func (t Type) String() string {
	switch t {
	case Unconstrained:
		return "Unconstrained"
	case GPU:
		return "GPU"
	case MPI:
		return "MPI"
	case Elastic:
		return "Elastic"
	case DataLocal:
		return "DataLocal"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Job is one schedulable unit: a gang of K tasks that must run
// simultaneously on K distinct nodes.
type Job struct {
	ID     int
	Class  Class
	Type   Type
	Submit int64 // arrival time, seconds
	K      int   // gang width (nodes)

	// BaseRuntime is the true runtime on a preferred placement; on a
	// non-preferred placement the job runs Slowdown× longer.
	BaseRuntime int64
	Slowdown    float64

	// Deadline is the absolute SLO completion deadline (SLO jobs only).
	Deadline int64

	// EstErr is the runtime estimate error: the scheduler and reservation
	// system believe the runtime is True×(1+EstErr). Positive values
	// over-estimate, negative under-estimate (§6.3).
	EstErr float64

	// MinK is the minimum acceptable gang width for Elastic jobs (0 for
	// rigid jobs, which always receive exactly K nodes).
	MinK int

	// DataNodes lists the nodes holding the job's input replicas (DataLocal
	// jobs only); running anywhere else incurs the Slowdown factor.
	DataNodes []int

	// Priority scales the job's STRL value (§3.2: "value functions … can be
	// used … to apply job priorities"). Zero means the default of 1.
	Priority float64

	// Reserved marks an SLO job whose reservation was accepted by the
	// admission-control plan; set by the simulation driver at submit time.
	Reserved bool

	// Tenant names the submitting tenant when the job entered through the
	// daemon's multi-tenant front door (internal/httpapi); empty for
	// simulator-generated jobs. Carried for accounting only — placement
	// policy never reads it.
	Tenant string

	// AdmitSeq is the global admission sequence number stamped by the
	// daemon's weighted-fair dequeue when the job leaves the ingress queue
	// for the scheduler (internal/httpapi); 0 for jobs that never passed
	// through an admission queue. Within a (priority, Submit) tie the
	// scheduler's pending order follows AdmitSeq, so a tenant's fair-share
	// position survives into the pending queue instead of collapsing back
	// to job-ID order.
	AdmitSeq int64
}

// WidthRange returns the acceptable allocation widths [min, max].
func (j *Job) WidthRange() (int, int) {
	if j.Type == Elastic && j.MinK > 0 && j.MinK < j.K {
		return j.MinK, j.K
	}
	return j.K, j.K
}

// RuntimeAtWidth returns the true runtime when running on m nodes: rigid
// jobs ignore m; elastic jobs scale work-conservingly (K/m × base).
func (j *Job) RuntimeAtWidth(m int, preferred bool) int64 {
	base := j.TrueRuntime(preferred)
	if j.Type != Elastic || m <= 0 || m >= j.K {
		return base
	}
	return int64(math.Ceil(float64(base) * float64(j.K) / float64(m)))
}

// TrueRuntime returns the actual runtime for a preferred or non-preferred
// placement.
func (j *Job) TrueRuntime(preferred bool) int64 {
	if preferred {
		return j.BaseRuntime
	}
	return int64(math.Ceil(float64(j.BaseRuntime) * j.Slowdown))
}

// EstRuntime returns the runtime the scheduler believes, with the estimate
// error applied. Never less than 1 second.
func (j *Job) EstRuntime(preferred bool) int64 {
	est := int64(math.Ceil(float64(j.TrueRuntime(preferred)) * (1 + j.EstErr)))
	if est < 1 {
		est = 1
	}
	return est
}

// PreferredNodes returns the node set a job type prefers: GPU-labeled nodes
// for GPU jobs, nil for Unconstrained and MPI (MPI preference is per rack,
// not a single set).
func PreferredNodes(c *cluster.Cluster, t Type) *bitset.Set {
	if t == GPU {
		k, v := cluster.GPUAttr()
		return c.WithAttr(k, v)
	}
	return nil
}

// PlacementPreferred reports whether the concrete node assignment is a
// preferred placement for the job's type: all-GPU for GPU jobs, rack-local
// for MPI, always for Unconstrained.
func PlacementPreferred(c *cluster.Cluster, j *Job, nodes []int) bool {
	switch j.Type {
	case Unconstrained:
		return true
	case GPU:
		key, val := cluster.GPUAttr()
		for _, n := range nodes {
			if c.Node(cluster.NodeID(n)).Attrs[key] != val {
				return false
			}
		}
		return true
	case Elastic:
		return true
	case DataLocal:
		replicas := make(map[int]bool, len(j.DataNodes))
		for _, n := range j.DataNodes {
			replicas[n] = true
		}
		for _, n := range nodes {
			if !replicas[n] {
				return false
			}
		}
		return true
	case MPI:
		if len(nodes) == 0 {
			return true
		}
		rack := c.Node(cluster.NodeID(nodes[0])).Rack
		for _, n := range nodes[1:] {
			if c.Node(cluster.NodeID(n)).Rack != rack {
				return false
			}
		}
		return true
	}
	return true
}

// ActualRuntime returns the true runtime of the job on the given concrete
// placement, accounting for elastic width scaling.
func ActualRuntime(c *cluster.Cluster, j *Job, nodes []int) int64 {
	return j.RuntimeAtWidth(len(nodes), PlacementPreferred(c, j, nodes))
}
