// Package sim provides the discrete-event cluster simulator that stands in
// for the paper's 256-node YARN testbed: a deterministic virtual-time event
// engine, ground-truth node occupancy, and a driver that runs a workload
// through any Scheduler implementation while collecting the paper's success
// metrics (SLO attainment by category, best-effort latency, cycle/solver
// latency).
package sim

import (
	"container/heap"
)

// Engine is a deterministic discrete-event executor over virtual time in
// seconds. Events at equal times fire in scheduling order.
type Engine struct {
	now int64
	seq int64
	pq  eventHeap
}

type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine at time 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at virtual time t (≥ now).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d int64, fn func()) { e.At(e.now+d, fn) }

// Step runs the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.pq.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains or the time limit is exceeded.
func (e *Engine) Run(until int64) {
	for e.pq.Len() > 0 && e.pq[0].at <= until {
		e.Step()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.pq.Len() }
