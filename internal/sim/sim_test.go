package sim

import (
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/workload"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func() { got = append(got, 2) })
	e.At(5, func() { got = append(got, 1) })
	e.At(10, func() { got = append(got, 3) }) // same time: scheduling order
	e.At(20, func() { got = append(got, 4) })
	for e.Step() {
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20 {
		t.Errorf("final time = %d", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() {
		e.After(2, func() { fired++ })
	})
	for e.Step() {
	}
	if fired != 1 || e.Now() != 3 {
		t.Errorf("fired=%d now=%d", fired, e.Now())
	}
	// Scheduling in the past clamps to now.
	e.At(1, func() { fired++ })
	for e.Step() {
	}
	if fired != 2 || e.Now() != 3 {
		t.Errorf("past event: fired=%d now=%d", fired, e.Now())
	}
}

// fifoSched is a trivial scheduler used to exercise the driver: strict FIFO,
// arbitrary nodes.
type fifoSched struct {
	queue []*workload.Job
}

func (f *fifoSched) Name() string                           { return "fifo" }
func (f *fifoSched) Submit(now int64, j *workload.Job)      { f.queue = append(f.queue, j) }
func (f *fifoSched) JobFinished(now int64, j *workload.Job) {}
func (f *fifoSched) Cycle(now int64, free *bitset.Set) CycleResult {
	var res CycleResult
	for len(f.queue) > 0 && free.Count() >= f.queue[0].K {
		j := f.queue[0]
		nodes := make([]int, 0, j.K)
		free.ForEach(func(n int) bool {
			nodes = append(nodes, n)
			return len(nodes) < j.K
		})
		for _, n := range nodes {
			free.Remove(n)
		}
		res.Decisions = append(res.Decisions, Decision{Job: j, Nodes: nodes})
		f.queue = f.queue[1:]
	}
	return res
}

func smallJobs(n int) []*workload.Job {
	jobs := make([]*workload.Job, n)
	for i := range jobs {
		jobs[i] = &workload.Job{
			ID: i, Class: workload.BestEffort, Type: workload.Unconstrained,
			Submit: int64(i * 2), K: 2, BaseRuntime: 10, Slowdown: 1,
		}
	}
	return jobs
}

func TestDriverRunsToCompletion(t *testing.T) {
	c := cluster.RC80(false)
	res, err := Run(Config{Cluster: c, Jobs: smallJobs(20), Scheduler: &fifoSched{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("run stalled")
	}
	for i, st := range res.Stats {
		if !st.Completed {
			t.Fatalf("job %d not completed", i)
		}
		if st.Finish-st.Start != 10 {
			t.Errorf("job %d ran %d s, want 10", i, st.Finish-st.Start)
		}
	}
	if res.BusyNodeSeconds != 20*2*10 {
		t.Errorf("busy node-seconds = %d, want 400", res.BusyNodeSeconds)
	}
	if res.Utilization(c.N()) <= 0 {
		t.Errorf("utilization = %v", res.Utilization(c.N()))
	}
}

// badSched violates driver invariants on demand.
type badSched struct {
	mode string
	job  *workload.Job
}

func (b *badSched) Name() string                           { return "bad" }
func (b *badSched) Submit(now int64, j *workload.Job)      { b.job = j }
func (b *badSched) JobFinished(now int64, j *workload.Job) {}
func (b *badSched) Cycle(now int64, free *bitset.Set) CycleResult {
	if b.job == nil {
		return CycleResult{}
	}
	j := b.job
	b.job = nil
	switch b.mode {
	case "doublebook":
		return CycleResult{Decisions: []Decision{{Job: j, Nodes: []int{1, 1}}}}
	case "wronggang":
		return CycleResult{Decisions: []Decision{{Job: j, Nodes: []int{1}}}}
	case "badnode":
		return CycleResult{Decisions: []Decision{{Job: j, Nodes: []int{-1, 5}}}}
	case "preemptghost":
		return CycleResult{Preempted: []*workload.Job{j}}
	}
	return CycleResult{}
}

func TestDriverInvariantViolations(t *testing.T) {
	for _, mode := range []string{"doublebook", "wronggang", "badnode", "preemptghost"} {
		c := cluster.RC80(false)
		jobs := smallJobs(1)
		_, err := Run(Config{Cluster: c, Jobs: jobs, Scheduler: &badSched{mode: mode}})
		if err == nil {
			t.Errorf("mode %q: driver accepted invalid scheduler behavior", mode)
		}
	}
}

// dropSched drops everything.
type dropSched struct{ queue []*workload.Job }

func (d *dropSched) Name() string                           { return "drop" }
func (d *dropSched) Submit(now int64, j *workload.Job)      { d.queue = append(d.queue, j) }
func (d *dropSched) JobFinished(now int64, j *workload.Job) {}
func (d *dropSched) Cycle(now int64, free *bitset.Set) CycleResult {
	res := CycleResult{Dropped: d.queue}
	d.queue = nil
	return res
}

func TestDriverDrops(t *testing.T) {
	c := cluster.RC80(false)
	res, err := Run(Config{Cluster: c, Jobs: smallJobs(5), Scheduler: &dropSched{}})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Stats {
		if !st.Dropped || st.Completed {
			t.Errorf("job %d: dropped=%v completed=%v", i, st.Dropped, st.Completed)
		}
	}
}

// idleSched never schedules: the driver must stall out, not hang.
type idleSched struct{}

func (idleSched) Name() string                                  { return "idle" }
func (idleSched) Submit(now int64, j *workload.Job)             {}
func (idleSched) JobFinished(now int64, j *workload.Job)        {}
func (idleSched) Cycle(now int64, free *bitset.Set) CycleResult { return CycleResult{} }

func TestDriverStallsOut(t *testing.T) {
	c := cluster.RC80(false)
	res, err := Run(Config{Cluster: c, Jobs: smallJobs(2), Scheduler: idleSched{}, MaxIdleCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled {
		t.Fatal("expected stall")
	}
}

// preemptSched starts a job then preempts it once and restarts it.
type preemptSched struct {
	job       *workload.Job
	started   bool
	preempted bool
	relaunch  bool
}

func (p *preemptSched) Name() string                           { return "preempt" }
func (p *preemptSched) Submit(now int64, j *workload.Job)      { p.job = j }
func (p *preemptSched) JobFinished(now int64, j *workload.Job) {}
func (p *preemptSched) Cycle(now int64, free *bitset.Set) CycleResult {
	switch {
	case p.job == nil:
		return CycleResult{}
	case !p.started:
		p.started = true
		return CycleResult{Decisions: []Decision{{Job: p.job, Nodes: []int{0, 1}}}}
	case !p.preempted:
		p.preempted = true
		p.relaunch = true
		return CycleResult{Preempted: []*workload.Job{p.job}}
	case p.relaunch:
		p.relaunch = false
		return CycleResult{Decisions: []Decision{{Job: p.job, Nodes: []int{2, 3}}}}
	}
	return CycleResult{}
}

func TestDriverPreemptionRestartsJob(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{{
		ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained,
		Submit: 0, K: 2, BaseRuntime: 20, Slowdown: 1,
	}}
	res, err := Run(Config{Cluster: c, Jobs: jobs, Scheduler: &preemptSched{}})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if !st.Completed {
		t.Fatal("job never completed after preemption")
	}
	if st.Preemptions != 1 {
		t.Errorf("preemptions = %d, want 1", st.Preemptions)
	}
	// Preempted at t=4 (second cycle), relaunched at t=8, so the job loses
	// its first 4 seconds of progress and finishes at 8+20=28.
	if st.Finish != 28 {
		t.Errorf("finish = %d, want 28 (restart semantics)", st.Finish)
	}
}

func TestJobStatHelpers(t *testing.T) {
	j := &workload.Job{Class: workload.SLO, Submit: 10, Deadline: 100}
	st := JobStat{Job: j, Completed: true, Start: 20, Finish: 90}
	if !st.MetSLO() {
		t.Errorf("on-time SLO job not counted")
	}
	if st.Latency() != 80 {
		t.Errorf("latency = %d", st.Latency())
	}
	st.Finish = 110
	if st.MetSLO() {
		t.Errorf("late SLO job counted as met")
	}
	be := JobStat{Job: &workload.Job{Class: workload.BestEffort}, Completed: true}
	if be.MetSLO() {
		t.Errorf("BE job counted as SLO")
	}
}

func TestNodeFailureKillsAndRestarts(t *testing.T) {
	c := cluster.RC80(false)
	jobs := []*workload.Job{{
		ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained,
		Submit: 0, K: 2, BaseRuntime: 100, Slowdown: 1,
	}}
	// fifoSched places on the lowest free node IDs (0,1); node 1 fails at t=20.
	res, err := Run(Config{
		Cluster: c, Jobs: jobs, Scheduler: &fifoSched{},
		Failures: []NodeFailure{{Node: 1, At: 20, RecoverAt: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if st.FailureKills != 1 {
		t.Fatalf("failure kills = %d, want 1", st.FailureKills)
	}
	if !st.Completed {
		t.Fatal("job never completed after failure restart")
	}
	// Restarted from scratch: total latency > 100s.
	if st.Latency() <= 100 {
		t.Errorf("latency %d shows no restart cost", st.Latency())
	}
	// The restart must avoid the down node: at restart time (t=20, cycle 24)
	// node 1 is down, so the job runs on nodes 0 and 2.
	for _, n := range st.Nodes {
		if n == 1 && st.Start < 40 {
			t.Errorf("restarted job placed on failed node 1 at t=%d", st.Start)
		}
	}
}

func TestNodeFailureShrinksCapacity(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 2, nil).Build()
	jobs := []*workload.Job{{
		ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained,
		Submit: 10, K: 2, BaseRuntime: 10, Slowdown: 1,
	}}
	// Node 1 is down for [0, 60): the k=2 job cannot start until recovery.
	res, err := Run(Config{
		Cluster: c, Jobs: jobs, Scheduler: &fifoSched{},
		Failures: []NodeFailure{{Node: 1, At: 0, RecoverAt: 60}},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats[0]
	if !st.Completed || st.Start < 60 {
		t.Errorf("job should wait for recovery: start=%d completed=%v", st.Start, st.Completed)
	}
}

func TestPermanentFailure(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 3, nil).Build()
	jobs := []*workload.Job{{
		ID: 0, Class: workload.BestEffort, Type: workload.Unconstrained,
		Submit: 0, K: 2, BaseRuntime: 10, Slowdown: 1,
	}}
	res, err := Run(Config{
		Cluster: c, Jobs: jobs, Scheduler: &fifoSched{},
		Failures: []NodeFailure{{Node: 2, At: 0}}, // never recovers
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats[0].Completed {
		t.Errorf("job should still fit on the 2 surviving nodes")
	}
	for _, n := range res.Stats[0].Nodes {
		if n == 2 {
			t.Errorf("job placed on permanently failed node")
		}
	}
}

func TestFailureUnknownNode(t *testing.T) {
	c := cluster.NewBuilder().AddRack("r0", 2, nil).Build()
	_, err := Run(Config{
		Cluster: c, Jobs: smallJobs(1), Scheduler: &fifoSched{},
		Failures: []NodeFailure{{Node: 99, At: 0}},
	})
	if err == nil {
		t.Errorf("failure on unknown node accepted")
	}
}

func BenchmarkEngineEvents(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.At(int64(i%1000), func() {})
		if i%1000 == 999 {
			for e.Step() {
			}
		}
	}
}
