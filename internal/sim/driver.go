package sim

import (
	"fmt"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/cluster"
	"tetrisched/internal/rayon"
	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// Decision launches a pending job on the given nodes, all of which must be
// free. The gang occupies the nodes until the job's (placement-dependent)
// true runtime elapses.
type Decision struct {
	Job   *workload.Job
	Nodes []int
}

// CycleResult is everything a scheduler decides in one cycle.
type CycleResult struct {
	// Preempted running jobs are killed and lose all progress; they must be
	// re-queued by the scheduler itself. Applied before Decisions, so
	// Decisions may reuse the freed nodes.
	Preempted []*workload.Job
	// Decisions launch pending jobs now.
	Decisions []Decision
	// Dropped abandons pending jobs (TetriSched culls SLO jobs that can no
	// longer produce value); they count as SLO misses.
	Dropped []*workload.Job
	// SolverLatency is the wall-clock time spent inside the MILP solver this
	// cycle (zero for schedulers without one). Collected for Fig 12.
	SolverLatency time.Duration
}

// Scheduler is the pluggable policy under test: TetriSched, its ablations,
// or the Rayon/CapacityScheduler baseline.
type Scheduler interface {
	Name() string
	// Submit notifies of a job arrival (after admission control ran; the
	// job's Reserved flag is set).
	Submit(now int64, j *workload.Job)
	// JobFinished notifies that a running job completed and its nodes are
	// free again.
	JobFinished(now int64, j *workload.Job)
	// Cycle runs one scheduling cycle. free is the ground-truth set of idle
	// nodes; the scheduler must only place jobs on free nodes.
	Cycle(now int64, free *bitset.Set) CycleResult
}

// NodeFailure injects a node outage: the node goes down at At and (if
// RecoverAt > At) returns at RecoverAt. A job running on the node is killed
// with restart semantics and re-submitted to the scheduler.
type NodeFailure struct {
	Node      int
	At        int64
	RecoverAt int64 // 0 = permanent
}

// Config describes one simulation run.
type Config struct {
	Cluster   *cluster.Cluster
	Jobs      []*workload.Job
	Scheduler Scheduler
	Plan      *rayon.Plan
	// CyclePeriod is the scheduler invocation period in seconds (paper: 4s).
	CyclePeriod int64
	// MaxIdleCycles stalls out a run when nothing is running, pending work
	// exists, and the scheduler makes no progress (safety net; default 2500).
	MaxIdleCycles int
	// Failures injects node outages (failure testing of adaptive
	// re-planning). The scheduler observes them only through the shrinking
	// free set and the re-submission of killed jobs.
	Failures []NodeFailure
	// Tracer, when non-nil, records driver-level events — Rayon
	// admission verdicts, job lifecycle, node failures, per-cycle driver
	// spans — alongside whatever the scheduler itself traces (see
	// internal/trace and docs/OBSERVABILITY.md).
	Tracer *trace.Tracer
}

// JobStat records the fate of one job.
type JobStat struct {
	Job         *workload.Job
	Submitted   bool
	Started     bool
	Completed   bool
	Dropped     bool
	Start       int64
	Finish      int64
	Preemptions int
	// FailureKills counts restarts caused by node failures.
	FailureKills int
	// Nodes holds the job's final concrete placement (set at launch).
	Nodes []int

	genCounter int // incarnation counter to invalidate stale completions
}

// MetSLO reports whether an SLO job finished by its deadline.
func (s *JobStat) MetSLO() bool {
	return s.Job.Class == workload.SLO && s.Completed && s.Finish <= s.Job.Deadline
}

// Latency returns completion latency (finish − submit) for completed jobs.
func (s *JobStat) Latency() int64 { return s.Finish - s.Job.Submit }

// CycleStat records per-cycle latency for Fig 12.
type CycleStat struct {
	At     int64
	Wall   time.Duration
	Solver time.Duration
}

// Result is the outcome of a simulation run.
type Result struct {
	Stats    []JobStat // indexed by job ID
	Cycles   []CycleStat
	Makespan int64
	// BusyNodeSeconds accumulates ground-truth occupancy for utilization.
	BusyNodeSeconds int64
	Stalled         bool
}

// Utilization returns busy node-seconds over cluster capacity × makespan.
func (r *Result) Utilization(clusterSize int) float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.BusyNodeSeconds) / float64(clusterSize) / float64(r.Makespan)
}

// Run executes the simulation to completion: every job either completes or
// is dropped. It returns an error if the scheduler violates an invariant
// (double-booking a node, launching a non-pending job, wrong gang size).
func Run(cfg Config) (*Result, error) {
	if cfg.CyclePeriod <= 0 {
		cfg.CyclePeriod = 4
	}
	if cfg.MaxIdleCycles <= 0 {
		cfg.MaxIdleCycles = 2500
	}
	if cfg.Plan == nil {
		cfg.Plan = rayon.NewPlan(cfg.Cluster.N(), cfg.CyclePeriod)
	}
	eng := NewEngine()
	tr := cfg.Tracer
	res := &Result{Stats: make([]JobStat, len(cfg.Jobs))}
	free := cfg.Cluster.All()
	running := make(map[int][]int) // job ID -> nodes
	remaining := len(cfg.Jobs)
	submittedAll := 0
	idleCycles := 0
	var firstErr error
	fail := func(format string, args ...interface{}) {
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
	}

	for i, j := range cfg.Jobs {
		if j.ID != i {
			return nil, fmt.Errorf("sim: job %d has ID %d; IDs must be dense", i, j.ID)
		}
		res.Stats[i].Job = j
		job := j
		eng.At(j.Submit, func() {
			tr.SetVirtualTime(eng.Now())
			if job.Class == workload.SLO {
				r := cfg.Plan.Admit(job.ID, eng.Now(), job.Deadline, job.K, job.EstRuntime(true))
				job.Reserved = r != nil
				verdict := "reject"
				if job.Reserved {
					verdict = "admit"
				}
				tr.Instant("admission", verdict, trace.I("job", int64(job.ID)),
					trace.I("k", int64(job.K)), trace.I("deadline", job.Deadline))
			}
			res.Stats[job.ID].Submitted = true
			submittedAll++
			tr.Instant("job", "submit", trace.I("job", int64(job.ID)),
				trace.S("class", job.Class.String()), trace.I("k", int64(job.K)))
			cfg.Scheduler.Submit(eng.Now(), job)
		})
	}

	// Failure injection: outages kill the occupying job (restart semantics)
	// and shrink the free set; the scheduler re-learns the job via Submit.
	down := bitset.New(cfg.Cluster.N())
	for _, f := range cfg.Failures {
		f := f
		if f.Node < 0 || f.Node >= cfg.Cluster.N() {
			return nil, fmt.Errorf("sim: failure on unknown node %d", f.Node)
		}
		eng.At(f.At, func() {
			if down.Contains(f.Node) {
				return
			}
			down.Add(f.Node)
			tr.SetVirtualTime(eng.Now())
			tr.Instant("failure", "node-down", trace.I("node", int64(f.Node)))
			if free.Contains(f.Node) {
				free.Remove(f.Node)
				return
			}
			for id, nodes := range running {
				hit := false
				for _, n := range nodes {
					if n == f.Node {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				job := res.Stats[id].Job
				delete(running, id)
				for _, n := range nodes {
					if n != f.Node {
						free.Add(n)
					}
				}
				st := &res.Stats[id]
				st.FailureKills++
				tr.Instant("failure", "kill", trace.I("job", int64(id)),
					trace.I("node", int64(f.Node)), trace.I("lost", eng.Now()-st.Start))
				res.BusyNodeSeconds += int64(len(nodes)) * (eng.Now() - st.Start)
				st.Started = false
				st.genCounter++
				cfg.Scheduler.JobFinished(eng.Now(), job) // "no longer running"
				cfg.Scheduler.Submit(eng.Now(), job)      // re-queue for restart
				break
			}
		})
		if f.RecoverAt > f.At {
			eng.At(f.RecoverAt, func() {
				if down.Contains(f.Node) {
					down.Remove(f.Node)
					free.Add(f.Node)
					tr.SetVirtualTime(eng.Now())
					tr.Instant("failure", "node-up", trace.I("node", int64(f.Node)))
				}
			})
		}
	}

	finish := func(job *workload.Job) {
		now := eng.Now()
		nodes := running[job.ID]
		delete(running, job.ID)
		for _, n := range nodes {
			free.Add(n)
		}
		st := &res.Stats[job.ID]
		st.Completed = true
		st.Finish = now
		tr.SetVirtualTime(now)
		tr.Instant("job", "finish", trace.I("job", int64(job.ID)),
			trace.I("latency", now-job.Submit), trace.B("met_slo", st.MetSLO()))
		res.BusyNodeSeconds += int64(len(nodes)) * (now - st.Start)
		if r := cfg.Plan.Lookup(job.ID); r != nil {
			cfg.Plan.Release(r, now)
		}
		remaining--
		if now > res.Makespan {
			res.Makespan = now
		}
		cfg.Scheduler.JobFinished(now, job)
	}

	var cycle func()
	cycle = func() {
		if firstErr != nil || res.Stalled || remaining == 0 {
			return
		}
		now := eng.Now()
		tr.SetVirtualTime(now)
		driverSpan := tr.Begin("driver", "cycle")
		t0 := time.Now()
		cr := cfg.Scheduler.Cycle(now, free.Clone())
		wall := time.Since(t0)
		res.Cycles = append(res.Cycles, CycleStat{At: now, Wall: wall, Solver: cr.SolverLatency})
		driverSpan.End(trace.I("decisions", int64(len(cr.Decisions))),
			trace.I("preempted", int64(len(cr.Preempted))),
			trace.I("dropped", int64(len(cr.Dropped))),
			trace.I("running", int64(len(running))),
			trace.F("solver_ms", float64(cr.SolverLatency.Microseconds())/1000))
		tr.Counter("driver", "cluster", trace.I("free_nodes", int64(free.Count())),
			trace.I("running_jobs", int64(len(running))))

		for _, job := range cr.Preempted {
			nodes, ok := running[job.ID]
			if !ok {
				fail("sim: scheduler preempted non-running job %d", job.ID)
				return
			}
			delete(running, job.ID)
			for _, n := range nodes {
				free.Add(n)
			}
			st := &res.Stats[job.ID]
			st.Preemptions++
			res.BusyNodeSeconds += int64(len(nodes)) * (now - st.Start)
			st.Started = false
			// The pending completion event becomes stale; it is filtered by
			// the generation check below.
			st.genCounter++
		}
		progress := false
		for _, d := range cr.Decisions {
			st := &res.Stats[d.Job.ID]
			if !st.Submitted || st.Completed || st.Dropped {
				fail("sim: scheduler launched non-pending job %d", d.Job.ID)
				return
			}
			if _, isRunning := running[d.Job.ID]; isRunning {
				fail("sim: scheduler launched already-running job %d", d.Job.ID)
				return
			}
			if lo, hi := d.Job.WidthRange(); len(d.Nodes) < lo || len(d.Nodes) > hi {
				fail("sim: job %d gang width %d outside [%d,%d]", d.Job.ID, len(d.Nodes), lo, hi)
				return
			}
			for _, n := range d.Nodes {
				if n < 0 || n >= cfg.Cluster.N() || !free.Contains(n) {
					fail("sim: job %d assigned unavailable node %d", d.Job.ID, n)
					return
				}
				free.Remove(n)
			}
			running[d.Job.ID] = append([]int(nil), d.Nodes...)
			st.Started = true
			st.Start = now
			tr.Instant("job", "start", trace.I("job", int64(d.Job.ID)),
				trace.I("width", int64(len(d.Nodes))), trace.I("waited", now-d.Job.Submit))
			st.Nodes = append([]int(nil), d.Nodes...)
			progress = true
			job := d.Job
			gen := st.genCounter
			actual := workload.ActualRuntime(cfg.Cluster, job, d.Nodes)
			eng.After(actual, func() {
				if res.Stats[job.ID].genCounter != gen || !res.Stats[job.ID].Started {
					return // stale completion from a preempted incarnation
				}
				finish(job)
			})
		}
		for _, job := range cr.Dropped {
			st := &res.Stats[job.ID]
			if !st.Submitted || st.Completed || st.Dropped {
				fail("sim: scheduler dropped non-pending job %d", job.ID)
				return
			}
			if _, isRunning := running[job.ID]; isRunning {
				fail("sim: scheduler dropped running job %d", job.ID)
				return
			}
			st.Dropped = true
			st.Finish = now
			remaining--
			progress = true
			if now > res.Makespan {
				res.Makespan = now
			}
		}
		if progress || len(running) > 0 || submittedAll < len(cfg.Jobs) {
			idleCycles = 0
		} else {
			idleCycles++
			if idleCycles > cfg.MaxIdleCycles {
				res.Stalled = true
				return
			}
		}
		if remaining > 0 {
			eng.After(cfg.CyclePeriod, cycle)
		}
	}
	eng.At(0, cycle)

	for eng.Step() {
		if firstErr != nil {
			return res, firstErr
		}
	}
	return res, firstErr
}
