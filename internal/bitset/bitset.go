// Package bitset provides a dense, fixed-capacity bit set used to represent
// sets of cluster nodes. Operations are word-parallel; the zero value of Set
// is an empty set with zero capacity.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set over the integers [0, n) for the capacity n it was
// created with. Methods that combine two sets require equal capacities.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity n.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set with capacity n containing exactly the given
// indices.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Cap reports the capacity (universe size) of the set.
func (s *Set) Cap() int { return s.n }

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom makes s an exact copy of t without allocating (equal capacities
// required). It is Clone for callers that own a reusable scratch set.
func (s *Set) CopyFrom(t *Set) {
	s.sameCap(t)
	copy(s.words, t.words)
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds all elements [0, n).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes bits above capacity in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

func (s *Set) sameCap(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, t.n))
	}
}

// UnionWith adds every element of t to s.
func (s *Set) UnionWith(t *Set) {
	s.sameCap(t)
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	s.sameCap(t)
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	s.sameCap(t)
	for i := range s.words {
		s.words[i] &^= t.words[i]
	}
}

// Union returns a new set s ∪ t.
func (s *Set) Union(t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set s \ t.
func (s *Set) Difference(t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// IntersectCount returns |s ∩ t| without allocating.
func (s *Set) IntersectCount(t *Set) int {
	s.sameCap(t)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & t.words[i])
	}
	return c
}

// Intersects reports whether s and t share any element.
func (s *Set) Intersects(t *Set) bool {
	s.sameCap(t)
	for i := range s.words {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.sameCap(t)
	for i := range s.words {
		if s.words[i]&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for each element in ascending order. If fn returns false,
// iteration stops.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the elements in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Next returns the smallest element >= i, or -1 if none exists.
func (s *Set) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits) << (uint(i) % wordBits)
	for {
		if w != 0 {
			return wi*wordBits + bits.TrailingZeros64(w)
		}
		wi++
		if wi >= len(s.words) {
			return -1
		}
		w = s.words[wi]
	}
}

// String renders the set as {i, j, ...}.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
