package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Contains(1) || s.Contains(-1) || s.Contains(130) {
		t.Errorf("contains elements it should not")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Errorf("remove failed")
	}
	s.Clear()
	if !s.Empty() {
		t.Errorf("clear failed")
	}
}

func TestFillAndTrim(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("Fill(%d): count = %d", n, s.Count())
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(10, 1, 2, 3, 5)
	b := FromIndices(10, 3, 5, 7)
	if got := a.Union(b).Indices(); len(got) != 5 {
		t.Errorf("union = %v", got)
	}
	if got := a.Intersect(b).Indices(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("intersect = %v", got)
	}
	if got := a.Difference(b).Indices(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("difference = %v", got)
	}
	if a.IntersectCount(b) != 2 {
		t.Errorf("intersect count = %d", a.IntersectCount(b))
	}
	if !a.Intersects(b) {
		t.Errorf("intersects = false")
	}
	if a.SubsetOf(b) {
		t.Errorf("a should not be subset of b")
	}
	if !a.Intersect(b).SubsetOf(a) {
		t.Errorf("a∩b should be subset of a")
	}
}

func TestNext(t *testing.T) {
	s := FromIndices(200, 5, 64, 190)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 190}, {190, 190}, {191, -1}, {-3, 5}, {500, -1},
	}
	for _, c := range cases {
		if got := s.Next(c.from); got != c.want {
			t.Errorf("Next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, 1, 2, 3, 4)
	n := 0
	s.ForEach(func(i int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := FromIndices(77, 0, 13, 76)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone not equal")
	}
	b.Remove(13)
	if a.Equal(b) {
		t.Fatalf("mutating clone affected original comparison")
	}
	if a.Equal(New(78)) {
		t.Fatalf("different capacities should not be equal")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(10, 2, 7).String(); got != "{2, 7}" {
		t.Errorf("String = %q", got)
	}
	if got := New(4).String(); got != "{}" {
		t.Errorf("String = %q", got)
	}
}

// refSet is a map-based reference implementation for property testing.
type refSet map[int]bool

func randomPair(r *rand.Rand, n int) (*Set, refSet) {
	s := New(n)
	ref := refSet{}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(i)
			ref[i] = true
		}
	}
	return s, ref
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, ra := randomPair(r, n)
		b, rb := randomPair(r, n)

		u := a.Union(b)
		x := a.Intersect(b)
		d := a.Difference(b)
		for i := 0; i < n; i++ {
			if u.Contains(i) != (ra[i] || rb[i]) {
				return false
			}
			if x.Contains(i) != (ra[i] && rb[i]) {
				return false
			}
			if d.Contains(i) != (ra[i] && !rb[i]) {
				return false
			}
		}
		if a.IntersectCount(b) != x.Count() {
			return false
		}
		if a.Intersects(b) != (x.Count() > 0) {
			return false
		}
		// Indices must be sorted ascending and consistent with Contains.
		prev := -1
		for _, i := range a.Indices() {
			if i <= prev || !a.Contains(i) {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("Add out of range did not panic")
		}
	}()
	New(5).Add(5)
}

func BenchmarkIntersectCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, _ := randomPair(r, 4096)
	y, _ := randomPair(r, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.IntersectCount(y)
	}
}
