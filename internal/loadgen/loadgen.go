// Package loadgen drives the tetrischedd front door (POST /v1/submit) with
// sustained batched job submissions and measures what the admission path
// does under pressure: throughput, admission latency percentiles, and the
// backpressure (429) rate.
//
// Two drive modes:
//
//   - closed loop (Rate == 0): Workers goroutines each keep exactly one
//     request in flight — submit a batch, wait, repeat. Throughput floats
//     to whatever the daemon sustains; latency stays honest because there
//     is no coordinated-omission queue on the client side.
//   - open loop (Rate > 0): batches are dispatched on a fixed schedule of
//     Rate jobs/sec regardless of response times, up to Workers in-flight
//     requests; dispatches that find every worker busy are counted as
//     Missed rather than silently queued, so overload is visible instead
//     of being absorbed into client-side wait time.
//
// An optional cycle driver posts /v1/cycle every CycleEvery so the daemon's
// ingress queue drains while the generator runs; without it a bounded queue
// saturates and the run measures pure reject throughput.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes one load-generation run.
type Config struct {
	BaseURL string       // daemon address, e.g. http://127.0.0.1:7140
	Client  *http.Client // defaults to a pooled client sized to Workers
	Workers int          // concurrent in-flight requests (default 8)
	Rate    float64      // open-loop target in jobs/sec; 0 = closed loop
	Batch   int          // jobs per submit request (default 64)
	Tenants []string     // round-robin tenant names (default ["default"])
	MaxJobs int64        // stop after this many jobs submitted (0 = until Duration)
	StartID int          // first job ID (IDs increase monotonically from here)

	Duration   time.Duration // run length (default 2s; ignored when MaxJobs > 0 hits first)
	CycleEvery time.Duration // drive POST /v1/cycle at this period (0 = never)
}

// Result is what one run measured.
type Result struct {
	Elapsed  time.Duration
	Requests int64 // submit requests completed
	Jobs     int64 // jobs submitted (accepted + rejected + errored)
	Accepted int64 // jobs admitted to the ingress queue (202)
	Rejected int64 // jobs refused with backpressure (429)
	Missed   int64 // open-loop dispatches skipped because all workers were busy
	Err4xx   int64 // requests answered 4xx other than 429
	Err5xx   int64 // requests answered 5xx
	ErrNet   int64 // transport failures

	P50, P90, P99 time.Duration // submit request latency percentiles
}

// OfferedRate is the jobs/sec the generator pushed at the daemon.
func (r Result) OfferedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Jobs) / r.Elapsed.Seconds()
}

// AcceptedRate is the jobs/sec the daemon admitted.
func (r Result) AcceptedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Accepted) / r.Elapsed.Seconds()
}

// RejectRate is the fraction of submitted jobs refused with 429.
func (r Result) RejectRate() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Jobs)
}

// ErrorRate is the fraction of requests that failed outright (non-202,
// non-429 responses and transport errors).
func (r Result) ErrorRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Err4xx+r.Err5xx+r.ErrNet) / float64(r.Requests)
}

// String renders the run summary for humans.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d jobs in %v (%.0f jobs/sec offered, %.0f accepted)\n",
		r.Jobs, r.Elapsed.Round(time.Millisecond), r.OfferedRate(), r.AcceptedRate())
	fmt.Fprintf(&b, "  requests: %d  accepted: %d  rejected(429): %d  4xx: %d  5xx: %d  net: %d  missed: %d\n",
		r.Requests, r.Accepted, r.Rejected, r.Err4xx, r.Err5xx, r.ErrNet, r.Missed)
	fmt.Fprintf(&b, "  latency: p50 %v  p90 %v  p99 %v  reject-rate %.3f  error-rate %.3f",
		r.P50, r.P90, r.P99, r.RejectRate(), r.ErrorRate())
	return b.String()
}

// worker holds the per-goroutine state: a reused body buffer and a private
// latency sample slice, merged only after the run.
type worker struct {
	body []byte
	lat  []time.Duration

	requests, jobs, accepted, rejected int64
	err4xx, err5xx, errNet             int64
}

// gen is the shared run state.
type gen struct {
	cfg    Config
	client *http.Client
	nextID int64
	jobs   int64 // jobs submitted so far (atomic), for MaxJobs
}

// Run executes one load-generation run and blocks until it finishes. The
// context cancels the run early; the partial result is still returned.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []string{"default"}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	g := &gen{cfg: cfg, client: cfg.Client, nextID: int64(cfg.StartID)}
	if g.client == nil {
		g.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        cfg.Workers * 2,
			MaxIdleConnsPerHost: cfg.Workers * 2,
		}}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var cycleWG sync.WaitGroup
	if cfg.CycleEvery > 0 {
		cycleWG.Add(1)
		go func() {
			defer cycleWG.Done()
			g.driveCycles(ctx)
		}()
	}

	workers := make([]*worker, cfg.Workers)
	for i := range workers {
		workers[i] = &worker{}
	}

	start := time.Now()
	var missed int64
	if cfg.Rate > 0 {
		missed = g.openLoop(ctx, workers)
	} else {
		g.closedLoop(ctx, workers)
	}
	elapsed := time.Since(start)
	cancel()
	cycleWG.Wait()

	res := Result{Elapsed: elapsed, Missed: missed}
	var lat []time.Duration
	for _, w := range workers {
		res.Requests += w.requests
		res.Jobs += w.jobs
		res.Accepted += w.accepted
		res.Rejected += w.rejected
		res.Err4xx += w.err4xx
		res.Err5xx += w.err5xx
		res.ErrNet += w.errNet
		lat = append(lat, w.lat...)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = percentile(lat, 0.50)
	res.P90 = percentile(lat, 0.90)
	res.P99 = percentile(lat, 0.99)
	return res, nil
}

// closedLoop keeps every worker saturated until the deadline or job quota.
func (g *gen) closedLoop(ctx context.Context, workers []*worker) {
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			tenant := g.cfg.Tenants[i%len(g.cfg.Tenants)]
			for ctx.Err() == nil {
				n := g.claim()
				if n == 0 {
					return
				}
				g.submit(w, tenant, n)
			}
		}(i, w)
	}
	wg.Wait()
}

// openLoop dispatches one batch every Batch/Rate seconds to an idle worker;
// when all workers are busy the dispatch is dropped and counted.
func (g *gen) openLoop(ctx context.Context, workers []*worker) (missed int64) {
	interval := time.Duration(float64(g.cfg.Batch) / g.cfg.Rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	idle := make(chan *worker, len(workers))
	for _, w := range workers {
		idle <- w
	}
	var wg sync.WaitGroup
	tick := time.NewTicker(interval)
	defer tick.Stop()
	round := 0
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return missed
		case <-tick.C:
			n := g.claim()
			if n == 0 {
				wg.Wait()
				return missed
			}
			select {
			case w := <-idle:
				round++
				tenant := g.cfg.Tenants[round%len(g.cfg.Tenants)]
				wg.Add(1)
				go func() {
					defer wg.Done()
					g.submit(w, tenant, n)
					idle <- w
				}()
			default:
				missed += int64(n)
				atomic.AddInt64(&g.jobs, -int64(n)) // give the quota back
			}
		}
	}
}

// claim reserves up to one batch of jobs against MaxJobs; 0 means the quota
// is exhausted and the caller should stop.
func (g *gen) claim() int {
	n := g.cfg.Batch
	if g.cfg.MaxJobs <= 0 {
		return n
	}
	total := atomic.AddInt64(&g.jobs, int64(n))
	if over := total - g.cfg.MaxJobs; over > 0 {
		n -= int(over)
		if n <= 0 {
			return 0
		}
	}
	return n
}

// submit posts one batch of n jobs for tenant and records the outcome.
func (g *gen) submit(w *worker, tenant string, n int) {
	id0 := atomic.AddInt64(&g.nextID, int64(n)) - int64(n)
	w.body = appendBatch(w.body[:0], tenant, id0, n)
	t0 := time.Now()
	resp, err := g.client.Post(g.cfg.BaseURL+"/v1/submit", "application/json", bytes.NewReader(w.body))
	lat := time.Since(t0)
	w.requests++
	w.jobs += int64(n)
	w.lat = append(w.lat, lat)
	if err != nil {
		w.errNet++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		w.accepted += int64(n)
	case resp.StatusCode == http.StatusTooManyRequests:
		w.rejected += int64(n)
	case resp.StatusCode >= 500:
		w.err5xx++
	default:
		w.err4xx++
	}
}

// driveCycles posts /v1/cycle on a fixed period so the ingress queue keeps
// draining into the scheduler while load runs.
func (g *gen) driveCycles(ctx context.Context) {
	tick := time.NewTicker(g.cfg.CycleEvery)
	defer tick.Stop()
	now := int64(0)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			now++
			body := strings.NewReader(`{"now":` + strconv.FormatInt(now, 10) + `,"free":[]}`)
			resp, err := g.client.Post(g.cfg.BaseURL+"/v1/cycle", "application/json", body)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// appendBatch renders a JSON array of n BE jobs into buf without fmt or
// encoding/json — the generator must not become the bottleneck it measures.
func appendBatch(buf []byte, tenant string, id0 int64, n int) []byte {
	buf = append(buf, '[')
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"id":`...)
		buf = strconv.AppendInt(buf, id0+int64(i), 10)
		buf = append(buf, `,"tenant":`...)
		buf = strconv.AppendQuote(buf, tenant)
		buf = append(buf, `,"class":"BE","type":"Unconstrained","k":1,"base_runtime":30,"slowdown":1}`...)
	}
	return append(buf, ']')
}

// percentile reads the q-quantile from sorted samples.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
