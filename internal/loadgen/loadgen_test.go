package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/httpapi"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// nullSched accepts every submission and does nothing — the daemon under
// test here is the admission path, not the solver.
type nullSched struct{ submitted int }

func (n *nullSched) Name() string                                   { return "null" }
func (n *nullSched) Submit(now int64, j *workload.Job)              { n.submitted++ }
func (n *nullSched) JobFinished(now int64, j *workload.Job)         {}
func (n *nullSched) Cycle(now int64, f *bitset.Set) sim.CycleResult { return sim.CycleResult{} }

func testDaemon(t *testing.T, maxQueue int) *httptest.Server {
	t.Helper()
	var s sim.Scheduler = &nullSched{}
	api := httpapi.NewServer(s, 8).SetAdmission(httpapi.AdmissionConfig{MaxQueue: maxQueue})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClosedLoopMaxJobs(t *testing.T) {
	ts := testDaemon(t, 1<<16)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Workers:  4,
		Batch:    32,
		MaxJobs:  320,
		Duration: 10 * time.Second, // quota stops the run long before this
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != 320 {
		t.Fatalf("submitted %d jobs, want exactly MaxJobs=320", res.Jobs)
	}
	if res.Accepted != 320 || res.Rejected != 0 || res.ErrorRate() != 0 {
		t.Fatalf("unexpected outcome: %+v", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("latency percentiles not populated: p50=%v p99=%v", res.P50, res.P99)
	}
	if res.Elapsed > 5*time.Second {
		t.Fatalf("MaxJobs did not stop the run early (elapsed %v)", res.Elapsed)
	}
}

func TestBackpressureAccounting(t *testing.T) {
	// Queue of 10 with no cycle driver: the first batch fills it, everything
	// after is a 429 and must be counted as rejected, not as an error.
	ts := testDaemon(t, 10)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Workers:  2,
		Batch:    10,
		MaxJobs:  100,
		Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 10 {
		t.Fatalf("accepted %d jobs into a queue of 10", res.Accepted)
	}
	if res.Rejected != 90 {
		t.Fatalf("rejected %d, want 90", res.Rejected)
	}
	if res.ErrorRate() != 0 {
		t.Fatalf("backpressure counted as errors: %+v", res)
	}
	if got := res.RejectRate(); got < 0.89 || got > 0.91 {
		t.Fatalf("reject rate %.3f, want 0.90", got)
	}
}

func TestOpenLoop(t *testing.T) {
	ts := testDaemon(t, 1<<16)
	res, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Workers:  4,
		Batch:    16,
		Rate:     4000,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs == 0 || res.Accepted == 0 {
		t.Fatalf("open loop submitted nothing: %+v", res)
	}
	// The schedule plus drops must account for every dispatch opportunity;
	// mostly we care that nothing was misclassified.
	if res.Err4xx+res.Err5xx+res.ErrNet != 0 {
		t.Fatalf("open loop saw errors: %+v", res)
	}
}
