package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// Client is the proxy-scheduler side of the interface: it forwards job
// submissions, cycle triggers, and completion signals to a remote TetriSched
// daemon and translates its allocation decisions back. It implements
// sim.Scheduler, so the entire simulation harness can drive a scheduler that
// lives behind a real network boundary — the architectural split of §3.3.
type Client struct {
	base string
	http *http.Client
	// jobs resolves decision job IDs back to the caller's job objects.
	jobs map[int]*workload.Job
	name string
}

var _ sim.Scheduler = (*Client)(nil)

// NewClient targets a daemon at baseURL (e.g. "http://127.0.0.1:7140").
func NewClient(baseURL string) *Client {
	return &Client{
		base: baseURL,
		http: &http.Client{Timeout: 30 * time.Second},
		jobs: make(map[int]*workload.Job),
	}
}

// Name implements sim.Scheduler, fetching the daemon's scheduler name once.
func (c *Client) Name() string {
	if c.name != "" {
		return c.name
	}
	var st StatusResponse
	if err := c.get("/v1/status", &st); err != nil {
		return "remote"
	}
	c.name = st.Scheduler + "@remote"
	return c.name
}

// Submit implements sim.Scheduler.
func (c *Client) Submit(now int64, j *workload.Job) {
	c.jobs[j.ID] = j
	msg := FromJob(j)
	msg.Submit = now
	if err := c.post("/v1/jobs", &msg, nil); err != nil {
		// A lost submission surfaces as a stalled simulation; there is no
		// job-level error channel in sim.Scheduler.
		delete(c.jobs, j.ID)
	}
}

// JobFinished implements sim.Scheduler.
func (c *Client) JobFinished(now int64, j *workload.Job) {
	_ = c.post("/v1/completions", &CompletionMsg{JobID: j.ID, Now: now}, nil)
	delete(c.jobs, j.ID)
}

// Cycle implements sim.Scheduler.
func (c *Client) Cycle(now int64, free *bitset.Set) sim.CycleResult {
	req := CycleRequest{Now: now, Free: free.Indices()}
	var resp CycleResponse
	if err := c.post("/v1/cycle", &req, &resp); err != nil {
		return sim.CycleResult{} // fail-safe: no decisions this cycle
	}
	var out sim.CycleResult
	for _, id := range resp.Preempted {
		if j, ok := c.jobs[id]; ok {
			out.Preempted = append(out.Preempted, j)
		}
	}
	for _, d := range resp.Decisions {
		if j, ok := c.jobs[d.JobID]; ok {
			out.Decisions = append(out.Decisions, sim.Decision{Job: j, Nodes: d.Nodes})
		}
	}
	for _, id := range resp.Dropped {
		if j, ok := c.jobs[id]; ok {
			out.Dropped = append(out.Dropped, j)
			delete(c.jobs, id)
		}
	}
	out.SolverLatency = time.Duration(resp.SolverMillis * float64(time.Millisecond))
	return out
}

func (c *Client) post(path string, body, out interface{}) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("httpapi: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func (c *Client) get(path string, out interface{}) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("httpapi: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
