package httpapi

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/metrics"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// TestEndToEndOverHTTP runs the full simulation harness against a TetriSched
// daemon living behind a real HTTP server: the §3.3 separation of allocation
// policy (daemon) from cluster/job state management (caller), exercised end
// to end.
func TestEndToEndOverHTTP(t *testing.T) {
	c := cluster.RC80(true)
	daemon := NewServer(core.New(c, core.Config{PlanAhead: 48}), c.N())
	ts := httptest.NewServer(daemon.Handler())
	defer ts.Close()

	jobs, err := workload.Generate(workload.GSHET(20), c, 13)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(ts.URL)
	res, err := sim.Run(sim.Config{Cluster: c, Jobs: jobs, Scheduler: client})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("remote-scheduler run stalled")
	}
	sum := metrics.Summarize(client.Name(), res, c.N())
	if sum.Incomplete > 0 {
		t.Errorf("%d jobs incomplete over HTTP", sum.Incomplete)
	}
	if !strings.Contains(client.Name(), "TetriSched") {
		t.Errorf("client name = %q", client.Name())
	}
	t.Log(sum.String())
}

// TestRemoteMatchesLocal: the same workload scheduled locally and through
// the HTTP boundary must produce identical schedules (the transport is
// policy-free).
func TestRemoteMatchesLocal(t *testing.T) {
	c := cluster.RC80(true)
	mk := func() []*workload.Job {
		jobs, err := workload.Generate(workload.GSHET(15), c, 21)
		if err != nil {
			t.Fatal(err)
		}
		return jobs
	}

	local, err := sim.Run(sim.Config{Cluster: c, Jobs: mk(), Scheduler: core.New(c, core.Config{PlanAhead: 48})})
	if err != nil {
		t.Fatal(err)
	}

	daemon := NewServer(core.New(c, core.Config{PlanAhead: 48}), c.N())
	ts := httptest.NewServer(daemon.Handler())
	defer ts.Close()
	remote, err := sim.Run(sim.Config{Cluster: c, Jobs: mk(), Scheduler: NewClient(ts.URL)})
	if err != nil {
		t.Fatal(err)
	}

	for i := range local.Stats {
		l, r := &local.Stats[i], &remote.Stats[i]
		if l.Start != r.Start || l.Finish != r.Finish || l.Dropped != r.Dropped {
			t.Fatalf("job %d diverged across the HTTP boundary: local{%d,%d,%v} remote{%d,%d,%v}",
				i, l.Start, l.Finish, l.Dropped, r.Start, r.Finish, r.Dropped)
		}
	}
}

func TestServerValidation(t *testing.T) {
	c := cluster.RC80(false)
	daemon := NewServer(core.New(c, core.Config{PlanAhead: 48}), c.N())
	ts := httptest.NewServer(daemon.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)

	// Bad class rejected.
	if err := client.post("/v1/jobs", &JobMsg{ID: 1, Class: "??", Type: "GPU", K: 1, BaseRuntime: 1}, nil); err == nil {
		t.Errorf("bad class accepted")
	}
	// Duplicate submission rejected.
	good := JobMsg{ID: 2, Class: "BE", Type: "Unconstrained", K: 1, BaseRuntime: 10, Slowdown: 1}
	if err := client.post("/v1/jobs", &good, nil); err != nil {
		t.Fatalf("good job rejected: %v", err)
	}
	if err := client.post("/v1/jobs", &good, nil); err == nil {
		t.Errorf("duplicate accepted")
	}
	// Unknown completion.
	if err := client.post("/v1/completions", &CompletionMsg{JobID: 99}, nil); err == nil {
		t.Errorf("unknown completion accepted")
	}
	// Out-of-range node in cycle.
	if err := client.post("/v1/cycle", &CycleRequest{Now: 0, Free: []int{9999}}, nil); err == nil {
		t.Errorf("bad free list accepted")
	}
	// GET on POST-only endpoint.
	if err := client.get("/v1/jobs", &struct{}{}); err == nil {
		t.Errorf("GET on /v1/jobs accepted")
	}
	// Status works.
	var st StatusResponse
	if err := client.get("/v1/status", &st); err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Universe != c.N() || st.Pending != 1 {
		t.Errorf("status = %+v", st)
	}
}

func TestJobMsgRoundTrip(t *testing.T) {
	j := &workload.Job{
		ID: 7, Class: workload.SLO, Type: workload.MPI, Submit: 100, K: 8,
		MinK: 2, BaseRuntime: 60, Slowdown: 1.5, Deadline: 500, EstErr: -0.2, Reserved: true,
		DataNodes: []int{1, 2, 3},
	}
	msg := FromJob(j)
	back, err := msg.ToJob()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, j) {
		t.Errorf("round trip: %+v vs %+v", back, j)
	}
}
