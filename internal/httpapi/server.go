// Package httpapi exposes a TetriSched scheduler over HTTP/JSON, playing
// the role of the Apache Thrift RPC interface between the YARN proxy
// scheduler and the TetriSched daemon in the paper's integration (§3.3).
// The interface mirrors the paper's three responsibilities: (a) adding jobs
// to the pending queue, (b) communicating allocation decisions back, and
// (c) signaling job completion. Resource allocation policy stays in the
// daemon; cluster and job state management stays with the caller.
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"tetrisched/internal/bitset"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// JobMsg is the wire form of a job submission.
type JobMsg struct {
	ID          int     `json:"id"`
	Class       string  `json:"class"` // "SLO" | "BE"
	Type        string  `json:"type"`  // "Unconstrained" | "GPU" | "MPI" | "Elastic"
	Submit      int64   `json:"submit"`
	K           int     `json:"k"`
	MinK        int     `json:"min_k,omitempty"`
	BaseRuntime int64   `json:"base_runtime"`
	Slowdown    float64 `json:"slowdown"`
	Deadline    int64   `json:"deadline,omitempty"`
	EstErr      float64 `json:"est_err,omitempty"`
	DataNodes   []int   `json:"data_nodes,omitempty"`
	Priority    float64 `json:"priority,omitempty"`
	Reserved    bool    `json:"reserved"`
}

// ToJob converts the wire form to a workload.Job.
func (m *JobMsg) ToJob() (*workload.Job, error) {
	j := &workload.Job{
		ID: m.ID, Submit: m.Submit, K: m.K, MinK: m.MinK,
		BaseRuntime: m.BaseRuntime, Slowdown: m.Slowdown,
		Deadline: m.Deadline, EstErr: m.EstErr, Reserved: m.Reserved,
		DataNodes: m.DataNodes, Priority: m.Priority,
	}
	switch m.Class {
	case "SLO":
		j.Class = workload.SLO
	case "BE":
		j.Class = workload.BestEffort
	default:
		return nil, fmt.Errorf("httpapi: unknown class %q", m.Class)
	}
	switch m.Type {
	case "Unconstrained":
		j.Type = workload.Unconstrained
	case "GPU":
		j.Type = workload.GPU
	case "MPI":
		j.Type = workload.MPI
	case "Elastic":
		j.Type = workload.Elastic
	case "DataLocal":
		j.Type = workload.DataLocal
	default:
		return nil, fmt.Errorf("httpapi: unknown type %q", m.Type)
	}
	if j.K <= 0 || j.BaseRuntime <= 0 {
		return nil, fmt.Errorf("httpapi: job %d: invalid k=%d runtime=%d", j.ID, j.K, j.BaseRuntime)
	}
	return j, nil
}

// FromJob converts a job to its wire form.
func FromJob(j *workload.Job) JobMsg {
	return JobMsg{
		ID: j.ID, Class: j.Class.String(), Type: j.Type.String(),
		Submit: j.Submit, K: j.K, MinK: j.MinK,
		BaseRuntime: j.BaseRuntime, Slowdown: j.Slowdown,
		Deadline: j.Deadline, EstErr: j.EstErr, Reserved: j.Reserved,
		DataNodes: j.DataNodes, Priority: j.Priority,
	}
}

// CycleRequest asks the daemon to run one scheduling cycle.
type CycleRequest struct {
	Now int64 `json:"now"`
	// Free lists the IDs of currently idle nodes (ground truth owned by the
	// resource manager, exactly as YARN owns NodeManager state).
	Free []int `json:"free"`
}

// DecisionMsg is one allocation decision.
type DecisionMsg struct {
	JobID int   `json:"job_id"`
	Nodes []int `json:"nodes"`
}

// CycleResponse carries the cycle's outcome.
type CycleResponse struct {
	Decisions []DecisionMsg `json:"decisions"`
	Dropped   []int         `json:"dropped,omitempty"`
	Preempted []int         `json:"preempted,omitempty"`
	// SolverMillis is the MILP time spent this cycle.
	SolverMillis float64 `json:"solver_millis"`
}

// CompletionMsg signals that a job finished and its nodes are free.
type CompletionMsg struct {
	JobID int   `json:"job_id"`
	Now   int64 `json:"now"`
}

// StatusResponse summarizes daemon state.
type StatusResponse struct {
	Scheduler string `json:"scheduler"`
	Pending   int    `json:"pending"`
	Running   int    `json:"running"`
	Universe  int    `json:"universe"`
}

// Server wraps a scheduler behind the HTTP interface. It serializes all
// scheduler access, mirroring the single-threaded TetriSched daemon.
type Server struct {
	mu       sync.Mutex
	sched    sim.Scheduler
	universe int
	jobs     map[int]*workload.Job
	running  map[int]bool
}

// NewServer wraps sched; universe is the cluster size (node ID bound).
func NewServer(sched sim.Scheduler, universe int) *Server {
	return &Server{
		sched:    sched,
		universe: universe,
		jobs:     make(map[int]*workload.Job),
		running:  make(map[int]bool),
	}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/cycle", s.handleCycle)
	mux.HandleFunc("/v1/completions", s.handleCompletion)
	mux.HandleFunc("/v1/status", s.handleStatus)
	return mux
}

func writeErr(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var msg JobMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := msg.ToJob()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[job.ID]; dup {
		writeErr(w, http.StatusConflict, fmt.Errorf("httpapi: duplicate job %d", job.ID))
		return
	}
	s.jobs[job.ID] = job
	s.sched.Submit(job.Submit, job)
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleCycle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req CycleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	free := bitset.New(s.universe)
	for _, n := range req.Free {
		if n < 0 || n >= s.universe {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: node %d out of range", n))
			return
		}
		free.Add(n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cr := s.sched.Cycle(req.Now, free)
	resp := CycleResponse{SolverMillis: float64(cr.SolverLatency.Microseconds()) / 1000}
	for _, p := range cr.Preempted {
		resp.Preempted = append(resp.Preempted, p.ID)
		delete(s.running, p.ID)
	}
	for _, d := range cr.Decisions {
		resp.Decisions = append(resp.Decisions, DecisionMsg{JobID: d.Job.ID, Nodes: d.Nodes})
		s.running[d.Job.ID] = true
	}
	for _, j := range cr.Dropped {
		resp.Dropped = append(resp.Dropped, j.ID)
		delete(s.jobs, j.ID)
	}
	writeJSON(w, &resp)
}

func (s *Server) handleCompletion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var msg CompletionMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[msg.JobID]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: unknown job %d", msg.JobID))
		return
	}
	delete(s.jobs, msg.JobID)
	delete(s.running, msg.JobID)
	s.sched.JobFinished(msg.Now, job)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, &StatusResponse{
		Scheduler: s.sched.Name(),
		Pending:   len(s.jobs) - len(s.running),
		Running:   len(s.running),
		Universe:  s.universe,
	})
}
