// Package httpapi exposes a TetriSched scheduler over HTTP/JSON, playing
// the role of the Apache Thrift RPC interface between the YARN proxy
// scheduler and the TetriSched daemon in the paper's integration (§3.3).
// The interface mirrors the paper's three responsibilities: (a) adding jobs
// to the pending queue, (b) communicating allocation decisions back, and
// (c) signaling job completion. Resource allocation policy stays in the
// daemon; cluster and job state management stays with the caller.
package httpapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"tetrisched/internal/bitset"
	"tetrisched/internal/core"
	"tetrisched/internal/sim"
	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// JobMsg is the wire form of a job submission.
type JobMsg struct {
	ID          int     `json:"id"`
	Tenant      string  `json:"tenant,omitempty"` // multi-tenant front door (POST /v1/submit)
	Class       string  `json:"class"`            // "SLO" | "BE"
	Type        string  `json:"type"`             // "Unconstrained" | "GPU" | "MPI" | "Elastic"
	Submit      int64   `json:"submit"`
	K           int     `json:"k"`
	MinK        int     `json:"min_k,omitempty"`
	BaseRuntime int64   `json:"base_runtime"`
	Slowdown    float64 `json:"slowdown"`
	Deadline    int64   `json:"deadline,omitempty"`
	EstErr      float64 `json:"est_err,omitempty"`
	DataNodes   []int   `json:"data_nodes,omitempty"`
	Priority    float64 `json:"priority,omitempty"`
	Reserved    bool    `json:"reserved"`
}

// ToJob converts the wire form to a workload.Job.
func (m *JobMsg) ToJob() (*workload.Job, error) {
	j := &workload.Job{
		ID: m.ID, Submit: m.Submit, K: m.K, MinK: m.MinK,
		BaseRuntime: m.BaseRuntime, Slowdown: m.Slowdown,
		Deadline: m.Deadline, EstErr: m.EstErr, Reserved: m.Reserved,
		DataNodes: m.DataNodes, Priority: m.Priority, Tenant: m.Tenant,
	}
	switch m.Class {
	case "SLO":
		j.Class = workload.SLO
	case "BE":
		j.Class = workload.BestEffort
	default:
		return nil, fmt.Errorf("httpapi: unknown class %q", m.Class)
	}
	switch m.Type {
	case "Unconstrained":
		j.Type = workload.Unconstrained
	case "GPU":
		j.Type = workload.GPU
	case "MPI":
		j.Type = workload.MPI
	case "Elastic":
		j.Type = workload.Elastic
	case "DataLocal":
		j.Type = workload.DataLocal
	default:
		return nil, fmt.Errorf("httpapi: unknown type %q", m.Type)
	}
	if j.K <= 0 || j.BaseRuntime <= 0 {
		return nil, fmt.Errorf("httpapi: job %d: invalid k=%d runtime=%d", j.ID, j.K, j.BaseRuntime)
	}
	return j, nil
}

// FromJob converts a job to its wire form.
func FromJob(j *workload.Job) JobMsg {
	return JobMsg{
		ID: j.ID, Class: j.Class.String(), Type: j.Type.String(),
		Submit: j.Submit, K: j.K, MinK: j.MinK,
		BaseRuntime: j.BaseRuntime, Slowdown: j.Slowdown,
		Deadline: j.Deadline, EstErr: j.EstErr, Reserved: j.Reserved,
		DataNodes: j.DataNodes, Priority: j.Priority, Tenant: j.Tenant,
	}
}

// CycleRequest asks the daemon to run one scheduling cycle.
type CycleRequest struct {
	Now int64 `json:"now"`
	// Free lists the IDs of currently idle nodes (ground truth owned by the
	// resource manager, exactly as YARN owns NodeManager state).
	Free []int `json:"free"`
}

// DecisionMsg is one allocation decision.
type DecisionMsg struct {
	JobID int   `json:"job_id"`
	Nodes []int `json:"nodes"`
}

// CycleResponse carries the cycle's outcome.
type CycleResponse struct {
	Decisions []DecisionMsg `json:"decisions"`
	Dropped   []int         `json:"dropped,omitempty"`
	Preempted []int         `json:"preempted,omitempty"`
	// SolverMillis is the MILP time spent this cycle.
	SolverMillis float64 `json:"solver_millis"`
}

// CompletionMsg signals that a job finished and its nodes are free.
type CompletionMsg struct {
	JobID int   `json:"job_id"`
	Now   int64 `json:"now"`
}

// SolverStatusMsg is the cumulative MILP/LP telemetry block of a status
// response — the daemon-side view of core.SolveStats.
type SolverStatusMsg struct {
	Solves          int     `json:"solves"`
	Nodes           int     `json:"bb_nodes"`
	MaxNodes        int     `json:"bb_nodes_max"`
	Workers         int     `json:"workers"`
	WarmStarts      int     `json:"warm_starts"`
	LPIters         int64   `json:"lp_iterations"`
	Phase1          int     `json:"lp_phase1"`
	WarmLPs         int     `json:"lp_warm_hits"`
	ColdLPs         int     `json:"lp_cold_starts"`
	Decomposed      int     `json:"decomposed_solves"`
	Components      int     `json:"components"`
	ReuseHits       int     `json:"reuse_hits"`
	ReuseMisses     int     `json:"reuse_misses"`
	ReuseHitRate    float64 `json:"reuse_hit_rate"`
	ExprHits        int     `json:"expr_hits"`
	ExprMisses      int     `json:"expr_misses"`
	CompileSkips    int     `json:"compile_skips"`
	CompileJobs     int     `json:"compile_jobs"`
	CompileSkipRate float64 `json:"compile_skip_rate"`
	GenerateMillis  float64 `json:"generate_millis"`
	CompileMillis   float64 `json:"compile_millis"`
	WarmHitRate     float64 `json:"lp_warm_hit_rate"`
	MeanSolveMillis float64 `json:"mean_solve_millis"`
	MaxSolveMillis  float64 `json:"max_solve_millis"`
	PresolveFixed   int     `json:"presolve_vars_fixed"`
	PresolveRows    int     `json:"presolve_rows_dropped"`
	PresolveCliques int     `json:"presolve_cliques_merged"`
	PresolveRounds  int     `json:"presolve_rounds"`
	PresolveMillis  float64 `json:"presolve_millis"`
	Factorizations  int64   `json:"lp_factorizations"`
	EtaUpdates      int64   `json:"lp_eta_updates"`
	DenseFallbacks  int     `json:"lp_dense_fallbacks"`
	CutRounds       int     `json:"cut_rounds"`
	CoverCuts       int     `json:"cover_cuts"`
	CliqueCuts      int     `json:"clique_cuts"`
	PCBranches      int64   `json:"pseudocost_branches"`
	FracBranches    int64   `json:"fractional_branches"`
}

// ShardStatusMsg is the sharded control-plane telemetry block of a status
// response — the daemon-side view of core.ShardStats (docs/SHARDING.md).
type ShardStatusMsg struct {
	Shards      int    `json:"shards"`
	Partitioner string `json:"partitioner"`
	Cycles      int64  `json:"cycles"`
	Spanning    int64  `json:"spanning_jobs"`
	Conflicts   int64  `json:"conflicts"`
	Requeued    int64  `json:"requeued"`
	ArbLaunched int64  `json:"arbitrator_launched"`
	ArbDeferred int64  `json:"arbitrator_deferred"`
}

// StatusResponse summarizes daemon state.
type StatusResponse struct {
	Scheduler string `json:"scheduler"`
	Pending   int    `json:"pending"`
	Running   int    `json:"running"`
	Universe  int    `json:"universe"`
	Cycles    uint64 `json:"cycles"`
	// Solver carries cumulative solve telemetry when the wrapped scheduler
	// exposes it (core.Scheduler does); absent otherwise.
	Solver *SolverStatusMsg `json:"solver,omitempty"`
	// Shard carries sharded control-plane telemetry when the wrapped
	// scheduler runs with Config.Shards > 0; absent otherwise.
	Shard *ShardStatusMsg `json:"shard,omitempty"`
	// Admission is the front-door ingress-queue state (POST /v1/submit).
	Admission *AdmissionStatusMsg `json:"admission,omitempty"`
}

// solveStatsSource is implemented by schedulers that expose cumulative MILP
// telemetry (core.Scheduler.SolveStatsSnapshot).
type solveStatsSource interface {
	SolveStatsSnapshot() core.SolveStats
}

// shardStatsSource is implemented by schedulers that expose sharded
// control-plane telemetry (core.Scheduler.ShardStatsSnapshot).
type shardStatsSource interface {
	ShardStatsSnapshot() core.ShardStats
}

// solveLatencyBuckets are the /metrics histogram bounds for per-cycle MILP
// latency, in seconds — spanning sub-millisecond warm cycles up to the
// multi-second budgets of §3.2.2 scale experiments.
var solveLatencyBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5}

// histogram is a fixed-bucket Prometheus-style cumulative histogram.
type histogram struct {
	buckets []float64 // upper bounds, ascending; an implicit +Inf follows
	counts  []uint64  // per-bucket (non-cumulative) counts; last is +Inf
	sum     float64
	count   uint64
}

func newHistogram(buckets []float64) *histogram {
	return &histogram{buckets: buckets, counts: make([]uint64, len(buckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Server wraps a scheduler behind the HTTP interface. It serializes all
// scheduler access, mirroring the single-threaded TetriSched daemon.
//
// Locking: s.mu guards the scheduler and the job/running maps; the admission
// ingress queue (s.adm) carries its own lock so the submit hot path never
// waits behind an in-flight MILP solve. The only lock order ever taken is
// s.mu → adm.mu (status/metrics/cycle); no path acquires them the other way
// around.
type Server struct {
	mu       sync.Mutex
	sched    sim.Scheduler
	universe int
	jobs     map[int]*workload.Job
	running  map[int]bool
	tracer   *trace.Tracer

	adm    *admission
	admLog *admissionLog

	// Daemon-side observability counters (see docs/OBSERVABILITY.md).
	cycles      uint64
	decisions   uint64
	preemptions uint64
	dropped     uint64
	solveHist   *histogram
}

// NewServer wraps sched; universe is the cluster size (node ID bound). The
// admission front door starts with default limits (AdmissionConfig zero
// value); tune it with SetAdmission before serving.
func NewServer(sched sim.Scheduler, universe int) *Server {
	return &Server{
		sched:     sched,
		universe:  universe,
		jobs:      make(map[int]*workload.Job),
		running:   make(map[int]bool),
		adm:       newAdmission(AdmissionConfig{}),
		solveHist: newHistogram(solveLatencyBuckets),
	}
}

// SetAdmission replaces the front-door admission configuration (queue bound,
// tenant weights/quotas, drain burst). Call before serving; it resets any
// queued state.
func (s *Server) SetAdmission(cfg AdmissionConfig) *Server {
	s.adm = newAdmission(cfg)
	return s
}

// ReconfigureTenants applies a new per-tenant admission configuration
// (weights, quotas, rate limits) to the live front door without resetting
// queued jobs, fair-share virtual times, or token balances. Safe to call
// while serving; tetrischedd wires it to SIGHUP for -tenants reloads.
func (s *Server) ReconfigureTenants(tenants []TenantConfig) {
	s.adm.reconfigure(tenants)
}

// SetAdmissionLog streams one NDJSON record per admission verdict (batch
// accepted/rejected, stream totals) to w. Records are buffered; call
// FlushAdmissionLog on shutdown. Call before serving.
func (s *Server) SetAdmissionLog(w io.Writer) *Server {
	s.admLog = newAdmissionLog(w)
	return s
}

// FlushAdmissionLog flushes any buffered admission-log records.
func (s *Server) FlushAdmissionLog() {
	if s.admLog != nil {
		s.admLog.flush()
	}
}

// SetTracer attaches the tracer served by GET /v1/trace (nil disables the
// endpoint) and returns the server for chaining. The same tracer should be
// wired into the scheduler (core.Config.Tracer) so cycle internals land in
// the ring.
func (s *Server) SetTracer(tr *trace.Tracer) *Server {
	s.tracer = tr
	return s
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/submit", s.handleSubmit)
	mux.HandleFunc("/v1/cycle", s.handleCycle)
	mux.HandleFunc("/v1/completions", s.handleCompletion)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// admissionLog streams NDJSON admission records to a writer. Records are
// buffered (bufio) and must be flushed on shutdown; one record covers one
// batch verdict or one completed stream, never one job — the log stays
// proportional to request rate, not job rate.
type admissionLog struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func newAdmissionLog(w io.Writer) *admissionLog {
	return &admissionLog{bw: bufio.NewWriterSize(w, 32<<10)}
}

func (l *admissionLog) record(mode, tenant, outcome string, jobs, code int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	fmt.Fprintf(l.bw, `{"t":%q,"mode":%q,"tenant":%q,"jobs":%d,"outcome":%q,"code":%d}`+"\n",
		time.Now().UTC().Format(time.RFC3339Nano), mode, tenant, jobs, outcome, code)
	l.mu.Unlock()
}

func (l *admissionLog) flush() {
	l.mu.Lock()
	l.bw.Flush()
	l.mu.Unlock()
}

// logAdmission records one batch verdict. A batch may mix tenants; the log
// names the tenant when uniform and "multi" otherwise.
func (s *Server) logAdmission(jobs []*workload.Job, outcome string, code int) {
	if s.admLog == nil {
		return
	}
	tenant := jobs[0].Tenant
	for _, j := range jobs[1:] {
		if j.Tenant != tenant {
			tenant = "multi"
			break
		}
	}
	s.admLog.record("batch", tenant, outcome, len(jobs), code)
}

// logStream records one completed NDJSON stream's totals.
func (s *Server) logStream(accepted, rejected, malformed int64) {
	if s.admLog == nil {
		return
	}
	s.admLog.record("stream", "", fmt.Sprintf("accepted=%d rejected=%d malformed=%d",
		accepted, rejected, malformed), int(accepted), 0)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing more to do.
		_ = err
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var msg JobMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	job, err := msg.ToJob()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[job.ID]; dup {
		writeErr(w, http.StatusConflict, fmt.Errorf("httpapi: duplicate job %d", job.ID))
		return
	}
	s.jobs[job.ID] = job
	s.sched.Submit(job.Submit, job)
	w.WriteHeader(http.StatusAccepted)
}

func (s *Server) handleCycle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var req CycleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	free := bitset.New(s.universe)
	for _, n := range req.Free {
		if n < 0 || n >= s.universe {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: node %d out of range", n))
			return
		}
		free.Add(n)
	}
	// Weighted-fair drain: move up to Burst queued jobs from the ingress
	// queue into the scheduler's pending queue before this cycle plans.
	// drain takes only adm.mu and finishes before s.mu is acquired.
	admitted := s.adm.drain(s.adm.cfg.Burst)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(admitted) > 0 {
		fresh := 0
		for _, j := range admitted {
			if _, dup := s.jobs[j.ID]; dup {
				// Survived enqueue-side dup checks but collides with a job
				// the scheduler already knows (e.g. resubmitted after a
				// previous drain): drop it here rather than corrupting the
				// scheduler's books.
				s.adm.noteDupDrop(j.Tenant)
				continue
			}
			s.jobs[j.ID] = j
			s.sched.Submit(j.Submit, j)
			fresh++
		}
		s.tracer.Instant("admit", "drain", trace.I("jobs", int64(fresh)),
			trace.I("dup_dropped", int64(len(admitted)-fresh)))
	}
	cr := s.sched.Cycle(req.Now, free)
	s.cycles++
	s.decisions += uint64(len(cr.Decisions))
	s.preemptions += uint64(len(cr.Preempted))
	s.dropped += uint64(len(cr.Dropped))
	s.solveHist.observe(cr.SolverLatency.Seconds())
	resp := CycleResponse{SolverMillis: float64(cr.SolverLatency.Microseconds()) / 1000}
	for _, p := range cr.Preempted {
		resp.Preempted = append(resp.Preempted, p.ID)
		delete(s.running, p.ID)
	}
	for _, d := range cr.Decisions {
		resp.Decisions = append(resp.Decisions, DecisionMsg{JobID: d.Job.ID, Nodes: d.Nodes})
		s.running[d.Job.ID] = true
	}
	for _, j := range cr.Dropped {
		resp.Dropped = append(resp.Dropped, j.ID)
		delete(s.jobs, j.ID)
	}
	writeJSON(w, &resp)
}

func (s *Server) handleCompletion(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	var msg CompletionMsg
	if err := json.NewDecoder(r.Body).Decode(&msg); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[msg.JobID]
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: unknown job %d", msg.JobID))
		return
	}
	delete(s.jobs, msg.JobID)
	delete(s.running, msg.JobID)
	s.sched.JobFinished(msg.Now, job)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := &StatusResponse{
		Scheduler: s.sched.Name(),
		Pending:   len(s.jobs) - len(s.running),
		Running:   len(s.running),
		Universe:  s.universe,
		Cycles:    s.cycles,
		Admission: s.adm.status(),
	}
	if src, ok := s.sched.(solveStatsSource); ok {
		st := src.SolveStatsSnapshot()
		resp.Solver = &SolverStatusMsg{
			Solves: st.Solves, Nodes: st.Nodes, MaxNodes: st.MaxNodes,
			Workers: st.Workers, WarmStarts: st.WarmStarts,
			LPIters: st.LPIters, Phase1: st.Phase1,
			WarmLPs: st.WarmLPs, ColdLPs: st.ColdLPs,
			Decomposed: st.Decomposed, Components: st.Components,
			ReuseHits: st.ReuseHits, ReuseMisses: st.ReuseMisses,
			ReuseHitRate:    st.ReuseHitRate(),
			ExprHits:        st.ExprHits,
			ExprMisses:      st.ExprMisses,
			CompileSkips:    st.CompileSkips,
			CompileJobs:     st.CompileJobs,
			CompileSkipRate: st.CompileSkipRate(),
			GenerateMillis:  float64(st.GenerateNS) / 1e6,
			CompileMillis:   float64(st.CompileNS) / 1e6,
			WarmHitRate:     st.WarmHitRate(),
			MeanSolveMillis: ms(st.MeanSolve()),
			MaxSolveMillis:  ms(st.MaxSolve),
			PresolveFixed:   st.PresolveFixed,
			PresolveRows:    st.PresolveRows,
			PresolveCliques: st.PresolveCliques,
			PresolveRounds:  st.PresolveRounds,
			PresolveMillis:  ms(st.PresolveTime),
			Factorizations:  st.Factorizations,
			EtaUpdates:      st.EtaUpdates,
			DenseFallbacks:  st.DenseFallbacks,
			CutRounds:       st.CutRounds,
			CoverCuts:       st.CoverCuts,
			CliqueCuts:      st.CliqueCuts,
			PCBranches:      st.PseudocostBranches,
			FracBranches:    st.FractionalBranches,
		}
	}
	if src, ok := s.sched.(shardStatsSource); ok {
		if st := src.ShardStatsSnapshot(); st.Shards > 0 {
			resp.Shard = &ShardStatusMsg{
				Shards: st.Shards, Partitioner: st.Partitioner, Cycles: st.Cycles,
				Spanning: st.Spanning, Conflicts: st.Conflicts, Requeued: st.Requeued,
				ArbLaunched: st.ArbLaunched, ArbDeferred: st.ArbDeferred,
			}
		}
	}
	writeJSON(w, resp)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// handleTrace serves a Chrome trace-event JSON snapshot of the daemon's
// trace ring — download and load into Perfetto (ui.perfetto.dev) or
// chrome://tracing. 404 when the daemon runs with tracing disabled.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("GET only"))
		return
	}
	if s.tracer == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("httpapi: tracing disabled"))
		return
	}
	snap := s.tracer.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="tetrisched-trace.json"`)
	if err := trace.WriteChrome(w, snap); err != nil {
		// Headers already sent; the truncated body is the best we can do.
		_ = err
	}
}

// handleMetrics serves Prometheus text exposition format (version 0.0.4):
// cycle/decision counters, a per-cycle solve-latency histogram, queue
// gauges, and — when the scheduler exposes them — cumulative solver totals
// (B&B nodes, LP iterations, warm-hit rate). Metric names are documented in
// docs/OBSERVABILITY.md.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("tetrisched_cycles_total", "Scheduling cycles executed.", s.cycles)
	counter("tetrisched_decisions_total", "Job launch decisions returned.", s.decisions)
	counter("tetrisched_preemptions_total", "Running jobs preempted.", s.preemptions)
	counter("tetrisched_dropped_total", "Pending jobs dropped (no remaining value).", s.dropped)
	gauge("tetrisched_jobs_pending", "Jobs submitted but not running.", float64(len(s.jobs)-len(s.running)))
	gauge("tetrisched_jobs_running", "Jobs believed running.", float64(len(s.running)))
	gauge("tetrisched_cluster_nodes", "Cluster size (node ID universe).", float64(s.universe))

	writeHistogram(&b, "tetrisched_solve_latency_seconds",
		"Per-cycle MILP solver wall-clock.", s.solveHist)

	s.adm.writeMetrics(&b)

	if src, ok := s.sched.(solveStatsSource); ok {
		st := src.SolveStatsSnapshot()
		counter("tetrisched_solver_solves_total", "MILP solves across all cycles.", uint64(st.Solves))
		counter("tetrisched_solver_bb_nodes_total", "Branch-and-bound nodes explored.", uint64(st.Nodes))
		gauge("tetrisched_solver_bb_nodes_max", "Largest single-solve node count.", float64(st.MaxNodes))
		gauge("tetrisched_solver_workers", "Workers used by the most recent solve.", float64(st.Workers))
		counter("tetrisched_solver_warm_starts_total", "Solves seeded with the previous cycle's plan.", uint64(st.WarmStarts))
		counter("tetrisched_solver_lp_iterations_total", "Simplex pivots across all relaxations.", uint64(st.LPIters))
		counter("tetrisched_solver_lp_warm_hits_total", "Node LPs re-solved warm from a parent basis.", uint64(st.WarmLPs))
		counter("tetrisched_solver_lp_cold_starts_total", "LPs solved from scratch.", uint64(st.ColdLPs))
		counter("tetrisched_solver_decomposed_total", "Global solves split into independent components.", uint64(st.Decomposed))
		counter("tetrisched_solver_components_total", "Sub-MILPs solved across all decomposed solves.", uint64(st.Components))
		counter("tetrisched_solver_reuse_hits_total", "Component sub-solves replayed from the previous cycle.", uint64(st.ReuseHits))
		counter("tetrisched_solver_reuse_misses_total", "Fingerprinted components solved fresh.", uint64(st.ReuseMisses))
		gauge("tetrisched_solver_reuse_hit_rate", "Fraction of fingerprinted sub-solves served by replay.", st.ReuseHitRate())
		counter("tetrisched_solver_expr_cache_hits_total", "Pending-job STRL requests served from the expression cache.", uint64(st.ExprHits))
		counter("tetrisched_solver_expr_cache_misses_total", "Pending-job STRL requests generated fresh.", uint64(st.ExprMisses))
		counter("tetrisched_solver_compile_skips_total", "Batch jobs whose compilation was skipped by the compile cache.", uint64(st.CompileSkips))
		counter("tetrisched_solver_compile_jobs_total", "Batch jobs compiled into a MILP.", uint64(st.CompileJobs))
		gauge("tetrisched_solver_compile_skip_rate", "Fraction of batch jobs served by the compile cache.", st.CompileSkipRate())
		const genSec = "tetrisched_solver_generate_seconds_total"
		fmt.Fprintf(&b, "# HELP %s Cumulative STRL generation wall-clock.\n# TYPE %s counter\n%s %g\n",
			genSec, genSec, genSec, float64(st.GenerateNS)/1e9)
		const compSec = "tetrisched_solver_compile_seconds_total"
		fmt.Fprintf(&b, "# HELP %s Cumulative MILP compilation wall-clock.\n# TYPE %s counter\n%s %g\n",
			compSec, compSec, compSec, float64(st.CompileNS)/1e9)
		gauge("tetrisched_solver_lp_warm_hit_rate", "Fraction of node LPs served warm.", st.WarmHitRate())
		counter("tetrisched_solver_presolve_vars_fixed_total", "Variables fixed by presolve before branch-and-bound.", uint64(st.PresolveFixed))
		counter("tetrisched_solver_presolve_rows_dropped_total", "Constraint rows eliminated by presolve.", uint64(st.PresolveRows))
		counter("tetrisched_solver_presolve_cliques_merged_total", "Choose-at-most-one rows merged by clique domination.", uint64(st.PresolveCliques))
		counter("tetrisched_solver_presolve_rounds_total", "Presolve fixpoint rounds run.", uint64(st.PresolveRounds))
		const psSec = "tetrisched_solver_presolve_seconds_total"
		fmt.Fprintf(&b, "# HELP %s Cumulative presolve wall-clock.\n# TYPE %s counter\n%s %g\n",
			psSec, psSec, psSec, st.PresolveTime.Seconds())
		counter("tetrisched_solver_lp_factorizations_total", "Basis factorizations (sparse LU or dense fallback).", uint64(st.Factorizations))
		counter("tetrisched_solver_lp_eta_updates_total", "Forrest-Tomlin eta updates applied between refactorizations.", uint64(st.EtaUpdates))
		counter("tetrisched_solver_lp_dense_fallbacks_total", "LP scratches that abandoned sparse LU for the dense inverse.", uint64(st.DenseFallbacks))
		counter("tetrisched_solver_cut_rounds_total", "Root cutting-plane separation rounds that tightened a relaxation.", uint64(st.CutRounds))
		counter("tetrisched_solver_cover_cuts_total", "Knapsack cover cuts added at root nodes.", uint64(st.CoverCuts))
		counter("tetrisched_solver_clique_cuts_total", "Conflict clique cuts added at root nodes.", uint64(st.CliqueCuts))
		counter("tetrisched_solver_pseudocost_branches_total", "Branch decisions taken by learned pseudocosts.", uint64(st.PseudocostBranches))
		counter("tetrisched_solver_fractional_branches_total", "Branch decisions by the most-fractional fallback.", uint64(st.FractionalBranches))
	}

	if src, ok := s.sched.(shardStatsSource); ok {
		if st := src.ShardStatsSnapshot(); st.Shards > 0 {
			gauge("tetrisched_shard_shards", "Configured shard count (0 = monolithic).", float64(st.Shards))
			counter("tetrisched_shard_cycles_total", "Sharded global cycles executed.", uint64(st.Cycles))
			counter("tetrisched_shard_spanning_jobs_total", "Jobs routed to the gang arbitrator (demand spans shards).", uint64(st.Spanning))
			counter("tetrisched_shard_conflicts_total", "Commit-time cross-shard double-claims detected.", uint64(st.Conflicts))
			counter("tetrisched_shard_requeued_total", "Jobs requeued intact after losing a double-claim.", uint64(st.Requeued))
			counter("tetrisched_shard_arbitrator_launched_total", "Arbitrator jobs launched.", uint64(st.ArbLaunched))
			counter("tetrisched_shard_arbitrator_deferred_total", "Arbitrator jobs deferred or requeued intact.", uint64(st.ArbDeferred))
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// trimFloat renders a histogram bound the way Prometheus clients expect
// (no exponent for these magnitudes).
func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// writeHistogram renders one fixed-bucket histogram in Prometheus text
// exposition format.
func writeHistogram(b *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, trimFloat(ub), cum)
	}
	cum += h.counts[len(h.buckets)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
}
