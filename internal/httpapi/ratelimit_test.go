package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// rateDoor builds a front door with a swappable clock: the returned advance
// function moves the token-bucket clock forward without sleeping.
func rateDoor(t *testing.T, cfg AdmissionConfig) (*fakeSched, *httptest.Server, func(d time.Duration)) {
	t.Helper()
	f := newFakeSched()
	srv := NewServer(f, 16).SetAdmission(cfg)
	clock := time.Unix(1000, 0)
	srv.adm.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return f, ts, func(d time.Duration) { clock = clock.Add(d) }
}

// TestTenantRateLimitBurstAndRefill pins the token-bucket contract: a fresh
// bucket holds its full burst, an exhausted bucket answers 429 with reason
// tenant_rate naming the tenant, and elapsed time refills capacity at the
// configured rate up to the burst cap.
func TestTenantRateLimitBurstAndRefill(t *testing.T) {
	f, ts, advance := rateDoor(t, AdmissionConfig{
		Tenants: []TenantConfig{{Name: "a", Quota: -1, Rate: 2, RateBurst: 4}},
	})

	// The fresh bucket covers exactly the burst.
	if resp := postSubmit(t, ts.URL, batchBody("a", 0, 4)); resp.StatusCode != 202 {
		t.Fatalf("burst batch = %d, want 202", resp.StatusCode)
	}
	// One more job at the same instant exceeds the (now empty) bucket.
	resp := postSubmit(t, ts.URL, batchBody("a", 10, 1))
	if resp.StatusCode != 429 {
		t.Fatalf("post-burst batch = %d, want 429", resp.StatusCode)
	}
	var body struct {
		Error      string `json:"error"`
		Tenant     string `json:"tenant"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "tenant_rate" || body.Tenant != "a" {
		t.Errorf("429 body = %+v, want tenant_rate for tenant a", body)
	}
	// Deficit 1 token at 2 tokens/s refills within a second.
	if body.RetryAfter != 1 {
		t.Errorf("retry_after_seconds = %d, want 1 (ceil(1 token / 2 per s))", body.RetryAfter)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After header = %q, want \"1\"", got)
	}

	// 2 seconds refill 4 tokens; the cap keeps idling from exceeding burst.
	advance(2 * time.Second)
	if resp := postSubmit(t, ts.URL, batchBody("a", 20, 4)); resp.StatusCode != 202 {
		t.Fatalf("refilled batch = %d, want 202", resp.StatusCode)
	}
	advance(time.Hour)
	if resp := postSubmit(t, ts.URL, batchBody("a", 30, 5)); resp.StatusCode != 429 {
		t.Fatalf("over-burst batch after idle = %d, want 429 (cap holds)", resp.StatusCode)
	}
	if len(f.order) != 0 {
		t.Fatalf("jobs reached the scheduler before any cycle: %d", len(f.order))
	}
}

// TestTenantRateLimitBatchAtomicity: a batch larger than the available
// tokens is rejected whole — it spends nothing, so a subsequent batch that
// fits the untouched balance is admitted. A 400 (duplicate) must also leave
// the bucket untouched: validation failures never burn budget.
func TestTenantRateLimitBatchAtomicity(t *testing.T) {
	_, ts, _ := rateDoor(t, AdmissionConfig{
		Tenants: []TenantConfig{{Name: "a", Quota: -1, Rate: 1, RateBurst: 2}},
	})

	// 3 > 2 tokens: rejected whole.
	if resp := postSubmit(t, ts.URL, batchBody("a", 0, 3)); resp.StatusCode != 429 {
		t.Fatalf("oversized batch = %d, want 429", resp.StatusCode)
	}
	// A duplicate-ID batch fails validation with 400 after the rate check;
	// it must not spend the 2 tokens it asked for.
	dup := []byte(`[{"id":7,"tenant":"a","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1},` +
		`{"id":7,"tenant":"a","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}]`)
	if resp := postSubmit(t, ts.URL, dup); resp.StatusCode != 400 {
		t.Fatalf("duplicate batch = %d, want 400", resp.StatusCode)
	}
	// Both rejections left the balance intact: the full burst still fits.
	if resp := postSubmit(t, ts.URL, batchBody("a", 10, 2)); resp.StatusCode != 202 {
		t.Fatalf("fitting batch = %d, want 202 (earlier rejections must not spend tokens)", resp.StatusCode)
	}
}

// TestTenantRateLimitScopedPerTenant: one tenant exhausting its bucket does
// not throttle an unlimited tenant, and the long Retry-After of a slow
// bucket is sized to its own deficit.
func TestTenantRateLimitScopedPerTenant(t *testing.T) {
	_, ts, _ := rateDoor(t, AdmissionConfig{
		Tenants: []TenantConfig{{Name: "slow", Quota: -1, Rate: 0.5, RateBurst: 1}},
	})
	if resp := postSubmit(t, ts.URL, batchBody("slow", 0, 1)); resp.StatusCode != 202 {
		t.Fatalf("first slow job = %d, want 202", resp.StatusCode)
	}
	resp := postSubmit(t, ts.URL, batchBody("slow", 1, 1))
	if resp.StatusCode != 429 {
		t.Fatalf("second slow job = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (1 token at 0.5/s)", got)
	}
	// An unlisted tenant has no bucket and sails through.
	for i := 0; i < 3; i++ {
		if resp := postSubmit(t, ts.URL, batchBody("free", 100+10*i, 5)); resp.StatusCode != 202 {
			t.Fatalf("unlimited tenant batch %d = %d, want 202", i, resp.StatusCode)
		}
	}
}

// TestTenantRateLimitObservability: rate rejections surface in /v1/status
// (rate, burst, rejected_rate) and as the per-tenant
// tetrisched_admission_rejected_rate_total counter in /metrics.
func TestTenantRateLimitObservability(t *testing.T) {
	_, ts, _ := rateDoor(t, AdmissionConfig{
		Tenants: []TenantConfig{{Name: "a", Quota: -1, Rate: 1, RateBurst: 1}},
	})
	postSubmit(t, ts.URL, batchBody("a", 0, 1)) // spends the bucket
	for i := 0; i < 3; i++ {
		if resp := postSubmit(t, ts.URL, batchBody("a", 10+i, 1)); resp.StatusCode != 429 {
			t.Fatalf("exhausted batch = %d, want 429", resp.StatusCode)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Admission *AdmissionStatusMsg `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Admission == nil {
		t.Fatal("status has no admission block")
	}
	var found bool
	for _, tn := range status.Admission.Tenants {
		if tn.Name != "a" {
			continue
		}
		found = true
		if tn.Rate != 1 || tn.RateBurst != 1 {
			t.Errorf("status rate/burst = %v/%v, want 1/1", tn.Rate, tn.RateBurst)
		}
		if tn.RejectedRate != 3 {
			t.Errorf("status rejected_rate = %d, want 3", tn.RejectedRate)
		}
	}
	if !found {
		t.Fatal("tenant a missing from admission status")
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(buf), `tetrisched_admission_rejected_rate_total{tenant="a"} 3`) {
		t.Errorf("metrics missing rejected-rate counter for tenant a:\n%s", buf)
	}
}

// TestTenantRateLimitStreamVerdicts: the NDJSON stream mode reports
// tenant_rate per line with the deficit-sized retry_after_seconds, and a
// line for an unthrottled tenant in the same stream is unaffected.
func TestTenantRateLimitStreamVerdicts(t *testing.T) {
	_, ts, _ := rateDoor(t, AdmissionConfig{
		Tenants: []TenantConfig{{Name: "a", Quota: -1, Rate: 0.25, RateBurst: 1}},
	})
	lines := `{"id":0,"tenant":"a","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}
{"id":1,"tenant":"a","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}
{"id":2,"tenant":"b","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}
`
	resp, err := ts.Client().Post(ts.URL+"/v1/submit", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(resp.Body)
	var verdicts []struct {
		ID         int    `json:"id"`
		Status     string `json:"status"`
		Reason     string `json:"reason"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	for _, line := range strings.Split(strings.TrimSpace(string(buf)), "\n") {
		var v struct {
			ID         int    `json:"id"`
			Status     string `json:"status"`
			Reason     string `json:"reason"`
			RetryAfter int    `json:"retry_after_seconds"`
		}
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", line, err)
		}
		verdicts = append(verdicts, v)
	}
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(verdicts))
	}
	if verdicts[0].Status != "accepted" {
		t.Errorf("line 0 = %+v, want accepted (burst token)", verdicts[0])
	}
	if verdicts[1].Status != "rejected" || verdicts[1].Reason != "tenant_rate" {
		t.Errorf("line 1 = %+v, want rejected/tenant_rate", verdicts[1])
	}
	if verdicts[1].RetryAfter != 4 {
		t.Errorf("line 1 retry_after_seconds = %d, want 4 (1 token at 0.25/s)", verdicts[1].RetryAfter)
	}
	if verdicts[2].Status != "accepted" {
		t.Errorf("line 2 = %+v, want accepted (tenant b has no bucket)", verdicts[2])
	}
}

// TestRetryAfterFloorAllPaths pins the Retry-After floor: every 429 path —
// queue_full, tenant_quota, tenant_rate, and the NDJSON per-line verdicts —
// must advise at least 1 second even when the configured advisory is
// sub-second and the rate deficit rounds to zero. Retry-After: 0 invites an
// immediate synchronized retry stampede, the opposite of backpressure.
func TestRetryAfterFloorAllPaths(t *testing.T) {
	_, ts, _ := rateDoor(t, AdmissionConfig{
		MaxQueue:   3,
		RetryAfter: 50 * time.Millisecond, // sub-second: must still clamp to 1
		Tenants: []TenantConfig{
			{Name: "q", Quota: 1},
			// 1000 tokens/s: a 1-token deficit refills in 1ms; the advisory
			// must still round up to a whole second, never down to 0.
			{Name: "r", Quota: -1, Rate: 1000, RateBurst: 1},
		},
	})
	assert429Floor := func(label string, status int, header string, retryAfter int) {
		t.Helper()
		if status != 429 {
			t.Fatalf("%s: status = %d, want 429", label, status)
		}
		if header == "" || header == "0" {
			t.Errorf("%s: Retry-After header = %q, want ≥ 1", label, header)
		}
		if retryAfter < 1 {
			t.Errorf("%s: retry_after_seconds = %d, want ≥ 1", label, retryAfter)
		}
	}
	decode := func(resp *http.Response) (string, int) {
		t.Helper()
		defer resp.Body.Close()
		var body struct {
			Error      string `json:"error"`
			RetryAfter int    `json:"retry_after_seconds"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Error, body.RetryAfter
	}

	// tenant_rate: burst of 1 spent, deficit refills in 1ms.
	if resp := postSubmit(t, ts.URL, batchBody("r", 0, 1)); resp.StatusCode != 202 {
		t.Fatalf("burst spend = %d, want 202", resp.StatusCode)
	}
	resp := postSubmit(t, ts.URL, batchBody("r", 1, 1))
	reason, retry := decode(resp)
	assert429Floor("rate", resp.StatusCode, resp.Header.Get("Retry-After"), retry)
	if reason != "tenant_rate" {
		t.Errorf("rate rejection reason = %q", reason)
	}

	// tenant_quota: quota 1 with one job queued.
	if resp := postSubmit(t, ts.URL, batchBody("q", 10, 1)); resp.StatusCode != 202 {
		t.Fatalf("quota fill = %d, want 202", resp.StatusCode)
	}
	resp = postSubmit(t, ts.URL, batchBody("q", 11, 1))
	reason, retry = decode(resp)
	assert429Floor("quota", resp.StatusCode, resp.Header.Get("Retry-After"), retry)
	if reason != "tenant_quota" {
		t.Errorf("quota rejection reason = %q", reason)
	}

	// queue_full: 2 of 3 slots hold the jobs admitted above; one more fills
	// the queue and the next submission overflows.
	resp = postSubmit(t, ts.URL, batchBody("other", 20, 1))
	if resp.StatusCode != 202 {
		t.Fatalf("fill to capacity = %d, want 202", resp.StatusCode)
	}
	resp = postSubmit(t, ts.URL, batchBody("other", 30, 1))
	reason, retry = decode(resp)
	assert429Floor("full", resp.StatusCode, resp.Header.Get("Retry-After"), retry)
	if reason != "queue_full" {
		t.Errorf("full rejection reason = %q", reason)
	}

	// NDJSON: a rejected line's verdict carries the same floor.
	line := `{"id":40,"tenant":"r","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}` + "\n"
	sresp, err := ts.Client().Post(ts.URL+"/v1/submit", "application/x-ndjson", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	buf, _ := io.ReadAll(sresp.Body)
	var v struct {
		Status     string `json:"status"`
		Reason     string `json:"reason"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(buf))), &v); err != nil {
		t.Fatalf("bad verdict %q: %v", buf, err)
	}
	if v.Status != "rejected" {
		t.Fatalf("stream verdict = %+v, want rejected (queue full)", v)
	}
	if v.RetryAfter < 1 {
		t.Errorf("stream retry_after_seconds = %d, want ≥ 1", v.RetryAfter)
	}
}
