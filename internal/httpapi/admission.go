package httpapi

// Multi-tenant admission: the daemon's production front door. Jobs submitted
// through POST /v1/submit do not go straight into the scheduler — they land
// in a bounded ingress queue with per-tenant accounting and are drained into
// the scheduler's pending queue by a weighted-fair dequeue at cycle time.
// The design follows the arktos global-scheduler admission menu (§2.5.7
// "priority and fair scheduling to avoid attack"): per-tenant quotas bound
// how much queue an adversarial tenant can occupy, weights set the share of
// scheduler admissions each tenant receives under saturation, and the total
// queue bound turns overload into explicit 429 + Retry-After backpressure
// instead of unbounded memory.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"tetrisched/internal/workload"
)

// DefaultTenant is the tenant name assumed when a submission carries none.
const DefaultTenant = "default"

// TenantConfig sets one tenant's admission parameters.
type TenantConfig struct {
	Name string `json:"name"`
	// Weight is the tenant's fair-share weight: under saturating load,
	// admitted-job shares converge to the weight ratio. Values <= 0 mean 1.
	Weight float64 `json:"weight"`
	// Quota bounds how many of the tenant's jobs may sit in the ingress
	// queue at once. 0 rejects every submission from the tenant (hard
	// lockout); negative means bounded only by the global queue size.
	Quota int `json:"quota"`
	// Rate is the tenant's sustained submission rate in jobs/second,
	// enforced by a token bucket on /v1/submit: a batch that exceeds the
	// available tokens is rejected whole with 429 and a Retry-After sized to
	// the deficit. <= 0 (the default) disables rate limiting.
	Rate float64 `json:"rate"`
	// RateBurst is the token bucket's capacity — the largest instantaneous
	// burst the tenant may submit after idling. <= 0 defaults to
	// max(1, ceil(Rate)). Ignored unless Rate > 0.
	RateBurst int `json:"burst"`
}

// AdmissionConfig configures the ingress queue.
type AdmissionConfig struct {
	// MaxQueue bounds the total number of queued jobs across all tenants;
	// <= 0 selects the default (65536). Submissions that would exceed it are
	// rejected with 429.
	MaxQueue int
	// Burst caps how many queued jobs one scheduling cycle drains into the
	// scheduler; <= 0 selects the default (1024).
	Burst int
	// Tenants lists explicitly configured tenants; any other tenant name
	// gets DefaultWeight/DefaultQuota.
	Tenants []TenantConfig
	// DefaultWeight is the weight for unlisted tenants (<= 0 means 1).
	DefaultWeight float64
	// DefaultQuota is the quota for unlisted tenants (0 means unlimited
	// here — lockout must be explicit per tenant).
	DefaultQuota int
	// RetryAfter is the advisory Retry-After duration attached to 429
	// responses; <= 0 selects 1s.
	RetryAfter time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 65536
	}
	if c.Burst <= 0 {
		c.Burst = 1024
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.DefaultQuota == 0 {
		c.DefaultQuota = -1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// rejectReason classifies why admission refused a submission.
type rejectReason int

const (
	rejectNone    rejectReason = iota
	rejectFull                 // global queue at MaxQueue
	rejectQuota                // tenant at its quota (or quota 0: locked out)
	rejectRate                 // tenant's token bucket exhausted
	rejectInvalid              // duplicate job ID in batch or ingress queue
)

func (r rejectReason) String() string {
	switch r {
	case rejectFull:
		return "queue_full"
	case rejectQuota:
		return "tenant_quota"
	case rejectRate:
		return "tenant_rate"
	case rejectInvalid:
		return "invalid"
	}
	return "none"
}

// tenantState is one tenant's queue and accounting.
type tenantState struct {
	name   string
	weight float64
	quota  int // < 0: unlimited

	queue []*workload.Job // FIFO; queue[head:] are live
	head  int

	// vt is the tenant's virtual time (jobs admitted / weight) for
	// start-time fair queuing; dequeue always serves the smallest vt.
	vt float64

	// Token bucket (rate <= 0: unlimited). tokens refills at rate/second up
	// to burstCap; a batch spends one token per job, atomically.
	rate     float64
	burstCap float64
	tokens   float64
	lastFill time.Time

	// Batch-scan scratch: marks this tenant as seen in the current
	// validation pass without a per-request map (batchEpoch is compared to
	// the admission-wide epoch counter).
	batchEpoch uint64
	batchCount int

	// Counters (see docs/OBSERVABILITY.md).
	enqueued      uint64 // jobs accepted into the ingress queue
	admitted      uint64 // jobs drained into the scheduler
	rejectedFull  uint64
	rejectedQuota uint64
	rejectedRate  uint64 // rejected by the tenant's token bucket
	rejectedDup   uint64 // dropped at drain: ID already known to the scheduler
}

func (t *tenantState) depth() int { return len(t.queue) - t.head }

func (t *tenantState) push(j *workload.Job) {
	t.queue = append(t.queue, j)
}

func (t *tenantState) pop() *workload.Job {
	j := t.queue[t.head]
	t.queue[t.head] = nil
	t.head++
	// Compact once the dead prefix dominates so the backing array cannot
	// grow without bound across enqueue/dequeue cycles.
	if t.head > 64 && t.head*2 >= len(t.queue) {
		n := copy(t.queue, t.queue[t.head:])
		t.queue = t.queue[:n]
		t.head = 0
	}
	return j
}

// admitLatencyBuckets are the /metrics histogram bounds for submit-request
// handling latency, in seconds. The hot path is tens of microseconds; the
// tail covers lock convoys under saturation.
var admitLatencyBuckets = []float64{25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3}

// admission is the ingress queue. It has its own mutex so the submit hot
// path never contends with the scheduler lock (s.mu), which /v1/cycle holds
// for the full MILP solve; the two locks are never held together except in
// drain's caller (which takes adm.mu strictly before s.mu is acquired).
type admission struct {
	mu      sync.Mutex
	cfg     AdmissionConfig
	tenants map[string]*tenantState
	queued  map[int]struct{} // job IDs currently in the ingress queue
	total   int              // queued jobs across all tenants
	seq     int64            // monotone admission sequence, stamped at drain
	vtFloor float64          // fair-queuing floor: vt of the last-served tenant
	epoch   uint64           // batch-validation epoch (see tenantState.batchEpoch)
	touched []*tenantState   // reusable scratch for per-batch tenant groups
	latency *histogram       // submit-request handling latency
	now     func() time.Time // clock; swapped out by token-bucket tests
}

func newAdmission(cfg AdmissionConfig) *admission {
	cfg = cfg.withDefaults()
	a := &admission{
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
		queued:  make(map[int]struct{}),
		latency: newHistogram(admitLatencyBuckets),
		now:     time.Now,
	}
	for _, tc := range cfg.Tenants {
		a.tenant(tc.Name).configure(tc, cfg)
	}
	return a
}

func (t *tenantState) configure(tc TenantConfig, cfg AdmissionConfig) {
	t.weight = tc.Weight
	if t.weight <= 0 {
		t.weight = cfg.DefaultWeight
	}
	t.quota = tc.Quota
	t.rate = tc.Rate
	if t.rate > 0 {
		t.burstCap = float64(tc.RateBurst)
		if tc.RateBurst <= 0 {
			t.burstCap = math.Max(1, math.Ceil(t.rate))
		}
		t.tokens = t.burstCap // a fresh bucket starts full
		t.lastFill = time.Time{}
	}
}

// reconfigure applies a new tenant list to a live admission door. Unlike
// construction it preserves accrued state: queued jobs, fair-queuing virtual
// times, and token balances all survive — limits move, history does not.
// Tenants dropped from the list fall back to the door defaults. Without the
// balance carry-over a reload would hand every rated tenant a fresh full
// bucket, so a tenant could launder unlimited throughput through repeated
// config reloads; and resetting vt would let it replay bursts the fair
// dequeue already charged it for.
func (a *admission) reconfigure(tenants []TenantConfig) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cfg.Tenants = tenants
	listed := make(map[string]bool, len(tenants))
	for _, tc := range tenants {
		name := tc.Name
		if name == "" {
			name = DefaultTenant
		}
		listed[name] = true
		a.tenant(name).reconfigure(tc, a.cfg)
	}
	for name, ts := range a.tenants {
		if !listed[name] {
			ts.weight = a.cfg.DefaultWeight
			ts.quota = a.cfg.DefaultQuota
			ts.rate = 0
		}
	}
}

// reconfigure is configure for a tenant that already has history: the new
// limits apply, but a still-rated tenant keeps its spent token balance
// (clamped to the new burst cap) and refill anchor instead of starting a
// fresh full bucket. vt is untouched — the reactivation clamp in tryEnqueue
// already prevents idle credit banking, reload or not.
func (t *tenantState) reconfigure(tc TenantConfig, cfg AdmissionConfig) {
	hadRate := t.rate > 0
	tokens, lastFill := t.tokens, t.lastFill
	t.configure(tc, cfg)
	if t.rate > 0 && hadRate {
		t.tokens = math.Min(tokens, t.burstCap)
		t.lastFill = lastFill
	}
}

// refill credits the token bucket for the time elapsed since the last refill.
// The first call after configuration only anchors the clock — the bucket was
// created full.
func (t *tenantState) refill(now time.Time) {
	if t.lastFill.IsZero() {
		t.lastFill = now
		return
	}
	if dt := now.Sub(t.lastFill).Seconds(); dt > 0 {
		t.tokens = math.Min(t.burstCap, t.tokens+dt*t.rate)
		t.lastFill = now
	}
}

// tenant returns (creating if needed) the state for name. Callers hold a.mu
// (or are in single-threaded setup).
func (a *admission) tenant(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	ts, ok := a.tenants[name]
	if !ok {
		ts = &tenantState{name: name, weight: a.cfg.DefaultWeight, quota: a.cfg.DefaultQuota}
		a.tenants[name] = ts
	}
	return ts
}

// enqueueOutcome reports one tryEnqueue call's result.
type enqueueOutcome struct {
	reason rejectReason
	// tenant is the tenant that triggered a quota or rate rejection (or the
	// sole tenant of a single-job enqueue).
	tenant string
	// badIndex is the batch index of the duplicate job on rejectInvalid.
	badIndex int
	// retryAfter overrides the advisory Retry-After seconds when > 0; a rate
	// rejection sizes it to when the bucket will have refilled enough.
	retryAfter int
}

// tryEnqueue atomically admits all jobs into the ingress queue or none of
// them: capacity, per-tenant quotas, and duplicate IDs (within the batch and
// against already-queued jobs) are all checked before the first job lands.
// Each job's Tenant field must already be normalized (non-empty).
func (a *admission) tryEnqueue(jobs []*workload.Job) enqueueOutcome {
	if len(jobs) == 0 {
		return enqueueOutcome{reason: rejectNone}
	}
	a.mu.Lock()
	defer a.mu.Unlock()

	if a.total+len(jobs) > a.cfg.MaxQueue {
		for _, ts := range a.groupLocked(jobs) {
			ts.rejectedFull += uint64(ts.batchCount)
		}
		return enqueueOutcome{reason: rejectFull}
	}
	grouped := a.groupLocked(jobs)
	for _, ts := range grouped {
		if ts.quota == 0 || (ts.quota > 0 && ts.depth()+ts.batchCount > ts.quota) {
			for _, t2 := range grouped {
				t2.rejectedQuota += uint64(t2.batchCount)
			}
			return enqueueOutcome{reason: rejectQuota, tenant: ts.name}
		}
	}
	// Token buckets: refill every rated tenant the batch touches, then check
	// all of them before any token is spent — the batch is admitted or
	// rejected as a unit, like quota. Spending happens only after the dup
	// scan succeeds, so a 400 never burns the tenant's budget.
	var rateNow time.Time
	for _, ts := range grouped {
		if ts.rate <= 0 {
			continue
		}
		if rateNow.IsZero() {
			rateNow = a.now()
		}
		ts.refill(rateNow)
		if float64(ts.batchCount) > ts.tokens+1e-9 {
			for _, t2 := range grouped {
				t2.rejectedRate += uint64(t2.batchCount)
			}
			deficit := float64(ts.batchCount) - ts.tokens
			retry := int(math.Ceil(deficit / ts.rate))
			if retry < 1 {
				retry = 1
			}
			return enqueueOutcome{reason: rejectRate, tenant: ts.name, retryAfter: retry}
		}
	}
	// Dup scan: insert IDs as we go so in-batch duplicates collide too, and
	// roll back on failure — the single long-lived map does double duty
	// without per-request map allocation.
	for i, j := range jobs {
		if _, dup := a.queued[j.ID]; dup {
			for _, k := range jobs[:i] {
				delete(a.queued, k.ID)
			}
			return enqueueOutcome{reason: rejectInvalid, badIndex: i, tenant: j.Tenant}
		}
		a.queued[j.ID] = struct{}{}
	}
	for _, ts := range grouped {
		if ts.rate > 0 {
			ts.tokens = math.Max(0, ts.tokens-float64(ts.batchCount))
		}
	}
	for _, j := range jobs {
		ts := a.tenants[j.Tenant]
		if ts.depth() == 0 {
			// (Re)activation: inherit the fair-queuing floor so an idle
			// tenant cannot bank credit and then monopolize the dequeue.
			if ts.vt < a.vtFloor {
				ts.vt = a.vtFloor
			}
		}
		ts.push(j)
		ts.enqueued++
	}
	a.total += len(jobs)
	return enqueueOutcome{reason: rejectNone, tenant: jobs[0].Tenant}
}

// groupLocked tallies jobs per tenant into the tenants' batch-scratch fields
// and returns the touched tenant states (reused slice; valid until the next
// call). Caller holds a.mu.
func (a *admission) groupLocked(jobs []*workload.Job) []*tenantState {
	a.epoch++
	a.touched = a.touched[:0]
	for _, j := range jobs {
		ts := a.tenant(j.Tenant)
		if ts.batchEpoch != a.epoch {
			ts.batchEpoch = a.epoch
			ts.batchCount = 0
			a.touched = append(a.touched, ts)
		}
		ts.batchCount++
	}
	return a.touched
}

// drain removes up to max jobs from the ingress queue in weighted-fair order
// and stamps each with its admission sequence number. The returned slice is
// freshly allocated (the scheduler side retains the jobs anyway).
//
// Fairness is start-time fair queuing: each tenant carries a virtual time
// advanced by 1/weight per admitted job, and drain always serves the active
// tenant with the smallest virtual time. Under saturation the admitted-job
// shares converge to the weight ratio; an idle tenant's vt is floored on
// re-activation so bursts cannot claim retroactive credit.
func (a *admission) drain(max int) []*workload.Job {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.total == 0 || max <= 0 {
		return nil
	}
	if max > a.total {
		max = a.total
	}
	out := make([]*workload.Job, 0, max)
	for len(out) < max {
		var best *tenantState
		for _, ts := range a.tenants {
			if ts.depth() == 0 {
				continue
			}
			if best == nil || ts.vt < best.vt || (ts.vt == best.vt && ts.name < best.name) {
				best = ts
			}
		}
		if best == nil {
			break
		}
		a.vtFloor = best.vt
		j := best.pop()
		delete(a.queued, j.ID)
		a.seq++
		j.AdmitSeq = a.seq
		best.vt += 1 / best.weight
		best.admitted++
		a.total--
		out = append(out, j)
	}
	return out
}

// noteDupDrop records a job that survived enqueue but turned out to be a
// duplicate of an already-admitted ID at drain time (the scheduler-side
// check lives outside adm.mu so the submit path never touches s.mu).
func (a *admission) noteDupDrop(tenant string) {
	a.mu.Lock()
	a.tenant(tenant).rejectedDup++
	a.tenant(tenant).admitted--
	a.mu.Unlock()
}

func (a *admission) observeLatency(d time.Duration) {
	a.mu.Lock()
	a.latency.observe(d.Seconds())
	a.mu.Unlock()
}

// retryAfterSeconds is the advisory client backoff attached to 429s,
// rounded up to whole seconds (the Retry-After header unit).
func (a *admission) retryAfterSeconds() int {
	s := int((a.cfg.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// advisoryRetry resolves one rejection's Retry-After seconds: the outcome's
// deficit-sized override when present, else the configured default — always
// clamped to ≥ 1. Every 429 writer goes through here: an advisory of 0 tells
// clients to retry immediately, which under overload synchronizes the whole
// fleet into a retry stampede at exactly the moment the queue can least
// absorb one.
func (a *admission) advisoryRetry(out enqueueOutcome) int {
	retry := a.retryAfterSeconds()
	if out.retryAfter > 0 {
		retry = out.retryAfter
	}
	if retry < 1 {
		retry = 1
	}
	return retry
}

// TenantStatusMsg is one tenant's admission accounting in /v1/status.
type TenantStatusMsg struct {
	Name          string  `json:"name"`
	Weight        float64 `json:"weight"`
	Quota         int     `json:"quota"`
	Rate          float64 `json:"rate,omitempty"`
	RateBurst     float64 `json:"burst,omitempty"`
	Queued        int     `json:"queued"`
	Enqueued      uint64  `json:"enqueued"`
	Admitted      uint64  `json:"admitted"`
	RejectedFull  uint64  `json:"rejected_full"`
	RejectedQuota uint64  `json:"rejected_quota"`
	RejectedRate  uint64  `json:"rejected_rate"`
	RejectedDup   uint64  `json:"rejected_dup"`
}

// AdmissionStatusMsg is the admission block of /v1/status.
type AdmissionStatusMsg struct {
	Queued   int               `json:"queued"`
	MaxQueue int               `json:"max_queue"`
	Burst    int               `json:"burst"`
	Tenants  []TenantStatusMsg `json:"tenants,omitempty"`
}

// writeMetrics renders the admission metrics in Prometheus text format:
// queue depth (total and per tenant), per-tenant admitted/enqueued/rejected
// counters, and the submit-request latency histogram. Metric names are
// documented in docs/OBSERVABILITY.md.
func (a *admission) writeMetrics(b *strings.Builder) {
	a.mu.Lock()
	defer a.mu.Unlock()

	fmt.Fprintf(b, "# HELP tetrisched_admission_queue_depth Jobs in the ingress queue.\n# TYPE tetrisched_admission_queue_depth gauge\n")
	fmt.Fprintf(b, "tetrisched_admission_queue_depth %d\n", a.total)
	fmt.Fprintf(b, "# HELP tetrisched_admission_queue_capacity Ingress queue bound (MaxQueue).\n# TYPE tetrisched_admission_queue_capacity gauge\n")
	fmt.Fprintf(b, "tetrisched_admission_queue_capacity %d\n", a.cfg.MaxQueue)

	names := make([]string, 0, len(a.tenants))
	for name := range a.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	perTenant := func(metric, help, typ string, v func(*tenantState) uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		for _, name := range names {
			fmt.Fprintf(b, "%s{tenant=%q} %d\n", metric, name, v(a.tenants[name]))
		}
	}
	perTenant("tetrisched_admission_tenant_queued", "Jobs a tenant has in the ingress queue.", "gauge",
		func(t *tenantState) uint64 { return uint64(t.depth()) })
	perTenant("tetrisched_admission_enqueued_total", "Jobs accepted into the ingress queue.", "counter",
		func(t *tenantState) uint64 { return t.enqueued })
	perTenant("tetrisched_admission_admitted_total", "Jobs drained into the scheduler by the weighted-fair dequeue.", "counter",
		func(t *tenantState) uint64 { return t.admitted })
	perTenant("tetrisched_admission_rejected_full_total", "Jobs rejected because the ingress queue was full (429).", "counter",
		func(t *tenantState) uint64 { return t.rejectedFull })
	perTenant("tetrisched_admission_rejected_quota_total", "Jobs rejected by tenant quota (429).", "counter",
		func(t *tenantState) uint64 { return t.rejectedQuota })
	perTenant("tetrisched_admission_rejected_rate_total", "Jobs rejected by the tenant's token-bucket rate limit (429).", "counter",
		func(t *tenantState) uint64 { return t.rejectedRate })
	perTenant("tetrisched_admission_rejected_dup_total", "Queued jobs dropped at drain as duplicates of admitted IDs.", "counter",
		func(t *tenantState) uint64 { return t.rejectedDup })

	writeHistogram(b, "tetrisched_admission_latency_seconds",
		"Submit-request handling wall-clock (decode + admission verdict).", a.latency)
}

// status snapshots the admission state for /v1/status.
func (a *admission) status() *AdmissionStatusMsg {
	a.mu.Lock()
	defer a.mu.Unlock()
	msg := &AdmissionStatusMsg{Queued: a.total, MaxQueue: a.cfg.MaxQueue, Burst: a.cfg.Burst}
	for _, ts := range a.tenants {
		msg.Tenants = append(msg.Tenants, TenantStatusMsg{
			Name: ts.name, Weight: ts.weight, Quota: ts.quota, Queued: ts.depth(),
			Rate: ts.rate, RateBurst: ts.burstCap,
			Enqueued: ts.enqueued, Admitted: ts.admitted,
			RejectedFull: ts.rejectedFull, RejectedQuota: ts.rejectedQuota,
			RejectedRate: ts.rejectedRate, RejectedDup: ts.rejectedDup,
		})
	}
	sort.Slice(msg.Tenants, func(i, j int) bool { return msg.Tenants[i].Name < msg.Tenants[j].Name })
	return msg
}
