package httpapi

// POST /v1/submit — the batched, multi-tenant submission endpoint. Two wire
// modes share the path, selected by Content-Type:
//
//   - application/json (default): the body is a JSON array of job objects.
//     Admission is atomic — every job is validated and the whole batch is
//     enqueued, or the batch is rejected and the ingress queue is untouched.
//     One invalid job fails the batch with 400 and a per-item error body.
//   - application/x-ndjson: the body is a stream of newline-delimited job
//     objects, admitted line by line; the response streams one NDJSON
//     verdict per input line. Streaming trades batch atomicity for
//     constant-memory ingestion of arbitrarily long submissions.
//
// Backpressure is explicit: when the ingress queue (or the tenant's quota)
// cannot take the submission, the batch mode answers 429 with a Retry-After
// header and the stream mode emits per-line "rejected" verdicts. The daemon
// never buffers beyond the configured queue bound.
//
// The handler is the daemon's hot path and is written allocation-consciously:
// request bodies decode into pooled scratch buffers, responses are built by
// appending to a pooled byte slice (no encoding/json on the success path),
// and tenant accounting reuses one long-lived map (no per-request map churn).
// The only per-job allocations are the workload.Job values themselves, which
// the scheduler retains.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tetrisched/internal/trace"
	"tetrisched/internal/workload"
)

// maxSubmitBody bounds one batch request body; streams are unbounded in
// total size but bounded per line.
const maxSubmitBody = 16 << 20

// maxStreamLine bounds one NDJSON line.
const maxStreamLine = 1 << 20

// submitScratch is the pooled per-request working set of the submit path.
type submitScratch struct {
	body []byte
	msgs []JobMsg
	jobs []*workload.Job
	resp []byte
}

var submitPool = sync.Pool{New: func() interface{} { return new(submitScratch) }}

func getScratch() *submitScratch {
	sc := submitPool.Get().(*submitScratch)
	sc.msgs = sc.msgs[:0]
	sc.jobs = sc.jobs[:0]
	sc.resp = sc.resp[:0]
	return sc
}

func putScratch(sc *submitScratch) {
	if cap(sc.body) > maxSubmitBody/4 || cap(sc.resp) > maxSubmitBody/4 {
		return // drop oversized outliers instead of pinning them in the pool
	}
	submitPool.Put(sc)
}

// readBody reads r into buf (reused across requests), enforcing the body
// limit.
func readBody(buf []byte, r io.Reader) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
		if len(buf) > maxSubmitBody {
			return buf, fmt.Errorf("httpapi: request body exceeds %d bytes", maxSubmitBody)
		}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	t0 := time.Now()
	if ct := r.Header.Get("Content-Type"); ct == "application/x-ndjson" {
		s.submitStream(w, r)
	} else {
		s.submitBatch(w, r, t0)
	}
	s.adm.observeLatency(time.Since(t0))
}

// submitBatch handles the JSON-array mode.
func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request, t0 time.Time) {
	sc := getScratch()
	defer putScratch(sc)
	sp := s.tracer.Begin("admit", "submit.batch")

	var err error
	sc.body, err = readBody(sc.body, r.Body)
	if err != nil {
		sp.End(trace.S("error", err.Error()))
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := json.Unmarshal(sc.body, &sc.msgs); err != nil {
		sp.End(trace.S("error", err.Error()))
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: batch must be a JSON array of jobs: %v", err))
		return
	}
	if len(sc.msgs) == 0 {
		sp.End(trace.S("error", "empty batch"))
		writeErr(w, http.StatusBadRequest, fmt.Errorf("httpapi: empty batch"))
		return
	}

	// Validate every item before anything is enqueued (atomic semantics).
	// badAt remembers the first conversion failure; the per-item error body
	// is built from a second pass so the common all-valid path does no
	// error-string work at all.
	badAt, badErr := -1, error(nil)
	for i := range sc.msgs {
		j, err := sc.msgs[i].ToJob()
		if err != nil {
			badAt, badErr = i, err
			break
		}
		if j.Tenant == "" {
			j.Tenant = DefaultTenant
		}
		sc.jobs = append(sc.jobs, j)
	}
	if badAt >= 0 {
		sp.End(trace.S("error", badErr.Error()), trace.I("jobs", int64(len(sc.msgs))))
		s.writeBatchErrors(w, sc, badAt, badErr)
		return
	}
	out := s.adm.tryEnqueue(sc.jobs)
	switch out.reason {
	case rejectNone:
		s.logAdmission(sc.jobs, "accepted", http.StatusAccepted)
		sp.End(trace.I("jobs", int64(len(sc.jobs))), trace.S("outcome", "accepted"))
		sc.resp = append(sc.resp, `{"accepted":`...)
		sc.resp = strconv.AppendInt(sc.resp, int64(len(sc.jobs)), 10)
		sc.resp = append(sc.resp, '}', '\n')
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		w.Write(sc.resp)
	case rejectInvalid:
		err := fmt.Errorf("httpapi: duplicate job %d (in batch or already queued)", sc.jobs[out.badIndex].ID)
		sp.End(trace.S("error", err.Error()), trace.I("jobs", int64(len(sc.jobs))))
		s.writeBatchErrors(w, sc, out.badIndex, err)
	default: // rejectFull, rejectQuota, rejectRate
		s.logAdmission(sc.jobs, out.reason.String(), http.StatusTooManyRequests)
		sp.End(trace.I("jobs", int64(len(sc.jobs))), trace.S("outcome", out.reason.String()))
		s.writeBackpressure(w, sc, out)
	}
}

// writeBackpressure emits the 429 contract: Retry-After header plus a small
// JSON body naming the reason (queue_full | tenant_quota | tenant_rate) and
// echoing the advisory backoff. A rate rejection carries a Retry-After sized
// to the token-bucket deficit instead of the static default.
func (s *Server) writeBackpressure(w http.ResponseWriter, sc *submitScratch, out enqueueOutcome) {
	retry := s.adm.advisoryRetry(out)
	sc.resp = append(sc.resp, `{"error":"`...)
	sc.resp = append(sc.resp, out.reason.String()...)
	if out.reason == rejectQuota || out.reason == rejectRate {
		sc.resp = append(sc.resp, `","tenant":"`...)
		sc.resp = append(sc.resp, out.tenant...)
	}
	sc.resp = append(sc.resp, `","retry_after_seconds":`...)
	sc.resp = strconv.AppendInt(sc.resp, int64(retry), 10)
	sc.resp = append(sc.resp, '}', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	w.WriteHeader(http.StatusTooManyRequests)
	w.Write(sc.resp)
}

// writeBatchErrors emits the atomic-reject 400 body: one entry per batch
// item, with the first failing item carrying its error. Items after the
// first failure are reported unvalidated (the batch is rejected as a unit
// either way, and stopping at the first error keeps the reject path cheap
// under malformed floods).
func (s *Server) writeBatchErrors(w http.ResponseWriter, sc *submitScratch, badAt int, badErr error) {
	type itemErr struct {
		ID     int    `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error,omitempty"`
	}
	items := make([]itemErr, len(sc.msgs))
	for i := range sc.msgs {
		items[i] = itemErr{ID: sc.msgs[i].ID, Status: "ok"}
		switch {
		case i == badAt:
			items[i].Status = "error"
			items[i].Error = badErr.Error()
		case i > badAt:
			items[i].Status = "unvalidated"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(struct {
		Error string    `json:"error"`
		Items []itemErr `json:"items"`
	}{Error: "invalid batch (rejected atomically; no job was enqueued)", Items: items})
}

// submitStream handles the NDJSON mode: one job per line in, one verdict
// per line out. Lines are admitted independently (no batch atomicity); an
// unparseable line yields an "error" verdict and the stream continues.
func (s *Server) submitStream(w http.ResponseWriter, r *http.Request) {
	sp := s.tracer.Begin("admit", "submit.stream")
	sc := getScratch()
	defer putScratch(sc)

	scan := bufio.NewScanner(r.Body)
	scan.Buffer(make([]byte, 64<<10), maxStreamLine)
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	var accepted, rejected, malformed int64
	one := make([]*workload.Job, 1)
	lines := 0
	for scan.Scan() {
		line := bytes.TrimSpace(scan.Bytes())
		if len(line) == 0 {
			continue
		}
		lines++
		var msg JobMsg
		var verdict string
		var detail error
		lineRetry := 0
		if err := json.Unmarshal(line, &msg); err != nil {
			verdict, detail = "error", err
		} else if j, err := msg.ToJob(); err != nil {
			verdict, detail = "error", err
		} else {
			if j.Tenant == "" {
				j.Tenant = DefaultTenant
			}
			one[0] = j
			switch out := s.adm.tryEnqueue(one); out.reason {
			case rejectNone:
				verdict = "accepted"
			case rejectInvalid:
				verdict, detail = "error", fmt.Errorf("duplicate job %d", j.ID)
			default:
				verdict, detail = "rejected", fmt.Errorf("%s", out.reason)
				lineRetry = s.adm.advisoryRetry(out)
			}
		}
		sc.resp = sc.resp[:0]
		sc.resp = append(sc.resp, `{"id":`...)
		sc.resp = strconv.AppendInt(sc.resp, int64(msg.ID), 10)
		sc.resp = append(sc.resp, `,"status":"`...)
		sc.resp = append(sc.resp, verdict...)
		sc.resp = append(sc.resp, '"')
		switch verdict {
		case "accepted":
			accepted++
		case "rejected":
			rejected++
			sc.resp = append(sc.resp, `,"reason":"`...)
			sc.resp = append(sc.resp, detail.Error()...)
			sc.resp = append(sc.resp, `","retry_after_seconds":`...)
			sc.resp = strconv.AppendInt(sc.resp, int64(lineRetry), 10)
		default:
			malformed++
			sc.resp = append(sc.resp, `,"error":`...)
			sc.resp = strconv.AppendQuote(sc.resp, detail.Error())
		}
		sc.resp = append(sc.resp, '}', '\n')
		w.Write(sc.resp)
		if flusher != nil && lines%256 == 0 {
			flusher.Flush()
		}
	}
	if err := scan.Err(); err != nil {
		fmt.Fprintf(w, `{"status":"error","error":%q}`+"\n", err.Error())
	}
	sp.End(trace.I("accepted", accepted), trace.I("rejected", rejected),
		trace.I("malformed", malformed))
	s.logStream(accepted, rejected, malformed)
}
