package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tetrisched/internal/cluster"
	"tetrisched/internal/core"
	"tetrisched/internal/trace"
)

// obsDaemon builds a daemon with a shared tracer wired into both the
// scheduler and the HTTP server, plus one pending job.
func obsDaemon(t *testing.T) (*core.Scheduler, *Server, *httptest.Server) {
	t.Helper()
	c := cluster.RC80(true)
	tr := trace.New(1024)
	sched := core.New(c, core.Config{PlanAhead: 48, Tracer: tr})
	daemon := NewServer(sched, c.N()).SetTracer(tr)
	ts := httptest.NewServer(daemon.Handler())
	t.Cleanup(ts.Close)
	return sched, daemon, ts
}

func postBody(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestErrorPathsLeaveSchedulerUntouched drives every rejection path and
// asserts both the status code and that no scheduler state changed: no job
// enqueued, no cycle run, no solve executed.
func TestErrorPathsLeaveSchedulerUntouched(t *testing.T) {
	sched, _, ts := obsDaemon(t)

	cases := []struct {
		name, path, body string
		wantCode         int
	}{
		{"malformed jobs body", "/v1/jobs", `{"id": 1, "class":`, http.StatusBadRequest},
		{"jobs body wrong type", "/v1/jobs", `{"id": "one"}`, http.StatusBadRequest},
		{"unknown job class", "/v1/jobs", `{"id":1,"class":"??","type":"GPU","k":1,"base_runtime":1}`, http.StatusBadRequest},
		{"nonpositive gang", "/v1/jobs", `{"id":1,"class":"BE","type":"GPU","k":0,"base_runtime":1}`, http.StatusBadRequest},
		{"malformed cycle body", "/v1/cycle", `{"now": 0, "free": [1,`, http.StatusBadRequest},
		{"cycle node out of range", "/v1/cycle", `{"now":0,"free":[99999]}`, http.StatusBadRequest},
		{"cycle negative node", "/v1/cycle", `{"now":0,"free":[-1]}`, http.StatusBadRequest},
		{"malformed completion body", "/v1/completions", `nope`, http.StatusBadRequest},
		{"completion for unknown job", "/v1/completions", `{"job_id":1234,"now":0}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp := postBody(t, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.wantCode)
		}
	}

	if n := sched.Pending(); n != 0 {
		t.Errorf("rejected requests left %d pending jobs in the scheduler", n)
	}
	if sched.Stats.Solves != 0 {
		t.Errorf("rejected cycle requests ran %d solves", sched.Stats.Solves)
	}
	var st StatusResponse
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Pending != 0 || st.Running != 0 || st.Cycles != 0 {
		t.Errorf("status after rejections = %+v, want untouched", st)
	}
}

// runOneCycle submits a job and runs one scheduling cycle over HTTP.
func runOneCycle(t *testing.T, ts *httptest.Server, universe int) {
	t.Helper()
	resp := postBody(t, ts.URL+"/v1/jobs",
		`{"id":0,"class":"SLO","type":"Unconstrained","k":2,"base_runtime":20,"slowdown":1,"deadline":500}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status = %d", resp.StatusCode)
	}
	free := make([]int, 0, universe)
	for i := 0; i < universe; i++ {
		free = append(free, i)
	}
	body, _ := json.Marshal(CycleRequest{Now: 0, Free: free})
	resp = postBody(t, ts.URL+"/v1/cycle", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cycle status = %d", resp.StatusCode)
	}
	var cr CycleResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Decisions) != 1 {
		t.Fatalf("decisions = %+v, want 1 launch", cr.Decisions)
	}
}

// TestStatusExposesSolverStats: after a cycle, /v1/status carries the
// cumulative SolveStats/LPStats block.
func TestStatusExposesSolverStats(t *testing.T) {
	_, _, ts := obsDaemon(t)
	runOneCycle(t, ts, 80)

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 1 {
		t.Errorf("cycles = %d, want 1", st.Cycles)
	}
	if st.Solver == nil {
		t.Fatal("status has no solver block")
	}
	if st.Solver.Solves < 1 || st.Solver.MeanSolveMillis < 0 ||
		st.Solver.MaxSolveMillis < st.Solver.MeanSolveMillis {
		t.Errorf("solver block implausible: %+v", st.Solver)
	}
	if st.Solver.WarmLPs+st.Solver.ColdLPs == 0 {
		t.Errorf("solver block reports no LPs: %+v", st.Solver)
	}
	// One cold cycle fingerprints its components without hitting; the status
	// block must surface the miss (and a zero hit rate) rather than omit it.
	if st.Solver.ReuseMisses == 0 {
		t.Errorf("solver block reports no fingerprinted components: %+v", st.Solver)
	}
	if st.Solver.ReuseHits != 0 || st.Solver.ReuseHitRate != 0 {
		t.Errorf("single cold cycle cannot have replayed: %+v", st.Solver)
	}
	// Same for the cycle front end: one cold cycle generates and compiles
	// every job fresh, so misses and work counters move while hits stay zero.
	if st.Solver.ExprMisses == 0 || st.Solver.CompileJobs == 0 {
		t.Errorf("solver block reports no front-end work: %+v", st.Solver)
	}
	if st.Solver.ExprHits != 0 || st.Solver.CompileSkips != 0 || st.Solver.CompileSkipRate != 0 {
		t.Errorf("single cold cycle cannot have hit the front-end caches: %+v", st.Solver)
	}
	if st.Solver.GenerateMillis <= 0 || st.Solver.CompileMillis <= 0 {
		t.Errorf("front-end timers missing from status: %+v", st.Solver)
	}
}

// TestMetricsEndpoint: /metrics serves Prometheus text format with the
// documented series, including the solve-latency histogram.
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := obsDaemon(t)
	runOneCycle(t, ts, 80)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE tetrisched_cycles_total counter",
		"tetrisched_cycles_total 1",
		"tetrisched_decisions_total 1",
		"tetrisched_jobs_running 1",
		"# TYPE tetrisched_solve_latency_seconds histogram",
		`tetrisched_solve_latency_seconds_bucket{le="+Inf"} 1`,
		"tetrisched_solve_latency_seconds_count 1",
		"tetrisched_solve_latency_seconds_sum",
		"tetrisched_solver_solves_total",
		"tetrisched_solver_lp_warm_hit_rate",
		"tetrisched_solver_reuse_hits_total",
		"tetrisched_solver_reuse_misses_total",
		"tetrisched_solver_reuse_hit_rate",
		"tetrisched_solver_expr_cache_hits_total",
		"tetrisched_solver_expr_cache_misses_total",
		"tetrisched_solver_compile_skips_total",
		"tetrisched_solver_compile_jobs_total",
		"tetrisched_solver_compile_skip_rate",
		"# TYPE tetrisched_solver_generate_seconds_total counter",
		"# TYPE tetrisched_solver_compile_seconds_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Histogram buckets must be cumulative and ordered.
	if !strings.Contains(text, `tetrisched_solve_latency_seconds_bucket{le="0.001"}`) {
		t.Errorf("first histogram bucket missing:\n%s", text)
	}
}

// TestTraceEndpoint: /v1/trace returns a well-formed Chrome trace of the
// ring, and 404s when tracing is disabled.
func TestTraceEndpoint(t *testing.T) {
	_, _, ts := obsDaemon(t)
	runOneCycle(t, ts, 80)

	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	n, err := trace.ValidateChrome(body)
	if err != nil {
		t.Fatalf("trace endpoint served malformed Chrome JSON: %v", err)
	}
	if n == 0 {
		t.Fatal("trace endpoint served no events")
	}
	if !strings.Contains(string(body), `"cycle"`) || !strings.Contains(string(body), `"solve"`) {
		t.Errorf("trace missing expected spans")
	}

	// POST is rejected.
	if resp := postBody(t, ts.URL+"/v1/trace", "{}"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/trace status = %d", resp.StatusCode)
	}

	// Tracing disabled → 404.
	c := cluster.RC80(false)
	bare := httptest.NewServer(NewServer(core.New(c, core.Config{PlanAhead: 48}), c.N()).Handler())
	defer bare.Close()
	resp2, err := http.Get(bare.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("trace without tracer status = %d, want 404", resp2.StatusCode)
	}
}
