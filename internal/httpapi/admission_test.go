package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tetrisched/internal/bitset"
	"tetrisched/internal/sim"
	"tetrisched/internal/workload"
)

// fakeSched is a sim.Scheduler stub that records submissions; all methods
// are invoked under the server's lock, so it needs no synchronization of
// its own.
type fakeSched struct {
	byTenant map[string]int
	order    []*workload.Job
}

func newFakeSched() *fakeSched { return &fakeSched{byTenant: make(map[string]int)} }

func (f *fakeSched) Name() string { return "fake" }
func (f *fakeSched) Submit(now int64, j *workload.Job) {
	f.byTenant[j.Tenant]++
	f.order = append(f.order, j)
}
func (f *fakeSched) JobFinished(now int64, j *workload.Job)          {}
func (f *fakeSched) Cycle(now int64, free *bitset.Set) sim.CycleResult { return sim.CycleResult{} }

var _ sim.Scheduler = (*fakeSched)(nil)

// frontDoor builds a server with the given admission config over a stub
// scheduler.
func frontDoor(t *testing.T, cfg AdmissionConfig) (*fakeSched, *httptest.Server) {
	t.Helper()
	f := newFakeSched()
	srv := NewServer(f, 16).SetAdmission(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return f, ts
}

// batchBody builds a JSON-array body of n valid BE jobs for tenant, with
// IDs starting at id0.
func batchBody(tenant string, id0, n int) []byte {
	var b bytes.Buffer
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"id":%d,"tenant":%q,"class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}`,
			id0+i, tenant)
	}
	b.WriteByte(']')
	return b.Bytes()
}

func postSubmit(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func postCycle(t *testing.T, url string, now int64) {
	t.Helper()
	resp, err := http.Post(url+"/v1/cycle", "application/json",
		strings.NewReader(fmt.Sprintf(`{"now":%d,"free":[]}`, now)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cycle = %d", resp.StatusCode)
	}
}

// TestWeightedFairnessConverges is the acceptance test for the weighted-fair
// dequeue: two tenants at 10:1 weights under saturating load must see their
// admitted-job shares converge to the weight ratio within 10%, and a
// zero-quota tenant must be fully rejected with 429s while the others are
// unaffected.
func TestWeightedFairnessConverges(t *testing.T) {
	f, ts := frontDoor(t, AdmissionConfig{
		MaxQueue: 4096,
		Burst:    64,
		Tenants: []TenantConfig{
			{Name: "heavy", Weight: 10, Quota: -1},
			{Name: "light", Weight: 1, Quota: -1},
			{Name: "banned", Weight: 5, Quota: 0},
		},
	})

	id := 0
	refill := func(tenant string, n int) *http.Response {
		resp := postSubmit(t, ts.URL, batchBody(tenant, id, n))
		id += n
		return resp
	}

	bannedRejects := 0
	for round := 0; round < 40; round++ {
		// Keep both live tenants saturated; the adversarial tenant keeps
		// hammering and must change nothing for the others.
		refill("heavy", 128)
		refill("light", 128)
		if resp := refill("banned", 8); resp.StatusCode == http.StatusTooManyRequests {
			bannedRejects++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After header")
			}
		} else {
			t.Fatalf("zero-quota tenant submission = %d, want 429", resp.StatusCode)
		}
		postCycle(t, ts.URL, int64(round))
	}

	heavy, light := f.byTenant["heavy"], f.byTenant["light"]
	if f.byTenant["banned"] != 0 {
		t.Fatalf("zero-quota tenant had %d jobs admitted", f.byTenant["banned"])
	}
	if bannedRejects != 40 {
		t.Fatalf("banned tenant saw %d/40 rejections", bannedRejects)
	}
	if heavy+light != 40*64 {
		t.Fatalf("drained %d jobs, want %d (saturation assumption broken)", heavy+light, 40*64)
	}
	ratio := float64(heavy) / float64(light)
	if math.Abs(ratio-10) > 1 { // within 10% of the 10:1 weight ratio
		t.Fatalf("admitted share heavy:light = %d:%d (ratio %.2f), want 10:1 ±10%%", heavy, light, ratio)
	}

	// The fair interleaving must survive into the scheduler's pending order:
	// AdmitSeq is strictly monotone in drain order.
	last := int64(0)
	for _, j := range f.order {
		if j.AdmitSeq <= last {
			t.Fatalf("AdmitSeq not monotone: %d after %d", j.AdmitSeq, last)
		}
		last = j.AdmitSeq
	}
}

// TestBackpressureQueueFull: submissions beyond MaxQueue answer 429 with
// Retry-After and leave the queue untouched; drain frees capacity.
func TestBackpressureQueueFull(t *testing.T) {
	f, ts := frontDoor(t, AdmissionConfig{MaxQueue: 10, Burst: 100})

	// A batch larger than the whole queue is rejected atomically.
	if resp := postSubmit(t, ts.URL, batchBody("a", 0, 11)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch = %d, want 429", resp.StatusCode)
	}
	// Exactly at capacity is accepted.
	if resp := postSubmit(t, ts.URL, batchBody("a", 100, 10)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("at-capacity batch = %d, want 202", resp.StatusCode)
	}
	// One more job cannot fit.
	resp := postSubmit(t, ts.URL, batchBody("a", 200, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var body struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "queue_full" || body.RetryAfter < 1 {
		t.Fatalf("429 body = %+v", body)
	}
	// Drain, then capacity is back.
	postCycle(t, ts.URL, 0)
	if len(f.order) != 10 {
		t.Fatalf("drained %d jobs, want 10", len(f.order))
	}
	if resp := postSubmit(t, ts.URL, batchBody("a", 300, 10)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain batch = %d, want 202", resp.StatusCode)
	}
}

// TestTenantQuotaBound: a tenant's queued jobs cannot exceed its quota, and
// quota rejections name the tenant; other tenants are unaffected.
func TestTenantQuotaBound(t *testing.T) {
	_, ts := frontDoor(t, AdmissionConfig{
		MaxQueue: 100,
		Tenants:  []TenantConfig{{Name: "capped", Weight: 1, Quota: 5}},
	})
	if resp := postSubmit(t, ts.URL, batchBody("capped", 0, 5)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("within-quota = %d, want 202", resp.StatusCode)
	}
	resp := postSubmit(t, ts.URL, batchBody("capped", 10, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429", resp.StatusCode)
	}
	var body struct {
		Error  string `json:"error"`
		Tenant string `json:"tenant"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error != "tenant_quota" || body.Tenant != "capped" {
		t.Fatalf("quota 429 body = %+v", body)
	}
	// An unrelated tenant still has the run of the remaining queue.
	if resp := postSubmit(t, ts.URL, batchBody("other", 20, 20)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", resp.StatusCode)
	}
}

// TestMalformedBatchRejectsAtomically is the malformed-batch semantics test:
// a batch with one invalid job must be rejected as a unit with a per-item
// error body, leaving both the ingress queue and the scheduler's pending
// queue untouched.
func TestMalformedBatchRejectsAtomically(t *testing.T) {
	f, ts := frontDoor(t, AdmissionConfig{})
	body := []byte(`[
		{"id":1,"class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1},
		{"id":2,"class":"NOPE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1},
		{"id":3,"class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}
	]`)
	resp := postSubmit(t, ts.URL, body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch = %d, want 400", resp.StatusCode)
	}
	var rej struct {
		Error string `json:"error"`
		Items []struct {
			ID     int    `json:"id"`
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if len(rej.Items) != 3 {
		t.Fatalf("per-item body has %d items, want 3: %+v", len(rej.Items), rej)
	}
	if rej.Items[0].Status != "ok" || rej.Items[1].Status != "error" || rej.Items[2].Status != "unvalidated" {
		t.Fatalf("item statuses = %+v", rej.Items)
	}
	if !strings.Contains(rej.Items[1].Error, "unknown class") {
		t.Fatalf("item 2 error = %q", rej.Items[1].Error)
	}

	// Duplicate IDs within a batch are invalid too.
	dup := append(append([]byte(nil), batchBody("a", 7, 1)[:len(batchBody("a", 7, 1))-1]...), ',')
	dup = append(dup, batchBody("a", 7, 1)[1:]...)
	if resp := postSubmit(t, ts.URL, dup); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("in-batch duplicate = %d, want 400", resp.StatusCode)
	}

	// Nothing reached the queue or the scheduler.
	postCycle(t, ts.URL, 0)
	if len(f.order) != 0 {
		t.Fatalf("scheduler saw %d jobs from rejected batches", len(f.order))
	}
}

// TestSubmitStreamNDJSON: the streaming mode admits line by line, reports a
// per-line verdict, and keeps going past malformed lines.
func TestSubmitStreamNDJSON(t *testing.T) {
	f, ts := frontDoor(t, AdmissionConfig{MaxQueue: 2})
	stream := strings.Join([]string{
		`{"id":1,"class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}`,
		`this is not json`,
		`{"id":2,"class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}`,
		`{"id":3,"class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/submit", "application/x-ndjson", strings.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 4 {
		t.Fatalf("stream returned %d verdicts, want 4:\n%s", len(lines), raw)
	}
	var verdicts []string
	for i, ln := range lines {
		var v struct {
			Status     string `json:"status"`
			Reason     string `json:"reason"`
			RetryAfter int    `json:"retry_after_seconds"`
		}
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("verdict line %d not JSON: %v\n%s", i, err, ln)
		}
		verdicts = append(verdicts, v.Status)
		if v.Status == "rejected" && (v.Reason != "queue_full" || v.RetryAfter < 1) {
			t.Fatalf("rejected verdict missing backpressure fields: %s", ln)
		}
	}
	want := []string{"accepted", "error", "accepted", "rejected"}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Fatalf("verdicts = %v, want %v", verdicts, want)
		}
	}
	postCycle(t, ts.URL, 0)
	if len(f.order) != 2 {
		t.Fatalf("scheduler got %d jobs from stream, want 2", len(f.order))
	}
}

// TestAdmissionObservability: queue depth, per-tenant counters, and the
// admission-latency histogram appear on /metrics, and /v1/status carries the
// admission block.
func TestAdmissionObservability(t *testing.T) {
	_, ts := frontDoor(t, AdmissionConfig{
		MaxQueue: 50,
		Tenants:  []TenantConfig{{Name: "a", Weight: 2, Quota: -1}},
	})
	postSubmit(t, ts.URL, batchBody("a", 0, 3))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"tetrisched_admission_queue_depth 3",
		"tetrisched_admission_queue_capacity 50",
		`tetrisched_admission_tenant_queued{tenant="a"} 3`,
		`tetrisched_admission_enqueued_total{tenant="a"} 3`,
		`tetrisched_admission_admitted_total{tenant="a"} 0`,
		"tetrisched_admission_latency_seconds_count 1",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var st StatusResponse
	sresp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Admission == nil || st.Admission.Queued != 3 || len(st.Admission.Tenants) != 1 {
		t.Fatalf("status admission block = %+v", st.Admission)
	}
	if ten := st.Admission.Tenants[0]; ten.Name != "a" || ten.Weight != 2 || ten.Enqueued != 3 {
		t.Fatalf("tenant status = %+v", ten)
	}
}

// TestConcurrentClients hammers submit (batch + stream), cycle, status,
// metrics, legacy job posts, and completions from concurrent clients. It
// exists to run under -race (tier-1 `make race`): any unsynchronized state
// in the handlers shows up here.
func TestConcurrentClients(t *testing.T) {
	_, ts := frontDoor(t, AdmissionConfig{MaxQueue: 1 << 16, Burst: 256})
	client := ts.Client()

	var wg sync.WaitGroup
	do := func(n int, f func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				f(i)
			}
		}()
	}
	post := func(path, ctype string, body []byte) {
		resp, err := client.Post(ts.URL+path, ctype, bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode >= 500 {
			t.Errorf("%s returned %d", path, resp.StatusCode)
		}
	}
	// Four batch submitters on disjoint ID ranges, plus one that collides
	// with the first on purpose (conflict path).
	for g := 0; g < 4; g++ {
		g := g
		do(50, func(i int) {
			post("/v1/submit", "application/json", batchBody(fmt.Sprintf("t%d", g), 1_000_000+g*100_000+i*16, 16))
		})
	}
	do(50, func(i int) {
		post("/v1/submit", "application/json", batchBody("t0", 1_000_000+i*16, 16))
	})
	do(30, func(i int) {
		line := fmt.Sprintf(`{"id":%d,"tenant":"s","class":"BE","type":"Unconstrained","k":1,"base_runtime":5,"slowdown":1}`, 2_000_000+i)
		post("/v1/submit", "application/x-ndjson", []byte(line+"\n"+line+"\n"))
	})
	do(40, func(i int) {
		post("/v1/cycle", "application/json", []byte(fmt.Sprintf(`{"now":%d,"free":[]}`, i)))
	})
	do(40, func(i int) {
		post("/v1/jobs", "application/json", []byte(fmt.Sprintf(
			`{"id":%d,"class":"BE","type":"Unconstrained","k":1,"base_runtime":5,"slowdown":1}`, 3_000_000+i)))
	})
	do(40, func(i int) {
		post("/v1/completions", "application/json", []byte(fmt.Sprintf(`{"job_id":%d,"now":%d}`, 3_000_000+i, i)))
	})
	get := func(path string) {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	do(60, func(i int) { get("/v1/status") })
	do(60, func(i int) { get("/metrics") })
	wg.Wait()
}
