package httpapi

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// reloadDoor is rateDoor with the Server handle exposed so tests can drive
// ReconfigureTenants mid-run.
func reloadDoor(t *testing.T, cfg AdmissionConfig) (*fakeSched, *Server, *httptest.Server, func(d time.Duration)) {
	t.Helper()
	f := newFakeSched()
	srv := NewServer(f, 16).SetAdmission(cfg)
	clock := time.Unix(1000, 0)
	srv.adm.now = func() time.Time { return clock }
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return f, srv, ts, func(d time.Duration) { clock = clock.Add(d) }
}

// TestReloadPreservesTokenBalance pins the reload/rate-limit interaction: a
// tenant that spent its burst must NOT get a fresh full bucket from a config
// reload — otherwise repeated reloads launder unlimited throughput past the
// rate limit. Refill must keep accruing against the original anchor, and a
// tightened burst cap must clamp an over-cap balance down.
func TestReloadPreservesTokenBalance(t *testing.T) {
	cfg := []TenantConfig{{Name: "a", Quota: -1, Rate: 1, RateBurst: 4}}
	_, srv, ts, advance := reloadDoor(t, AdmissionConfig{Tenants: cfg})

	if resp := postSubmit(t, ts.URL, batchBody("a", 0, 4)); resp.StatusCode != 202 {
		t.Fatalf("burst spend = %d, want 202", resp.StatusCode)
	}
	// The exploit: reload the same config, then retry immediately.
	srv.ReconfigureTenants(cfg)
	if resp := postSubmit(t, ts.URL, batchBody("a", 10, 1)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-reload submit = %d, want 429 (reload must not refill the bucket)", resp.StatusCode)
	}
	// Refill still works against the pre-reload anchor: 2s at 1/s = 2 tokens.
	advance(2 * time.Second)
	if resp := postSubmit(t, ts.URL, batchBody("a", 20, 2)); resp.StatusCode != 202 {
		t.Fatalf("post-refill submit = %d, want 202", resp.StatusCode)
	}
	// A reload that tightens the cap clamps a larger balance down.
	advance(time.Hour) // bucket back to its 4-token cap
	srv.ReconfigureTenants([]TenantConfig{{Name: "a", Quota: -1, Rate: 1, RateBurst: 2}})
	if resp := postSubmit(t, ts.URL, batchBody("a", 30, 3)); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-new-cap submit = %d, want 429 (balance must clamp to the new burst)", resp.StatusCode)
	}
	if resp := postSubmit(t, ts.URL, batchBody("a", 40, 2)); resp.StatusCode != 202 {
		t.Fatalf("at-new-cap submit = %d, want 202", resp.StatusCode)
	}
}

// TestReloadWeightedFairnessMidRun reloads tenant weights mid-run and checks
// the weighted-fair dequeue tracks the new ratio for jobs drained after the
// reload — with virtual times carried over, not reset.
func TestReloadWeightedFairnessMidRun(t *testing.T) {
	f, srv, ts, _ := reloadDoor(t, AdmissionConfig{
		MaxQueue: 65536, // roomy: both tenants stay saturated all 40 rounds
		Burst:    64,
		Tenants: []TenantConfig{
			{Name: "a", Weight: 1, Quota: -1},
			{Name: "b", Weight: 1, Quota: -1},
		},
	})
	id := 0
	refill := func(tenant string, n int) {
		if resp := postSubmit(t, ts.URL, batchBody(tenant, id, n)); resp.StatusCode != 202 {
			t.Fatalf("refill %s = %d, want 202", tenant, resp.StatusCode)
		}
		id += n
	}
	round := int64(0)
	cycles := func(n int) {
		for i := 0; i < n; i++ {
			refill("a", 128)
			refill("b", 128)
			postCycle(t, ts.URL, round)
			round++
		}
	}

	cycles(10)
	a0, b0 := f.byTenant["a"], f.byTenant["b"]
	if a0+b0 != 10*64 {
		t.Fatalf("pre-reload drained %d, want %d", a0+b0, 10*64)
	}
	if diff := a0 - b0; diff > 32 || diff < -32 {
		t.Fatalf("equal weights drained %d:%d, want ≈1:1", a0, b0)
	}

	srv.ReconfigureTenants([]TenantConfig{
		{Name: "a", Weight: 3, Quota: -1},
		{Name: "b", Weight: 1, Quota: -1},
	})
	cycles(30)
	a1, b1 := f.byTenant["a"]-a0, f.byTenant["b"]-b0
	if a1+b1 != 30*64 {
		t.Fatalf("post-reload drained %d, want %d", a1+b1, 30*64)
	}
	ratio := float64(a1) / float64(b1)
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("post-reload share a:b = %d:%d (ratio %.2f), want ≈3:1", a1, b1, ratio)
	}
}

// TestReloadIdleTenantCannotBankCredit pins the vt-floor clamp across a
// reload: a tenant that sat idle while others drained (its virtual time far
// behind the floor) must not monopolize the dequeue when it finally bursts
// after a config reload — reactivation clamps it to the floor, so it only
// gets its fair share going forward.
func TestReloadIdleTenantCannotBankCredit(t *testing.T) {
	f, srv, ts, _ := reloadDoor(t, AdmissionConfig{
		MaxQueue: 4096,
		Burst:    60,
		Tenants: []TenantConfig{
			{Name: "a", Weight: 1, Quota: -1},
			{Name: "b", Weight: 1, Quota: -1},
			{Name: "idle", Weight: 1, Quota: -1},
		},
	})
	id := 0
	refill := func(tenant string, n int) {
		if resp := postSubmit(t, ts.URL, batchBody(tenant, id, n)); resp.StatusCode != 202 {
			t.Fatalf("refill %s = %d, want 202", tenant, resp.StatusCode)
		}
		id += n
	}
	// 20 rounds with idle absent: a and b advance the vt floor far past 0.
	for round := 0; round < 20; round++ {
		refill("a", 100)
		refill("b", 100)
		postCycle(t, ts.URL, int64(round))
	}
	// Reload (same config — the reload itself must not reset anyone's vt),
	// then the idle tenant bursts.
	srv.ReconfigureTenants([]TenantConfig{
		{Name: "a", Weight: 1, Quota: -1},
		{Name: "b", Weight: 1, Quota: -1},
		{Name: "idle", Weight: 1, Quota: -1},
	})
	refill("a", 100)
	refill("b", 100)
	refill("idle", 100)
	postCycle(t, ts.URL, 100)
	got := f.byTenant["idle"]
	// Fair share of one 60-job drain across three equal tenants is 20. Banked
	// credit would hand the idle tenant the whole burst.
	if got < 10 || got > 30 {
		t.Fatalf("idle tenant drained %d of 60, want ≈20 (fair share, no banked credit)", got)
	}
}
