package rayon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdmitBasic(t *testing.T) {
	p := NewPlan(10, 4)
	r := p.Admit(1, 0, 100, 5, 20)
	if r == nil {
		t.Fatal("admit failed on empty plan")
	}
	if r.Start != 0 || r.End != 20 {
		t.Errorf("reservation window = [%d,%d), want [0,20)", r.Start, r.End)
	}
	if p.Reserved(10) != 5 {
		t.Errorf("reserved at t=10 is %d, want 5", p.Reserved(10))
	}
	if p.Lookup(1) != r {
		t.Errorf("lookup failed")
	}
}

func TestAdmitDefersWhenFull(t *testing.T) {
	p := NewPlan(10, 4)
	if p.Admit(1, 0, 1000, 10, 40) == nil {
		t.Fatal("first admit failed")
	}
	// Second job can't overlap [0,40); earliest start is 40.
	r := p.Admit(2, 0, 1000, 10, 40)
	if r == nil {
		t.Fatal("second admit failed")
	}
	if r.Start != 40 {
		t.Errorf("second reservation starts at %d, want 40", r.Start)
	}
}

func TestAdmitRejects(t *testing.T) {
	p := NewPlan(10, 4)
	if p.Admit(1, 0, 1000, 10, 40) == nil {
		t.Fatal("setup admit failed")
	}
	// Deadline too tight to fit after the existing reservation.
	if r := p.Admit(2, 0, 60, 10, 40); r != nil {
		t.Errorf("admit should reject: got [%d,%d)", r.Start, r.End)
	}
	// k larger than capacity.
	if p.Admit(3, 0, 1000, 11, 4) != nil {
		t.Errorf("k > capacity accepted")
	}
	// Zero duration.
	if p.Admit(4, 0, 1000, 1, 0) != nil {
		t.Errorf("zero duration accepted")
	}
}

func TestArrivalQuantization(t *testing.T) {
	p := NewPlan(4, 10)
	// Arrival mid-slice: reservation must not start before the arrival.
	r := p.Admit(1, 15, 100, 2, 10)
	if r == nil {
		t.Fatal("admit failed")
	}
	if r.Start < 15 {
		t.Errorf("reservation starts at %d, before arrival 15", r.Start)
	}
}

func TestReleaseFreesCapacity(t *testing.T) {
	p := NewPlan(10, 4)
	r := p.Admit(1, 0, 1000, 10, 40)
	if r == nil {
		t.Fatal("admit failed")
	}
	// Job finishes at t=20: the remainder of the window frees up.
	p.Release(r, 20)
	if p.Lookup(1) != nil {
		t.Errorf("reservation still live after release")
	}
	if got := p.Reserved(24); got != 0 {
		t.Errorf("reserved after release = %d, want 0", got)
	}
	// Double release is a no-op.
	p.Release(r, 20)
	// Capacity [20,40) is available again.
	r2 := p.Admit(2, 0, 1000, 10, 20)
	if r2 == nil || r2.Start != 20 {
		t.Fatalf("freed capacity not reusable: %+v", r2)
	}
}

func TestNeverOvercommitsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := 1 + r.Intn(20)
		p := NewPlan(capacity, 1+int64(r.Intn(5)))
		type res struct {
			r        *Reservation
			deadline int64
		}
		var live []res
		now := int64(0)
		for i := 0; i < 60; i++ {
			now += int64(r.Intn(10))
			switch r.Intn(3) {
			case 0, 1:
				k := 1 + r.Intn(capacity)
				dur := 1 + int64(r.Intn(30))
				deadline := now + dur + int64(r.Intn(100))
				if rv := p.Admit(i, now, deadline, k, dur); rv != nil {
					if rv.Start < now || rv.End > deadline+p.Quantum() {
						return false // window must respect arrival/deadline
					}
					live = append(live, res{rv, deadline})
				}
			case 2:
				if len(live) > 0 {
					idx := r.Intn(len(live))
					p.Release(live[idx].r, now)
					live = append(live[:idx], live[idx+1:]...)
				}
			}
			if p.MaxReserved(0, now+1000) > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewPlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewPlan(0, …) did not panic")
		}
	}()
	NewPlan(0, 4)
}
