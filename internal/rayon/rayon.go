// Package rayon implements a Rayon-style reservation system (Curino et al.,
// SoCC'14): the admission-control frontend that TetriSched runs in tandem
// with (§2.1). SLO jobs submit a reservation request derived from their RDL
// expression — Window(s, f, Atom(k, gang, dur)) — and the plan either
// guarantees k nodes for dur somewhere inside the window or rejects the job,
// which then runs as "SLO without reservation".
//
// The plan tracks reserved capacity per discretized time slice and admits
// greedily at the earliest feasible start, which is how Rayon's default
// greedy agent behaves. The CapacityScheduler baseline follows these planned
// start times; TetriSched only uses the accept/reject signal and the
// deadline/estimate information.
package rayon

import (
	"fmt"
)

// Reservation is an accepted capacity guarantee: K nodes during [Start, End).
type Reservation struct {
	JobID int
	K     int
	Start int64 // absolute seconds, quantized to the plan's quantum
	End   int64
	freed bool
}

// Plan is the cluster's reservation calendar.
type Plan struct {
	capacity int
	quantum  int64
	used     map[int64]int // slice index -> reserved node count
	accepted map[int]*Reservation
}

// NewPlan creates a plan for a cluster of capacity nodes with the given
// time quantum (seconds).
func NewPlan(capacity int, quantum int64) *Plan {
	if capacity <= 0 || quantum <= 0 {
		panic("rayon: capacity and quantum must be positive")
	}
	return &Plan{
		capacity: capacity,
		quantum:  quantum,
		used:     make(map[int64]int),
		accepted: make(map[int]*Reservation),
	}
}

// Capacity returns the plan's total node capacity.
func (p *Plan) Capacity() int { return p.capacity }

// Quantum returns the plan's time quantum in seconds.
func (p *Plan) Quantum() int64 { return p.quantum }

// Admit attempts to reserve k nodes for estDur seconds within
// [arrival, deadline], scanning for the earliest feasible start. It returns
// the reservation, or nil if the request must be rejected.
func (p *Plan) Admit(jobID int, arrival, deadline int64, k int, estDur int64) *Reservation {
	if k <= 0 || k > p.capacity || estDur <= 0 {
		return nil
	}
	durSlices := (estDur + p.quantum - 1) / p.quantum
	firstSlice := arrival / p.quantum
	if arrival%p.quantum != 0 {
		firstSlice++
	}
	lastStart := deadline/p.quantum - durSlices
	for s := firstSlice; s <= lastStart; s++ {
		ok := true
		for t := s; t < s+durSlices; t++ {
			if p.used[t]+k > p.capacity {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for t := s; t < s+durSlices; t++ {
			p.used[t] += k
		}
		r := &Reservation{JobID: jobID, K: k, Start: s * p.quantum, End: (s + durSlices) * p.quantum}
		p.accepted[jobID] = r
		return r
	}
	return nil
}

// Release frees the remainder of a reservation from time `at` onward, e.g.
// when the job completes before its reservation ends. Releasing twice is a
// no-op.
func (p *Plan) Release(r *Reservation, at int64) {
	if r == nil || r.freed {
		return
	}
	r.freed = true
	from := at / p.quantum
	if at%p.quantum != 0 {
		from++
	}
	if from < r.Start/p.quantum {
		from = r.Start / p.quantum
	}
	for t := from; t < r.End/p.quantum; t++ {
		p.used[t] -= r.K
		if p.used[t] < 0 {
			panic(fmt.Sprintf("rayon: negative reserved capacity at slice %d", t))
		}
		if p.used[t] == 0 {
			delete(p.used, t)
		}
	}
	delete(p.accepted, r.JobID)
}

// Reserved returns the reserved node count for the slice containing time t.
func (p *Plan) Reserved(t int64) int { return p.used[t/p.quantum] }

// Lookup returns the live reservation for a job, if any.
func (p *Plan) Lookup(jobID int) *Reservation { return p.accepted[jobID] }

// MaxReserved returns the maximum reserved capacity over [from, to); used by
// tests to verify the plan never overcommits.
func (p *Plan) MaxReserved(from, to int64) int {
	mx := 0
	for s := from / p.quantum; s <= to/p.quantum; s++ {
		if p.used[s] > mx {
			mx = p.used[s]
		}
	}
	return mx
}
