package rayon

import (
	"strings"
	"testing"
)

func TestParseRDLPaperExample(t *testing.T) {
	// The exact expression from §4.4.
	w, err := ParseRDL("Window(s=0, f=3, Atom(b=<16GB,8c>, k=2, gang=2, dur=3))")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if w.S != 0 || w.F != 3 {
		t.Errorf("window = [%d,%d]", w.S, w.F)
	}
	a := w.Atom
	if a.K != 2 || a.Gang != 2 || a.Dur != 3 {
		t.Errorf("atom = %+v", a)
	}
	if a.B.MemMB != 16*1024 || a.B.Cores != 8 {
		t.Errorf("container = %+v", a.B)
	}
}

func TestRDLRoundTrip(t *testing.T) {
	src := "Window(s=10, f=500, Atom(b=<4GB,2c>, k=8, gang=8, dur=120))"
	w, err := ParseRDL(src)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseRDL(w.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", w.String(), err)
	}
	if again != w {
		t.Errorf("round trip: %+v vs %+v", again, w)
	}
}

func TestParseRDLWithoutContainer(t *testing.T) {
	w, err := ParseRDL("Window(s=0, f=100, Atom(k=4, gang=4, dur=50))")
	if err != nil {
		t.Fatal(err)
	}
	if w.Atom.K != 4 || w.Atom.B.MemMB != 0 {
		t.Errorf("atom = %+v", w.Atom)
	}
}

func TestParseRDLErrors(t *testing.T) {
	cases := []string{
		"",
		"Atom(k=1, gang=1, dur=1)", // no window
		"Window(s=0, f=3)",         // no atom
		"Window(s=5, f=3, Atom(k=1, gang=1, dur=1))",          // empty range
		"Window(s=0, f=3, Atom(k=0, gang=1, dur=1))",          // k=0
		"Window(s=0, f=3, Atom(k=2, gang=3, dur=1))",          // gang > k
		"Window(s=0, f=3, Atom(k=2, gang=2, dur=5))",          // dur > window
		"Window(s=0, f=3, Atom(k=2, gang=2, dur=1)) trailing", // trailing
		"Window(s=0, f=3, Atom(b=<16zz,8c>, k=2, gang=2, dur=1))",
		"Window(s=x, f=3, Atom(k=2, gang=2, dur=1))",
	}
	for _, src := range cases {
		if _, err := ParseRDL(src); err == nil {
			t.Errorf("ParseRDL(%q) succeeded, want error", src)
		}
	}
}

func TestAdmitRDL(t *testing.T) {
	p := NewPlan(10, 1)
	w, err := ParseRDL("Window(s=0, f=100, Atom(k=5, gang=5, dur=20))")
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.AdmitRDL(1, w)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil || r.Start != 0 || r.End != 20 {
		t.Fatalf("reservation = %+v", r)
	}
	// Invalid RDL is an error, not a rejection.
	bad := Window{S: 0, F: 1, Atom: Atom{K: 1, Gang: 1, Dur: 5}}
	if _, err := p.AdmitRDL(2, bad); err == nil {
		t.Errorf("invalid window admitted")
	}
	// Oversized ask is a rejection, not an error.
	big, _ := ParseRDL("Window(s=0, f=100, Atom(k=11, gang=11, dur=10))")
	r2, err := p.AdmitRDL(3, big)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != nil {
		t.Errorf("over-capacity ask accepted: %+v", r2)
	}
}

func TestContainerString(t *testing.T) {
	c := Container{MemMB: 16384, Cores: 8}
	if got := c.String(); !strings.Contains(got, "16GB") || !strings.Contains(got, "8c") {
		t.Errorf("container string = %q", got)
	}
}
