package rayon

import (
	"fmt"
	"strconv"
	"strings"
)

// RDL is the subset of Rayon's Reservation Definition Language that the
// paper's integration uses (§4.4):
//
//	Window(s=0, f=3, Atom(b=<16GB,8c>, k=2, gang=2, dur=3))
//
// The inner Atom reserves a gang of k containers of size b for dur time
// units; the Window bounds the feasible execution range [s, f]. TetriSched's
// STRL Generator combines this coarse reservation information with the
// ApplicationMaster-specified job type to enumerate space-time options.

// Container describes one container's resource ask (the "b" of an Atom).
type Container struct {
	MemMB int
	Cores int
}

func (c Container) String() string {
	return fmt.Sprintf("<%dGB,%dc>", c.MemMB/1024, c.Cores)
}

// Atom is a gang reservation request: K containers of size B, all Gang of
// them simultaneously, for Dur seconds.
type Atom struct {
	B    Container
	K    int
	Gang int
	Dur  int64
}

func (a Atom) String() string {
	return fmt.Sprintf("Atom(b=%s, k=%d, gang=%d, dur=%d)", a.B, a.K, a.Gang, a.Dur)
}

// Window bounds an Atom to the absolute time range [S, F].
type Window struct {
	S, F int64
	Atom Atom
}

func (w Window) String() string {
	return fmt.Sprintf("Window(s=%d, f=%d, %s)", w.S, w.F, w.Atom)
}

// Validate checks structural constraints: a nonempty range long enough for
// the atom, a full gang, and positive sizes.
func (w Window) Validate() error {
	if w.F < w.S {
		return fmt.Errorf("rdl: window [%d,%d] is empty", w.S, w.F)
	}
	a := w.Atom
	if a.K <= 0 {
		return fmt.Errorf("rdl: atom k=%d must be positive", a.K)
	}
	if a.Gang <= 0 || a.Gang > a.K {
		return fmt.Errorf("rdl: gang=%d must be in [1,k=%d]", a.Gang, a.K)
	}
	if a.Dur <= 0 {
		return fmt.Errorf("rdl: dur=%d must be positive", a.Dur)
	}
	if w.S+a.Dur > w.F {
		return fmt.Errorf("rdl: window [%d,%d] shorter than dur=%d", w.S, w.F, a.Dur)
	}
	return nil
}

// AdmitRDL admits a validated RDL window against the plan: the earliest
// feasible gang-of-k reservation inside [S, F]. It returns nil (rejected)
// when the plan cannot honor the guarantee.
func (p *Plan) AdmitRDL(jobID int, w Window) (*Reservation, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return p.Admit(jobID, w.S, w.F, w.Atom.K, w.Atom.Dur), nil
}

// ParseRDL reads the textual Window(...) form. Sizes like b=<16GB,8c> are
// accepted and retained; only k, gang, and dur affect admission in this
// node-granular model.
func ParseRDL(src string) (Window, error) {
	p := &rdlParser{src: strings.TrimSpace(src)}
	w, err := p.window()
	if err != nil {
		return Window{}, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return Window{}, fmt.Errorf("rdl: trailing input at %q", p.src[p.pos:])
	}
	if err := w.Validate(); err != nil {
		return Window{}, err
	}
	return w, nil
}

type rdlParser struct {
	src string
	pos int
}

func (p *rdlParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *rdlParser) expect(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		return fmt.Errorf("rdl: expected %q at offset %d", tok, p.pos)
	}
	p.pos += len(tok)
	return nil
}

func (p *rdlParser) expectFold(tok string) error {
	p.skipSpace()
	if len(p.src[p.pos:]) < len(tok) || !strings.EqualFold(p.src[p.pos:p.pos+len(tok)], tok) {
		return fmt.Errorf("rdl: expected %q at offset %d", tok, p.pos)
	}
	p.pos += len(tok)
	return nil
}

func (p *rdlParser) int64Field(name string) (int64, error) {
	if err := p.expectFold(name); err != nil {
		return 0, err
	}
	if err := p.expect("="); err != nil {
		return 0, err
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && (p.src[p.pos] == '-' || (p.src[p.pos] >= '0' && p.src[p.pos] <= '9')) {
		p.pos++
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("rdl: bad number for %s at offset %d", name, start)
	}
	return v, nil
}

func (p *rdlParser) window() (Window, error) {
	var w Window
	if err := p.expectFold("Window"); err != nil {
		return w, err
	}
	if err := p.expect("("); err != nil {
		return w, err
	}
	var err error
	if w.S, err = p.int64Field("s"); err != nil {
		return w, err
	}
	if err := p.expect(","); err != nil {
		return w, err
	}
	if w.F, err = p.int64Field("f"); err != nil {
		return w, err
	}
	if err := p.expect(","); err != nil {
		return w, err
	}
	if w.Atom, err = p.atom(); err != nil {
		return w, err
	}
	if err := p.expect(")"); err != nil {
		return w, err
	}
	return w, nil
}

func (p *rdlParser) atom() (Atom, error) {
	var a Atom
	if err := p.expectFold("Atom"); err != nil {
		return a, err
	}
	if err := p.expect("("); err != nil {
		return a, err
	}
	// Optional container size: b=<16GB,8c>,
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "b=") || strings.HasPrefix(p.src[p.pos:], "B=") {
		p.pos += 2
		if err := p.expect("<"); err != nil {
			return a, err
		}
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return a, fmt.Errorf("rdl: unterminated container size")
		}
		spec := p.src[p.pos : p.pos+end]
		p.pos += end + 1
		if err := parseContainer(spec, &a.B); err != nil {
			return a, err
		}
		if err := p.expect(","); err != nil {
			return a, err
		}
	}
	k, err := p.int64Field("k")
	if err != nil {
		return a, err
	}
	a.K = int(k)
	if err := p.expect(","); err != nil {
		return a, err
	}
	g, err := p.int64Field("gang")
	if err != nil {
		return a, err
	}
	a.Gang = int(g)
	if err := p.expect(","); err != nil {
		return a, err
	}
	if a.Dur, err = p.int64Field("dur"); err != nil {
		return a, err
	}
	if err := p.expect(")"); err != nil {
		return a, err
	}
	return a, nil
}

// parseContainer reads "16GB,8c" into a Container.
func parseContainer(spec string, c *Container) error {
	parts := strings.Split(spec, ",")
	for _, part := range parts {
		part = strings.TrimSpace(part)
		lower := strings.ToLower(part)
		switch {
		case strings.HasSuffix(lower, "gb"):
			v, err := strconv.Atoi(strings.TrimSuffix(lower, "gb"))
			if err != nil {
				return fmt.Errorf("rdl: bad memory size %q", part)
			}
			c.MemMB = v * 1024
		case strings.HasSuffix(lower, "mb"):
			v, err := strconv.Atoi(strings.TrimSuffix(lower, "mb"))
			if err != nil {
				return fmt.Errorf("rdl: bad memory size %q", part)
			}
			c.MemMB = v
		case strings.HasSuffix(lower, "c"):
			v, err := strconv.Atoi(strings.TrimSuffix(lower, "c"))
			if err != nil {
				return fmt.Errorf("rdl: bad core count %q", part)
			}
			c.Cores = v
		default:
			return fmt.Errorf("rdl: unknown container component %q", part)
		}
	}
	return nil
}
