package tetrisched

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools smoke-tests each CLI end to end: build the binary,
// run a representative invocation, check the output.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess tools")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	run := func(name string, args ...string) string {
		cmd := exec.Command(build(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	t.Run("strlc", func(t *testing.T) {
		out := run("strlc", "-nodes", "4", "-gpus", "2",
			"-e", "max(nCk({gpu}, k=2, start=0, dur=2, v=4), nCk({*}, k=2, start=0, dur=3, v=3))")
		for _, want := range []string{"parsed STRL", "partition groups", "objective=4", "grants:"} {
			if !strings.Contains(out, want) {
				t.Errorf("strlc output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("tetrisim", func(t *testing.T) {
		trace := filepath.Join(bin, "trace.json")
		out := run("tetrisim", "-cluster", "rc80", "-workload", "gsmix", "-jobs", "10",
			"-gantt", "-save-trace", trace)
		for _, want := range []string{"TetriSched", "SLO(all)", "legend:"} {
			if !strings.Contains(out, want) {
				t.Errorf("tetrisim output missing %q:\n%s", want, out)
			}
		}
		// Replay the saved trace under the baseline.
		out2 := run("tetrisim", "-load-trace", trace, "-sched", "cs")
		if !strings.Contains(out2, "Rayon/CS") || !strings.Contains(out2, "jobs=10") {
			t.Errorf("trace replay malformed:\n%s", out2)
		}
	})

	t.Run("experiments", func(t *testing.T) {
		out := run("experiments", "-table", "1")
		if !strings.Contains(out, "GS_HET") {
			t.Errorf("experiments -table 1 malformed:\n%s", out)
		}
	})
}
