package tetrisched

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"tetrisched/internal/trace"
)

// TestCommandLineTools smoke-tests each CLI end to end: build the binary,
// run a representative invocation, check the output.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess tools")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	run := func(name string, args ...string) string {
		cmd := exec.Command(build(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	t.Run("strlc", func(t *testing.T) {
		out := run("strlc", "-nodes", "4", "-gpus", "2",
			"-e", "max(nCk({gpu}, k=2, start=0, dur=2, v=4), nCk({*}, k=2, start=0, dur=3, v=3))")
		for _, want := range []string{"parsed STRL", "partition groups", "objective=4", "grants:"} {
			if !strings.Contains(out, want) {
				t.Errorf("strlc output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("tetrisim", func(t *testing.T) {
		trace := filepath.Join(bin, "trace.json")
		out := run("tetrisim", "-cluster", "rc80", "-workload", "gsmix", "-jobs", "10",
			"-gantt", "-save-trace", trace)
		for _, want := range []string{"TetriSched", "SLO(all)", "legend:"} {
			if !strings.Contains(out, want) {
				t.Errorf("tetrisim output missing %q:\n%s", want, out)
			}
		}
		// Replay the saved trace under the baseline.
		out2 := run("tetrisim", "-load-trace", trace, "-sched", "cs")
		if !strings.Contains(out2, "Rayon/CS") || !strings.Contains(out2, "jobs=10") {
			t.Errorf("trace replay malformed:\n%s", out2)
		}
	})

	t.Run("experiments", func(t *testing.T) {
		out := run("experiments", "-table", "1")
		if !strings.Contains(out, "GS_HET") {
			t.Errorf("experiments -table 1 malformed:\n%s", out)
		}
	})

	// tetrisim -trace round-trip: the Chrome export must be well-formed
	// trace-event JSON with the scheduler's phase spans, and the JSONL mode
	// must be valid line-by-line.
	t.Run("tetrisim-exec-trace", func(t *testing.T) {
		chromeOut := filepath.Join(bin, "exec.json")
		out := run("tetrisim", "-cluster", "rc80", "-workload", "gshet", "-jobs", "12",
			"-trace", chromeOut)
		if !strings.Contains(out, "execution trace written") {
			t.Errorf("tetrisim -trace output missing confirmation:\n%s", out)
		}
		data, err := os.ReadFile(chromeOut)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := trace.DecodeChrome(data)
		if err != nil {
			t.Fatalf("-trace emitted malformed Chrome trace JSON: %v", err)
		}
		seen := map[string]bool{}
		tracks := map[string]bool{}
		for _, e := range doc.TraceEvents {
			seen[e.Name] = true
			if e.Ph == "M" && e.Name == "thread_name" {
				tracks[e.Args["name"].(string)] = true
			}
		}
		for _, want := range []string{"cycle", "generate", "compile", "solve", "launch", "submit"} {
			if !seen[want] {
				t.Errorf("chrome trace missing %q events (have %v)", want, seen)
			}
		}
		for _, want := range []string{"cycle", "strl", "solve", "place", "driver", "job"} {
			if !tracks[want] {
				t.Errorf("chrome trace missing %q track (have %v)", want, tracks)
			}
		}

		jsonlOut := filepath.Join(bin, "exec.jsonl")
		run("tetrisim", "-cluster", "rc80", "-workload", "gshet", "-jobs", "12",
			"-trace", jsonlOut)
		raw, err := os.ReadFile(jsonlOut)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 20 {
			t.Fatalf("jsonl trace suspiciously short: %d lines", len(lines))
		}
		for i, ln := range lines {
			var obj struct {
				Seq  *uint64 `json:"seq"`
				Kind string  `json:"kind"`
				Name string  `json:"name"`
			}
			if err := json.Unmarshal([]byte(ln), &obj); err != nil {
				t.Fatalf("jsonl line %d malformed: %v\n%s", i, err, ln)
			}
			if obj.Seq == nil || *obj.Seq != uint64(i) {
				t.Fatalf("jsonl line %d has seq %v, want %d (stream must be gapless)", i, obj.Seq, i)
			}
		}
	})

	// tetrischedd admission flag round-trip: -max-queue / -tenants /
	// -admission-log must all be documented in -h, honored by the running
	// daemon, and the admission log must survive a graceful shutdown.
	t.Run("tetrischedd-admission", func(t *testing.T) {
		daemon := build("tetrischedd")

		// -h documents the front-door flags.
		help, _ := exec.Command(daemon, "-h").CombinedOutput() // flag -h exits non-zero by design
		for _, flag := range []string{"-max-queue", "-admit-burst", "-tenants", "-admission-log"} {
			if !strings.Contains(string(help), flag) {
				t.Errorf("-h output missing %s:\n%s", flag, help)
			}
		}

		tenantsPath := filepath.Join(bin, "tenants.json")
		if err := os.WriteFile(tenantsPath, []byte(
			`[{"name":"gold","weight":10,"quota":-1},{"name":"blocked","weight":1,"quota":0}]`), 0o644); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(bin, "admission.ndjson")
		addr := freeAddr(t)
		cmd := exec.Command(daemon, "-listen", addr, "-nodes", "8", "-racks", "2",
			"-max-queue", "100", "-tenants", tenantsPath, "-admission-log", logPath)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()
		waitHTTP(t, "http://"+addr+"/v1/status")

		post := func(body string) *http.Response {
			resp, err := http.Post("http://"+addr+"/v1/submit", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return resp
		}
		batch := func(tenant string, id0, n int) string {
			var sb strings.Builder
			sb.WriteByte('[')
			for i := 0; i < n; i++ {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(`{"id":` + strconv.Itoa(id0+i) + `,"tenant":"` + tenant +
					`","class":"BE","type":"Unconstrained","k":1,"base_runtime":10,"slowdown":1}`)
			}
			sb.WriteByte(']')
			return sb.String()
		}
		if resp := post(batch("gold", 0, 5)); resp.StatusCode != http.StatusAccepted {
			t.Errorf("configured tenant batch = %d, want 202", resp.StatusCode)
		}
		if resp := post(batch("blocked", 100, 1)); resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("zero-quota tenant = %d, want 429", resp.StatusCode)
		} else if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After header")
		}
		// -max-queue 100 with 5 already queued: a batch of 96 cannot fit.
		if resp := post(batch("gold", 200, 96)); resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("over-capacity batch = %d, want 429", resp.StatusCode)
		}

		// /v1/status reflects the -tenants file.
		var st struct {
			Admission *struct {
				MaxQueue int `json:"max_queue"`
				Tenants  []struct {
					Name   string  `json:"name"`
					Weight float64 `json:"weight"`
				} `json:"tenants"`
			} `json:"admission"`
		}
		resp, err := http.Get("http://" + addr + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Admission == nil || st.Admission.MaxQueue != 100 {
			t.Fatalf("status does not reflect -max-queue: %+v", st.Admission)
		}
		foundGold := false
		for _, ten := range st.Admission.Tenants {
			if ten.Name == "gold" && ten.Weight == 10 {
				foundGold = true
			}
		}
		if !foundGold {
			t.Errorf("status does not reflect -tenants weights: %+v", st.Admission)
		}

		// Graceful shutdown flushes the admission log.
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("daemon did not exit cleanly: %v", err)
		}
		raw, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatalf("-admission-log file missing after shutdown: %v", err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) != 3 {
			t.Fatalf("admission log has %d records, want 3:\n%s", len(lines), raw)
		}
		outcomes := map[string]int{}
		for i, ln := range lines {
			var rec struct {
				Mode    string `json:"mode"`
				Tenant  string `json:"tenant"`
				Jobs    int    `json:"jobs"`
				Outcome string `json:"outcome"`
				Code    int    `json:"code"`
			}
			if err := json.Unmarshal([]byte(ln), &rec); err != nil {
				t.Fatalf("admission log line %d malformed: %v\n%s", i, err, ln)
			}
			outcomes[rec.Outcome]++
		}
		if outcomes["accepted"] != 1 || outcomes["tenant_quota"] != 1 || outcomes["queue_full"] != 1 {
			t.Errorf("admission log outcomes = %v", outcomes)
		}
	})

	// tetrischedd: pprof served only on -debug-addr, and SIGTERM triggers a
	// clean graceful shutdown (exit status 0).
	t.Run("tetrischedd-daemon", func(t *testing.T) {
		mainAddr, debugAddr := freeAddr(t), freeAddr(t)
		cmd := exec.Command(build("tetrischedd"),
			"-listen", mainAddr, "-debug-addr", debugAddr, "-nodes", "8", "-racks", "2")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()

		waitHTTP(t, "http://"+mainAddr+"/v1/status")
		if code := getStatus(t, "http://"+debugAddr+"/debug/pprof/"); code != http.StatusOK {
			t.Errorf("pprof on debug addr = %d, want 200", code)
		}
		if code := getStatus(t, "http://"+mainAddr+"/debug/pprof/"); code == http.StatusOK {
			t.Errorf("pprof reachable on the main listener")
		}
		if code := getStatus(t, "http://"+mainAddr+"/metrics"); code != http.StatusOK {
			t.Errorf("daemon /metrics = %d, want 200", code)
		}
		if code := getStatus(t, "http://"+mainAddr+"/v1/trace"); code != http.StatusOK {
			t.Errorf("daemon /v1/trace = %d, want 200", code)
		}

		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon did not exit cleanly on SIGTERM: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("daemon did not shut down within 15s of SIGTERM")
		}
	})
}

// freeAddr reserves a loopback port for a subprocess listener.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHTTP polls url until it answers (daemon startup).
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", url)
}

// getStatus fetches url and returns the HTTP status code (0 on error).
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}
