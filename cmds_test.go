package tetrisched

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tetrisched/internal/trace"
)

// TestCommandLineTools smoke-tests each CLI end to end: build the binary,
// run a representative invocation, check the output.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess tools")
	}
	bin := t.TempDir()
	build := func(name string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		return out
	}
	run := func(name string, args ...string) string {
		cmd := exec.Command(build(name), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	t.Run("strlc", func(t *testing.T) {
		out := run("strlc", "-nodes", "4", "-gpus", "2",
			"-e", "max(nCk({gpu}, k=2, start=0, dur=2, v=4), nCk({*}, k=2, start=0, dur=3, v=3))")
		for _, want := range []string{"parsed STRL", "partition groups", "objective=4", "grants:"} {
			if !strings.Contains(out, want) {
				t.Errorf("strlc output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("tetrisim", func(t *testing.T) {
		trace := filepath.Join(bin, "trace.json")
		out := run("tetrisim", "-cluster", "rc80", "-workload", "gsmix", "-jobs", "10",
			"-gantt", "-save-trace", trace)
		for _, want := range []string{"TetriSched", "SLO(all)", "legend:"} {
			if !strings.Contains(out, want) {
				t.Errorf("tetrisim output missing %q:\n%s", want, out)
			}
		}
		// Replay the saved trace under the baseline.
		out2 := run("tetrisim", "-load-trace", trace, "-sched", "cs")
		if !strings.Contains(out2, "Rayon/CS") || !strings.Contains(out2, "jobs=10") {
			t.Errorf("trace replay malformed:\n%s", out2)
		}
	})

	t.Run("experiments", func(t *testing.T) {
		out := run("experiments", "-table", "1")
		if !strings.Contains(out, "GS_HET") {
			t.Errorf("experiments -table 1 malformed:\n%s", out)
		}
	})

	// tetrisim -trace round-trip: the Chrome export must be well-formed
	// trace-event JSON with the scheduler's phase spans, and the JSONL mode
	// must be valid line-by-line.
	t.Run("tetrisim-exec-trace", func(t *testing.T) {
		chromeOut := filepath.Join(bin, "exec.json")
		out := run("tetrisim", "-cluster", "rc80", "-workload", "gshet", "-jobs", "12",
			"-trace", chromeOut)
		if !strings.Contains(out, "execution trace written") {
			t.Errorf("tetrisim -trace output missing confirmation:\n%s", out)
		}
		data, err := os.ReadFile(chromeOut)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := trace.DecodeChrome(data)
		if err != nil {
			t.Fatalf("-trace emitted malformed Chrome trace JSON: %v", err)
		}
		seen := map[string]bool{}
		tracks := map[string]bool{}
		for _, e := range doc.TraceEvents {
			seen[e.Name] = true
			if e.Ph == "M" && e.Name == "thread_name" {
				tracks[e.Args["name"].(string)] = true
			}
		}
		for _, want := range []string{"cycle", "generate", "compile", "solve", "launch", "submit"} {
			if !seen[want] {
				t.Errorf("chrome trace missing %q events (have %v)", want, seen)
			}
		}
		for _, want := range []string{"cycle", "strl", "solve", "place", "driver", "job"} {
			if !tracks[want] {
				t.Errorf("chrome trace missing %q track (have %v)", want, tracks)
			}
		}

		jsonlOut := filepath.Join(bin, "exec.jsonl")
		run("tetrisim", "-cluster", "rc80", "-workload", "gshet", "-jobs", "12",
			"-trace", jsonlOut)
		raw, err := os.ReadFile(jsonlOut)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 20 {
			t.Fatalf("jsonl trace suspiciously short: %d lines", len(lines))
		}
		for i, ln := range lines {
			var obj struct {
				Seq  *uint64 `json:"seq"`
				Kind string  `json:"kind"`
				Name string  `json:"name"`
			}
			if err := json.Unmarshal([]byte(ln), &obj); err != nil {
				t.Fatalf("jsonl line %d malformed: %v\n%s", i, err, ln)
			}
			if obj.Seq == nil || *obj.Seq != uint64(i) {
				t.Fatalf("jsonl line %d has seq %v, want %d (stream must be gapless)", i, obj.Seq, i)
			}
		}
	})

	// tetrischedd: pprof served only on -debug-addr, and SIGTERM triggers a
	// clean graceful shutdown (exit status 0).
	t.Run("tetrischedd-daemon", func(t *testing.T) {
		mainAddr, debugAddr := freeAddr(t), freeAddr(t)
		cmd := exec.Command(build("tetrischedd"),
			"-listen", mainAddr, "-debug-addr", debugAddr, "-nodes", "8", "-racks", "2")
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()

		waitHTTP(t, "http://"+mainAddr+"/v1/status")
		if code := getStatus(t, "http://"+debugAddr+"/debug/pprof/"); code != http.StatusOK {
			t.Errorf("pprof on debug addr = %d, want 200", code)
		}
		if code := getStatus(t, "http://"+mainAddr+"/debug/pprof/"); code == http.StatusOK {
			t.Errorf("pprof reachable on the main listener")
		}
		if code := getStatus(t, "http://"+mainAddr+"/metrics"); code != http.StatusOK {
			t.Errorf("daemon /metrics = %d, want 200", code)
		}
		if code := getStatus(t, "http://"+mainAddr+"/v1/trace"); code != http.StatusOK {
			t.Errorf("daemon /v1/trace = %d, want 200", code)
		}

		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon did not exit cleanly on SIGTERM: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Error("daemon did not shut down within 15s of SIGTERM")
		}
	})
}

// freeAddr reserves a loopback port for a subprocess listener.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHTTP polls url until it answers (daemon startup).
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", url)
}

// getStatus fetches url and returns the HTTP status code (0 on error).
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0
	}
	resp.Body.Close()
	return resp.StatusCode
}
