package tetrisched

import (
	"reflect"
	"testing"

	"tetrisched/internal/core"
	"tetrisched/internal/sim"
)

// TestShardParityProperty is the policy-invariance property of the sharding
// control plane: a single shard covers the whole cluster, so every forced
// component is byte-identical to the natural decomposition and a Shards=1 run
// must produce exactly the same per-job outcomes as the monolithic (Shards=0)
// scheduler across seeded multi-cycle simulations — arrivals, completions,
// drops, overruns, node failures, preemptions. The stats assertions keep both
// sides honest: the monolithic run must never touch the shard machinery, and
// the sharded run must actually route every cycle through it.
func TestShardParityProperty(t *testing.T) {
	const instances = 220
	var shardCycles int64
	for i := 0; i < instances; i++ {
		seed := int64(17000 + i)
		inst := randomParityInstance(i, seed)
		run := func(shards int) (*sim.Result, *core.Scheduler) {
			cfg := inst.cfg
			cfg.Shards = shards
			sched := core.New(inst.c, cfg)
			res, err := sim.Run(sim.Config{
				Cluster: inst.c, Jobs: inst.mkJobs(), Scheduler: sched, Failures: inst.failures,
			})
			if err != nil {
				t.Fatalf("seed %d (shards=%d): %v", seed, shards, err)
			}
			return res, sched
		}
		mono, monoSched := run(0)
		sharded, shSched := run(1)

		if !reflect.DeepEqual(mono.Stats, sharded.Stats) {
			for j := range mono.Stats {
				if !reflect.DeepEqual(mono.Stats[j], sharded.Stats[j]) {
					t.Errorf("seed %d: job %d diverged:\n  monolithic: %+v\n  1-shard:    %+v",
						seed, j, mono.Stats[j], sharded.Stats[j])
				}
			}
		}
		if mono.Makespan != sharded.Makespan || mono.BusyNodeSeconds != sharded.BusyNodeSeconds || mono.Stalled != sharded.Stalled {
			t.Errorf("seed %d: run shape diverged: makespan %d vs %d, busy %d vs %d, stalled %v vs %v",
				seed, mono.Makespan, sharded.Makespan, mono.BusyNodeSeconds, sharded.BusyNodeSeconds,
				mono.Stalled, sharded.Stalled)
		}
		monoStats := monoSched.ShardStatsSnapshot()
		if monoStats.Shards != 0 || monoStats.Cycles != 0 {
			t.Errorf("seed %d: monolithic run touched the shard machinery (shards=%d cycles=%d)",
				seed, monoStats.Shards, monoStats.Cycles)
		}
		shStats := shSched.ShardStatsSnapshot()
		if shStats.Shards != 1 {
			t.Errorf("seed %d: sharded run reports %d shards, want 1", seed, shStats.Shards)
		}
		shardCycles += shStats.Cycles
	}
	if shardCycles == 0 {
		t.Error("no sharded cycles across any instance; the parity property never exercised the shard path")
	}
	t.Logf("aggregate sharded cycles across %d instances: %d", instances, shardCycles)
}
