# TetriSched-Go build targets. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all build vet test test-short race bench cover experiments experiments-quick examples clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; required since the MILP solver gained shared mutable
# state (parallel branch-and-bound workers).
race:
	$(GO) test -race ./...

# Reduced-scale regenerations of every paper table/figure.
bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./internal/...

# Full-scale regeneration of the paper's evaluation (slow; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

experiments-quick:
	$(GO) run ./cmd/experiments -all -quick

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
	done

clean:
	$(GO) clean ./...
