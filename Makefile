# TetriSched-Go build targets. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all verify build vet test test-short race bench bench-compare bench-all bench-smoke cover experiments experiments-quick examples clean

all: build vet test race

# Tier-1 verify chain (see ROADMAP.md).
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass; required since the MILP solver gained shared mutable
# state (parallel branch-and-bound workers).
race:
	$(GO) test -race ./...

# Tracked solver benchmarks: the Fig 12-style batched solves and the full
# scheduler cycle, 6 repetitions each, summarized into BENCH_milp.json so the
# perf trajectory is diffable across PRs.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkBatchedSolve|BenchmarkSchedulerCycle' -benchmem -count=6 . \
		| $(GO) run ./cmd/benchjson -o BENCH_milp.json

# Regression gate: re-run the tracked benchmarks and diff mean ns/op against
# the committed BENCH_milp.json baseline. Exits non-zero if any benchmark's
# mean regresses more than the threshold (default +10%; tune with
# `go run ./cmd/benchjson -compare BENCH_milp.json -threshold 0.15`).
# Numbers are only comparable on the machine that produced the baseline —
# run this locally before `make bench` rewrites the baseline, not in CI.
bench-compare:
	$(GO) test -run='^$$' -bench='BenchmarkBatchedSolve|BenchmarkSchedulerCycle' -benchmem -count=6 . \
		| $(GO) run ./cmd/benchjson -compare BENCH_milp.json

# Every benchmark in the repo (reduced-scale paper tables/figures included).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Bench-rot smoke: run every benchmark exactly once so benchmark code cannot
# silently stop compiling or start crashing. Fast enough for CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

cover:
	$(GO) test -cover ./internal/...

# Full-scale regeneration of the paper's evaluation (slow; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

experiments-quick:
	$(GO) run ./cmd/experiments -all -quick

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
	done

clean:
	$(GO) clean ./...
