# TetriSched-Go build targets. Everything is plain `go` underneath; the
# Makefile just names the common invocations.

GO ?= go

.PHONY: all verify build vet test test-short test-shuffle race bench bench-compare bench-all bench-smoke loadgen-smoke shard-smoke cover experiments experiments-quick examples clean

all: build vet test race

# Tier-1 verify chain (see ROADMAP.md).
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Order-independence pass: the full suite in a randomized test order, so
# cross-test state leaks (shared schedulers, package-level caches) surface in
# CI instead of on a developer's machine.
test-shuffle:
	$(GO) test -shuffle=on ./...

# Race-detector pass; required since the MILP solver gained shared mutable
# state (parallel branch-and-bound workers).
race:
	$(GO) test -race ./...

# Tracked benchmarks: the Fig 12-style batched solves, the full scheduler
# cycle, and the HTTP front door under load (cmd/loadgen's code path), 6
# repetitions each, summarized into BENCH_milp.json so the perf trajectory is
# diffable across PRs. Override BENCHTIME (per-repetition budget) to trade
# precision for wall clock — e.g. `make bench bench-compare BENCHTIME=0.5s`
# keeps baseline and gate runs close enough in time that slow machine-speed
# drift (burstable-VM throttling) doesn't masquerade as a regression.
BENCHTIME ?= 1s
bench:
	$(GO) test -run='^$$' -bench='BenchmarkBatchedSolve|BenchmarkSchedulerCycle|BenchmarkShardedCycle|BenchmarkCycleFrontEnd|BenchmarkLoadgen' -benchmem -count=6 -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -o BENCH_milp.json

# Regression gate: re-run the tracked benchmarks and diff min ns/op (best of
# 6 — robust to one-sided scheduler noise) against the committed
# BENCH_milp.json baseline. Exits non-zero when the suite geomean of deltas
# drifts past -threshold (default +10%) or any single benchmark blows past
# -max-single (default +50%); per-benchmark noise between the two only
# warns. Tune with `go run ./cmd/benchjson -compare BENCH_milp.json
# -threshold 0.15 -max-single 0.3`.
# Numbers are only comparable on the machine that produced the baseline —
# locally, run this before `make bench` rewrites the baseline. CI runs
# `make bench` first so the gate compares against a same-machine baseline
# from minutes earlier, with widened BENCHCOMPARE_FLAGS thresholds to absorb
# shared-runner noise.
BENCHCOMPARE_FLAGS ?=
bench-compare:
	$(GO) test -run='^$$' -bench='BenchmarkBatchedSolve|BenchmarkSchedulerCycle|BenchmarkShardedCycle|BenchmarkCycleFrontEnd|BenchmarkLoadgen' -benchmem -count=6 -benchtime=$(BENCHTIME) . \
		| $(GO) run ./cmd/benchjson -compare BENCH_milp.json $(BENCHCOMPARE_FLAGS)

# Every benchmark in the repo (reduced-scale paper tables/figures included).
bench-all:
	$(GO) test -bench=. -benchmem ./...

# Bench-rot smoke: run every benchmark exactly once so benchmark code cannot
# silently stop compiling or start crashing. Fast enough for CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Front-door smoke: cmd/loadgen spawns an in-process daemon and fires a short
# closed-loop burst at POST /v1/submit while cycles drain the queue. Gates on
# nonzero accepted throughput and zero 5xx responses; wired into CI.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -spawn -duration 2s -workers 8 -cycle-every 50ms -min-qps 100 -max-5xx 0

# Sharded control-plane smoke: a 4-shard tetrisim run end to end (concurrent
# per-shard planners, optimistic commit, gang arbitrator) plus the
# commit-time conflict-path tests under the race detector; wired into CI.
shard-smoke:
	$(GO) run ./cmd/tetrisim -cluster rc256het -workload gshet -jobs 120 -shards 4 -v | tail -n 6
	$(GO) test -race -count=1 -run 'Shard|ReuseMap|RateLimit' ./...

cover:
	$(GO) test -cover ./internal/...

# Full-scale regeneration of the paper's evaluation (slow; see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

experiments-quick:
	$(GO) run ./cmd/experiments -all -quick

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
	done

clean:
	$(GO) clean ./...
